// Micro-benchmarks (google-benchmark) for the substrate components:
// BCP throughput, end-to-end solving, CNF generation, core extraction,
// and the decision heap.
//
// `bench_micro --quick` skips the google-benchmark suite and instead
// runs the benchgen quick suite end to end, writing BENCH_solver.json
// (per-row and total propagations/sec, decisions, conflicts, and the
// propagator hot-path counters) — the solver-core throughput record CI
// uploads with the other BENCH artifacts.  `--full` does the same over
// the 37-row standard suite.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>

#include "bmc/encoder.hpp"
#include "bmc/ranking.hpp"
#include "bmc/tape.hpp"
#include "harness.hpp"
#include "model/benchgen.hpp"
#include "obs/trace.hpp"
#include "sat/solver.hpp"
#include "util/heap.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace refbmc;

sat::Cnf pigeonhole(int pigeons, int holes) {
  sat::Cnf cnf;
  cnf.num_vars = pigeons * holes;
  for (int p = 0; p < pigeons; ++p) {
    std::vector<sat::Lit> clause;
    for (int h = 0; h < holes; ++h)
      clause.push_back(sat::Lit::make(p * holes + h));
    cnf.add_clause(clause);
  }
  for (int h = 0; h < holes; ++h)
    for (int p1 = 0; p1 < pigeons; ++p1)
      for (int p2 = p1 + 1; p2 < pigeons; ++p2)
        cnf.add_clause({sat::Lit::make(p1 * holes + h, true),
                        sat::Lit::make(p2 * holes + h, true)});
  return cnf;
}

void BM_BcpChain(benchmark::State& state) {
  // A long implication chain: one unit + N binary clauses; solving is
  // pure BCP, so this measures propagation throughput — since the chain
  // is all binary clauses, specifically the inlined-binary-watch path.
  const int n = static_cast<int>(state.range(0));
  std::uint64_t props = 0;
  std::uint64_t bin_props = 0;
  for (auto _ : state) {
    state.PauseTiming();
    sat::Solver s;
    for (int i = 0; i < n; ++i) s.new_var();
    for (int i = 0; i + 1 < n; ++i)
      s.add_clause({sat::Lit::make(i, true), sat::Lit::make(i + 1)});
    state.ResumeTiming();
    s.add_clause({sat::Lit::make(0)});  // triggers the full chain
    benchmark::DoNotOptimize(s.solve());
    props += s.stats().propagations;
    bin_props += s.stats().binary_propagations;
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["props_per_sec"] = benchmark::Counter(
      static_cast<double>(props), benchmark::Counter::kIsRate);
  state.counters["binary_share"] =
      props > 0 ? static_cast<double>(bin_props) / static_cast<double>(props)
                : 0.0;
}
BENCHMARK(BM_BcpChain)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_BcpLongClauses(benchmark::State& state) {
  // Chains built from ternary clauses with one always-false guard: every
  // propagation walks the long-clause watch path, so together with
  // BM_BcpChain this separates the binary-inline win from the
  // blocking-literal win.
  const int n = static_cast<int>(state.range(0));
  std::uint64_t props = 0;
  for (auto _ : state) {
    state.PauseTiming();
    sat::Solver s;
    for (int i = 0; i < n + 1; ++i) s.new_var();
    const sat::Lit guard = sat::Lit::make(n);  // forced false below
    for (int i = 0; i + 1 < n; ++i)
      s.add_clause({sat::Lit::make(i, true), sat::Lit::make(i + 1), guard});
    s.add_clause({~guard});
    state.ResumeTiming();
    s.add_clause({sat::Lit::make(0)});
    benchmark::DoNotOptimize(s.solve());
    props += s.stats().propagations;
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["props_per_sec"] = benchmark::Counter(
      static_cast<double>(props), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BcpLongClauses)->Arg(1000)->Arg(10000);

void BM_SolvePigeonhole(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const sat::Cnf cnf = pigeonhole(n + 1, n);
  for (auto _ : state) {
    sat::Solver s;
    for (int v = 0; v < cnf.num_vars; ++v) s.new_var();
    for (const auto& c : cnf.clauses) s.add_clause(c);
    benchmark::DoNotOptimize(s.solve());
  }
}
BENCHMARK(BM_SolvePigeonhole)->Arg(6)->Arg(7)->Arg(8);

void BM_SolveWithCdg(benchmark::State& state) {
  // CDG on/off on the same formula — the §3.1 overhead at solver level.
  const sat::Cnf cnf = pigeonhole(8, 7);
  const bool track = state.range(0) != 0;
  for (auto _ : state) {
    sat::SolverConfig cfg;
    cfg.track_cdg = track;
    sat::Solver s(cfg);
    for (int v = 0; v < cnf.num_vars; ++v) s.new_var();
    for (const auto& c : cnf.clauses) s.add_clause(c);
    benchmark::DoNotOptimize(s.solve());
  }
}
BENCHMARK(BM_SolveWithCdg)->Arg(0)->Arg(1);

void BM_SolveTraceGate(benchmark::State& state) {
  // The obs layer's "near-zero cost when off" claim, head to head: the
  // same solve with no trace session (every instrumentation site is one
  // predicted branch) and with one recording (ring writes at restarts /
  // level-0 boundaries).  Arg 0 = off, Arg 1 = on.
  const sat::Cnf cnf = pigeonhole(7, 6);
  const bool traced = state.range(0) != 0;
  if (traced) {
    obs::TraceConfig tc;
    tc.buffer_events = 1 << 16;
    obs::trace_begin(tc);
  }
  for (auto _ : state) {
    sat::Solver s;
    for (int v = 0; v < cnf.num_vars; ++v) s.new_var();
    for (const auto& c : cnf.clauses) s.add_clause(c);
    benchmark::DoNotOptimize(s.solve());
  }
  if (traced) obs::trace_end();
}
BENCHMARK(BM_SolveTraceGate)->Arg(0)->Arg(1);

void BM_CoreExtraction(benchmark::State& state) {
  const sat::Cnf cnf = pigeonhole(8, 7);
  sat::Solver s;
  for (int v = 0; v < cnf.num_vars; ++v) s.new_var();
  for (const auto& c : cnf.clauses) s.add_clause(c);
  if (s.solve() != sat::Result::Unsat) state.SkipWithError("not unsat");
  for (auto _ : state) benchmark::DoNotOptimize(s.unsat_core_vars());
}
BENCHMARK(BM_CoreExtraction);

void BM_EncodeInstance(benchmark::State& state) {
  // Full Eq. 1 encoding at a given depth, with the simplification layer
  // on or off (second arg).
  const auto bm = model::with_distractor(model::fifo_safe(5), 32, 1);
  const int depth = static_cast<int>(state.range(0));
  bmc::EncoderOptions opts;
  opts.simplify = state.range(1) != 0;
  for (auto _ : state)
    benchmark::DoNotOptimize(bmc::encode_full(bm.net, 0, depth, opts));
  const auto inst = bmc::encode_full(bm.net, 0, depth, opts);
  state.counters["cnf_vars"] = static_cast<double>(inst.num_vars());
  state.counters["cnf_clauses"] = static_cast<double>(inst.num_clauses());
}
BENCHMARK(BM_EncodeInstance)
    ->Args({10, 0})
    ->Args({10, 1})
    ->Args({20, 0})
    ->Args({20, 1})
    ->Args({40, 0})
    ->Args({40, 1});

void BM_TapeReplay(benchmark::State& state) {
  // Feeding a fresh solver by replaying the shared tape — the per-depth
  // setup cost of scratch sessions and race entrants (encode-once: the
  // encoding itself happened exactly once, outside the loop).
  const auto bm = model::with_distractor(model::fifo_safe(5), 32, 1);
  const int depth = static_cast<int>(state.range(0));
  bmc::SharedTape tape(bm.net, 0);
  tape.ensure_depth(depth);
  for (auto _ : state) {
    sat::Solver solver;
    std::vector<bmc::VarOrigin> origin;
    bmc::SolverSink sink(solver, origin);
    bmc::ClauseTape::Cursor cursor;
    tape.replay_to(depth, cursor, sink);
    benchmark::DoNotOptimize(solver.num_vars());
  }
}
BENCHMARK(BM_TapeReplay)->Arg(10)->Arg(20)->Arg(40);

void BM_RankingProject(benchmark::State& state) {
  const auto bm = model::with_distractor(model::fifo_safe(5), 32, 1);
  const auto inst = bmc::encode_full(bm.net, 0, 20);
  bmc::CoreRanking ranking;
  std::vector<sat::Var> fake_core;
  for (std::size_t v = 1; v < inst.num_vars(); v += 3)
    fake_core.push_back(static_cast<sat::Var>(v));
  ranking.update(inst, fake_core, 5);
  for (auto _ : state) benchmark::DoNotOptimize(ranking.project(inst));
}
BENCHMARK(BM_RankingProject);

void BM_HeapChurn(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<double> score(static_cast<std::size_t>(n));
  Rng rng(7);
  for (auto& x : score) x = rng.next_double();
  const auto gt = [&score](int a, int b) {
    return score[static_cast<std::size_t>(a)] >
           score[static_cast<std::size_t>(b)];
  };
  for (auto _ : state) {
    IndexedMaxHeap<decltype(gt)> heap(gt);
    for (int i = 0; i < n; ++i) heap.insert(i);
    // Interleaved pops and re-inserts, like decide/backtrack churn.
    for (int i = 0; i < n / 2; ++i) {
      const int v = heap.pop();
      score[static_cast<std::size_t>(v)] = rng.next_double();
      heap.insert(v);
    }
    while (!heap.empty()) benchmark::DoNotOptimize(heap.pop());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_HeapChurn)->Arg(1000)->Arg(10000);

// ---- solver-core throughput record (BENCH_solver.json) -------------------

int run_solver_suite(bool full) {
  using benchharness::JsonWriter;
  const std::vector<model::Benchmark> suite =
      full ? model::standard_suite() : model::quick_suite();

  JsonWriter w;
  w.begin_object();
  w.kv("bench", "solver");
  w.kv("suite", full ? "standard" : "quick");
  w.key("rows");
  w.begin_array();

  std::uint64_t tot_decisions = 0, tot_props = 0, tot_bin = 0, tot_skips = 0,
                tot_conflicts = 0;
  double tot_solve_time = 0.0;
  for (const auto& bm : suite) {
    bmc::EngineConfig cfg;
    cfg.policy = bmc::OrderingPolicy::Baseline;  // pure solver throughput
    cfg.max_depth = bm.suggested_bound;
    bmc::BmcEngine engine(bm.net, cfg);
    const bmc::BmcResult result = engine.run();

    w.begin_object();
    w.kv("name", bm.name);
    w.kv("status", result.status == bmc::BmcResult::Status::CounterexampleFound
                       ? "cex"
                       : "bound");
    w.kv("last_depth", result.last_completed_depth);
    benchharness::write_solver_core_totals(w, result);
    w.end_object();

    tot_decisions += result.total_decisions();
    tot_props += result.total_propagations();
    tot_conflicts += result.total_conflicts();
    for (const auto& d : result.per_depth) {
      tot_bin += d.binary_propagations;
      tot_skips += d.blocker_skips;
      tot_solve_time += d.time_sec;
    }
  }
  w.end_array();

  w.key("totals");
  w.begin_object();
  w.kv("decisions", tot_decisions);
  w.kv("propagations", tot_props);
  w.kv("binary_propagations", tot_bin);
  w.kv("blocker_skips", tot_skips);
  w.kv("conflicts", tot_conflicts);
  w.kv("solve_time_sec", tot_solve_time);
  w.kv("props_per_sec", tot_solve_time > 0.0
                            ? static_cast<double>(tot_props) / tot_solve_time
                            : 0.0);
  w.end_object();

  // ---- trace-gate overhead record ----------------------------------------
  // Solves the same UNSAT formula back to back without a trace session
  // and with one recording, so the trajectory tooling can watch the
  // disabled-path cost (the ratio should sit within noise of 1.0 — the
  // off state is one predicted branch per instrumentation site).
  {
    const sat::Cnf cnf = pigeonhole(8, 7);
    const auto solve_once = [&cnf] {
      sat::Solver s;
      for (int v = 0; v < cnf.num_vars; ++v) s.new_var();
      for (const auto& c : cnf.clauses) s.add_clause(c);
      return s.solve();
    };
    const int reps = 3;
    solve_once();  // warm-up (allocator, caches)
    Timer off_timer;
    for (int r = 0; r < reps; ++r) solve_once();
    const double off_sec = off_timer.elapsed_sec();
    obs::TraceConfig tc;
    tc.buffer_events = 1 << 16;
    obs::trace_begin(tc);
    Timer on_timer;
    for (int r = 0; r < reps; ++r) solve_once();
    const double on_sec = on_timer.elapsed_sec();
    const obs::TraceDump dump = obs::trace_end();
    w.key("trace_overhead");
    w.begin_object();
    w.kv("reps", reps);
    w.kv("trace_off_sec", off_sec);
    w.kv("trace_on_sec", on_sec);
    w.kv("trace_on_ratio", off_sec > 0.0 ? on_sec / off_sec : 0.0);
    w.kv("events_recorded", dump.total_events());
    w.end_object();
  }
  w.end_object();

  if (!w.write_file("BENCH_solver.json")) {
    std::fprintf(stderr, "bench_micro: cannot write BENCH_solver.json\n");
    return 1;
  }
  std::printf("bench_micro: wrote BENCH_solver.json (%zu rows, %.2fM props/s)\n",
              suite.size(),
              tot_solve_time > 0.0
                  ? static_cast<double>(tot_props) / tot_solve_time / 1e6
                  : 0.0);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // `--quick` / `--full` run the suite pass instead of google-benchmark
  // (CI's BENCH_solver.json step); all other flags go to the library.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) return run_solver_suite(false);
    if (std::strcmp(argv[i], "--full") == 0) return run_solver_suite(true);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
