// Ablation of the dynamic policy's switch threshold (§3.3).  The paper
// fixes "#decisions > #original_literals / 64"; this bench sweeps the
// divisor (larger divisor = earlier fallback to VSIDS; "never" = the
// static configuration).
//
//   $ ./bench_ablation_switch [--budget SECONDS]
#include <cstdio>

#include "harness.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  using namespace refbmc;
  using namespace refbmc::benchharness;

  const Options opts = Options::parse(argc, argv);
  const double budget = opts.get_double("budget", 5.0);

  std::vector<model::Benchmark> rows;
  rows.push_back(model::with_distractor(model::arbiter_safe(8), 24, 103));
  rows.push_back(model::with_distractor(model::fifo_safe(4), 32, 104));
  rows.push_back(model::with_distractor(model::peterson_safe(), 32, 106));
  rows.push_back(model::accumulator_reach(16, 4, 255));
  rows.push_back(model::with_distractor(model::needle(10, 8, 24, 30), 32, 109));

  const int divisors[] = {16, 64, 256, 0};  // 0 = never switch (static)
  std::printf("Dynamic switch-threshold ablation (decisions > #literals / "
              "divisor)\n\n");
  std::printf("%-26s %10s %10s %10s %10s  (seconds)\n", "model", "div=16",
              "div=64*", "div=256", "never");

  double totals[4] = {0, 0, 0, 0};
  for (const auto& bm : rows) {
    std::printf("%-26s", bm.name.c_str());
    for (int i = 0; i < 4; ++i) {
      bmc::EngineConfig cfg;
      if (divisors[i] == 0) {
        cfg.policy = bmc::OrderingPolicy::Static;
      } else {
        cfg.policy = bmc::OrderingPolicy::Dynamic;
        cfg.dynamic_switch_divisor = divisors[i];
      }
      const PolicyRun run = run_policy(bm, cfg.policy, budget, cfg);
      const double t =
          run.cumulative_time.empty() ? 0.0 : run.cumulative_time.back();
      totals[i] += t;
      std::printf(" %9.3f%s", t, run.finished ? " " : "^");
    }
    std::printf("\n");
  }
  std::printf("\n%-26s %10.3f %10.3f %10.3f %10.3f\n", "TOTAL", totals[0],
              totals[1], totals[2], totals[3]);
  std::printf("(* = the paper's setting; expected: 64 competitive with the "
              "best, never/static close behind)\n");
  return 0;
}
