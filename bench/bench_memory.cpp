// Formula-state footprint record (BENCH_memory.json) — the space half of
// the bench trajectory, companion to bench_micro's throughput record.
//
// Four sections:
//   * rows      — per quick-suite model: the tape's raw cost, its codec
//                 cost, bytes/clause both ways, and what cold storage
//                 leaves resident after freezing the whole prefix;
//   * pauses    — the arena's chunk-allocation and GC pause histograms
//                 from a metrics-enabled end-to-end run (the chunked
//                 arena's "no multi-ms realloc stall" claim, measured);
//   * rank_row  — the same race twice, once with the shared rank source
//                 demoted (lone consumer) and once forced, proving the
//                 demoted lineup pays nothing for unused rank machinery;
//   * process   — peak RSS (VmHWM) and the race tracker's own peak.
//
// The codec's compression claim is enforced, not just reported: the run
// fails (exit 1) unless total encoded bytes are at most 1/3 of raw.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bmc/encoder.hpp"
#include "bmc/tape.hpp"
#include "bmc/tape_codec.hpp"
#include "harness.hpp"
#include "model/benchgen.hpp"
#include "obs/metrics.hpp"
#include "portfolio/scheduler.hpp"
#include "util/timer.hpp"

namespace {

using namespace refbmc;
using benchharness::JsonWriter;

/// Peak resident set of this process in kilobytes (/proc/self/status
/// VmHWM), or 0 where procfs is unavailable.
std::uint64_t vm_hwm_kb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::uint64_t kb = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      kb = std::strtoull(line + 6, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return kb;
}

void write_histogram(JsonWriter& w, const char* name) {
  const obs::Histogram& h = obs::metrics().histogram(name);
  w.key(name);
  w.begin_object();
  w.kv("count", h.count());
  w.kv("mean_us", h.mean());
  w.kv("max_us", h.max());
  w.kv("p50_us", h.percentile(0.50));
  w.kv("p90_us", h.percentile(0.90));
  w.kv("p99_us", h.percentile(0.99));
  w.end_object();
}

int run() {
  JsonWriter w;
  w.begin_object();
  w.kv("bench", "memory");

  // ---- tape codec compression, per model --------------------------------
  w.key("rows");
  w.begin_array();
  std::uint64_t tot_raw = 0, tot_encoded = 0, tot_clauses = 0;
  for (const auto& bm : model::quick_suite()) {
    bmc::ClauseTape tape;
    bmc::FrameEncoder enc(bm.net, tape);
    enc.encode_to(bm.suggested_bound);

    const std::size_t raw = tape.raw_bytes();
    const bmc::TapeCodec::EncodedRange range =
        bmc::TapeCodec::encode(tape, tape.mark());
    const std::size_t encoded = range.bytes.size();
    const std::size_t clauses = tape.num_clauses();
    const std::size_t resident_hot = tape.memory_bytes();
    tape.freeze_prefix(tape.mark());
    const std::size_t resident_cold = tape.memory_bytes();

    w.begin_object();
    w.kv("name", bm.name);
    w.kv("depth", bm.suggested_bound);
    w.kv("clauses", static_cast<std::uint64_t>(clauses));
    w.kv("raw_bytes", static_cast<std::uint64_t>(raw));
    w.kv("encoded_bytes", static_cast<std::uint64_t>(encoded));
    w.kv("raw_bytes_per_clause",
         clauses > 0 ? static_cast<double>(raw) / clauses : 0.0);
    w.kv("encoded_bytes_per_clause",
         clauses > 0 ? static_cast<double>(encoded) / clauses : 0.0);
    w.kv("compression",
         encoded > 0 ? static_cast<double>(raw) / encoded : 0.0);
    // What a frozen tape still keeps resident (segments + live tail).
    w.kv("resident_hot_bytes", static_cast<std::uint64_t>(resident_hot));
    w.kv("resident_cold_bytes", static_cast<std::uint64_t>(resident_cold));
    w.end_object();

    tot_raw += raw;
    tot_encoded += encoded;
    tot_clauses += clauses;
  }
  w.end_array();

  w.key("codec_totals");
  w.begin_object();
  w.kv("clauses", tot_clauses);
  w.kv("raw_bytes", tot_raw);
  w.kv("encoded_bytes", tot_encoded);
  w.kv("compression",
       tot_encoded > 0 ? static_cast<double>(tot_raw) / tot_encoded : 0.0);
  w.end_object();

  // ---- arena pause histograms -------------------------------------------
  // A metrics-enabled end-to-end run over a grinding UNSAT instance: the
  // solver allocates chunks as the formula grows and GCs learnt clauses
  // at reductions, so both histograms get real observations.  The claim
  // under watch: chunked growth never relocates, so no allocation pause
  // scales with the arena size.
  {
    obs::metrics_enable(true);
    obs::metrics().reset();
    const model::Benchmark bm = model::needle(6, 6, 40, 50);
    bmc::EngineConfig cfg;
    cfg.max_depth = bm.suggested_bound;
    bmc::BmcEngine(bm.net, cfg).run();
    obs::metrics_enable(false);

    w.key("pauses");
    w.begin_object();
    write_histogram(w, "arena.chunk_alloc_us");
    write_histogram(w, "arena.gc_pause_us");
    w.end_object();
  }

  // ---- rank demotion row -------------------------------------------------
  // {Static, Evsids} has one rank consumer: the scheduler demotes the
  // shared source and the lone consumer keeps its engine-private loop.
  // The forced twin materialises the shared source anyway; the delta
  // between the two is the machinery cost the demotion saves.
  std::uint64_t race_peak_mem = 0;
  {
    const model::Benchmark bm = model::needle(6, 6, 40, 50);
    bmc::EngineConfig cfg;
    cfg.max_depth = bm.suggested_bound;
    const std::vector<bmc::OrderingPolicy> lineup = {
        bmc::OrderingPolicy::Static, bmc::OrderingPolicy::Evsids};

    w.key("rank_row");
    w.begin_object();
    w.kv("model", bm.name);
    for (const bool force : {false, true}) {
      portfolio::SharingConfig sharing;
      sharing.rank_force = force;
      portfolio::PortfolioScheduler sched(2, /*base_seed=*/31, sharing);
      Timer t;
      const portfolio::RaceResult race = sched.race(bm.net, 0, cfg, lineup);
      const double wall = t.elapsed_sec();
      if (!force) race_peak_mem = race.peak_mem_bytes;
      w.key(force ? "forced" : "demoted");
      w.begin_object();
      w.kv("wall_sec", wall);
      w.kv("rank_sharing", race.rank_sharing);
      w.kv("ranks_published", race.ranks_published);
      w.kv("rank_refreshes", race.rank_refreshes);
      w.end_object();
    }
    w.end_object();
  }

  // ---- process footprint -------------------------------------------------
  w.key("process");
  w.begin_object();
  w.kv("vm_hwm_kb", vm_hwm_kb());
  w.kv("race_peak_mem_bytes", race_peak_mem);
  w.end_object();

  w.end_object();

  if (!w.write_file("BENCH_memory.json")) {
    std::fprintf(stderr, "bench_memory: cannot write BENCH_memory.json\n");
    return 1;
  }
  const double ratio =
      tot_encoded > 0 ? static_cast<double>(tot_raw) / tot_encoded : 0.0;
  std::printf(
      "bench_memory: wrote BENCH_memory.json (%llu clauses, %.2fx codec)\n",
      static_cast<unsigned long long>(tot_clauses), ratio);

  // The acceptance bar: encoded at most a third of raw, in aggregate.
  if (tot_encoded * 3 > tot_raw) {
    std::fprintf(stderr,
                 "bench_memory: FAIL — encoded %llu > raw %llu / 3\n",
                 static_cast<unsigned long long>(tot_encoded),
                 static_cast<unsigned long long>(tot_raw));
    return 1;
  }
  return 0;
}

}  // namespace

int main() { return run(); }
