// Fig. 6 of the paper: scatter plots of CPU time, standard BMC (x-axis)
// vs. refine_order BMC (y-axis), one plot per configuration (static,
// dynamic).  Dots under the diagonal are wins for the refined ordering.
//
//   $ ./bench_fig6_scatter [--budget SECONDS-PER-RUN] [--quick]
//
// Emits the two series as CSV (ready for gnuplot/matplotlib) plus the
// under-diagonal counts the paper reads off the plots.
#include <cstdio>

#include "harness.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  using namespace refbmc;
  using namespace refbmc::benchharness;
  using bmc::OrderingPolicy;

  const Options opts = Options::parse(argc, argv);
  const double budget = opts.get_double("budget", 5.0);
  const auto suite = opts.get_bool("quick", false) ? model::quick_suite()
                                                   : model::standard_suite();

  struct Point {
    std::string name;
    double x, y_static, y_dynamic;
  };
  std::vector<Point> points;

  for (const auto& bm : suite) {
    std::vector<PolicyRun> runs;
    for (const OrderingPolicy p :
         {OrderingPolicy::Baseline, OrderingPolicy::Static,
          OrderingPolicy::Dynamic})
      runs.push_back(run_policy(bm, p, budget));
    const RowComparison row = compare_row(bm, runs);
    points.push_back({row.name, row.times[0], row.times[1], row.times[2]});
  }

  int under_static = 0, under_dynamic = 0;
  std::printf("# Fig 6 scatter data: x = standard BMC seconds\n");
  std::printf("model,bmc_sec,static_sec,dynamic_sec\n");
  for (const auto& p : points) {
    std::printf("%s,%.4f,%.4f,%.4f\n", p.name.c_str(), p.x, p.y_static,
                p.y_dynamic);
    if (p.y_static < p.x) ++under_static;
    if (p.y_dynamic < p.x) ++under_dynamic;
  }
  std::printf("\n# dots under the diagonal (wins for the new method):\n");
  std::printf("# static : %d / %zu\n", under_static, points.size());
  std::printf("# dynamic: %d / %zu\n", under_dynamic, points.size());
  std::printf("# (paper reports wins on 26 [static] and 32 [dynamic] of 37 "
              "circuits)\n");
  return 0;
}
