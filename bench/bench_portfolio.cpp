// Portfolio scheduler bench: measures the two claims the subsystem makes.
//
//   $ ./bench_portfolio [--budget SECONDS-PER-RUN] [--quick]
//                       [--threads-list 1,2,4] [--depth K]
//
//  (a) shard throughput — the suite as a one-job-per-(netlist, property)
//      batch, run at each worker count in --threads-list; wall-clock
//      should shrink as workers are added (target: >= 1.5x at 4 threads);
//  (b) race overhead — per instance, every policy run alone vs. the
//      full-lineup race; race wall-clock should track the per-instance
//      best policy (target: within 15% in total).  Each race runs three
//      times: all exchange off (independent solvers), lemma sharing only
//      (LBD-filtered clause exchange through the SharedClausePool), and
//      lemma + rank sharing (cores merged in one SharedRankSource,
//      refreshed mid-solve), with the exported/imported/published/
//      refreshed counters recorded so the trajectory tooling can see
//      each exchange actually firing;
//
// Results go to stdout and, machine-readably, to BENCH_portfolio.json.
// Both targets assume the hardware can actually run the workers in
// parallel: on a machine with fewer cores than workers the race degrades
// to time-slicing (ratio ≈ #policies) and sharding cannot scale.  The
// JSON records hw_threads so trajectory tooling can tell "regression"
// from "ran on a small box".
#include <algorithm>
#include <cstdio>
#include <exception>
#include <stdexcept>
#include <thread>

#include "api/refbmc.hpp"
#include "bmc/tape.hpp"
#include "harness.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "portfolio/scheduler.hpp"
#include "util/options.hpp"
#include "util/timer.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace refbmc;
  using namespace refbmc::portfolio;
  using benchharness::JsonWriter;

  const Options opts = Options::parse(argc, argv);
  const double budget = opts.get_double("budget", 5.0);
  const auto suite = opts.get_bool("quick", false) ? model::quick_suite()
                                                   : model::standard_suite();
  std::vector<int> thread_counts;
  for (const std::string& t : split_csv(opts.get("threads-list", "1,2,4"))) {
    int n = 0;
    try {
      std::size_t pos = 0;
      n = std::stoi(t, &pos);
      if (pos != t.size()) throw std::invalid_argument(t);
    } catch (const std::exception&) {
      throw std::invalid_argument("option --threads-list expects integers, "
                                  "got '" + t + "'");
    }
    if (n < 1)
      throw std::invalid_argument("option --threads-list expects values >= 1");
    thread_counts.push_back(n);
  }
  if (thread_counts.empty())
    throw std::invalid_argument("option --threads-list is empty");

  const unsigned hw_threads = std::thread::hardware_concurrency();
  std::printf("hardware threads: %u\n\n", hw_threads);

  JsonWriter json;
  json.begin_object();
  json.kv("bench", "portfolio");
  json.kv("rows", static_cast<std::uint64_t>(suite.size()));
  json.kv("budget_sec", budget);
  json.kv("hw_threads", static_cast<std::uint64_t>(hw_threads));

  // ---- (a) shard throughput scaling ---------------------------------------
  const auto make_jobs = [&](const model::Benchmark& bm) {
    bmc::EngineConfig engine;
    engine.policy = bmc::OrderingPolicy::Dynamic;
    engine.max_depth = opts.get_int("depth", bm.suggested_bound);
    engine.per_instance_time_limit_sec = budget;
    return shard_properties(bm.net, engine, bm.name);
  };
  std::vector<Job> jobs;
  for (const auto& bm : suite)
    for (Job& job : make_jobs(bm)) jobs.push_back(std::move(job));

  std::printf("shard throughput: %zu jobs\n", jobs.size());
  std::printf("%8s %10s %10s\n", "threads", "wall(s)", "speedup");
  json.key("shard");
  json.begin_array();
  double wall_first = 0.0;
  for (std::size_t i = 0; i < thread_counts.size(); ++i) {
    const int threads = thread_counts[i];
    PortfolioScheduler scheduler(threads);
    const BatchReport report = scheduler.run_batch(jobs);
    if (i == 0) wall_first = report.wall_time_sec;
    const double speedup =
        report.wall_time_sec > 0.0 ? wall_first / report.wall_time_sec : 0.0;
    std::printf("%8d %10.3f %10.2f\n", threads, report.wall_time_sec, speedup);
    json.begin_object();
    json.kv("threads", threads);
    json.kv("wall_sec", report.wall_time_sec);
    json.kv("sequential_equivalent_sec", report.total_job_time_sec());
    json.kv("speedup_vs_first", speedup);
    json.kv("steals", report.steals);
    json.kv("counterexamples",
            static_cast<std::uint64_t>(report.counterexamples()));
    json.kv("resource_limits",
            static_cast<std::uint64_t>(report.resource_limits()));
    json.end_object();
  }
  json.end_array();

  // ---- (b) race vs. best single policy, by exchange regime ----------------
  // Three exchange regimes, same seed: all exchange off (the PR 3
  // baseline race), lemma sharing only (the PR 4 regime, isolating the
  // clause exchange), and lemma + rank sharing (shared ordering on
  // top).  Each race is one api::check — the bench exercises the same
  // façade entry the examples and the job server use — while the
  // single-policy baselines stay on scheduler-level run_job (a race of
  // one would add thread overhead to the very number being compared).
  // The share/rank columns show whether portfolio diversity compounds
  // or the instance is too easy to learn anything worth exchanging.
  // NB: like the race itself, the exchange payoff needs real
  // parallelism; on a box with fewer cores than entrants the wall-clock
  // comparison degrades to time-slicing noise while the counters stay
  // meaningful.
  const auto policies = default_race_policies();
  api::RaceOptions plain_race;
  plain_race.seed(1).share(false).share_rank(false);
  api::RaceOptions lemma_race;
  lemma_race.seed(1).share(true).share_rank(false);
  api::RaceOptions rank_race;  // defaults: lemma + rank exchange on

  std::printf(
      "\nrace vs. best single policy (plain / lemma-sharing / +rank)\n");
  std::printf("%-26s %10s %-12s %10s %10s %10s %7s %9s %9s %6s %6s\n",
              "model", "best(s)", "best-policy", "race(s)", "share(s)",
              "rank(s)", "ratio", "exported", "imported", "publ", "refr");
  json.key("race");
  json.begin_array();
  double total_best = 0.0, total_race = 0.0, total_race_share = 0.0;
  double total_race_rank = 0.0;
  std::uint64_t total_exported = 0, total_imported = 0;
  std::uint64_t total_published = 0, total_refreshes = 0;
  std::uint64_t max_cancel_latency = 0;
  const auto race_once = [&](const model::Benchmark& bm,
                             const api::RaceOptions& regime, int depth) {
    api::CheckRequest req;
    req.net = bm.net;
    req.name = bm.name;
    req.options = regime;
    req.options.max_depth(depth).budget_sec(budget);
    return api::check(req);
  };
  for (const auto& bm : suite) {
    const int depth = opts.get_int("depth", bm.suggested_bound);
    bmc::EngineConfig engine;
    engine.max_depth = depth;
    engine.total_time_limit_sec = budget;

    double best_sec = -1.0;
    bmc::OrderingPolicy best_policy = policies.front();
    for (const auto policy : policies) {
      Job job;
      job.net = &bm.net;
      job.name = bm.name;
      job.config = engine;
      job.config.policy = policy;
      const JobResult single = run_job(job);
      if (best_sec < 0.0 || single.wall_time_sec < best_sec) {
        best_sec = single.wall_time_sec;
        best_policy = policy;
      }
    }

    const api::CheckResult race = race_once(bm, plain_race, depth);
    const api::CheckResult shared = race_once(bm, lemma_race, depth);
    const api::CheckResult ranked = race_once(bm, rank_race, depth);
    const double ratio = best_sec > 0.0 ? race.wall_time_sec / best_sec : 0.0;
    total_best += best_sec;
    total_race += race.wall_time_sec;
    total_race_share += shared.wall_time_sec;
    total_race_rank += ranked.wall_time_sec;
    total_exported += shared.clauses_exported;
    total_imported += shared.clauses_imported;
    total_published += ranked.ranks_published;
    total_refreshes += ranked.rank_refreshes;
    max_cancel_latency =
        std::max({max_cancel_latency, race.cancel_latency_us,
                  shared.cancel_latency_us, ranked.cancel_latency_us});
    std::printf(
        "%-26s %10.3f %-12s %10.3f %10.3f %10.3f %7.2f %9llu %9llu %6llu "
        "%6llu\n",
        bm.name.c_str(), best_sec, to_string(best_policy),
        race.wall_time_sec, shared.wall_time_sec, ranked.wall_time_sec,
        ratio, static_cast<unsigned long long>(shared.clauses_exported),
        static_cast<unsigned long long>(shared.clauses_imported),
        static_cast<unsigned long long>(ranked.ranks_published),
        static_cast<unsigned long long>(ranked.rank_refreshes));
    json.begin_object();
    json.kv("name", bm.name);
    json.kv("best_sec", best_sec);
    json.kv("best_policy", to_string(best_policy));
    json.kv("race_sec", race.wall_time_sec);
    json.kv("race_winner",
            race.winner_policy.empty() ? "-" : race.winner_policy);
    json.kv("race_verdict", api::to_string(race.status));
    json.kv("ratio", ratio);
    json.kv("frames_encoded", race.frames_encoded);
    json.kv("race_share_sec", shared.wall_time_sec);
    json.kv("race_share_winner",
            shared.winner_policy.empty() ? "-" : shared.winner_policy);
    json.kv("race_share_verdict", api::to_string(shared.status));
    json.kv("share_ratio_vs_plain",
            race.wall_time_sec > 0.0
                ? shared.wall_time_sec / race.wall_time_sec
                : 0.0);
    json.kv("clauses_exported", shared.clauses_exported);
    json.kv("clauses_imported", shared.clauses_imported);
    json.kv("race_rank_sec", ranked.wall_time_sec);
    json.kv("race_rank_winner",
            ranked.winner_policy.empty() ? "-" : ranked.winner_policy);
    json.kv("race_rank_verdict", api::to_string(ranked.status));
    json.kv("rank_ratio_vs_share",
            shared.wall_time_sec > 0.0
                ? ranked.wall_time_sec / shared.wall_time_sec
                : 0.0);
    json.kv("ranks_published", ranked.ranks_published);
    json.kv("rank_refreshes", ranked.rank_refreshes);
    // Cancellation latency per exchange regime: verdict -> last loser
    // actually stopped (the satellite metric of the observability PR).
    json.kv("cancel_latency_us", race.cancel_latency_us);
    json.kv("cancel_latency_share_us", shared.cancel_latency_us);
    json.kv("cancel_latency_rank_us", ranked.cancel_latency_us);
    json.end_object();
  }
  json.end_array();

  // ---- (c) race setup: encode-once vs per-policy encoding -----------------
  // The PR 1 race had every entrant unroll its own copy of the instance;
  // entrants now replay one shared tape.  Measure both disciplines on the
  // suite's deepest instance: P independent encodings vs one encoding
  // plus P solver replays.
  {
    const model::Benchmark* deepest = &suite.front();
    for (const auto& bm : suite)
      if (bm.suggested_bound > deepest->suggested_bound) deepest = &bm;
    const int depth = opts.get_int("depth", deepest->suggested_bound);
    const std::size_t num_policies = policies.size();

    Timer independent_timer;
    for (std::size_t p = 0; p < num_policies; ++p) {
      bmc::SharedTape own(deepest->net, 0);
      own.ensure_depth(depth);
      sat::Solver solver;
      std::vector<bmc::VarOrigin> origin;
      bmc::SolverSink sink(solver, origin);
      bmc::ClauseTape::Cursor cursor;
      own.replay_to(depth, cursor, sink);
    }
    const double independent_sec = independent_timer.elapsed_sec();

    Timer shared_timer;
    bmc::SharedTape shared(deepest->net, 0);
    shared.ensure_depth(depth);
    for (std::size_t p = 0; p < num_policies; ++p) {
      sat::Solver solver;
      std::vector<bmc::VarOrigin> origin;
      bmc::SolverSink sink(solver, origin);
      bmc::ClauseTape::Cursor cursor;
      shared.replay_to(depth, cursor, sink);
    }
    const double shared_sec = shared_timer.elapsed_sec();

    std::printf(
        "\nrace setup on %s (depth %d, %zu policies): per-policy encode "
        "%.4fs, encode-once %.4fs (%.2fx)\n",
        deepest->name.c_str(), depth, num_policies, independent_sec,
        shared_sec, shared_sec > 0.0 ? independent_sec / shared_sec : 0.0);
    json.key("race_setup");
    json.begin_object();
    json.kv("model", deepest->name);
    json.kv("depth", depth);
    json.kv("policies", static_cast<std::uint64_t>(num_policies));
    json.kv("per_policy_encode_sec", independent_sec);
    json.kv("encode_once_sec", shared_sec);
    json.kv("speedup",
            shared_sec > 0.0 ? independent_sec / shared_sec : 0.0);
    json.end_object();
  }

  // ---- (d) traced race: one full-exchange race under the obs layer --------
  // Records the race timeline (per-depth encode/simplify/solve spans,
  // solver milestones, job lifecycle) and exports it as Chrome
  // trace-event JSON — TRACE_race.json rides along with BENCH_*.json as
  // a CI artifact and opens in Perfetto with one track per entrant.
  {
    const model::Benchmark& bm = suite.front();
    bmc::EngineConfig engine;
    engine.max_depth = opts.get_int("depth", bm.suggested_bound);
    engine.total_time_limit_sec = budget;
    obs::TraceConfig tc;
    tc.buffer_events = 64 * 1024;
    obs::trace_begin(tc);
    obs::trace_set_thread_track("driver");
    PortfolioScheduler racer_rank(static_cast<int>(policies.size()));
    const RaceResult traced = racer_rank.race(bm.net, 0, engine, policies);
    const obs::TraceDump dump = obs::trace_end();
    const bool trace_written =
        obs::write_chrome_trace_file("TRACE_race.json", dump);
    std::printf(
        "\ntraced race on %s: %llu events, %zu tracks, %llu dropped%s\n",
        bm.name.c_str(),
        static_cast<unsigned long long>(dump.total_events()),
        dump.tracks.size(),
        static_cast<unsigned long long>(dump.total_dropped()),
        trace_written ? " -> TRACE_race.json"
                      : " (could not write TRACE_race.json)");
    json.key("trace");
    json.begin_object();
    json.kv("model", bm.name);
    json.kv("file", "TRACE_race.json");
    json.kv("written", trace_written);
    json.kv("tracks", static_cast<std::uint64_t>(dump.tracks.size()));
    json.kv("events", dump.total_events());
    json.kv("dropped_events", dump.total_dropped());
    json.kv("cancel_latency_us", traced.cancel_latency_us);
    json.end_object();
    max_cancel_latency = std::max(max_cancel_latency,
                                  traced.cancel_latency_us);
  }

  // ---- (e) tape preprocessing: clause reduction and solve-time ratio ------
  // The PR 7 claim: BVE + subsumption over the encoded tape shrinks the
  // formula every scratch entrant replays, without changing any verdict.
  // Per model: formula size at the suggested bound with and without the
  // pass, plus a single-engine solve either way (same policy, same
  // budget) for the end-to-end ratio.
  std::uint64_t total_vars_eliminated = 0, total_clauses_subsumed = 0;
  std::uint64_t total_preprocess_us = 0;
  {
    std::printf("\ntape preprocessing (BVE + subsumption at the bound)\n");
    std::printf("%-26s %6s %9s %9s %7s %10s %10s %7s\n", "model", "depth",
                "clauses", "simpl", "red%", "plain(s)", "prep(s)", "ratio");
    json.key("preprocess");
    json.begin_array();
    for (const auto& bm : suite) {
      const int depth = opts.get_int("depth", bm.suggested_bound);

      bmc::PreprocessOptions po;
      po.enabled = true;
      bmc::SharedTape tape(bm.net, 0, {}, po);
      const std::uint64_t plain_clauses = tape.mark_at(depth).clauses;
      const std::uint64_t simpl_clauses = tape.simplified_clauses_at(depth);
      const bmc::PreprocessStats ps = tape.preprocess_stats_at(depth);
      // Reserve heuristic (PR 10): the same frames encoded into a bare
      // tape (geometric vector growth) vs through SharedTape's
      // netlist-derived per-frame reserve — the capacity overshoot the
      // estimate trades away.
      bmc::ClauseTape bare_tape;
      {
        bmc::FrameEncoder bare_enc(bm.net, bare_tape);
        bare_enc.encode_to(depth);
      }
      bmc::SharedTape reserved_tape(bm.net, 0, {});
      reserved_tape.mark_at(depth);
      const std::uint64_t tape_bytes_before = bare_tape.memory_bytes();
      const std::uint64_t tape_bytes_after = reserved_tape.memory_bytes();
      const double reduction =
          plain_clauses > 0
              ? 1.0 - static_cast<double>(simpl_clauses) /
                          static_cast<double>(plain_clauses)
              : 0.0;

      bmc::EngineConfig plain_cfg;
      plain_cfg.policy = bmc::OrderingPolicy::Dynamic;
      plain_cfg.max_depth = depth;
      plain_cfg.total_time_limit_sec = budget;
      bmc::EngineConfig prep_cfg = plain_cfg;
      prep_cfg.preprocess.enabled = true;
      prep_cfg.solver.inprocess.vivify_interval = 8;

      Timer plain_timer;
      bmc::BmcEngine plain_engine(bm.net, plain_cfg);
      const bmc::BmcResult plain_result = plain_engine.run();
      const double plain_sec = plain_timer.elapsed_sec();
      Timer prep_timer;
      bmc::BmcEngine prep_engine(bm.net, prep_cfg);
      const bmc::BmcResult prep_result = prep_engine.run();
      const double prep_sec = prep_timer.elapsed_sec();
      const double solve_ratio = plain_sec > 0.0 ? prep_sec / plain_sec : 0.0;
      const bool verdicts_match = plain_result.status == prep_result.status;

      total_vars_eliminated += ps.vars_eliminated;
      total_clauses_subsumed += ps.clauses_subsumed;
      total_preprocess_us += ps.preprocess_us;
      std::printf("%-26s %6d %9llu %9llu %6.1f%% %10.3f %10.3f %7.2f%s\n",
                  bm.name.c_str(), depth,
                  static_cast<unsigned long long>(plain_clauses),
                  static_cast<unsigned long long>(simpl_clauses),
                  100.0 * reduction, plain_sec, prep_sec, solve_ratio,
                  verdicts_match ? "" : "  VERDICT MISMATCH");
      json.begin_object();
      json.kv("name", bm.name);
      json.kv("depth", depth);
      json.kv("clauses_plain", plain_clauses);
      json.kv("clauses_simplified", simpl_clauses);
      json.kv("clause_reduction", reduction);
      json.kv("vars_eliminated", ps.vars_eliminated);
      json.kv("clauses_subsumed", ps.clauses_subsumed);
      json.kv("lits_strengthened", ps.lits_strengthened);
      json.kv("preprocess_us", ps.preprocess_us);
      json.kv("tape_bytes_before", tape_bytes_before);
      json.kv("tape_bytes_after", tape_bytes_after);
      json.kv("plain_sec", plain_sec);
      json.kv("preprocess_sec", prep_sec);
      json.kv("solve_ratio_vs_plain", solve_ratio);
      json.kv("verdicts_match", verdicts_match);
      json.end_object();
    }
    json.end_array();
  }

  const double total_ratio = total_best > 0.0 ? total_race / total_best : 0.0;
  std::printf(
      "\nTOTAL best %.3fs, race %.3fs (ratio %.2f), sharing race %.3fs "
      "(%llu exported, %llu imported), rank-sharing race %.3fs "
      "(%llu cores published, %llu refreshes)\n",
      total_best, total_race, total_ratio, total_race_share,
      static_cast<unsigned long long>(total_exported),
      static_cast<unsigned long long>(total_imported), total_race_rank,
      static_cast<unsigned long long>(total_published),
      static_cast<unsigned long long>(total_refreshes));
  json.kv("total_best_sec", total_best);
  json.kv("total_race_sec", total_race);
  json.kv("total_ratio", total_ratio);
  json.kv("total_race_share_sec", total_race_share);
  json.kv("total_share_ratio_vs_plain",
          total_race > 0.0 ? total_race_share / total_race : 0.0);
  json.kv("total_clauses_exported", total_exported);
  json.kv("total_clauses_imported", total_imported);
  json.kv("total_race_rank_sec", total_race_rank);
  json.kv("total_rank_ratio_vs_share",
          total_race_share > 0.0 ? total_race_rank / total_race_share : 0.0);
  json.kv("total_ranks_published", total_published);
  json.kv("total_rank_refreshes", total_refreshes);
  json.kv("max_cancel_latency_us", max_cancel_latency);
  json.kv("total_vars_eliminated", total_vars_eliminated);
  json.kv("total_clauses_subsumed", total_clauses_subsumed);
  json.kv("total_preprocess_us", total_preprocess_us);
  json.end_object();

  if (!json.write_file("BENCH_portfolio.json"))
    std::fprintf(stderr, "warning: could not write BENCH_portfolio.json\n");
  else
    std::printf("wrote BENCH_portfolio.json\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_portfolio: %s\n", e.what());
    return 2;
  }
}
