// Ablation of the core-score weighting (§3.2).  The paper accumulates
// bmc_score(x) = Σ_j in_unsat(x,j)·j, justified by (1) favouring recent
// cores and (2) not trusting any single core.  This bench compares that
// linear weighting against uniform, last-core-only, and exponential-decay
// alternatives under the static policy.
//
//   $ ./bench_ablation_score [--budget SECONDS]
#include <cstdio>

#include "harness.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  using namespace refbmc;
  using namespace refbmc::benchharness;
  using bmc::CoreWeighting;

  const Options opts = Options::parse(argc, argv);
  const double budget = opts.get_double("budget", 5.0);

  std::vector<model::Benchmark> rows;
  rows.push_back(model::with_distractor(model::arbiter_safe(8), 24, 103));
  rows.push_back(model::with_distractor(model::fifo_safe(4), 32, 104));
  rows.push_back(model::with_distractor(model::counter_safe(8, 200, 250), 32, 102));
  rows.push_back(model::accumulator_reach(16, 4, 255));
  rows.push_back(model::with_distractor(model::peterson_safe(), 32, 106));

  const CoreWeighting weightings[] = {
      CoreWeighting::Linear, CoreWeighting::Uniform, CoreWeighting::LastOnly,
      CoreWeighting::ExpDecay};

  std::printf("Core-score weighting ablation (static policy)\n\n");
  std::printf("%-26s %10s %10s %10s %10s  (seconds)\n", "model", "linear*",
              "uniform", "last-only", "exp-decay");

  double totals[4] = {0, 0, 0, 0};
  std::uint64_t dec_totals[4] = {0, 0, 0, 0};
  for (const auto& bm : rows) {
    std::printf("%-26s", bm.name.c_str());
    for (int i = 0; i < 4; ++i) {
      bmc::EngineConfig cfg;
      cfg.policy = bmc::OrderingPolicy::Static;
      cfg.weighting = weightings[i];
      const PolicyRun run =
          run_policy(bm, bmc::OrderingPolicy::Static, budget, cfg);
      const double t =
          run.cumulative_time.empty() ? 0.0 : run.cumulative_time.back();
      totals[i] += t;
      dec_totals[i] += run.result.total_decisions();
      std::printf(" %9.3f%s", t, run.finished ? " " : "^");
    }
    std::printf("\n");
  }
  std::printf("\n%-26s %10.3f %10.3f %10.3f %10.3f\n", "TOTAL", totals[0],
              totals[1], totals[2], totals[3]);
  std::printf("%-26s %10llu %10llu %10llu %10llu  (decisions)\n", "",
              static_cast<unsigned long long>(dec_totals[0]),
              static_cast<unsigned long long>(dec_totals[1]),
              static_cast<unsigned long long>(dec_totals[2]),
              static_cast<unsigned long long>(dec_totals[3]));
  std::printf("(* = the paper's Σ j·in_unsat(x,j); expected: linear and "
              "exp-decay robust, last-only noisier)\n");
  return 0;
}
