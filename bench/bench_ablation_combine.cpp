// §3.3's opening design choice: bmc_score "can either REPLACE or be
// COMBINED with cha_score()".  The paper combines; this ablation measures
// the passed-over alternative — ordering by bmc_score alone, no VSIDS
// tiebreak, no fallback.
//
//   $ ./bench_ablation_combine [--budget SECONDS]
#include <cstdio>

#include "harness.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  using namespace refbmc;
  using namespace refbmc::benchharness;
  using bmc::OrderingPolicy;

  const Options opts = Options::parse(argc, argv);
  const double budget = opts.get_double("budget", 5.0);

  std::vector<model::Benchmark> rows;
  rows.push_back(model::with_distractor(model::arbiter_safe(8), 24, 103));
  rows.push_back(model::with_distractor(model::fifo_safe(4), 32, 104));
  rows.push_back(model::with_distractor(model::peterson_safe(), 32, 106));
  rows.push_back(model::accumulator_reach(16, 4, 255));
  rows.push_back(model::with_distractor(model::fifo_buggy(4), 24, 105));
  rows.push_back(model::with_distractor(model::needle(10, 8, 24, 30), 32, 109));

  const OrderingPolicy policies[] = {
      OrderingPolicy::Baseline, OrderingPolicy::Replace,
      OrderingPolicy::Static, OrderingPolicy::Dynamic};
  std::printf("Replace vs combine (§3.3 design choice; solver seconds)\n\n");
  std::printf("%-26s %10s %10s %10s %10s\n", "model", "vsids", "replace",
              "static*", "dynamic*");

  double totals[4] = {0, 0, 0, 0};
  std::uint64_t decs[4] = {0, 0, 0, 0};
  for (const auto& bm : rows) {
    std::printf("%-26s", bm.name.c_str());
    for (int i = 0; i < 4; ++i) {
      const PolicyRun run = run_policy(bm, policies[i], budget);
      const double t =
          run.cumulative_time.empty() ? 0.0 : run.cumulative_time.back();
      totals[i] += t;
      decs[i] += run.result.total_decisions();
      std::printf(" %9.3f%s", t, run.finished ? " " : "^");
    }
    std::printf("\n");
  }
  std::printf("\n%-26s %10.3f %10.3f %10.3f %10.3f\n", "TOTAL", totals[0],
              totals[1], totals[2], totals[3]);
  std::printf("%-26s %10llu %10llu %10llu %10llu  (decisions)\n", "",
              static_cast<unsigned long long>(decs[0]),
              static_cast<unsigned long long>(decs[1]),
              static_cast<unsigned long long>(decs[2]),
              static_cast<unsigned long long>(decs[3]));
  std::printf("(* = the paper's combined configurations; replace is the "
              "alternative it passes over)\n");
  return 0;
}
