// Table 1 of the paper: CPU time of standard BMC vs. refine_order BMC
// (static and dynamic) on the 37-circuit suite, with TOTAL and RATIO rows.
//
//   $ ./bench_table1 [--budget SECONDS-PER-RUN] [--quick]
//
// Rows that exceed the per-run budget are compared at the deepest
// unrolling depth all methods completed, shown as "(k)" — the paper's
// timeout convention.  Expected shape (paper: static 62%, dynamic 57%,
// wins on 26/32 of 37): both refined orderings clearly below 100% in
// TOTAL, dynamic ≤ static, a majority of rows winning, a few losing.
#include <cstdio>

#include "harness.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  using namespace refbmc;
  using namespace refbmc::benchharness;
  using bmc::OrderingPolicy;

  const Options opts = Options::parse(argc, argv);
  const double budget = opts.get_double("budget", 5.0);
  const auto suite = opts.get_bool("quick", false) ? model::quick_suite()
                                                   : model::standard_suite();

  std::printf("Table 1: BMC vs refine_order BMC (budget %.1fs per run)\n\n",
              budget);
  std::printf("%-26s %-6s %10s %10s %10s   %7s %7s\n", "model", "T/F(k)",
              "bmc(s)", "static(s)", "dyn(s)", "sta-dec", "dyn-dec");

  const OrderingPolicy policies[] = {OrderingPolicy::Baseline,
                                     OrderingPolicy::Static,
                                     OrderingPolicy::Dynamic};
  double total[3] = {0, 0, 0};
  int wins_static = 0, wins_dynamic = 0, rows_counted = 0;

  for (const auto& bm : suite) {
    std::vector<PolicyRun> runs;
    for (const OrderingPolicy p : policies)
      runs.push_back(run_policy(bm, p, budget));
    const RowComparison row = compare_row(bm, runs);
    for (int i = 0; i < 3; ++i) total[i] += row.times[i];
    ++rows_counted;
    if (row.times[1] < row.times[0]) ++wins_static;
    if (row.times[2] < row.times[0]) ++wins_dynamic;
    std::printf("%-26s %-6s %10.3f %10.3f %10.3f   %7llu %7llu\n",
                row.name.c_str(), row.verdict.c_str(), row.times[0],
                row.times[1], row.times[2],
                static_cast<unsigned long long>(row.decisions[1]),
                static_cast<unsigned long long>(row.decisions[2]));
  }

  std::printf("\n%-26s %-6s %10.3f %10.3f %10.3f\n", "TOTAL", "", total[0],
              total[1], total[2]);
  std::printf("%-26s %-6s %9.0f%% %9.0f%% %9.0f%%\n", "RATIO", "", 100.0,
              100.0 * total[1] / total[0], 100.0 * total[2] / total[0]);
  std::printf("\nwins vs standard BMC: static %d/%d, dynamic %d/%d\n",
              wins_static, rows_counted, wins_dynamic, rows_counted);
  std::printf("(paper, IBM suite: ratios 62%% / 57%%; wins 26 and 32 of "
              "37)\n");
  return 0;
}
