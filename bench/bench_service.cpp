// Serving-layer bench: what BMC-as-a-service costs on top of the race,
// and what the result cache gives back.
//
//   $ ./bench_service [--quick] [--rounds N] [--jobs N] [--workers N]
//
//  (a) cold vs cached — every suite row is submitted once (a real race)
//      and then resubmitted identically; the second round must be served
//      from the ResultCache, so its latency is pure serving overhead.
//      Reports per-row latencies and the aggregate speedup;
//  (b) serving throughput — one warmed row resubmitted --jobs times;
//      every one is a cache hit, so completed jobs/sec bounds the
//      submit -> executor -> finish pipeline, not the solver;
//  (c) dispatch overhead — the socket-free handle_request path
//      (JSON parse, poll, JSON encode) in ops/sec, the per-round-trip
//      cost a client pays before any queueing;
//  (d) admission control — a one-slot queue under a burst, counting the
//      typed queue_full rejections (admission must reject, not block).
//
// Results go to stdout and, machine-readably, to BENCH_service.json for
// the CI bench-trajectory step.
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "harness.hpp"
#include "service/transport.hpp"
#include "util/options.hpp"
#include "util/timer.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace refbmc;
  using benchharness::JsonWriter;

  const Options opts = Options::parse(argc, argv);
  const auto suite = opts.get_bool("quick", false) ? model::quick_suite()
                                                   : model::standard_suite();
  const int throughput_jobs = opts.get_int("jobs", 200);
  const int workers = opts.get_int("workers", 2);

  const auto request_for = [](const model::Benchmark& bm) {
    api::CheckRequest r;
    r.net = bm.net;
    r.name = bm.name;
    r.options.max_depth(bm.suggested_bound);
    return r;
  };

  JsonWriter json;
  json.begin_object();
  json.kv("bench", "service");
  json.kv("rows", static_cast<std::uint64_t>(suite.size()));
  json.kv("workers", workers);

  // ---- (a) cold vs cached latency per suite row ---------------------------
  service::ServerConfig cfg;
  cfg.workers = workers;
  service::JobServer server(cfg);

  std::printf("cold vs cached (identical resubmission), %d workers\n",
              workers);
  std::printf("%-26s %-8s %10s %10s %10s\n", "model", "verdict", "cold(s)",
              "cached(s)", "speedup");
  json.key("cold_vs_cached");
  json.begin_array();
  double total_cold = 0.0, total_cached = 0.0;
  bool all_cached = true;
  for (const auto& bm : suite) {
    Timer cold_timer;
    const auto cold_out = server.submit(request_for(bm));
    const auto cold = server.wait(cold_out.id);
    const double cold_sec = cold_timer.elapsed_sec();

    Timer cached_timer;
    const auto cached_out = server.submit(request_for(bm));
    const auto cached = server.wait(cached_out.id);
    const double cached_sec = cached_timer.elapsed_sec();

    const bool hit = cached && cached->result.from_cache;
    all_cached &= hit;
    total_cold += cold_sec;
    total_cached += cached_sec;
    const double speedup = cached_sec > 0.0 ? cold_sec / cached_sec : 0.0;
    const char* verdict =
        cold ? api::to_string(cold->result.status) : "?";
    std::printf("%-26s %-8s %10.4f %10.6f %9.0fx%s\n", bm.name.c_str(),
                verdict, cold_sec, cached_sec, speedup,
                hit ? "" : "  <-- NOT SERVED FROM CACHE");
    json.begin_object();
    json.kv("name", bm.name);
    json.kv("verdict", verdict);
    json.kv("cold_sec", cold_sec);
    json.kv("cached_sec", cached_sec);
    json.kv("speedup", speedup);
    json.kv("from_cache", hit);
    json.end_object();
  }
  json.end_array();
  json.kv("total_cold_sec", total_cold);
  json.kv("total_cached_sec", total_cached);
  const double cache_speedup =
      total_cached > 0.0 ? total_cold / total_cached : 0.0;
  json.kv("cache_speedup", cache_speedup);
  json.kv("all_cached", all_cached);
  std::printf("TOTAL cold %.3fs, cached %.4fs (%.0fx)%s\n\n", total_cold,
              total_cached, cache_speedup,
              all_cached ? "" : "  <-- CACHE MISSES IN ROUND 2");

  // ---- (b) serving throughput on a warmed cache ---------------------------
  {
    const model::Benchmark& bm = suite.front();
    Timer timer;
    std::vector<service::JobId> ids;
    ids.reserve(static_cast<std::size_t>(throughput_jobs));
    for (int j = 0; j < throughput_jobs; ++j) {
      const auto out = server.submit(request_for(bm));
      if (out.accepted) ids.push_back(out.id);
    }
    for (const service::JobId id : ids) server.wait(id);
    const double wall = timer.elapsed_sec();
    const double jobs_per_sec =
        wall > 0.0 ? static_cast<double>(ids.size()) / wall : 0.0;
    std::printf("serving throughput: %zu cached jobs in %.3fs "
                "(%.0f jobs/s)\n",
                ids.size(), wall, jobs_per_sec);
    json.kv("throughput_jobs", static_cast<std::uint64_t>(ids.size()));
    json.kv("throughput_wall_sec", wall);
    json.kv("cached_jobs_per_sec", jobs_per_sec);
  }

  // ---- (c) dispatch overhead: handle_request round trips ------------------
  {
    const auto out = server.submit(request_for(suite.front()));
    server.wait(out.id);
    const std::string poll_req =
        R"({"op": "poll", "id": )" + std::to_string(out.id) + "}";
    const int rounds = 2000;
    Timer timer;
    for (int i = 0; i < rounds; ++i)
      service::handle_request(server, poll_req);
    const double wall = timer.elapsed_sec();
    const double ops_per_sec =
        wall > 0.0 ? static_cast<double>(rounds) / wall : 0.0;
    std::printf("dispatch overhead: %d poll round trips in %.3fs "
                "(%.0f ops/s)\n",
                rounds, wall, ops_per_sec);
    json.kv("dispatch_rounds", rounds);
    json.kv("dispatch_wall_sec", wall);
    json.kv("dispatch_ops_per_sec", ops_per_sec);
  }

  // ---- (d) admission control under a burst --------------------------------
  {
    service::ServerConfig tiny;
    tiny.workers = 1;
    tiny.queue_capacity = 1;
    service::JobServer bursty(tiny);
    int accepted = 0, rejected_full = 0;
    std::vector<service::JobId> ids;
    for (int j = 0; j < 32; ++j) {
      api::CheckRequest req = request_for(suite.front());
      service::JobOptions jopts;
      jopts.use_cache = false;  // force real work so the queue backs up
      const auto out = bursty.submit(std::move(req), jopts);
      if (out.accepted) {
        ++accepted;
        ids.push_back(out.id);
      } else if (out.reason == service::RejectReason::QueueFull) {
        ++rejected_full;
      }
    }
    for (const service::JobId id : ids) bursty.cancel(id);
    for (const service::JobId id : ids) bursty.wait(id);
    std::printf("admission burst (queue=1): %d accepted, %d queue_full of "
                "32\n",
                accepted, rejected_full);
    json.kv("burst_accepted", accepted);
    json.kv("burst_rejected_queue_full", rejected_full);
  }

  const service::JobServer::Stats stats = server.stats();
  json.kv("submitted", stats.submitted);
  json.kv("completed", stats.completed);
  json.kv("cache_hits", stats.cache_hits);
  json.kv("cache_misses", stats.cache_misses);
  json.end_object();

  if (!json.write_file("BENCH_service.json"))
    std::fprintf(stderr, "warning: could not write BENCH_service.json\n");
  else
    std::printf("wrote BENCH_service.json\n");
  return all_cached ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_service: %s\n", e.what());
    return 2;
  }
}
