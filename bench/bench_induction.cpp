// Extension bench: the refined ordering applied to temporal induction —
// the paper's closing claim that the technique transfers to "other
// SAT-based problems [whose] subproblems have a similar incremental
// nature".  Both the base-case chain and the inductive-step chain are
// correlated UNSAT sequences with their own core rankings.
//
//   $ ./bench_induction [--max-k N]
#include <cstdio>

#include "bmc/induction.hpp"
#include "model/benchgen.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  using namespace refbmc;
  using bmc::OrderingPolicy;

  const Options opts = Options::parse(argc, argv);
  const int max_k = opts.get_int("max-k", 24);

  std::vector<model::Benchmark> rows;
  rows.push_back(model::peterson_safe());
  rows.push_back(model::with_distractor(model::peterson_safe(), 16, 21));
  rows.push_back(model::arbiter_safe(6));
  rows.push_back(model::with_distractor(model::arbiter_safe(6), 16, 22));
  rows.push_back(model::gray_safe(6));
  rows.push_back(model::counter_safe(5, 12, 20));

  const OrderingPolicy policies[] = {OrderingPolicy::Baseline,
                                     OrderingPolicy::Static,
                                     OrderingPolicy::Dynamic};
  std::printf("k-induction under the three orderings (seconds; k = proof "
              "closure)\n\n");
  std::printf("%-26s %14s %14s %14s\n", "model", "baseline", "static",
              "dynamic");

  double totals[3] = {0, 0, 0};
  std::uint64_t decs[3] = {0, 0, 0};
  for (const auto& bm : rows) {
    std::printf("%-26s", bm.name.c_str());
    for (int i = 0; i < 3; ++i) {
      bmc::InductionConfig cfg;
      cfg.policy = policies[i];
      cfg.max_k = max_k;
      cfg.total_time_limit_sec = 30.0;
      bmc::InductionProver prover(bm.net, cfg);
      const bmc::InductionResult r = prover.run();
      totals[i] += r.total_time_sec;
      decs[i] += r.base_decisions + r.step_decisions;
      if (r.status == bmc::InductionResult::Status::Proved)
        std::printf("  %8.3f(k=%-2d)", r.total_time_sec, r.k);
      else
        std::printf("  %8.3f(----)", r.total_time_sec);
    }
    std::printf("\n");
  }
  std::printf("\n%-26s %14.3f %14.3f %14.3f\n", "TOTAL", totals[0],
              totals[1], totals[2]);
  std::printf("%-26s %14llu %14llu %14llu  (decisions)\n", "",
              static_cast<unsigned long long>(decs[0]),
              static_cast<unsigned long long>(decs[1]),
              static_cast<unsigned long long>(decs[2]));
  std::printf("(expected: refined orderings at or below baseline, echoing "
              "the BMC result)\n");
  return 0;
}
