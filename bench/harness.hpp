// Shared harness for the table/figure benches: runs suite rows under each
// ordering policy with a per-run budget and reports the paper's metrics.
//
// Timeout semantics follow Table 1: "If the experiments cannot be finished
// within [the budget], we compare the CPU times spent to reach the maximum
// unrolling depth that all methods can complete; in those cases, the
// maximum unrolling depth is given in parentheses."
#pragma once

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bmc/engine.hpp"
#include "model/benchgen.hpp"
#include "util/assert.hpp"
#include "util/json.hpp"

namespace refbmc::benchharness {

// ---- machine-readable output ----------------------------------------------
//
// Benches additionally emit a BENCH_<name>.json next to where they run so
// the perf trajectory is tracked across PRs by tooling, not eyeballs —
// the CI bench-trajectory step diffs these artifacts textually, which is
// why JsonWriter (util/json.hpp) guarantees escaping, deterministic key
// order, and finite numbers.
using refbmc::JsonWriter;

/// Serializes one DepthStats row, including the solver-core hot-path
/// counters (binary propagations, blocking-literal skips) so BENCH_*.json
/// tracks BCP throughput across PRs, not just verdicts.
inline void write_depth_stats(JsonWriter& w, const bmc::DepthStats& d) {
  w.begin_object();
  w.kv("depth", d.depth);
  w.kv("result", to_string(d.result));
  w.kv("decisions", d.decisions);
  w.kv("propagations", d.propagations);
  w.kv("binary_propagations", d.binary_propagations);
  w.kv("blocker_skips", d.blocker_skips);
  w.kv("conflicts", d.conflicts);
  w.kv("clauses_exported", d.clauses_exported);
  w.kv("clauses_imported", d.clauses_imported);
  w.kv("import_propagations", d.import_propagations);
  w.kv("ranks_published", d.ranks_published);
  w.kv("rank_refreshes", d.rank_refreshes);
  w.kv("rank_epoch", d.rank_epoch);
  w.kv("time_sec", d.time_sec);
  // Phase split of time_sec (obs layer, PR 6): where this depth's wall
  // time went — formula growth, encoder simplification, SAT search.
  w.kv("encode_us", d.encode_us);
  w.kv("simplify_us", d.simplify_us);
  w.kv("solve_us", d.solve_us);
  // Preprocess / inprocess counters (PR 7): what the tape pass removed
  // before solving and what vivification trimmed during it.
  w.kv("vars_eliminated", d.vars_eliminated);
  w.kv("clauses_subsumed", d.clauses_subsumed);
  w.kv("lits_strengthened", d.lits_strengthened);
  w.kv("preprocess_us", d.preprocess_us);
  w.kv("vivify_rounds", d.vivify_rounds);
  w.kv("inprocess_us", d.inprocess_us);
  // Incremental fast path (PR 8): savepoint resumes and frame-retirement
  // sweeps (zero for scratch sessions / savepoint off).
  w.kv("savepoint_hits", d.savepoint_hits);
  w.kv("savepoint_misses", d.savepoint_misses);
  w.kv("savepoint_levels_reused", d.savepoint_levels_reused);
  w.kv("retired_frame_clauses", d.retired_frame_clauses);
  // Formula-state footprint (PR 10): tracker high-water mark plus this
  // entrant's arena and the (race-wide) tape residency at depth end.
  w.kv("peak_bytes", d.peak_bytes);
  w.kv("arena_bytes", d.arena_bytes);
  w.kv("tape_bytes", d.tape_bytes);
  w.end_object();
}

/// Serializes the solver-core totals of a finished run under keys shared
/// with write_depth_stats, plus propagations/sec over the solve time.
inline void write_solver_core_totals(JsonWriter& w,
                                     const bmc::BmcResult& result) {
  std::uint64_t bin = 0, skips = 0, exported = 0, imported = 0;
  std::uint64_t published = 0, refreshes = 0;
  double solve_time = 0.0;
  for (const auto& d : result.per_depth) {
    bin += d.binary_propagations;
    skips += d.blocker_skips;
    exported += d.clauses_exported;
    imported += d.clauses_imported;
    published += d.ranks_published;
    refreshes += d.rank_refreshes;
    solve_time += d.time_sec;
  }
  const std::uint64_t props = result.total_propagations();
  w.kv("decisions", result.total_decisions());
  w.kv("propagations", props);
  w.kv("binary_propagations", bin);
  w.kv("blocker_skips", skips);
  w.kv("conflicts", result.total_conflicts());
  w.kv("clauses_exported", exported);
  w.kv("clauses_imported", imported);
  w.kv("ranks_published", published);
  w.kv("rank_refreshes", refreshes);
  w.kv("solve_time_sec", solve_time);
  w.kv("props_per_sec",
       solve_time > 0.0 ? static_cast<double>(props) / solve_time : 0.0);
}

struct PolicyRun {
  bmc::BmcResult result;
  /// cumulative_time[i] = seconds spent on depths start..i (prefix sums).
  std::vector<double> cumulative_time;
  bool finished = false;  // ran to cex or bound without hitting the budget

  int last_depth() const { return result.last_completed_depth; }
};

inline PolicyRun run_policy(const model::Benchmark& bm,
                            bmc::OrderingPolicy policy, double budget_sec,
                            bmc::EngineConfig base_cfg = {}) {
  bmc::EngineConfig cfg = base_cfg;
  cfg.policy = policy;
  cfg.max_depth = bm.suggested_bound;
  cfg.total_time_limit_sec = budget_sec;
  cfg.validate_counterexamples = true;
  bmc::BmcEngine engine(bm.net, cfg);
  PolicyRun run;
  run.result = engine.run();
  run.finished = run.result.status != bmc::BmcResult::Status::ResourceLimit;
  double acc = 0.0;
  for (const auto& d : run.result.per_depth) {
    acc += d.time_sec;
    run.cumulative_time.push_back(acc);
  }
  return run;
}

/// Cumulative solver time up to and including depth k (0 if k below start).
inline double cumulative_time_at(const PolicyRun& run, int k) {
  double t = 0.0;
  for (std::size_t i = 0; i < run.result.per_depth.size(); ++i) {
    if (run.result.per_depth[i].depth > k) break;
    t = run.cumulative_time[i];
  }
  return t;
}

struct RowComparison {
  std::string name;
  std::string verdict;       // "F" (fails), "T" (passes bound), "(k)" capped
  int compared_depth = 0;    // depth at which times are compared
  bool capped = false;       // some policy hit the budget
  std::vector<double> times;  // one per policy, comparable at compared_depth
  std::vector<std::uint64_t> decisions;
};

/// Applies the Table 1 comparison rule across policies.
inline RowComparison compare_row(const model::Benchmark& bm,
                                 const std::vector<PolicyRun>& runs) {
  RowComparison row;
  row.name = bm.name;
  bool all_finished = true;
  int min_depth = 1 << 30;
  for (const auto& r : runs) {
    all_finished &= r.finished;
    min_depth = std::min(min_depth, r.last_depth());
  }
  if (all_finished) {
    row.compared_depth = runs.front().last_depth();
    row.verdict = bm.expect_fail ? "F" : "T";
    for (const auto& r : runs) {
      // Compare accumulated SAT-solver time: CNF generation is identical
      // across policies (the paper's industrial circuits were entirely
      // solve-dominated; our synthetic ones are not, so including the
      // common unrolling cost would only dilute the ratios).
      row.times.push_back(r.cumulative_time.empty()
                              ? 0.0
                              : r.cumulative_time.back());
      row.decisions.push_back(r.result.total_decisions());
    }
  } else {
    row.capped = true;
    row.compared_depth = std::max(min_depth, 0);
    row.verdict = "(" + std::to_string(row.compared_depth) + ")";
    for (const auto& r : runs) {
      row.times.push_back(cumulative_time_at(r, row.compared_depth));
      std::uint64_t dec = 0;
      for (const auto& d : r.result.per_depth)
        if (d.depth <= row.compared_depth) dec += d.decisions;
      row.decisions.push_back(dec);
    }
  }
  return row;
}

}  // namespace refbmc::benchharness
