// §3.1 overhead claim: maintaining the simplified conflict-dependency
// graph (pseudo-ID antecedent lists) costs ≈5% runtime and negligible
// memory, while leaving the search itself untouched.
//
//   $ ./bench_overhead_cdg [--budget SECONDS] [--repeats N]
//
// Runs baseline BMC with CDG bookkeeping off and on (identical decision
// sequences — verified by comparing decision counts) and reports the
// runtime delta plus the CDG memory footprint.
#include <cstdio>

#include "bmc/engine.hpp"
#include "model/benchgen.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  using namespace refbmc;

  const Options opts = Options::parse(argc, argv);
  const int repeats = opts.get_int("repeats", 3);

  // Search-heavy rows so solver time dominates CNF generation.
  std::vector<model::Benchmark> rows;
  rows.push_back(model::with_distractor(model::arbiter_safe(8), 24, 103));
  rows.push_back(model::with_distractor(model::fifo_safe(4), 32, 104));
  rows.push_back(model::accumulator_reach(16, 4, 255));
  rows.push_back(model::with_distractor(model::peterson_safe(), 32, 106));

  std::printf("CDG bookkeeping overhead (baseline policy, %d repeats, "
              "min-of-repeats)\n\n",
              repeats);
  std::printf("%-26s %10s %10s %9s %10s\n", "model", "off(s)", "on(s)",
              "overhead", "same-path");

  double sum_off = 0, sum_on = 0;
  for (const auto& bm : rows) {
    double best_off = 1e30, best_on = 1e30;
    std::uint64_t dec_off = 0, dec_on = 0;
    for (int rep = 0; rep < repeats; ++rep) {
      bmc::EngineConfig off;
      off.policy = bmc::OrderingPolicy::Baseline;
      off.always_track_cdg = false;
      off.max_depth = bm.expect_fail ? bm.expect_depth - 1
                                     : bm.suggested_bound;
      bmc::EngineConfig on = off;
      on.always_track_cdg = true;
      const bmc::BmcResult r_off = bmc::BmcEngine(bm.net, off).run();
      const bmc::BmcResult r_on = bmc::BmcEngine(bm.net, on).run();
      best_off = std::min(best_off, r_off.total_time_sec);
      best_on = std::min(best_on, r_on.total_time_sec);
      dec_off = r_off.total_decisions();
      dec_on = r_on.total_decisions();
    }
    sum_off += best_off;
    sum_on += best_on;
    std::printf("%-26s %10.3f %10.3f %8.1f%% %10s\n", bm.name.c_str(),
                best_off, best_on, 100.0 * (best_on - best_off) / best_off,
                dec_off == dec_on ? "yes" : "NO");
  }
  std::printf("\nTOTAL %31.3f %10.3f %8.1f%%\n", sum_off, sum_on,
              100.0 * (sum_on - sum_off) / sum_off);
  std::printf("(paper: ≈5%% runtime increase, negligible memory; identical "
              "search path expected)\n");
  return 0;
}
