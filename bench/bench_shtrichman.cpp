// Related-work comparison: the paper positions its register-axis ordering
// against Shtrichman's time-axis BFS ordering (CAV'00).  This bench runs
// both, plus the VSIDS baseline, on a suite subset.
//
//   $ ./bench_shtrichman [--budget SECONDS]
#include <cstdio>

#include "harness.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  using namespace refbmc;
  using namespace refbmc::benchharness;
  using bmc::OrderingPolicy;

  const Options opts = Options::parse(argc, argv);
  const double budget = opts.get_double("budget", 5.0);

  std::vector<model::Benchmark> rows;
  rows.push_back(model::with_distractor(model::arbiter_safe(8), 24, 103));
  rows.push_back(model::with_distractor(model::fifo_safe(4), 32, 104));
  rows.push_back(model::with_distractor(model::counter_safe(8, 200, 250), 32, 102));
  rows.push_back(model::accumulator_reach(12, 3, 70));
  rows.push_back(model::with_distractor(model::peterson_safe(), 32, 106));
  rows.push_back(model::fifo_buggy(4));

  const OrderingPolicy policies[] = {OrderingPolicy::Baseline,
                                     OrderingPolicy::Shtrichman,
                                     OrderingPolicy::Static};
  std::printf("Register-axis (ours) vs time-axis (Shtrichman) orderings\n\n");
  std::printf("%-26s %10s %12s %12s  (seconds)\n", "model", "vsids",
              "time-axis", "register");

  double totals[3] = {0, 0, 0};
  std::uint64_t dec[3] = {0, 0, 0};
  for (const auto& bm : rows) {
    std::printf("%-26s", bm.name.c_str());
    for (int i = 0; i < 3; ++i) {
      const PolicyRun run = run_policy(bm, policies[i], budget);
      const double t =
          run.cumulative_time.empty() ? 0.0 : run.cumulative_time.back();
      totals[i] += t;
      dec[i] += run.result.total_decisions();
      std::printf(" %11.3f%s", t, run.finished ? " " : "^");
    }
    std::printf("\n");
  }
  std::printf("\n%-26s %10.3f %12.3f %12.3f\n", "TOTAL", totals[0],
              totals[1], totals[2]);
  std::printf("%-26s %10llu %12llu %12llu  (decisions)\n", "",
              static_cast<unsigned long long>(dec[0]),
              static_cast<unsigned long long>(dec[1]),
              static_cast<unsigned long long>(dec[2]));
  std::printf("(expected: register-axis ≤ time-axis on core-concentrated "
              "circuits; both ≤ plain VSIDS)\n");
  return 0;
}
