// Fig. 7 of the paper: per-depth number of decisions and number of
// implications, standard BMC vs. refine_order BMC, on one hard circuit
// (the paper uses IBM circuit 02_3_b2 up to depth ~65; we use the
// distractor-wrapped arbiter, our closest analogue: a passing property
// whose proof needs a small stable register core inside a wide cone,
// with real search at every depth).
//
//   $ ./bench_fig7_stats [--depth N]
//
// Prints two aligned series per statistic; the expected shape is the
// refined ordering tracking one to two orders of magnitude below the
// baseline once the ranking has locked onto the core (after the first
// few depths).
#include <cstdio>

#include "bmc/engine.hpp"
#include "model/benchgen.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  using namespace refbmc;
  using bmc::OrderingPolicy;

  const Options opts = Options::parse(argc, argv);
  const int depth = opts.get_int("depth", 14);

  model::Benchmark bm =
      model::with_distractor(model::arbiter_safe(8), 24, 103);
  std::printf("Fig 7 statistics on %s (x = unrolling depth)\n\n",
              bm.name.c_str());

  bmc::BmcResult results[2];
  const OrderingPolicy policies[2] = {OrderingPolicy::Baseline,
                                      OrderingPolicy::Static};
  for (int i = 0; i < 2; ++i) {
    bmc::EngineConfig cfg;
    cfg.policy = policies[i];
    cfg.max_depth = depth;
    bmc::BmcEngine engine(bm.net, cfg);
    results[i] = engine.run();
  }

  std::printf("Number of Decisions\n");
  std::printf("%5s %12s %12s %8s\n", "k", "BMC", "ref_ord_BMC", "ratio");
  for (int k = 0; k <= depth; ++k) {
    const auto& b = results[0].per_depth[static_cast<std::size_t>(k)];
    const auto& r = results[1].per_depth[static_cast<std::size_t>(k)];
    std::printf("%5d %12llu %12llu %7.2fx\n", k,
                static_cast<unsigned long long>(b.decisions),
                static_cast<unsigned long long>(r.decisions),
                r.decisions ? static_cast<double>(b.decisions) /
                                  static_cast<double>(r.decisions)
                            : 0.0);
  }

  std::printf("\nNumber of Implications\n");
  std::printf("%5s %12s %12s %8s\n", "k", "BMC", "ref_ord_BMC", "ratio");
  for (int k = 0; k <= depth; ++k) {
    const auto& b = results[0].per_depth[static_cast<std::size_t>(k)];
    const auto& r = results[1].per_depth[static_cast<std::size_t>(k)];
    std::printf("%5d %12llu %12llu %7.2fx\n", k,
                static_cast<unsigned long long>(b.propagations),
                static_cast<unsigned long long>(r.propagations),
                r.propagations ? static_cast<double>(b.propagations) /
                                     static_cast<double>(r.propagations)
                               : 0.0);
  }

  std::uint64_t bd = results[0].total_decisions(),
                rd = results[1].total_decisions();
  std::uint64_t bp = results[0].total_propagations(),
                rp = results[1].total_propagations();
  std::printf("\ntotals: decisions %llu vs %llu (%.2fx), implications %llu "
              "vs %llu (%.2fx)\n",
              static_cast<unsigned long long>(bd),
              static_cast<unsigned long long>(rd),
              rd ? static_cast<double>(bd) / static_cast<double>(rd) : 0.0,
              static_cast<unsigned long long>(bp),
              static_cast<unsigned long long>(rp),
              rp ? static_cast<double>(bp) / static_cast<double>(rp) : 0.0);
  std::printf("(paper, 02_3_b2: both statistics visibly lower for "
              "ref_ord_BMC across depths — smaller search trees)\n");
  return 0;
}
