// The paper's conclusion: "our method can be combined with these
// incremental techniques to further improve their performance."  This
// bench crosses the instance-handling axes on a suite subset:
//
//   scratch     — fresh solver per depth, dynamic refined ordering;
//   incr        — one persistent solver, PR 7 pipeline (no delta
//                 preprocessing, root restart between depths);
//   incr+fast   — PR 8 fast path: delta preprocessing + assumption
//                 savepoint + batched frame retirement.
//
//   $ ./bench_incremental [--quick] [--budget SECONDS]
//
// Expected shape: incr < scratch (clause reuse), and incr+fast trims
// decisions/propagations further on most rows (identical verdicts).
// Results go to stdout and, machine-readably, to BENCH_incremental.json
// (the CI bench-trajectory step diffs the artifact across PRs).
#include <cstdio>

#include "harness.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  using namespace refbmc;
  using namespace refbmc::benchharness;
  using bmc::OrderingPolicy;

  const Options opts = Options::parse(argc, argv);
  const bool quick = opts.get_bool("quick", false);
  const double budget = opts.get_double("budget", quick ? 2.0 : 5.0);

  std::vector<model::Benchmark> rows;
  if (quick) {
    rows = model::quick_suite();
  } else {
    rows.push_back(model::with_distractor(model::arbiter_safe(8), 24, 103));
    rows.push_back(model::with_distractor(model::fifo_safe(4), 32, 104));
    rows.push_back(model::with_distractor(model::peterson_safe(), 32, 106));
    rows.push_back(model::accumulator_reach(16, 4, 255));
    rows.push_back(model::with_distractor(model::fifo_buggy(4), 24, 105));
    rows.push_back(
        model::with_distractor(model::needle(10, 8, 24, 30), 32, 109));
  }

  struct Mode {
    const char* name;
    bool incremental;
    bool fast;  // PR 8: delta preprocessing + savepoint + retirement
  };
  const Mode modes[] = {
      {"scratch", false, false},
      {"incr", true, false},
      {"incr+fast", true, true},
  };
  constexpr int kModes = 3;

  JsonWriter json;
  json.begin_object();
  json.kv("bench", "incremental");
  json.kv("quick", quick);
  json.kv("budget_sec", budget);
  json.key("rows");
  json.begin_array();

  std::printf("Scratch vs incremental vs incremental fast path (dynamic "
              "ordering; solver seconds)\n\n");
  std::printf("%-26s", "model");
  for (const Mode& m : modes) std::printf(" %13s", m.name);
  std::printf("  %9s %9s %7s\n", "save-hit%", "retired", "elim");

  double totals[kModes] = {0, 0, 0};
  std::uint64_t total_decisions[kModes] = {0, 0, 0};
  std::uint64_t total_propagations[kModes] = {0, 0, 0};
  int decisions_improved = 0, propagations_improved = 0, compared = 0;
  bool verdicts_all_match = true;
  for (const auto& bm : rows) {
    std::printf("%-26s", bm.name.c_str());
    PolicyRun runs[kModes];
    for (int i = 0; i < kModes; ++i) {
      bmc::EngineConfig cfg;
      cfg.incremental = modes[i].incremental;
      cfg.preprocess.enabled = modes[i].fast;
      cfg.solver.assumption_savepoint = modes[i].fast;
      if (modes[i].fast) cfg.solver.inprocess.vivify_interval = 8;
      runs[i] = run_policy(bm, OrderingPolicy::Dynamic, budget, cfg);
      const double t = runs[i].cumulative_time.empty()
                           ? 0.0
                           : runs[i].cumulative_time.back();
      totals[i] += t;
      total_decisions[i] += runs[i].result.total_decisions();
      total_propagations[i] += runs[i].result.total_propagations();
      std::printf(" %12.3f%s", t, runs[i].finished ? " " : "^");
    }

    // Fast-path specifics from the incr+fast run's per-depth stats.
    std::uint64_t hits = 0, misses = 0, retired = 0, eliminated = 0;
    for (const auto& d : runs[2].result.per_depth) {
      hits += d.savepoint_hits;
      misses += d.savepoint_misses;
      retired += d.retired_frame_clauses;
      eliminated += d.vars_eliminated;
    }
    const double hit_rate =
        hits + misses > 0
            ? static_cast<double>(hits) / static_cast<double>(hits + misses)
            : 0.0;
    std::printf("  %8.1f%% %9llu %7llu\n", 100.0 * hit_rate,
                static_cast<unsigned long long>(retired),
                static_cast<unsigned long long>(eliminated));

    const bool match =
        runs[0].result.status == runs[1].result.status &&
        runs[1].result.status == runs[2].result.status &&
        runs[0].result.counterexample_depth ==
            runs[2].result.counterexample_depth;
    verdicts_all_match &= match;
    // Improvement is only comparable when both incremental runs finished.
    if (runs[1].finished && runs[2].finished) {
      ++compared;
      if (runs[2].result.total_decisions() < runs[1].result.total_decisions())
        ++decisions_improved;
      if (runs[2].result.total_propagations() <
          runs[1].result.total_propagations())
        ++propagations_improved;
    }

    json.begin_object();
    json.kv("name", bm.name);
    json.kv("verdicts_match", match);
    for (int i = 0; i < kModes; ++i) {
      json.key(modes[i].name);
      json.begin_object();
      json.kv("finished", runs[i].finished);
      json.kv("last_depth", runs[i].last_depth());
      json.kv("cex_depth", runs[i].result.counterexample_depth);
      write_solver_core_totals(json, runs[i].result);
      json.end_object();
    }
    json.kv("savepoint_hit_rate", hit_rate);
    json.kv("savepoint_hits", hits);
    json.kv("savepoint_misses", misses);
    json.kv("retired_frame_clauses", retired);
    json.kv("vars_eliminated", eliminated);
    json.end_object();
  }
  json.end_array();

  std::printf("\n%-26s", "TOTAL");
  for (int i = 0; i < kModes; ++i) std::printf(" %13.3f", totals[i]);
  std::printf("\n%-26s", "decisions");
  for (int i = 0; i < kModes; ++i)
    std::printf(" %13llu", static_cast<unsigned long long>(total_decisions[i]));
  std::printf("\n%-26s", "RATIO");
  for (int i = 0; i < kModes; ++i)
    std::printf(" %12.0f%%",
                totals[0] > 0.0 ? 100.0 * totals[i] / totals[0] : 0.0);
  std::printf("\n\nfast path vs plain incremental: decisions improved on "
              "%d/%d rows, propagations on %d/%d%s\n",
              decisions_improved, compared, propagations_improved, compared,
              verdicts_all_match ? "" : "  VERDICT MISMATCH");
  std::printf("(^ = hit the per-run budget)\n");

  json.kv("total_scratch_sec", totals[0]);
  json.kv("total_incremental_sec", totals[1]);
  json.kv("total_fast_sec", totals[2]);
  json.kv("total_fast_ratio_vs_incremental",
          totals[1] > 0.0 ? totals[2] / totals[1] : 0.0);
  json.kv("rows_compared", compared);
  json.kv("rows_decisions_improved", decisions_improved);
  json.kv("rows_propagations_improved", propagations_improved);
  json.kv("verdicts_all_match", verdicts_all_match);
  json.end_object();

  if (!json.write_file("BENCH_incremental.json"))
    std::fprintf(stderr, "warning: could not write BENCH_incremental.json\n");
  else
    std::printf("wrote BENCH_incremental.json\n");
  return 0;
}
