// The paper's conclusion: "our method can be combined with these
// incremental techniques to further improve their performance."  This
// bench crosses the two axes — scratch vs. incremental instance handling
// × baseline VSIDS vs. dynamic refined ordering — on a suite subset.
//
//   $ ./bench_incremental [--budget SECONDS]
//
// Expected shape: incremental < scratch for both orderings (clause
// reuse), and the refined ordering improves both, so the combination
// (incremental + dynamic) sits in or near the best column.
#include <cstdio>

#include "harness.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  using namespace refbmc;
  using namespace refbmc::benchharness;
  using bmc::OrderingPolicy;

  const Options opts = Options::parse(argc, argv);
  const double budget = opts.get_double("budget", 5.0);

  std::vector<model::Benchmark> rows;
  rows.push_back(model::with_distractor(model::arbiter_safe(8), 24, 103));
  rows.push_back(model::with_distractor(model::fifo_safe(4), 32, 104));
  rows.push_back(model::with_distractor(model::peterson_safe(), 32, 106));
  rows.push_back(model::accumulator_reach(16, 4, 255));
  rows.push_back(model::with_distractor(model::fifo_buggy(4), 24, 105));
  rows.push_back(model::with_distractor(model::needle(10, 8, 24, 30), 32, 109));

  struct Mode {
    const char* name;
    OrderingPolicy policy;
    bool incremental;
  };
  const Mode modes[] = {
      {"scratch+vsids", OrderingPolicy::Baseline, false},
      {"scratch+dyn", OrderingPolicy::Dynamic, false},
      {"incr+vsids", OrderingPolicy::Baseline, true},
      {"incr+dyn", OrderingPolicy::Dynamic, true},
  };

  std::printf("Scratch vs incremental × baseline vs refined (solver "
              "seconds)\n\n");
  std::printf("%-26s", "model");
  for (const Mode& m : modes) std::printf(" %13s", m.name);
  std::printf("\n");

  double totals[4] = {0, 0, 0, 0};
  std::uint64_t conflicts[4] = {0, 0, 0, 0};
  for (const auto& bm : rows) {
    std::printf("%-26s", bm.name.c_str());
    for (int i = 0; i < 4; ++i) {
      bmc::EngineConfig cfg;
      cfg.policy = modes[i].policy;
      cfg.incremental = modes[i].incremental;
      const PolicyRun run = run_policy(bm, modes[i].policy, budget, cfg);
      const double t =
          run.cumulative_time.empty() ? 0.0 : run.cumulative_time.back();
      totals[i] += t;
      conflicts[i] += run.result.total_conflicts();
      std::printf(" %12.3f%s", t, run.finished ? " " : "^");
    }
    std::printf("\n");
  }
  std::printf("\n%-26s", "TOTAL");
  for (int i = 0; i < 4; ++i) std::printf(" %13.3f", totals[i]);
  std::printf("\n%-26s", "conflicts");
  for (int i = 0; i < 4; ++i)
    std::printf(" %13llu", static_cast<unsigned long long>(conflicts[i]));
  std::printf("\n%-26s", "RATIO");
  for (int i = 0; i < 4; ++i)
    std::printf(" %12.0f%%", 100.0 * totals[i] / totals[0]);
  std::printf("\n\n(^ = hit the per-run budget; times compared at the "
              "deepest common depth)\n");
  return 0;
}
