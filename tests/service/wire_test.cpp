// The serving wire: JSON parsing, frame framing, the options round trip
// and the socket-free request dispatcher.
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "model/aiger.hpp"
#include "model/benchgen.hpp"
#include "service/transport.hpp"
#include "service/wire.hpp"

namespace refbmc::service {
namespace {

JsonValue parse_ok(const std::string& text) {
  std::string error;
  const auto v = json_parse(text, &error);
  EXPECT_TRUE(v.has_value()) << error << " in: " << text;
  return v.value_or(JsonValue::null());
}

TEST(WireJsonTest, ParsesScalarsArraysAndNesting) {
  const JsonValue v = parse_ok(
      R"({"n": -3.5, "i": 42, "t": true, "f": false, "z": null,)"
      R"( "s": "heAllo\n", "a": [1, [2, 3], {"k": "v"}]})");
  ASSERT_TRUE(v.is_object());
  EXPECT_DOUBLE_EQ(v.get_number("n"), -3.5);
  EXPECT_EQ(v.get_int("i"), 42);
  EXPECT_TRUE(v.get_bool("t"));
  EXPECT_FALSE(v.get_bool("f", true));
  ASSERT_NE(v.find("z"), nullptr);
  EXPECT_TRUE(v.find("z")->is_null());
  EXPECT_EQ(v.get_string("s"), "heAllo\n");
  const JsonValue* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->items().size(), 3u);
  EXPECT_DOUBLE_EQ(a->items()[0].as_number(), 1.0);
  ASSERT_TRUE(a->items()[1].is_array());
  EXPECT_EQ(a->items()[2].get_string("k"), "v");
}

TEST(WireJsonTest, SixtyFourBitValuesTravelAsStrings) {
  // Doubles hold 53 bits; hashes and ids ride in strings.
  const JsonValue v =
      parse_ok(R"({"id": "18446744073709551615", "n": 7})");
  EXPECT_EQ(v.get_uint64("id"), 18446744073709551615ull);
  EXPECT_EQ(v.get_uint64("n"), 7u);        // plain numbers still work
  EXPECT_EQ(v.get_uint64("missing", 3u), 3u);
}

TEST(WireJsonTest, DuplicateKeysKeepTheLast) {
  EXPECT_EQ(parse_ok(R"({"k": 1, "k": 2})").get_int("k"), 2);
}

TEST(WireJsonTest, RejectsMalformedDocuments) {
  std::string error;
  for (const char* bad :
       {"", "{", R"({"a":})", "[1,]", R"({"a":1} trailing)", "tru",
        R"("unterminated)"}) {
    error.clear();
    EXPECT_FALSE(json_parse(bad, &error).has_value()) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(WireFramingTest, RoundTripsOverASocketPair) {
  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);

  const std::string payloads[] = {"", "{}", std::string(100000, 'x'),
                                  std::string("\x00\x01\xff binary", 15)};
  for (const std::string& sent : payloads) {
    // Writer in a thread so a large frame cannot deadlock the pair.
    std::thread writer([&] { EXPECT_TRUE(write_frame(fds[0], sent)); });
    std::string received;
    EXPECT_TRUE(read_frame(fds[1], received));
    writer.join();
    EXPECT_EQ(received, sent);
  }

  ::close(fds[0]);  // EOF is a clean false, not an error
  std::string leftover;
  EXPECT_FALSE(read_frame(fds[1], leftover));
  ::close(fds[1]);
}

TEST(WireFramingTest, OversizedLengthPrefixIsAProtocolError) {
  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // A hostile 4 GiB length header must be refused before any allocation
  // of that size — admission control, not OOM.
  const std::uint32_t huge = 0xffffffffu;
  unsigned char header[4];
  std::memcpy(header, &huge, 4);
  ASSERT_EQ(::write(fds[0], header, 4), 4);
  std::string payload;
  EXPECT_FALSE(read_frame(fds[1], payload));
  // And the cap is tunable for tests and small deployments.
  std::thread writer([&] { write_frame(fds[0], std::string(64, 'y')); });
  std::string small;
  EXPECT_FALSE(read_frame(fds[1], small, /*max_bytes=*/16));
  writer.join();
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(WireOptionsTest, RaceOptionsSurviveTheRoundTrip) {
  api::RaceOptions sent;
  sent.policies({"static", "evsids"})
      .max_depth(33)
      .budget_sec(2.5)
      .threads(3)
      .seed(0xdeadbeefcafef00dull)  // needs all 64 bits
      .incremental(true)
      .simplify(false)
      .bad_mode(bmc::BadMode::Any)
      .decision("evsids")
      .glue_lbd(3)
      .tier_lbd(9)
      .share(false)
      .share_lbd(6)
      .share_size(4)
      .share_cap(99)
      .share_rank(false)
      .core_weighting("exp-decay")
      .preprocess(false)
      .bve_budget(5)
      .vivify_interval(2)
      .assumption_savepoint(false);

  JsonWriter w;
  write_race_options(w, sent);
  const api::RaceOptions received = parse_race_options(parse_ok(w.str()));

  // Fingerprint equality == every behaviour-affecting knob survived.
  EXPECT_EQ(api::config_fingerprint(received), api::config_fingerprint(sent));
  EXPECT_EQ(received.cli().seed, sent.cli().seed);
  EXPECT_EQ(received.bad_mode(), bmc::BadMode::Any);
}

TEST(WireOptionsTest, DefaultsRoundTripAndAbsentMembersKeepDefaults) {
  const api::RaceOptions defaults;
  JsonWriter w;
  write_race_options(w, defaults);
  EXPECT_EQ(api::config_fingerprint(parse_race_options(parse_ok(w.str()))),
            api::config_fingerprint(defaults));
  // An empty object (an old client) decodes to pure defaults.
  EXPECT_EQ(api::config_fingerprint(parse_race_options(parse_ok("{}"))),
            api::config_fingerprint(defaults));
}

TEST(WireDispatchTest, SubmitWaitPollStatsShutdown) {
  JobServer server;
  const std::string aiger =
      model::to_aiger_string(model::fifo_buggy(4).net);

  JsonWriter submit;
  submit.begin_object();
  submit.kv("op", "submit");
  submit.kv("aiger", aiger);
  submit.kv("name", "wiretest");
  submit.kv("wait", true);
  submit.key("options");
  {
    api::RaceOptions options;
    options.policy("dynamic").max_depth(24);
    write_race_options(submit, options);
  }
  submit.end_object();

  const JsonValue resp = parse_ok(handle_request(server, submit.str()));
  EXPECT_TRUE(resp.get_bool("ok"));
  EXPECT_TRUE(resp.get_bool("accepted"));
  const JobId id = resp.get_uint64("id");
  ASSERT_NE(id, 0u);
  const JsonValue* status = resp.find("status");
  ASSERT_NE(status, nullptr);
  EXPECT_EQ(status->get_string("state"), "done");
  const JsonValue* result = status->find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->get_string("verdict"), "cex");
  EXPECT_FALSE(result->get_bool("from_cache", true));
  ASSERT_NE(result->find("trace"), nullptr);

  // poll sees the same terminal state.
  const JsonValue polled = parse_ok(handle_request(
      server, R"({"op": "poll", "id": )" + std::to_string(id) + "}"));
  EXPECT_TRUE(polled.get_bool("ok"));
  EXPECT_EQ(polled.find("status")->get_string("state"), "done");

  // events stream the per-depth ticks.
  const JsonValue events = parse_ok(handle_request(
      server, R"({"op": "events", "id": )" + std::to_string(id) + "}"));
  ASSERT_TRUE(events.get_bool("ok"));
  EXPECT_FALSE(events.find("events")->items().empty());

  const JsonValue stats =
      parse_ok(handle_request(server, R"({"op": "stats"})"));
  EXPECT_TRUE(stats.get_bool("ok"));
  EXPECT_EQ(stats.get_uint64("submitted"), 1u);
  EXPECT_EQ(stats.get_uint64("completed"), 1u);

  std::atomic<bool> shutdown_requested{false};
  const JsonValue bye = parse_ok(
      handle_request(server, R"({"op": "shutdown"})", &shutdown_requested));
  EXPECT_TRUE(bye.get_bool("ok"));
  EXPECT_TRUE(shutdown_requested.load());
}

TEST(WireDispatchTest, ErrorsAreTypedNotFatal) {
  JobServer server;
  // Transport-level errors: ok:false with a reason.
  for (const char* bad :
       {"not json at all", R"({"op": "no-such-op"})",
        R"({"op": "submit"})",  // missing aiger
        R"({"op": "submit", "aiger": "garbage"})",
        R"({"op": "poll", "id": 12345})", "[1,2,3]"}) {
    const JsonValue resp = parse_ok(handle_request(server, bad));
    EXPECT_FALSE(resp.get_bool("ok", true)) << bad;
    EXPECT_FALSE(resp.get_string("error").empty()) << bad;
  }

  // An admission rejection is NOT a transport error: ok:true,
  // accepted:false, typed reason.
  const std::string aiger =
      model::to_aiger_string(model::fifo_buggy(4).net);
  JsonWriter submit;
  submit.begin_object();
  submit.kv("op", "submit");
  submit.kv("aiger", aiger);
  submit.kv("bad", 42);  // out of range -> InvalidRequest
  submit.end_object();
  const JsonValue resp = parse_ok(handle_request(server, submit.str()));
  EXPECT_TRUE(resp.get_bool("ok"));
  EXPECT_FALSE(resp.get_bool("accepted", true));
  EXPECT_EQ(resp.get_string("reason"), "invalid_request");
}

TEST(WireSocketTest, ClientAndServerSpeakOverAUnixSocket) {
  JobServer server;
  const std::string path =
      "/tmp/refbmc_wire_test_" + std::to_string(::getpid()) + ".sock";
  SocketServer transport(server, path);
  std::string error;
  ASSERT_TRUE(transport.start(&error)) << error;

  Client client;
  ASSERT_TRUE(client.connect(path, &error)) << error;

  Client::SubmitArgs args;
  args.aiger = model::to_aiger_string(model::fifo_buggy(4).net);
  args.name = "socktest";
  args.wait = true;
  args.options.policy("dynamic").max_depth(24);
  const auto resp = client.submit(args, &error);
  ASSERT_TRUE(resp.has_value()) << error;
  EXPECT_TRUE(resp->get_bool("ok"));
  EXPECT_TRUE(resp->get_bool("accepted"));
  ASSERT_NE(resp->find("status"), nullptr);
  EXPECT_EQ(resp->find("status")->get_string("state"), "done");

  const auto stats = client.stats(&error);
  ASSERT_TRUE(stats.has_value()) << error;
  EXPECT_EQ(stats->get_uint64("completed"), 1u);

  client.close();
  transport.stop();
}

}  // namespace
}  // namespace refbmc::service
