// JobServer lifecycle: admission, priorities, cancel, deadlines, the
// result cache short-circuit and the rank warm start — the serving
// guarantees on top of api::check.
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "model/benchgen.hpp"
#include "service/job_server.hpp"

namespace refbmc::service {
namespace {

using namespace std::chrono_literals;

/// A quick job: finds the FIFO bug within a second.
api::CheckRequest quick_request() {
  api::CheckRequest r;
  r.net = model::fifo_buggy(4).net;
  r.name = "fifobug4";
  r.options.policy("dynamic").max_depth(24);
  return r;
}

/// A job that keeps a worker busy until cancelled / evicted: a safe
/// model with a practically unreachable bound (every depth is UNSAT, so
/// it never terminates early on a verdict).
api::CheckRequest slow_request() {
  api::CheckRequest r;
  r.net = model::arbiter_safe(8).net;
  r.name = "blocker";
  r.options.policy("dynamic").max_depth(100000);
  return r;
}

void spin_until_running(JobServer& server, JobId id) {
  for (int i = 0; i < 5000; ++i) {
    const auto st = server.poll(id);
    ASSERT_TRUE(st.has_value());
    if (st->state == JobState::Running) return;
    ASSERT_FALSE(is_terminal(st->state)) << to_string(st->state);
    std::this_thread::sleep_for(1ms);
  }
  FAIL() << "job never started running";
}

TEST(JobServerTest, SubmitRunsToDoneWithProgress) {
  JobServer server;
  const SubmitOutcome out = server.submit(quick_request());
  ASSERT_TRUE(out.accepted);

  const auto st = server.wait(out.id, /*timeout_sec=*/30.0);
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(st->state, JobState::Done);
  EXPECT_EQ(st->result.status,
            api::CheckResult::Status::CounterexampleFound);
  EXPECT_FALSE(st->result.from_cache);
  EXPECT_GT(st->depths_completed, 0);
  EXPECT_GT(st->events_available, 0u);

  // The progress stream is per-depth, monotone in seq, resumable.
  const auto all = server.events(out.id);
  ASSERT_FALSE(all.empty());
  for (std::size_t i = 1; i < all.size(); ++i)
    EXPECT_LT(all[i - 1].seq, all[i].seq);
  const auto tail = server.events(out.id, all.front().seq);
  EXPECT_EQ(tail.size(), all.size() - 1);
}

TEST(JobServerTest, IdenticalResubmissionIsServedFromCacheWithoutSolving) {
  JobServer server;
  const SubmitOutcome first = server.submit(quick_request());
  ASSERT_TRUE(first.accepted);
  const auto st1 = server.wait(first.id, 30.0);
  ASSERT_TRUE(st1.has_value());
  ASSERT_EQ(st1->state, JobState::Done);

  const SubmitOutcome second = server.submit(quick_request());
  ASSERT_TRUE(second.accepted);
  const auto st2 = server.wait(second.id, 30.0);
  ASSERT_TRUE(st2.has_value());
  ASSERT_EQ(st2->state, JobState::Done);

  // Served from cache: flagged, counted, verbatim — and no solver ran,
  // so the job emitted not a single per-depth progress event.
  EXPECT_TRUE(st2->result.from_cache);
  EXPECT_FALSE(st1->result.from_cache);
  EXPECT_TRUE(server.events(second.id).empty());
  EXPECT_EQ(st2->result.status, st1->result.status);
  EXPECT_EQ(st2->result.counterexample_depth,
            st1->result.counterexample_depth);
  EXPECT_EQ(st2->result.total_decisions(), st1->result.total_decisions());
  ASSERT_TRUE(st2->result.counterexample.has_value());

  const JobServer::Stats stats = server.stats();
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.completed, 2u);
}

TEST(JobServerTest, UseCacheOffForcesASolve) {
  JobServer server;
  const SubmitOutcome first = server.submit(quick_request());
  ASSERT_TRUE(first.accepted);
  ASSERT_TRUE(server.wait(first.id, 30.0).has_value());

  JobOptions opts;
  opts.use_cache = false;
  const SubmitOutcome second = server.submit(quick_request(), opts);
  ASSERT_TRUE(second.accepted);
  const auto st = server.wait(second.id, 30.0);
  ASSERT_TRUE(st.has_value());
  EXPECT_FALSE(st->result.from_cache);
  EXPECT_EQ(server.stats().cache_hits, 0u);
}

TEST(JobServerTest, CancelQueuedAndRunning) {
  ServerConfig cfg;
  cfg.workers = 1;
  JobServer server(cfg);

  const SubmitOutcome blocker = server.submit(slow_request());
  ASSERT_TRUE(blocker.accepted);
  spin_until_running(server, blocker.id);

  const SubmitOutcome queued = server.submit(quick_request());
  ASSERT_TRUE(queued.accepted);
  EXPECT_EQ(server.poll(queued.id)->state, JobState::Queued);

  // Queued: cancelled on the spot, never runs.
  EXPECT_TRUE(server.cancel(queued.id));
  EXPECT_EQ(server.poll(queued.id)->state, JobState::Cancelled);
  EXPECT_FALSE(server.cancel(queued.id));  // already terminal

  // Running: stops at the next solver checkpoint.
  EXPECT_TRUE(server.cancel(blocker.id));
  const auto st = server.wait(blocker.id, 30.0);
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(st->state, JobState::Cancelled);

  EXPECT_FALSE(server.cancel(9999));  // unknown id
}

TEST(JobServerTest, DeadlineEvictsWhileOtherJobsComplete) {
  ServerConfig cfg;
  cfg.workers = 1;
  JobServer server(cfg);

  const SubmitOutcome blocker = server.submit(slow_request());
  ASSERT_TRUE(blocker.accepted);
  spin_until_running(server, blocker.id);

  // Deadline runs from ADMISSION: a job that expires while still queued
  // behind the blocker is evicted without ever running...
  JobOptions tight;
  tight.deadline_sec = 0.02;
  const SubmitOutcome doomed = server.submit(quick_request(), tight);
  ASSERT_TRUE(doomed.accepted);

  // ...while its queue-mates are untouched.
  const SubmitOutcome healthy = server.submit(quick_request());
  ASSERT_TRUE(healthy.accepted);

  std::this_thread::sleep_for(60ms);  // let the tight deadline lapse
  ASSERT_TRUE(server.cancel(blocker.id));

  const auto doomed_st = server.wait(doomed.id, 30.0);
  ASSERT_TRUE(doomed_st.has_value());
  EXPECT_EQ(doomed_st->state, JobState::DeadlineExceeded);
  EXPECT_TRUE(server.events(doomed.id).empty());  // never solved

  const auto healthy_st = server.wait(healthy.id, 30.0);
  ASSERT_TRUE(healthy_st.has_value());
  EXPECT_EQ(healthy_st->state, JobState::Done);
  EXPECT_EQ(healthy_st->result.status,
            api::CheckResult::Status::CounterexampleFound);

  EXPECT_GE(server.stats().deadline_evictions, 1u);
}

TEST(JobServerTest, DeadlineStopsARunningJobAtADepthBoundary) {
  JobServer server;
  JobOptions opts;
  opts.deadline_sec = 0.2;
  const SubmitOutcome out = server.submit(slow_request(), opts);
  ASSERT_TRUE(out.accepted);
  const auto st = server.wait(out.id, 60.0);
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(st->state, JobState::DeadlineExceeded);
}

TEST(JobServerTest, PriorityClassesDrainHighBeforeBatch) {
  ServerConfig cfg;
  cfg.workers = 1;
  JobServer server(cfg);

  const SubmitOutcome blocker = server.submit(slow_request());
  ASSERT_TRUE(blocker.accepted);
  spin_until_running(server, blocker.id);

  // Admitted in batch-before-high order; the worker must still pick the
  // high-priority one first once the blocker is out of the way.
  JobOptions batch;
  batch.priority = Priority::Batch;
  batch.use_cache = false;
  api::CheckRequest batch_req = quick_request();
  batch_req.name = "batch";
  const SubmitOutcome low = server.submit(std::move(batch_req), batch);
  ASSERT_TRUE(low.accepted);

  JobOptions high;
  high.priority = Priority::High;
  high.use_cache = false;
  api::CheckRequest high_req = quick_request();
  high_req.name = "high";
  const SubmitOutcome hi = server.submit(std::move(high_req), high);
  ASSERT_TRUE(hi.accepted);

  ASSERT_TRUE(server.cancel(blocker.id));
  const auto hi_st = server.wait(hi.id, 30.0);
  const auto low_st = server.wait(low.id, 30.0);
  ASSERT_TRUE(hi_st.has_value());
  ASSERT_TRUE(low_st.has_value());
  EXPECT_EQ(hi_st->state, JobState::Done);
  EXPECT_EQ(low_st->state, JobState::Done);
  // The batch job was admitted FIRST but started only after the high one
  // finished, so it waited strictly longer.
  EXPECT_GT(low_st->queue_sec, hi_st->queue_sec);
}

TEST(JobServerTest, FullQueueRejectsWithTypedReason) {
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 1;
  JobServer server(cfg);

  const SubmitOutcome running = server.submit(slow_request());
  ASSERT_TRUE(running.accepted);
  spin_until_running(server, running.id);

  const SubmitOutcome queued = server.submit(quick_request());
  ASSERT_TRUE(queued.accepted);

  const SubmitOutcome overflow = server.submit(quick_request());
  EXPECT_FALSE(overflow.accepted);
  EXPECT_EQ(overflow.reason, RejectReason::QueueFull);
  // Rejected jobs are still pollable — the client can learn why.
  const auto st = server.poll(overflow.id);
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(st->state, JobState::Rejected);
  EXPECT_EQ(st->reject, RejectReason::QueueFull);
  EXPECT_EQ(server.stats().rejected, 1u);

  server.cancel(running.id);
  server.cancel(queued.id);
}

TEST(JobServerTest, InvalidRequestsAreRejectedUpFront) {
  JobServer server;
  api::CheckRequest bad_property = quick_request();
  bad_property.bad_index = 99;  // out of range
  const SubmitOutcome o1 = server.submit(std::move(bad_property));
  EXPECT_FALSE(o1.accepted);
  EXPECT_EQ(o1.reason, RejectReason::InvalidRequest);

  api::CheckRequest bad_policy = quick_request();
  bad_policy.options.policy("no-such-policy");
  const SubmitOutcome o2 = server.submit(std::move(bad_policy));
  EXPECT_FALSE(o2.accepted);
  EXPECT_EQ(o2.reason, RejectReason::InvalidRequest);
}

TEST(JobServerTest, ShutdownCancelsTheQueueAndRejectsNewWork) {
  ServerConfig cfg;
  cfg.workers = 1;
  JobServer server(cfg);
  const SubmitOutcome running = server.submit(slow_request());
  ASSERT_TRUE(running.accepted);
  spin_until_running(server, running.id);
  const SubmitOutcome queued = server.submit(quick_request());
  ASSERT_TRUE(queued.accepted);

  server.shutdown(/*cancel_running=*/true);

  EXPECT_TRUE(is_terminal(server.poll(running.id)->state));
  EXPECT_EQ(server.poll(queued.id)->state, JobState::Cancelled);
  const SubmitOutcome late = server.submit(quick_request());
  EXPECT_FALSE(late.accepted);
  EXPECT_EQ(late.reason, RejectReason::ShuttingDown);
}

TEST(JobServerTest, RankWarmStartFiresOnResubmittedModel) {
  // Same netlist, different depth: a cache miss, but the rank snapshot
  // of the first solve seeds the second race's ordering.
  JobServer server;
  api::CheckRequest first;
  first.net = model::fifo_safe(4).net;
  first.options.policy("dynamic").max_depth(6);
  const SubmitOutcome o1 = server.submit(std::move(first));
  ASSERT_TRUE(o1.accepted);
  ASSERT_TRUE(server.wait(o1.id, 30.0).has_value());

  api::CheckRequest deeper;
  deeper.net = model::fifo_safe(4).net;
  deeper.options.policy("dynamic").max_depth(9);
  const SubmitOutcome o2 = server.submit(std::move(deeper));
  ASSERT_TRUE(o2.accepted);
  const auto st = server.wait(o2.id, 30.0);
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(st->state, JobState::Done);
  EXPECT_FALSE(st->result.from_cache);
  EXPECT_GE(server.stats().rank_warm_starts, 1u);
}

TEST(JobServerTest, ConcurrentClientsAllComplete) {
  ServerConfig cfg;
  cfg.workers = 2;
  JobServer server(cfg);

  constexpr int kClients = 4;
  constexpr int kJobsEach = 3;
  std::vector<std::thread> clients;
  std::vector<int> failures(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&server, &failures, c] {
      for (int j = 0; j < kJobsEach; ++j) {
        api::CheckRequest req = quick_request();
        req.name = "client" + std::to_string(c) + "-" + std::to_string(j);
        JobOptions opts;
        opts.use_cache = (j % 2 == 0);  // mix cached and forced solves
        const SubmitOutcome out = server.submit(std::move(req), opts);
        if (!out.accepted) {
          ++failures[c];
          continue;
        }
        const auto st = server.wait(out.id, 60.0);
        if (!st || st->state != JobState::Done ||
            st->result.status !=
                api::CheckResult::Status::CounterexampleFound)
          ++failures[c];
      }
    });
  }
  for (auto& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) EXPECT_EQ(failures[c], 0) << c;
  EXPECT_EQ(server.stats().completed,
            static_cast<std::uint64_t>(kClients * kJobsEach));
  EXPECT_EQ(server.stats().queue_depth, 0u);
}

}  // namespace
}  // namespace refbmc::service
