// ResultCache semantics: hits are verbatim copies, capacity is LRU, and
// verdict-free results never poison the memo.
#include <gtest/gtest.h>

#include "model/benchgen.hpp"
#include "service/result_cache.hpp"

namespace refbmc::service {
namespace {

CacheKey key_of(std::uint64_t n) {
  CacheKey k;
  k.netlist_hash = 0x1000 + n;
  k.bad_index = 0;
  k.max_depth = 20;
  k.config = 0xc0ffee;
  return k;
}

api::CheckResult done_result(int depth) {
  api::CheckResult r;
  r.status = api::CheckResult::Status::CounterexampleFound;
  r.counterexample_depth = depth;
  r.last_completed_depth = depth;
  r.winner_policy = "dynamic";
  r.wall_time_sec = 0.25;
  bmc::DepthStats d;
  d.depth = depth;
  d.decisions = 42;
  d.propagations = 99;
  r.per_depth.push_back(d);
  return r;
}

TEST(ResultCacheTest, HitReturnsVerbatimCopyMarkedFromCache) {
  ResultCache cache(4);
  const CacheKey k = key_of(1);
  EXPECT_FALSE(cache.lookup(k).has_value());
  EXPECT_EQ(cache.misses(), 1u);

  cache.insert(k, done_result(7));
  const auto hit = cache.lookup(k);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_TRUE(hit->from_cache);
  EXPECT_EQ(hit->status, api::CheckResult::Status::CounterexampleFound);
  EXPECT_EQ(hit->counterexample_depth, 7);
  EXPECT_EQ(hit->winner_policy, "dynamic");
  EXPECT_EQ(hit->wall_time_sec, 0.25);
  ASSERT_EQ(hit->per_depth.size(), 1u);
  EXPECT_EQ(hit->per_depth[0].decisions, 42u);
  EXPECT_EQ(hit->total_decisions(), 42u);
}

TEST(ResultCacheTest, KeyComponentsAreAllDiscriminating) {
  ResultCache cache(8);
  cache.insert(key_of(1), done_result(3));
  for (CacheKey k : {key_of(1), key_of(1), key_of(1)}) {
    // Each perturbed component must miss.
    CacheKey bad = k;
    bad.bad_index = 1;
    EXPECT_FALSE(cache.lookup(bad).has_value());
    CacheKey depth = k;
    depth.max_depth = 21;
    EXPECT_FALSE(cache.lookup(depth).has_value());
    CacheKey config = k;
    config.config ^= 1;
    EXPECT_FALSE(cache.lookup(config).has_value());
  }
  EXPECT_TRUE(cache.lookup(key_of(1)).has_value());
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsed) {
  ResultCache cache(2);
  cache.insert(key_of(1), done_result(1));
  cache.insert(key_of(2), done_result(2));
  ASSERT_TRUE(cache.lookup(key_of(1)).has_value());  // promote 1 over 2

  cache.insert(key_of(3), done_result(3));  // evicts 2, the LRU
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_TRUE(cache.lookup(key_of(1)).has_value());
  EXPECT_FALSE(cache.lookup(key_of(2)).has_value());
  EXPECT_TRUE(cache.lookup(key_of(3)).has_value());
}

TEST(ResultCacheTest, ReinsertRefreshesInsteadOfDuplicating) {
  ResultCache cache(4);
  cache.insert(key_of(1), done_result(3));
  cache.insert(key_of(1), done_result(9));
  EXPECT_EQ(cache.size(), 1u);
  const auto hit = cache.lookup(key_of(1));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->counterexample_depth, 9);
}

TEST(ResultCacheTest, VerdictFreeResultsAreNotCached) {
  // A ResourceLimit result (cancelled / deadline / budget) could do
  // better on a rerun; caching it would pin the failure.
  ResultCache cache(4);
  api::CheckResult limited;
  limited.status = api::CheckResult::Status::ResourceLimit;
  cache.insert(key_of(1), limited);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.lookup(key_of(1)).has_value());
}

TEST(ResultCacheTest, ZeroCapacityNeverStores) {
  ResultCache cache(0);
  cache.insert(key_of(1), done_result(1));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.lookup(key_of(1)).has_value());
}

TEST(ResultCacheTest, RequestKeyReflectsModelPropertyDepthAndConfig) {
  api::CheckRequest request;
  request.net = model::fifo_buggy(4).net;
  const CacheKey base = cache_key(request);

  api::CheckRequest same;
  same.net = model::fifo_buggy(4).net;
  same.name = "a different label";  // labels must not affect identity
  EXPECT_EQ(cache_key(same), base);

  api::CheckRequest other_model = request;
  other_model.net = model::arbiter_buggy(6).net;
  EXPECT_NE(cache_key(other_model), base);

  api::CheckRequest other_bad = request;
  other_bad.bad_index = 1;
  EXPECT_NE(cache_key(other_bad), base);

  api::CheckRequest deeper = request;
  deeper.options.max_depth(request.options.max_depth() + 1);
  EXPECT_NE(cache_key(deeper), base);

  api::CheckRequest other_config = request;
  other_config.options.seed(777);
  EXPECT_NE(cache_key(other_config), base);
}

}  // namespace
}  // namespace refbmc::service
