// The full 37-row standard suite solved end-to-end with the dynamic
// refined ordering: every verdict and failure depth must match the
// generator's ground truth.
#include <gtest/gtest.h>

#include "bmc/engine.hpp"
#include "model/benchgen.hpp"

namespace refbmc::bmc {
namespace {

class StandardSuiteTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(StandardSuiteTest, DynamicPolicySolvesRow) {
  static const auto suite = model::standard_suite();
  const model::Benchmark& bm = suite[GetParam()];
  SCOPED_TRACE(bm.name);

  EngineConfig cfg;
  cfg.policy = OrderingPolicy::Dynamic;
  cfg.max_depth = bm.suggested_bound;
  // Generous safety net: the deepest rows need ~3 s in a Release build
  // but up to ~25x that under ASan+UBSan on a loaded single-core runner,
  // and the budget exists to catch hangs, not to assert throughput.
  cfg.total_time_limit_sec = 180.0;
  BmcEngine engine(bm.net, cfg);
  const BmcResult r = engine.run();

  ASSERT_NE(r.status, BmcResult::Status::ResourceLimit)
      << "row unexpectedly hit the safety-net budget";
  if (bm.expect_fail) {
    ASSERT_EQ(r.status, BmcResult::Status::CounterexampleFound);
    EXPECT_EQ(r.counterexample_depth, bm.expect_depth);
    EXPECT_TRUE(validate_trace(bm.net, *r.counterexample));
  } else {
    EXPECT_EQ(r.status, BmcResult::Status::BoundReached);
    EXPECT_EQ(r.last_completed_depth, bm.suggested_bound);
  }
}

std::string row_name(const ::testing::TestParamInfo<std::size_t>& info) {
  static const auto suite = model::standard_suite();
  std::string name = suite[info.param].name;
  for (char& c : name)
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllRows, StandardSuiteTest,
                         ::testing::Range<std::size_t>(0, 37), row_name);

}  // namespace
}  // namespace refbmc::bmc
