// Incremental BMC against explicit-state reachability on randomized
// circuits — the incremental twin of bmc_oracle_test.
#include <gtest/gtest.h>

#include "bmc/engine.hpp"
#include "mc/reach.hpp"
#include "model/builder.hpp"
#include "util/rng.hpp"

namespace refbmc::bmc {
namespace {

using model::Builder;
using model::Netlist;
using model::Signal;

Netlist random_circuit(Rng& rng) {
  Netlist net;
  Builder b(net);
  const int n_latches = rng.next_int(2, 5);
  const int n_inputs = rng.next_int(1, 3);
  std::vector<Signal> pool;
  for (int i = 0; i < n_inputs; ++i) pool.push_back(net.add_input());
  std::vector<Signal> latches;
  for (int i = 0; i < n_latches; ++i) {
    const int init = rng.next_int(0, 2);
    latches.push_back(
        net.add_latch(init == 2 ? sat::l_Undef : sat::lbool(init == 1)));
    pool.push_back(latches.back());
  }
  const auto pick = [&]() {
    const Signal s = pool[static_cast<std::size_t>(
        rng.next_int(0, static_cast<int>(pool.size()) - 1))];
    return rng.next_bool() ? !s : s;
  };
  for (int g = 0; g < rng.next_int(4, 20); ++g) {
    const Signal s = net.add_and(pick(), pick());
    if (!s.is_const()) pool.push_back(s);
  }
  for (const Signal l : latches) net.set_next(l, pick());
  Signal bad = net.add_and(pick(), pick());
  for (int tries = 0; tries < 8 && bad.is_const(); ++tries)
    bad = net.add_and(pick(), pick());
  net.add_bad(bad, "rnd");
  return net;
}

class IncrementalOracleTest
    : public ::testing::TestWithParam<OrderingPolicy> {};

TEST_P(IncrementalOracleTest, AgreesWithExplicitReachability) {
  Rng rng(0x1BCB + static_cast<int>(GetParam()));
  constexpr int kBound = 12;
  int failing = 0, passing = 0;
  for (int iter = 0; iter < 50; ++iter) {
    const Netlist net = random_circuit(rng);
    const mc::ReachResult oracle = mc::explicit_reach(net);

    EngineConfig cfg;
    cfg.policy = GetParam();
    cfg.incremental = true;
    cfg.max_depth = kBound;
    cfg.verify_cores = true;
    const BmcResult r = BmcEngine(net, cfg).run();

    if (!oracle.property_holds && *oracle.shortest_counterexample <= kBound) {
      ASSERT_EQ(r.status, BmcResult::Status::CounterexampleFound)
          << "iter " << iter;
      EXPECT_EQ(r.counterexample_depth, *oracle.shortest_counterexample)
          << "iter " << iter;
      EXPECT_TRUE(validate_trace(net, *r.counterexample)) << "iter " << iter;
      ++failing;
    } else {
      EXPECT_EQ(r.status, BmcResult::Status::BoundReached) << "iter " << iter;
      ++passing;
    }
  }
  EXPECT_GT(failing, 5);
  EXPECT_GT(passing, 5);
}

INSTANTIATE_TEST_SUITE_P(Policies, IncrementalOracleTest,
                         ::testing::Values(OrderingPolicy::Baseline,
                                           OrderingPolicy::Static,
                                           OrderingPolicy::Dynamic,
                                           OrderingPolicy::Replace),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

}  // namespace
}  // namespace refbmc::bmc
