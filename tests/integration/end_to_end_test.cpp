// End-to-end flows mirroring real usage: AIGER file in, verdict and
// validated trace out; ranking persistence across an engine run; the
// §3.1 overhead claim in its functional form (CDG on/off changes no
// verdict); determinism of whole runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>

#include "bmc/engine.hpp"
#include "model/aiger.hpp"
#include "model/benchgen.hpp"

namespace refbmc::bmc {
namespace {

TEST(EndToEndTest, AigerFileToVerdict) {
  const auto bm = model::fifo_buggy(3);
  const std::string path = ::testing::TempDir() + "/refbmc_e2e.aag";
  model::write_aiger_file(path, bm.net);

  const model::Netlist loaded = model::read_aiger_file(path);
  const BmcResult r =
      check_invariant(loaded, bm.suggested_bound, OrderingPolicy::Dynamic);
  ASSERT_EQ(r.status, BmcResult::Status::CounterexampleFound);
  EXPECT_EQ(r.counterexample_depth, bm.expect_depth);
  EXPECT_TRUE(validate_trace(loaded, *r.counterexample));
  std::remove(path.c_str());
}

TEST(EndToEndTest, RankingConcentratesOnCoreRegisters) {
  // After a run on a distracted circuit, the accumulated register-axis
  // scores of the original (core) registers must dominate those of the
  // distractor registers — the mechanism behind Fig. 3/4.
  const auto bm = model::with_distractor(model::counter_safe(6, 40, 50), 16, 5);
  EngineConfig cfg;
  cfg.policy = OrderingPolicy::Static;
  cfg.max_depth = 10;
  // The input-free counter folds to constants under frame-wise
  // simplification (its registers then never appear in any core);
  // this test asserts the paper's register-axis story on the textbook
  // encoding.
  cfg.simplify = false;
  BmcEngine engine(bm.net, cfg);
  ASSERT_EQ(engine.run().status, BmcResult::Status::BoundReached);

  const CoreRanking& ranking = engine.ranking();
  double best_counter = 0.0, best_distractor = 0.0;
  for (const model::NodeId latch : bm.net.latches()) {
    const double score = ranking.node_score(latch);
    if (bm.net.name(latch).rfind("dreg", 0) == 0)
      best_distractor = std::max(best_distractor, score);
    else
      best_counter = std::max(best_counter, score);
  }
  EXPECT_GT(best_counter, 0.0);
  EXPECT_GT(best_counter, best_distractor);
}

TEST(EndToEndTest, CdgTrackingDoesNotChangeVerdicts) {
  // Functional half of the §3.1 claim (the cost half is bench_overhead_cdg).
  for (const auto& bm : model::quick_suite()) {
    SCOPED_TRACE(bm.name);
    EngineConfig with;
    with.policy = OrderingPolicy::Baseline;
    with.always_track_cdg = true;
    with.max_depth = bm.suggested_bound;
    EngineConfig without = with;
    without.always_track_cdg = false;
    const BmcResult a = BmcEngine(bm.net, with).run();
    const BmcResult b = BmcEngine(bm.net, without).run();
    EXPECT_EQ(a.status, b.status);
    EXPECT_EQ(a.counterexample_depth, b.counterexample_depth);
    // Identical search trajectory: the CDG is pure bookkeeping.
    EXPECT_EQ(a.total_decisions(), b.total_decisions());
    EXPECT_EQ(a.total_conflicts(), b.total_conflicts());
  }
}

TEST(EndToEndTest, RunsAreDeterministic) {
  const auto bm = model::with_distractor(model::fifo_safe(4), 16, 9);
  const auto run_once = [&]() {
    EngineConfig cfg;
    cfg.policy = OrderingPolicy::Dynamic;
    cfg.max_depth = 10;
    return BmcEngine(bm.net, cfg).run();
  };
  const BmcResult a = run_once();
  const BmcResult b = run_once();
  ASSERT_EQ(a.per_depth.size(), b.per_depth.size());
  for (std::size_t i = 0; i < a.per_depth.size(); ++i) {
    EXPECT_EQ(a.per_depth[i].decisions, b.per_depth[i].decisions) << i;
    EXPECT_EQ(a.per_depth[i].conflicts, b.per_depth[i].conflicts) << i;
    EXPECT_EQ(a.per_depth[i].core_vars, b.per_depth[i].core_vars) << i;
  }
}

TEST(EndToEndTest, CoreSizesStayBoundedAcrossDepths) {
  // Cores track the abstract model, not the whole instance: the fraction
  // of core variables per instance must not approach 1 on a distracted
  // circuit.
  const auto bm = model::with_distractor(model::counter_safe(8, 200, 250), 32, 7);
  EngineConfig cfg;
  cfg.policy = OrderingPolicy::Static;
  cfg.max_depth = 12;
  const BmcResult r = BmcEngine(bm.net, cfg).run();
  ASSERT_EQ(r.status, BmcResult::Status::BoundReached);
  for (const auto& d : r.per_depth) {
    if (d.depth < 2) continue;  // tiny instances are all core
    EXPECT_LT(static_cast<double>(d.core_vars),
              0.8 * static_cast<double>(d.cnf_vars))
        << "depth " << d.depth;
  }
}

TEST(EndToEndTest, StaticOrderingReusedAcrossEngines) {
  // Warm-starting a second engine pass (e.g. after raising the bound) via
  // start_depth: the Fig. 5 loop tolerates resuming at any depth.
  const auto bm = model::counter_safe(8, 200, 250);
  EngineConfig cfg;
  cfg.policy = OrderingPolicy::Static;
  cfg.max_depth = 6;
  BmcEngine first(bm.net, cfg);
  ASSERT_EQ(first.run().status, BmcResult::Status::BoundReached);

  EngineConfig resume = cfg;
  resume.start_depth = 7;
  resume.max_depth = 10;
  BmcEngine second(bm.net, resume);
  const BmcResult r = second.run();
  EXPECT_EQ(r.status, BmcResult::Status::BoundReached);
  EXPECT_EQ(r.per_depth.size(), 4u);
}

}  // namespace
}  // namespace refbmc::bmc
