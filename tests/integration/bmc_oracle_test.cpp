// Property-based end-to-end validation: random sequential circuits are
// model-checked both by explicit-state BFS (oracle) and by BMC under every
// ordering policy; verdicts and shortest counter-example depths must agree.
#include <gtest/gtest.h>

#include "bmc/engine.hpp"
#include "mc/reach.hpp"
#include "model/builder.hpp"
#include "util/rng.hpp"

namespace refbmc::bmc {
namespace {

using model::Builder;
using model::Netlist;
using model::Signal;

/// Random sequential circuit: a few latches and inputs, a random AIG over
/// them, random next-state wiring, and a random bad signal.
Netlist random_circuit(Rng& rng) {
  Netlist net;
  Builder b(net);
  const int n_latches = rng.next_int(2, 5);
  const int n_inputs = rng.next_int(1, 3);
  const int n_gates = rng.next_int(4, 24);

  std::vector<Signal> pool;
  for (int i = 0; i < n_inputs; ++i) pool.push_back(net.add_input());
  std::vector<Signal> latches;
  for (int i = 0; i < n_latches; ++i) {
    const int init = rng.next_int(0, 2);
    latches.push_back(net.add_latch(
        init == 2 ? sat::l_Undef : sat::lbool(init == 1)));
    pool.push_back(latches.back());
  }
  const auto pick = [&]() {
    const Signal s = pool[static_cast<std::size_t>(
        rng.next_int(0, static_cast<int>(pool.size()) - 1))];
    return rng.next_bool() ? !s : s;
  };
  for (int g = 0; g < n_gates; ++g) {
    const Signal s = net.add_and(pick(), pick());
    if (!s.is_const()) pool.push_back(s);
  }
  for (const Signal l : latches) net.set_next(l, pick());
  // Conjoin two random signals so the property holds reasonably often
  // (a single random signal is almost always reachable); retry away from
  // structural constants.
  Signal bad = net.add_and(pick(), pick());
  for (int tries = 0; tries < 8 && bad.is_const(); ++tries)
    bad = net.add_and(pick(), pick());
  net.add_bad(bad, "random_bad");
  return net;
}

struct OracleCase {
  OrderingPolicy policy;
  BadMode mode;
};

class BmcOracleTest : public ::testing::TestWithParam<OracleCase> {};

TEST_P(BmcOracleTest, AgreesWithExplicitReachability) {
  Rng rng(0x5EED + static_cast<int>(GetParam().policy) * 100 +
          static_cast<int>(GetParam().mode));
  constexpr int kBound = 12;
  int failing_seen = 0, passing_seen = 0;
  for (int iter = 0; iter < 60; ++iter) {
    const Netlist net = random_circuit(rng);
    const mc::ReachResult oracle = mc::explicit_reach(net);

    EngineConfig cfg;
    cfg.policy = GetParam().policy;
    cfg.bad_mode = GetParam().mode;
    cfg.max_depth = kBound;
    cfg.verify_cores = true;  // certify every unsat core along the way
    BmcEngine engine(net, cfg);
    const BmcResult r = engine.run();

    if (!oracle.property_holds && *oracle.shortest_counterexample <= kBound) {
      ASSERT_EQ(r.status, BmcResult::Status::CounterexampleFound)
          << "iter " << iter;
      EXPECT_EQ(r.counterexample_depth, *oracle.shortest_counterexample)
          << "iter " << iter;
      EXPECT_TRUE(validate_trace(net, *r.counterexample)) << "iter " << iter;
      ++failing_seen;
    } else {
      EXPECT_EQ(r.status, BmcResult::Status::BoundReached) << "iter " << iter;
      ++passing_seen;
    }
  }
  // The generator must exercise both outcomes.
  EXPECT_GT(failing_seen, 5);
  EXPECT_GT(passing_seen, 5);
}

INSTANTIATE_TEST_SUITE_P(
    PolicyModeGrid, BmcOracleTest,
    ::testing::Values(
        OracleCase{OrderingPolicy::Baseline, BadMode::Last},
        OracleCase{OrderingPolicy::Static, BadMode::Last},
        OracleCase{OrderingPolicy::Dynamic, BadMode::Last},
        OracleCase{OrderingPolicy::Shtrichman, BadMode::Last},
        OracleCase{OrderingPolicy::Static, BadMode::Any},
        OracleCase{OrderingPolicy::Baseline, BadMode::Any}),
    [](const auto& info) {
      return std::string(to_string(info.param.policy)) + "_" +
             (info.param.mode == BadMode::Last ? "last" : "any");
    });

}  // namespace
}  // namespace refbmc::bmc
