// Shared helpers for the test suite: formula builders and solver harness.
#pragma once

#include <vector>

#include "sat/dimacs.hpp"
#include "sat/solver.hpp"
#include "util/rng.hpp"

namespace refbmc::test {

inline std::vector<sat::Lit> lits(std::initializer_list<int> dimacs) {
  std::vector<sat::Lit> out;
  for (const int d : dimacs) out.push_back(sat::Lit::from_dimacs(d));
  return out;
}

/// Loads a Cnf into a fresh solver (variables created as needed).
inline void load(sat::Solver& solver, const sat::Cnf& cnf) {
  while (solver.num_vars() < cnf.num_vars) solver.new_var();
  for (const auto& clause : cnf.clauses) solver.add_clause(clause);
}

/// Solves a Cnf with the given config.
inline sat::Result solve_cnf(const sat::Cnf& cnf,
                             sat::SolverConfig config = {}) {
  sat::Solver solver(config);
  load(solver, cnf);
  return solver.solve();
}

/// Pigeonhole principle PHP(pigeons, holes): satisfiable iff
/// pigeons <= holes; classically hard for resolution when unsat.
inline sat::Cnf pigeonhole(int pigeons, int holes) {
  sat::Cnf cnf;
  cnf.num_vars = pigeons * holes;
  const auto var = [holes](int p, int h) { return p * holes + h; };
  for (int p = 0; p < pigeons; ++p) {
    std::vector<sat::Lit> clause;
    for (int h = 0; h < holes; ++h)
      clause.push_back(sat::Lit::make(var(p, h)));
    cnf.add_clause(clause);
  }
  for (int h = 0; h < holes; ++h)
    for (int p1 = 0; p1 < pigeons; ++p1)
      for (int p2 = p1 + 1; p2 < pigeons; ++p2)
        cnf.add_clause({sat::Lit::make(var(p1, h), true),
                        sat::Lit::make(var(p2, h), true)});
  return cnf;
}

/// Random k-SAT with the given clause count.
inline sat::Cnf random_ksat(Rng& rng, int num_vars, int num_clauses,
                            int width) {
  sat::Cnf cnf;
  cnf.num_vars = num_vars;
  for (int c = 0; c < num_clauses; ++c) {
    std::vector<sat::Lit> clause;
    for (int j = 0; j < width; ++j)
      clause.push_back(
          sat::Lit::make(rng.next_int(0, num_vars - 1), rng.next_bool()));
    cnf.add_clause(clause);
  }
  return cnf;
}

/// XOR chain x1 ^ x2 ^ ... ^ xn = parity, CNF-encoded pairwise; UNSAT when
/// combined with the opposite parity chain over the same variables.
inline void add_xor(sat::Cnf& cnf, int a, int b, int out) {
  // out = a ^ b
  cnf.add_clause({sat::Lit::make(out, true), sat::Lit::make(a),
                  sat::Lit::make(b)});
  cnf.add_clause({sat::Lit::make(out, true), sat::Lit::make(a, true),
                  sat::Lit::make(b, true)});
  cnf.add_clause({sat::Lit::make(out), sat::Lit::make(a, true),
                  sat::Lit::make(b)});
  cnf.add_clause({sat::Lit::make(out), sat::Lit::make(a),
                  sat::Lit::make(b, true)});
}

/// Checks that the solver's model satisfies every clause of `cnf`.
inline bool model_satisfies(const sat::Solver& solver, const sat::Cnf& cnf) {
  for (const auto& clause : cnf.clauses) {
    bool sat = false;
    for (const sat::Lit l : clause)
      if (solver.model_literal_true(l)) {
        sat = true;
        break;
      }
    if (!sat) return false;
  }
  return true;
}

}  // namespace refbmc::test
