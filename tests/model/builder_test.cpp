// Builder correctness is checked semantically: build small circuits and
// compare simulated outputs against arithmetic on uint64.
#include "model/builder.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace refbmc::model {
namespace {

std::uint64_t word_value(const sim::Simulator& s, const Word& w) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < w.size(); ++i)
    if (s.value(w[i])) v |= (1ull << i);
  return v;
}

class BuilderSemanticsTest : public ::testing::Test {
 protected:
  // Builds a combinational net with two 6-bit input words and evaluates
  // `out` for a grid of input values via fn(a, b) expectation.
  template <typename BuildFn, typename ExpectFn>
  void check_binary(BuildFn build, ExpectFn expect, int bits = 6) {
    Netlist net;
    Builder b(net);
    const Word wa = b.input_word("a", static_cast<std::size_t>(bits));
    const Word wb = b.input_word("b", static_cast<std::size_t>(bits));
    const Word out = build(b, wa, wb);
    sim::Simulator simulator(net);
    Rng rng(1234);
    const std::uint64_t mask = (1ull << bits) - 1;
    for (int iter = 0; iter < 200; ++iter) {
      const std::uint64_t a = rng.next_u64() & mask;
      const std::uint64_t bv = rng.next_u64() & mask;
      sim::InputFrame frame;
      for (int i = 0; i < bits; ++i) frame.push_back((a >> i) & 1);
      for (int i = 0; i < bits; ++i) frame.push_back((bv >> i) & 1);
      simulator.evaluate(frame);
      EXPECT_EQ(word_value(simulator, out), expect(a, bv) & mask)
          << "a=" << a << " b=" << bv;
    }
  }
};

TEST_F(BuilderSemanticsTest, AddWord) {
  check_binary(
      [](Builder& b, const Word& x, const Word& y) {
        return b.add_word(x, y);
      },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
}

TEST_F(BuilderSemanticsTest, AddWordWithCarry) {
  check_binary(
      [](Builder& b, const Word& x, const Word& y) {
        return b.add_word(x, y, Signal::constant(true));
      },
      [](std::uint64_t a, std::uint64_t b) { return a + b + 1; });
}

TEST_F(BuilderSemanticsTest, BitwiseOps) {
  check_binary(
      [](Builder& b, const Word& x, const Word& y) {
        return b.and_word(x, y);
      },
      [](std::uint64_t a, std::uint64_t b) { return a & b; });
  check_binary(
      [](Builder& b, const Word& x, const Word& y) {
        return b.or_word(x, y);
      },
      [](std::uint64_t a, std::uint64_t b) { return a | b; });
  check_binary(
      [](Builder& b, const Word& x, const Word& y) {
        return b.xor_word(x, y);
      },
      [](std::uint64_t a, std::uint64_t b) { return a ^ b; });
  check_binary(
      [](Builder& b, const Word& x, const Word&) { return b.not_word(x); },
      [](std::uint64_t a, std::uint64_t) { return ~a; });
}

TEST_F(BuilderSemanticsTest, Increment) {
  check_binary(
      [](Builder& b, const Word& x, const Word&) { return b.increment(x); },
      [](std::uint64_t a, std::uint64_t) { return a + 1; });
}

TEST_F(BuilderSemanticsTest, Comparisons) {
  check_binary(
      [](Builder& b, const Word& x, const Word& y) {
        return Word{b.eq_word(x, y)};
      },
      [](std::uint64_t a, std::uint64_t b) {
        return static_cast<std::uint64_t>(a == b);
      });
  check_binary(
      [](Builder& b, const Word& x, const Word& y) {
        return Word{b.less_than(x, y)};
      },
      [](std::uint64_t a, std::uint64_t b) {
        return static_cast<std::uint64_t>(a < b);
      });
}

TEST_F(BuilderSemanticsTest, MuxWord) {
  // Select via the LSB of b.
  check_binary(
      [](Builder& b, const Word& x, const Word& y) {
        return b.mux_word(y[0], x, b.not_word(x));
      },
      [](std::uint64_t a, std::uint64_t b) {
        return (b & 1) ? a : ~a;
      });
}

TEST_F(BuilderSemanticsTest, ShiftLeft) {
  check_binary(
      [](Builder& b, const Word& x, const Word& y) {
        return b.shift_left(x, y[0]);
      },
      [](std::uint64_t a, std::uint64_t b) {
        return (a << 1) | (b & 1);
      });
}

TEST(BuilderTest, ConstantWord) {
  Netlist net;
  Builder b(net);
  const Word w = b.constant_word(0b1011, 4);
  EXPECT_TRUE(w[0].is_const_true());
  EXPECT_TRUE(w[1].is_const_true());
  EXPECT_TRUE(w[2].is_const_false());
  EXPECT_TRUE(w[3].is_const_true());
  EXPECT_EQ(net.num_ands(), 0u);
}

TEST(BuilderTest, EqConstUsesNoInputsForConstants) {
  Netlist net;
  Builder b(net);
  const Word w = b.latch_word("r", 4, 0);
  const Signal eq = b.eq_const(w, 5);
  EXPECT_FALSE(eq.is_const());
  EXPECT_GT(net.num_ands(), 0u);
}

TEST(BuilderTest, GateLevelHelpers) {
  Netlist net;
  Builder b(net);
  const Signal x = net.add_input();
  const Signal y = net.add_input();
  // xor with itself is false; implies is ¬x ∨ y.
  EXPECT_EQ(b.xor_(x, x), Signal::constant(false));
  EXPECT_EQ(b.xnor_(x, x), Signal::constant(true));
  EXPECT_EQ(b.implies(x, x), Signal::constant(true));
  EXPECT_EQ(b.mux(Signal::constant(true), x, y), x);
  EXPECT_EQ(b.mux(Signal::constant(false), x, y), y);
}

TEST(BuilderTest, AndOrAllEmpty) {
  Netlist net;
  Builder b(net);
  EXPECT_EQ(b.and_all({}), Signal::constant(true));
  EXPECT_EQ(b.or_all({}), Signal::constant(false));
}

TEST(BuilderTest, AtMostOneAndExactlyOne) {
  Netlist net;
  Builder b(net);
  std::vector<Signal> xs;
  for (int i = 0; i < 4; ++i) xs.push_back(net.add_input());
  const Signal amo = b.at_most_one(xs);
  const Signal exo = b.exactly_one(xs);
  sim::Simulator s(net);
  for (unsigned m = 0; m < 16; ++m) {
    sim::InputFrame f;
    for (int i = 0; i < 4; ++i) f.push_back((m >> i) & 1);
    s.evaluate(f);
    const int pop = __builtin_popcount(m);
    EXPECT_EQ(s.value(amo), pop <= 1) << m;
    EXPECT_EQ(s.value(exo), pop == 1) << m;
  }
}

TEST(BuilderTest, WordSizeMismatchRejected) {
  Netlist net;
  Builder b(net);
  const Word a = b.input_word("a", 3);
  const Word c = b.input_word("c", 4);
  EXPECT_THROW(b.add_word(a, c), std::invalid_argument);
  EXPECT_THROW(b.eq_word(a, c), std::invalid_argument);
  EXPECT_THROW(b.set_next_word(a, c), std::invalid_argument);
}

TEST(BuilderTest, LatchWordInitValues) {
  Netlist net;
  Builder b(net);
  const Word w = b.latch_word("r", 4, 0b0110);
  EXPECT_EQ(net.latch_init(w[0].node()), sat::l_False);
  EXPECT_EQ(net.latch_init(w[1].node()), sat::l_True);
  EXPECT_EQ(net.latch_init(w[2].node()), sat::l_True);
  EXPECT_EQ(net.latch_init(w[3].node()), sat::l_False);
}

}  // namespace
}  // namespace refbmc::model
