#include "model/stats.hpp"

#include <gtest/gtest.h>

#include "model/benchgen.hpp"
#include "model/builder.hpp"

namespace refbmc::model {
namespace {

TEST(NetlistStatsTest, CountsMatchNetlist) {
  const auto bm = fifo_safe(3);
  const NetlistStats s = analyze(bm.net);
  EXPECT_EQ(s.num_inputs, bm.net.num_inputs());
  EXPECT_EQ(s.num_latches, bm.net.num_latches());
  EXPECT_EQ(s.num_ands, bm.net.num_ands());
  EXPECT_EQ(s.num_bads, 1u);
  ASSERT_EQ(s.coi_sizes.size(), 1u);
  EXPECT_GT(s.coi_sizes[0], 0u);
  EXPECT_GT(s.logic_depth, 0);
}

TEST(NetlistStatsTest, LogicDepthOfChain) {
  Netlist net;
  Builder b(net);
  const Signal x = net.add_input();
  const Signal y = net.add_input();
  Signal acc = b.and_(x, y);
  acc = b.and_(acc, x);
  acc = b.and_(acc, y);  // depth-3 chain (structural hashing permitting)
  const NetlistStats s = analyze(net);
  EXPECT_EQ(s.logic_depth, 3);
}

TEST(NetlistStatsTest, UninitialisedLatchesCounted) {
  Netlist net;
  net.add_latch(sat::l_False);
  net.add_latch(sat::l_Undef);
  net.add_latch(sat::l_Undef);
  const NetlistStats s = analyze(net);
  EXPECT_EQ(s.num_latches, 3u);
  EXPECT_EQ(s.uninitialised_latches, 2u);
}

TEST(NetlistStatsTest, ToStringMentionsEverything) {
  const auto bm = peterson_safe();
  const std::string str = analyze(bm.net).to_string();
  EXPECT_NE(str.find("inputs"), std::string::npos);
  EXPECT_NE(str.find("latches"), std::string::npos);
  EXPECT_NE(str.find("ANDs"), std::string::npos);
  EXPECT_NE(str.find("COI"), std::string::npos);
}

TEST(DotExportTest, ContainsAllStructuralElements) {
  Netlist net;
  Builder b(net);
  const Signal in = net.add_input("go");
  const Signal l = net.add_latch(sat::l_True, "state");
  net.set_next(l, b.xor_(l, in));
  net.add_bad(b.and_(l, in), "oops");
  const std::string dot = to_dot_string(net);
  EXPECT_NE(dot.find("digraph netlist"), std::string::npos);
  EXPECT_NE(dot.find("\"go\" [shape=diamond]"), std::string::npos);
  EXPECT_NE(dot.find("init=1"), std::string::npos);
  EXPECT_NE(dot.find("shape=octagon"), std::string::npos);
  EXPECT_NE(dot.find("oops"), std::string::npos);
  EXPECT_NE(dot.find("style=dotted"), std::string::npos);  // latch next
}

TEST(DotExportTest, ComplementedFaninsDashes) {
  Netlist net;
  Builder b(net);
  const Signal x = net.add_input("x");
  const Signal y = net.add_input("y");
  net.add_bad(b.and_(!x, y), "b");
  const std::string dot = to_dot_string(net);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
}

TEST(DotExportTest, HandlesConstantsAndUnnamedNodes) {
  Netlist net;
  const Signal l = net.add_latch(sat::l_False);
  net.set_next(l, Signal::constant(true));
  net.add_bad(Signal::constant(false), "never");
  const std::string dot = to_dot_string(net);
  EXPECT_NE(dot.find("const1"), std::string::npos);
  EXPECT_NE(dot.find("const0"), std::string::npos);
  EXPECT_NE(dot.find("\"n1\""), std::string::npos);  // auto-named latch
}

}  // namespace
}  // namespace refbmc::model
