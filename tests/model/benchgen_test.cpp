// Benchmark families: structural sanity plus semantic validation of every
// claimed verdict/depth against explicit-state reachability where the
// state space permits.
#include "model/benchgen.hpp"

#include <gtest/gtest.h>

#include <set>

#include "mc/reach.hpp"

namespace refbmc::model {
namespace {

void expect_matches_reachability(const Benchmark& bm) {
  SCOPED_TRACE(bm.name);
  ASSERT_EQ(bm.net.bad_properties().size(), 1u);
  ASSERT_NO_THROW(bm.net.check());
  const mc::ReachResult reach = mc::explicit_reach(bm.net);
  if (bm.expect_fail) {
    EXPECT_FALSE(reach.property_holds);
    ASSERT_TRUE(reach.shortest_counterexample.has_value());
    EXPECT_EQ(*reach.shortest_counterexample, bm.expect_depth);
  } else {
    // Passing within the bound: no counter-example at depth ≤ bound.
    if (!reach.property_holds) {
      EXPECT_GT(*reach.shortest_counterexample, bm.suggested_bound);
    }
  }
}

TEST(BenchgenTest, CounterReach) {
  expect_matches_reachability(counter_reach(4, 9, false));
  expect_matches_reachability(counter_reach(4, 9, true));
  expect_matches_reachability(counter_reach(6, 13, true));
}

TEST(BenchgenTest, CounterReachRejectsOutOfRangeTarget) {
  EXPECT_THROW(counter_reach(3, 8, false), std::invalid_argument);
}

TEST(BenchgenTest, CounterSafe) {
  expect_matches_reachability(counter_safe(4, 10, 12));
  expect_matches_reachability(counter_safe(5, 20, 25));
}

TEST(BenchgenTest, ShiftAllOnes) {
  expect_matches_reachability(shift_all_ones(3));
  expect_matches_reachability(shift_all_ones(6));
}

TEST(BenchgenTest, LfsrHit) {
  expect_matches_reachability(lfsr_hit(4, 7));
  expect_matches_reachability(lfsr_hit(6, 12));
  expect_matches_reachability(lfsr_hit(8, 20));
}

TEST(BenchgenTest, LfsrOrbitTooLongRejected) {
  // A 3-bit LFSR orbit repeats within 8 steps; asking for 100 must throw.
  EXPECT_THROW(lfsr_hit(3, 100), std::invalid_argument);
}

TEST(BenchgenTest, LfsrSafe) {
  expect_matches_reachability(lfsr_safe(4));
  expect_matches_reachability(lfsr_safe(6));
}

TEST(BenchgenTest, GraySafe) {
  expect_matches_reachability(gray_safe(3));
  expect_matches_reachability(gray_safe(4));
}

TEST(BenchgenTest, JohnsonSafe) {
  expect_matches_reachability(johnson_safe(3));
  expect_matches_reachability(johnson_safe(5));
}

TEST(BenchgenTest, Arbiter) {
  expect_matches_reachability(arbiter_safe(3));
  expect_matches_reachability(arbiter_safe(5));
  expect_matches_reachability(arbiter_buggy(3));
  expect_matches_reachability(arbiter_buggy(5));
}

TEST(BenchgenTest, Fifo) {
  expect_matches_reachability(fifo_safe(3));
  expect_matches_reachability(fifo_buggy(3));
  expect_matches_reachability(fifo_buggy(4));
}

TEST(BenchgenTest, Peterson) {
  expect_matches_reachability(peterson_safe());
  expect_matches_reachability(peterson_buggy());
}

TEST(BenchgenTest, Traffic) {
  expect_matches_reachability(traffic_safe(4));
  expect_matches_reachability(traffic_buggy(4));
  expect_matches_reachability(traffic_buggy(5));
}

TEST(BenchgenTest, Accumulator) {
  expect_matches_reachability(accumulator_reach(6, 2, 17));
  expect_matches_reachability(accumulator_reach(8, 3, 33));
  expect_matches_reachability(accumulator_safe(6, 2, 17));
  EXPECT_THROW(accumulator_safe(6, 2, 16), std::invalid_argument);
}

TEST(BenchgenTest, Needle) {
  expect_matches_reachability(needle(4, 4, 9, 5));   // failing
  expect_matches_reachability(needle(4, 4, 9, 12));  // passing within bound
}

TEST(BenchgenTest, DistractorPreservesVerdictAndDepth) {
  expect_matches_reachability(with_distractor(counter_reach(4, 9, true), 4, 1));
  expect_matches_reachability(with_distractor(counter_safe(4, 10, 12), 4, 2));
  expect_matches_reachability(with_distractor(fifo_buggy(3), 4, 3));
}

TEST(BenchgenTest, DistractorGrowsConeAndKeepsName) {
  const Benchmark base = counter_safe(6, 40, 50);
  const Benchmark wrapped = with_distractor(counter_safe(6, 40, 50), 16, 9);
  EXPECT_GT(wrapped.net.num_latches(), base.net.num_latches());
  EXPECT_GT(wrapped.net.num_ands(), base.net.num_ands());
  EXPECT_EQ(wrapped.name, base.name + "+d16");
  EXPECT_EQ(wrapped.expect_fail, base.expect_fail);
  EXPECT_EQ(wrapped.expect_depth, base.expect_depth);
}

TEST(BenchgenTest, StandardSuiteShape) {
  const auto suite = standard_suite();
  EXPECT_EQ(suite.size(), 37u);
  int failing = 0, passing = 0;
  for (const auto& bm : suite) {
    SCOPED_TRACE(bm.name);
    EXPECT_FALSE(bm.name.empty());
    EXPECT_EQ(bm.net.bad_properties().size(), 1u);
    EXPECT_NO_THROW(bm.net.check());
    EXPECT_GT(bm.suggested_bound, 0);
    (bm.expect_fail ? failing : passing)++;
    if (bm.expect_fail) {
      EXPECT_GE(bm.expect_depth, 0);
    }
  }
  // A healthy mix, as in the paper's Table 1.
  EXPECT_GE(failing, 10);
  EXPECT_GE(passing, 10);
}

TEST(BenchgenTest, SuiteNamesAreUnique) {
  const auto suite = standard_suite();
  std::set<std::string> names;
  for (const auto& bm : suite) names.insert(bm.name);
  EXPECT_EQ(names.size(), suite.size());
}

TEST(BenchgenTest, QuickSuiteIsSmallAndValid) {
  const auto suite = quick_suite();
  EXPECT_GE(suite.size(), 4u);
  EXPECT_LE(suite.size(), 12u);
  for (const auto& bm : suite) EXPECT_NO_THROW(bm.net.check());
}

}  // namespace
}  // namespace refbmc::model
