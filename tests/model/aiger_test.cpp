#include "model/aiger.hpp"

#include <gtest/gtest.h>

#include "model/benchgen.hpp"
#include "model/builder.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace refbmc::model {
namespace {

TEST(AigerTest, ParseMinimal) {
  // Single input fed to a single output.
  const Netlist net = read_aiger_string(
      "aag 1 1 0 1 0\n"
      "2\n"
      "2\n");
  EXPECT_EQ(net.num_inputs(), 1u);
  EXPECT_EQ(net.outputs().size(), 1u);
}

TEST(AigerTest, ParseAndGateWithNames) {
  const Netlist net = read_aiger_string(
      "aag 3 2 0 1 1\n"
      "2\n"
      "4\n"
      "6\n"
      "6 2 4\n"
      "i0 x\n"
      "i1 y\n"
      "o0 x_and_y\n");
  EXPECT_EQ(net.num_inputs(), 2u);
  EXPECT_EQ(net.num_ands(), 1u);
  EXPECT_TRUE(net.find_by_name("x").has_value());
  EXPECT_TRUE(net.find_by_name("y").has_value());
}

TEST(AigerTest, ParseLatchWithInitValues) {
  // Latch init: default 0, explicit 1, self-literal = uninitialised.
  const Netlist net = read_aiger_string(
      "aag 3 0 3 0 0\n"
      "2 2\n"
      "4 4 1\n"
      "6 6 6\n");
  const auto& latches = net.latches();
  ASSERT_EQ(latches.size(), 3u);
  EXPECT_EQ(net.latch_init(latches[0]), sat::l_False);
  EXPECT_EQ(net.latch_init(latches[1]), sat::l_True);
  EXPECT_EQ(net.latch_init(latches[2]), sat::l_Undef);
}

TEST(AigerTest, ParseBadSection) {
  const Netlist net = read_aiger_string(
      "aag 1 0 1 0 0 1\n"
      "2 3\n"
      "2\n"
      "b0 toggle_high\n");
  ASSERT_EQ(net.bad_properties().size(), 1u);
  EXPECT_EQ(net.bad_properties()[0].name, "toggle_high");
}

TEST(AigerTest, OutOfOrderAndDefinitions) {
  // AND 8 references AND 6 defined after it; parser must resolve.
  const Netlist net = read_aiger_string(
      "aag 4 2 0 1 2\n"
      "2\n"
      "4\n"
      "8\n"
      "8 6 2\n"
      "6 2 4\n");
  EXPECT_EQ(net.num_ands(), 2u);
}

TEST(AigerTest, MalformedInputsRejected) {
  EXPECT_THROW(read_aiger_string(""), std::invalid_argument);
  EXPECT_THROW(read_aiger_string("aig 1 0 0 0 0\n"), std::invalid_argument);
  // Literal out of range.
  EXPECT_THROW(read_aiger_string("aag 1 1 0 1 0\n2\n9\n"),
               std::invalid_argument);
  // Odd input literal.
  EXPECT_THROW(read_aiger_string("aag 1 1 0 0 0\n3\n"),
               std::invalid_argument);
  // Cyclic AND definition.
  EXPECT_THROW(read_aiger_string("aag 2 0 0 1 2\n2\n2 4 4\n4 2 2\n"),
               std::invalid_argument);
  // Undefined variable used as output.
  EXPECT_THROW(read_aiger_string("aag 2 1 0 1 0\n2\n4\n"),
               std::invalid_argument);
  // Unsupported C section.
  EXPECT_THROW(read_aiger_string("aag 1 1 0 0 0 0 1\n2\n"),
               std::invalid_argument);
  // Header undercounts nodes.
  EXPECT_THROW(read_aiger_string("aag 0 1 0 0 0\n2\n"),
               std::invalid_argument);
}

TEST(AigerTest, RoundTripPreservesBehaviour) {
  // Write a benchmark circuit, read it back, and compare random
  // simulations step by step.
  for (const auto& original :
       {counter_reach(4, 9, true).net, fifo_buggy(3).net,
        peterson_safe().net}) {
    const Netlist copy = read_aiger_string(to_aiger_string(original));
    ASSERT_EQ(copy.num_inputs(), original.num_inputs());
    ASSERT_EQ(copy.num_latches(), original.num_latches());
    ASSERT_EQ(copy.bad_properties().size(),
              original.bad_properties().size());

    sim::Simulator sim_a(original);
    sim::Simulator sim_b(copy);
    Rng rng(555);
    for (int cycle = 0; cycle < 50; ++cycle) {
      const sim::InputFrame frame = sim_a.random_inputs(rng);
      sim_a.evaluate(frame);
      sim_b.evaluate(frame);
      for (std::size_t p = 0; p < original.bad_properties().size(); ++p) {
        EXPECT_EQ(sim_a.value(original.bad_properties()[p].signal),
                  sim_b.value(copy.bad_properties()[p].signal))
            << "cycle " << cycle;
      }
      sim_a.step(frame);
      sim_b.step(frame);
    }
  }
}

TEST(AigerTest, RoundTripPreservesNamesAndInit) {
  Netlist net;
  Builder b(net);
  const Signal in = net.add_input("enable");
  const Signal l0 = net.add_latch(sat::l_True, "state0");
  const Signal l1 = net.add_latch(sat::l_Undef, "state1");
  net.set_next(l0, b.xor_(l0, in));
  net.set_next(l1, l0);
  net.add_bad(b.and_(l0, l1), "both_high");
  const Netlist copy = read_aiger_string(to_aiger_string(net));
  EXPECT_TRUE(copy.find_by_name("enable").has_value());
  EXPECT_TRUE(copy.find_by_name("state0").has_value());
  EXPECT_EQ(copy.latch_init(*copy.find_by_name("state0")), sat::l_True);
  EXPECT_EQ(copy.latch_init(*copy.find_by_name("state1")), sat::l_Undef);
  EXPECT_EQ(copy.bad_properties()[0].name, "both_high");
}

TEST(AigerTest, FileRoundTrip) {
  const Netlist net = counter_reach(3, 5, false).net;
  const std::string path = ::testing::TempDir() + "/refbmc_aiger_test.aag";
  write_aiger_file(path, net);
  const Netlist back = read_aiger_file(path);
  EXPECT_EQ(back.num_latches(), net.num_latches());
  EXPECT_THROW(read_aiger_file("/no/such/file.aag"), std::invalid_argument);
}

}  // namespace
}  // namespace refbmc::model
