// Binary AIGER (.aig): hand-crafted decoding cases, write→read
// round-trips with behavioural equivalence, and cross-format agreement.
#include <gtest/gtest.h>

#include "model/aiger.hpp"
#include "model/benchgen.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace refbmc::model {
namespace {

TEST(AigerBinaryTest, HandCraftedAndGate) {
  // aig 3 2 0 1 1: inputs 2,4; AND 6 = 2 & 4.
  // Deltas: lhs=6, rhs0=4, rhs1=2 → delta0=2, delta1=2 (single bytes).
  std::string text = "aig 3 2 0 1 1\n6\n";
  text.push_back(static_cast<char>(2));
  text.push_back(static_cast<char>(2));
  const Netlist net = read_aiger_string(text);
  EXPECT_EQ(net.num_inputs(), 2u);
  EXPECT_EQ(net.num_ands(), 1u);
  ASSERT_EQ(net.outputs().size(), 1u);

  sim::Simulator s(net);
  for (int m = 0; m < 4; ++m) {
    s.evaluate({(m & 1) != 0, (m & 2) != 0});
    EXPECT_EQ(s.value(net.outputs()[0]), m == 3) << m;
  }
}

TEST(AigerBinaryTest, MultiByteDeltaDecodes) {
  // A delta ≥ 128 exercises the continuation-byte path.  Construct
  // aig with 200 inputs and one AND of inputs 1 and 100:
  // lhs = 2*201 = 402, rhs0 = 2*100=200, rhs1 = 2*1=2:
  // delta0 = 202, delta1 = 198 — delta0 needs two bytes.
  std::string text = "aig 201 200 0 1 1\n402\n";
  const auto push_delta = [&text](unsigned d) {
    while (d >= 0x80u) {
      text.push_back(static_cast<char>((d & 0x7fu) | 0x80u));
      d >>= 7;
    }
    text.push_back(static_cast<char>(d));
  };
  push_delta(202);
  push_delta(198);
  const Netlist net = read_aiger_string(text);
  EXPECT_EQ(net.num_inputs(), 200u);
  EXPECT_EQ(net.num_ands(), 1u);
}

TEST(AigerBinaryTest, MalformedBinaryRejected) {
  // M != I+L+A.
  EXPECT_THROW(read_aiger_string("aig 5 2 0 0 1\n"), std::invalid_argument);
  // Truncated delta section.
  EXPECT_THROW(read_aiger_string("aig 3 2 0 0 1\n"), std::invalid_argument);
  std::string cont = "aig 3 2 0 0 1\n";
  cont.push_back(static_cast<char>(0x80));  // continuation with no next byte
  EXPECT_THROW(read_aiger_string(cont), std::invalid_argument);
  // delta0 = 0 would mean rhs0 == lhs (cyclic).
  std::string cyc = "aig 3 2 0 0 1\n";
  cyc.push_back(static_cast<char>(0));
  cyc.push_back(static_cast<char>(0));
  EXPECT_THROW(read_aiger_string(cyc), std::invalid_argument);
}

TEST(AigerBinaryTest, RoundTripPreservesBehaviour) {
  for (const auto& original :
       {counter_reach(4, 9, true).net, fifo_buggy(3).net,
        peterson_safe().net, with_distractor(arbiter_safe(4), 6, 5).net}) {
    const Netlist copy =
        read_aiger_string(to_aiger_binary_string(original));
    ASSERT_EQ(copy.num_inputs(), original.num_inputs());
    ASSERT_EQ(copy.num_latches(), original.num_latches());
    ASSERT_EQ(copy.num_ands(), original.num_ands());

    sim::Simulator sim_a(original);
    sim::Simulator sim_b(copy);
    Rng rng(321);
    for (int cycle = 0; cycle < 40; ++cycle) {
      const sim::InputFrame frame = sim_a.random_inputs(rng);
      sim_a.evaluate(frame);
      sim_b.evaluate(frame);
      for (std::size_t p = 0; p < original.bad_properties().size(); ++p)
        EXPECT_EQ(sim_a.value(original.bad_properties()[p].signal),
                  sim_b.value(copy.bad_properties()[p].signal))
            << "cycle " << cycle;
      sim_a.step(frame);
      sim_b.step(frame);
    }
  }
}

TEST(AigerBinaryTest, BinaryAndAsciiAgree) {
  const Netlist original = traffic_buggy(4).net;
  const Netlist via_ascii = read_aiger_string(to_aiger_string(original));
  const Netlist via_binary =
      read_aiger_string(to_aiger_binary_string(original));
  EXPECT_EQ(via_ascii.num_ands(), via_binary.num_ands());
  EXPECT_EQ(via_ascii.num_latches(), via_binary.num_latches());
  // Same bad-signal behaviour under a deterministic stimulus.
  sim::Simulator a(via_ascii), b(via_binary);
  for (int cycle = 0; cycle < 20; ++cycle) {
    const sim::InputFrame frame(via_ascii.num_inputs(),
                                (cycle % 3) == 0);
    a.evaluate(frame);
    b.evaluate(frame);
    EXPECT_EQ(a.value(via_ascii.bad_properties()[0].signal),
              b.value(via_binary.bad_properties()[0].signal));
    a.step(frame);
    b.step(frame);
  }
}

TEST(AigerBinaryTest, NamesAndInitSurvive) {
  Netlist net;
  const Signal in = net.add_input("clk_en");
  const Signal l = net.add_latch(sat::l_Undef, "ff");
  net.set_next(l, in);
  net.add_bad(l, "latched_high");
  const Netlist copy = read_aiger_string(to_aiger_binary_string(net));
  EXPECT_TRUE(copy.find_by_name("clk_en").has_value());
  EXPECT_TRUE(copy.find_by_name("ff").has_value());
  EXPECT_EQ(copy.latch_init(*copy.find_by_name("ff")), sat::l_Undef);
  EXPECT_EQ(copy.bad_properties()[0].name, "latched_high");
}

}  // namespace
}  // namespace refbmc::model
