#include "model/netlist.hpp"

#include <gtest/gtest.h>

namespace refbmc::model {
namespace {

TEST(SignalTest, ConstantsAndComplement) {
  EXPECT_TRUE(Signal::constant(false).is_const_false());
  EXPECT_TRUE(Signal::constant(true).is_const_true());
  EXPECT_EQ(!Signal::constant(false), Signal::constant(true));
  const Signal s = Signal::make(5, true);
  EXPECT_EQ(s.node(), 5u);
  EXPECT_TRUE(s.negated());
  EXPECT_EQ((!s).node(), 5u);
  EXPECT_FALSE((!s).negated());
  EXPECT_EQ(!!s, s);
  EXPECT_EQ(Signal::from_raw(s.raw()), s);
}

TEST(NetlistTest, FreshNetlistHasOnlyConstant) {
  const Netlist net;
  EXPECT_EQ(net.num_nodes(), 1u);
  EXPECT_EQ(net.kind(kConstNode), NodeKind::Const);
  EXPECT_EQ(net.num_inputs(), 0u);
  EXPECT_EQ(net.num_latches(), 0u);
  EXPECT_EQ(net.num_ands(), 0u);
}

TEST(NetlistTest, AddInputAndLatch) {
  Netlist net;
  const Signal in = net.add_input("a");
  const Signal latch = net.add_latch(sat::l_True, "r");
  EXPECT_EQ(net.kind(in.node()), NodeKind::Input);
  EXPECT_EQ(net.kind(latch.node()), NodeKind::Latch);
  EXPECT_EQ(net.num_inputs(), 1u);
  EXPECT_EQ(net.num_latches(), 1u);
  EXPECT_EQ(net.latch_init(latch.node()), sat::l_True);
  EXPECT_EQ(net.name(in.node()), "a");
  EXPECT_EQ(net.find_by_name("r"), latch.node());
  EXPECT_FALSE(net.find_by_name("missing").has_value());
}

TEST(NetlistTest, LatchDefaultsToSelfLoopUntilSetNext) {
  Netlist net;
  const Signal latch = net.add_latch(sat::l_False);
  EXPECT_EQ(net.latch_next(latch.node()), latch);
  const Signal in = net.add_input();
  net.set_next(latch, !in);
  EXPECT_EQ(net.latch_next(latch.node()), !in);
}

TEST(NetlistTest, SetNextValidation) {
  Netlist net;
  const Signal in = net.add_input();
  const Signal latch = net.add_latch(sat::l_False);
  EXPECT_THROW(net.set_next(in, latch), std::invalid_argument);
  EXPECT_THROW(net.set_next(!latch, in), std::invalid_argument);
}

TEST(NetlistTest, AndConstantFolding) {
  Netlist net;
  const Signal a = net.add_input();
  EXPECT_EQ(net.add_and(a, Signal::constant(false)),
            Signal::constant(false));
  EXPECT_EQ(net.add_and(Signal::constant(false), a),
            Signal::constant(false));
  EXPECT_EQ(net.add_and(a, Signal::constant(true)), a);
  EXPECT_EQ(net.add_and(Signal::constant(true), a), a);
  EXPECT_EQ(net.add_and(a, a), a);
  EXPECT_EQ(net.add_and(a, !a), Signal::constant(false));
  EXPECT_EQ(net.num_ands(), 0u);
}

TEST(NetlistTest, StructuralHashingDeduplicates) {
  Netlist net;
  const Signal a = net.add_input();
  const Signal b = net.add_input();
  const Signal g1 = net.add_and(a, b);
  const Signal g2 = net.add_and(b, a);  // commuted
  EXPECT_EQ(g1, g2);
  EXPECT_EQ(net.num_ands(), 1u);
  const Signal g3 = net.add_and(a, !b);  // different
  EXPECT_NE(g1, g3);
  EXPECT_EQ(net.num_ands(), 2u);
}

TEST(NetlistTest, BadPropertiesAndOutputs) {
  Netlist net;
  const Signal a = net.add_input();
  net.add_output(a, "out");
  net.add_bad(!a, "never_low");
  ASSERT_EQ(net.bad_properties().size(), 1u);
  EXPECT_EQ(net.bad_properties()[0].signal, !a);
  EXPECT_EQ(net.bad_properties()[0].name, "never_low");
  net.replace_bad(0, a, "renamed");
  EXPECT_EQ(net.bad_properties()[0].signal, a);
  EXPECT_THROW(net.replace_bad(3, a, ""), std::invalid_argument);
}

TEST(NetlistTest, ConeOfInfluence) {
  Netlist net;
  const Signal a = net.add_input();      // node 1
  const Signal b = net.add_input();      // node 2
  const Signal l1 = net.add_latch(sat::l_False);  // node 3
  const Signal l2 = net.add_latch(sat::l_False);  // node 4 (irrelevant)
  const Signal g = net.add_and(a, l1);   // node 5
  net.set_next(l1, g);
  net.set_next(l2, b);
  const auto cone = net.cone_of_influence({g});
  // Constant, a, l1, g — but not b or l2.
  EXPECT_EQ(cone, (std::vector<NodeId>{0, 1, 3, 5}));
  (void)l2;
}

TEST(NetlistTest, ConeFollowsLatchNextFunctions) {
  Netlist net;
  const Signal in = net.add_input();
  const Signal l1 = net.add_latch(sat::l_False);
  const Signal l2 = net.add_latch(sat::l_False);
  net.set_next(l1, l2);  // l1 depends on l2 sequentially
  net.set_next(l2, in);
  const auto cone = net.cone_of_influence({l1});
  EXPECT_EQ(cone.size(), 4u);  // const, in, l1, l2
}

TEST(NetlistTest, CheckPassesOnWellFormed) {
  Netlist net;
  const Signal a = net.add_input();
  const Signal l = net.add_latch(sat::l_False);
  net.set_next(l, net.add_and(a, l));
  net.add_bad(l, "bad");
  EXPECT_NO_THROW(net.check());
}

TEST(NetlistTest, NamesCanBeReassigned) {
  Netlist net;
  const Signal a = net.add_input("first");
  net.set_name(a.node(), "second");
  EXPECT_EQ(net.name(a.node()), "second");
  EXPECT_FALSE(net.find_by_name("first").has_value());
  EXPECT_EQ(net.find_by_name("second"), a.node());
}

}  // namespace
}  // namespace refbmc::model
