// Parameterized sweeps over the benchmark families: every (family,
// parameter) pair is validated against explicit-state reachability —
// verdicts AND exact counter-example depths.  This is the ground-truth
// net under the whole evaluation suite.
#include <gtest/gtest.h>

#include "mc/reach.hpp"
#include "model/benchgen.hpp"

namespace refbmc::model {
namespace {

void check_against_oracle(const Benchmark& bm) {
  SCOPED_TRACE(bm.name);
  ASSERT_NO_THROW(bm.net.check());
  const mc::ReachResult reach = mc::explicit_reach(bm.net);
  if (bm.expect_fail) {
    ASSERT_TRUE(reach.shortest_counterexample.has_value());
    EXPECT_EQ(*reach.shortest_counterexample, bm.expect_depth);
  } else if (!reach.property_holds) {
    EXPECT_GT(*reach.shortest_counterexample, bm.suggested_bound);
  }
}

// ---- counters ---------------------------------------------------------

struct CounterParam {
  int bits;
  std::uint64_t target;
  bool enable;
};

class CounterSweep : public ::testing::TestWithParam<CounterParam> {};

TEST_P(CounterSweep, MatchesOracle) {
  check_against_oracle(counter_reach(GetParam().bits, GetParam().target,
                                     GetParam().enable));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CounterSweep,
    ::testing::Values(CounterParam{3, 1, false}, CounterParam{3, 7, false},
                      CounterParam{4, 9, true}, CounterParam{5, 0, false},
                      CounterParam{5, 17, true}, CounterParam{6, 31, false},
                      CounterParam{6, 13, true}),
    [](const auto& info) {
      return "b" + std::to_string(info.param.bits) + "_t" +
             std::to_string(info.param.target) +
             (info.param.enable ? "_en" : "");
    });

struct ModularParam {
  int bits;
  std::uint64_t modulus;
  std::uint64_t forbidden;
};

class ModularCounterSweep : public ::testing::TestWithParam<ModularParam> {};

TEST_P(ModularCounterSweep, MatchesOracle) {
  check_against_oracle(counter_safe(GetParam().bits, GetParam().modulus,
                                    GetParam().forbidden));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ModularCounterSweep,
    ::testing::Values(ModularParam{3, 2, 5}, ModularParam{4, 6, 10},
                      ModularParam{4, 15, 15}, ModularParam{5, 20, 25},
                      ModularParam{6, 40, 63}),
    [](const auto& info) {
      return "b" + std::to_string(info.param.bits) + "_m" +
             std::to_string(info.param.modulus) + "_f" +
             std::to_string(info.param.forbidden);
    });

// ---- shift / LFSR -----------------------------------------------------

class ShiftSweep : public ::testing::TestWithParam<int> {};

TEST_P(ShiftSweep, MatchesOracle) {
  check_against_oracle(shift_all_ones(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Grid, ShiftSweep, ::testing::Values(1, 2, 4, 7),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param);
                         });

struct LfsrParam {
  int bits;
  int steps;
};

class LfsrSweep : public ::testing::TestWithParam<LfsrParam> {};

TEST_P(LfsrSweep, HitMatchesOracle) {
  check_against_oracle(lfsr_hit(GetParam().bits, GetParam().steps));
}

TEST_P(LfsrSweep, SafeMatchesOracle) {
  check_against_oracle(lfsr_safe(GetParam().bits));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LfsrSweep,
    ::testing::Values(LfsrParam{4, 3}, LfsrParam{5, 8}, LfsrParam{6, 15},
                      LfsrParam{7, 11}, LfsrParam{8, 25}),
    [](const auto& info) {
      return "b" + std::to_string(info.param.bits) + "_s" +
             std::to_string(info.param.steps);
    });

// ---- coding invariants --------------------------------------------------

class CodingSweep : public ::testing::TestWithParam<int> {};

TEST_P(CodingSweep, GrayMatchesOracle) {
  check_against_oracle(gray_safe(GetParam()));
}

TEST_P(CodingSweep, JohnsonMatchesOracle) {
  if (GetParam() < 3) GTEST_SKIP() << "johnson needs >= 3 bits";
  check_against_oracle(johnson_safe(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Grid, CodingSweep, ::testing::Values(2, 3, 4, 5, 6),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param);
                         });

// ---- control logic -------------------------------------------------------

class ArbiterSweep : public ::testing::TestWithParam<int> {};

TEST_P(ArbiterSweep, SafeMatchesOracle) {
  check_against_oracle(arbiter_safe(GetParam()));
}

TEST_P(ArbiterSweep, BuggyMatchesOracle) {
  check_against_oracle(arbiter_buggy(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Grid, ArbiterSweep, ::testing::Values(2, 3, 4, 5),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param);
                         });

class FifoSweep : public ::testing::TestWithParam<int> {};

TEST_P(FifoSweep, SafeMatchesOracle) {
  check_against_oracle(fifo_safe(GetParam()));
}

TEST_P(FifoSweep, BuggyMatchesOracle) {
  check_against_oracle(fifo_buggy(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Grid, FifoSweep, ::testing::Values(2, 3, 4),
                         [](const auto& info) {
                           return "b" + std::to_string(info.param);
                         });

class TrafficSweep : public ::testing::TestWithParam<int> {};

TEST_P(TrafficSweep, SafeMatchesOracle) {
  check_against_oracle(traffic_safe(GetParam()));
}

TEST_P(TrafficSweep, BuggyMatchesOracle) {
  check_against_oracle(traffic_buggy(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Grid, TrafficSweep, ::testing::Values(3, 4, 5, 6),
                         [](const auto& info) {
                           return "b" + std::to_string(info.param);
                         });

// ---- data path -----------------------------------------------------------

struct AccParam {
  int acc_bits;
  int in_bits;
  std::uint64_t target;
};

class AccumulatorSweep : public ::testing::TestWithParam<AccParam> {};

TEST_P(AccumulatorSweep, ReachMatchesOracle) {
  check_against_oracle(accumulator_reach(
      GetParam().acc_bits, GetParam().in_bits, GetParam().target));
}

TEST_P(AccumulatorSweep, SafeMatchesOracle) {
  check_against_oracle(accumulator_safe(GetParam().acc_bits,
                                        GetParam().in_bits,
                                        GetParam().target | 1ull));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AccumulatorSweep,
    ::testing::Values(AccParam{5, 2, 9}, AccParam{6, 2, 17},
                      AccParam{6, 3, 21}, AccParam{7, 3, 33},
                      AccParam{8, 4, 49}),
    [](const auto& info) {
      return "a" + std::to_string(info.param.acc_bits) + "x" +
             std::to_string(info.param.in_bits) + "_t" +
             std::to_string(info.param.target);
    });

struct NeedleParam {
  int a_bits, b_bits;
  std::uint64_t A, B;
};

class NeedleSweep : public ::testing::TestWithParam<NeedleParam> {};

TEST_P(NeedleSweep, MatchesOracle) {
  check_against_oracle(needle(GetParam().a_bits, GetParam().b_bits,
                              GetParam().A, GetParam().B));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, NeedleSweep,
    ::testing::Values(NeedleParam{3, 3, 5, 2}, NeedleParam{3, 3, 5, 5},
                      NeedleParam{4, 3, 9, 5}, NeedleParam{4, 4, 9, 12},
                      NeedleParam{5, 4, 12, 13}),
    [](const auto& info) {
      return "a" + std::to_string(info.param.A) + "_b" +
             std::to_string(info.param.B);
    });

// ---- distractor wrapper ----------------------------------------------------

struct DistractorParam {
  int regs;
  std::uint64_t seed;
};

class DistractorSweep : public ::testing::TestWithParam<DistractorParam> {};

TEST_P(DistractorSweep, PreservesCounterReach) {
  check_against_oracle(with_distractor(counter_reach(4, 9, true),
                                       GetParam().regs, GetParam().seed));
}

TEST_P(DistractorSweep, PreservesFifoBuggy) {
  check_against_oracle(with_distractor(fifo_buggy(3), GetParam().regs,
                                       GetParam().seed));
}

TEST_P(DistractorSweep, PreservesArbiterSafe) {
  check_against_oracle(with_distractor(arbiter_safe(3), GetParam().regs,
                                       GetParam().seed));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DistractorSweep,
    ::testing::Values(DistractorParam{2, 1}, DistractorParam{4, 2},
                      DistractorParam{6, 3}, DistractorParam{8, 99}),
    [](const auto& info) {
      return "r" + std::to_string(info.param.regs) + "_s" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace refbmc::model
