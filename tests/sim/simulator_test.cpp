#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include "model/builder.hpp"

namespace refbmc::sim {
namespace {

using model::Builder;
using model::Netlist;
using model::Signal;
using model::Word;

TEST(SimulatorTest, CombinationalGates) {
  Netlist net;
  Builder b(net);
  const Signal x = net.add_input("x");
  const Signal y = net.add_input("y");
  const Signal g_and = b.and_(x, y);
  const Signal g_or = b.or_(x, y);
  const Signal g_xor = b.xor_(x, y);
  Simulator s(net);
  for (int m = 0; m < 4; ++m) {
    const bool xv = m & 1, yv = m & 2;
    s.evaluate({xv, yv});
    EXPECT_EQ(s.value(x), xv);
    EXPECT_EQ(s.value(g_and), xv && yv);
    EXPECT_EQ(s.value(g_or), xv || yv);
    EXPECT_EQ(s.value(g_xor), xv != yv);
    EXPECT_EQ(s.value(!g_and), !(xv && yv));
  }
  EXPECT_FALSE(s.value(Signal::constant(false)));
  EXPECT_TRUE(s.value(Signal::constant(true)));
}

TEST(SimulatorTest, LatchInitialValues) {
  Netlist net;
  const Signal l0 = net.add_latch(sat::l_False, "a");
  const Signal l1 = net.add_latch(sat::l_True, "b");
  const Signal l2 = net.add_latch(sat::l_Undef, "c");
  Simulator s(net);
  EXPECT_FALSE(s.value(l0));
  EXPECT_TRUE(s.value(l1));
  EXPECT_FALSE(s.value(l2));  // undef defaults to 0
  s.reset({false, true, true});  // free_init overrides only the undef latch
  EXPECT_FALSE(s.value(l0));
  EXPECT_TRUE(s.value(l1));
  EXPECT_TRUE(s.value(l2));
}

TEST(SimulatorTest, CounterCountsAndWraps) {
  Netlist net;
  Builder b(net);
  const Word cnt = b.latch_word("cnt", 3, 0);
  b.set_next_word(cnt, b.increment(cnt));
  Simulator s(net);
  for (int expected = 0; expected < 20; ++expected) {
    EXPECT_EQ(s.latch_state_bits(),
              static_cast<std::uint64_t>(expected % 8));
    s.step({});
  }
  EXPECT_EQ(s.cycle(), 20u);
}

TEST(SimulatorTest, EvaluateDoesNotAdvanceState) {
  Netlist net;
  Builder b(net);
  const Word cnt = b.latch_word("cnt", 3, 0);
  b.set_next_word(cnt, b.increment(cnt));
  Simulator s(net);
  s.evaluate({});
  s.evaluate({});
  EXPECT_EQ(s.latch_state_bits(), 0u);
  EXPECT_EQ(s.cycle(), 0u);
}

TEST(SimulatorTest, InputDrivenShiftRegister) {
  Netlist net;
  Builder b(net);
  const Signal in = net.add_input("in");
  const Word sr = b.latch_word("sr", 4, 0);
  b.set_next_word(sr, b.shift_left(sr, in));
  Simulator s(net);
  // Shift in 1,0,1,1: each step pushes the input into bit 0, so the
  // register reads (bit3..bit0) = 1,0,1,1 reversed into 1011₂.
  for (const bool bit : {true, false, true, true}) s.step({bit});
  EXPECT_EQ(s.latch_state_bits(), 0b1011u);
}

TEST(SimulatorTest, ResetRestoresInitialState) {
  Netlist net;
  Builder b(net);
  const Word cnt = b.latch_word("cnt", 4, 5);
  b.set_next_word(cnt, b.increment(cnt));
  Simulator s(net);
  EXPECT_EQ(s.latch_state_bits(), 5u);
  s.step({});
  s.step({});
  EXPECT_EQ(s.latch_state_bits(), 7u);
  s.reset();
  EXPECT_EQ(s.latch_state_bits(), 5u);
  EXPECT_EQ(s.cycle(), 0u);
}

TEST(SimulatorTest, InputSizeMismatchRejected) {
  Netlist net;
  net.add_input();
  Simulator s(net);
  EXPECT_THROW(s.evaluate({}), std::invalid_argument);
  EXPECT_THROW(s.step({true, false}), std::invalid_argument);
}

TEST(SimulatorTest, RandomInputsMatchInputCount) {
  Netlist net;
  net.add_input();
  net.add_input();
  net.add_input();
  Simulator s(net);
  Rng rng(5);
  EXPECT_EQ(s.random_inputs(rng).size(), 3u);
}

TEST(SimulatorTest, LatchStateVectorMatchesBits) {
  Netlist net;
  Builder b(net);
  b.latch_word("r", 3, 0b101);
  Simulator s(net);
  const std::vector<bool> state = s.latch_state();
  ASSERT_EQ(state.size(), 3u);
  EXPECT_TRUE(state[0]);
  EXPECT_FALSE(state[1]);
  EXPECT_TRUE(state[2]);
}

}  // namespace
}  // namespace refbmc::sim
