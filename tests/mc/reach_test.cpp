#include "mc/reach.hpp"

#include <gtest/gtest.h>

#include "model/builder.hpp"

namespace refbmc::mc {
namespace {

using model::Builder;
using model::Netlist;
using model::Signal;
using model::Word;

TEST(ReachTest, CounterHitsTargetAtExactDepth) {
  Netlist net;
  Builder b(net);
  const Word cnt = b.latch_word("cnt", 4, 0);
  b.set_next_word(cnt, b.increment(cnt));
  net.add_bad(b.eq_const(cnt, 11), "hit");
  const ReachResult r = explicit_reach(net);
  EXPECT_FALSE(r.property_holds);
  EXPECT_EQ(r.shortest_counterexample, 11);
}

TEST(ReachTest, SafeCounterHolds) {
  Netlist net;
  Builder b(net);
  const Word cnt = b.latch_word("cnt", 4, 0);
  const Signal wrap = b.eq_const(cnt, 9);
  b.set_next_word(cnt, b.mux_word(wrap, b.constant_word(0, 4),
                                  b.increment(cnt)));
  net.add_bad(b.eq_const(cnt, 12), "beyond");
  const ReachResult r = explicit_reach(net);
  EXPECT_TRUE(r.property_holds);
  EXPECT_FALSE(r.shortest_counterexample.has_value());
  EXPECT_EQ(r.num_reachable_states, 10u);
  EXPECT_EQ(r.diameter, 9);
}

TEST(ReachTest, InputsAreEnumerated) {
  // Bad depends on an input directly: detectable at depth 0.
  Netlist net;
  Builder b(net);
  const Signal in = net.add_input("in");
  const Signal l = net.add_latch(sat::l_False);
  net.set_next(l, in);
  net.add_bad(b.and_(in, l), "in_and_latch");
  const ReachResult r = explicit_reach(net);
  EXPECT_FALSE(r.property_holds);
  // Needs latch=1 which needs one transition with in=1.
  EXPECT_EQ(r.shortest_counterexample, 1);
}

TEST(ReachTest, UninitialisedLatchesEnumerateInitialStates) {
  Netlist net;
  Builder b(net);
  const Signal l = net.add_latch(sat::l_Undef);
  net.add_bad(l, "starts_high");
  const ReachResult r = explicit_reach(net);
  EXPECT_FALSE(r.property_holds);
  EXPECT_EQ(r.shortest_counterexample, 0);  // some initial state is bad
}

TEST(ReachTest, BadAtInitialStateIsDepthZero) {
  Netlist net;
  Builder b(net);
  const Signal l = net.add_latch(sat::l_True);
  net.add_bad(l, "init_high");
  const ReachResult r = explicit_reach(net);
  EXPECT_EQ(r.shortest_counterexample, 0);
}

TEST(ReachTest, SelectsRequestedBadProperty) {
  Netlist net;
  Builder b(net);
  const Signal l = net.add_latch(sat::l_True);
  net.add_bad(!l, "never");   // index 0: holds (l stays 1 via self-loop)
  net.add_bad(l, "always");   // index 1: fails at depth 0
  EXPECT_TRUE(explicit_reach(net, 0).property_holds);
  EXPECT_FALSE(explicit_reach(net, 1).property_holds);
  EXPECT_THROW(explicit_reach(net, 2), std::invalid_argument);
}

TEST(ReachTest, DiameterOfFreeRunningCounterIsFullCycle) {
  Netlist net;
  Builder b(net);
  const Word cnt = b.latch_word("cnt", 3, 0);
  b.set_next_word(cnt, b.increment(cnt));
  net.add_bad(Signal::constant(false), "never");
  const ReachResult r = explicit_reach(net);
  EXPECT_TRUE(r.property_holds);
  EXPECT_EQ(r.num_reachable_states, 8u);
  EXPECT_EQ(r.diameter, 7);
}

TEST(ReachTest, LimitsEnforced) {
  Netlist big;
  for (int i = 0; i < 25; ++i) big.add_latch(sat::l_False);
  big.add_bad(Signal::constant(false), "b");
  EXPECT_THROW(explicit_reach(big), std::invalid_argument);

  Netlist wide;
  for (int i = 0; i < 17; ++i) wide.add_input();
  wide.add_bad(Signal::constant(false), "b");
  EXPECT_THROW(explicit_reach(wide), std::invalid_argument);
}

}  // namespace
}  // namespace refbmc::mc
