#include "obs/export.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/trace.hpp"
#include "util/json.hpp"

namespace refbmc::obs {
namespace {

std::size_t count_of(const std::string& doc, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t at = doc.find(needle); at != std::string::npos;
       at = doc.find(needle, at + needle.size()))
    ++n;
  return n;
}

/// Structural sanity stand-in for a full parser: every brace/bracket
/// outside string literals balances and never goes negative.
bool braces_balance(const std::string& doc) {
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < doc.size(); ++i) {
    const char c = doc[i];
    if (in_string) {
      if (c == '\\')
        ++i;  // skip the escaped character
      else if (c == '"')
        in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_string;
}

TraceDump two_track_dump() {
  TraceDump dump;
  TrackDump a;
  a.name = "static";
  TraceEvent span;
  span.ts_us = 100;
  span.dur_us = 50;
  span.kind = EventKind::SpanSolve;
  span.depth = 3;
  span.value = 7;
  a.events.push_back(span);
  TraceEvent instant;
  instant.ts_us = 160;
  instant.kind = EventKind::Restart;
  instant.depth = -1;
  instant.value = 2;
  a.events.push_back(instant);
  dump.tracks.push_back(a);

  TrackDump b;
  b.name = "dynamic";
  b.dropped = 4;
  TraceEvent e;
  e.ts_us = 90;
  e.kind = EventKind::PoolPublish;
  e.value = 11;
  b.events.push_back(e);
  dump.tracks.push_back(b);
  return dump;
}

TEST(ExportTest, ChromeTraceShape) {
  JsonWriter w;
  write_chrome_trace(w, two_track_dump());
  const std::string doc = w.str();

  EXPECT_TRUE(braces_balance(doc)) << doc;
  EXPECT_NE(doc.find("\"traceEvents\":["), std::string::npos);
  // One thread_name metadata record per track, with the track's label.
  EXPECT_EQ(count_of(doc, "\"thread_name\""), 2u);
  EXPECT_NE(doc.find("\"static\""), std::string::npos);
  EXPECT_NE(doc.find("\"dynamic\""), std::string::npos);
  // The span is a complete event with a duration; the instants are
  // thread-scoped.
  EXPECT_EQ(count_of(doc, "\"ph\":\"X\""), 1u);
  EXPECT_NE(doc.find("\"dur\":50"), std::string::npos);
  EXPECT_EQ(count_of(doc, "\"ph\":\"i\""), 2u);
  EXPECT_EQ(count_of(doc, "\"s\":\"t\""), 2u);
  // One pid, tids 0 and 1.
  EXPECT_GE(count_of(doc, "\"pid\":1"), 5u);  // 2 metadata + 3 events
  EXPECT_GE(count_of(doc, "\"tid\":0"), 3u);
  EXPECT_GE(count_of(doc, "\"tid\":1"), 2u);
  // Kind names and categories from the catalog.
  EXPECT_NE(doc.find("\"solve\""), std::string::npos);
  EXPECT_NE(doc.find("\"restart\""), std::string::npos);
  EXPECT_NE(doc.find("\"pool_publish\""), std::string::npos);
  EXPECT_NE(doc.find("\"cat\":\"sat\""), std::string::npos);
  EXPECT_NE(doc.find("\"cat\":\"race\""), std::string::npos);
  // Trailer.
  EXPECT_NE(doc.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(doc.find("\"tracks\":2"), std::string::npos);
  EXPECT_NE(doc.find("\"events\":3"), std::string::npos);
  EXPECT_NE(doc.find("\"dropped_events\":4"), std::string::npos);
}

TEST(ExportTest, DepthTravelsInArgsOnlyWhenSet) {
  JsonWriter w;
  write_chrome_trace(w, two_track_dump());
  const std::string doc = w.str();
  // Exactly one event (the depth-3 span) carries a depth arg.
  EXPECT_EQ(count_of(doc, "\"depth\":3"), 1u);
  EXPECT_EQ(count_of(doc, "\"depth\":-1"), 0u);
  EXPECT_EQ(count_of(doc, "\"value\":"), 3u);
}

TEST(ExportTest, FileRoundTrip) {
  const std::string path =
      ::testing::TempDir() + "/refbmc_export_test_trace.json";
  ASSERT_TRUE(write_chrome_trace_file(path, two_track_dump()));
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::stringstream ss;
  ss << f.rdbuf();
  const std::string doc = ss.str();
  EXPECT_TRUE(braces_balance(doc));
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
}

TEST(ExportTest, MetricsFileRoundTrip) {
  MetricsRegistry reg;
  reg.counter("bmc.depths").add(3);
  reg.histogram("bmc.solve_us").observe(1234);
  const std::string path =
      ::testing::TempDir() + "/refbmc_export_test_metrics.json";
  ASSERT_TRUE(write_metrics_file(path, reg));
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::stringstream ss;
  ss << f.rdbuf();
  const std::string doc = ss.str();
  EXPECT_TRUE(braces_balance(doc));
  EXPECT_NE(doc.find("\"bmc.depths\":3"), std::string::npos);
  EXPECT_NE(doc.find("\"bmc.solve_us\""), std::string::npos);
}

TEST(ExportTest, RetroactiveSpansAreEmittedInTsOrder) {
  // The engine stamps a depth's encode span only after its solve
  // finishes, so the ring holds events out of ts order.  The exporter
  // must still emit each track sorted by ts (parent span first on
  // ties) — the invariant trace_check.py asserts on CI artifacts.
  TraceDump dump;
  TrackDump t;
  t.name = "retro";
  const auto ev = [](std::uint64_t ts, std::uint32_t dur, EventKind kind) {
    TraceEvent e;
    e.ts_us = ts;
    e.dur_us = dur;
    e.kind = kind;
    return e;
  };
  // Ring (= record) order: an instant during the solve, then the
  // retroactive encode / solve / depth spans, then a later instant.
  t.events.push_back(ev(500, 0, EventKind::Restart));
  t.events.push_back(ev(100, 150, EventKind::SpanEncode));
  t.events.push_back(ev(300, 400, EventKind::SpanSolve));
  t.events.push_back(ev(100, 600, EventKind::SpanDepth));
  t.events.push_back(ev(800, 0, EventKind::PoolPublish));
  dump.tracks.push_back(t);

  JsonWriter w;
  write_chrome_trace(w, dump);
  const std::string doc = w.str();
  // File order by ts, depth span (longer) before encode span on the tie.
  const std::size_t at_depth = doc.find("\"dur\":600");
  const std::size_t at_encode = doc.find("\"dur\":150");
  const std::size_t at_solve = doc.find("\"dur\":400");
  const std::size_t at_restart = doc.find("\"ts\":500");
  const std::size_t at_publish = doc.find("\"ts\":800");
  ASSERT_NE(at_depth, std::string::npos);
  ASSERT_NE(at_encode, std::string::npos);
  ASSERT_NE(at_solve, std::string::npos);
  ASSERT_NE(at_restart, std::string::npos);
  ASSERT_NE(at_publish, std::string::npos);
  EXPECT_LT(at_depth, at_encode);
  EXPECT_LT(at_encode, at_solve);
  EXPECT_LT(at_solve, at_restart);
  EXPECT_LT(at_restart, at_publish);
}

TEST(ExportTest, LiveSessionRecordPointsAreMonotonePerTrack) {
  // Checked at the source, on the raw dump rather than the JSON: within
  // one track, record points (ts for instants, ts + dur for RAII spans —
  // both equal the moment the event entered the ring) never decrease,
  // because each ring is single-writer and append-ordered.
  if (trace_active()) trace_end();
  ASSERT_TRUE(trace_begin());
  trace_set_thread_track("mono");
  for (int i = 0; i < 50; ++i) {
    if (i % 3 == 0) {
      TraceSpan span(EventKind::SpanSolve, i);
      span.set_value(i);
    } else {
      trace_record(EventKind::Restart, -1, i);
    }
  }
  const TraceDump dump = trace_end();
  ASSERT_EQ(dump.tracks.size(), 1u);
  std::uint64_t prev = 0;
  for (const TraceEvent& e : dump.tracks[0].events) {
    const std::uint64_t point =
        is_span(e.kind) ? e.ts_us + e.dur_us : e.ts_us;
    EXPECT_GE(point, prev);
    prev = point;
  }
}

}  // namespace
}  // namespace refbmc::obs
