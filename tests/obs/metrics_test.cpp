#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <string>

#include "util/json.hpp"

namespace refbmc::obs {
namespace {

TEST(MetricsTest, CounterBasics) {
  MetricsRegistry reg;
  Counter& c = reg.counter("a");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name, same counter (stable reference).
  EXPECT_EQ(&reg.counter("a"), &c);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(MetricsTest, HistogramBucketsAndStats) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat");
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.percentile(0.5), 0u);

  h.observe(0);    // bucket 0
  h.observe(1);    // bucket 1: [1, 2)
  h.observe(3);    // bucket 2: [2, 4)
  h.observe(100);  // bucket 7: [64, 128)
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 104u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 26.0);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(7), 1u);
}

TEST(MetricsTest, PercentilesAreMonotoneUpperBounds) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("p");
  for (int i = 0; i < 90; ++i) h.observe(10);    // bucket 4: [8, 16)
  for (int i = 0; i < 10; ++i) h.observe(1000);  // bucket 10: [512, 1024)

  const std::uint64_t p50 = h.percentile(0.5);
  const std::uint64_t p90 = h.percentile(0.9);
  const std::uint64_t p99 = h.percentile(0.99);
  EXPECT_GE(p50, 10u);   // upper bound of the bucket holding the median
  EXPECT_LT(p50, 512u);  // but not in the tail bucket
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_GE(p99, 1000u);  // the tail observation dominates p99
}

TEST(MetricsTest, HistogramMaxIsExactInTopBucket) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("top");
  h.observe(123456789);  // far beyond the last closed bucket boundary
  EXPECT_EQ(h.max(), 123456789u);
  EXPECT_EQ(h.percentile(1.0), 123456789u);
}

TEST(MetricsTest, ResetKeepsReferencesValid) {
  MetricsRegistry reg;
  Counter& c = reg.counter("keep");
  Histogram& h = reg.histogram("keep");
  c.add(5);
  h.observe(7);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.max(), 0u);
  c.add(1);  // still wired to the registry
  EXPECT_EQ(reg.counter("keep").value(), 1u);
}

TEST(MetricsTest, JsonIsDeterministicAndSorted) {
  MetricsRegistry reg;
  reg.counter("z.last").add(1);
  reg.counter("a.first").add(2);
  reg.histogram("m.hist").observe(10);

  JsonWriter w1;
  reg.write_json(w1);
  JsonWriter w2;
  reg.write_json(w2);
  EXPECT_EQ(w1.str(), w2.str());

  const std::string doc = w1.str();
  // Sorted member order: a.first before z.last.
  EXPECT_LT(doc.find("\"a.first\""), doc.find("\"z.last\""));
  EXPECT_NE(doc.find("\"counters\""), std::string::npos);
  EXPECT_NE(doc.find("\"histograms\""), std::string::npos);
  EXPECT_NE(doc.find("\"p99\""), std::string::npos);
}

TEST(MetricsTest, CountersSnapshot) {
  MetricsRegistry reg;
  reg.counter("b").add(2);
  reg.counter("a").add(1);
  const auto snap = reg.counters();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].first, "a");
  EXPECT_EQ(snap[0].second, 1u);
  EXPECT_EQ(snap[1].first, "b");
  EXPECT_EQ(snap[1].second, 2u);
}

TEST(MetricsTest, GlobalGateDefaultsOff) {
  EXPECT_FALSE(metrics_active());
  metrics_enable(true);
  EXPECT_TRUE(metrics_active());
  metrics_enable(false);
  EXPECT_FALSE(metrics_active());
}

}  // namespace
}  // namespace refbmc::obs
