// Concurrent tracing under the real contract: many writer threads, each
// recording into its own ring, collected after join.  Run under TSan in
// CI (the obs entry of the sanitizer matrix) — the point is that the
// lock-free record path and the generation-checked thread caches are
// race-free, not just that the totals add up.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace refbmc::obs {
namespace {

TEST(TraceConcurrentTest, ManyWritersOneCollector) {
  constexpr int kThreads = 8;
  constexpr int kEvents = 5000;
  if (trace_active()) trace_end();
  TraceConfig cfg;
  cfg.buffer_events = 2048;  // smaller than kEvents: wraps on every track
  ASSERT_TRUE(trace_begin(cfg));

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      trace_set_thread_track("writer-" + std::to_string(t));
      for (int i = 0; i < kEvents; ++i) {
        if (i % 7 == 0) {
          TraceSpan span(EventKind::SpanSolve, t);
          span.set_value(i);
        } else {
          trace_record(EventKind::PoolPublish, t, i);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  const TraceDump dump = trace_end();
  ASSERT_EQ(dump.tracks.size(), static_cast<std::size_t>(kThreads));
  for (const TrackDump& track : dump.tracks) {
    EXPECT_EQ(track.name.rfind("writer-", 0), 0u) << track.name;
    // Ring arithmetic: retained + dropped = recorded, per track.
    EXPECT_EQ(track.events.size(), cfg.buffer_events);
    EXPECT_EQ(track.dropped,
              static_cast<std::uint64_t>(kEvents) - cfg.buffer_events);
    // Every retained event belongs to this thread (depth carries the
    // writer id) — no cross-ring bleed.
    const std::int16_t id = track.events.front().depth;
    for (const TraceEvent& e : track.events) EXPECT_EQ(e.depth, id);
    // Values are the writer's own strictly increasing sequence.
    std::int64_t prev = track.events.front().value - 1;
    for (const TraceEvent& e : track.events) {
      EXPECT_GT(e.value, prev);
      prev = e.value;
    }
  }
  EXPECT_EQ(dump.total_events(),
            static_cast<std::uint64_t>(kThreads) * cfg.buffer_events);
  EXPECT_EQ(dump.total_dropped(),
            static_cast<std::uint64_t>(kThreads) *
                (kEvents - cfg.buffer_events));
}

TEST(TraceConcurrentTest, WritersStraddlingSessionsStayIsolated) {
  // A thread that keeps recording across trace_end()/trace_begin() must
  // land its later events in the NEW session (generation check), never
  // in the collected ring of the old one.
  if (trace_active()) trace_end();
  ASSERT_TRUE(trace_begin());

  std::atomic<int> phase{0};
  std::thread writer([&] {
    trace_set_thread_track("straddler");
    trace_record(EventKind::Restart, -1, 1);
    phase.store(1, std::memory_order_release);
    while (phase.load(std::memory_order_acquire) < 2) std::this_thread::yield();
    // Recording now happens against the second session.
    trace_set_thread_track("straddler");
    trace_record(EventKind::Restart, -1, 2);
    phase.store(3, std::memory_order_release);
  });

  while (phase.load(std::memory_order_acquire) < 1) std::this_thread::yield();
  const TraceDump first = trace_end();
  ASSERT_TRUE(trace_begin());
  phase.store(2, std::memory_order_release);
  while (phase.load(std::memory_order_acquire) < 3) std::this_thread::yield();
  writer.join();
  const TraceDump second = trace_end();

  ASSERT_EQ(first.tracks.size(), 1u);
  ASSERT_EQ(first.tracks[0].events.size(), 1u);
  EXPECT_EQ(first.tracks[0].events[0].value, 1);
  ASSERT_EQ(second.tracks.size(), 1u);
  ASSERT_EQ(second.tracks[0].events.size(), 1u);
  EXPECT_EQ(second.tracks[0].events[0].value, 2);
  EXPECT_EQ(second.tracks[0].name, "straddler");
}

TEST(TraceConcurrentTest, ConcurrentMetricsAggregate) {
  constexpr int kThreads = 8;
  constexpr int kOps = 10000;
  MetricsRegistry reg;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      Counter& c = reg.counter("ops");
      Histogram& h = reg.histogram("lat");
      for (int i = 0; i < kOps; ++i) {
        c.add();
        h.observe(static_cast<std::uint64_t>(i % 97));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(reg.counter("ops").value(),
            static_cast<std::uint64_t>(kThreads) * kOps);
  EXPECT_EQ(reg.histogram("lat").count(),
            static_cast<std::uint64_t>(kThreads) * kOps);
  EXPECT_EQ(reg.histogram("lat").max(), 96u);
}

}  // namespace
}  // namespace refbmc::obs
