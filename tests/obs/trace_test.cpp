#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <string>

namespace refbmc::obs {
namespace {

/// Every test runs against the process-global session, so each one
/// tears it down (trace_end is idempotent through the active flag).
class TraceTest : public ::testing::Test {
 protected:
  void TearDown() override {
    if (trace_active()) trace_end();
  }
};

TEST_F(TraceTest, InactiveByDefault) {
  EXPECT_FALSE(trace_active());
  // Recording without a session is a cheap no-op, not an error.
  trace_record(EventKind::Restart, -1, 1);
  TraceSpan span(EventKind::SpanSolve, 3);
  span.finish();
}

TEST_F(TraceTest, BeginRecordEnd) {
  ASSERT_TRUE(trace_begin());
  EXPECT_TRUE(trace_active());
  trace_set_thread_track("main");
  trace_record(EventKind::Restart, -1, 7);
  trace_record(EventKind::ReduceDb, -1, 123);

  const TraceDump dump = trace_end();
  EXPECT_FALSE(trace_active());
  ASSERT_EQ(dump.tracks.size(), 1u);
  EXPECT_EQ(dump.tracks[0].name, "main");
  EXPECT_EQ(dump.tracks[0].dropped, 0u);
  ASSERT_EQ(dump.tracks[0].events.size(), 2u);
  EXPECT_EQ(dump.tracks[0].events[0].kind, EventKind::Restart);
  EXPECT_EQ(dump.tracks[0].events[0].value, 7);
  EXPECT_EQ(dump.tracks[0].events[1].kind, EventKind::ReduceDb);
  EXPECT_EQ(dump.tracks[0].events[1].value, 123);
}

TEST_F(TraceTest, SecondBeginIsNoOp) {
  ASSERT_TRUE(trace_begin());
  EXPECT_FALSE(trace_begin());  // first session wins
  trace_end();
}

TEST_F(TraceTest, RingWrapsAndCountsDrops) {
  TraceConfig cfg;
  cfg.buffer_events = 8;
  ASSERT_TRUE(trace_begin(cfg));
  trace_set_thread_track("wrap");
  for (int i = 0; i < 20; ++i)
    trace_record(EventKind::PoolPublish, -1, i);

  const TraceDump dump = trace_end();
  ASSERT_EQ(dump.tracks.size(), 1u);
  const TrackDump& t = dump.tracks[0];
  // 20 recorded into 8 slots: 12 dropped, the NEWEST 8 retained in order.
  EXPECT_EQ(t.dropped, 12u);
  ASSERT_EQ(t.events.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(t.events[static_cast<std::size_t>(i)].kind,
              EventKind::PoolPublish);
    EXPECT_EQ(t.events[static_cast<std::size_t>(i)].value, 12 + i);
  }
  EXPECT_EQ(dump.total_events(), 8u);
  EXPECT_EQ(dump.total_dropped(), 12u);
}

TEST_F(TraceTest, TraceBufferDirect) {
  TraceBuffer buf(4);
  EXPECT_EQ(buf.capacity(), 4u);
  EXPECT_EQ(buf.recorded(), 0u);
  EXPECT_EQ(buf.dropped(), 0u);
  TraceEvent e;
  e.kind = EventKind::Restart;
  for (int i = 0; i < 3; ++i) {
    e.value = i;
    buf.record(e);
  }
  EXPECT_EQ(buf.recorded(), 3u);
  EXPECT_EQ(buf.dropped(), 0u);
  auto snap = buf.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].value, 0);
  EXPECT_EQ(snap[2].value, 2);

  for (int i = 3; i < 10; ++i) {
    e.value = i;
    buf.record(e);
  }
  EXPECT_EQ(buf.recorded(), 10u);
  EXPECT_EQ(buf.dropped(), 6u);
  snap = buf.snapshot();
  ASSERT_EQ(snap.size(), 4u);  // newest window, oldest first
  EXPECT_EQ(snap[0].value, 6);
  EXPECT_EQ(snap[3].value, 9);
}

TEST_F(TraceTest, SpansNestAndCarryDepth) {
  ASSERT_TRUE(trace_begin());
  trace_set_thread_track("nest");
  {
    TraceSpan outer(EventKind::SpanDepth, 5);
    {
      TraceSpan inner(EventKind::SpanSolve, 5);
      inner.set_value(42);
    }  // inner records first (ring order = finish order)
    outer.set_value(1);
  }
  const TraceDump dump = trace_end();
  ASSERT_EQ(dump.tracks.size(), 1u);
  const auto& ev = dump.tracks[0].events;
  ASSERT_EQ(ev.size(), 2u);
  EXPECT_EQ(ev[0].kind, EventKind::SpanSolve);
  EXPECT_EQ(ev[0].depth, 5);
  EXPECT_EQ(ev[0].value, 42);
  EXPECT_EQ(ev[1].kind, EventKind::SpanDepth);
  EXPECT_EQ(ev[1].value, 1);
  // Nesting: the outer span starts no later and ends no earlier.
  EXPECT_LE(ev[1].ts_us, ev[0].ts_us);
  EXPECT_GE(ev[1].ts_us + ev[1].dur_us, ev[0].ts_us + ev[0].dur_us);
}

TEST_F(TraceTest, FinishIsIdempotent) {
  ASSERT_TRUE(trace_begin());
  TraceSpan span(EventKind::SpanEncode, 2);
  span.finish();
  span.finish();  // second finish must not record again
  const TraceDump dump = trace_end();
  ASSERT_EQ(dump.tracks.size(), 1u);
  EXPECT_EQ(dump.tracks[0].events.size(), 1u);
}

TEST_F(TraceTest, UnnamedTracksGetDefaultNames) {
  ASSERT_TRUE(trace_begin());
  trace_record(EventKind::JobStart, -1, 0);  // never named this thread
  const TraceDump dump = trace_end();
  ASSERT_EQ(dump.tracks.size(), 1u);
  EXPECT_EQ(dump.tracks[0].name.rfind("thread-", 0), 0u);
}

TEST_F(TraceTest, SessionsAreIndependent) {
  ASSERT_TRUE(trace_begin());
  trace_record(EventKind::Restart);
  const TraceDump first = trace_end();
  EXPECT_EQ(first.total_events(), 1u);

  // A new session starts empty — the old ring was collected and freed.
  ASSERT_TRUE(trace_begin());
  trace_record(EventKind::ReduceDb);
  trace_record(EventKind::ReduceDb);
  const TraceDump second = trace_end();
  EXPECT_EQ(second.total_events(), 2u);
  ASSERT_EQ(second.tracks.size(), 1u);
  EXPECT_EQ(second.tracks[0].events[0].kind, EventKind::ReduceDb);
}

TEST_F(TraceTest, MonotonicClock) {
  const std::uint64_t a = monotonic_now_us();
  const std::uint64_t b = monotonic_now_us();
  EXPECT_LE(a, b);
}

TEST_F(TraceTest, KindMetadataIsTotal) {
  // Every kind has a non-empty name, a known category, and a span flag
  // consistent with the enum's documentation.
  const EventKind kinds[] = {
      EventKind::SpanDepth,    EventKind::SpanEncode,
      EventKind::SpanSimplify, EventKind::SpanSolve,
      EventKind::TapeEncode,   EventKind::Restart,
      EventKind::ReduceDb,     EventKind::ImportBatch,
      EventKind::ExportBatch,  EventKind::RankRefresh,
      EventKind::DynamicFallback, EventKind::JobSubmit,
      EventKind::JobStart,     EventKind::JobVerdict,
      EventKind::CancelRequest, EventKind::JobStop,
      EventKind::PoolPublish,  EventKind::PoolClose,
      EventKind::RankPublish,  EventKind::SpanPreprocess,
      EventKind::SpanVivify};
  for (const EventKind k : kinds) {
    EXPECT_STRNE(to_string(k), "");
    const std::string cat = category(k);
    EXPECT_TRUE(cat == "bmc" || cat == "sat" || cat == "race") << cat;
  }
  EXPECT_TRUE(is_span(EventKind::SpanDepth));
  EXPECT_TRUE(is_span(EventKind::SpanSolve));
  EXPECT_TRUE(is_span(EventKind::ImportBatch));
  EXPECT_TRUE(is_span(EventKind::RankRefresh));
  EXPECT_TRUE(is_span(EventKind::SpanPreprocess));
  EXPECT_TRUE(is_span(EventKind::SpanVivify));
  EXPECT_FALSE(is_span(EventKind::Restart));
  EXPECT_FALSE(is_span(EventKind::PoolPublish));
}

}  // namespace
}  // namespace refbmc::obs
