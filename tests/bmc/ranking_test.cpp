#include "bmc/ranking.hpp"

#include <gtest/gtest.h>

namespace refbmc::bmc {
namespace {

// A fabricated instance: 6 CNF vars, vars 1-2 from node 10 (frames 0/1),
// vars 3-4 from node 11, var 5 from node 12; var 0 is the constant.
BmcInstance fake_instance() {
  BmcInstance inst;
  inst.depth = 1;
  inst.origin = {
      {model::kConstNode, -1}, {10, 0}, {10, 1}, {11, 0}, {11, 1}, {12, 0},
  };
  inst.cnf.num_vars = 6;
  return inst;
}

TEST(RankingTest, LinearWeightingUsesInstanceDepth) {
  CoreRanking ranking(CoreWeighting::Linear);
  const BmcInstance inst = fake_instance();
  ranking.update(inst, {1, 3}, /*k=*/3);  // nodes 10, 11 at instance 3
  EXPECT_DOUBLE_EQ(ranking.node_score(10), 3.0);
  EXPECT_DOUBLE_EQ(ranking.node_score(11), 3.0);
  EXPECT_DOUBLE_EQ(ranking.node_score(12), 0.0);
  ranking.update(inst, {2}, /*k=*/5);  // node 10 again at instance 5
  EXPECT_DOUBLE_EQ(ranking.node_score(10), 8.0);
  EXPECT_DOUBLE_EQ(ranking.node_score(11), 3.0);
}

TEST(RankingTest, NodeCountedOncePerInstance) {
  // in_unsat(x, j) is 0/1: both frames of node 10 in one core count once.
  CoreRanking ranking(CoreWeighting::Linear);
  const BmcInstance inst = fake_instance();
  ranking.update(inst, {1, 2}, /*k=*/4);
  EXPECT_DOUBLE_EQ(ranking.node_score(10), 4.0);
}

TEST(RankingTest, ConstantNodeIgnored) {
  CoreRanking ranking(CoreWeighting::Linear);
  const BmcInstance inst = fake_instance();
  ranking.update(inst, {0, 5}, /*k=*/2);
  EXPECT_DOUBLE_EQ(ranking.node_score(model::kConstNode), 0.0);
  EXPECT_DOUBLE_EQ(ranking.node_score(12), 2.0);
}

TEST(RankingTest, UniformWeighting) {
  CoreRanking ranking(CoreWeighting::Uniform);
  const BmcInstance inst = fake_instance();
  ranking.update(inst, {1}, 3);
  ranking.update(inst, {1}, 9);
  EXPECT_DOUBLE_EQ(ranking.node_score(10), 2.0);
}

TEST(RankingTest, LastOnlyForgets) {
  CoreRanking ranking(CoreWeighting::LastOnly);
  const BmcInstance inst = fake_instance();
  ranking.update(inst, {1, 3}, 3);
  EXPECT_DOUBLE_EQ(ranking.node_score(11), 1.0);
  ranking.update(inst, {5}, 4);
  EXPECT_DOUBLE_EQ(ranking.node_score(11), 0.0);
  EXPECT_DOUBLE_EQ(ranking.node_score(12), 1.0);
}

TEST(RankingTest, ExpDecayHalves) {
  CoreRanking ranking(CoreWeighting::ExpDecay);
  const BmcInstance inst = fake_instance();
  ranking.update(inst, {1}, 1);
  ranking.update(inst, {3}, 2);
  EXPECT_DOUBLE_EQ(ranking.node_score(10), 0.5);
  EXPECT_DOUBLE_EQ(ranking.node_score(11), 1.0);
  ranking.update(inst, {1}, 3);
  EXPECT_DOUBLE_EQ(ranking.node_score(10), 1.25);
}

TEST(RankingTest, ProjectionMapsNodeScoresToVars) {
  CoreRanking ranking(CoreWeighting::Linear);
  const BmcInstance inst = fake_instance();
  ranking.update(inst, {1}, 2);  // node 10 → 2
  const std::vector<double> rank = ranking.project(inst);
  ASSERT_EQ(rank.size(), 6u);
  EXPECT_DOUBLE_EQ(rank[0], 0.0);
  EXPECT_DOUBLE_EQ(rank[1], 2.0);  // node 10, frame 0
  EXPECT_DOUBLE_EQ(rank[2], 2.0);  // node 10, frame 1 — register axis!
  EXPECT_DOUBLE_EQ(rank[3], 0.0);
  EXPECT_DOUBLE_EQ(rank[5], 0.0);
}

TEST(RankingTest, ProjectionOntoLargerInstance) {
  // Scores transfer to instances with more frames (the whole point).
  CoreRanking ranking(CoreWeighting::Linear);
  ranking.update(fake_instance(), {1}, 2);
  BmcInstance bigger;
  bigger.depth = 2;
  bigger.origin = {{model::kConstNode, -1}, {10, 0}, {10, 1}, {10, 2}};
  const std::vector<double> rank = ranking.project(bigger);
  EXPECT_DOUBLE_EQ(rank[1], 2.0);
  EXPECT_DOUBLE_EQ(rank[2], 2.0);
  EXPECT_DOUBLE_EQ(rank[3], 2.0);
}

TEST(RankingTest, OutOfRangeCoreVarRejected) {
  CoreRanking ranking;
  const BmcInstance inst = fake_instance();
  EXPECT_THROW(ranking.update(inst, {99}, 1), std::invalid_argument);
  EXPECT_THROW(ranking.update(inst, {-1}, 1), std::invalid_argument);
}

TEST(RankingTest, UpdateCountAndWeightingAccessors) {
  CoreRanking ranking(CoreWeighting::Uniform);
  EXPECT_EQ(ranking.num_updates(), 0u);
  EXPECT_EQ(ranking.weighting(), CoreWeighting::Uniform);
  ranking.update(fake_instance(), {}, 1);
  EXPECT_EQ(ranking.num_updates(), 1u);
}

TEST(RankingTest, WeightingNames) {
  EXPECT_STREQ(to_string(CoreWeighting::Linear), "linear");
  EXPECT_STREQ(to_string(CoreWeighting::Uniform), "uniform");
  EXPECT_STREQ(to_string(CoreWeighting::LastOnly), "last-only");
  EXPECT_STREQ(to_string(CoreWeighting::ExpDecay), "exp-decay");
}

}  // namespace
}  // namespace refbmc::bmc
