// FormulaSession semantics: scratch and incremental sessions over the
// same SharedTape must agree with each other depth by depth, activation
// guards must be distinct and permanently retired (no BCP revisits), and
// origins must track the solver's variable space exactly.
#include "bmc/session.hpp"

#include <gtest/gtest.h>

#include "model/benchgen.hpp"

namespace refbmc::bmc {
namespace {

TEST(SessionTest, ScratchAndIncrementalAgreePerDepth) {
  for (const bool simplify : {false, true}) {
    const auto bm = model::counter_reach(4, 6, true);
    EncoderOptions opts;
    opts.simplify = simplify;
    SharedTape tape(bm.net, 0, opts);
    const auto scratch = make_scratch_session(tape, {});
    const auto inc = make_incremental_session(tape, {});
    for (int k = 0; k <= 8; ++k) {
      const auto ps = scratch->prepare(k);
      const auto pi = inc->prepare(k);
      const sat::Result rs = ps.solver->solve(ps.assumptions);
      const sat::Result ri = pi.solver->solve(pi.assumptions);
      EXPECT_EQ(rs, ri) << "depth " << k << " simplify " << simplify;
      EXPECT_EQ(rs, k >= 6 ? sat::Result::Sat : sat::Result::Unsat)
          << "depth " << k;
      if (rs == sat::Result::Unsat) {
        scratch->retire(k);
        inc->retire(k);
      }
    }
  }
}

TEST(SessionTest, ActivationLiteralsAreDistinctAndStable) {
  const auto bm = model::counter_reach(4, 6, false);
  EncoderOptions opts;
  opts.simplify = false;
  SharedTape tape(bm.net, 0, opts);
  const auto session = make_incremental_session(tape, {});
  const auto p0 = session->prepare(0);
  ASSERT_EQ(p0.assumptions.size(), 1u);
  const sat::Lit a0 = p0.assumptions[0];
  const auto p3 = session->prepare(3);
  const sat::Lit a3 = p3.assumptions[0];
  EXPECT_NE(a0.var(), a3.var());
  // Re-preparing an already-guarded depth reuses its literal.
  EXPECT_EQ(session->prepare(3).assumptions[0], a3);
}

TEST(SessionTest, OriginTracksSolverVariablesExactly) {
  const auto bm = model::fifo_safe(3);
  SharedTape tape(bm.net, 0, {});
  const auto session = make_incremental_session(tape, {});
  const auto p0 = session->prepare(0);
  const std::size_t at0 = session->origin().size();
  EXPECT_EQ(at0, static_cast<std::size_t>(p0.solver->num_vars()));
  const auto p2 = session->prepare(2);
  EXPECT_GT(session->origin().size(), at0);
  EXPECT_EQ(session->origin().size(),
            static_cast<std::size_t>(p2.solver->num_vars()));
  // Prefix is stable: variables never change origin.
  const VarOrigin before = session->origin()[at0 - 1];
  session->prepare(4);
  EXPECT_EQ(session->origin()[at0 - 1].node, before.node);
  EXPECT_EQ(session->origin()[at0 - 1].frame, before.frame);
}

TEST(SessionTest, RetireIsPermanentAndSearchFree) {
  // After retire(k) the depth-k guard is gone for good: re-assuming it
  // refutes immediately at the root, with zero decisions — the solver
  // never revisits the dead property clause.
  const auto bm = model::counter_reach(3, 2, true);
  SharedTape tape(bm.net, 0, {});
  const auto session = make_incremental_session(tape, {});
  const auto p2 = session->prepare(2);
  ASSERT_EQ(p2.solver->solve(p2.assumptions), sat::Result::Sat);
  session->retire(2);
  session->retire(2);  // idempotent

  const sat::SolverStats before = p2.solver->stats();
  ASSERT_EQ(p2.solver->solve(p2.assumptions), sat::Result::Unsat);
  const sat::SolverStats after = p2.solver->stats();
  EXPECT_EQ(after.decisions, before.decisions);   // no search happened
  EXPECT_EQ(after.conflicts, before.conflicts);   // refuted by BCP alone

  // Deeper depths are unaffected by the retired guard.
  const auto p3 = session->prepare(3);
  EXPECT_EQ(p3.solver->solve(p3.assumptions), sat::Result::Sat);
  // Retiring a depth that was never prepared is a contract violation.
  EXPECT_THROW(session->retire(9), std::invalid_argument);
}

TEST(SessionTest, ScratchSolverIsFreshPerDepth) {
  const auto bm = model::counter_safe(4, 10, 12);
  SharedTape tape(bm.net, 0, {});
  const auto session = make_scratch_session(tape, {});
  const auto p0 = session->prepare(0);
  sat::Solver* first = p0.solver;
  EXPECT_EQ(p0.solver->solve(p0.assumptions), sat::Result::Unsat);
  const auto p1 = session->prepare(1);
  EXPECT_EQ(p1.solver->stats().decisions, 0u);  // untouched solver
  EXPECT_NE(first, nullptr);
  EXPECT_EQ(p1.solver->solve(p1.assumptions), sat::Result::Unsat);
}

TEST(SessionTest, IncrementalDepthsMustBeNonDecreasing) {
  const auto bm = model::fifo_safe(3);
  SharedTape tape(bm.net, 0, {});
  const auto session = make_incremental_session(tape, {});
  session->prepare(3);
  EXPECT_THROW(session->prepare(1), std::invalid_argument);
}

}  // namespace
}  // namespace refbmc::bmc
