// Completeness-threshold checking (§2 of the paper: BMC up to the
// threshold proves the property).
#include <gtest/gtest.h>

#include "bmc/engine.hpp"
#include "mc/reach.hpp"
#include "model/benchgen.hpp"

namespace refbmc::bmc {
namespace {

TEST(CompleteCheckTest, ProvesPassingProperty) {
  const auto bm = model::counter_safe(5, 12, 20);
  const CompleteCheckResult r = check_invariant_complete(bm.net);
  EXPECT_TRUE(r.proven);
  EXPECT_EQ(r.threshold, 11);  // counter cycles through 12 states
  EXPECT_EQ(r.bmc.status, BmcResult::Status::BoundReached);
}

TEST(CompleteCheckTest, RefutesFailingProperty) {
  const auto bm = model::fifo_buggy(3);
  const CompleteCheckResult r = check_invariant_complete(bm.net);
  EXPECT_FALSE(r.proven);
  ASSERT_EQ(r.bmc.status, BmcResult::Status::CounterexampleFound);
  EXPECT_EQ(r.bmc.counterexample_depth, bm.expect_depth);
}

TEST(CompleteCheckTest, AgreesWithOracleOnSmallSuite) {
  for (const auto& bm :
       {model::peterson_safe(), model::peterson_buggy(),
        model::gray_safe(4), model::arbiter_buggy(4),
        model::traffic_safe(4)}) {
    SCOPED_TRACE(bm.name);
    const mc::ReachResult oracle = mc::explicit_reach(bm.net);
    const CompleteCheckResult r = check_invariant_complete(bm.net);
    EXPECT_EQ(r.proven, oracle.property_holds);
  }
}

TEST(DiameterTest, MatchesExplicitReach) {
  for (const auto& bm :
       {model::counter_safe(4, 10, 12), model::gray_safe(3),
        model::johnson_safe(4)}) {
    SCOPED_TRACE(bm.name);
    const mc::ReachResult reach = mc::explicit_reach(bm.net);
    ASSERT_TRUE(reach.property_holds);  // full BFS, diameter is exact
    EXPECT_EQ(mc::compute_diameter(bm.net), reach.diameter);
  }
}

TEST(DiameterTest, UninitialisedLatchesStartEverywhere) {
  // Both init states present from depth 0: diameter 0 for a self-loop.
  model::Netlist net;
  const model::Signal l = net.add_latch(sat::l_Undef);
  net.set_next(l, l);
  EXPECT_EQ(mc::compute_diameter(net), 0);
}

TEST(DiameterTest, SizeLimitsEnforced) {
  model::Netlist big;
  for (int i = 0; i < 25; ++i) big.add_latch(sat::l_False);
  EXPECT_THROW(mc::compute_diameter(big), std::invalid_argument);
}

}  // namespace
}  // namespace refbmc::bmc
