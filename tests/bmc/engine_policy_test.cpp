// Ordering-policy behaviour (the paper's §3.3): all policies agree on
// verdicts, the refined orderings shrink search on core-concentrated
// circuits, and the dynamic fallback engages on misleading rankings.
#include <gtest/gtest.h>

#include "bmc/engine.hpp"
#include "model/benchgen.hpp"

namespace refbmc::bmc {
namespace {

BmcResult run_policy(const model::Benchmark& bm, OrderingPolicy policy,
                     int bound, CoreWeighting weighting = CoreWeighting::Linear) {
  EngineConfig cfg;
  cfg.policy = policy;
  cfg.max_depth = bound;
  cfg.weighting = weighting;
  BmcEngine engine(bm.net, cfg);
  return engine.run();
}

class PolicyAgreementTest
    : public ::testing::TestWithParam<OrderingPolicy> {};

TEST_P(PolicyAgreementTest, VerdictsAndDepthsMatchExpectations) {
  for (const auto& bm : model::quick_suite()) {
    SCOPED_TRACE(bm.name);
    const BmcResult r = run_policy(bm, GetParam(), bm.suggested_bound);
    if (bm.expect_fail) {
      ASSERT_EQ(r.status, BmcResult::Status::CounterexampleFound);
      EXPECT_EQ(r.counterexample_depth, bm.expect_depth);
      EXPECT_TRUE(validate_trace(bm.net, *r.counterexample));
    } else {
      EXPECT_EQ(r.status, BmcResult::Status::BoundReached);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyAgreementTest,
    ::testing::Values(OrderingPolicy::Baseline, OrderingPolicy::Static,
                      OrderingPolicy::Dynamic, OrderingPolicy::Replace,
                      OrderingPolicy::Shtrichman, OrderingPolicy::Evsids),
    [](const auto& info) { return to_string(info.param); });

TEST(PolicyEffectTest, RefinedOrderingShrinksSearchOnDistractedCircuit) {
  // The headline effect: with logic outside the abstract model inflating
  // the instance, core-derived ordering beats plain VSIDS decisively.
  const auto bm = model::with_distractor(model::arbiter_safe(8), 24, 103);
  const int bound = 12;
  const BmcResult base = run_policy(bm, OrderingPolicy::Baseline, bound);
  const BmcResult stat = run_policy(bm, OrderingPolicy::Static, bound);
  const BmcResult dyn = run_policy(bm, OrderingPolicy::Dynamic, bound);
  ASSERT_EQ(base.status, BmcResult::Status::BoundReached);
  ASSERT_EQ(stat.status, BmcResult::Status::BoundReached);
  ASSERT_EQ(dyn.status, BmcResult::Status::BoundReached);
  EXPECT_LT(stat.total_decisions(), base.total_decisions());
  EXPECT_LT(dyn.total_decisions(), base.total_decisions());
}

TEST(PolicyEffectTest, ImplicationsShrinkToo) {
  // Fig. 7's second panel: the refined ordering also reduces implications.
  const auto bm = model::with_distractor(model::fifo_safe(4), 32, 104);
  const BmcResult base = run_policy(bm, OrderingPolicy::Baseline, 12);
  const BmcResult stat = run_policy(bm, OrderingPolicy::Static, 12);
  EXPECT_LT(stat.total_propagations(), base.total_propagations());
}

TEST(PolicyEffectTest, CoreWeightingsAllSound) {
  const auto bm = model::fifo_buggy(3);
  for (const CoreWeighting w :
       {CoreWeighting::Linear, CoreWeighting::Uniform,
        CoreWeighting::LastOnly, CoreWeighting::ExpDecay}) {
    SCOPED_TRACE(to_string(w));
    const BmcResult r =
        run_policy(bm, OrderingPolicy::Static, bm.suggested_bound, w);
    ASSERT_EQ(r.status, BmcResult::Status::CounterexampleFound);
    EXPECT_EQ(r.counterexample_depth, bm.expect_depth);
  }
}

TEST(PolicyEffectTest, DynamicReportsSwitchOnHardInstances) {
  // The deepest UNSAT accumulator instance (one short of the failure
  // depth) blows past #literals/64 decisions, so the dynamic policy must
  // report fallback on at least one depth.
  const auto bm = model::accumulator_reach(16, 4, 255);  // fails at 17
  EngineConfig cfg;
  cfg.policy = OrderingPolicy::Dynamic;
  cfg.max_depth = 16;  // stay below the failure depth: all UNSAT
  cfg.dynamic_switch_divisor = 64;
  // The switch threshold (#literals/64) is calibrated against the
  // textbook encoding; keep the instance at full size.
  cfg.simplify = false;
  const BmcResult r = BmcEngine(bm.net, cfg).run();
  ASSERT_EQ(r.status, BmcResult::Status::BoundReached);
  bool any_switched = false;
  for (const auto& d : r.per_depth) any_switched |= d.rank_switched;
  EXPECT_TRUE(any_switched);
}

TEST(PolicyEffectTest, SwitchDivisorControlsEagerness) {
  const auto bm = model::accumulator_reach(12, 3, 70);
  const auto count_switches = [&](int divisor) {
    EngineConfig cfg;
    cfg.policy = OrderingPolicy::Dynamic;
    cfg.max_depth = 9;
    cfg.dynamic_switch_divisor = divisor;
    const BmcResult r = BmcEngine(bm.net, cfg).run();
    int n = 0;
    for (const auto& d : r.per_depth) n += d.rank_switched ? 1 : 0;
    return n;
  };
  // A huge divisor (threshold ≈ 0 decisions) switches on every depth that
  // decides at all; a tiny divisor should switch on none.
  EXPECT_GE(count_switches(1'000'000'000), count_switches(1));
  EXPECT_EQ(count_switches(1), 0);
}

TEST(PolicyEffectTest, ShtrichmanDiffersFromBaselineButAgrees) {
  const auto bm = model::counter_reach(6, 10, true);
  const BmcResult sh = run_policy(bm, OrderingPolicy::Shtrichman, 12);
  EXPECT_EQ(sh.status, BmcResult::Status::CounterexampleFound);
  EXPECT_EQ(sh.counterexample_depth, 10);
}

}  // namespace
}  // namespace refbmc::bmc
