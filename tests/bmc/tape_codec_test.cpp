// TapeCodec: the varint/delta byte encoding of tape ranges must round-trip
// exactly — decoding an encoded range into a sink is bit-identical to
// replaying the raw tape — across randomized var/clause interleavings,
// empty ranges, and maximal variable deltas.  freeze_prefix() (cold
// storage) must be invisible to every reader.
#include "bmc/tape_codec.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "bmc/tape.hpp"
#include "model/benchgen.hpp"
#include "util/rng.hpp"

namespace refbmc::bmc {
namespace {

VarOrigin test_origin(std::size_t v) {
  return VarOrigin{model::kConstNode, -static_cast<int>(v % 7) - 1};
}

/// Records the replay stream verbatim for comparison.
struct RecordSink final : ClauseSink {
  std::vector<VarOrigin> vars;
  std::vector<std::vector<sat::Lit>> clauses;

  sat::Var add_var(const VarOrigin& origin) override {
    vars.push_back(origin);
    return static_cast<sat::Var>(vars.size() - 1);
  }
  void add_clause(std::span<const sat::Lit> lits) override {
    clauses.emplace_back(lits.begin(), lits.end());
  }
};

bool streams_equal(const RecordSink& a, const RecordSink& b) {
  if (a.vars.size() != b.vars.size() || a.clauses.size() != b.clauses.size())
    return false;
  for (std::size_t i = 0; i < a.vars.size(); ++i)
    if (a.vars[i].node != b.vars[i].node || a.vars[i].frame != b.vars[i].frame)
      return false;
  for (std::size_t i = 0; i < a.clauses.size(); ++i)
    if (a.clauses[i] != b.clauses[i]) return false;
  return true;
}

TEST(TapeCodecTest, VarintRoundTripsBoundaryValues) {
  const std::uint64_t values[] = {0,    1,    127,  128,   129,
                                  0x3fff, 0x4000, UINT32_MAX,
                                  UINT64_MAX - 1, UINT64_MAX};
  std::vector<std::uint8_t> bytes;
  for (const std::uint64_t v : values) TapeCodec::put_varint(bytes, v);
  const std::uint8_t* p = bytes.data();
  const std::uint8_t* const end = p + bytes.size();
  for (const std::uint64_t v : values)
    EXPECT_EQ(TapeCodec::get_varint(p, end), v);
  EXPECT_EQ(p, end);
}

TEST(TapeCodecTest, ZigzagRoundTripsSignedDeltas) {
  const std::int64_t values[] = {0, 1, -1, 2, -2, INT32_MAX, INT32_MIN,
                                 INT64_MAX, INT64_MIN};
  for (const std::int64_t v : values)
    EXPECT_EQ(TapeCodec::unzigzag(TapeCodec::zigzag(v)), v);
  // Small magnitudes must stay small on the wire (the compression claim).
  EXPECT_LE(TapeCodec::zigzag(-1), 2u);
  EXPECT_LE(TapeCodec::zigzag(1), 2u);
}

TEST(TapeCodecTest, EmptyRangeEncodesToNothing) {
  ClauseTape tape;
  tape.add_var(test_origin(0));
  tape.add_clause(std::vector<sat::Lit>{sat::Lit::make(0)});
  const ClauseTape::Mark m = tape.mark();
  const TapeCodec::EncodedRange enc = TapeCodec::encode(tape, m, m);
  EXPECT_TRUE(enc.bytes.empty());
  EXPECT_EQ(enc.raw_bytes(), 0u);

  ClauseTape::Cursor cursor;
  RecordSink sink;
  tape.replay(cursor, m, sink);  // park at m
  const std::size_t vars_before = cursor.var_map.size();
  TapeCodec::decode(enc, tape.origin(), cursor, sink);
  EXPECT_EQ(cursor.var_map.size(), vars_before);
  EXPECT_EQ(cursor.op, m.ops);
}

TEST(TapeCodecTest, MaxVarDeltasSurviveTheDeltaChain) {
  // First literals that jump across the whole 32-bit literal space force
  // maximal positive and negative deltas through zigzag.
  ClauseTape tape;
  const auto big = static_cast<sat::Var>((1u << 30) - 1);
  for (sat::Var v = 0; v <= 3; ++v) tape.add_var(test_origin(0));
  tape.add_clause(std::vector<sat::Lit>{sat::Lit::make(big, true)});
  tape.add_clause(std::vector<sat::Lit>{sat::Lit::make(0)});
  tape.add_clause(
      std::vector<sat::Lit>{sat::Lit::make(big), sat::Lit::make(0, true)});

  const TapeCodec::EncodedRange enc = TapeCodec::encode(tape, tape.mark());
  std::vector<std::vector<sat::Lit>> decoded;
  TapeCodec::decode_clauses(enc.bytes, [&](std::span<const sat::Lit> lits) {
    decoded.emplace_back(lits.begin(), lits.end());
  });
  ASSERT_EQ(decoded.size(), 3u);
  EXPECT_EQ(decoded[0], (std::vector<sat::Lit>{sat::Lit::make(big, true)}));
  EXPECT_EQ(decoded[1], (std::vector<sat::Lit>{sat::Lit::make(0)}));
  EXPECT_EQ(decoded[2], (std::vector<sat::Lit>{sat::Lit::make(big),
                                               sat::Lit::make(0, true)}));
}

TEST(TapeCodecTest, FuzzRandomInterleavingsRoundTripExactly) {
  // Random tapes, random split points: replaying [0, mid) raw and then
  // decoding the encoded [mid, end) must equal replaying [0, end) raw.
  Rng rng(0xC0DEC);
  for (int round = 0; round < 50; ++round) {
    ClauseTape tape;
    std::size_t num_vars = 0;
    const int events = rng.next_int(0, 120);
    for (int e = 0; e < events; ++e) {
      if (num_vars == 0 || rng.next_int(0, 3) == 0) {
        tape.add_var(test_origin(num_vars));
        ++num_vars;
        continue;
      }
      const int width = rng.next_int(1, 6);
      std::vector<sat::Lit> clause;
      for (int i = 0; i < width; ++i) {
        // Mostly-local literals with occasional far jumps, like Tseitin
        // output with strashing aliases.
        const auto v = static_cast<sat::Var>(
            rng.next_int(0, 4) == 0
                ? rng.next_int(0, static_cast<int>(num_vars) - 1)
                : static_cast<int>(num_vars) - 1 -
                      rng.next_int(0, std::min<int>(4, static_cast<int>(
                                                           num_vars) -
                                                           1)));
        clause.push_back(sat::Lit::make(v, rng.next_bool()));
      }
      tape.add_clause(clause);
    }
    const ClauseTape::Mark end = tape.mark();

    // A random interior mark (must fall on an op boundary: walk to it).
    const std::size_t mid_ops =
        static_cast<std::size_t>(rng.next_int(0, static_cast<int>(end.ops)));
    ClauseTape::Cursor probe;
    RecordSink ignore;
    ClauseTape::Mark mid{};
    {
      // Recover the full Mark at mid_ops by replaying up to it.
      std::size_t lit = 0, vars = 0, clauses = 0;
      tape.scan(0, mid_ops,
                [&](std::size_t n) { vars += n; },
                [&](std::span<const sat::Lit> lits) {
                  lit += lits.size();
                  ++clauses;
                });
      mid = ClauseTape::Mark{mid_ops, lit, vars, clauses};
    }

    RecordSink whole;
    ClauseTape::Cursor wc;
    tape.replay(wc, end, whole);

    RecordSink stitched;
    ClauseTape::Cursor sc;
    tape.replay(sc, mid, stitched);
    const TapeCodec::EncodedRange enc = TapeCodec::encode(tape, mid, end);
    TapeCodec::decode(enc, tape.origin(), sc, stitched);

    EXPECT_TRUE(streams_equal(whole, stitched)) << "round " << round;
    EXPECT_EQ(sc.op, end.ops);
    EXPECT_EQ(sc.lit, end.lits);
  }
}

TEST(TapeCodecTest, TseitinStreamCompressesAtLeastThreeTimes) {
  // The acceptance ratio on a real encoder stream: a BMC unrolling's
  // locality must make the codec at least 3x smaller than the raw tape.
  const auto bm = model::fifo_safe(4);
  SharedTape shared(bm.net, 0, {});
  shared.ensure_depth(8);
  RecordSink sink;
  ClauseTape::Cursor cursor;
  shared.replay_to(8, cursor, sink);  // materialize the stream

  ClauseTape tape;
  for (std::size_t v = 0; v < sink.vars.size(); ++v)
    tape.add_var(sink.vars[v]);
  // Interleaving vars-then-clauses only helps the var-run coder; clause
  // deltas (the bulk) are unaffected by this reordering.
  for (const auto& c : sink.clauses) tape.add_clause(c);
  const TapeCodec::EncodedRange enc = TapeCodec::encode(tape, tape.mark());
  EXPECT_GT(enc.raw_bytes(), 0u);
  EXPECT_LE(enc.bytes.size() * 3, enc.raw_bytes())
      << "encoded " << enc.bytes.size() << " raw " << enc.raw_bytes();
}

TEST(ClauseTapeColdTest, FreezePrefixIsInvisibleToReplay) {
  const auto bm = model::counter_reach(4, 6, true);
  SharedTape shared(bm.net, 0, {});
  RecordSink reference;
  {
    ClauseTape::Cursor cursor;
    shared.replay_to(5, cursor, reference);
  }

  // Same stream recorded into a standalone tape, frozen in two slices.
  ClauseTape tape;
  for (const auto& o : reference.vars) tape.add_var(o);
  std::size_t added = 0;
  ClauseTape::Mark first{};
  for (const auto& c : reference.clauses) {
    tape.add_clause(c);
    if (++added == reference.clauses.size() / 2) first = tape.mark();
  }
  const ClauseTape::Mark end = tape.mark();
  EXPECT_EQ(tape.frozen_segments(), 0u);
  tape.freeze_prefix(first);
  EXPECT_EQ(tape.frozen_segments(), 1u);
  tape.freeze_prefix(first);  // idempotent at the same mark
  EXPECT_EQ(tape.frozen_segments(), 1u);
  tape.freeze_prefix(end);
  EXPECT_EQ(tape.frozen_segments(), 2u);
  EXPECT_GT(tape.encoded_bytes(), 0u);
  EXPECT_LT(tape.encoded_bytes(), tape.raw_bytes());

  RecordSink replayed;
  ClauseTape::Cursor cursor;
  tape.replay(cursor, end, replayed);
  EXPECT_TRUE(streams_equal(reference, replayed));

  // Mid-range reads crossing the frozen/raw boundary must also agree.
  std::vector<std::vector<sat::Lit>> exported;
  tape.export_clauses(end, exported);
  EXPECT_EQ(exported, reference.clauses);
}

TEST(ClauseTapeColdTest, ColdSharedTapeIsBitIdenticalToHot) {
  const auto bm = model::fifo_safe(3);
  SharedTape hot(bm.net, 0, {});
  SharedTape cold(bm.net, 0, {});
  cold.set_cold_storage(true);
  EXPECT_TRUE(cold.cold_storage());

  for (int k = 0; k <= 6; ++k) {
    RecordSink a, b;
    ClauseTape::Cursor ca, cb;
    hot.replay_to(k, ca, a);
    cold.replay_to(k, cb, b);
    EXPECT_TRUE(streams_equal(a, b)) << "depth " << k;
    EXPECT_EQ(hot.property(k), cold.property(k));
  }
  // Cold mode actually froze the superseded depths and got smaller.
  EXPECT_GT(cold.tape_encoded_bytes(), 0u);
  EXPECT_LT(cold.tape_encoded_bytes(), cold.tape_raw_bytes() / 2);
  EXPECT_EQ(hot.tape_encoded_bytes(), 0u);
  EXPECT_EQ(hot.frames_encoded(), cold.frames_encoded());
  EXPECT_LT(cold.memory_bytes(), hot.memory_bytes());
}

TEST(ClauseTapeColdTest, ColdSimplifiedAndDeltaStreamsMatchHot) {
  const auto bm = model::fifo_safe(3);
  PreprocessOptions pp;
  SharedTape hot(bm.net, 0, {}, pp);
  SharedTape cold(bm.net, 0, {}, pp);
  cold.set_cold_storage(true);

  for (int k = 0; k <= 4; ++k) {
    RecordSink a, b;
    ClauseTape::Cursor ca, cb;
    hot.replay_simplified_to(k, ca, a);
    cold.replay_simplified_to(k, cb, b);
    EXPECT_TRUE(streams_equal(a, b)) << "simplified depth " << k;
    EXPECT_EQ(hot.simplified_clauses_at(k), cold.simplified_clauses_at(k));
  }
  {
    RecordSink a, b;
    ClauseTape::Cursor ca, cb;
    for (int f = 0; f <= 4; ++f) {
      hot.replay_simplified_delta(f, ca, a);
      cold.replay_simplified_delta(f, cb, b);
      EXPECT_TRUE(streams_equal(a, b)) << "delta depth " << f;
    }
  }
}

TEST(SharedTapeMemTest, FootprintIsChargedToTheTracker) {
  const auto bm = model::fifo_safe(3);
  MemTracker mem;
  SharedTape tape(bm.net, 0, {});
  tape.set_mem_tracker(&mem);
  EXPECT_EQ(mem.current(), 0u);
  tape.ensure_depth(5);
  EXPECT_GT(mem.current(), 0u);
  EXPECT_EQ(mem.current(), tape.memory_bytes());
  EXPECT_GE(mem.peak(), mem.current());
  tape.set_mem_tracker(nullptr);
  EXPECT_EQ(mem.current(), 0u);
}

}  // namespace
}  // namespace refbmc::bmc
