// Engine behaviour: verdicts, depths, per-depth stats, resource limits.
#include "bmc/engine.hpp"

#include <gtest/gtest.h>

#include "model/benchgen.hpp"
#include "model/builder.hpp"

namespace refbmc::bmc {
namespace {

TEST(EngineTest, FindsCounterexampleAtExactDepth) {
  const auto bm = model::counter_reach(5, 12, true);
  const BmcResult r = check_invariant(bm.net, 20, OrderingPolicy::Dynamic);
  EXPECT_EQ(r.status, BmcResult::Status::CounterexampleFound);
  EXPECT_EQ(r.counterexample_depth, 12);
  ASSERT_TRUE(r.counterexample.has_value());
  EXPECT_EQ(r.counterexample->depth, 12);
  EXPECT_TRUE(validate_trace(bm.net, *r.counterexample));
}

TEST(EngineTest, BoundReachedOnPassingProperty) {
  const auto bm = model::counter_safe(6, 40, 50);
  const BmcResult r = check_invariant(bm.net, 15, OrderingPolicy::Static);
  EXPECT_EQ(r.status, BmcResult::Status::BoundReached);
  EXPECT_FALSE(r.counterexample.has_value());
  EXPECT_EQ(r.last_completed_depth, 15);
  EXPECT_EQ(r.per_depth.size(), 16u);  // depths 0..15
}

TEST(EngineTest, PerDepthStatsAreComplete) {
  const auto bm = model::fifo_safe(3);
  EngineConfig cfg;
  cfg.policy = OrderingPolicy::Static;
  cfg.max_depth = 8;
  BmcEngine engine(bm.net, cfg);
  const BmcResult r = engine.run();
  ASSERT_EQ(r.per_depth.size(), 9u);
  for (int k = 0; k <= 8; ++k) {
    const DepthStats& d = r.per_depth[static_cast<std::size_t>(k)];
    EXPECT_EQ(d.depth, k);
    EXPECT_EQ(d.result, sat::Result::Unsat);
    EXPECT_GT(d.cnf_vars, 0u);
    EXPECT_GT(d.cnf_clauses, 0u);
    EXPECT_GT(d.core_clauses, 0u);
    EXPECT_GT(d.core_vars, 0u);
    EXPECT_GE(d.time_sec, 0.0);
  }
  EXPECT_GT(r.total_time_sec, 0.0);
}

TEST(EngineTest, RankingAccumulatesAcrossDepths) {
  const auto bm = model::fifo_safe(3);
  EngineConfig cfg;
  cfg.policy = OrderingPolicy::Static;
  cfg.max_depth = 6;
  BmcEngine engine(bm.net, cfg);
  engine.run();
  EXPECT_EQ(engine.ranking().num_updates(), 7u);
  EXPECT_FALSE(engine.ranking().scores().empty());
}

TEST(EngineTest, BaselineSkipsCoreTracking) {
  const auto bm = model::counter_safe(5, 20, 25);
  EngineConfig cfg;
  cfg.policy = OrderingPolicy::Baseline;
  cfg.max_depth = 5;
  BmcEngine engine(bm.net, cfg);
  const BmcResult r = engine.run();
  for (const auto& d : r.per_depth) EXPECT_EQ(d.core_clauses, 0u);
  EXPECT_EQ(engine.ranking().num_updates(), 0u);
}

TEST(EngineTest, BaselineCanTrackCoresOnDemand) {
  const auto bm = model::counter_safe(5, 20, 25);
  EngineConfig cfg;
  cfg.policy = OrderingPolicy::Baseline;
  cfg.always_track_cdg = true;
  cfg.max_depth = 4;
  const BmcResult r = BmcEngine(bm.net, cfg).run();
  for (const auto& d : r.per_depth) EXPECT_GT(d.core_clauses, 0u);
}

TEST(EngineTest, VerifyCoresOptionChecksEveryDepth) {
  const auto bm = model::fifo_safe(3);
  EngineConfig cfg;
  cfg.policy = OrderingPolicy::Dynamic;
  cfg.verify_cores = true;  // would throw on a bogus core
  cfg.max_depth = 6;
  EXPECT_NO_THROW(BmcEngine(bm.net, cfg).run());
}

TEST(EngineTest, StartDepthSkipsShallowInstances) {
  const auto bm = model::counter_reach(5, 8, false);
  EngineConfig cfg;
  cfg.start_depth = 5;
  cfg.max_depth = 12;
  const BmcResult r = BmcEngine(bm.net, cfg).run();
  EXPECT_EQ(r.status, BmcResult::Status::CounterexampleFound);
  EXPECT_EQ(r.counterexample_depth, 8);
  EXPECT_EQ(r.per_depth.front().depth, 5);
}

TEST(EngineTest, TotalTimeLimitStopsEarly) {
  const auto bm = model::with_distractor(model::fifo_safe(5), 48, 3);
  EngineConfig cfg;
  cfg.policy = OrderingPolicy::Baseline;
  cfg.max_depth = 1000;
  cfg.total_time_limit_sec = 0.2;
  const BmcResult r = BmcEngine(bm.net, cfg).run();
  EXPECT_EQ(r.status, BmcResult::Status::ResourceLimit);
  EXPECT_LT(r.last_completed_depth, 1000);
}

TEST(EngineTest, PerInstanceConflictLimitReportsResourceLimit) {
  const auto bm = model::with_distractor(model::accumulator_reach(16, 4, 255), 16, 4);
  EngineConfig cfg;
  cfg.policy = OrderingPolicy::Baseline;
  cfg.max_depth = 16;
  cfg.per_instance_conflict_limit = 1;
  const BmcResult r = BmcEngine(bm.net, cfg).run();
  EXPECT_EQ(r.status, BmcResult::Status::ResourceLimit);
}

TEST(EngineTest, InvalidConfigRejected) {
  const auto bm = model::counter_reach(3, 2, false);
  EngineConfig cfg;
  cfg.start_depth = 5;
  cfg.max_depth = 4;
  EXPECT_THROW(BmcEngine(bm.net, cfg), std::invalid_argument);
  cfg.start_depth = -1;
  EXPECT_THROW(BmcEngine(bm.net, cfg), std::invalid_argument);
}

TEST(EngineTest, BadIndexSelectsProperty) {
  model::Netlist net;
  model::Builder b(net);
  const model::Word cnt = b.latch_word("c", 4, 0);
  b.set_next_word(cnt, b.increment(cnt));
  net.add_bad(b.eq_const(cnt, 3), "at3");
  net.add_bad(b.eq_const(cnt, 7), "at7");
  EXPECT_EQ(check_invariant(net, 10, OrderingPolicy::Baseline, 0)
                .counterexample_depth,
            3);
  EXPECT_EQ(check_invariant(net, 10, OrderingPolicy::Baseline, 1)
                .counterexample_depth,
            7);
}

TEST(EngineTest, AnyModeFindsSameDepthFromScratch) {
  const auto bm = model::counter_reach(5, 9, true);
  EngineConfig cfg;
  cfg.bad_mode = BadMode::Any;
  cfg.max_depth = 15;
  const BmcResult r = BmcEngine(bm.net, cfg).run();
  EXPECT_EQ(r.status, BmcResult::Status::CounterexampleFound);
  EXPECT_EQ(r.counterexample_depth, 9);
  ASSERT_TRUE(r.counterexample.has_value());
  EXPECT_TRUE(validate_trace(bm.net, *r.counterexample));
}

TEST(EngineTest, TotalsAggregatePerDepth) {
  const auto bm = model::fifo_safe(3);
  EngineConfig cfg;
  cfg.max_depth = 5;
  const BmcResult r = BmcEngine(bm.net, cfg).run();
  std::uint64_t dec = 0, props = 0, confl = 0;
  for (const auto& d : r.per_depth) {
    dec += d.decisions;
    props += d.propagations;
    confl += d.conflicts;
  }
  EXPECT_EQ(r.total_decisions(), dec);
  EXPECT_EQ(r.total_propagations(), props);
  EXPECT_EQ(r.total_conflicts(), confl);
}

}  // namespace
}  // namespace refbmc::bmc
