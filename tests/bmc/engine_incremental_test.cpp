// Incremental BMC mode: verdict/depth equivalence with the scratch mode,
// core soundness, and resource limits.  (Session-level machinery —
// activation literals, guard retirement, origin growth — is covered in
// session_test.cpp.)
#include <gtest/gtest.h>

#include "bmc/engine.hpp"
#include "model/benchgen.hpp"

namespace refbmc::bmc {
namespace {

class IncrementalEquivalenceTest
    : public ::testing::TestWithParam<OrderingPolicy> {};

TEST_P(IncrementalEquivalenceTest, MatchesScratchModeOnQuickSuite) {
  for (const auto& bm : model::quick_suite()) {
    SCOPED_TRACE(bm.name);
    EngineConfig scratch;
    scratch.policy = GetParam();
    scratch.max_depth = bm.suggested_bound;
    EngineConfig inc = scratch;
    inc.incremental = true;

    const BmcResult a = BmcEngine(bm.net, scratch).run();
    const BmcResult b = BmcEngine(bm.net, inc).run();
    EXPECT_EQ(a.status, b.status);
    EXPECT_EQ(a.counterexample_depth, b.counterexample_depth);
    EXPECT_EQ(a.last_completed_depth, b.last_completed_depth);
    if (b.counterexample) {
      EXPECT_TRUE(validate_trace(bm.net, *b.counterexample));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, IncrementalEquivalenceTest,
                         ::testing::Values(OrderingPolicy::Baseline,
                                           OrderingPolicy::Static,
                                           OrderingPolicy::Dynamic),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(IncrementalEngineTest, AnyModeMatchesScratchAnyMode) {
  // BadMode::Any rides the tape's prefix-disjunction chain, so it works
  // incrementally too; verdicts must match the scratch Any-mode run.
  for (const auto& bm : model::quick_suite()) {
    SCOPED_TRACE(bm.name);
    EngineConfig scratch;
    scratch.policy = OrderingPolicy::Dynamic;
    scratch.bad_mode = BadMode::Any;
    scratch.max_depth = bm.suggested_bound;
    EngineConfig inc = scratch;
    inc.incremental = true;
    const BmcResult a = BmcEngine(bm.net, scratch).run();
    const BmcResult b = BmcEngine(bm.net, inc).run();
    EXPECT_EQ(a.status, b.status);
    EXPECT_EQ(a.counterexample_depth, b.counterexample_depth);
  }
}

TEST(IncrementalEngineTest, CoresVerifiedEveryDepth) {
  const auto bm = model::fifo_safe(3);
  EngineConfig cfg;
  cfg.policy = OrderingPolicy::Dynamic;
  cfg.incremental = true;
  cfg.verify_cores = true;  // throws on a bogus core
  cfg.max_depth = 7;
  EXPECT_NO_THROW(BmcEngine(bm.net, cfg).run());
}

TEST(IncrementalEngineTest, RankingAccumulates) {
  const auto bm = model::fifo_safe(3);
  EngineConfig cfg;
  cfg.policy = OrderingPolicy::Static;
  cfg.incremental = true;
  cfg.max_depth = 6;
  BmcEngine engine(bm.net, cfg);
  engine.run();
  EXPECT_EQ(engine.ranking().num_updates(), 7u);
}

TEST(IncrementalEngineTest, RejectsShtrichmanOrdering) {
  const auto bm = model::counter_reach(3, 2, false);
  EngineConfig cfg;
  cfg.incremental = true;
  cfg.policy = OrderingPolicy::Shtrichman;
  EXPECT_THROW(BmcEngine(bm.net, cfg).run(), std::invalid_argument);
}

TEST(IncrementalEngineTest, ResourceLimitsRespected) {
  const auto bm =
      model::with_distractor(model::accumulator_reach(16, 4, 255), 16, 4);
  EngineConfig cfg;
  cfg.policy = OrderingPolicy::Baseline;
  cfg.incremental = true;
  cfg.max_depth = 16;
  cfg.per_instance_conflict_limit = 1;
  const BmcResult r = BmcEngine(bm.net, cfg).run();
  EXPECT_EQ(r.status, BmcResult::Status::ResourceLimit);
}

TEST(IncrementalEngineTest, ReusesLearnedClausesAcrossDepths) {
  // The incremental run should touch fewer total conflicts than the
  // scratch run on a passing property (clause reuse), while agreeing on
  // the verdict.  We assert agreement plus "not wildly more work".
  const auto bm = model::with_distractor(model::fifo_safe(4), 16, 9);
  EngineConfig scratch;
  scratch.policy = OrderingPolicy::Dynamic;
  scratch.max_depth = 10;
  EngineConfig inc = scratch;
  inc.incremental = true;
  const BmcResult a = BmcEngine(bm.net, scratch).run();
  const BmcResult b = BmcEngine(bm.net, inc).run();
  ASSERT_EQ(a.status, BmcResult::Status::BoundReached);
  ASSERT_EQ(b.status, BmcResult::Status::BoundReached);
  EXPECT_LT(b.total_conflicts(), 4 * std::max<std::uint64_t>(
                                         a.total_conflicts(), 1));
}

}  // namespace
}  // namespace refbmc::bmc
