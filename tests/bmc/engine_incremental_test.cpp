// Incremental BMC mode: verdict/depth equivalence with the scratch mode,
// core soundness, and the machinery specifics (activation literals,
// origin growth).
#include <gtest/gtest.h>

#include "bmc/engine.hpp"
#include "bmc/unroller.hpp"
#include "model/benchgen.hpp"

namespace refbmc::bmc {
namespace {

class IncrementalEquivalenceTest
    : public ::testing::TestWithParam<OrderingPolicy> {};

TEST_P(IncrementalEquivalenceTest, MatchesScratchModeOnQuickSuite) {
  for (const auto& bm : model::quick_suite()) {
    SCOPED_TRACE(bm.name);
    EngineConfig scratch;
    scratch.policy = GetParam();
    scratch.max_depth = bm.suggested_bound;
    EngineConfig inc = scratch;
    inc.incremental = true;

    const BmcResult a = BmcEngine(bm.net, scratch).run();
    const BmcResult b = BmcEngine(bm.net, inc).run();
    EXPECT_EQ(a.status, b.status);
    EXPECT_EQ(a.counterexample_depth, b.counterexample_depth);
    EXPECT_EQ(a.last_completed_depth, b.last_completed_depth);
    if (b.counterexample) {
      EXPECT_TRUE(validate_trace(bm.net, *b.counterexample));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, IncrementalEquivalenceTest,
                         ::testing::Values(OrderingPolicy::Baseline,
                                           OrderingPolicy::Static,
                                           OrderingPolicy::Dynamic),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(IncrementalEngineTest, CoresVerifiedEveryDepth) {
  const auto bm = model::fifo_safe(3);
  EngineConfig cfg;
  cfg.policy = OrderingPolicy::Dynamic;
  cfg.incremental = true;
  cfg.verify_cores = true;  // throws on a bogus core
  cfg.max_depth = 7;
  EXPECT_NO_THROW(BmcEngine(bm.net, cfg).run());
}

TEST(IncrementalEngineTest, RankingAccumulates) {
  const auto bm = model::fifo_safe(3);
  EngineConfig cfg;
  cfg.policy = OrderingPolicy::Static;
  cfg.incremental = true;
  cfg.max_depth = 6;
  BmcEngine engine(bm.net, cfg);
  engine.run();
  EXPECT_EQ(engine.ranking().num_updates(), 7u);
}

TEST(IncrementalEngineTest, RejectsUnsupportedCombinations) {
  const auto bm = model::counter_reach(3, 2, false);
  EngineConfig cfg;
  cfg.incremental = true;
  cfg.bad_mode = BadMode::Any;
  EXPECT_THROW(BmcEngine(bm.net, cfg).run(), std::invalid_argument);
  cfg.bad_mode = BadMode::Last;
  cfg.policy = OrderingPolicy::Shtrichman;
  EXPECT_THROW(BmcEngine(bm.net, cfg).run(), std::invalid_argument);
}

TEST(IncrementalEngineTest, ResourceLimitsRespected) {
  const auto bm =
      model::with_distractor(model::accumulator_reach(16, 4, 255), 16, 4);
  EngineConfig cfg;
  cfg.policy = OrderingPolicy::Baseline;
  cfg.incremental = true;
  cfg.max_depth = 16;
  cfg.per_instance_conflict_limit = 1;
  const BmcResult r = BmcEngine(bm.net, cfg).run();
  EXPECT_EQ(r.status, BmcResult::Status::ResourceLimit);
}

TEST(IncrementalUnrollerTest, ActivationLiteralsAreDistinct) {
  const auto bm = model::counter_reach(4, 6, false);
  sat::Solver solver;
  IncrementalUnroller unr(bm.net, solver, 0);
  const sat::Lit a0 = unr.activation(0);
  const sat::Lit a3 = unr.activation(3);
  EXPECT_NE(a0.var(), a3.var());
  EXPECT_EQ(unr.encoded_depth(), 3);
  // Re-requesting is idempotent.
  EXPECT_EQ(unr.activation(0), a0);
  EXPECT_EQ(unr.activation(3), a3);
}

TEST(IncrementalUnrollerTest, SolveMatchesScratchUnrollerPerDepth) {
  const auto bm = model::counter_reach(4, 6, false);
  const Unroller scratch(bm.net);
  sat::Solver solver;
  IncrementalUnroller unr(bm.net, solver, 0);
  for (int k = 0; k <= 8; ++k) {
    const sat::Result inc_res = solver.solve({unr.activation(k)});
    sat::Solver fresh;
    const BmcInstance inst = scratch.unroll(k);
    for (std::size_t v = 0; v < inst.num_vars(); ++v) fresh.new_var();
    for (const auto& c : inst.cnf.clauses) fresh.add_clause(c);
    EXPECT_EQ(inc_res, fresh.solve()) << "depth " << k;
    if (inc_res == sat::Result::Unsat) unr.deactivate(k);
  }
}

TEST(IncrementalUnrollerTest, OriginGrowsMonotonically) {
  const auto bm = model::fifo_safe(3);
  sat::Solver solver;
  IncrementalUnroller unr(bm.net, solver, 0);
  unr.activation(0);
  const std::size_t at0 = unr.origin().size();
  unr.activation(2);
  const std::size_t at2 = unr.origin().size();
  EXPECT_GT(at2, at0);
  EXPECT_EQ(unr.origin().size(),
            static_cast<std::size_t>(solver.num_vars()));
  // Prefix is stable: variables never change origin.
  unr.activation(4);
  EXPECT_EQ(unr.origin()[at0 - 1].node, unr.origin()[at0 - 1].node);
}

TEST(IncrementalUnrollerTest, DeactivationIsPermanentAndIdempotent) {
  const auto bm = model::counter_reach(3, 2, false);
  sat::Solver solver;
  IncrementalUnroller unr(bm.net, solver, 0);
  const sat::Lit a2 = unr.activation(2);
  EXPECT_EQ(solver.solve({a2}), sat::Result::Sat);  // cex at depth 2
  unr.deactivate(2);
  unr.deactivate(2);  // idempotent
  EXPECT_EQ(solver.solve({a2}), sat::Result::Unsat);  // guard retired
  EXPECT_THROW(unr.deactivate(9), std::invalid_argument);
}

TEST(IncrementalEngineTest, ReusesLearnedClausesAcrossDepths) {
  // The incremental run should touch fewer total conflicts than the
  // scratch run on a passing property (clause reuse), while agreeing on
  // the verdict.  We assert agreement plus "not wildly more work".
  const auto bm = model::with_distractor(model::fifo_safe(4), 16, 9);
  EngineConfig scratch;
  scratch.policy = OrderingPolicy::Dynamic;
  scratch.max_depth = 10;
  EngineConfig inc = scratch;
  inc.incremental = true;
  const BmcResult a = BmcEngine(bm.net, scratch).run();
  const BmcResult b = BmcEngine(bm.net, inc).run();
  ASSERT_EQ(a.status, BmcResult::Status::BoundReached);
  ASSERT_EQ(b.status, BmcResult::Status::BoundReached);
  EXPECT_LT(b.total_conflicts(), 4 * std::max<std::uint64_t>(
                                         a.total_conflicts(), 1));
}

}  // namespace
}  // namespace refbmc::bmc
