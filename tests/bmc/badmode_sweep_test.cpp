// BadMode agreement sweep: over the benchgen suite, a full BMC run in
// BadMode::Last and one in BadMode::Any must agree on counter-example
// existence (the loop covers every depth, so "cex of some length ≤ bound"
// is the same question either way), in both scratch and incremental
// sessions, with and without simplification — and Any must find the cex
// at the same earliest depth as Last.
#include <gtest/gtest.h>

#include "bmc/engine.hpp"
#include "model/benchgen.hpp"

namespace refbmc::bmc {
namespace {

struct SweepMode {
  bool incremental;
  bool simplify;
};

class BadModeSweep : public ::testing::TestWithParam<SweepMode> {};

TEST_P(BadModeSweep, AnyAndLastAgreeOnCexExistence) {
  for (const auto& bm : model::quick_suite()) {
    SCOPED_TRACE(bm.name);
    EngineConfig last;
    last.policy = OrderingPolicy::Dynamic;
    last.max_depth = bm.suggested_bound;
    last.incremental = GetParam().incremental;
    last.simplify = GetParam().simplify;
    EngineConfig any = last;
    any.bad_mode = BadMode::Any;

    const BmcResult rl = BmcEngine(bm.net, last).run();
    const BmcResult ra = BmcEngine(bm.net, any).run();

    const bool last_cex =
        rl.status == BmcResult::Status::CounterexampleFound;
    const bool any_cex = ra.status == BmcResult::Status::CounterexampleFound;
    EXPECT_EQ(last_cex, any_cex);
    EXPECT_EQ(last_cex, bm.expect_fail);
    if (last_cex) {
      // The loop stops at the earliest violating depth in both modes.
      EXPECT_EQ(rl.counterexample_depth, ra.counterexample_depth);
      EXPECT_EQ(rl.counterexample_depth, bm.expect_depth);
      ASSERT_TRUE(ra.counterexample.has_value());
      EXPECT_TRUE(validate_trace(bm.net, *ra.counterexample));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sessions, BadModeSweep,
    ::testing::Values(SweepMode{false, true}, SweepMode{false, false},
                      SweepMode{true, true}, SweepMode{true, false}),
    [](const auto& info) {
      return std::string(info.param.incremental ? "incremental" : "scratch") +
             (info.param.simplify ? "_simplify" : "_plain");
    });

}  // namespace
}  // namespace refbmc::bmc
