// unroll_path semantics: the path-only instance used by k-induction —
// optional init, exposed per-frame bad literals and latch variables.
#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "bmc/unroller.hpp"
#include "model/benchgen.hpp"
#include "model/builder.hpp"
#include "sat/solver.hpp"

namespace refbmc::bmc {
namespace {

using test::load;

TEST(UnrollPathTest, NoPropertyClauseMeansSat) {
  // The bare path is always satisfiable (any execution is a model).
  const auto bm = model::counter_safe(4, 6, 10);
  const Unroller unr(bm.net);
  for (const bool init : {true, false}) {
    const BmcInstance inst = unr.unroll_path(3, init);
    sat::Solver s;
    load(s, inst.cnf);
    EXPECT_EQ(s.solve(), sat::Result::Sat) << init;
  }
}

TEST(UnrollPathTest, BadFramesMatchDepth) {
  const auto bm = model::fifo_safe(3);
  const Unroller unr(bm.net);
  const BmcInstance inst = unr.unroll_path(5, true);
  EXPECT_EQ(inst.bad_frames.size(), 6u);
  EXPECT_EQ(inst.latch_frames.size(), 6u);
  for (const auto& frame : inst.latch_frames)
    EXPECT_EQ(frame.size(), bm.net.num_latches());
}

TEST(UnrollPathTest, InitConstrainsFrameZero) {
  // With init: counter at frame 0 is 0, so bad at frame 0 (cnt==0) holds
  // in every model.  Without init: frame 0 is free, so ¬bad is possible.
  model::Netlist net;
  model::Builder b(net);
  const model::Word cnt = b.latch_word("c", 3, 0);
  b.set_next_word(cnt, b.increment(cnt));
  net.add_bad(b.eq_const(cnt, 0), "at_zero");
  const Unroller unr(net);

  {
    BmcInstance with_init = unr.unroll_path(0, true);
    with_init.cnf.add_clause({~with_init.bad_frames[0]});
    sat::Solver s;
    load(s, with_init.cnf);
    EXPECT_EQ(s.solve(), sat::Result::Unsat);
  }
  {
    BmcInstance free = unr.unroll_path(0, false);
    free.cnf.add_clause({~free.bad_frames[0]});
    sat::Solver s;
    load(s, free.cnf);
    EXPECT_EQ(s.solve(), sat::Result::Sat);
  }
}

TEST(UnrollPathTest, TransitionsStillEnforcedWithoutInit) {
  // Free frame 0, but frames remain T-coupled: cnt@1 = cnt@0 + 1, so
  // asserting cnt@0 == 2 ∧ cnt@1 == 5 is UNSAT.
  model::Netlist net;
  model::Builder b(net);
  const model::Word cnt = b.latch_word("c", 3, 0);
  b.set_next_word(cnt, b.increment(cnt));
  net.add_bad(b.eq_const(cnt, 2), "at2");  // bad_frames = (cnt == 2)
  const Unroller unr(net);
  BmcInstance inst = unr.unroll_path(1, false);
  inst.cnf.add_clause({inst.bad_frames[0]});  // cnt@0 == 2
  // cnt@1 == 5 via latch vars: 5 = 101₂.
  const auto& l1 = inst.latch_frames[1];
  ASSERT_EQ(l1.size(), 3u);
  inst.cnf.add_clause({sat::Lit::make(l1[0])});
  inst.cnf.add_clause({sat::Lit::make(l1[1], true)});
  inst.cnf.add_clause({sat::Lit::make(l1[2])});
  sat::Solver s;
  load(s, inst.cnf);
  EXPECT_EQ(s.solve(), sat::Result::Unsat);
  // And cnt@1 == 3 is fine.
  BmcInstance ok = unr.unroll_path(1, false);
  ok.cnf.add_clause({ok.bad_frames[0]});
  const auto& m1 = ok.latch_frames[1];
  ok.cnf.add_clause({sat::Lit::make(m1[0])});
  ok.cnf.add_clause({sat::Lit::make(m1[1])});
  ok.cnf.add_clause({sat::Lit::make(m1[2], true)});
  sat::Solver s2;
  load(s2, ok.cnf);
  EXPECT_EQ(s2.solve(), sat::Result::Sat);
}

TEST(UnrollPathTest, UnrollEqualsPathPlusProperty) {
  // unroll(k) in Last mode = unroll_path(k, init) + unit bad@k.
  const auto bm = model::counter_reach(4, 6, false);
  const Unroller unr(bm.net);
  for (int k = 4; k <= 7; ++k) {
    BmcInstance path = unr.unroll_path(k, true);
    path.cnf.add_clause({path.bad_frames[static_cast<std::size_t>(k)]});
    sat::Solver a, b2;
    load(a, path.cnf);
    const BmcInstance full = unr.unroll(k);
    load(b2, full.cnf);
    EXPECT_EQ(a.solve(), b2.solve()) << k;
  }
}

}  // namespace
}  // namespace refbmc::bmc
