// FrameEncoder semantics: the CNF of Eq. 1 must be satisfiable exactly
// when a counter-example of the right length exists, its models must
// match circuit simulation, and the frame-wise simplification layer
// (constant propagation, structural hashing, latch aliasing) must change
// instance sizes but never verdicts.
#include "bmc/encoder.hpp"

#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "bmc/trace.hpp"
#include "model/benchgen.hpp"
#include "model/builder.hpp"
#include "sat/solver.hpp"

namespace refbmc::bmc {
namespace {

using model::Builder;
using model::Netlist;
using model::Signal;
using model::Word;
using test::load;

EncoderOptions opts_for(BadMode mode, bool simplify) {
  EncoderOptions o;
  o.mode = mode;
  o.simplify = simplify;
  return o;
}

sat::Result solve_instance(const BmcInstance& inst) {
  sat::Solver s;
  load(s, inst.cnf);
  return s.solve();
}

class EncoderModeTest : public ::testing::TestWithParam<bool> {};

TEST_P(EncoderModeTest, CounterFailsExactlyAtTarget) {
  const auto bm = model::counter_reach(4, 6, false);
  for (int k = 0; k <= 8; ++k) {
    const BmcInstance inst =
        encode_full(bm.net, 0, k, opts_for(BadMode::Last, GetParam()));
    EXPECT_EQ(solve_instance(inst),
              k == 6 ? sat::Result::Sat : sat::Result::Unsat)
        << "depth " << k;
  }
}

TEST_P(EncoderModeTest, LastModeMissesEarlierFailures) {
  // With an enable input the counter can also linger, so in Last mode
  // depths beyond the minimum are satisfiable too.
  const auto bm = model::counter_reach(4, 3, true);
  const EncoderOptions o = opts_for(BadMode::Last, GetParam());
  EXPECT_EQ(solve_instance(encode_full(bm.net, 0, 2, o)), sat::Result::Unsat);
  EXPECT_EQ(solve_instance(encode_full(bm.net, 0, 3, o)), sat::Result::Sat);
  EXPECT_EQ(solve_instance(encode_full(bm.net, 0, 4, o)), sat::Result::Sat);
}

TEST_P(EncoderModeTest, AnyModeSubsumesShallowerFailures) {
  const auto bm = model::counter_reach(4, 3, false);
  const EncoderOptions o = opts_for(BadMode::Any, GetParam());
  EXPECT_EQ(solve_instance(encode_full(bm.net, 0, 2, o)), sat::Result::Unsat);
  EXPECT_EQ(solve_instance(encode_full(bm.net, 0, 3, o)), sat::Result::Sat);
  // Deterministic counter passes 3 only at depth 3, but Any-mode keeps
  // the disjunction satisfiable at every deeper unrolling.
  EXPECT_EQ(solve_instance(encode_full(bm.net, 0, 6, o)), sat::Result::Sat);
}

TEST_P(EncoderModeTest, InitialStatePredicates) {
  // Latch inited to 1 with self-loop; bad = ¬latch: never fails.
  Netlist net;
  const Signal l = net.add_latch(sat::l_True);
  net.set_next(l, l);
  net.add_bad(!l, "went_low");
  for (int k = 0; k <= 3; ++k)
    EXPECT_EQ(solve_instance(
                  encode_full(net, 0, k, opts_for(BadMode::Last, GetParam()))),
              sat::Result::Unsat)
        << k;
}

TEST_P(EncoderModeTest, UninitialisedLatchIsFree) {
  Netlist net;
  const Signal l = net.add_latch(sat::l_Undef);
  net.set_next(l, l);
  net.add_bad(l, "starts_high");
  // Free initial value: bad can hold immediately.
  EXPECT_EQ(solve_instance(
                encode_full(net, 0, 0, opts_for(BadMode::Last, GetParam()))),
            sat::Result::Sat);
}

TEST_P(EncoderModeTest, ConstantBadSignals) {
  Netlist net;
  net.add_latch(sat::l_False);
  net.add_bad(Signal::constant(false), "never");
  net.add_bad(Signal::constant(true), "always");
  const EncoderOptions o = opts_for(BadMode::Last, GetParam());
  EXPECT_EQ(solve_instance(encode_full(net, 0, 2, o)), sat::Result::Unsat);
  EXPECT_EQ(solve_instance(encode_full(net, 1, 2, o)), sat::Result::Sat);
}

TEST_P(EncoderModeTest, ModelsReplayOnSimulator) {
  // Any satisfying assignment of the unrolling must be a genuine trace.
  const auto bm = model::fifo_buggy(3);
  const BmcInstance inst = encode_full(bm.net, 0, bm.expect_depth,
                                       opts_for(BadMode::Last, GetParam()));
  sat::Solver s;
  load(s, inst.cnf);
  ASSERT_EQ(s.solve(), sat::Result::Sat);
  const Trace trace = extract_trace(bm.net, inst, s);
  EXPECT_TRUE(validate_trace(bm.net, trace));
}

INSTANTIATE_TEST_SUITE_P(SimplifyOnOff, EncoderModeTest, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "simplify" : "plain";
                         });

// ---- unsimplified structure (the textbook encoding) -----------------------

TEST(EncoderTest, ConeOfInfluenceShrinksCnf) {
  // Irrelevant side logic must not appear in the instance.
  Netlist net;
  Builder b(net);
  const Word main_cnt = b.latch_word("main", 4, 0);
  b.set_next_word(main_cnt, b.increment(main_cnt));
  const Word side = b.latch_word("side", 8, 0);  // disconnected
  b.set_next_word(side, b.increment(side));
  net.add_bad(b.eq_const(main_cnt, 5), "hit");

  Netlist small;
  Builder sb(small);
  const Word only = sb.latch_word("main", 4, 0);
  sb.set_next_word(only, sb.increment(only));
  small.add_bad(sb.eq_const(only, 5), "hit");

  const EncoderOptions plain = opts_for(BadMode::Last, false);
  const BmcInstance with_side = encode_full(net, 0, 3, plain);
  const BmcInstance without = encode_full(small, 0, 3, plain);
  EXPECT_EQ(with_side.num_vars(), without.num_vars());
  EXPECT_EQ(with_side.num_clauses(), without.num_clauses());
}

TEST(EncoderTest, OriginMapIsConsistent) {
  const auto bm = model::fifo_safe(3);
  BmcInstance inst;
  InstanceSink sink(inst);
  FrameEncoder enc(bm.net, sink, 0, opts_for(BadMode::Last, false));
  enc.encode_to(4);
  EXPECT_EQ(inst.origin.size(), static_cast<std::size_t>(inst.cnf.num_vars));
  // Var 0 is the auxiliary constant.
  EXPECT_EQ(inst.origin[0].frame, -1);
  // Every other variable maps to a cone node with a frame in [0, k].
  int frames_seen = 0;
  std::vector<char> frame_seen(5, 0);
  for (std::size_t v = 1; v < inst.origin.size(); ++v) {
    const VarOrigin& o = inst.origin[v];
    EXPECT_GE(o.frame, 0);
    EXPECT_LE(o.frame, 4);
    EXPECT_GT(o.node, model::kConstNode);
    if (!frame_seen[static_cast<std::size_t>(o.frame)]) {
      frame_seen[static_cast<std::size_t>(o.frame)] = 1;
      ++frames_seen;
    }
  }
  EXPECT_EQ(frames_seen, 5);
  // Per-frame variable blocks all have the cone size.
  const std::size_t per_frame = (inst.origin.size() - 1) / 5;
  EXPECT_EQ((inst.origin.size() - 1) % 5, 0u);
  EXPECT_EQ(per_frame, enc.cone().size() - 1);  // minus constant node
}

TEST(EncoderTest, InstanceGrowsLinearlyWithDepth) {
  const auto bm = model::counter_safe(6, 40, 50);
  const EncoderOptions plain = opts_for(BadMode::Last, false);
  const auto i1 = encode_full(bm.net, 0, 1, plain);
  const auto i2 = encode_full(bm.net, 0, 2, plain);
  const auto i3 = encode_full(bm.net, 0, 3, plain);
  const std::size_t d21 = i2.num_clauses() - i1.num_clauses();
  const std::size_t d32 = i3.num_clauses() - i2.num_clauses();
  EXPECT_EQ(d21, d32);
  EXPECT_GT(d21, 0u);
}

TEST(EncoderTest, EncodeOncePerFrame) {
  const auto bm = model::fifo_safe(3);
  BmcInstance inst;
  InstanceSink sink(inst);
  FrameEncoder enc(bm.net, sink, 0, {});
  enc.encode_to(3);
  EXPECT_EQ(enc.stats().frames_encoded, 4u);
  enc.encode_to(3);  // idempotent
  enc.encode_to(1);  // never re-encodes lower depths
  EXPECT_EQ(enc.stats().frames_encoded, 4u);
  enc.encode_to(5);
  EXPECT_EQ(enc.stats().frames_encoded, 6u);
}

// ---- simplification layer ---------------------------------------------------

TEST(EncoderSimplifyTest, ShrinksEveryQuickSuiteInstance) {
  for (const auto& bm : model::quick_suite()) {
    SCOPED_TRACE(bm.name);
    const int k = std::min(bm.suggested_bound, 6);
    const BmcInstance plain =
        encode_full(bm.net, 0, k, opts_for(BadMode::Last, false));
    const BmcInstance simp =
        encode_full(bm.net, 0, k, opts_for(BadMode::Last, true));
    EXPECT_LT(simp.num_vars(), plain.num_vars());
    EXPECT_LT(simp.num_clauses(), plain.num_clauses());
    // The counters balance: emitted + removed = the unsimplified count
    // (the property clause is outside the encoder's count).
    EXPECT_EQ(simp.encode.vars_emitted + simp.encode.vars_removed,
              plain.encode.vars_emitted);
    EXPECT_EQ(simp.encode.clauses_emitted + simp.encode.clauses_removed,
              plain.encode.clauses_emitted);
  }
}

TEST(EncoderSimplifyTest, PreservesVerdictsAcrossDepths) {
  for (const auto& bm : model::quick_suite()) {
    SCOPED_TRACE(bm.name);
    const int bound = std::min(bm.suggested_bound, 8);
    for (const BadMode mode : {BadMode::Last, BadMode::Any}) {
      for (int k = 0; k <= bound; ++k) {
        const auto plain =
            solve_instance(encode_full(bm.net, 0, k, opts_for(mode, false)));
        const auto simp =
            solve_instance(encode_full(bm.net, 0, k, opts_for(mode, true)));
        EXPECT_EQ(plain, simp) << "mode "
                               << (mode == BadMode::Last ? "last" : "any")
                               << " depth " << k;
      }
    }
  }
}

TEST(EncoderSimplifyTest, ConstantPropagationSolvesPureCounter) {
  // A counter with no inputs is fully determined by its initial state:
  // constant propagation folds the entire unrolling away and the bad
  // literal itself becomes constant.
  const auto bm = model::counter_reach(5, 9, false);
  const BmcInstance inst =
      encode_full(bm.net, 0, 9, opts_for(BadMode::Last, true));
  // Only the auxiliary constant variable remains.
  EXPECT_EQ(inst.num_vars(), 1u);
  EXPECT_EQ(solve_instance(inst), sat::Result::Sat);
}

TEST(EncoderSimplifyTest, StructuralHashingMergesDuplicatedLogic) {
  // Two identical input-fed gate trees feeding the property collapse to
  // one tree per frame under structural hashing of the unrolled AIG.
  Netlist net;
  Builder b(net);
  const Signal a = net.add_input("a");
  const Signal c = net.add_input("c");
  const Signal l = net.add_latch(sat::l_False, "l");
  const Signal g1 = net.add_and(a, c);
  // The netlist's own strashing would merge an identical add_and(a, c),
  // so build a structurally distinct node that only unrolls equal: latch
  // XOR-style duplicate via two gates that fold once the latch is
  // constant 0 at frame 0.
  const Signal g2 = net.add_and(net.add_and(a, c), !l);
  net.set_next(l, l);  // l stays 0 forever → g2 ≡ g1 in every frame
  net.add_bad(net.add_and(g1, g2), "both");

  const BmcInstance plain =
      encode_full(net, 0, 3, opts_for(BadMode::Last, false));
  const BmcInstance simp = encode_full(net, 0, 3, opts_for(BadMode::Last, true));
  EXPECT_LT(simp.num_vars(), plain.num_vars());
  EXPECT_EQ(solve_instance(plain), solve_instance(simp));
}

TEST(EncoderSimplifyTest, TracesStillExtractAndValidate) {
  for (const auto& bm : model::quick_suite()) {
    if (!bm.expect_fail) continue;
    SCOPED_TRACE(bm.name);
    const BmcInstance inst = encode_full(bm.net, 0, bm.expect_depth,
                                         opts_for(BadMode::Last, true));
    sat::Solver s;
    load(s, inst.cnf);
    ASSERT_EQ(s.solve(), sat::Result::Sat);
    const Trace trace = extract_trace(bm.net, inst, s);
    EXPECT_TRUE(validate_trace(bm.net, trace));
  }
}

// ---- error handling ---------------------------------------------------------

TEST(EncoderTest, RejectsMissingProperty) {
  Netlist net;
  net.add_latch(sat::l_False);
  BmcInstance inst;
  InstanceSink sink(inst);
  EXPECT_THROW(FrameEncoder(net, sink, 0), std::invalid_argument);
}

TEST(EncoderTest, RejectsNegativeDepth) {
  const auto bm = model::counter_reach(3, 2, false);
  EXPECT_THROW(encode_full(bm.net, 0, -1), std::invalid_argument);
}

}  // namespace
}  // namespace refbmc::bmc
