// Incremental-session fast path (PR 8): activation-aware delta
// preprocessing, the assumption savepoint, and frame retirement.  The
// engine-level matrix pins verdict/depth equivalence with scratch mode
// across every knob combination; the bit-identity test pins the
// contract that both knobs off IS the PR 7 pipeline, counter for
// counter; the witness test drives the shared tape directly and proves
// a counter-example model of the delta-simplified formula recompletes
// over variables BVE eliminated at earlier depths.
#include <gtest/gtest.h>

#include <vector>

#include "bmc/encoder.hpp"
#include "bmc/engine.hpp"
#include "bmc/preprocess.hpp"
#include "bmc/tape.hpp"
#include "bmc/trace.hpp"
#include "model/benchgen.hpp"
#include "sat/solver.hpp"

namespace refbmc::bmc {
namespace {

EngineConfig incremental_config(const model::Benchmark& bm, bool preprocess,
                                bool savepoint) {
  EngineConfig cfg;
  cfg.policy = OrderingPolicy::Dynamic;
  cfg.max_depth = bm.suggested_bound;
  cfg.incremental = true;
  cfg.preprocess.enabled = preprocess;
  cfg.solver.assumption_savepoint = savepoint;
  if (preprocess) cfg.solver.inprocess.vivify_interval = 4;
  return cfg;
}

TEST(IncrementalPreprocessTest, MatrixMatchesScratchOnQuickSuite) {
  // incremental × preprocess × savepoint, all four combinations per
  // model, against the scratch-mode reference: same verdict, same cex
  // depth, same last completed depth, and every trace replays on the
  // concrete simulator.
  for (const auto& bm : model::quick_suite()) {
    SCOPED_TRACE(bm.name);
    EngineConfig scratch;
    scratch.policy = OrderingPolicy::Dynamic;
    scratch.max_depth = bm.suggested_bound;
    const BmcResult a = BmcEngine(bm.net, scratch).run();
    for (const bool preprocess : {false, true}) {
      for (const bool savepoint : {false, true}) {
        SCOPED_TRACE(testing::Message() << "preprocess=" << preprocess
                                        << " savepoint=" << savepoint);
        const BmcResult b =
            BmcEngine(bm.net, incremental_config(bm, preprocess, savepoint))
                .run();
        EXPECT_EQ(a.status, b.status);
        EXPECT_EQ(a.counterexample_depth, b.counterexample_depth);
        EXPECT_EQ(a.last_completed_depth, b.last_completed_depth);
        if (b.counterexample) {
          EXPECT_TRUE(validate_trace(bm.net, *b.counterexample));
        }
      }
    }
  }
}

TEST(IncrementalPreprocessTest, KnobsOffIsBitIdenticalToLegacyIncremental) {
  // `--preprocess off` + `--assumption-savepoint off` must reproduce the
  // PR 7 incremental pipeline counter for counter.  Both knobs default
  // off at the EngineConfig level, so the default-config run IS the
  // legacy path; the explicit-off run must match it per depth.
  for (const auto& bm :
       {model::fifo_safe(3), model::counter_reach(3, 2, false)}) {
    SCOPED_TRACE(bm.name);
    EngineConfig legacy;
    legacy.policy = OrderingPolicy::Dynamic;
    legacy.max_depth = bm.suggested_bound;
    legacy.incremental = true;
    EngineConfig off = incremental_config(bm, false, false);
    off.solver.inprocess.vivify_interval =
        legacy.solver.inprocess.vivify_interval;

    const BmcResult a = BmcEngine(bm.net, legacy).run();
    const BmcResult b = BmcEngine(bm.net, off).run();
    ASSERT_EQ(a.per_depth.size(), b.per_depth.size());
    for (std::size_t i = 0; i < a.per_depth.size(); ++i) {
      EXPECT_EQ(a.per_depth[i].decisions, b.per_depth[i].decisions) << i;
      EXPECT_EQ(a.per_depth[i].propagations, b.per_depth[i].propagations)
          << i;
      EXPECT_EQ(a.per_depth[i].conflicts, b.per_depth[i].conflicts) << i;
      // The fast-path counters must read zero with the knobs off.
      EXPECT_EQ(b.per_depth[i].savepoint_hits, 0u) << i;
      EXPECT_EQ(b.per_depth[i].savepoint_misses, 0u) << i;
      EXPECT_EQ(b.per_depth[i].retired_frame_clauses, 0u) << i;
    }
  }
}

TEST(IncrementalPreprocessTest, SavepointAndRetirementStatsFlow) {
  // On a passing property the session's assumption lists share all but
  // the newest guard level, so deep enough runs must record prefix
  // resumes — and the batched retirement flush must free the dead
  // guards' clauses out of the arena.
  const auto bm = model::fifo_safe(3);
  const BmcResult r =
      BmcEngine(bm.net, incremental_config(bm, true, true)).run();
  ASSERT_EQ(r.status, BmcResult::Status::BoundReached);
  std::uint64_t hits = 0, misses = 0, reused = 0, retired = 0;
  for (const auto& d : r.per_depth) {
    hits += d.savepoint_hits;
    misses += d.savepoint_misses;
    reused += d.savepoint_levels_reused;
    retired += d.retired_frame_clauses;
  }
  EXPECT_EQ(hits + misses, r.per_depth.size());  // one solve per depth
  EXPECT_GT(hits, 0u);
  EXPECT_GE(reused, hits);  // every hit reuses at least one level
  EXPECT_GT(retired, 0u);   // at least one batch flushed
}

TEST(IncrementalPreprocessTest, DeltaPreprocessStatsReported) {
  // With preprocessing on, incremental runs report the per-depth DELTA
  // pass counters (PR 7 zeroed these in incremental mode).
  const auto bm = model::counter_reach(4, 6, true);
  const BmcResult r =
      BmcEngine(bm.net, incremental_config(bm, true, true)).run();
  ASSERT_EQ(r.status, BmcResult::Status::CounterexampleFound);
  std::uint64_t eliminated = 0;
  for (const auto& d : r.per_depth) eliminated += d.vars_eliminated;
  EXPECT_GT(eliminated, 0u);
}

TEST(IncrementalPreprocessTest, WitnessRecompletesAcrossDepthDeltas) {
  // A counter-example found at depth k on the delta-simplified formula
  // must extend — through the cumulative witness stack — to a model of
  // the ORIGINAL tape formula, including variables BVE eliminated at
  // depths < k.  Drives SharedTape directly: one identity consumer
  // collects the unsimplified clauses, a solver consumer replays the
  // simplified deltas.
  struct CollectSink final : public ClauseSink {
    std::vector<std::vector<sat::Lit>> clauses;
    sat::Var next = 0;
    sat::Var add_var(const VarOrigin&) override { return next++; }
    void add_clause(std::span<const sat::Lit> lits) override {
      clauses.emplace_back(lits.begin(), lits.end());
    }
  };

  const auto bm = model::counter_reach(4, 6, true);
  ASSERT_TRUE(bm.expect_fail);
  const int k = bm.expect_depth;
  ASSERT_GE(k, 2);  // need eliminations at depths strictly below k

  PreprocessOptions popt;
  popt.enabled = true;
  SharedTape tape(bm.net, 0, {}, popt);

  // Identity consumer: tape variables are created densely from 0, so the
  // collected clauses are in tape variable space verbatim.
  ClauseTape::Cursor id_cursor;
  CollectSink original;
  tape.replay_to(k, id_cursor, original);

  // Simplified consumer: replay the per-depth deltas 0..k.
  sat::Solver solver;
  std::vector<VarOrigin> origin;
  SolverSink sink(solver, origin);
  ClauseTape::Cursor cursor;
  for (int f = 0; f <= k; ++f) tape.replay_simplified_delta(f, cursor, sink);

  const VarRemapper remap = tape.incremental_remapper_at(k);
  ASSERT_GT(remap.num_eliminated(), 0u);  // the test must not be vacuous
  ASSERT_EQ(solver.solve({cursor.translate(tape.property(k))}),
            sat::Result::Sat);

  // Lift the solver model back to tape space (eliminated slots undef),
  // then let the witness stack fill in the eliminated variables.
  std::vector<sat::lbool> values(
      static_cast<std::size_t>(remap.num_vars()), sat::l_Undef);
  for (std::size_t t = 0; t < cursor.var_map.size(); ++t) {
    if (cursor.var_map[t] == sat::kVarUndef) continue;
    values[t] = solver.model_value(cursor.var_map[t]);
  }
  remap.complete_model(values);

  for (const auto& clause : original.clauses) {
    bool satisfied = false;
    for (const sat::Lit l : clause) {
      const sat::lbool v = values[static_cast<std::size_t>(l.var())];
      if ((v ^ l.negated()) == sat::l_True) {
        satisfied = true;
        break;
      }
    }
    EXPECT_TRUE(satisfied);
    if (!satisfied) break;  // one counter-example clause is enough
  }
}

}  // namespace
}  // namespace refbmc::bmc
