// Per-depth memory ceilings, engine to service.
//
//   * a tiny ceiling turns into a clean Status::ResourceLimit with
//     mem_limit_hit set and the footprint stats populated — never a
//     crash or a wrong verdict;
//   * ceiling 0 is bit-identical to an unbounded run (accounting is
//     always on, so the ceiling check is the only branch that differs);
//   * the per-depth DepthStats carry the peak / arena / tape bytes the
//     bench layer serialises;
//   * a JobServer classifies a ceiling breach as the typed
//     MemLimitExceeded state, distinct from deadline eviction.
#include <cstdint>

#include <gtest/gtest.h>

#include "bmc/engine.hpp"
#include "model/benchgen.hpp"
#include "service/job_server.hpp"

namespace refbmc::bmc {
namespace {

TEST(MemCeilingTest, TinyCeilingStopsCleanlyWithPopulatedStats) {
  // 16 KiB cannot hold even the first frames' clauses, so the run must
  // end at an early checkpoint — with the accounting that proves why.
  const model::Benchmark bm = model::lfsr_safe(10);
  EngineConfig cfg;
  cfg.max_depth = 30;
  cfg.mem_ceiling_bytes = 16 * 1024;
  BmcEngine engine(bm.net, cfg);
  const BmcResult res = engine.run();
  EXPECT_EQ(res.status, BmcResult::Status::ResourceLimit);
  EXPECT_TRUE(res.mem_limit_hit);
  EXPECT_GT(res.peak_mem_bytes, cfg.mem_ceiling_bytes);
  // Whatever depths completed before the breach carry their footprint.
  for (const auto& d : res.per_depth) {
    EXPECT_GT(d.peak_bytes, 0u) << "depth " << d.depth;
    EXPECT_GT(d.tape_bytes, 0u) << "depth " << d.depth;
  }
}

TEST(MemCeilingTest, ZeroCeilingIsBitIdenticalToUnlimited) {
  // Accounting always runs; only the breach branch is gated.  A zero
  // ceiling and a never-reachable one must therefore produce the same
  // search, decision for decision.
  const model::Benchmark bm = model::needle(6, 6, 40, 50);
  EngineConfig base;
  base.max_depth = bm.suggested_bound;

  EngineConfig zero = base;
  zero.mem_ceiling_bytes = 0;
  EngineConfig huge = base;
  huge.mem_ceiling_bytes = 1ull << 40;

  const BmcResult a = BmcEngine(bm.net, zero).run();
  const BmcResult b = BmcEngine(bm.net, huge).run();
  EXPECT_FALSE(a.mem_limit_hit);
  EXPECT_FALSE(b.mem_limit_hit);
  ASSERT_EQ(a.status, b.status);
  ASSERT_EQ(a.per_depth.size(), b.per_depth.size());
  for (std::size_t k = 0; k < a.per_depth.size(); ++k) {
    EXPECT_EQ(a.per_depth[k].decisions, b.per_depth[k].decisions)
        << "depth " << k;
    EXPECT_EQ(a.per_depth[k].propagations, b.per_depth[k].propagations)
        << "depth " << k;
    EXPECT_EQ(a.per_depth[k].conflicts, b.per_depth[k].conflicts)
        << "depth " << k;
    // Identical formula state implies identical footprint accounting.
    EXPECT_EQ(a.per_depth[k].arena_bytes, b.per_depth[k].arena_bytes)
        << "depth " << k;
    EXPECT_EQ(a.per_depth[k].tape_bytes, b.per_depth[k].tape_bytes)
        << "depth " << k;
  }
  EXPECT_EQ(a.peak_mem_bytes, b.peak_mem_bytes);
  EXPECT_GT(a.peak_mem_bytes, 0u);
}

TEST(MemCeilingTest, UnboundedRunStillReportsFootprint) {
  // No ceiling at all: the per-depth series must still carry the bytes
  // (the bench harness serialises them unconditionally).
  const model::Benchmark bm = model::gray_safe(5);
  EngineConfig cfg;
  cfg.max_depth = 8;
  const BmcResult res = BmcEngine(bm.net, cfg).run();
  ASSERT_EQ(res.status, BmcResult::Status::BoundReached);
  ASSERT_FALSE(res.per_depth.empty());
  for (const auto& d : res.per_depth) {
    EXPECT_GT(d.peak_bytes, 0u);
    EXPECT_GT(d.arena_bytes, 0u);
    EXPECT_GT(d.tape_bytes, 0u);
  }
  EXPECT_FALSE(res.mem_limit_hit);
}

TEST(MemCeilingTest, ServerClassifiesBreachAsMemLimitExceeded) {
  // The serving layer's typed rejection: a ceiling breach must surface
  // as MemLimitExceeded (resubmit with more memory), not as a deadline
  // eviction (resubmit with more time).
  // A safe model whose INCREMENTAL solve accumulates ~3 MB of arena +
  // watcher heap by depth 40 (scratch solvers release per depth and
  // would stay under the MiB-granularity ceiling).
  const model::Benchmark bm =
      model::with_distractor(model::lfsr_safe(12), 48, 7);
  api::CheckRequest req;
  req.net = bm.net;
  req.name = "tiny-ceiling";
  req.options.max_depth(40).threads(2).incremental(true).mem_ceiling_mb(1);

  service::JobServer server;
  const auto outcome = server.submit(std::move(req));
  ASSERT_TRUE(outcome.accepted);
  const auto status = server.wait(outcome.id, /*timeout_sec=*/120.0);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->state, service::JobState::MemLimitExceeded);
  EXPECT_TRUE(status->result.mem_limit_hit);
  EXPECT_GT(status->result.peak_mem_bytes, 1024u * 1024u);
  EXPECT_EQ(server.stats().mem_limit_stops, 1u);
}

}  // namespace
}  // namespace refbmc::bmc
