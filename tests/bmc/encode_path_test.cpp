// encode_path semantics: the path-only instance used by k-induction —
// optional init, exposed per-frame bad literals and latch literals.
#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "bmc/encoder.hpp"
#include "model/benchgen.hpp"
#include "model/builder.hpp"
#include "sat/solver.hpp"

namespace refbmc::bmc {
namespace {

using test::load;

EncoderOptions path_opts(bool constrain_init, bool simplify = false) {
  EncoderOptions o;
  o.constrain_init = constrain_init;
  o.simplify = simplify;
  return o;
}

TEST(EncodePathTest, NoPropertyClauseMeansSat) {
  // The bare path is always satisfiable (any execution is a model).
  const auto bm = model::counter_safe(4, 6, 10);
  for (const bool init : {true, false}) {
    for (const bool simplify : {false, true}) {
      const BmcInstance inst =
          encode_path(bm.net, 0, 3, path_opts(init, simplify));
      sat::Solver s;
      load(s, inst.cnf);
      EXPECT_EQ(s.solve(), sat::Result::Sat) << init << simplify;
    }
  }
}

TEST(EncodePathTest, BadFramesMatchDepth) {
  const auto bm = model::fifo_safe(3);
  const BmcInstance inst = encode_path(bm.net, 0, 5, path_opts(true));
  EXPECT_EQ(inst.bad_frames.size(), 6u);
  EXPECT_EQ(inst.latch_frames.size(), 6u);
  for (const auto& frame : inst.latch_frames)
    EXPECT_EQ(frame.size(), bm.net.num_latches());
}

TEST(EncodePathTest, InitConstrainsFrameZero) {
  // With init: counter at frame 0 is 0, so bad at frame 0 (cnt==0) holds
  // in every model.  Without init: frame 0 is free, so ¬bad is possible.
  model::Netlist net;
  model::Builder b(net);
  const model::Word cnt = b.latch_word("c", 3, 0);
  b.set_next_word(cnt, b.increment(cnt));
  net.add_bad(b.eq_const(cnt, 0), "at_zero");

  for (const bool simplify : {false, true}) {
    {
      BmcInstance with_init = encode_path(net, 0, 0, path_opts(true, simplify));
      with_init.cnf.add_clause({~with_init.bad_frames[0]});
      sat::Solver s;
      load(s, with_init.cnf);
      EXPECT_EQ(s.solve(), sat::Result::Unsat) << simplify;
    }
    {
      BmcInstance free = encode_path(net, 0, 0, path_opts(false, simplify));
      free.cnf.add_clause({~free.bad_frames[0]});
      sat::Solver s;
      load(s, free.cnf);
      EXPECT_EQ(s.solve(), sat::Result::Sat) << simplify;
    }
  }
}

TEST(EncodePathTest, TransitionsStillEnforcedWithoutInit) {
  // Free frame 0, but frames remain T-coupled: cnt@1 = cnt@0 + 1, so
  // asserting cnt@0 == 2 ∧ cnt@1 == 5 is UNSAT.
  model::Netlist net;
  model::Builder b(net);
  const model::Word cnt = b.latch_word("c", 3, 0);
  b.set_next_word(cnt, b.increment(cnt));
  net.add_bad(b.eq_const(cnt, 2), "at2");  // bad_frames = (cnt == 2)
  for (const bool simplify : {false, true}) {
    BmcInstance inst = encode_path(net, 0, 1, path_opts(false, simplify));
    inst.cnf.add_clause({inst.bad_frames[0]});  // cnt@0 == 2
    // cnt@1 == 5 via latch literals: 5 = 101₂.
    const auto& l1 = inst.latch_frames[1];
    ASSERT_EQ(l1.size(), 3u);
    inst.cnf.add_clause({l1[0]});
    inst.cnf.add_clause({~l1[1]});
    inst.cnf.add_clause({l1[2]});
    sat::Solver s;
    load(s, inst.cnf);
    EXPECT_EQ(s.solve(), sat::Result::Unsat) << simplify;
    // And cnt@1 == 3 is fine.
    BmcInstance ok = encode_path(net, 0, 1, path_opts(false, simplify));
    ok.cnf.add_clause({ok.bad_frames[0]});
    const auto& m1 = ok.latch_frames[1];
    ok.cnf.add_clause({m1[0]});
    ok.cnf.add_clause({m1[1]});
    ok.cnf.add_clause({~m1[2]});
    sat::Solver s2;
    load(s2, ok.cnf);
    EXPECT_EQ(s2.solve(), sat::Result::Sat) << simplify;
  }
}

TEST(EncodePathTest, FullEqualsPathPlusProperty) {
  // encode_full(k) in Last mode = encode_path(k, init) + unit bad@k.
  const auto bm = model::counter_reach(4, 6, false);
  for (int k = 4; k <= 7; ++k) {
    BmcInstance path = encode_path(bm.net, 0, k, path_opts(true));
    path.cnf.add_clause({path.bad_frames[static_cast<std::size_t>(k)]});
    sat::Solver a, b2;
    load(a, path.cnf);
    EncoderOptions full_opts;
    full_opts.simplify = false;
    const BmcInstance full = encode_full(bm.net, 0, k, full_opts);
    load(b2, full.cnf);
    EXPECT_EQ(a.solve(), b2.solve()) << k;
  }
}

}  // namespace
}  // namespace refbmc::bmc
