// Cooperative cancellation through the BMC engine: a cancelled run()
// reports Status::ResourceLimit and per_depth stats that are internally
// consistent (contiguous depths, UNSAT prefix, at most one trailing
// Unknown instance).
#include <atomic>
#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "bmc/engine.hpp"
#include "model/benchgen.hpp"

namespace refbmc::bmc {
namespace {

void expect_consistent_cancelled(const BmcResult& result, int start_depth) {
  EXPECT_EQ(result.status, BmcResult::Status::ResourceLimit);
  EXPECT_FALSE(result.counterexample.has_value());
  for (std::size_t i = 0; i < result.per_depth.size(); ++i) {
    const DepthStats& d = result.per_depth[i];
    EXPECT_EQ(d.depth, start_depth + static_cast<int>(i));
    // A cancelled run is an UNSAT prefix, optionally ending in the one
    // instance the cancellation interrupted.
    if (i + 1 < result.per_depth.size()) {
      EXPECT_EQ(d.result, sat::Result::Unsat);
    } else {
      EXPECT_TRUE(d.result == sat::Result::Unsat ||
                  d.result == sat::Result::Unknown);
    }
  }
  int completed = -1;
  for (const auto& d : result.per_depth)
    if (d.result == sat::Result::Unsat) completed = d.depth;
  EXPECT_EQ(result.last_completed_depth, completed);
}

TEST(EngineCancelTest, PresetStopReportsResourceLimit) {
  const model::Benchmark bm = model::counter_safe(8, 200, 255);
  std::atomic<bool> stop{true};
  EngineConfig cfg;
  cfg.max_depth = 10;
  cfg.stop = &stop;
  BmcEngine engine(bm.net, cfg);
  const BmcResult result = engine.run();
  EXPECT_EQ(result.status, BmcResult::Status::ResourceLimit);
  EXPECT_TRUE(result.per_depth.empty());  // never reached a depth
  EXPECT_EQ(result.last_completed_depth, -1);
  EXPECT_EQ(result.total_decisions(), 0u);
}

TEST(EngineCancelTest, PresetStopInIncrementalMode) {
  const model::Benchmark bm = model::counter_safe(8, 200, 255);
  std::atomic<bool> stop{true};
  EngineConfig cfg;
  cfg.max_depth = 10;
  cfg.incremental = true;
  cfg.stop = &stop;
  BmcEngine engine(bm.net, cfg);
  const BmcResult result = engine.run();
  EXPECT_EQ(result.status, BmcResult::Status::ResourceLimit);
  EXPECT_TRUE(result.per_depth.empty());
  EXPECT_EQ(result.last_completed_depth, -1);
}

TEST(EngineCancelTest, MidRunCancellationKeepsStatsConsistent) {
  // A deep passing instance with distractor logic: plenty of depths to be
  // interrupted in.
  model::Benchmark bm = model::counter_safe(12, 3000, 4095);
  bm = model::with_distractor(std::move(bm), 16, 11);
  std::atomic<bool> stop{false};
  EngineConfig cfg;
  cfg.max_depth = 100000;  // would run far longer than the cancel window
  cfg.stop = &stop;
  BmcEngine engine(bm.net, cfg);

  std::thread canceller([&stop] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    stop.store(true);
  });
  const BmcResult result = engine.run();
  canceller.join();
  expect_consistent_cancelled(result, cfg.start_depth);
}

TEST(EngineCancelTest, MidRunCancellationIncremental) {
  model::Benchmark bm = model::counter_safe(12, 3000, 4095);
  bm = model::with_distractor(std::move(bm), 16, 11);
  std::atomic<bool> stop{false};
  EngineConfig cfg;
  cfg.max_depth = 100000;
  cfg.incremental = true;
  cfg.stop = &stop;
  BmcEngine engine(bm.net, cfg);

  std::thread canceller([&stop] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    stop.store(true);
  });
  const BmcResult result = engine.run();
  canceller.join();
  expect_consistent_cancelled(result, cfg.start_depth);
}

TEST(EngineCancelTest, UncancelledRunIsUnaffectedByTheHook) {
  const model::Benchmark bm = model::shift_all_ones(4);  // fails at depth 4
  std::atomic<bool> stop{false};
  EngineConfig cfg;
  cfg.max_depth = 10;
  cfg.stop = &stop;
  BmcEngine engine(bm.net, cfg);
  const BmcResult result = engine.run();
  EXPECT_EQ(result.status, BmcResult::Status::CounterexampleFound);
  EXPECT_EQ(result.counterexample_depth, 4);
}

}  // namespace
}  // namespace refbmc::bmc
