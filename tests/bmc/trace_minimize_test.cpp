#include <gtest/gtest.h>

#include "bmc/engine.hpp"
#include "bmc/trace.hpp"
#include "model/benchgen.hpp"

namespace refbmc::bmc {
namespace {

Trace find_trace(const model::Benchmark& bm) {
  const BmcResult r =
      check_invariant(bm.net, bm.suggested_bound, OrderingPolicy::Dynamic);
  EXPECT_EQ(r.status, BmcResult::Status::CounterexampleFound);
  return *r.counterexample;
}

std::size_t ones(const Trace& t) {
  std::size_t n = 0;
  for (const auto& frame : t.inputs)
    for (const bool b : frame) n += b ? 1 : 0;
  for (const bool b : t.initial_latches) n += b ? 1 : 0;
  return n;
}

TEST(TraceMinimizeTest, ResultStillValidates) {
  for (const auto& bm :
       {model::fifo_buggy(3), model::arbiter_buggy(4),
        model::with_distractor(model::fifo_buggy(3), 8, 3)}) {
    SCOPED_TRACE(bm.name);
    const Trace original = find_trace(bm);
    const Trace minimized = minimize_trace(bm.net, original);
    EXPECT_TRUE(validate_trace(bm.net, minimized));
    EXPECT_LE(ones(minimized), ones(original));
  }
}

TEST(TraceMinimizeTest, DistractorInputsZeroedOut) {
  // The distractor guard needs exactly one input bit at the final frame;
  // everything else in the mixing network is removable.
  const auto bm = model::with_distractor(model::fifo_buggy(3), 8, 3);
  const Trace minimized = minimize_trace(bm.net, find_trace(bm));
  // Count ones on the distractor inputs (named dmix0/dmix1); they serve
  // no purpose in the violation.
  const auto& ins = bm.net.inputs();
  std::size_t distractor_ones = 0;
  for (const auto& frame : minimized.inputs)
    for (std::size_t i = 0; i < ins.size(); ++i)
      if (frame[i] && bm.net.name(ins[i]).rfind("dmix", 0) == 0)
        ++distractor_ones;
  EXPECT_EQ(distractor_ones, 0u);
}

TEST(TraceMinimizeTest, EssentialBitsSurvive) {
  // The buggy FIFO overflow needs `push` high on every frame but the
  // last; minimization must keep those.
  const auto bm = model::fifo_buggy(3);
  const Trace minimized = minimize_trace(bm.net, find_trace(bm));
  const auto& ins = bm.net.inputs();
  std::size_t push_idx = 0;
  for (std::size_t i = 0; i < ins.size(); ++i)
    if (bm.net.name(ins[i]) == "push") push_idx = i;
  int push_count = 0;
  for (const auto& frame : minimized.inputs)
    push_count += frame[push_idx] ? 1 : 0;
  EXPECT_GE(push_count, bm.expect_depth);  // cap+1 pushes needed
}

TEST(TraceMinimizeTest, FreeInitialLatchesCleared) {
  // Model with an irrelevant uninitialised latch: its value must be
  // minimized to 0.
  model::Netlist net;
  const model::Signal junk = net.add_latch(sat::l_Undef, "junk");
  net.set_next(junk, junk);
  const model::Signal trigger = net.add_latch(sat::l_Undef, "trigger");
  net.set_next(trigger, trigger);
  net.add_bad(trigger, "trigger_high");
  Trace t;
  t.depth = 0;
  t.inputs = {{}};
  t.initial_latches = {true, true};  // junk=1 (removable), trigger=1 (not)
  ASSERT_TRUE(validate_trace(net, t));
  const Trace m = minimize_trace(net, t);
  EXPECT_FALSE(m.initial_latches[0]);
  EXPECT_TRUE(m.initial_latches[1]);
}

TEST(TraceMinimizeTest, InvalidTraceRejected) {
  const auto bm = model::fifo_buggy(3);
  Trace bogus;
  bogus.depth = 1;
  bogus.inputs = {{false, false}, {false, false}};
  bogus.initial_latches = std::vector<bool>(bm.net.num_latches(), false);
  EXPECT_THROW(minimize_trace(bm.net, bogus), std::invalid_argument);
}

}  // namespace
}  // namespace refbmc::bmc
