// Tape preprocessing (PR 7): the clause-level simplification pass —
// subsumption, self-subsuming resolution, pure literals, bounded
// variable elimination, unit propagation — plus the remapping contract
// that keeps trace extraction and the sharing seams sound: variable
// numbering preserved, frozen variables protected, witness completion
// extending simplified models back to the original formula, and
// `preprocess off` leaving the engine bit-identical.
#include "bmc/preprocess.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "bmc/engine.hpp"
#include "bmc/tape.hpp"
#include "model/benchgen.hpp"
#include "sat/solver.hpp"

namespace refbmc::bmc {
namespace {

using Clauses = std::vector<std::vector<sat::Lit>>;

sat::Lit pos(int v) { return sat::Lit::make(static_cast<sat::Var>(v)); }
sat::Lit neg(int v) {
  return sat::Lit::make(static_cast<sat::Var>(v), true);
}

SimplifyResult simplify(int num_vars, const Clauses& clauses,
                        std::vector<char> frozen = {},
                        PreprocessOptions opts = {}) {
  opts.enabled = true;
  if (frozen.empty()) frozen.assign(static_cast<std::size_t>(num_vars), 0);
  return TapePreprocessor(opts).run(num_vars, clauses, frozen);
}

std::vector<char> all_frozen(int num_vars) {
  return std::vector<char>(static_cast<std::size_t>(num_vars), 1);
}

bool contains_clause(const Clauses& clauses, std::vector<sat::Lit> want) {
  std::sort(want.begin(), want.end());
  for (auto c : clauses) {
    std::sort(c.begin(), c.end());
    if (c == want) return true;
  }
  return false;
}

TEST(PreprocessTest, SubsumptionRemovesSupersets) {
  // Freeze everything so only subsumption can act.
  const Clauses in{{pos(0), pos(1)},
                   {pos(0), pos(1), pos(2)},
                   {neg(0), pos(2)}};
  const SimplifyResult r = simplify(3, in, all_frozen(3));
  EXPECT_FALSE(r.fell_back);
  EXPECT_EQ(r.stats.clauses_subsumed, 1u);
  ASSERT_EQ(r.clauses.size(), 2u);
  EXPECT_TRUE(contains_clause(r.clauses, {pos(0), pos(1)}));
  EXPECT_TRUE(contains_clause(r.clauses, {neg(0), pos(2)}));
  // Nothing was eliminated — every variable survives.
  EXPECT_EQ(r.remap.num_eliminated(), 0u);
  for (int v = 0; v < 3; ++v)
    EXPECT_TRUE(r.remap.is_kept(static_cast<sat::Var>(v)));
}

TEST(PreprocessTest, SelfSubsumingResolutionStrengthens) {
  // (0 1) and (~0 1 2): resolving on 0 gives (1 2) ⊂ (~0 1 2), so the
  // longer clause drops ~0.
  const Clauses in{{pos(0), pos(1)}, {neg(0), pos(1), pos(2)}};
  const SimplifyResult r = simplify(3, in, all_frozen(3));
  EXPECT_GE(r.stats.lits_strengthened, 1u);
  ASSERT_EQ(r.clauses.size(), 2u);
  EXPECT_TRUE(contains_clause(r.clauses, {pos(0), pos(1)}));
  EXPECT_TRUE(contains_clause(r.clauses, {pos(1), pos(2)}));
}

TEST(PreprocessTest, UnitPropagationKeepsRootFacts) {
  // The unit 0 propagates 1 through (~0 1); both facts must survive as
  // unit clauses so the solver sees the same level-0 trail.
  const Clauses in{{pos(0)}, {neg(0), pos(1)}, {pos(1), pos(2)}};
  const SimplifyResult r = simplify(3, in, all_frozen(3));
  EXPECT_GE(r.stats.units_propagated, 2u);
  ASSERT_EQ(r.clauses.size(), 2u);
  EXPECT_TRUE(contains_clause(r.clauses, {pos(0)}));
  EXPECT_TRUE(contains_clause(r.clauses, {pos(1)}));
}

TEST(PreprocessTest, PureLiteralsAreEliminatedWithWitness) {
  // Var 0 occurs only positively and is not frozen: both holders go,
  // and the witness must be able to re-satisfy them.
  std::vector<char> frozen{0, 1, 1};
  const Clauses in{{pos(0), pos(1)}, {pos(0), pos(2)}};
  const SimplifyResult r = simplify(3, in, frozen);
  EXPECT_TRUE(r.clauses.empty());
  EXPECT_EQ(r.stats.pure_literals, 1u);
  EXPECT_EQ(r.stats.vars_eliminated, 1u);
  EXPECT_FALSE(r.remap.is_kept(0));

  // A model falsifying both kept variables forces the witness flip.
  std::vector<sat::lbool> values{sat::l_Undef, sat::l_False, sat::l_False};
  r.remap.complete_model(values);
  EXPECT_EQ(values[0], sat::l_True);
}

TEST(PreprocessTest, BoundedVariableEliminationResolves) {
  // Var 1 has one positive and two negative occurrences; the two
  // resolvents replace three clauses (NiVER accepts).
  std::vector<char> frozen{1, 0, 1, 1};
  const Clauses in{{pos(1), pos(0)}, {neg(1), pos(2)}, {neg(1), neg(3)}};
  const SimplifyResult r = simplify(4, in, frozen);
  EXPECT_EQ(r.stats.vars_eliminated, 1u);
  EXPECT_FALSE(r.remap.is_kept(1));
  ASSERT_EQ(r.clauses.size(), 2u);
  EXPECT_TRUE(contains_clause(r.clauses, {pos(0), pos(2)}));
  EXPECT_TRUE(contains_clause(r.clauses, {pos(0), neg(3)}));
}

TEST(PreprocessTest, FrozenVariablesAreNeverEliminated) {
  // Same formula, everything frozen: no elimination, no pure removal.
  const Clauses in{{pos(1), pos(0)}, {neg(1), pos(2)}, {neg(1), neg(3)}};
  const SimplifyResult r = simplify(4, in, all_frozen(4));
  EXPECT_EQ(r.stats.vars_eliminated, 0u);
  EXPECT_EQ(r.remap.num_eliminated(), 0u);
  EXPECT_EQ(r.clauses.size(), 3u);
}

TEST(PreprocessTest, ContradictionFallsBackToInput) {
  const Clauses in{{pos(0)}, {neg(0)}};
  const SimplifyResult r = simplify(1, in, all_frozen(1));
  EXPECT_TRUE(r.fell_back);
  EXPECT_EQ(r.clauses.size(), in.size());
  EXPECT_TRUE(r.remap.is_kept(0));
}

TEST(PreprocessTest, WitnessCompletionExtendsAnySimplifiedModel) {
  // A Tseitin AND-chain y_i = x_i & y_{i-1}: the y's are eliminable,
  // the x's are the frozen "inputs".  Any model of the simplified
  // formula must extend to a model of the original through the witness
  // stack — the exact contract extract_trace relies on.
  constexpr int kInputs = 5;
  Clauses in;
  // vars 0..4 = x inputs (frozen), 5..9 = y chain, var 10 = top unit.
  int y_prev = 0;  // y_0 alias: x_0
  int next = kInputs;
  for (int i = 1; i < kInputs; ++i) {
    const int y = next++;
    // y = x_i & y_prev
    in.push_back({neg(y), pos(i)});
    in.push_back({neg(y), pos(y_prev)});
    in.push_back({pos(y), neg(i), neg(y_prev)});
    y_prev = y;
  }
  in.push_back({pos(y_prev)});  // assert the conjunction
  const int num_vars = next;
  std::vector<char> frozen(static_cast<std::size_t>(num_vars), 0);
  for (int i = 0; i < kInputs; ++i) frozen[static_cast<std::size_t>(i)] = 1;

  const SimplifyResult r = simplify(num_vars, in, frozen);
  ASSERT_FALSE(r.fell_back);

  // Solve the simplified formula (numbering preserved, so it loads
  // directly into a solver with the same variable count).
  sat::Solver solver;
  while (solver.num_vars() < num_vars) solver.new_var();
  for (const auto& c : r.clauses) solver.add_clause(c);
  ASSERT_EQ(solver.solve(), sat::Result::Sat);

  std::vector<sat::lbool> values(static_cast<std::size_t>(num_vars),
                                 sat::l_Undef);
  for (int v = 0; v < num_vars; ++v)
    if (r.remap.is_kept(static_cast<sat::Var>(v)))
      values[static_cast<std::size_t>(v)] =
          solver.model_value(static_cast<sat::Var>(v));
  r.remap.complete_model(values);

  for (const auto& clause : in) {
    bool satisfied = false;
    for (const sat::Lit l : clause) {
      const sat::lbool v = values[static_cast<std::size_t>(l.var())];
      ASSERT_NE(v, sat::l_Undef);
      if ((v == sat::l_True) != l.negated()) satisfied = true;
    }
    EXPECT_TRUE(satisfied);
  }
}

// ---- SharedTape integration ----------------------------------------------

TEST(PreprocessTapeTest, SimplifiedReplayShrinksAndIsDeterministic) {
  const auto bm = model::fifo_safe(3);
  PreprocessOptions po;
  po.enabled = true;
  SharedTape tape(bm.net, 0, {}, po);
  const int k = 5;

  const std::size_t plain = tape.mark_at(k).clauses;
  const std::size_t simplified = tape.simplified_clauses_at(k);
  EXPECT_LT(simplified, plain);
  // The pass is cached: asking again returns the same formula.
  EXPECT_EQ(tape.simplified_clauses_at(k), simplified);
  const PreprocessStats ps = tape.preprocess_stats_at(k);
  EXPECT_GT(ps.vars_eliminated, 0u);
  EXPECT_EQ(ps.clauses_out, simplified);

  // Two fresh consumers replay identical streams: same var_map, same
  // solver shape — the shard-group "one formula, many solvers" premise.
  sat::Solver s1, s2;
  std::vector<VarOrigin> o1, o2;
  SolverSink sink1(s1, o1), sink2(s2, o2);
  ClauseTape::Cursor c1, c2;
  tape.replay_simplified_to(k, c1, sink1);
  tape.replay_simplified_to(k, c2, sink2);
  EXPECT_EQ(c1.var_map, c2.var_map);
  EXPECT_EQ(s1.num_original_clauses(), s2.num_original_clauses());
  // Round-trip guard: the replayed clause count is exactly what the
  // cache reports (the scratch session asserts the same invariant).
  EXPECT_EQ(s1.num_original_clauses(), simplified);

  // Eliminated variables occupy kVarUndef slots; kept ones translate.
  const VarRemapper remap = tape.remapper_at(k);
  ASSERT_EQ(c1.var_map.size(), static_cast<std::size_t>(remap.num_vars()));
  std::size_t undef_slots = 0;
  for (std::size_t v = 0; v < c1.var_map.size(); ++v) {
    const bool kept = remap.is_kept(static_cast<sat::Var>(v));
    EXPECT_EQ(c1.var_map[v] == sat::kVarUndef, !kept) << v;
    undef_slots += c1.var_map[v] == sat::kVarUndef;
  }
  EXPECT_EQ(undef_slots, remap.num_eliminated());
  // The property literal rides a frozen variable and must translate.
  EXPECT_NE(c1.translate(tape.property(k)).var(), sat::kVarUndef);
}

TEST(PreprocessTapeTest, SimplifiedFormulaKeepsVerdicts) {
  // Depth-by-depth SAT equivalence of plain vs simplified replay: the
  // simplified formula plus the property assertion must produce the
  // same verdict at every depth.
  const auto bm = model::counter_reach(4, 6, true);
  PreprocessOptions po;
  po.enabled = true;
  SharedTape plain_tape(bm.net, 0, {});
  SharedTape prep_tape(bm.net, 0, {}, po);
  for (int k = 0; k <= 6; ++k) {
    sat::Solver plain_solver, prep_solver;
    std::vector<VarOrigin> po1, po2;
    SolverSink sink1(plain_solver, po1), sink2(prep_solver, po2);
    ClauseTape::Cursor c1, c2;
    plain_tape.replay_to(k, c1, sink1);
    prep_tape.replay_simplified_to(k, c2, sink2);
    plain_solver.add_clause({c1.translate(plain_tape.property(k))});
    prep_solver.add_clause({c2.translate(prep_tape.property(k))});
    EXPECT_EQ(plain_solver.solve(), prep_solver.solve()) << "depth " << k;
  }
}

// ---- engine integration ---------------------------------------------------

struct Verdict {
  BmcResult::Status status;
  int cex_depth;
  int bad_frame;
};

Verdict run_engine(const model::Benchmark& bm, bool simplify,
                   bool preprocess, int max_depth) {
  EngineConfig cfg;
  cfg.policy = OrderingPolicy::Dynamic;
  cfg.max_depth = max_depth;
  cfg.simplify = simplify;
  cfg.preprocess.enabled = preprocess;
  if (preprocess) cfg.solver.inprocess.vivify_interval = 2;
  cfg.validate_counterexamples = true;  // asserts replay on the simulator
  BmcEngine engine(bm.net, cfg);
  const BmcResult r = engine.run();
  Verdict v;
  v.status = r.status;
  v.cex_depth = r.counterexample_depth;
  v.bad_frame =
      r.counterexample.has_value() ? r.counterexample->bad_frame : -1;
  return v;
}

TEST(PreprocessEngineTest, VerdictsAgreeAcrossSimplifyPreprocessMatrix) {
  const model::Benchmark models[] = {model::counter_reach(4, 9, true),
                                     model::fifo_safe(3)};
  const int max_depth = 10;
  for (const auto& bm : models) {
    const Verdict base = run_engine(bm, true, false, max_depth);
    for (const bool simplify : {false, true}) {
      for (const bool preprocess : {false, true}) {
        const Verdict v = run_engine(bm, simplify, preprocess, max_depth);
        EXPECT_EQ(v.status, base.status) << bm.name;
        EXPECT_EQ(v.cex_depth, base.cex_depth) << bm.name;
        EXPECT_EQ(v.bad_frame, base.bad_frame) << bm.name;
      }
    }
  }
}

TEST(PreprocessEngineTest, PreprocessStatsFlowIntoDepthStats) {
  const auto bm = model::fifo_safe(3);
  EngineConfig cfg;
  cfg.policy = OrderingPolicy::Dynamic;
  cfg.max_depth = 6;
  cfg.preprocess.enabled = true;
  BmcEngine engine(bm.net, cfg);
  const BmcResult r = engine.run();
  std::uint64_t eliminated = 0;
  for (const auto& d : r.per_depth) eliminated += d.vars_eliminated;
  EXPECT_GT(eliminated, 0u);
}

TEST(PreprocessEngineTest, OffIsBitIdenticalToDefault) {
  // `--preprocess off` must be the PR 6 pipeline bit for bit: identical
  // search trajectory (decisions, propagations, conflicts per depth),
  // not merely the same verdict.
  const auto bm = model::fifo_safe(3);
  EngineConfig base;
  base.policy = OrderingPolicy::Dynamic;
  base.max_depth = 6;
  EngineConfig off = base;
  off.preprocess.enabled = false;
  off.solver.inprocess.vivify_interval = 0;
  const BmcResult a = BmcEngine(bm.net, base).run();
  const BmcResult b = BmcEngine(bm.net, off).run();
  ASSERT_EQ(a.per_depth.size(), b.per_depth.size());
  for (std::size_t i = 0; i < a.per_depth.size(); ++i) {
    EXPECT_EQ(a.per_depth[i].decisions, b.per_depth[i].decisions) << i;
    EXPECT_EQ(a.per_depth[i].propagations, b.per_depth[i].propagations) << i;
    EXPECT_EQ(a.per_depth[i].conflicts, b.per_depth[i].conflicts) << i;
    EXPECT_EQ(a.per_depth[i].vars_eliminated, 0u);
    EXPECT_EQ(a.per_depth[i].vivify_rounds, 0u);
  }
}

TEST(PreprocessEngineTest, SharedTapeMustAgreeOnPreprocessConfig) {
  const auto bm = model::counter_reach(3, 2, true);
  PreprocessOptions po;
  po.enabled = true;
  SharedTape tape(bm.net, 0, {}, po);
  EngineConfig cfg;
  cfg.shared_tape = &tape;
  cfg.max_depth = 2;
  // Engine default has preprocessing off — mismatched consumers would
  // race on different formulas, so construction must refuse.
  EXPECT_THROW(BmcEngine(bm.net, cfg), std::invalid_argument);
  cfg.preprocess = po;
  EXPECT_NO_THROW(BmcEngine(bm.net, cfg));
}

}  // namespace
}  // namespace refbmc::bmc
