// k-induction: soundness against explicit-state reachability, proof
// closure on passing properties, counter-examples on failing ones, and
// the simple-path completeness mechanism.
#include "bmc/induction.hpp"

#include <gtest/gtest.h>

#include "mc/reach.hpp"
#include "model/benchgen.hpp"
#include "model/builder.hpp"
#include "util/rng.hpp"

namespace refbmc::bmc {
namespace {

TEST(InductionTest, ProvesOneInductiveInvariant) {
  // Latch stuck at 1 (self-loop): ¬latch is unreachable, 0-inductive.
  model::Netlist net;
  const model::Signal l = net.add_latch(sat::l_True);
  net.set_next(l, l);
  net.add_bad(!l, "went_low");
  const InductionResult r = prove_invariant(net, 5);
  EXPECT_EQ(r.status, InductionResult::Status::Proved);
  EXPECT_EQ(r.k, 0);
}

TEST(InductionTest, ProvesPetersonMutualExclusion) {
  const auto bm = model::peterson_safe();
  const InductionResult r = prove_invariant(bm.net, 20);
  EXPECT_EQ(r.status, InductionResult::Status::Proved);
  EXPECT_GE(r.k, 0);
}

TEST(InductionTest, ProvesModularCounterWithSimplePath) {
  // cnt counts 0..5 and wraps; bad = cnt == 10 needs the simple-path
  // argument (plain induction never closes: from cnt==9 — unreachable
  // but allowed by the step — bad follows).
  const auto bm = model::counter_safe(4, 6, 10);
  InductionConfig cfg;
  cfg.max_k = 20;
  cfg.simple_path = true;
  InductionProver prover(bm.net, cfg);
  const InductionResult r = prover.run();
  EXPECT_EQ(r.status, InductionResult::Status::Proved);
}

// A model whose step case stays satisfiable for every k unless states are
// forced distinct: reachable cycle {0..3}; a *disconnected* bad-free cycle
// {8..11} from which an input-controlled exit reaches the absorbing bad
// state 12.  Unrolled paths can circle {8..11} arbitrarily long, so plain
// induction never closes; simple-path constraints cap the circling.
model::Netlist unreachable_cycle_model() {
  model::Netlist net;
  model::Builder b(net);
  const model::Word c = b.latch_word("c", 4, 0);
  const model::Signal in = net.add_input("in");
  const auto at = [&](std::uint64_t v) { return b.eq_const(c, v); };
  const auto word = [&](std::uint64_t v) { return b.constant_word(v, 4); };
  model::Word next = c;  // default: hold (states 4..7, 13..15)
  next = b.mux_word(at(12), word(12), next);  // absorbing bad
  next = b.mux_word(at(11), word(8), next);   // cycle wrap
  next = b.mux_word(at(10), word(11), next);
  next = b.mux_word(b.and_(at(9), !in), word(10), next);
  next = b.mux_word(b.and_(at(9), in), word(12), next);  // exit to bad
  next = b.mux_word(at(8), word(9), next);
  next = b.mux_word(at(3), word(0), next);  // reachable cycle wrap
  next = b.mux_word(at(2), word(3), next);
  next = b.mux_word(at(1), word(2), next);
  next = b.mux_word(at(0), word(1), next);
  b.set_next_word(c, next);
  net.add_bad(b.eq_const(c, 12), "hit12");
  return net;
}

TEST(InductionTest, WithoutSimplePathOnlyReachesBound) {
  const model::Netlist net = unreachable_cycle_model();
  InductionConfig cfg;
  cfg.max_k = 8;
  cfg.simple_path = false;
  InductionProver prover(net, cfg);
  const InductionResult r = prover.run();
  // Not provable without distinctness; must NOT claim a proof (and there
  // is no counter-example either — the property holds).
  EXPECT_EQ(r.status, InductionResult::Status::BoundReached);
}

TEST(InductionTest, SimplePathClosesUnreachableCycle) {
  const model::Netlist net = unreachable_cycle_model();
  InductionConfig cfg;
  cfg.max_k = 12;
  cfg.simple_path = true;
  InductionProver prover(net, cfg);
  const InductionResult r = prover.run();
  EXPECT_EQ(r.status, InductionResult::Status::Proved);
  EXPECT_LE(r.k, 8);
}

TEST(InductionTest, FindsCounterexampleAtExactDepth) {
  const auto bm = model::fifo_buggy(3);
  const InductionResult r = prove_invariant(bm.net, 12);
  ASSERT_EQ(r.status, InductionResult::Status::CounterexampleFound);
  EXPECT_EQ(r.k, bm.expect_depth);
  ASSERT_TRUE(r.counterexample.has_value());
  EXPECT_TRUE(validate_trace(bm.net, *r.counterexample));
}

TEST(InductionTest, AgreesWithOracleOnRandomCircuits) {
  Rng rng(0xABCD);
  int proved = 0, refuted = 0;
  for (int iter = 0; iter < 40; ++iter) {
    // Small random circuits (reusing the oracle generator idea inline).
    model::Netlist net;
    model::Builder b(net);
    std::vector<model::Signal> pool;
    const int n_latches = rng.next_int(2, 4);
    pool.push_back(net.add_input());
    std::vector<model::Signal> latches;
    for (int i = 0; i < n_latches; ++i) {
      latches.push_back(net.add_latch(sat::lbool(rng.next_bool())));
      pool.push_back(latches.back());
    }
    const auto pick = [&]() {
      const model::Signal s = pool[static_cast<std::size_t>(
          rng.next_int(0, static_cast<int>(pool.size()) - 1))];
      return rng.next_bool() ? !s : s;
    };
    for (int g = 0; g < rng.next_int(3, 12); ++g) {
      const model::Signal s = net.add_and(pick(), pick());
      if (!s.is_const()) pool.push_back(s);
    }
    for (const model::Signal l : latches) net.set_next(l, pick());
    net.add_bad(net.add_and(pick(), pick()), "rnd");

    const mc::ReachResult oracle = mc::explicit_reach(net);
    const InductionResult r = prove_invariant(net, 20);
    if (r.status == InductionResult::Status::Proved) {
      EXPECT_TRUE(oracle.property_holds) << "iter " << iter;
      ++proved;
    } else if (r.status == InductionResult::Status::CounterexampleFound) {
      ASSERT_FALSE(oracle.property_holds) << "iter " << iter;
      EXPECT_EQ(r.k, *oracle.shortest_counterexample) << "iter " << iter;
      ++refuted;
    }
    // BoundReached is sound but inconclusive; with simple-path and
    // max_k=20, circuits this small always conclude.
    EXPECT_NE(r.status, InductionResult::Status::BoundReached)
        << "iter " << iter;
  }
  EXPECT_GT(proved, 3);
  EXPECT_GT(refuted, 3);
}

TEST(InductionTest, AllPoliciesAgree) {
  for (const OrderingPolicy policy :
       {OrderingPolicy::Baseline, OrderingPolicy::Static,
        OrderingPolicy::Dynamic}) {
    SCOPED_TRACE(to_string(policy));
    const auto safe = model::gray_safe(4);
    EXPECT_EQ(prove_invariant(safe.net, 20, policy).status,
              InductionResult::Status::Proved);
    const auto bug = model::traffic_buggy(4);
    const InductionResult r = prove_invariant(bug.net, 12, policy);
    ASSERT_EQ(r.status, InductionResult::Status::CounterexampleFound);
    EXPECT_EQ(r.k, bug.expect_depth);
  }
}

TEST(InductionTest, StepRankingAccumulates) {
  const auto bm = model::counter_safe(4, 6, 10);
  InductionConfig cfg;
  cfg.policy = OrderingPolicy::Static;
  cfg.max_k = 20;
  InductionProver prover(bm.net, cfg);
  const InductionResult r = prover.run();
  ASSERT_EQ(r.status, InductionResult::Status::Proved);
  // Both the base chain and the step chain harvested cores.
  EXPECT_GT(prover.base_ranking().num_updates(), 0u);
  EXPECT_GT(prover.step_ranking().num_updates(), 0u);
}

TEST(InductionTest, ShtrichmanRejected) {
  const auto bm = model::gray_safe(3);
  InductionConfig cfg;
  cfg.policy = OrderingPolicy::Shtrichman;
  EXPECT_THROW(InductionProver(bm.net, cfg), std::invalid_argument);
}

TEST(InductionTest, StatsPopulated) {
  // Peterson needs real search in the step cases (deterministic counters
  // are refuted during clause addition and would report zero conflicts).
  const auto bm = model::peterson_safe();
  InductionConfig cfg;
  cfg.max_k = 20;
  InductionProver prover(bm.net, cfg);
  const InductionResult r = prover.run();
  ASSERT_EQ(r.status, InductionResult::Status::Proved);
  EXPECT_GT(r.base_decisions + r.step_decisions +
                r.base_conflicts + r.step_conflicts,
            0u);
  EXPECT_GE(r.total_time_sec, 0.0);
}

}  // namespace
}  // namespace refbmc::bmc
