// ClauseTape / SharedTape: recording and replaying the encoder stream
// must reproduce the formula bit-for-bit, cursors must translate between
// variable spaces, and the shared tape must encode each frame exactly
// once no matter how many consumers (or threads) pull on it.
#include "bmc/tape.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "../helpers.hpp"
#include "model/benchgen.hpp"
#include "sat/solver.hpp"

namespace refbmc::bmc {
namespace {

using test::load;

BmcInstance replay_to_instance(SharedTape& tape, int k) {
  BmcInstance inst;
  inst.depth = k;
  InstanceSink sink(inst);
  ClauseTape::Cursor cursor;
  tape.replay_to(k, cursor, sink);
  return inst;
}

TEST(ClauseTapeTest, ReplayReproducesDirectEncoding) {
  const auto bm = model::fifo_safe(3);
  for (const bool simplify : {false, true}) {
    EncoderOptions opts;
    opts.simplify = simplify;

    // Direct: encoder → instance.
    BmcInstance direct;
    InstanceSink direct_sink(direct);
    FrameEncoder enc(bm.net, direct_sink, 0, opts);
    enc.encode_to(4);

    // Via tape: encoder → tape → instance.
    SharedTape tape(bm.net, 0, opts);
    const BmcInstance replayed = replay_to_instance(tape, 4);

    ASSERT_EQ(replayed.origin.size(), direct.origin.size());
    for (std::size_t v = 0; v < direct.origin.size(); ++v) {
      EXPECT_EQ(replayed.origin[v].node, direct.origin[v].node);
      EXPECT_EQ(replayed.origin[v].frame, direct.origin[v].frame);
    }
    ASSERT_EQ(replayed.cnf.clauses.size(), direct.cnf.clauses.size());
    for (std::size_t c = 0; c < direct.cnf.clauses.size(); ++c)
      EXPECT_EQ(replayed.cnf.clauses[c], direct.cnf.clauses[c]) << c;
  }
}

TEST(ClauseTapeTest, CursorResumesWithDeltas) {
  // Replaying 0..2 then 3..5 must equal replaying 0..5 in one go.
  const auto bm = model::counter_reach(4, 6, true);
  SharedTape tape(bm.net, 0, {});
  BmcInstance whole = replay_to_instance(tape, 5);

  BmcInstance steps;
  InstanceSink sink(steps);
  ClauseTape::Cursor cursor;
  tape.replay_to(2, cursor, sink);
  const std::size_t vars_at_2 = steps.origin.size();
  tape.replay_to(5, cursor, sink);
  EXPECT_GT(steps.origin.size(), vars_at_2);
  EXPECT_EQ(steps.origin.size(), whole.origin.size());
  EXPECT_EQ(steps.cnf.clauses.size(), whole.cnf.clauses.size());
}

TEST(ClauseTapeTest, CursorTranslatesIntoShiftedSpaces) {
  // A sink that interleaves its own variables (like the incremental
  // session's activation literals) shifts the variable space; the cursor
  // map must land tape literals on the right sink variables.
  const auto bm = model::counter_reach(3, 2, true);
  SharedTape tape(bm.net, 0, {});

  sat::Solver solver;
  std::vector<VarOrigin> origin;
  SolverSink sink(solver, origin);
  // Interleave: one foreign variable before anything else.
  origin.push_back(VarOrigin{model::kConstNode, -7});
  solver.new_var();

  ClauseTape::Cursor cursor;
  tape.replay_to(2, cursor, sink);
  // Every tape var maps one past itself.
  for (std::size_t v = 0; v < cursor.var_map.size(); ++v)
    EXPECT_EQ(cursor.var_map[v], static_cast<sat::Var>(v + 1));
  const sat::Lit prop = cursor.translate(tape.property(2));
  solver.add_clause({prop});
  EXPECT_EQ(solver.solve(), sat::Result::Sat);  // cex at depth 2 exists
}

TEST(SharedTapeTest, EnsureDepthEncodesEachFrameOnce) {
  const auto bm = model::fifo_safe(3);
  SharedTape tape(bm.net, 0, {});
  EXPECT_EQ(tape.frames_encoded(), 0u);
  tape.ensure_depth(3);
  EXPECT_EQ(tape.frames_encoded(), 4u);
  tape.ensure_depth(3);
  tape.ensure_depth(1);
  EXPECT_EQ(tape.frames_encoded(), 4u);
  tape.ensure_depth(6);
  EXPECT_EQ(tape.frames_encoded(), 7u);
}

TEST(SharedTapeTest, MarksGrowMonotonically) {
  // (A model with inputs: a closed circuit folds to constants under
  // simplification and its frames add nothing to the tape.)
  const auto bm = model::counter_reach(4, 6, true);
  SharedTape tape(bm.net, 0, {});
  ClauseTape::Mark prev = tape.mark_at(0);
  for (int k = 1; k <= 5; ++k) {
    const ClauseTape::Mark m = tape.mark_at(k);
    EXPECT_GT(m.ops, prev.ops);
    EXPECT_GE(m.vars, prev.vars);
    EXPECT_GT(m.clauses, prev.clauses);
    prev = m;
  }
}

TEST(SharedTapeTest, ConcurrentConsumersEncodeOnce) {
  // Many threads racing ensure/replay at staggered depths: the formula
  // each one sees must be correct (verdict check) and the tape must have
  // encoded every frame exactly once.
  const auto bm = model::counter_reach(4, 6, true);
  SharedTape tape(bm.net, 0, {});
  constexpr int kThreads = 8;
  constexpr int kDepth = 6;
  std::atomic<int> sat_count{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      sat::Solver solver;
      std::vector<VarOrigin> origin;
      SolverSink sink(solver, origin);
      ClauseTape::Cursor cursor;
      // Walk the depths one by one like an incremental session would,
      // starting from a thread-specific depth to stagger encoding races.
      for (int k = t % 3; k <= kDepth; ++k)
        tape.replay_to(k, cursor, sink);
      solver.add_clause({cursor.translate(tape.property(kDepth))});
      if (solver.solve() == sat::Result::Sat)
        sat_count.fetch_add(1, std::memory_order_relaxed);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(sat_count.load(), kThreads);  // cex at depth 6 for everyone
  EXPECT_EQ(tape.frames_encoded(), static_cast<std::uint64_t>(kDepth + 1));
}

TEST(SharedTapeTest, StatsAtDepthAreCumulativeSnapshots) {
  const auto bm = model::fifo_safe(3);
  SharedTape tape(bm.net, 0, {});
  tape.ensure_depth(5);  // encode ahead; snapshots must still be per-depth
  const EncodeStats at2 = tape.stats_at(2);
  const EncodeStats at5 = tape.stats_at(5);
  EXPECT_EQ(at2.frames_encoded, 3u);
  EXPECT_EQ(at5.frames_encoded, 6u);
  EXPECT_LT(at2.vars_emitted, at5.vars_emitted);
  EXPECT_LE(at2.vars_removed, at5.vars_removed);
}

}  // namespace
}  // namespace refbmc::bmc
