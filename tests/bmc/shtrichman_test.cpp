#include "bmc/shtrichman.hpp"

#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "bmc/encoder.hpp"
#include "model/benchgen.hpp"

namespace refbmc::bmc {
namespace {

// The structural expectations below reason about per-frame variable
// blocks, so they use the unsimplified (textbook) encoding.
BmcInstance plain_instance(const model::Netlist& net, int k) {
  EncoderOptions opts;
  opts.simplify = false;
  return encode_full(net, 0, k, opts);
}

TEST(ShtrichmanTest, SeedGetsHighestRank) {
  const auto bm = model::counter_reach(4, 6, true);
  const BmcInstance inst = plain_instance(bm.net, 4);
  const std::vector<double> rank = shtrichman_rank(inst);
  ASSERT_EQ(rank.size(), inst.num_vars());
  const auto seed = static_cast<std::size_t>(inst.bad_lit.var());
  for (std::size_t v = 0; v < rank.size(); ++v)
    EXPECT_LE(rank[v], rank[seed]) << v;
}

TEST(ShtrichmanTest, RanksDecreaseWithDistanceFromProperty) {
  // On the unrolled counter, variables at the final frame (where ¬P sits)
  // should outrank variables at frame 0 on average.
  const auto bm = model::counter_reach(4, 6, true);
  const BmcInstance inst = plain_instance(bm.net, 5);
  const std::vector<double> rank = shtrichman_rank(inst);
  double sum_last = 0, n_last = 0, sum_first = 0, n_first = 0;
  for (std::size_t v = 1; v < inst.origin.size(); ++v) {
    if (inst.origin[v].frame == 5) {
      sum_last += rank[v];
      ++n_last;
    } else if (inst.origin[v].frame == 0) {
      sum_first += rank[v];
      ++n_first;
    }
  }
  ASSERT_GT(n_last, 0);
  ASSERT_GT(n_first, 0);
  EXPECT_GT(sum_last / n_last, sum_first / n_first);
}

TEST(ShtrichmanTest, AllConnectedVariablesRanked) {
  const auto bm = model::fifo_safe(3);
  const BmcInstance inst = plain_instance(bm.net, 3);
  const std::vector<double> rank = shtrichman_rank(inst);
  // Every circuit variable feeds the property through the unrolling, so
  // all of them get a positive rank.  The auxiliary constant variable
  // (origin frame -1) only occurs in its own unit clause and may stay
  // unranked when no cone signal is constant.
  for (std::size_t v = 0; v < rank.size(); ++v) {
    if (inst.origin[v].frame < 0) continue;
    EXPECT_GT(rank[v], 0.0) << v;
  }
}

TEST(ShtrichmanTest, RanksAreFiniteAndBounded) {
  const auto bm = model::peterson_safe();
  const BmcInstance inst = plain_instance(bm.net, 4);
  const std::vector<double> rank = shtrichman_rank(inst);
  for (const double r : rank) {
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, static_cast<double>(inst.num_vars()));
  }
}

TEST(ShtrichmanTest, SolverOverloadMatchesInstanceOverload) {
  // The engine ranks straight off the solver's original clauses; on the
  // same formula that must give the same ranking as the instance path.
  const auto bm = model::counter_reach(4, 6, true);
  const BmcInstance inst = plain_instance(bm.net, 4);
  sat::Solver solver;
  test::load(solver, inst.cnf);
  const std::vector<double> from_inst = shtrichman_rank(inst);
  const std::vector<double> from_solver =
      shtrichman_rank(solver, inst.bad_lit);
  ASSERT_EQ(from_inst.size(), from_solver.size());
  for (std::size_t v = 0; v < from_inst.size(); ++v)
    EXPECT_DOUBLE_EQ(from_inst[v], from_solver[v]) << v;
}

}  // namespace
}  // namespace refbmc::bmc
