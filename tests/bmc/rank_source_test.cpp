// The RankSource seam (rank_source.hpp):
//
//   * LocalRankSource is CoreRanking behind the interface, bit for bit
//     — same projections, epoch = num_updates;
//   * SharedRankSource merges order-independently: the same set of
//     publishes produces the same projection under ANY order — shuffled
//     sequentially or raced from N threads — for every weighting;
//   * the epoch advances exactly when the accumulation changes, and
//     RankProjector turns an epoch advance into a refreshed projection.
#include "bmc/rank_source.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <thread>
#include <vector>

#include "util/rng.hpp"

namespace refbmc::bmc {
namespace {

// A small CNF-variable origin map over model nodes 1..n (node 0 is the
// constant and is skipped by scoring).
std::vector<VarOrigin> origin_over(model::NodeId num_nodes) {
  std::vector<VarOrigin> origin;
  for (model::NodeId n = 0; n <= num_nodes; ++n)
    origin.push_back(VarOrigin{n, 0});
  return origin;
}

struct Publish {
  std::vector<sat::Var> core;
  int depth = 0;
};

// A deterministic mixed-depth publish set touching overlapping node
// subsets — the shape racing entrants produce.
std::vector<Publish> publish_set() {
  return {
      {{1, 2, 3}, 0}, {{2, 3}, 1},    {{3, 4, 5}, 1}, {{1, 5}, 2},
      {{2, 4}, 2},    {{1, 2, 5}, 3}, {{4}, 3},       {{1, 3, 5}, 4},
  };
}

TEST(RankSourceTest, LocalMatchesCoreRankingBitForBit) {
  const auto origin = origin_over(6);
  for (const CoreWeighting w : all_core_weightings()) {
    SCOPED_TRACE(to_string(w));
    CoreRanking reference(w);
    LocalRankSource local(w);
    for (const Publish& p : publish_set()) {
      reference.update(origin, p.core, p.depth);
      local.publish(origin, p.core, p.depth);
    }
    EXPECT_EQ(local.num_updates(), reference.num_updates());
    EXPECT_EQ(local.epoch(), reference.num_updates());
    EXPECT_EQ(local.project(origin, nullptr), reference.project(origin));
    EXPECT_EQ(local.snapshot().scores(), reference.scores());
  }
}

TEST(RankSourceTest, SharedLinearAndUniformMatchSequentialAccumulation) {
  // The additive weightings need no re-keying: a single publisher feeding
  // a SharedRankSource sees exactly the engine-private accumulation.
  const auto origin = origin_over(6);
  for (const CoreWeighting w :
       {CoreWeighting::Linear, CoreWeighting::Uniform}) {
    SCOPED_TRACE(to_string(w));
    CoreRanking reference(w);
    SharedRankSource shared(w);
    for (const Publish& p : publish_set()) {
      reference.update(origin, p.core, p.depth);
      shared.publish(origin, p.core, p.depth);
    }
    EXPECT_EQ(shared.project(origin, nullptr), reference.project(origin));
  }
}

TEST(RankSourceTest, SharedMergeIsOrderIndependentSequentially) {
  // Any permutation of the same publish set must land on the exact same
  // projection (the weights are integers / powers of two, so double
  // accumulation is exact — equality is bit-level, not approximate).
  const auto origin = origin_over(6);
  for (const CoreWeighting w : all_core_weightings()) {
    SCOPED_TRACE(to_string(w));
    std::vector<Publish> publishes = publish_set();
    SharedRankSource canonical(w);
    for (const Publish& p : publishes) canonical.publish(origin, p.core, p.depth);
    const std::vector<double> expect = canonical.project(origin, nullptr);

    Rng rng(42);
    for (int round = 0; round < 10; ++round) {
      for (std::size_t i = publishes.size(); i > 1; --i)
        std::swap(publishes[i - 1], publishes[rng.next_below(i)]);
      SharedRankSource shuffled(w);
      for (const Publish& p : publishes)
        shuffled.publish(origin, p.core, p.depth);
      EXPECT_EQ(shuffled.project(origin, nullptr), expect)
          << "round " << round;
    }
  }
}

TEST(RankSourceTest, SharedMergeIsOrderIndependentAcrossThreads) {
  // N threads racing disjoint slices of the publish set — whatever the
  // interleaving, the merged projection equals the sequential one.
  const auto origin = origin_over(6);
  const std::vector<Publish> publishes = publish_set();
  constexpr int kThreads = 4;
  for (const CoreWeighting w : all_core_weightings()) {
    SCOPED_TRACE(to_string(w));
    SharedRankSource canonical(w);
    for (const Publish& p : publishes)
      canonical.publish(origin, p.core, p.depth);
    const std::vector<double> expect = canonical.project(origin, nullptr);

    for (int round = 0; round < 5; ++round) {
      SharedRankSource raced(w);
      std::vector<std::thread> threads;
      for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
          for (std::size_t i = static_cast<std::size_t>(t);
               i < publishes.size(); i += kThreads)
            raced.publish(origin, publishes[i].core, publishes[i].depth);
        });
      }
      for (auto& t : threads) t.join();
      EXPECT_EQ(raced.project(origin, nullptr), expect) << "round " << round;
      EXPECT_EQ(raced.num_updates(), publishes.size());
    }
  }
}

TEST(RankSourceTest, SharedLastOnlyKeepsDeepestUnion) {
  const auto origin = origin_over(6);
  SharedRankSource src(CoreWeighting::LastOnly);
  src.publish(origin, {1, 2}, 3);
  src.publish(origin, {3}, 1);  // shallower: ignored
  src.publish(origin, {4}, 3);  // equal depth: merged
  const CoreRanking snap = src.snapshot();
  EXPECT_EQ(snap.node_score(1), 1.0);
  EXPECT_EQ(snap.node_score(2), 1.0);
  EXPECT_EQ(snap.node_score(3), 0.0);
  EXPECT_EQ(snap.node_score(4), 1.0);
  src.publish(origin, {5}, 7);  // deeper: replaces everything
  EXPECT_EQ(src.snapshot().node_score(1), 0.0);
  EXPECT_EQ(src.snapshot().node_score(5), 1.0);
}

TEST(RankSourceTest, SharedEpochAdvancesExactlyOnChange) {
  const auto origin = origin_over(6);
  SharedRankSource src(CoreWeighting::LastOnly);
  EXPECT_EQ(src.epoch(), 0u);
  src.publish(origin, {1, 2}, 5);
  const std::uint64_t e1 = src.epoch();
  EXPECT_GT(e1, 0u);
  src.publish(origin, {3, 4}, 2);  // shallower than the kept core: no-op
  EXPECT_EQ(src.epoch(), e1);
  src.publish(origin, {1}, 5);  // already present at this depth: no-op
  EXPECT_EQ(src.epoch(), e1);
  src.publish(origin, {3}, 5);  // genuinely new node at the kept depth
  EXPECT_GT(src.epoch(), e1);
  // Publish calls are counted whether or not they changed anything.
  EXPECT_EQ(src.num_updates(), 4u);

  // A core of constant-only variables scores nothing and moves nothing.
  SharedRankSource uniform(CoreWeighting::Uniform);
  uniform.publish(origin, {0}, 1);  // var 0 originates from kConstNode
  EXPECT_EQ(uniform.epoch(), 0u);
}

TEST(RankSourceTest, ProjectorRefreshesOnEpochAdvance) {
  const auto origin = origin_over(3);
  SharedRankSource src(CoreWeighting::Uniform);
  src.publish(origin, {1}, 0);

  std::uint64_t epoch = 0;
  const std::vector<double> initial = src.project(origin, &epoch);
  RankProjector projector;
  projector.bind(src, origin, epoch);
  EXPECT_FALSE(projector.has_update());  // seeded with the seen epoch

  src.publish(origin, {2, 3}, 1);
  ASSERT_TRUE(projector.has_update());
  const std::span<const double> refreshed = projector.refresh();
  EXPECT_FALSE(projector.has_update());  // consumed the advance
  ASSERT_EQ(refreshed.size(), origin.size());
  EXPECT_EQ(refreshed[1], 1.0);
  EXPECT_EQ(refreshed[2], 1.0);
  EXPECT_EQ(refreshed[3], 1.0);
  EXPECT_EQ(initial[2], 0.0);  // the pre-advance projection lacked it
}

TEST(RankSourceTest, ProjectionsTranslatePerOriginMap) {
  // Two entrants with different CNF numberings of the same model nodes
  // read the same accumulation through their own maps — the endpoint
  // discipline that makes node-space sharing sound.
  SharedRankSource src(CoreWeighting::Uniform);
  const std::vector<VarOrigin> a{{3, 0}, {1, 0}, {2, 0}};
  const std::vector<VarOrigin> b{{2, 1}, {3, 1}};
  src.publish(a, {0, 2}, 0);  // touches nodes 3 and 2 via a's map
  const std::vector<double> ra = src.project(a, nullptr);
  const std::vector<double> rb = src.project(b, nullptr);
  EXPECT_EQ(ra, (std::vector<double>{1.0, 0.0, 1.0}));
  EXPECT_EQ(rb, (std::vector<double>{1.0, 1.0}));
}

}  // namespace
}  // namespace refbmc::bmc
