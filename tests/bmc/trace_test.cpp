#include "bmc/trace.hpp"

#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "bmc/encoder.hpp"
#include "model/benchgen.hpp"
#include "model/builder.hpp"

namespace refbmc::bmc {
namespace {

using model::Builder;
using model::Netlist;
using model::Signal;
using test::load;

Trace solve_and_extract(const model::Netlist& net, int depth) {
  const BmcInstance inst = encode_full(net, 0, depth);
  sat::Solver s;
  load(s, inst.cnf);
  EXPECT_EQ(s.solve(), sat::Result::Sat);
  return extract_trace(net, inst, s);
}

TEST(TraceTest, ShapeMatchesDepthAndInputs) {
  const auto bm = model::shift_all_ones(4);
  const Trace t = solve_and_extract(bm.net, 4);
  EXPECT_EQ(t.depth, 4);
  EXPECT_EQ(t.bad_frame, 4);
  ASSERT_EQ(t.inputs.size(), 5u);
  for (const auto& frame : t.inputs)
    EXPECT_EQ(frame.size(), bm.net.num_inputs());
  EXPECT_EQ(t.initial_latches.size(), bm.net.num_latches());
}

TEST(TraceTest, ShiftRegisterTraceShiftsInOnes) {
  const auto bm = model::shift_all_ones(4);
  const Trace t = solve_and_extract(bm.net, 4);
  // To make all 4 bits 1 at frame 4, frames 0..3 must shift in 1s.
  for (int f = 0; f < 4; ++f) EXPECT_TRUE(t.inputs[static_cast<std::size_t>(f)][0]) << f;
  EXPECT_TRUE(validate_trace(bm.net, t));
}

TEST(TraceTest, ValidateRejectsCorruptedTrace) {
  const auto bm = model::shift_all_ones(4);
  Trace t = solve_and_extract(bm.net, 4);
  ASSERT_TRUE(validate_trace(bm.net, t));
  t.inputs[2][0] = false;  // break the required input sequence
  EXPECT_FALSE(validate_trace(bm.net, t));
}

TEST(TraceTest, UninitialisedLatchValueExtracted) {
  Netlist net;
  Builder b(net);
  const Signal l = net.add_latch(sat::l_Undef, "free");
  net.set_next(l, l);
  net.add_bad(l, "high");
  const Trace t = solve_and_extract(net, 0);
  ASSERT_EQ(t.initial_latches.size(), 1u);
  EXPECT_TRUE(t.initial_latches[0]);  // must start high to violate
  EXPECT_TRUE(validate_trace(net, t));
}

TEST(TraceTest, FixedInitLatchesKeepTheirValue) {
  const auto bm = model::counter_reach(4, 3, false);
  const Trace t = solve_and_extract(bm.net, 3);
  for (const bool v : t.initial_latches) EXPECT_FALSE(v);  // counter starts 0
  EXPECT_TRUE(validate_trace(bm.net, t));
}

TEST(TraceTest, ValidateDetectsEarlierBadFrame) {
  // A trace whose bad fires before `depth` still validates (≤ semantics).
  Netlist net;
  Builder b(net);
  const Signal in = net.add_input("in");
  net.add_bad(in, "input_high");
  Trace t;
  t.depth = 2;
  t.inputs = {{true}, {false}, {false}};  // bad already at frame 0
  t.initial_latches = {};
  EXPECT_TRUE(validate_trace(net, t));
}

TEST(TraceTest, ValidateFalseWhenBadNeverFires) {
  Netlist net;
  const Signal in = net.add_input("in");
  net.add_bad(in, "input_high");
  Trace t;
  t.depth = 1;
  t.inputs = {{false}, {false}};
  EXPECT_FALSE(validate_trace(net, t));
}

TEST(TraceTest, MalformedTraceRejected) {
  Netlist net;
  net.add_input("in");
  net.add_bad(Signal::constant(true), "b");
  Trace t;
  t.depth = 2;
  t.inputs = {{false}};  // wrong frame count
  EXPECT_THROW(validate_trace(net, t), std::invalid_argument);
}

TEST(TraceTest, ToStringContainsNamesAndValues) {
  const auto bm = model::shift_all_ones(3);
  const Trace t = solve_and_extract(bm.net, 3);
  const std::string str = t.to_string(bm.net);
  EXPECT_NE(str.find("counter-example of length 3"), std::string::npos);
  EXPECT_NE(str.find("in="), std::string::npos);
  EXPECT_NE(str.find("frame 0"), std::string::npos);
  EXPECT_NE(str.find("sr[0]="), std::string::npos);
}

}  // namespace
}  // namespace refbmc::bmc
