// Unroller semantics: the CNF of Eq. 1 must be satisfiable exactly when a
// counter-example of the right length exists, and its models must match
// circuit simulation.
#include "bmc/unroller.hpp"

#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "bmc/trace.hpp"
#include "model/benchgen.hpp"
#include "model/builder.hpp"
#include "sat/solver.hpp"

namespace refbmc::bmc {
namespace {

using model::Builder;
using model::Netlist;
using model::Signal;
using model::Word;
using test::load;

sat::Result solve_instance(const BmcInstance& inst) {
  sat::Solver s;
  load(s, inst.cnf);
  return s.solve();
}

TEST(UnrollerTest, CounterFailsExactlyAtTarget) {
  const auto bm = model::counter_reach(4, 6, false);
  const Unroller unr(bm.net);
  for (int k = 0; k <= 8; ++k) {
    EXPECT_EQ(solve_instance(unr.unroll(k)),
              k == 6 ? sat::Result::Sat : sat::Result::Unsat)
        << "depth " << k;
  }
}

TEST(UnrollerTest, LastModeMissesEarlierFailures) {
  // With an enable input the counter can also linger, so in Last mode
  // depths beyond the minimum are satisfiable too.
  const auto bm = model::counter_reach(4, 3, true);
  const Unroller unr(bm.net, 0, BadMode::Last);
  EXPECT_EQ(solve_instance(unr.unroll(2)), sat::Result::Unsat);
  EXPECT_EQ(solve_instance(unr.unroll(3)), sat::Result::Sat);
  EXPECT_EQ(solve_instance(unr.unroll(4)), sat::Result::Sat);
}

TEST(UnrollerTest, AnyModeSubsumesShallowerFailures) {
  const auto bm = model::counter_reach(4, 3, false);
  const Unroller unr(bm.net, 0, BadMode::Any);
  EXPECT_EQ(solve_instance(unr.unroll(2)), sat::Result::Unsat);
  EXPECT_EQ(solve_instance(unr.unroll(3)), sat::Result::Sat);
  // Deterministic counter passes 3 only at depth 3, but Any-mode keeps
  // the disjunction satisfiable at every deeper unrolling.
  EXPECT_EQ(solve_instance(unr.unroll(6)), sat::Result::Sat);
}

TEST(UnrollerTest, InitialStatePredicates) {
  // Latch inited to 1 with self-loop; bad = ¬latch: never fails.
  Netlist net;
  const Signal l = net.add_latch(sat::l_True);
  net.set_next(l, l);
  net.add_bad(!l, "went_low");
  const Unroller unr(net);
  for (int k = 0; k <= 3; ++k)
    EXPECT_EQ(solve_instance(unr.unroll(k)), sat::Result::Unsat) << k;
}

TEST(UnrollerTest, UninitialisedLatchIsFree) {
  Netlist net;
  const Signal l = net.add_latch(sat::l_Undef);
  net.set_next(l, l);
  net.add_bad(l, "starts_high");
  const Unroller unr(net);
  // Free initial value: bad can hold immediately.
  EXPECT_EQ(solve_instance(unr.unroll(0)), sat::Result::Sat);
}

TEST(UnrollerTest, ConstantBadSignals) {
  Netlist net;
  net.add_latch(sat::l_False);
  net.add_bad(Signal::constant(false), "never");
  net.add_bad(Signal::constant(true), "always");
  EXPECT_EQ(solve_instance(Unroller(net, 0).unroll(2)), sat::Result::Unsat);
  EXPECT_EQ(solve_instance(Unroller(net, 1).unroll(2)), sat::Result::Sat);
}

TEST(UnrollerTest, ConeOfInfluenceShrinksCnf) {
  // Irrelevant side logic must not appear in the instance.
  Netlist net;
  Builder b(net);
  const Word main_cnt = b.latch_word("main", 4, 0);
  b.set_next_word(main_cnt, b.increment(main_cnt));
  const Word side = b.latch_word("side", 8, 0);  // disconnected
  b.set_next_word(side, b.increment(side));
  net.add_bad(b.eq_const(main_cnt, 5), "hit");

  Netlist small;
  Builder sb(small);
  const Word only = sb.latch_word("main", 4, 0);
  sb.set_next_word(only, sb.increment(only));
  small.add_bad(sb.eq_const(only, 5), "hit");

  const BmcInstance with_side = Unroller(net).unroll(3);
  const BmcInstance without = Unroller(small).unroll(3);
  EXPECT_EQ(with_side.num_vars(), without.num_vars());
  EXPECT_EQ(with_side.num_clauses(), without.num_clauses());
}

TEST(UnrollerTest, OriginMapIsConsistent) {
  const auto bm = model::fifo_safe(3);
  const Unroller unr(bm.net);
  const BmcInstance inst = unr.unroll(4);
  EXPECT_EQ(inst.depth, 4);
  EXPECT_EQ(inst.origin.size(),
            static_cast<std::size_t>(inst.cnf.num_vars));
  // Var 0 is the auxiliary constant.
  EXPECT_EQ(inst.origin[0].frame, -1);
  // Every other variable maps to a cone node with a frame in [0, k].
  int frames_seen = 0;
  std::vector<char> frame_seen(5, 0);
  for (std::size_t v = 1; v < inst.origin.size(); ++v) {
    const VarOrigin& o = inst.origin[v];
    EXPECT_GE(o.frame, 0);
    EXPECT_LE(o.frame, 4);
    EXPECT_GT(o.node, model::kConstNode);
    if (!frame_seen[static_cast<std::size_t>(o.frame)]) {
      frame_seen[static_cast<std::size_t>(o.frame)] = 1;
      ++frames_seen;
    }
  }
  EXPECT_EQ(frames_seen, 5);
  // Per-frame variable blocks all have the cone size.
  const std::size_t per_frame = (inst.origin.size() - 1) / 5;
  EXPECT_EQ((inst.origin.size() - 1) % 5, 0u);
  EXPECT_EQ(per_frame, unr.cone().size() - 1);  // minus constant node
}

TEST(UnrollerTest, InstanceGrowsLinearlyWithDepth) {
  const auto bm = model::counter_safe(6, 40, 50);
  const Unroller unr(bm.net);
  const auto i1 = unr.unroll(1);
  const auto i2 = unr.unroll(2);
  const auto i3 = unr.unroll(3);
  const std::size_t d21 = i2.num_clauses() - i1.num_clauses();
  const std::size_t d32 = i3.num_clauses() - i2.num_clauses();
  EXPECT_EQ(d21, d32);
  EXPECT_GT(d21, 0u);
}

TEST(UnrollerTest, ModelsReplayOnSimulator) {
  // Any satisfying assignment of the unrolling must be a genuine trace.
  const auto bm = model::fifo_buggy(3);
  const Unroller unr(bm.net);
  const BmcInstance inst = unr.unroll(bm.expect_depth);
  sat::Solver s;
  load(s, inst.cnf);
  ASSERT_EQ(s.solve(), sat::Result::Sat);
  const Trace trace = extract_trace(bm.net, inst, s);
  EXPECT_TRUE(validate_trace(bm.net, trace));
}

TEST(UnrollerTest, RejectsMissingProperty) {
  Netlist net;
  net.add_latch(sat::l_False);
  EXPECT_THROW(Unroller(net, 0), std::invalid_argument);
}

TEST(UnrollerTest, RejectsNegativeDepth) {
  const auto bm = model::counter_reach(3, 2, false);
  const Unroller unr(bm.net);
  EXPECT_THROW(unr.unroll(-1), std::invalid_argument);
}

}  // namespace
}  // namespace refbmc::bmc
