#include "util/log.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace refbmc {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    prev_level_ = set_log_level(LogLevel::Debug);
    prev_sink_ = set_log_sink(
        [this](LogLevel level, const std::string& msg) {
          captured_.emplace_back(level, msg);
        });
  }
  void TearDown() override {
    set_log_sink(prev_sink_);
    set_log_level(prev_level_);
  }

  std::vector<std::pair<LogLevel, std::string>> captured_;
  LogLevel prev_level_ = LogLevel::Warn;
  LogSink prev_sink_;
};

TEST_F(LogTest, MessagesReachSink) {
  REFBMC_INFO() << "hello " << 42;
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].first, LogLevel::Info);
  EXPECT_EQ(captured_[0].second, "hello 42");
}

TEST_F(LogTest, LevelFilters) {
  set_log_level(LogLevel::Warn);
  REFBMC_DEBUG() << "dropped";
  REFBMC_INFO() << "dropped too";
  REFBMC_WARN() << "kept";
  REFBMC_ERROR() << "kept too";
  ASSERT_EQ(captured_.size(), 2u);
  EXPECT_EQ(captured_[0].second, "kept");
  EXPECT_EQ(captured_[1].second, "kept too");
}

TEST_F(LogTest, OffSilencesEverything) {
  set_log_level(LogLevel::Off);
  REFBMC_ERROR() << "nope";
  EXPECT_TRUE(captured_.empty());
}

TEST_F(LogTest, SetLevelReturnsPrevious) {
  EXPECT_EQ(set_log_level(LogLevel::Error), LogLevel::Debug);
  EXPECT_EQ(log_level(), LogLevel::Error);
}

}  // namespace
}  // namespace refbmc
