#include "util/log.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace refbmc {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    prev_level_ = set_log_level(LogLevel::Debug);
    prev_sink_ = set_log_sink(
        [this](LogLevel level, const std::string& msg) {
          captured_.emplace_back(level, msg);
        });
  }
  void TearDown() override {
    set_log_sink(prev_sink_);
    set_log_level(prev_level_);
  }

  std::vector<std::pair<LogLevel, std::string>> captured_;
  LogLevel prev_level_ = LogLevel::Warn;
  LogSink prev_sink_;
};

TEST_F(LogTest, MessagesReachSink) {
  REFBMC_INFO() << "hello " << 42;
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].first, LogLevel::Info);
  EXPECT_EQ(captured_[0].second, "hello 42");
}

TEST_F(LogTest, LevelFilters) {
  set_log_level(LogLevel::Warn);
  REFBMC_DEBUG() << "dropped";
  REFBMC_INFO() << "dropped too";
  REFBMC_WARN() << "kept";
  REFBMC_ERROR() << "kept too";
  ASSERT_EQ(captured_.size(), 2u);
  EXPECT_EQ(captured_[0].second, "kept");
  EXPECT_EQ(captured_[1].second, "kept too");
}

TEST_F(LogTest, OffSilencesEverything) {
  set_log_level(LogLevel::Off);
  REFBMC_ERROR() << "nope";
  EXPECT_TRUE(captured_.empty());
}

TEST_F(LogTest, SetLevelReturnsPrevious) {
  EXPECT_EQ(set_log_level(LogLevel::Error), LogLevel::Debug);
  EXPECT_EQ(log_level(), LogLevel::Error);
}

TEST_F(LogTest, ThreadTagPrefixesMessages) {
  const std::string prev = set_log_thread_tag("static");
  EXPECT_EQ(prev, "");
  EXPECT_EQ(log_thread_tag(), "static");
  REFBMC_INFO() << "solving";
  const std::string prev2 = set_log_thread_tag("");
  EXPECT_EQ(prev2, "static");
  REFBMC_INFO() << "untagged";
  ASSERT_EQ(captured_.size(), 2u);
  EXPECT_EQ(captured_[0].second, "|static| solving");
  EXPECT_EQ(captured_[1].second, "untagged");
}

TEST_F(LogTest, TagsAreThreadLocal) {
  set_log_thread_tag("main");
  std::string other_tag;
  std::thread t([&other_tag] { other_tag = log_thread_tag(); });
  t.join();
  EXPECT_EQ(other_tag, "");  // fresh thread starts untagged
  EXPECT_EQ(log_thread_tag(), "main");
  set_log_thread_tag("");
}

TEST_F(LogTest, ConcurrentLoggingKeepsLinesIntact) {
  // One mutex per emitted line: concurrent writers may interleave LINES
  // arbitrarily but never characters — every captured message is exactly
  // one writer's tagged payload.  Run under TSan via the CI matrix.
  constexpr int kThreads = 4;
  constexpr int kLines = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      set_log_thread_tag("w" + std::to_string(t));
      for (int i = 0; i < kLines; ++i)
        REFBMC_INFO() << "msg " << t << ":" << i;
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_EQ(captured_.size(),
            static_cast<std::size_t>(kThreads) * kLines);
  for (const auto& [level, msg] : captured_) {
    EXPECT_EQ(level, LogLevel::Info);
    // Shape: |wT| msg T:I with matching thread ids.
    ASSERT_EQ(msg.rfind("|w", 0), 0u) << msg;
    const std::size_t bar = msg.find('|', 1);
    ASSERT_NE(bar, std::string::npos) << msg;
    const std::string tag_id = msg.substr(2, bar - 2);
    const std::size_t colon = msg.find(':');
    ASSERT_NE(colon, std::string::npos) << msg;
    const std::string body_id =
        msg.substr(bar + 6, colon - (bar + 6));  // "| msg T:..."
    EXPECT_EQ(tag_id, body_id) << msg;
  }
}

}  // namespace
}  // namespace refbmc
