#include "util/timer.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace refbmc {
namespace {

TEST(TimerTest, ElapsedIsMonotonic) {
  Timer t;
  const double a = t.elapsed_sec();
  const double b = t.elapsed_sec();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(TimerTest, RestartResets) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double before = t.elapsed_sec();
  t.restart();
  EXPECT_LT(t.elapsed_sec(), before);
}

TEST(TimerTest, MillisecondsTrackSeconds) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const double sec = t.elapsed_sec();
  const double ms = t.elapsed_ms();
  EXPECT_NEAR(ms, sec * 1e3, 5.0);  // loose: two separate clock reads
}

TEST(DeadlineTest, UnlimitedNeverExpires) {
  const Deadline d(-1.0);
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_sec(), 1e20);
}

TEST(DeadlineTest, ZeroBudgetMeansUnlimited) {
  const Deadline d(0.0);
  EXPECT_FALSE(d.expired());
}

TEST(DeadlineTest, ShortBudgetExpires) {
  const Deadline d(0.001);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.remaining_sec(), 0.0);
}

TEST(DeadlineTest, RemainingDecreases) {
  const Deadline d(10.0);
  const double r1 = d.remaining_sec();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const double r2 = d.remaining_sec();
  EXPECT_LE(r2, r1);
  EXPECT_GT(r2, 0.0);
}

}  // namespace
}  // namespace refbmc
