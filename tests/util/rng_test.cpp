#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace refbmc {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(RngTest, NextBelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(RngTest, NextBelowZeroThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.next_below(0), std::invalid_argument);
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(42);
  std::set<int> seen;
  for (int i = 0; i < 2000; ++i) {
    const int v = rng.next_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all 7 values appear in 2000 draws
}

TEST(RngTest, NextIntDegenerateRange) {
  Rng rng(5);
  EXPECT_EQ(rng.next_int(4, 4), 4);
  EXPECT_THROW(rng.next_int(5, 4), std::invalid_argument);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(13);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i)
    if (rng.next_bool(0.25)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.03);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(3);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), sorted.begin()));
}

TEST(RngTest, ShuffleEmptyAndSingleton) {
  Rng rng(3);
  std::vector<int> empty;
  rng.shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  rng.shuffle(one);
  EXPECT_EQ(one, std::vector<int>{42});
}

}  // namespace
}  // namespace refbmc
