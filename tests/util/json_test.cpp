// JsonWriter: the CI bench-trajectory step diffs BENCH_*.json artifacts
// textually, so the writer must produce valid JSON with deterministic
// structure — escaped strings, stable (call-order) keys, and no NaN/Inf
// tokens.
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "util/json.hpp"

namespace refbmc {
namespace {

TEST(JsonWriterTest, ObjectsArraysAndCommas) {
  JsonWriter w;
  w.begin_object();
  w.kv("a", 1);
  w.key("b");
  w.begin_array();
  w.value(std::uint64_t{2});
  w.value(3);
  w.end_array();
  w.kv("c", true);
  w.end_object();
  EXPECT_EQ(w.str(), R"({"a":1,"b":[2,3],"c":true})");
}

TEST(JsonWriterTest, EscapesStringValuesAndKeys) {
  JsonWriter w;
  w.begin_object();
  w.kv("quote\"backslash\\", std::string("line\nfeed\ttab\rret"));
  w.kv("ctrl", std::string("a\x01" "b"));
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"quote\\\"backslash\\\\\":\"line\\nfeed\\ttab\\rret\","
            "\"ctrl\":\"a\\u0001b\"}");
}

TEST(JsonWriterTest, HighBitBytesPassThroughUnharmed) {
  // UTF-8 payloads (bench names could grow accents) are not control
  // characters: they must pass through raw, not as negative-int \u junk.
  JsonWriter w;
  w.begin_object();
  w.kv("name", std::string("caf\xc3\xa9"));
  w.end_object();
  EXPECT_EQ(w.str(), "{\"name\":\"caf\xc3\xa9\"}");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.begin_object();
  w.kv("nan", std::numeric_limits<double>::quiet_NaN());
  w.kv("inf", std::numeric_limits<double>::infinity());
  w.kv("ninf", -std::numeric_limits<double>::infinity());
  w.kv("fine", 1.5);
  w.end_object();
  EXPECT_EQ(w.str(), R"({"nan":null,"inf":null,"ninf":null,"fine":1.5})");
}

TEST(JsonWriterTest, KeyOrderIsCallOrderAndRepeatable) {
  const auto emit = [] {
    JsonWriter w;
    w.begin_object();
    w.kv("zebra", 1);
    w.kv("alpha", 2);
    w.kv("mid", 3);
    w.end_object();
    return w.str();
  };
  const std::string first = emit();
  EXPECT_EQ(first, R"({"zebra":1,"alpha":2,"mid":3})");  // not sorted
  EXPECT_EQ(first, emit());  // byte-identical across runs
}

TEST(JsonWriterTest, NestedStructuresSeparateCorrectly) {
  JsonWriter w;
  w.begin_array();
  w.begin_object();
  w.kv("x", 1);
  w.end_object();
  w.begin_object();
  w.kv("y", 2);
  w.end_object();
  w.begin_array();
  w.end_array();
  w.end_array();
  EXPECT_EQ(w.str(), R"([{"x":1},{"y":2},[]])");
}

}  // namespace
}  // namespace refbmc
