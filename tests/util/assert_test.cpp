#include "util/assert.hpp"

#include <gtest/gtest.h>

namespace refbmc {
namespace {

TEST(AssertTest, PassingAssertDoesNothing) {
  EXPECT_NO_THROW(REFBMC_ASSERT(1 + 1 == 2));
  EXPECT_NO_THROW(REFBMC_EXPECTS(true));
}

TEST(AssertTest, FailingAssertThrowsLogicError) {
  EXPECT_THROW(REFBMC_ASSERT(false), std::logic_error);
  EXPECT_THROW(REFBMC_ASSERT_MSG(false, "details"), std::logic_error);
}

TEST(AssertTest, FailingPreconditionThrowsInvalidArgument) {
  EXPECT_THROW(REFBMC_EXPECTS(false), std::invalid_argument);
  EXPECT_THROW(REFBMC_EXPECTS_MSG(false, "why"), std::invalid_argument);
}

TEST(AssertTest, MessageContainsExpressionAndDetails) {
  try {
    REFBMC_ASSERT_MSG(2 < 1, "impossible ordering");
    FAIL() << "expected a throw";
  } catch (const std::logic_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("impossible ordering"), std::string::npos);
  }
}

}  // namespace
}  // namespace refbmc
