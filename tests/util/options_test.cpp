#include "util/options.hpp"

#include <gtest/gtest.h>

namespace refbmc {
namespace {

Options parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Options::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(OptionsTest, SpaceSeparatedValue) {
  const auto o = parse({"--depth", "25"});
  EXPECT_TRUE(o.has("depth"));
  EXPECT_EQ(o.get_int("depth", 0), 25);
}

TEST(OptionsTest, EqualsSeparatedValue) {
  const auto o = parse({"--policy=dynamic"});
  EXPECT_EQ(o.get("policy"), "dynamic");
}

TEST(OptionsTest, BooleanFlagAtEnd) {
  const auto o = parse({"--verbose"});
  EXPECT_TRUE(o.get_bool("verbose", false));
}

TEST(OptionsTest, BooleanFlagBeforeAnotherOption) {
  const auto o = parse({"--verbose", "--depth", "3"});
  EXPECT_TRUE(o.get_bool("verbose", false));
  EXPECT_EQ(o.get_int("depth", 0), 3);
}

TEST(OptionsTest, Positionals) {
  const auto o = parse({"file1.aag", "--depth", "2", "file2.aag"});
  ASSERT_EQ(o.positionals().size(), 2u);
  EXPECT_EQ(o.positionals()[0], "file1.aag");
  EXPECT_EQ(o.positionals()[1], "file2.aag");
}

TEST(OptionsTest, DefaultsWhenAbsent) {
  const auto o = parse({});
  EXPECT_FALSE(o.has("depth"));
  EXPECT_EQ(o.get("name", "fallback"), "fallback");
  EXPECT_EQ(o.get_int("depth", 7), 7);
  EXPECT_DOUBLE_EQ(o.get_double("budget", 1.5), 1.5);
  EXPECT_TRUE(o.get_bool("flag", true));
}

TEST(OptionsTest, MalformedNumbersThrow) {
  const auto o = parse({"--depth", "abc", "--budget", "x"});
  EXPECT_THROW(o.get_int("depth", 0), std::invalid_argument);
  EXPECT_THROW(o.get_double("budget", 0), std::invalid_argument);
}

TEST(OptionsTest, BooleanSpellings) {
  EXPECT_TRUE(parse({"--a=true"}).get_bool("a", false));
  EXPECT_TRUE(parse({"--a=yes"}).get_bool("a", false));
  EXPECT_TRUE(parse({"--a=on"}).get_bool("a", false));
  EXPECT_FALSE(parse({"--a=false"}).get_bool("a", true));
  EXPECT_FALSE(parse({"--a=0"}).get_bool("a", true));
  EXPECT_THROW(parse({"--a=maybe"}).get_bool("a", true),
               std::invalid_argument);
}

TEST(OptionsTest, LaterOccurrenceWins) {
  const auto o = parse({"--k", "1", "--k", "2"});
  EXPECT_EQ(o.get_int("k", 0), 2);
}

}  // namespace
}  // namespace refbmc
