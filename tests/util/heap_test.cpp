#include "util/heap.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/rng.hpp"

namespace refbmc {
namespace {

// Priorities live outside the heap, as in the solver.
struct ScoreTable {
  std::vector<double> score;
  bool operator()(int a, int b) const {
    if (score[static_cast<std::size_t>(a)] !=
        score[static_cast<std::size_t>(b)])
      return score[static_cast<std::size_t>(a)] >
             score[static_cast<std::size_t>(b)];
    return a < b;
  }
};

using Heap = IndexedMaxHeap<ScoreTable&>;

TEST(HeapTest, PopsInPriorityOrder) {
  ScoreTable t{{5, 1, 9, 3, 7}};
  Heap h(t);
  for (int i = 0; i < 5; ++i) h.insert(i);
  std::vector<int> order;
  while (!h.empty()) order.push_back(h.pop());
  EXPECT_EQ(order, (std::vector<int>{2, 4, 0, 3, 1}));
}

TEST(HeapTest, ContainsTracksMembership) {
  ScoreTable t{{1, 2, 3}};
  Heap h(t);
  h.insert(1);
  EXPECT_TRUE(h.contains(1));
  EXPECT_FALSE(h.contains(0));
  EXPECT_FALSE(h.contains(2));
  EXPECT_FALSE(h.contains(-1));
  EXPECT_FALSE(h.contains(99));
  h.pop();
  EXPECT_FALSE(h.contains(1));
}

TEST(HeapTest, UpdateAfterIncrease) {
  ScoreTable t{{1, 2, 3, 4}};
  Heap h(t);
  for (int i = 0; i < 4; ++i) h.insert(i);
  t.score[0] = 100;
  h.update(0);
  EXPECT_EQ(h.pop(), 0);
}

TEST(HeapTest, UpdateAfterDecrease) {
  ScoreTable t{{10, 2, 3, 4}};
  Heap h(t);
  for (int i = 0; i < 4; ++i) h.insert(i);
  t.score[0] = -1;
  h.update(0);
  EXPECT_EQ(h.pop(), 3);
  EXPECT_EQ(h.pop(), 2);
  EXPECT_EQ(h.pop(), 1);
  EXPECT_EQ(h.pop(), 0);
}

TEST(HeapTest, EraseMiddleElement) {
  ScoreTable t{{5, 1, 9, 3}};
  Heap h(t);
  for (int i = 0; i < 4; ++i) h.insert(i);
  h.erase(0);
  EXPECT_FALSE(h.contains(0));
  std::vector<int> order;
  while (!h.empty()) order.push_back(h.pop());
  EXPECT_EQ(order, (std::vector<int>{2, 3, 1}));
}

TEST(HeapTest, EraseAbsentIsNoop) {
  ScoreTable t{{1}};
  Heap h(t);
  h.insert(0);
  h.erase(7);
  EXPECT_EQ(h.size(), 1u);
}

TEST(HeapTest, RebuildAfterWholesaleScoreChange) {
  ScoreTable t{{1, 2, 3, 4, 5}};
  Heap h(t);
  for (int i = 0; i < 5; ++i) h.insert(i);
  // Invert all priorities behind the heap's back, then rebuild.
  for (auto& s : t.score) s = -s;
  h.rebuild();
  std::vector<int> order;
  while (!h.empty()) order.push_back(h.pop());
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(HeapTest, RandomizedAgainstSort) {
  Rng rng(99);
  for (int round = 0; round < 20; ++round) {
    const int n = rng.next_int(1, 60);
    ScoreTable t;
    t.score.resize(static_cast<std::size_t>(n));
    for (auto& s : t.score) s = rng.next_double();
    Heap h(t);
    std::vector<int> keys;
    for (int i = 0; i < n; ++i) {
      h.insert(i);
      keys.push_back(i);
    }
    // Random updates.
    for (int u = 0; u < n / 2; ++u) {
      const int k = rng.next_int(0, n - 1);
      t.score[static_cast<std::size_t>(k)] = rng.next_double();
      h.update(k);
    }
    std::sort(keys.begin(), keys.end(), t);
    std::vector<int> popped;
    while (!h.empty()) popped.push_back(h.pop());
    EXPECT_EQ(popped, keys) << "round " << round;
  }
}

TEST(HeapTest, InsertPopInterleaved) {
  ScoreTable t{{3, 1, 2}};
  Heap h(t);
  h.insert(1);
  h.insert(2);
  EXPECT_EQ(h.pop(), 2);
  h.insert(0);
  EXPECT_EQ(h.pop(), 0);
  EXPECT_EQ(h.pop(), 1);
  EXPECT_TRUE(h.empty());
}

}  // namespace
}  // namespace refbmc
