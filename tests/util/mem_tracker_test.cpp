// MemTracker: the race-wide footprint accounting behind --mem-ceiling.
#include "util/mem_tracker.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace refbmc {
namespace {

TEST(MemTrackerTest, TracksCurrentAndPeak) {
  MemTracker mem;
  EXPECT_EQ(mem.current(), 0u);
  EXPECT_EQ(mem.peak(), 0u);
  mem.add(1000);
  mem.add(500);
  EXPECT_EQ(mem.current(), 1500u);
  EXPECT_EQ(mem.peak(), 1500u);
  mem.sub(1200);
  EXPECT_EQ(mem.current(), 300u);
  EXPECT_EQ(mem.peak(), 1500u);  // peak is monotone
  mem.add(100);
  EXPECT_EQ(mem.peak(), 1500u);
}

TEST(MemTrackerTest, ZeroCeilingNeverBreaches) {
  MemTracker mem;
  mem.add(1u << 30);
  EXPECT_FALSE(mem.breached());
  mem.set_ceiling(0);
  EXPECT_FALSE(mem.breached());
}

TEST(MemTrackerTest, BreachesOnlyAboveTheCeiling) {
  MemTracker mem(1024);
  EXPECT_EQ(mem.ceiling(), 1024u);
  mem.add(1024);
  EXPECT_FALSE(mem.breached());  // at the ceiling is still fine
  mem.add(1);
  EXPECT_TRUE(mem.breached());
  mem.sub(512);
  EXPECT_FALSE(mem.breached());  // freeing memory clears the condition
}

TEST(MemTrackerTest, ConcurrentChargesBalanceExactly) {
  MemTracker mem;
  constexpr int kThreads = 8;
  constexpr int kRounds = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kRounds; ++i) {
        mem.add(64);
        mem.sub(64);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mem.current(), 0u);
  EXPECT_GE(mem.peak(), 64u);
  EXPECT_LE(mem.peak(), 64u * kThreads);
}

}  // namespace
}  // namespace refbmc
