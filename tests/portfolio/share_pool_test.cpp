// SharedClausePool / PoolEndpoint unit tests: ring semantics, the
// export/import balance, the soundness filter (unmapped variables), the
// parked-clause retry, and the cooperative close epoch.  All
// single-threaded and deterministic — the pool's job is to make the
// multi-threaded case boring.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "portfolio/clause_pool.hpp"

namespace refbmc::portfolio {
namespace {

using sat::Lit;
using sat::Var;

Lit pos(Var v) { return Lit::make(v); }
Lit neg(Var v) { return Lit::make(v, true); }

/// Identity tape->solver map over n variables.
std::vector<Var> identity_map(int n) {
  std::vector<Var> m(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) m[static_cast<std::size_t>(i)] = i;
  return m;
}

/// std::span has no initializer_list constructor until C++26; these
/// wrappers keep the call sites readable.
void publish(SharedClausePool& pool, std::initializer_list<Lit> lits,
             std::uint32_t lbd, int producer) {
  const std::vector<Lit> v(lits);
  pool.publish(v, lbd, producer);
}
void export_clause(PoolEndpoint& e, std::initializer_list<Lit> lits,
                   std::uint32_t lbd) {
  const std::vector<Lit> v(lits);
  e.export_clause(v, lbd);
}

/// Collects whatever an endpoint imports.
struct Collector final : sat::ClauseExchange::ImportSink {
  std::vector<std::vector<Lit>> clauses;
  std::vector<std::uint32_t> lbds;
  void add(std::span<const Lit> lits, std::uint32_t lbd) override {
    clauses.emplace_back(lits.begin(), lits.end());
    lbds.push_back(lbd);
  }
};

TEST(SharedClausePoolTest, PublishFetchRoundTrip) {
  SharedClausePool pool(16);
  const std::vector<Lit> c1{pos(0), neg(1)};
  const std::vector<Lit> c2{neg(2)};
  pool.publish(c1, 2, /*producer=*/0);
  pool.publish(c2, 1, /*producer=*/0);
  EXPECT_EQ(pool.published(), 2u);

  std::uint64_t cursor = 0;
  std::vector<SharedClausePool::PoolClause> got;
  EXPECT_TRUE(pool.has_new(cursor));
  EXPECT_EQ(pool.fetch(cursor, /*consumer=*/1, got), 0u);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].lits, c1);
  EXPECT_EQ(got[0].lbd, 2u);
  EXPECT_EQ(got[1].lits, c2);
  EXPECT_EQ(cursor, 2u);
  EXPECT_FALSE(pool.has_new(cursor));
  // delivered() counts solver hand-offs by the endpoints, not raw
  // fetches — a bare fetch leaves it untouched.
  EXPECT_EQ(pool.delivered(), 0u);
}

TEST(SharedClausePoolTest, ProducersNeverGetTheirOwnClausesBack) {
  SharedClausePool pool(8);
  publish(pool, {pos(0)}, 1, /*producer=*/0);
  publish(pool, {pos(1)}, 1, /*producer=*/1);

  std::uint64_t cursor = 0;
  std::vector<SharedClausePool::PoolClause> got;
  pool.fetch(cursor, /*consumer=*/0, got);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].producer, 1);
}

TEST(SharedClausePoolTest, RingOverwritesOldestAndReportsTheLoss) {
  SharedClausePool pool(2);
  publish(pool, {pos(0)}, 1, 0);
  publish(pool, {pos(1)}, 1, 0);
  publish(pool, {pos(2)}, 1, 0);  // evicts pos(0)

  std::uint64_t cursor = 0;
  std::vector<SharedClausePool::PoolClause> got;
  const std::uint64_t lost = pool.fetch(cursor, /*consumer=*/1, got);
  EXPECT_EQ(lost, 1u);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].lits, std::vector<Lit>{pos(1)});
  EXPECT_EQ(got[1].lits, std::vector<Lit>{pos(2)});
  EXPECT_EQ(pool.overwritten(), 1u);
}

TEST(SharedClausePoolTest, CloseStopsPublishing) {
  SharedClausePool pool(8);
  publish(pool, {pos(0)}, 1, 0);
  pool.close();
  EXPECT_TRUE(pool.closed());
  publish(pool, {pos(1)}, 1, 0);  // dropped: the race is decided
  EXPECT_EQ(pool.published(), 1u);
}

TEST(PoolEndpointTest, ExportedAndImportedCountersBalance) {
  // Two endpoints over the same 4-variable tape: everything A exports is
  // exactly what B imports, and vice versa — the balance invariant the
  // 2-thread shard test checks end to end.
  SharedClausePool pool(64);
  PoolEndpoint a(pool, /*producer=*/0);
  PoolEndpoint b(pool, /*producer=*/1);
  a.sync_vars(identity_map(4));
  b.sync_vars(identity_map(4));

  export_clause(a, {pos(0), neg(1)}, 2);
  export_clause(a, {pos(2)}, 1);
  export_clause(b, {neg(3)}, 1);

  Collector into_b;
  b.import_clauses(into_b);
  Collector into_a;
  a.import_clauses(into_a);

  EXPECT_EQ(a.published(), 2u);
  EXPECT_EQ(b.published(), 1u);
  EXPECT_EQ(b.imported(), 2u);
  EXPECT_EQ(a.imported(), 1u);
  EXPECT_EQ(pool.published(), a.published() + b.published());
  EXPECT_EQ(pool.delivered(), a.imported() + b.imported());
  ASSERT_EQ(into_b.clauses.size(), 2u);
  EXPECT_EQ(into_b.clauses[0], (std::vector<Lit>{pos(0), neg(1)}));
  ASSERT_EQ(into_a.clauses.size(), 1u);
  EXPECT_EQ(into_a.clauses[0], std::vector<Lit>{neg(3)});

  // Nothing new: import again is a no-op (and has_pending is false).
  EXPECT_FALSE(a.has_pending());
  a.import_clauses(into_a);
  EXPECT_EQ(into_a.clauses.size(), 1u);
}

TEST(PoolEndpointTest, TranslatesBetweenSolverSpaces) {
  // Entrant A numbers tape vars {0,1,2} as solver vars {5,6,7}; entrant B
  // as {1,0,3}.  A clause crosses the pool in tape space and lands in
  // B's numbering.
  SharedClausePool pool(8);
  PoolEndpoint a(pool, 0);
  PoolEndpoint b(pool, 1);
  a.sync_vars({5, 6, 7});
  b.sync_vars({1, 0, 3});

  export_clause(a, {Lit::make(5), Lit::make(7, true)}, 2);  // tape: 0, ~2
  Collector into_b;
  b.import_clauses(into_b);
  ASSERT_EQ(into_b.clauses.size(), 1u);
  EXPECT_EQ(into_b.clauses[0],
            (std::vector<Lit>{Lit::make(1), Lit::make(3, true)}));
}

TEST(PoolEndpointTest, RefusesClausesOverUnmappedVariables) {
  // Solver var 9 has no tape counterpart (an activation guard): the
  // clause is not implied by the shared formula and must not cross.
  SharedClausePool pool(8);
  PoolEndpoint a(pool, 0);
  a.sync_vars({0, 1, 2});
  export_clause(a, {pos(0), Lit::make(9, true)}, 2);
  EXPECT_EQ(a.published(), 0u);
  EXPECT_EQ(a.rejected_unmapped(), 1u);
  EXPECT_EQ(pool.published(), 0u);
}

TEST(PoolEndpointTest, ParksClausesAheadOfReplayAndRetries) {
  // B has replayed only 2 tape vars; a clause over tape var 3 parks until
  // sync_vars extends the map, then imports on the next drain.
  SharedClausePool pool(8);
  PoolEndpoint a(pool, 0);
  PoolEndpoint b(pool, 1);
  a.sync_vars(identity_map(5));
  b.sync_vars(identity_map(2));

  export_clause(a, {pos(1), neg(3)}, 2);
  Collector into_b;
  b.import_clauses(into_b);
  EXPECT_TRUE(into_b.clauses.empty());
  EXPECT_FALSE(b.has_pending());          // parked, and quiet until a
                                          // replay grows the map
  EXPECT_EQ(pool.delivered(), 0u);        // ...and not counted delivered

  b.sync_vars(identity_map(4));
  EXPECT_TRUE(b.has_pending());           // now a retry can succeed
  b.import_clauses(into_b);
  ASSERT_EQ(into_b.clauses.size(), 1u);
  EXPECT_EQ(into_b.clauses[0], (std::vector<Lit>{pos(1), neg(3)}));
  EXPECT_EQ(b.imported(), 1u);
  EXPECT_EQ(pool.delivered(), 1u);
}

TEST(PoolEndpointTest, RebindRewindsTheCursorForAFreshSolver) {
  // Scratch discipline: depth k+1's fresh solver re-imports the ring's
  // live lemmas from the start through the same endpoint.
  SharedClausePool pool(8);
  PoolEndpoint a(pool, 0);
  PoolEndpoint b(pool, 1);
  a.sync_vars(identity_map(3));
  export_clause(a, {pos(0), pos(1)}, 2);

  b.sync_vars(identity_map(3));
  Collector first;
  b.import_clauses(first);
  ASSERT_EQ(first.clauses.size(), 1u);

  b.rebind();  // new solver, same tape
  b.sync_vars(identity_map(3));
  Collector second;
  b.import_clauses(second);
  ASSERT_EQ(second.clauses.size(), 1u);
  EXPECT_EQ(second.clauses[0], first.clauses[0]);
}

TEST(PoolEndpointTest, RebindRewindIsNotCountedAsOverwriteLoss) {
  // Ring of 2: A publishes c0, c1 (B reads both), then c2 evicts c0.
  // B's post-rebind fetch rewinds past the evicted slot deliberately —
  // only a consumer that never saw c0 counts it as lost.
  SharedClausePool pool(2);
  PoolEndpoint a(pool, 0);
  PoolEndpoint b(pool, 1);
  a.sync_vars(identity_map(4));
  b.sync_vars(identity_map(4));

  export_clause(a, {pos(0)}, 1);
  export_clause(a, {pos(1)}, 1);
  Collector got;
  b.import_clauses(got);
  ASSERT_EQ(got.clauses.size(), 2u);

  export_clause(a, {pos(2)}, 1);  // evicts the pos(0) entry
  b.rebind();
  b.sync_vars(identity_map(4));
  b.import_clauses(got);  // re-reads pos(1), reads pos(2)
  ASSERT_EQ(got.clauses.size(), 4u);
  EXPECT_EQ(pool.overwritten(), 0u);  // b saw every entry at least once

  // A genuinely late consumer does count the evicted entry as lost.
  PoolEndpoint late(pool, 2);
  late.sync_vars(identity_map(4));
  late.import_clauses(got);
  EXPECT_EQ(pool.overwritten(), 1u);
}

TEST(PoolEndpointTest, ParkedClausesAreNotRetriedUntilTheMapGrows) {
  // A parked clause can only become translatable after a replay extends
  // the map; until then the endpoint must not report pending work (the
  // per-restart import fast path stays a single pool peek).
  SharedClausePool pool(8);
  PoolEndpoint a(pool, 0);
  PoolEndpoint b(pool, 1);
  a.sync_vars(identity_map(5));
  b.sync_vars(identity_map(2));

  export_clause(a, {pos(0), neg(4)}, 2);
  Collector into_b;
  b.import_clauses(into_b);          // fetches, parks
  EXPECT_TRUE(into_b.clauses.empty());
  EXPECT_FALSE(b.has_pending());     // same map: nothing can change
  b.sync_vars(identity_map(5));
  EXPECT_TRUE(b.has_pending());      // map grew: retry is worthwhile now
  b.import_clauses(into_b);
  ASSERT_EQ(into_b.clauses.size(), 1u);
}

}  // namespace
}  // namespace refbmc::portfolio
