// Sharded batch mode: every job gets exactly one result slot, verdicts
// are independent of worker count and stealing, and multi-property
// netlists expand into one job per property.
#include <gtest/gtest.h>

#include "model/benchgen.hpp"
#include "portfolio/scheduler.hpp"

namespace refbmc::portfolio {
namespace {

using bmc::BmcResult;

std::vector<Job> suite_jobs(const std::vector<model::Benchmark>& suite) {
  std::vector<Job> jobs;
  for (const auto& bm : suite) {
    bmc::EngineConfig engine;
    engine.policy = bmc::OrderingPolicy::Dynamic;
    engine.max_depth = bm.suggested_bound;
    for (Job& job : shard_properties(bm.net, engine, bm.name))
      jobs.push_back(std::move(job));
  }
  return jobs;
}

TEST(PortfolioShardTest, EveryJobGetsAResultInSubmissionOrder) {
  const auto suite = model::quick_suite();
  const std::vector<Job> jobs = suite_jobs(suite);
  const PortfolioScheduler scheduler(4, /*base_seed=*/5);
  const BatchReport report = scheduler.run_batch(jobs);

  ASSERT_EQ(report.results.size(), jobs.size());
  EXPECT_EQ(report.num_workers, 4);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(report.results[i].job_index, i);
    EXPECT_EQ(report.results[i].name, jobs[i].name);
    EXPECT_GE(report.results[i].worker_id, 0);
    EXPECT_LT(report.results[i].worker_id, 4);
    EXPECT_EQ(report.results[i].result.status ==
                  BmcResult::Status::CounterexampleFound,
              suite[i].expect_fail)
        << jobs[i].name;
  }
  EXPECT_EQ(report.counterexamples() + report.bounds_reached() +
                report.resource_limits(),
            jobs.size());
  EXPECT_EQ(report.resource_limits(), 0u);
}

TEST(PortfolioShardTest, VerdictsIndependentOfWorkerCount) {
  const auto suite = model::quick_suite();
  const std::vector<Job> jobs = suite_jobs(suite);
  const BatchReport one = PortfolioScheduler(1).run_batch(jobs);
  const BatchReport four = PortfolioScheduler(4).run_batch(jobs);

  ASSERT_EQ(one.results.size(), four.results.size());
  EXPECT_EQ(one.num_workers, 1);
  EXPECT_EQ(one.steals, 0u);  // nobody to steal from
  for (std::size_t i = 0; i < one.results.size(); ++i) {
    EXPECT_EQ(one.results[i].result.status, four.results[i].result.status);
    EXPECT_EQ(one.results[i].result.counterexample_depth,
              four.results[i].result.counterexample_depth);
    EXPECT_EQ(one.results[i].result.last_completed_depth,
              four.results[i].result.last_completed_depth);
  }
}

TEST(PortfolioShardTest, MultiPropertyNetlistShardsPerProperty) {
  // One netlist, three properties with three different verdicts.
  model::Benchmark bm = model::counter_safe(4, 10, 15);
  model::Netlist net = bm.net;  // property 0: passing (count never 15)
  const model::Signal bit0 = model::Signal::make(net.latches()[0]);
  net.add_bad(bit0, "bit0_high");        // counter reaches 1 at depth 1
  net.add_bad(!bit0, "bit0_low");        // true in the initial state
  const auto& bads = net.bad_properties();
  ASSERT_EQ(bads.size(), 3u);

  bmc::EngineConfig engine;
  engine.max_depth = 6;
  const std::vector<Job> jobs = shard_properties(net, engine, "ctr");
  ASSERT_EQ(jobs.size(), 3u);
  EXPECT_EQ(jobs[1].name, "ctr/bit0_high");

  const BatchReport report = PortfolioScheduler(3).run_batch(jobs);
  ASSERT_EQ(report.results.size(), 3u);
  EXPECT_EQ(report.results[0].result.status, BmcResult::Status::BoundReached);
  EXPECT_EQ(report.results[1].result.status,
            BmcResult::Status::CounterexampleFound);
  EXPECT_EQ(report.results[1].result.counterexample_depth, 1);
  EXPECT_EQ(report.results[2].result.status,
            BmcResult::Status::CounterexampleFound);
  EXPECT_EQ(report.results[2].result.counterexample_depth, 0);
}

TEST(PortfolioShardTest, BudgetCutsTheBatchNotTheReport) {
  // Heavy jobs with a tiny wall-clock budget: the batch ends quickly,
  // every job still reports, and the cut jobs carry ResourceLimit.
  std::vector<model::Benchmark> heavy;
  for (int i = 0; i < 8; ++i) {
    model::Benchmark bm = model::accumulator_reach(16, 2, 30000);
    bm = model::with_distractor(std::move(bm), 16,
                                static_cast<std::uint64_t>(i + 1));
    bm.suggested_bound = 100000;
    heavy.push_back(std::move(bm));
  }
  const std::vector<Job> jobs = suite_jobs(heavy);
  const BatchReport report = PortfolioScheduler(4).run_batch(jobs, 0.2);

  ASSERT_EQ(report.results.size(), jobs.size());
  EXPECT_LT(report.wall_time_sec, 30.0);  // generous CI margin
  EXPECT_GT(report.resource_limits(), 0u);
  for (const auto& r : report.results)
    EXPECT_EQ(r.result.status, BmcResult::Status::ResourceLimit);
}

TEST(PortfolioShardTest, ExternalStopCancelsTheBatch) {
  std::vector<model::Benchmark> heavy;
  for (int i = 0; i < 4; ++i) {
    model::Benchmark bm = model::accumulator_reach(16, 2, 30000);
    bm.suggested_bound = 100000;
    heavy.push_back(std::move(bm));
  }
  const std::vector<Job> jobs = suite_jobs(heavy);
  std::atomic<bool> external{true};  // cancelled before it even starts
  const BatchReport report =
      PortfolioScheduler(2).run_batch(jobs, -1.0, &external);
  ASSERT_EQ(report.results.size(), jobs.size());
  for (const auto& r : report.results)
    EXPECT_EQ(r.result.status, BmcResult::Status::ResourceLimit);
}

TEST(PortfolioShardTest, EmptyBatchIsANoop) {
  const BatchReport report = PortfolioScheduler(4).run_batch({});
  EXPECT_TRUE(report.results.empty());
  EXPECT_EQ(report.num_workers, 0);
}

}  // namespace
}  // namespace refbmc::portfolio
