// Ordering exchange across the portfolio, end to end.
//
//   * soundness: a rank-sharing race never changes a verdict or a cex
//     depth — shared scores only re-order decisions;
//   * liveness: on multi-depth UNSAT instances the core-ranking entrants
//     actually publish into the race's SharedRankSource, and the race /
//     batch counters balance with the per-depth engine stats;
//   * determinism: with rank sharing (and lemma sharing) disabled the
//     scheduler is bit-identical to the exchange-free scheduler — a
//     single-policy race matches a solo run of the same job stat for
//     stat, including the decision counts the refined ordering drives.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "model/benchgen.hpp"
#include "portfolio/scheduler.hpp"

namespace refbmc::portfolio {
namespace {

using bmc::BmcResult;
using bmc::OrderingPolicy;

bmc::EngineConfig engine_for(const model::Benchmark& bm) {
  bmc::EngineConfig cfg;
  cfg.max_depth = bm.suggested_bound;
  return cfg;
}

SharingConfig exchange_off() {
  SharingConfig cfg;
  cfg.enabled = false;
  cfg.rank = false;
  return cfg;
}

/// Tests that assert the shared source EXISTS must force it past the
/// pays-off demotion, or they would silently skip on single-core CI.
SharingConfig rank_forced() {
  SharingConfig cfg;
  cfg.rank_force = true;
  return cfg;
}

TEST(RankRaceTest, RankSharingRaceVerdictsMatchTheSuite) {
  // The race-is-a-pure-accelerator invariant must survive ordering
  // exchange: same verdict, same cex depth, on every quick-suite row.
  const PortfolioScheduler scheduler(4, /*base_seed=*/21, rank_forced());
  ASSERT_TRUE(scheduler.sharing().rank);
  for (const auto& bm : model::quick_suite()) {
    const RaceResult race = scheduler.race(bm.net, 0, engine_for(bm));
    ASSERT_TRUE(race.has_winner()) << bm.name;
    EXPECT_TRUE(race.rank_sharing) << bm.name;
    EXPECT_EQ(race.status() == BmcResult::Status::CounterexampleFound,
              bm.expect_fail)
        << bm.name;
    if (bm.expect_fail) {
      Job job;
      job.net = &bm.net;
      job.name = bm.name;
      job.config = engine_for(bm);
      job.config.policy = OrderingPolicy::Baseline;
      EXPECT_EQ(race.winning().result.counterexample_depth,
                run_job(job).result.counterexample_depth)
          << bm.name;
    }
  }
}

TEST(RankRaceTest, CoreRankingEntrantsActuallyPublish) {
  // A safe instance every entrant grinds through depth by depth: the
  // core-ranking policies publish one core per UNSAT depth they finish
  // (publishing is unconditional on the other threads' progress).
  const model::Benchmark bm = model::needle(6, 6, 40, 50);
  const PortfolioScheduler scheduler(2, /*base_seed=*/7, rank_forced());
  const RaceResult race =
      scheduler.race(bm.net, 0, engine_for(bm),
                     {OrderingPolicy::Static, OrderingPolicy::Dynamic});
  ASSERT_TRUE(race.has_winner());
  EXPECT_TRUE(race.rank_sharing);
  EXPECT_GT(race.ranks_published, 0u);
  // Engine-level accounting rides in the per-depth stats; the source
  // counts publish calls, so the sums line up exactly.
  std::uint64_t published = 0, refreshes = 0;
  for (const auto& entrant : race.entrants)
    for (const auto& d : entrant.result.per_depth) {
      published += d.ranks_published;
      refreshes += d.rank_refreshes;
    }
  EXPECT_EQ(published, race.ranks_published);
  EXPECT_EQ(refreshes, race.rank_refreshes);
  // The accumulation advanced at least once (epoch counts distinct score
  // states, bounded by the publish count).
  EXPECT_GT(race.rank_epoch, 0u);
  EXPECT_LE(race.rank_epoch, race.ranks_published);
}

TEST(RankRaceTest, RankSharingOffIsBitIdenticalToASoloRun) {
  // The PR-4-head determinism contract: with every exchange disabled, a
  // single-policy race (no rival, no cancellation) and a solo run of the
  // same job agree on every counter of every depth — in particular the
  // decision counts the refined ordering produces.
  const PortfolioScheduler scheduler(1, /*base_seed=*/5, exchange_off());
  for (const auto policy :
       {OrderingPolicy::Static, OrderingPolicy::Dynamic}) {
    const model::Benchmark bm = model::arbiter_safe(5);
    const bmc::EngineConfig engine = engine_for(bm);

    const RaceResult race = scheduler.race(bm.net, 0, engine, {policy});
    ASSERT_TRUE(race.has_winner());
    EXPECT_FALSE(race.rank_sharing);
    EXPECT_EQ(race.ranks_published, 0u);
    EXPECT_EQ(race.rank_refreshes, 0u);

    Job job;
    job.net = &bm.net;
    job.name = bm.name;
    job.config = engine;
    job.config.policy = policy;
    const JobResult solo = run_job(job);

    const auto& raced = race.winning().result;
    ASSERT_EQ(raced.status, solo.result.status);
    ASSERT_EQ(raced.per_depth.size(), solo.result.per_depth.size());
    for (std::size_t k = 0; k < raced.per_depth.size(); ++k) {
      const auto& r = raced.per_depth[k];
      const auto& s = solo.result.per_depth[k];
      EXPECT_EQ(r.decisions, s.decisions) << "depth " << k;
      EXPECT_EQ(r.propagations, s.propagations) << "depth " << k;
      EXPECT_EQ(r.conflicts, s.conflicts) << "depth " << k;
      // An engine-private accumulation still publishes into its own
      // LocalRankSource — that is the paper's loop, and it must look the
      // same raced or solo.
      EXPECT_EQ(r.ranks_published, s.ranks_published) << "depth " << k;
      EXPECT_EQ(r.rank_epoch, s.rank_epoch) << "depth " << k;
      // Mid-solve refreshes require a shared source.
      EXPECT_EQ(r.rank_refreshes, 0u);
      EXPECT_EQ(s.rank_refreshes, 0u);
    }
  }
}

TEST(RankRaceTest, ShardTwinsShareOneRankSource) {
  // Two copies of the same dynamic-policy job form one shard group with
  // a shared rank accumulation; both publish into it and the report
  // totals balance with the per-depth stats.
  const model::Benchmark bm = model::needle(6, 6, 40, 50);
  bmc::EngineConfig engine = engine_for(bm);
  engine.policy = OrderingPolicy::Dynamic;

  std::vector<Job> jobs(2);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].net = &bm.net;
    jobs[i].bad_index = 0;
    jobs[i].name = "twin/" + std::to_string(i);
    jobs[i].config = engine;
  }

  const PortfolioScheduler scheduler(2, /*base_seed=*/19, rank_forced());
  const BatchReport report = scheduler.run_batch(jobs);
  ASSERT_EQ(report.results.size(), 2u);
  for (const auto& r : report.results)
    EXPECT_EQ(r.result.status, BmcResult::Status::BoundReached) << r.name;

  std::uint64_t published = 0;
  for (const auto& r : report.results)
    for (const auto& d : r.result.per_depth) published += d.ranks_published;
  EXPECT_GT(report.ranks_published, 0u);
  EXPECT_EQ(published, report.ranks_published);
}

TEST(RankRaceTest, LoneConsumerLineupDemotesToPrivateRanking) {
  // {Static, Evsids}: one rank consumer, nobody to exchange with.  The
  // scheduler must NOT materialise a shared source (rank on, force off)
  // — and the lone consumer still runs the paper's loop through its
  // engine-private LocalRankSource, so its per-depth publish counters
  // stay alive.
  const model::Benchmark bm = model::needle(6, 6, 40, 50);
  const PortfolioScheduler scheduler(2, /*base_seed=*/11);  // defaults
  ASSERT_TRUE(scheduler.sharing().rank);
  const RaceResult race =
      scheduler.race(bm.net, 0, engine_for(bm),
                     {OrderingPolicy::Static, OrderingPolicy::Evsids});
  ASSERT_TRUE(race.has_winner());
  EXPECT_FALSE(race.rank_sharing);
  EXPECT_EQ(race.ranks_published, 0u);
  EXPECT_EQ(race.rank_refreshes, 0u);
  // entrants[0] is Static: its private accumulation published one core
  // per UNSAT depth it completed (unless it was cancelled before any).
  std::uint64_t static_published = 0;
  for (const auto& d : race.entrants[0].result.per_depth)
    static_published += d.ranks_published;
  if (race.winner == 0) EXPECT_GT(static_published, 0u);
}

TEST(RankRaceTest, DistinctFormulasDoNotShareRanks) {
  // Different properties of one netlist are different formulas: no shard
  // group forms, no shared source, report counters stay zero.
  const model::Benchmark bm = model::arbiter_buggy(4);
  ASSERT_GE(bm.net.bad_properties().size(), 1u);
  const std::vector<Job> jobs =
      shard_properties(bm.net, engine_for(bm), "arb");
  const PortfolioScheduler scheduler(2, /*base_seed=*/23);
  const BatchReport report = scheduler.run_batch(jobs);
  EXPECT_EQ(report.ranks_published, 0u);
  EXPECT_EQ(report.rank_refreshes, 0u);
}

TEST(RankRaceTest, MixedModeRaceSharesRanksSoundly) {
  // Incremental entrants interleave activation guards into their CNF
  // numbering; model-node-space merging plus per-entrant origin-map
  // projection must keep verdicts objective anyway.
  const model::Benchmark bm = model::lfsr_hit(8, 9);
  bmc::EngineConfig engine = engine_for(bm);
  engine.incremental = true;
  const PortfolioScheduler scheduler(4, /*base_seed=*/29);
  const RaceResult race = scheduler.race(bm.net, 0, engine);
  ASSERT_TRUE(race.has_winner());
  EXPECT_EQ(race.status(), BmcResult::Status::CounterexampleFound);

  Job job;
  job.net = &bm.net;
  job.name = bm.name;
  job.config = engine;
  job.config.policy = OrderingPolicy::Dynamic;
  EXPECT_EQ(race.winning().result.counterexample_depth,
            run_job(job).result.counterexample_depth);
}

}  // namespace
}  // namespace refbmc::portfolio
