// Incremental sessions inside a portfolio race (PR 8): every entrant
// keeps one persistent solver fed by preprocessed per-depth deltas with
// the assumption savepoint on, while lemma sharing and rank sharing
// churn underneath — verdicts, cex depths and extracted traces must
// stay indistinguishable from the suite expectation across the matrix.
#include <gtest/gtest.h>

#include "bmc/trace.hpp"
#include "model/benchgen.hpp"
#include "portfolio/scheduler.hpp"

namespace refbmc::portfolio {
namespace {

using bmc::BmcResult;
using bmc::OrderingPolicy;

bmc::EngineConfig incremental_engine(const model::Benchmark& bm,
                                     bool preprocess) {
  bmc::EngineConfig cfg;
  cfg.max_depth = bm.suggested_bound;
  cfg.incremental = true;
  cfg.preprocess.enabled = preprocess;
  cfg.solver.assumption_savepoint = true;
  if (preprocess) cfg.solver.inprocess.vivify_interval = 4;
  return cfg;
}

SharingConfig sharing(bool lemmas, bool rank) {
  SharingConfig cfg;
  cfg.enabled = lemmas;
  cfg.rank = rank;
  return cfg;
}

TEST(IncrementalRaceTest, VerdictsMatchAcrossSharingAndPreprocessMatrix) {
  // share × rank × preprocess with incremental sessions — eight
  // configurations per model (Shtrichman is scratch-only, so the racing
  // policy set stays within the incremental-capable ones).
  for (const auto& bm : model::quick_suite()) {
    int expected_cex_depth = -2;  // sentinel: not yet observed
    for (const bool lemmas : {false, true}) {
      for (const bool rank : {false, true}) {
        const PortfolioScheduler scheduler(4, /*base_seed=*/31,
                                           sharing(lemmas, rank));
        for (const bool preprocess : {false, true}) {
          const RaceResult race = scheduler.race(
              bm.net, 0, incremental_engine(bm, preprocess),
              {OrderingPolicy::Baseline, OrderingPolicy::Dynamic});
          ASSERT_TRUE(race.has_winner())
              << bm.name << " lemmas=" << lemmas << " rank=" << rank
              << " preprocess=" << preprocess;
          EXPECT_EQ(
              race.status() == BmcResult::Status::CounterexampleFound,
              bm.expect_fail)
              << bm.name;
          if (!bm.expect_fail) continue;
          const int depth = race.winning().result.counterexample_depth;
          if (expected_cex_depth == -2) expected_cex_depth = depth;
          EXPECT_EQ(depth, expected_cex_depth) << bm.name;
        }
      }
    }
  }
}

TEST(IncrementalRaceTest, PreprocessedIncrementalTracesReplay) {
  // The winning entrant solved delta-simplified frames under activation
  // guards; its trace must still replay on the concrete simulator (the
  // cumulative witness stack is the only way that holds).
  const model::Benchmark models[] = {
      model::counter_reach(4, 7, true),
      model::with_distractor(model::counter_reach(3, 5, true), 3, 1)};
  for (const auto& bm : models) {
    const PortfolioScheduler scheduler(4, /*base_seed=*/7);
    const RaceResult race =
        scheduler.race(bm.net, 0, incremental_engine(bm, true));
    ASSERT_TRUE(race.has_winner()) << bm.name;
    const BmcResult& r = race.winning().result;
    ASSERT_EQ(r.status, BmcResult::Status::CounterexampleFound) << bm.name;
    ASSERT_TRUE(r.counterexample.has_value()) << bm.name;
    EXPECT_TRUE(bmc::validate_trace(bm.net, *r.counterexample, 0)) << bm.name;
  }
}

}  // namespace
}  // namespace refbmc::portfolio
