// Observability through the full stack: a traced race must come back
// with one track per entrant, per-depth phase spans on each of them, the
// job lifecycle on the scheduler's axis, and a cancel latency consistent
// with the trace — all without perturbing verdicts.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "model/benchgen.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "portfolio/scheduler.hpp"

namespace refbmc::portfolio {
namespace {

using obs::EventKind;
using obs::TraceDump;
using obs::TrackDump;

std::size_t count_kind(const TrackDump& track, EventKind kind) {
  std::size_t n = 0;
  for (const auto& e : track.events) n += e.kind == kind ? 1 : 0;
  return n;
}

class TraceRaceTest : public ::testing::Test {
 protected:
  void TearDown() override {
    if (obs::trace_active()) obs::trace_end();
    obs::metrics_enable(false);
  }
};

TEST_F(TraceRaceTest, TracedRaceYieldsOneTrackPerEntrant) {
  const auto suite = model::quick_suite();
  const auto& bm = suite.front();
  bmc::EngineConfig engine;
  engine.max_depth = bm.suggested_bound;

  obs::TraceConfig cfg;
  cfg.buffer_events = 16384;
  ASSERT_TRUE(obs::trace_begin(cfg));
  obs::trace_set_thread_track("driver");
  obs::metrics_enable(true);
  obs::metrics().reset();

  const PortfolioScheduler scheduler(4, /*base_seed=*/7);
  const auto policies = default_race_policies();
  const RaceResult race = scheduler.race(bm.net, 0, engine, policies);
  const TraceDump dump = obs::trace_end();
  obs::metrics_enable(false);

  ASSERT_TRUE(race.has_winner());

  // One track per entrant, named after its policy, plus the driver's.
  ASSERT_EQ(dump.tracks.size(), policies.size() + 1);
  const TrackDump* driver = nullptr;
  std::vector<const TrackDump*> entrants;
  for (const TrackDump& t : dump.tracks) {
    if (t.name == "driver")
      driver = &t;
    else
      entrants.push_back(&t);
  }
  ASSERT_NE(driver, nullptr);
  ASSERT_EQ(entrants.size(), policies.size());
  for (const auto policy : policies) {
    bool found = false;
    for (const TrackDump* t : entrants) found |= t->name == to_string(policy);
    EXPECT_TRUE(found) << "no track for " << to_string(policy);
  }

  // The driver submitted every entrant; each entrant ran its lifecycle.
  EXPECT_EQ(count_kind(*driver, EventKind::JobSubmit), policies.size());
  std::size_t verdicts = 0, cancels = 0;
  for (const TrackDump* t : entrants) {
    EXPECT_EQ(count_kind(*t, EventKind::JobStart), 1u) << t->name;
    EXPECT_EQ(count_kind(*t, EventKind::JobStop), 1u) << t->name;
    verdicts += count_kind(*t, EventKind::JobVerdict);
    cancels += count_kind(*t, EventKind::CancelRequest);
  }
  EXPECT_EQ(verdicts, 1u);
  EXPECT_EQ(cancels, 1u);

  // The winner's track carries the per-depth phase spans: every depth it
  // completed shows encode and solve (simplify only where the encoder
  // actually folded something), wrapped by a depth span.
  const TrackDump* winner_track = nullptr;
  const std::string winner_name = to_string(race.winning().policy);
  for (const TrackDump* t : entrants)
    if (t->name == winner_name) winner_track = t;
  ASSERT_NE(winner_track, nullptr);
  const std::size_t winner_depths =
      race.winning().result.per_depth.size();
  EXPECT_EQ(count_kind(*winner_track, EventKind::SpanDepth), winner_depths);
  EXPECT_EQ(count_kind(*winner_track, EventKind::SpanEncode), winner_depths);
  EXPECT_EQ(count_kind(*winner_track, EventKind::SpanSolve), winner_depths);

  // Encode-once: tape_encode spans appear exactly once per frame,
  // race-wide (frame 0..max depth reached by anybody).
  std::size_t tape_spans = 0;
  int max_depth_reached = 0;
  for (const TrackDump& t : dump.tracks) {
    tape_spans += count_kind(t, EventKind::TapeEncode);
    for (const auto& e : t.events)
      if (e.depth > max_depth_reached) max_depth_reached = e.depth;
  }
  EXPECT_EQ(tape_spans, race.frames_encoded);
  EXPECT_GE(max_depth_reached, 0);

  // Metrics rode along: one depth observation per completed depth of
  // every entrant.
  std::uint64_t total_depths = 0;
  for (const auto& entrant : race.entrants)
    total_depths += entrant.result.per_depth.size();
  EXPECT_EQ(obs::metrics().counter("bmc.depths").value(), total_depths);
  EXPECT_EQ(obs::metrics().histogram("bmc.solve_us").count(), total_depths);
}

TEST_F(TraceRaceTest, PhaseTimesLandInDepthStats) {
  // The DepthStats phase split must be filled whether or not tracing is
  // on — it feeds BENCH json and write_depth_stats directly.
  const auto suite = model::quick_suite();
  const auto& bm = suite.back();
  bmc::EngineConfig engine;
  engine.max_depth = bm.suggested_bound;
  const PortfolioScheduler scheduler(2, /*base_seed=*/3);
  const RaceResult race = scheduler.race(bm.net, 0, engine);
  ASSERT_TRUE(race.has_winner());
  std::uint64_t encode_total = 0, solve_total = 0;
  for (const auto& d : race.winning().result.per_depth) {
    encode_total += d.encode_us;
    solve_total += d.solve_us;
    // solve_us is the wall clock around solver.solve(), so it bounds the
    // solver's internally-measured time_sec from above (modulo rounding).
    EXPECT_GE(static_cast<double>(d.solve_us) / 1e6 + 0.005, d.time_sec)
        << "depth " << d.depth;
  }
  // Summed across all completed depths the split cannot be all zeros —
  // some depth took at least a microsecond to prepare or solve.
  EXPECT_GT(encode_total + solve_total, 0u);
}

TEST_F(TraceRaceTest, CancelLatencyReported) {
  const auto suite = model::quick_suite();
  const auto& bm = suite.front();
  bmc::EngineConfig engine;
  engine.max_depth = bm.suggested_bound;
  const PortfolioScheduler scheduler(4, /*base_seed=*/7);

  // Multi-entrant race with a winner: latency is defined (>= 0 always;
  // == 0 exactly when every loser finished before the verdict).
  const RaceResult race = scheduler.race(bm.net, 0, engine);
  ASSERT_TRUE(race.has_winner());
  EXPECT_GE(race.cancel_latency_us, 0u);
  // Bounded by the race itself (generous slack for scheduling noise).
  EXPECT_LE(static_cast<double>(race.cancel_latency_us) / 1e6,
            race.wall_time_sec + 1.0);

  // Single entrant: nobody to cancel.
  const RaceResult solo = scheduler.race(
      bm.net, 0, engine, {bmc::OrderingPolicy::Baseline});
  EXPECT_EQ(solo.cancel_latency_us, 0u);
}

TEST_F(TraceRaceTest, UntracedRaceRecordsNothing) {
  ASSERT_FALSE(obs::trace_active());
  const auto suite = model::quick_suite();
  const auto& bm = suite.front();
  bmc::EngineConfig engine;
  engine.max_depth = bm.suggested_bound;
  const PortfolioScheduler scheduler(4);
  const RaceResult race = scheduler.race(bm.net, 0, engine);
  ASSERT_TRUE(race.has_winner());
  // No session: a later begin/end pair sees an empty world, not stale
  // events from the untraced race.
  ASSERT_TRUE(obs::trace_begin());
  const TraceDump dump = obs::trace_end();
  EXPECT_EQ(dump.total_events(), 0u);
}

}  // namespace
}  // namespace refbmc::portfolio
