// The CLI-to-scheduler configuration path: policy name round-trips,
// PortfolioConfig parsing, and resolution into engine-level types.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "portfolio/scheduler.hpp"
#include "util/options.hpp"

namespace refbmc::portfolio {
namespace {

using bmc::OrderingPolicy;

Options parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Options::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(PolicyNameTest, ToStringParseRoundTrip) {
  for (const OrderingPolicy p : bmc::all_policies()) {
    const auto parsed = bmc::parse_policy(bmc::to_string(p));
    ASSERT_TRUE(parsed.has_value()) << bmc::to_string(p);
    EXPECT_EQ(*parsed, p);
  }
}

TEST(PolicyNameTest, EveryPolicyIsReachableThroughTheCli) {
  // The sweep that caught Evsids riding in without a CLI spelling: every
  // enum value must round-trip through the *full* CLI path —
  // PortfolioConfig policy names into resolve() — not just parse_policy.
  std::string csv;
  for (const OrderingPolicy p : bmc::all_policies()) {
    if (!csv.empty()) csv += ",";
    csv += bmc::to_string(p);
  }
  const PortfolioConfig cfg =
      PortfolioConfig::from_options(parse({"--policies", csv.c_str()}));
  const ResolvedPortfolio r = resolve(cfg);
  ASSERT_EQ(r.policies.size(), bmc::all_policies().size());
  for (std::size_t i = 0; i < r.policies.size(); ++i)
    EXPECT_EQ(r.policies[i], bmc::all_policies()[i]);
  // And names are unique — two policies printing alike would make the
  // round-trip ambiguous.
  for (const OrderingPolicy p : bmc::all_policies())
    for (const OrderingPolicy q : bmc::all_policies())
      if (p != q) {
        EXPECT_STRNE(bmc::to_string(p), bmc::to_string(q));
      }
}

TEST(PolicyNameTest, UnknownNamesAreRejected) {
  EXPECT_FALSE(bmc::parse_policy("").has_value());
  EXPECT_FALSE(bmc::parse_policy("vsids").has_value());
  EXPECT_FALSE(bmc::parse_policy("Static").has_value());  // case-sensitive
}

TEST(SplitCsvTest, SplitsAndDropsEmpties) {
  EXPECT_EQ(split_csv("a,b,c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split_csv("a,,b,"), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(split_csv("").empty());
  EXPECT_EQ(split_csv("solo"), (std::vector<std::string>{"solo"}));
}

TEST(PortfolioConfigTest, Defaults) {
  const PortfolioConfig cfg = PortfolioConfig::from_options(parse({}));
  EXPECT_EQ(cfg.num_threads, 4);
  EXPECT_EQ(cfg.policies,
            (std::vector<std::string>{"baseline", "static", "dynamic",
                                      "shtrichman", "evsids"}));
  EXPECT_EQ(cfg.max_depth, 20);
  EXPECT_LT(cfg.budget_sec, 0.0);
  EXPECT_FALSE(cfg.incremental);
  EXPECT_TRUE(cfg.simplify);
}

TEST(PortfolioConfigTest, ParsesEveryKnob) {
  const PortfolioConfig cfg = PortfolioConfig::from_options(
      parse({"--threads", "8", "--policies", "dynamic,static", "--depth",
             "33", "--budget", "2.5", "--seed", "9", "--incremental",
             "--simplify", "0"}));
  EXPECT_EQ(cfg.num_threads, 8);
  EXPECT_EQ(cfg.policies, (std::vector<std::string>{"dynamic", "static"}));
  EXPECT_EQ(cfg.max_depth, 33);
  EXPECT_DOUBLE_EQ(cfg.budget_sec, 2.5);
  EXPECT_EQ(cfg.seed, 9u);
  EXPECT_TRUE(cfg.incremental);
  EXPECT_FALSE(cfg.simplify);
}

TEST(PortfolioConfigTest, RejectsBadValues) {
  EXPECT_THROW(PortfolioConfig::from_options(parse({"--threads", "0"})),
               std::invalid_argument);
  EXPECT_THROW(PortfolioConfig::from_options(parse({"--policies", ","})),
               std::invalid_argument);
  EXPECT_THROW(PortfolioConfig::from_options(parse({"--seed", "-3"})),
               std::invalid_argument);
  EXPECT_THROW(PortfolioConfig::from_options(parse({"--seed", "x"})),
               std::invalid_argument);
  EXPECT_THROW(PortfolioConfig::from_options(parse({"--seed", "7abc"})),
               std::invalid_argument);
  EXPECT_THROW(PortfolioConfig::from_options(parse({"--depth", "-1"})),
               std::invalid_argument);
}

TEST(PortfolioConfigTest, SeedIsFullWidth) {
  const PortfolioConfig cfg =
      PortfolioConfig::from_options(parse({"--seed", "5000000000"}));
  EXPECT_EQ(cfg.seed, 5000000000ull);
}

TEST(ResolveTest, MapsNamesToPoliciesAndEngineKnobs) {
  PortfolioConfig cfg;
  cfg.policies = {"static", "baseline"};
  cfg.max_depth = 12;
  cfg.incremental = true;
  cfg.simplify = false;
  cfg.budget_sec = 1.5;
  cfg.num_threads = 2;
  const ResolvedPortfolio r = resolve(cfg);
  EXPECT_EQ(r.policies, (std::vector<OrderingPolicy>{
                            OrderingPolicy::Static, OrderingPolicy::Baseline}));
  EXPECT_EQ(r.engine.max_depth, 12);
  EXPECT_TRUE(r.engine.incremental);
  EXPECT_FALSE(r.engine.simplify);
  EXPECT_DOUBLE_EQ(r.engine.total_time_limit_sec, 1.5);
  EXPECT_EQ(r.num_threads, 2);
}

TEST(ResolveTest, UnknownPolicyThrows) {
  PortfolioConfig cfg;
  cfg.policies = {"dynamic", "nope"};
  EXPECT_THROW(resolve(cfg), std::invalid_argument);
}

TEST(ResolveTest, DefaultRaceLineupSkipsReplace) {
  const auto lineup = default_race_policies();
  EXPECT_EQ(lineup.size(), 5u);
  for (const OrderingPolicy p : lineup)
    EXPECT_NE(p, OrderingPolicy::Replace);
  // The EVSIDS entrant races by default.
  EXPECT_NE(std::find(lineup.begin(), lineup.end(), OrderingPolicy::Evsids),
            lineup.end());
}

TEST(ResolveTest, DecisionModeAndLbdTiersResolve) {
  PortfolioConfig cfg;
  cfg.decision = "evsids";
  cfg.glue_lbd = 3;
  cfg.tier_lbd = 8;
  const ResolvedPortfolio r = resolve(cfg);
  EXPECT_EQ(r.engine.solver.decision, sat::DecisionMode::Evsids);
  EXPECT_EQ(r.engine.solver.glue_lbd, 3);
  EXPECT_EQ(r.engine.solver.tier_lbd, 8);
}

TEST(ResolveTest, UnknownDecisionModeThrows) {
  PortfolioConfig cfg;
  cfg.decision = "vsids2";
  EXPECT_THROW(resolve(cfg), std::invalid_argument);
}

TEST(PortfolioConfigTest, ParsesDecisionAndLbdKnobs) {
  const PortfolioConfig cfg = PortfolioConfig::from_options(
      parse({"--decision", "evsids", "--glue-lbd", "3", "--tier-lbd", "9"}));
  EXPECT_EQ(cfg.decision, "evsids");
  EXPECT_EQ(cfg.glue_lbd, 3);
  EXPECT_EQ(cfg.tier_lbd, 9);
}

TEST(PortfolioConfigTest, RejectsTierBelowGlue) {
  EXPECT_THROW(PortfolioConfig::from_options(
                   parse({"--glue-lbd", "5", "--tier-lbd", "2"})),
               std::invalid_argument);
}

TEST(PortfolioConfigTest, ShareDefaultsOnAndParses) {
  const PortfolioConfig defaults = PortfolioConfig::from_options(parse({}));
  EXPECT_TRUE(defaults.share);
  EXPECT_EQ(defaults.share_lbd, 4);
  EXPECT_EQ(defaults.share_size, 2);
  EXPECT_EQ(defaults.share_cap, 4096);

  const PortfolioConfig cfg = PortfolioConfig::from_options(
      parse({"--share", "off", "--share-lbd", "6", "--share-size", "3",
             "--share-cap", "512"}));
  EXPECT_FALSE(cfg.share);
  EXPECT_EQ(cfg.share_lbd, 6);
  EXPECT_EQ(cfg.share_size, 3);
  EXPECT_EQ(cfg.share_cap, 512);
}

TEST(PortfolioConfigTest, RejectsBadShareValues) {
  EXPECT_THROW(PortfolioConfig::from_options(parse({"--share-lbd", "-1"})),
               std::invalid_argument);
  EXPECT_THROW(PortfolioConfig::from_options(parse({"--share-size", "-2"})),
               std::invalid_argument);
  EXPECT_THROW(PortfolioConfig::from_options(parse({"--share-cap", "0"})),
               std::invalid_argument);
  EXPECT_THROW(PortfolioConfig::from_options(parse({"--share", "maybe"})),
               std::invalid_argument);
}

TEST(ResolveTest, SharingKnobsResolve) {
  PortfolioConfig cfg;
  cfg.share = false;
  cfg.share_lbd = 7;
  cfg.share_size = 4;
  cfg.share_cap = 256;
  const ResolvedPortfolio r = resolve(cfg);
  EXPECT_FALSE(r.sharing.enabled);
  EXPECT_EQ(r.sharing.lbd_max, 7);
  EXPECT_EQ(r.sharing.size_max, 4);
  EXPECT_EQ(r.sharing.capacity, 256);
}

TEST(WeightingNameTest, ToStringParseRoundTrip) {
  for (const bmc::CoreWeighting w : bmc::all_core_weightings()) {
    const auto parsed = bmc::parse_core_weighting(bmc::to_string(w));
    ASSERT_TRUE(parsed.has_value()) << bmc::to_string(w);
    EXPECT_EQ(*parsed, w);
  }
  // Names are unique — two weightings printing alike would make the
  // round-trip ambiguous.
  for (const bmc::CoreWeighting w : bmc::all_core_weightings())
    for (const bmc::CoreWeighting x : bmc::all_core_weightings())
      if (w != x) {
        EXPECT_STRNE(bmc::to_string(w), bmc::to_string(x));
      }
}

TEST(WeightingNameTest, EveryWeightingIsReachableThroughTheCli) {
  // The sweep discipline of EveryPolicyIsReachableThroughTheCli, applied
  // to --core-weighting: every enum value must survive the full CLI path
  // — PortfolioConfig name into resolve() — not just parse_core_weighting.
  for (const bmc::CoreWeighting w : bmc::all_core_weightings()) {
    const PortfolioConfig cfg = PortfolioConfig::from_options(
        parse({"--core-weighting", bmc::to_string(w)}));
    EXPECT_EQ(cfg.core_weighting, bmc::to_string(w));
    const ResolvedPortfolio r = resolve(cfg);
    EXPECT_EQ(r.engine.weighting, w) << bmc::to_string(w);
  }
}

TEST(WeightingNameTest, UnknownWeightingIsRejected) {
  EXPECT_FALSE(bmc::parse_core_weighting("").has_value());
  EXPECT_FALSE(bmc::parse_core_weighting("Linear").has_value());  // case
  EXPECT_FALSE(bmc::parse_core_weighting("expdecay").has_value());
  PortfolioConfig cfg;
  cfg.core_weighting = "quadratic";
  EXPECT_THROW(resolve(cfg), std::invalid_argument);
}

TEST(PortfolioConfigTest, ShareRankDefaultIsHardwareAdaptive) {
  // Mid-solve rank refreshes only pay off when rivals actually run in
  // parallel: on a single-hardware-thread host the unflagged default is
  // off; anywhere else (including unknown = 0) it stays on.  An explicit
  // flag always wins over the probe.
  const PortfolioConfig defaults = PortfolioConfig::from_options(parse({}));
  EXPECT_EQ(defaults.share_rank, std::thread::hardware_concurrency() != 1);
  EXPECT_EQ(defaults.core_weighting, "linear");

  EXPECT_TRUE(PortfolioConfig::from_options(parse({"--share-rank", "on"}))
                  .share_rank);
  const PortfolioConfig cfg =
      PortfolioConfig::from_options(parse({"--share-rank", "off"}));
  EXPECT_FALSE(cfg.share_rank);
  EXPECT_THROW(PortfolioConfig::from_options(parse({"--share-rank", "maybe"})),
               std::invalid_argument);
}

TEST(PortfolioConfigTest, PreprocessDefaultsOnAndParses) {
  const PortfolioConfig defaults = PortfolioConfig::from_options(parse({}));
  EXPECT_TRUE(defaults.preprocess);
  EXPECT_EQ(defaults.bve_budget, 16);
  EXPECT_EQ(defaults.vivify_interval, 8);

  const PortfolioConfig cfg = PortfolioConfig::from_options(
      parse({"--preprocess", "off", "--bve-budget", "32",
             "--vivify-interval", "0"}));
  EXPECT_FALSE(cfg.preprocess);
  EXPECT_EQ(cfg.bve_budget, 32);
  EXPECT_EQ(cfg.vivify_interval, 0);

  EXPECT_THROW(PortfolioConfig::from_options(parse({"--bve-budget", "0"})),
               std::invalid_argument);
  EXPECT_THROW(
      PortfolioConfig::from_options(parse({"--vivify-interval", "-1"})),
      std::invalid_argument);
  EXPECT_THROW(PortfolioConfig::from_options(parse({"--preprocess", "maybe"})),
               std::invalid_argument);
}

TEST(ResolveTest, PreprocessKnobsResolve) {
  PortfolioConfig cfg;
  cfg.preprocess = true;
  cfg.bve_budget = 24;
  cfg.vivify_interval = 3;
  const ResolvedPortfolio on = resolve(cfg);
  EXPECT_TRUE(on.engine.preprocess.enabled);
  EXPECT_EQ(on.engine.preprocess.bve_budget, 24);
  EXPECT_EQ(on.engine.solver.inprocess.vivify_interval, 3);

  // --preprocess off must restore the pre-PR pipeline bit for bit, so it
  // also forces vivification off regardless of --vivify-interval.
  cfg.preprocess = false;
  const ResolvedPortfolio off = resolve(cfg);
  EXPECT_FALSE(off.engine.preprocess.enabled);
  EXPECT_EQ(off.engine.solver.inprocess.vivify_interval, 0);
}

TEST(ResolveTest, RankSharingKnobResolves) {
  PortfolioConfig cfg;
  cfg.share_rank = false;
  EXPECT_FALSE(resolve(cfg).sharing.rank);
  cfg.share_rank = true;
  EXPECT_TRUE(resolve(cfg).sharing.rank);
  // Lemma and rank sharing are independent switches.
  cfg.share = false;
  const ResolvedPortfolio r = resolve(cfg);
  EXPECT_FALSE(r.sharing.enabled);
  EXPECT_TRUE(r.sharing.rank);
}

}  // namespace
}  // namespace refbmc::portfolio
