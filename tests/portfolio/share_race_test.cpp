// Lemma sharing across the portfolio, end to end.
//
//   * soundness: a sharing race never changes a verdict or a cex depth —
//     imported clauses are tape-implied, so they only prune search;
//   * liveness: on conflict-heavy instances the pool counters actually
//     move, in races and in 2-worker shard groups;
//   * determinism: with sharing disabled the scheduler is bit-identical
//     to the pre-sharing scheduler — a sharing-off race entrant matches a
//     solo run of the same job stat for stat.
#include <atomic>
#include <cstdint>

#include <gtest/gtest.h>

#include "model/benchgen.hpp"
#include "portfolio/scheduler.hpp"

namespace refbmc::portfolio {
namespace {

using bmc::BmcResult;
using bmc::OrderingPolicy;

bmc::EngineConfig engine_for(const model::Benchmark& bm) {
  bmc::EngineConfig cfg;
  cfg.max_depth = bm.suggested_bound;
  return cfg;
}

SharingConfig sharing_off() {
  SharingConfig cfg;
  cfg.enabled = false;
  return cfg;
}

TEST(ShareRaceTest, SharingRaceVerdictsMatchTheSuite) {
  // The race-is-a-pure-accelerator invariant must survive clause
  // exchange: same verdict, same cex depth, on every quick-suite row.
  const PortfolioScheduler scheduler(4, /*base_seed=*/11);  // sharing on
  ASSERT_TRUE(scheduler.sharing().enabled);
  for (const auto& bm : model::quick_suite()) {
    const RaceResult race = scheduler.race(bm.net, 0, engine_for(bm));
    ASSERT_TRUE(race.has_winner()) << bm.name;
    EXPECT_TRUE(race.sharing) << bm.name;
    EXPECT_EQ(race.status() == BmcResult::Status::CounterexampleFound,
              bm.expect_fail)
        << bm.name;
    if (bm.expect_fail) {
      // cex depth is objective: the shallowest violation.
      Job job;
      job.net = &bm.net;
      job.name = bm.name;
      job.config = engine_for(bm);
      job.config.policy = OrderingPolicy::Baseline;
      EXPECT_EQ(race.winning().result.counterexample_depth,
                run_job(job).result.counterexample_depth)
          << bm.name;
    }
  }
}

TEST(ShareRaceTest, ConflictHeavyRaceActuallyExchangesClauses) {
  // A safe instance every entrant must grind through end to end: each
  // solver learns small clauses (exports are unconditional on the other
  // threads), so the pool fills regardless of scheduling.
  const model::Benchmark bm = model::needle(6, 6, 40, 50);
  const PortfolioScheduler scheduler(4, /*base_seed=*/3);
  const RaceResult race = scheduler.race(bm.net, 0, engine_for(bm));
  ASSERT_TRUE(race.has_winner());
  EXPECT_TRUE(race.sharing);
  EXPECT_GT(race.clauses_exported, 0u);
  // Entrant-level accounting rides along in the per-depth stats; the
  // solver counter counts pool acceptances, so the sums line up.
  std::uint64_t accepted = 0;
  for (const auto& entrant : race.entrants)
    for (const auto& d : entrant.result.per_depth)
      accepted += d.clauses_exported;
  EXPECT_EQ(accepted, race.clauses_exported);
}

TEST(ShareRaceTest, SharingOffRaceIsBitIdenticalToASoloRun) {
  // SharingConfig{.enabled = false} must reproduce the pre-sharing
  // scheduler exactly: a single-policy race (no rival, so no
  // cancellation) and a solo run of the same job agree on every counter
  // of every depth.
  const PortfolioScheduler scheduler(1, /*base_seed=*/5, sharing_off());
  for (const auto policy :
       {OrderingPolicy::Dynamic, OrderingPolicy::Evsids}) {
    const model::Benchmark bm = model::arbiter_safe(5);
    const bmc::EngineConfig engine = engine_for(bm);

    const RaceResult race = scheduler.race(bm.net, 0, engine, {policy});
    ASSERT_TRUE(race.has_winner());
    EXPECT_FALSE(race.sharing);
    EXPECT_EQ(race.clauses_exported, 0u);
    EXPECT_EQ(race.clauses_imported, 0u);

    Job job;
    job.net = &bm.net;
    job.name = bm.name;
    job.config = engine;
    job.config.policy = policy;
    const JobResult solo = run_job(job);

    const auto& raced = race.winning().result;
    ASSERT_EQ(raced.status, solo.result.status);
    ASSERT_EQ(raced.per_depth.size(), solo.result.per_depth.size());
    for (std::size_t k = 0; k < raced.per_depth.size(); ++k) {
      const auto& r = raced.per_depth[k];
      const auto& s = solo.result.per_depth[k];
      EXPECT_EQ(r.decisions, s.decisions) << "depth " << k;
      EXPECT_EQ(r.propagations, s.propagations) << "depth " << k;
      EXPECT_EQ(r.conflicts, s.conflicts) << "depth " << k;
      EXPECT_EQ(r.cnf_vars, s.cnf_vars) << "depth " << k;
      EXPECT_EQ(r.cnf_clauses, s.cnf_clauses) << "depth " << k;
      EXPECT_EQ(r.clauses_exported, 0u);
      EXPECT_EQ(r.clauses_imported, 0u);
      EXPECT_EQ(r.import_propagations, 0u);
    }
  }
}

TEST(ShareRaceTest, TwoWorkerShardGroupBalancesItsCounters) {
  // Two copies of the same job form one shard group sharing a pool.
  // Whatever the interleaving: the published count is bounded by what
  // the solvers offered, attachments are bounded by deliveries, and at
  // least one direction of the exchange fires (the later-finishing
  // worker imports at every depth's solve start and every restart).
  const model::Benchmark bm = model::needle(6, 6, 40, 50);
  bmc::EngineConfig engine = engine_for(bm);
  engine.policy = OrderingPolicy::Dynamic;

  std::vector<Job> jobs(2);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].net = &bm.net;
    jobs[i].bad_index = 0;
    jobs[i].name = "twin/" + std::to_string(i);
    jobs[i].config = engine;
  }

  const PortfolioScheduler scheduler(2, /*base_seed=*/9);
  const BatchReport report = scheduler.run_batch(jobs);
  ASSERT_EQ(report.results.size(), 2u);
  for (const auto& r : report.results)
    EXPECT_EQ(r.result.status, BmcResult::Status::BoundReached) << r.name;

  std::uint64_t accepted = 0, attached = 0;
  for (const auto& r : report.results)
    for (const auto& d : r.result.per_depth) {
      accepted += d.clauses_exported;
      attached += d.clauses_imported;
    }
  EXPECT_GT(report.clauses_exported, 0u);
  EXPECT_GT(report.clauses_imported, 0u);
  // The solver counter counts pool acceptances: one per publish.
  EXPECT_EQ(accepted, report.clauses_exported);
  // Delivered can exceed published: a scratch session re-imports the
  // ring's live lemmas into every depth's fresh solver (by design).  But
  // attached (solver counter) <= delivered (pool counter) always —
  // root-satisfied copies drop out between the two.
  EXPECT_LE(attached, report.clauses_imported);
}

TEST(ShareRaceTest, ShardGroupsRequireIdenticalFormulas) {
  // Different properties of one netlist are different formulas: no group
  // forms, no pool, counters stay zero — and results are untouched.
  const model::Benchmark bm = model::arbiter_buggy(4);
  ASSERT_GE(bm.net.bad_properties().size(), 1u);
  bmc::EngineConfig engine = engine_for(bm);
  const std::vector<Job> jobs = shard_properties(bm.net, engine, "arb");
  const PortfolioScheduler scheduler(2, /*base_seed=*/13);
  const BatchReport report = scheduler.run_batch(jobs);
  // Distinct (net, bad_index) pairs never share (and a singleton batch
  // has nobody to share with either way).
  EXPECT_EQ(report.clauses_exported, 0u);
  EXPECT_EQ(report.clauses_imported, 0u);
}

TEST(ShareRaceTest, IncrementalEntrantsShareSoundly) {
  // Mixed-mode sharing: incremental sessions interleave activation
  // guards into their variable space; the endpoint's translation must
  // keep verdicts objective anyway.
  const model::Benchmark bm = model::lfsr_hit(8, 9);
  bmc::EngineConfig engine = engine_for(bm);
  engine.incremental = true;
  const PortfolioScheduler scheduler(4, /*base_seed=*/17);
  const RaceResult race = scheduler.race(bm.net, 0, engine);
  ASSERT_TRUE(race.has_winner());
  EXPECT_EQ(race.status(), BmcResult::Status::CounterexampleFound);

  Job job;
  job.net = &bm.net;
  job.name = bm.name;
  job.config = engine;
  job.config.policy = OrderingPolicy::Dynamic;
  EXPECT_EQ(race.winning().result.counterexample_depth,
            run_job(job).result.counterexample_depth);
}

}  // namespace
}  // namespace refbmc::portfolio
