// Portfolio racing must be a pure accelerator: whichever policy wins,
// verdict and counter-example depth are identical to every single-policy
// run of the same instance.
#include <atomic>

#include <gtest/gtest.h>

#include "model/benchgen.hpp"
#include "portfolio/scheduler.hpp"

namespace refbmc::portfolio {
namespace {

using bmc::BmcResult;
using bmc::OrderingPolicy;

bmc::EngineConfig engine_for(const model::Benchmark& bm) {
  bmc::EngineConfig cfg;
  cfg.max_depth = bm.suggested_bound;
  return cfg;
}

TEST(PortfolioRaceTest, VerdictsMatchEverySinglePolicyRun) {
  const PortfolioScheduler scheduler(4, /*base_seed=*/7);
  for (const auto& bm : model::quick_suite()) {
    const bmc::EngineConfig engine = engine_for(bm);

    // Ground truth: each policy alone.
    std::vector<JobResult> singles;
    for (const OrderingPolicy policy : default_race_policies()) {
      Job job;
      job.net = &bm.net;
      job.name = bm.name;
      job.config = engine;
      job.config.policy = policy;
      singles.push_back(run_job(job));
      ASSERT_NE(singles.back().result.status,
                BmcResult::Status::ResourceLimit)
          << bm.name << " under " << to_string(policy);
      // All policies agree with the suite's expectation...
      EXPECT_EQ(singles.back().result.status ==
                    BmcResult::Status::CounterexampleFound,
                bm.expect_fail)
          << bm.name << " under " << to_string(policy);
    }

    // ...and the race agrees with all of them.
    const RaceResult race = scheduler.race(bm.net, 0, engine);
    ASSERT_TRUE(race.has_winner()) << bm.name;
    EXPECT_EQ(race.entrants.size(), default_race_policies().size());
    EXPECT_EQ(race.status(), singles.front().result.status) << bm.name;
    if (bm.expect_fail) {
      for (const auto& single : singles)
        EXPECT_EQ(race.winning().result.counterexample_depth,
                  single.result.counterexample_depth)
            << bm.name;
      ASSERT_TRUE(race.winning().result.counterexample.has_value());
    }
  }
}

TEST(PortfolioRaceTest, SinglePolicyRaceWorks) {
  const model::Benchmark bm = model::arbiter_buggy(4);  // fails at depth 1
  const PortfolioScheduler scheduler(1);
  const RaceResult race = scheduler.race(
      bm.net, 0, engine_for(bm), {OrderingPolicy::Dynamic});
  ASSERT_TRUE(race.has_winner());
  EXPECT_EQ(race.winner, 0);
  EXPECT_EQ(race.winning().policy, OrderingPolicy::Dynamic);
  EXPECT_EQ(race.status(), BmcResult::Status::CounterexampleFound);
}

TEST(PortfolioRaceTest, LosersAreCancelledNotWrong) {
  // Losing entrants either finished with the same verdict (they were
  // close behind) or were cut off with ResourceLimit — never a
  // contradicting verdict.
  const model::Benchmark bm = model::needle(6, 6, 40, 40);
  const PortfolioScheduler scheduler(4);
  const RaceResult race = scheduler.race(bm.net, 0, engine_for(bm));
  ASSERT_TRUE(race.has_winner());
  for (const auto& entrant : race.entrants) {
    if (entrant.result.status == BmcResult::Status::ResourceLimit) continue;
    EXPECT_EQ(entrant.result.status, race.winning().result.status);
  }
}

TEST(PortfolioRaceTest, ExternalStopCancelsTheWholeRace) {
  // Heavy instance + pre-set external stop: the relay cancels every
  // entrant before anyone can reach a verdict.
  model::Benchmark bm = model::accumulator_reach(16, 2, 30000);
  bm = model::with_distractor(std::move(bm), 24, 3);
  std::atomic<bool> external{true};
  bmc::EngineConfig engine = engine_for(bm);
  engine.max_depth = 100000;
  engine.stop = &external;
  const PortfolioScheduler scheduler(4);
  const RaceResult race = scheduler.race(bm.net, 0, engine);
  EXPECT_FALSE(race.has_winner());
  EXPECT_EQ(race.status(), BmcResult::Status::ResourceLimit);
  for (const auto& entrant : race.entrants)
    EXPECT_EQ(entrant.result.status, BmcResult::Status::ResourceLimit);
}

TEST(PortfolioRaceTest, RaceEncodesEachDepthExactlyOnce) {
  // Encode-once racing: P policies racing to a bound of k perform exactly
  // k+1 frame encodings total — one per depth, not one per (depth,
  // policy).  A passing model forces every entrant through every depth.
  const model::Benchmark bm = model::counter_safe(6, 40, 50);
  const int bound = 8;
  bmc::EngineConfig engine;
  engine.max_depth = bound;
  const PortfolioScheduler scheduler(4);
  const RaceResult race = scheduler.race(bm.net, 0, engine);
  ASSERT_TRUE(race.has_winner());
  EXPECT_EQ(race.status(), BmcResult::Status::BoundReached);
  EXPECT_EQ(race.frames_encoded, static_cast<std::uint64_t>(bound + 1));
}

TEST(PortfolioRaceTest, EncodeOnceHoldsForIncrementalEntrants) {
  // Scratch (Shtrichman demotes to it) and incremental sessions replay
  // the same shared tape; the encoding count stays one per depth.
  const model::Benchmark bm = model::arbiter_safe(5);
  const int bound = 6;
  bmc::EngineConfig engine;
  engine.max_depth = bound;
  engine.incremental = true;
  const PortfolioScheduler scheduler(4);
  const RaceResult race = scheduler.race(bm.net, 0, engine);
  ASSERT_TRUE(race.has_winner());
  EXPECT_EQ(race.frames_encoded, static_cast<std::uint64_t>(bound + 1));
  // And the verdict still matches a solo incremental run.
  Job job;
  job.net = &bm.net;
  job.name = bm.name;
  job.config = engine;
  job.config.policy = bmc::OrderingPolicy::Dynamic;
  EXPECT_EQ(run_job(job).result.status, race.status());
}

TEST(PortfolioRaceTest, RaceIsRepeatable) {
  // Fixed seeds and objective verdicts: repeated races of the same
  // instance give the same verdict and cex depth every time (the winning
  // policy may differ — that is scheduling, not semantics).
  const model::Benchmark bm = model::lfsr_hit(8, 9);
  const PortfolioScheduler scheduler(4, /*base_seed=*/21);
  const bmc::EngineConfig engine = engine_for(bm);
  const RaceResult first = scheduler.race(bm.net, 0, engine);
  ASSERT_TRUE(first.has_winner());
  for (int i = 0; i < 3; ++i) {
    const RaceResult again = scheduler.race(bm.net, 0, engine);
    ASSERT_TRUE(again.has_winner());
    EXPECT_EQ(again.status(), first.status());
    EXPECT_EQ(again.winning().result.counterexample_depth,
              first.winning().result.counterexample_depth);
  }
}

}  // namespace
}  // namespace refbmc::portfolio
