// Remapping soundness across the portfolio (PR 7 satellite): racing
// entrants solve the PREPROCESSED formula while verdicts, cex depths,
// and extracted traces are reported in model-node space — so a race
// with preprocessing on must be indistinguishable, result-wise, from
// one with it off, across the sharing × rank-sharing matrix.  Also
// covers the pool seam: clauses travel in tape space, and imports that
// mention a variable this consumer eliminated are dropped, not parked.
#include <gtest/gtest.h>

#include "bmc/trace.hpp"
#include "model/benchgen.hpp"
#include "portfolio/scheduler.hpp"

namespace refbmc::portfolio {
namespace {

using bmc::BmcResult;
using bmc::OrderingPolicy;

bmc::EngineConfig engine_for(const model::Benchmark& bm, bool preprocess) {
  bmc::EngineConfig cfg;
  cfg.max_depth = bm.suggested_bound;
  cfg.preprocess.enabled = preprocess;
  if (preprocess) cfg.solver.inprocess.vivify_interval = 4;
  return cfg;
}

SharingConfig sharing(bool lemmas, bool rank) {
  SharingConfig cfg;
  cfg.enabled = lemmas;
  cfg.rank = rank;
  return cfg;
}

TEST(PreprocessRaceTest, VerdictsMatchAcrossSharingAndPreprocessMatrix) {
  // share × rank × preprocess — eight configurations per model, all
  // required to agree with the suite expectation and with each other on
  // the counterexample depth.
  for (const auto& bm : model::quick_suite()) {
    int expected_cex_depth = -2;  // sentinel: not yet observed
    for (const bool lemmas : {false, true}) {
      for (const bool rank : {false, true}) {
        const PortfolioScheduler scheduler(4, /*base_seed=*/21,
                                           sharing(lemmas, rank));
        for (const bool preprocess : {false, true}) {
          const RaceResult race = scheduler.race(
              bm.net, 0, engine_for(bm, preprocess),
              {OrderingPolicy::Baseline, OrderingPolicy::Dynamic});
          ASSERT_TRUE(race.has_winner())
              << bm.name << " lemmas=" << lemmas << " rank=" << rank
              << " preprocess=" << preprocess;
          EXPECT_EQ(
              race.status() == BmcResult::Status::CounterexampleFound,
              bm.expect_fail)
              << bm.name;
          if (!bm.expect_fail) continue;
          const int depth = race.winning().result.counterexample_depth;
          if (expected_cex_depth == -2) expected_cex_depth = depth;
          EXPECT_EQ(depth, expected_cex_depth) << bm.name;
        }
      }
    }
  }
}

TEST(PreprocessRaceTest, ExtractedTracesProjectToModelSpace) {
  // The winning entrant of a preprocessed race must hand back a trace
  // that replays on the concrete simulator — the witness-completion
  // path (eliminated vars reconstructed from the remapper stack) is the
  // only way that can hold.
  const model::Benchmark models[] = {
      model::counter_reach(4, 7, true),
      model::with_distractor(model::counter_reach(3, 5, true), 3, 1)};
  for (const auto& bm : models) {
    const PortfolioScheduler scheduler(4, /*base_seed=*/5);
    const RaceResult race =
        scheduler.race(bm.net, 0, engine_for(bm, /*preprocess=*/true));
    ASSERT_TRUE(race.has_winner()) << bm.name;
    const BmcResult& r = race.winning().result;
    ASSERT_EQ(r.status, BmcResult::Status::CounterexampleFound) << bm.name;
    ASSERT_TRUE(r.counterexample.has_value()) << bm.name;
    EXPECT_TRUE(bmc::validate_trace(bm.net, *r.counterexample, 0)) << bm.name;
  }
}

TEST(PreprocessRaceTest, ShardGroupsAgreeOnPreprocessedFormula) {
  // Two shard jobs on the same netlist with the same preprocess config
  // land in one tape group; mixed configs must split into separate
  // groups (asserted indirectly: both verdicts stay correct).
  const model::Benchmark bm = model::counter_safe(5, 20, 25);
  std::vector<Job> jobs;
  for (const bool preprocess : {true, true, false}) {
    Job job;
    job.net = &bm.net;
    job.name = preprocess ? "prep" : "plain";
    job.config = engine_for(bm, preprocess);
    job.config.policy = OrderingPolicy::Dynamic;
    jobs.push_back(std::move(job));
  }
  PortfolioScheduler scheduler(2, /*base_seed=*/9);
  const BatchReport report = scheduler.run_batch(jobs);
  ASSERT_EQ(report.results.size(), 3u);
  for (const auto& r : report.results) {
    EXPECT_EQ(r.result.status, BmcResult::Status::BoundReached) << r.name;
    EXPECT_EQ(r.result.last_completed_depth, bm.suggested_bound) << r.name;
  }
}

TEST(PreprocessRaceTest, PreprocessedRaceStillExchangesClauses) {
  // Liveness with the new drop-at-delivery rule: the pool must not
  // starve just because consumers run preprocessed formulas.  Exports
  // are tape-space, so anything over surviving variables still lands.
  const model::Benchmark bm = model::needle(6, 6, 40, 50);
  const PortfolioScheduler scheduler(4, /*base_seed=*/3);
  const RaceResult race =
      scheduler.race(bm.net, 0, engine_for(bm, /*preprocess=*/true));
  ASSERT_TRUE(race.has_winner());
  EXPECT_GT(race.clauses_exported, 0u);
}

}  // namespace
}  // namespace refbmc::portfolio
