// WorkStealingQueue semantics: LIFO for the owner, FIFO for thieves, and
// no lost or duplicated items under concurrent stealing.
#include <algorithm>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "portfolio/worker.hpp"

namespace refbmc::portfolio {
namespace {

TEST(WorkStealingQueueTest, OwnerPopsLifo) {
  WorkStealingQueue q;
  q.push(1);
  q.push(2);
  q.push(3);
  std::size_t out = 0;
  ASSERT_TRUE(q.try_pop(out));
  EXPECT_EQ(out, 3u);
  ASSERT_TRUE(q.try_pop(out));
  EXPECT_EQ(out, 2u);
  ASSERT_TRUE(q.try_pop(out));
  EXPECT_EQ(out, 1u);
  EXPECT_FALSE(q.try_pop(out));
}

TEST(WorkStealingQueueTest, ThiefStealsFifo) {
  WorkStealingQueue q;
  q.push(1);
  q.push(2);
  q.push(3);
  std::size_t out = 0;
  ASSERT_TRUE(q.try_steal(out));
  EXPECT_EQ(out, 1u);
  // Owner and thief work opposite ends.
  ASSERT_TRUE(q.try_pop(out));
  EXPECT_EQ(out, 3u);
  ASSERT_TRUE(q.try_steal(out));
  EXPECT_EQ(out, 2u);
  EXPECT_FALSE(q.try_steal(out));
  EXPECT_EQ(q.size(), 0u);
}

TEST(WorkStealingQueueTest, ConcurrentStealingLosesNothing) {
  constexpr std::size_t kItems = 10000;
  constexpr int kThieves = 8;
  WorkStealingQueue q;
  for (std::size_t i = 0; i < kItems; ++i) q.push(i);

  std::mutex mu;
  std::vector<std::size_t> taken;
  std::vector<std::thread> thieves;
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      std::vector<std::size_t> local;
      std::size_t item = 0;
      while (q.try_steal(item)) local.push_back(item);
      const std::lock_guard<std::mutex> lock(mu);
      taken.insert(taken.end(), local.begin(), local.end());
    });
  }
  for (auto& t : thieves) t.join();

  ASSERT_EQ(taken.size(), kItems);
  std::sort(taken.begin(), taken.end());
  for (std::size_t i = 0; i < kItems; ++i) EXPECT_EQ(taken[i], i);
}

}  // namespace
}  // namespace refbmc::portfolio
