// Basic solver behaviour: trivial formulas, unit propagation at the root,
// API contracts.
#include "sat/solver.hpp"

#include <gtest/gtest.h>

#include "../helpers.hpp"

namespace refbmc::sat {
namespace {

using test::lits;

TEST(SolverBasicTest, EmptyFormulaIsSat) {
  Solver s;
  EXPECT_EQ(s.solve(), Result::Sat);
}

TEST(SolverBasicTest, SingleUnitClause) {
  Solver s;
  const Var x = s.new_var();
  s.add_clause({Lit::make(x)});
  EXPECT_EQ(s.solve(), Result::Sat);
  EXPECT_EQ(s.model_value(x), l_True);
}

TEST(SolverBasicTest, ContradictoryUnitsAreUnsat) {
  Solver s;
  const Var x = s.new_var();
  EXPECT_TRUE(s.add_clause({Lit::make(x)}));
  EXPECT_FALSE(s.add_clause({Lit::make(x, true)}));
  EXPECT_FALSE(s.okay());
  EXPECT_EQ(s.solve(), Result::Unsat);
}

TEST(SolverBasicTest, EmptyClauseIsUnsat) {
  Solver s;
  EXPECT_FALSE(s.add_clause({}));
  EXPECT_EQ(s.solve(), Result::Unsat);
  EXPECT_EQ(s.unsat_core(), std::vector<ClauseId>{1});
}

TEST(SolverBasicTest, UnitChainPropagation) {
  // x1 ∧ (¬x1 ∨ x2) ∧ (¬x2 ∨ x3): all forced true with zero decisions.
  Solver s;
  for (int i = 0; i < 3; ++i) s.new_var();
  s.add_clause(lits({1}));
  s.add_clause(lits({-1, 2}));
  s.add_clause(lits({-2, 3}));
  EXPECT_EQ(s.solve(), Result::Sat);
  EXPECT_EQ(s.stats().decisions, 0u);
  for (int v = 0; v < 3; ++v) EXPECT_EQ(s.model_value(v), l_True);
}

TEST(SolverBasicTest, UnitChainConflict) {
  Solver s;
  for (int i = 0; i < 3; ++i) s.new_var();
  s.add_clause(lits({1}));
  s.add_clause(lits({-1, 2}));
  s.add_clause(lits({-2, 3}));
  EXPECT_FALSE(s.add_clause(lits({-3})));
  EXPECT_EQ(s.solve(), Result::Unsat);
  // The core is the whole chain.
  EXPECT_EQ(s.unsat_core(), (std::vector<ClauseId>{1, 2, 3, 4}));
}

TEST(SolverBasicTest, DuplicateLiteralsDeduped) {
  Solver s;
  s.new_var();
  s.add_clause(lits({1, 1, 1}));
  EXPECT_EQ(s.original_clause(1), lits({1}));
  EXPECT_EQ(s.solve(), Result::Sat);
}

TEST(SolverBasicTest, TautologyIgnoredButKeepsId) {
  Solver s;
  s.new_var();
  s.new_var();
  s.add_clause(lits({1, -1}));  // id 1, tautology
  s.add_clause(lits({2}));      // id 2
  EXPECT_EQ(s.num_original_clauses(), 2u);
  EXPECT_FALSE(s.add_clause(lits({-2})));  // id 3
  EXPECT_EQ(s.solve(), Result::Unsat);
  // The tautology can never appear in a core.
  EXPECT_EQ(s.unsat_core(), (std::vector<ClauseId>{2, 3}));
}

TEST(SolverBasicTest, ClausesOverUnknownVariablesRejected) {
  Solver s;
  s.new_var();
  EXPECT_THROW(s.add_clause(lits({2})), std::invalid_argument);
  EXPECT_THROW(s.add_clause({kLitUndef}), std::invalid_argument);
}

TEST(SolverBasicTest, ModelAccessBeforeSatThrows) {
  Solver s;
  const Var x = s.new_var();
  EXPECT_THROW(s.model_value(x), std::invalid_argument);
}

TEST(SolverBasicTest, CoreWithoutUnsatThrows) {
  Solver s;
  s.new_var();
  s.add_clause(lits({1}));
  EXPECT_EQ(s.solve(), Result::Sat);
  EXPECT_THROW(s.unsat_core(), std::invalid_argument);
}

TEST(SolverBasicTest, CoreWithTrackingDisabledThrows) {
  SolverConfig cfg;
  cfg.track_cdg = false;
  Solver s(cfg);
  s.new_var();
  s.add_clause(lits({1}));
  s.add_clause(lits({-1}));
  EXPECT_EQ(s.solve(), Result::Unsat);
  EXPECT_THROW(s.unsat_core(), std::invalid_argument);
}

TEST(SolverBasicTest, SatisfiedAtRootClauseHandled) {
  Solver s;
  s.new_var();
  s.new_var();
  s.add_clause(lits({1}));
  s.add_clause(lits({1, 2}));  // already satisfied at the root
  EXPECT_EQ(s.solve(), Result::Sat);
}

TEST(SolverBasicTest, EffectivelyUnitAfterRootAssignments) {
  // x1 forced; (¬x1 ∨ x2) added afterwards becomes effectively unit.
  Solver s;
  s.new_var();
  s.new_var();
  s.add_clause(lits({1}));
  s.add_clause(lits({-1, 2}));
  EXPECT_EQ(s.value(Lit::from_dimacs(2)), l_True);  // propagated at add time
  EXPECT_EQ(s.solve(), Result::Sat);
}

TEST(SolverBasicTest, AddAfterUnsatKeepsIdsInSync) {
  Solver s;
  s.new_var();
  s.add_clause(lits({1}));
  s.add_clause(lits({-1}));
  EXPECT_FALSE(s.okay());
  EXPECT_FALSE(s.add_clause(lits({1, -1})));  // still consumes id 3
  EXPECT_EQ(s.num_original_clauses(), 3u);
  EXPECT_EQ(s.original_clause(3), lits({1, -1}));
}

TEST(SolverBasicTest, OriginalClauseAccessorBounds) {
  Solver s;
  s.new_var();
  s.add_clause(lits({1}));
  EXPECT_THROW(s.original_clause(0), std::invalid_argument);
  EXPECT_THROW(s.original_clause(2), std::invalid_argument);
}

TEST(SolverBasicTest, NumOriginalLiteralsCountsDeduped) {
  Solver s;
  s.new_var();
  s.new_var();
  s.add_clause(lits({1, 2}));
  s.add_clause(lits({1, 1}));
  EXPECT_EQ(s.num_original_literals(), 3u);
}

TEST(SolverBasicTest, SimpleBacktrackingProblem) {
  // (x1 ∨ x2) ∧ (¬x1 ∨ x2) ∧ (x1 ∨ ¬x2) — unique model x1=x2=true.
  Solver s;
  s.new_var();
  s.new_var();
  s.add_clause(lits({1, 2}));
  s.add_clause(lits({-1, 2}));
  s.add_clause(lits({1, -2}));
  EXPECT_EQ(s.solve(), Result::Sat);
  EXPECT_EQ(s.model_value(0), l_True);
  EXPECT_EQ(s.model_value(1), l_True);
}

TEST(SolverBasicTest, StatsPopulated) {
  Solver s;
  for (int i = 0; i < 2; ++i) s.new_var();
  s.add_clause(lits({1, 2}));
  s.add_clause(lits({-1, 2}));
  s.add_clause(lits({-2, 1}));
  s.add_clause(lits({-1, -2}));
  EXPECT_EQ(s.solve(), Result::Unsat);
  EXPECT_GT(s.stats().conflicts, 0u);
  EXPECT_GT(s.stats().propagations, 0u);
  EXPECT_GE(s.stats().solve_time_sec, 0.0);
}

}  // namespace
}  // namespace refbmc::sat
