// Assumption savepoint and frame retirement at the solver level (PR 8):
// solve() calls with growing assumption prefixes resume from the kept
// trail instead of the root, retired guards' clauses leave the arena,
// and none of it may change a verdict.
#include <gtest/gtest.h>

#include <vector>

#include "../helpers.hpp"
#include "sat/solver.hpp"
#include "util/rng.hpp"

namespace refbmc::sat {
namespace {

using test::load;
using test::random_ksat;

SolverConfig savepoint_config() {
  SolverConfig cfg;
  cfg.assumption_savepoint = true;
  return cfg;
}

/// Builds the session-shaped assumption list for step k over guards g:
/// retired prefix [~g0..~g_{k-1}] then the live guard g_k.
std::vector<Lit> step_assumptions(const std::vector<Var>& guards, int k) {
  std::vector<Lit> out;
  for (int i = 0; i < k; ++i) out.push_back(Lit::make(guards[i], true));
  out.push_back(Lit::make(guards[k]));
  return out;
}

TEST(SolverSavepointTest, AgreesWithPlainSolverOnGrowingPrefixes) {
  // Two identical solvers, savepoint on vs off, walked through the
  // session assumption pattern over guarded clause groups — verdicts
  // must match at every step, and only the savepoint solver may record
  // prefix resumes.
  Rng rng(0x5AFE);
  const Cnf base = random_ksat(rng, 12, 30, 3);
  Solver on(savepoint_config());
  Solver off;
  for (Solver* s : {&on, &off}) load(*s, base);

  constexpr int kGuards = 6;
  std::vector<Var> guards;
  for (int i = 0; i < kGuards; ++i) {
    const Var ga = on.new_var();
    const Var gb = off.new_var();
    ASSERT_EQ(ga, gb);
    guards.push_back(ga);
  }
  on.register_frame_guard(guards.back());
  for (int i = 0; i < kGuards; ++i) {
    for (int c = 0; c < 5; ++c) {
      std::vector<Lit> clause{Lit::make(guards[i], true)};
      for (int j = 0; j < 2; ++j)
        clause.push_back(Lit::make(rng.next_int(0, 11), rng.next_bool()));
      on.add_clause(clause);
      off.add_clause(clause);
    }
  }
  // The last guard activates a contradiction so the sweep ends Unsat.
  const Lit x = Lit::make(0);
  on.add_clause({Lit::make(guards.back(), true), x});
  off.add_clause({Lit::make(guards.back(), true), x});
  on.add_clause({Lit::make(guards.back(), true), ~x});
  off.add_clause({Lit::make(guards.back(), true), ~x});

  for (int k = 0; k < kGuards; ++k) {
    const std::vector<Lit> assumptions = step_assumptions(guards, k);
    EXPECT_EQ(on.solve(assumptions), off.solve(assumptions)) << "step " << k;
  }
  EXPECT_EQ(on.stats().savepoint_hits + on.stats().savepoint_misses,
            static_cast<std::uint64_t>(kGuards));
  EXPECT_GT(on.stats().savepoint_hits, 0u);
  EXPECT_GE(on.stats().savepoint_levels_reused, on.stats().savepoint_hits);
  EXPECT_EQ(off.stats().savepoint_hits, 0u);
  EXPECT_EQ(off.stats().savepoint_misses, 0u);
}

TEST(SolverSavepointTest, RetirementEqualsManualUnitClauses) {
  // retire_frame_guards(g...) must be semantically the unit clauses
  // {~g...}: after retiring guards 0..2 on the savepoint solver and
  // adding the units by hand on the plain one, the remaining steps
  // still agree.
  Rng rng(0xD1CE);
  const Cnf base = random_ksat(rng, 10, 24, 3);
  Solver on(savepoint_config());
  Solver off;
  for (Solver* s : {&on, &off}) load(*s, base);

  constexpr int kGuards = 5;
  std::vector<Var> guards;
  for (int i = 0; i < kGuards; ++i) {
    const Var ga = on.new_var();
    off.new_var();
    guards.push_back(ga);
    on.register_frame_guard(ga);
  }
  for (int i = 0; i < kGuards; ++i) {
    for (int c = 0; c < 4; ++c) {
      std::vector<Lit> clause{Lit::make(guards[i], true)};
      for (int j = 0; j < 2; ++j)
        clause.push_back(Lit::make(rng.next_int(0, 9), rng.next_bool()));
      on.add_clause(clause);
      off.add_clause(clause);
    }
  }

  for (int k = 0; k < 3; ++k) {
    const std::vector<Lit> assumptions = step_assumptions(guards, k);
    ASSERT_EQ(on.solve(assumptions), off.solve(assumptions)) << "step " << k;
  }
  std::vector<Lit> retired;
  for (int i = 0; i < 3; ++i) retired.push_back(Lit::make(guards[i]));
  ASSERT_TRUE(on.retire_frame_guards(retired));
  for (int i = 0; i < 3; ++i)
    ASSERT_TRUE(off.add_clause({Lit::make(guards[i], true)}));
  EXPECT_GT(on.stats().retired_frame_clauses, 0u);

  for (int k = 3; k < kGuards; ++k) {
    const std::vector<Lit> assumptions = step_assumptions(guards, k);
    EXPECT_EQ(on.solve(assumptions), off.solve(assumptions)) << "step " << k;
  }
}

TEST(SolverSavepointTest, RetirementReclaimsArenaSpace) {
  // A solver whose clauses are almost all guarded: retiring the guard
  // must credit the arena's wasted counter with every guarded clause
  // and — past the >20% dead threshold — compact it back to zero.
  Solver s(savepoint_config());
  constexpr int kVars = 10;
  for (int i = 0; i < kVars; ++i) s.new_var();
  const Var g = s.new_var();
  s.register_frame_guard(g);
  constexpr std::uint64_t kGuarded = 40;
  for (std::uint64_t i = 0; i < kGuarded; ++i) {
    s.add_clause({Lit::make(g, true),
                  Lit::make(static_cast<Var>(i % kVars)),
                  Lit::make(static_cast<Var>((i + 3) % kVars), true)});
  }
  s.add_clause({Lit::make(0), Lit::make(1)});  // unguarded survivor

  ASSERT_EQ(s.solve({Lit::make(g)}), Result::Sat);
  ASSERT_TRUE(s.retire_frame_guards({Lit::make(g)}));
  EXPECT_EQ(s.stats().retired_frame_clauses, kGuarded);
  EXPECT_GT(s.stats().arena_gcs, 0u);
  EXPECT_EQ(s.clause_db().arena().wasted_words(), 0u);

  // The survivors still solve, and the dead guard is a root fact.
  ASSERT_EQ(s.solve(), Result::Sat);
  EXPECT_TRUE(s.model_literal_true(Lit::make(g, true)));
}

}  // namespace
}  // namespace refbmc::sat
