#include "sat/core_verify.hpp"

#include <gtest/gtest.h>

#include "../helpers.hpp"

namespace refbmc::sat {
namespace {

using test::lits;
using test::load;
using test::pigeonhole;

TEST(CoreVerifyTest, AcceptsGenuineCore) {
  std::vector<std::vector<Lit>> all{
      lits({1}), lits({-1}), lits({2, 3})};
  const CoreCheck check = verify_core(all, 3, {1, 2});
  EXPECT_TRUE(check.core_unsat);
  EXPECT_EQ(check.core_clauses, 2u);
  EXPECT_EQ(check.total_clauses, 3u);
  EXPECT_EQ(check.core_vars, 1u);
  EXPECT_NEAR(check.fraction(), 2.0 / 3.0, 1e-12);
}

TEST(CoreVerifyTest, RejectsBogusCore) {
  std::vector<std::vector<Lit>> all{
      lits({1}), lits({-1}), lits({2, 3})};
  // {1, 3} is satisfiable — not a real core.
  const CoreCheck check = verify_core(all, 3, {1, 3});
  EXPECT_FALSE(check.core_unsat);
}

TEST(CoreVerifyTest, EmptyCoreIsSat) {
  std::vector<std::vector<Lit>> all{lits({1})};
  const CoreCheck check = verify_core(all, 1, {});
  EXPECT_FALSE(check.core_unsat);
  EXPECT_EQ(check.fraction(), 0.0);
}

TEST(CoreVerifyTest, OutOfRangeIdRejected) {
  std::vector<std::vector<Lit>> all{lits({1})};
  EXPECT_THROW(verify_core(all, 1, {2}), std::invalid_argument);
}

TEST(CoreVerifyTest, SolverConvenienceOverload) {
  Solver s;
  load(s, pigeonhole(5, 4));
  ASSERT_EQ(s.solve(), Result::Unsat);
  const CoreCheck check = verify_core(s);
  EXPECT_TRUE(check.core_unsat);
  EXPECT_EQ(check.total_clauses, s.num_original_clauses());
  EXPECT_GT(check.core_vars, 0u);
}

}  // namespace
}  // namespace refbmc::sat
