// Cooperative cancellation: the stop flag must end a solve with
// Result::Unknown — immediately when pre-set, promptly when flipped from
// another thread — and must never corrupt solver state for later calls.
#include <atomic>
#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "sat/solver.hpp"
#include "../helpers.hpp"

namespace refbmc::sat {
namespace {

TEST(SolverCancelTest, PresetStopReturnsUnknownWithoutExploring) {
  Solver s;
  test::load(s, test::pigeonhole(8, 7));  // hard UNSAT: would take a while
  std::atomic<bool> stop{true};
  s.set_stop_flag(&stop);
  EXPECT_EQ(s.solve(), Result::Unknown);
  EXPECT_EQ(s.stats().decisions, 0u);
  EXPECT_EQ(s.stats().conflicts, 0u);
}

TEST(SolverCancelTest, ClearedFlagSolvesNormally) {
  Solver s;
  const sat::Cnf cnf = test::pigeonhole(5, 5);  // satisfiable
  test::load(s, cnf);
  std::atomic<bool> stop{false};
  s.set_stop_flag(&stop);
  ASSERT_EQ(s.solve(), Result::Sat);
  EXPECT_TRUE(test::model_satisfies(s, cnf));
}

TEST(SolverCancelTest, RootContradictionStillReportsUnsat) {
  // Already-known unsatisfiability is a sound answer even when cancelled.
  Solver s;
  const Var x = s.new_var();
  s.add_clause({Lit::make(x)});
  s.add_clause({Lit::make(x, true)});
  std::atomic<bool> stop{true};
  s.set_stop_flag(&stop);
  EXPECT_EQ(s.solve(), Result::Unsat);
}

TEST(SolverCancelTest, StopFromAnotherThreadEndsLongSolve) {
  Solver s;
  test::load(s, test::pigeonhole(11, 10));  // far beyond the cancel window
  std::atomic<bool> stop{false};
  s.set_stop_flag(&stop);

  std::thread canceller([&stop] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    stop.store(true);
  });
  const Result res = s.solve();
  canceller.join();
  EXPECT_EQ(res, Result::Unknown);
  EXPECT_GT(s.stats().conflicts, 0u);  // it really was mid-search
}

TEST(SolverCancelTest, DecisionBoundaryCutoffLosesNoHeapVariable) {
  // A conflict-free instance cut off at the decision-boundary check: the
  // branch literal already popped from the order heap must be reinserted,
  // or the next solve() returns a model with an unassigned variable.
  SolverConfig cfg;
  cfg.time_limit_sec = 1e-12;  // expires before the 256th decision check
  Solver s(cfg);
  constexpr int kVars = 300;  // > the 256-decision check interval
  for (int i = 0; i < kVars; ++i) s.new_var();
  ASSERT_EQ(s.solve(), Result::Unknown);

  s.set_resource_limits(-1, -1.0);
  ASSERT_EQ(s.solve(), Result::Sat);
  for (Var v = 0; v < kVars; ++v)
    EXPECT_NE(s.model_value(v), l_Undef) << "variable " << v << " lost";
}

TEST(SolverCancelTest, SolverIsReusableAfterCancellation) {
  Solver s;
  const sat::Cnf cnf = test::pigeonhole(6, 6);  // satisfiable
  test::load(s, cnf);
  std::atomic<bool> stop{true};
  s.set_stop_flag(&stop);
  ASSERT_EQ(s.solve(), Result::Unknown);

  stop.store(false);
  ASSERT_EQ(s.solve(), Result::Sat);
  EXPECT_TRUE(test::model_satisfies(s, cnf));

  s.set_stop_flag(nullptr);  // detaching works too
  EXPECT_EQ(s.solve(), Result::Sat);
}

}  // namespace
}  // namespace refbmc::sat
