// Unsat-core extraction semantics (paper §3.1).
#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "sat/core_verify.hpp"
#include "sat/solver.hpp"

namespace refbmc::sat {
namespace {

using test::lits;
using test::load;
using test::pigeonhole;

TEST(SolverCoreTest, CoreExcludesIrrelevantClauses) {
  // Clauses 1-4: an unsat sub-formula over x1, x2.
  // Clauses 5-6: satisfiable side constraints over x3, x4.
  Solver s;
  for (int i = 0; i < 4; ++i) s.new_var();
  s.add_clause(lits({1, 2}));
  s.add_clause(lits({1, -2}));
  s.add_clause(lits({-1, 2}));
  s.add_clause(lits({-1, -2}));
  s.add_clause(lits({3, 4}));
  s.add_clause(lits({-3, 4}));
  ASSERT_EQ(s.solve(), Result::Unsat);
  const auto core = s.unsat_core();
  EXPECT_EQ(core, (std::vector<ClauseId>{1, 2, 3, 4}));
  EXPECT_EQ(s.unsat_core_vars(), (std::vector<Var>{0, 1}));
}

TEST(SolverCoreTest, CoreFromRootPropagationOnly) {
  // Pure unit chain, conflict found during add_clause.
  Solver s;
  for (int i = 0; i < 4; ++i) s.new_var();
  s.add_clause(lits({1}));
  s.add_clause(lits({-1, 2}));
  s.add_clause(lits({-2, 3}));
  s.add_clause(lits({4, 4}));  // irrelevant
  s.add_clause(lits({-3}));
  ASSERT_EQ(s.solve(), Result::Unsat);
  EXPECT_EQ(s.unsat_core(), (std::vector<ClauseId>{1, 2, 3, 5}));
}

TEST(SolverCoreTest, CoreVerifiesOnPigeonhole) {
  for (int n = 3; n <= 7; ++n) {
    Solver s;
    load(s, pigeonhole(n + 1, n));
    ASSERT_EQ(s.solve(), Result::Unsat) << n;
    const CoreCheck check = verify_core(s);
    EXPECT_TRUE(check.core_unsat) << n;
    EXPECT_GT(check.core_clauses, 0u) << n;
    EXPECT_LE(check.core_clauses, check.total_clauses) << n;
  }
}

TEST(SolverCoreTest, PigeonholeCoreIsEverything) {
  // PHP is minimally unsatisfiable: every clause is needed.
  Solver s;
  load(s, pigeonhole(4, 3));
  ASSERT_EQ(s.solve(), Result::Unsat);
  EXPECT_EQ(s.unsat_core().size(), s.num_original_clauses());
}

TEST(SolverCoreTest, CoreWithEmbeddedPigeonholeAndNoise) {
  // PHP(4,3) embedded among satisfiable noise clauses: the core must not
  // grow beyond the PHP clauses (it may be a subset of them plus nothing).
  const Cnf php = pigeonhole(4, 3);
  Solver s;
  const int php_vars = php.num_vars;
  for (int i = 0; i < php_vars + 6; ++i) s.new_var();
  for (const auto& c : php.clauses) s.add_clause(c);
  const ClauseId php_count = s.num_original_clauses();
  // Noise over fresh variables.
  for (int i = 0; i < 6; i += 2) {
    s.add_clause({Lit::make(php_vars + i), Lit::make(php_vars + i + 1)});
    s.add_clause({Lit::make(php_vars + i, true),
                  Lit::make(php_vars + i + 1)});
  }
  ASSERT_EQ(s.solve(), Result::Unsat);
  for (const ClauseId id : s.unsat_core()) EXPECT_LE(id, php_count);
  // Core variables stay within the PHP variables.
  for (const Var v : s.unsat_core_vars()) EXPECT_LT(v, php_vars);
}

TEST(SolverCoreTest, CdgStatsAccumulate) {
  Solver s;
  load(s, pigeonhole(6, 5));
  ASSERT_EQ(s.solve(), Result::Unsat);
  EXPECT_EQ(s.cdg().num_learned_nodes(), s.stats().learned_clauses);
  EXPECT_GT(s.cdg().num_edges(), 0u);
  EXPECT_TRUE(s.cdg().has_final_conflict());
}

TEST(SolverCoreTest, MinimizationKeepsCoreSound) {
  // Aggressive settings to exercise the minimization-antecedent path.
  SolverConfig cfg;
  cfg.restart_base = 4;
  cfg.reduce_base = 16;
  Solver s(cfg);
  load(s, pigeonhole(8, 7));
  ASSERT_EQ(s.solve(), Result::Unsat);
  ASSERT_GT(s.stats().minimized_literals, 0u);
  EXPECT_TRUE(verify_core(s).core_unsat);
}

}  // namespace
}  // namespace refbmc::sat
