// Arena garbage collection and clause relocation under stress: tiny
// reduceDB limits force frequent deletion/compaction cycles while solving
// continues — watches, reasons, and the CDG must all stay consistent,
// including across incremental solve() calls with assumptions.
#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "sat/core_verify.hpp"
#include "sat/reference_solver.hpp"
#include "sat/solver.hpp"

namespace refbmc::sat {
namespace {

using test::load;
using test::model_satisfies;
using test::pigeonhole;
using test::random_ksat;

SolverConfig stress_config() {
  SolverConfig cfg;
  cfg.reduce_base = 4;     // delete aggressively
  cfg.reduce_grow = 1.05;  // and keep deleting
  cfg.restart_base = 2;    // restart constantly
  cfg.vsids_update_period = 4;
  return cfg;
}

TEST(SolverGcTest, SurvivesHeavyChurnOnPigeonhole) {
  Solver s(stress_config());
  load(s, pigeonhole(8, 7));
  ASSERT_EQ(s.solve(), Result::Unsat);
  EXPECT_GT(s.stats().arena_gcs, 0u);
  EXPECT_GT(s.stats().deleted_clauses, 100u);
  EXPECT_TRUE(verify_core(s).core_unsat);
}

TEST(SolverGcTest, RandomFormulasAgreeUnderChurn) {
  Rng rng(0x6C6C);
  std::uint64_t deletions = 0;
  for (int iter = 0; iter < 60; ++iter) {
    const int nv = rng.next_int(8, 14);
    const Cnf cnf = random_ksat(rng, nv, nv * 5, 3);
    const Result expected = reference_solve(cnf);
    Solver s(stress_config());
    load(s, cnf);
    ASSERT_EQ(s.solve(), expected) << iter;
    if (expected == Result::Sat) {
      EXPECT_TRUE(model_satisfies(s, cnf));
    }
    deletions += s.stats().deleted_clauses;
  }
  // Formulas this small learn mostly binary clauses, which reduceDB never
  // deletes — so deletions/GCs may legitimately be zero here; the heavy
  // churn itself is exercised by SurvivesHeavyChurnOnPigeonhole.  The
  // value of this sweep is the verdict agreement under the stress config.
  (void)deletions;
}

TEST(SolverGcTest, IncrementalSolvesAcrossGc) {
  // Keep one solver alive across many assumption solves while GC churns.
  Solver s(stress_config());
  const Cnf base = pigeonhole(7, 6);
  load(s, base);
  ASSERT_EQ(s.solve(), Result::Unsat);
  // Formula is globally UNSAT; ok() is false and further solves are cheap.
  EXPECT_EQ(s.solve(), Result::Unsat);

  // A satisfiable variant: PHP(6,6) plus toggling assumptions.
  Solver t(stress_config());
  const Cnf sat6 = pigeonhole(6, 6);
  load(t, sat6);
  Rng rng(77);
  for (int round = 0; round < 30; ++round) {
    std::vector<Lit> assumptions;
    for (int a = 0; a < 3; ++a)
      assumptions.push_back(
          Lit::make(rng.next_int(0, sat6.num_vars - 1), rng.next_bool()));
    // Cross-check against the reference on formula + assumption units.
    Cnf augmented = sat6;
    for (const Lit a : assumptions) augmented.add_clause({a});
    ASSERT_EQ(t.solve(assumptions), reference_solve(augmented))
        << "round " << round;
  }
  EXPECT_GT(t.stats().deleted_clauses, 0u);
}

TEST(SolverGcTest, CoreStableAcrossGcConfigurations) {
  // The extracted core must be a valid core regardless of GC pressure
  // (contents may differ — both must verify).
  const Cnf cnf = pigeonhole(7, 6);
  Solver relaxed;
  load(relaxed, cnf);
  ASSERT_EQ(relaxed.solve(), Result::Unsat);
  Solver stressed(stress_config());
  load(stressed, cnf);
  ASSERT_EQ(stressed.solve(), Result::Unsat);
  EXPECT_TRUE(verify_core(relaxed).core_unsat);
  EXPECT_TRUE(verify_core(stressed).core_unsat);
}

}  // namespace
}  // namespace refbmc::sat
