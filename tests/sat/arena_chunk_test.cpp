// Chunked ClauseArena: growth must never relocate live clauses (refs and
// contents stay stable as chunks are appended), compaction must preserve
// every live clause while reporting each move, oversize clauses live in
// dedicated chunks and never move, and every chunk is charged to the
// MemTracker.
#include "sat/clause.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "util/rng.hpp"

namespace refbmc::sat {
namespace {

std::vector<Lit> make_lits(std::size_t width, std::size_t salt) {
  std::vector<Lit> lits;
  lits.reserve(width);
  for (std::size_t i = 0; i < width; ++i)
    lits.push_back(Lit::make(static_cast<Var>(salt + i), (salt + i) % 2 != 0));
  return lits;
}

std::vector<Lit> clause_lits(const Clause& c) {
  std::vector<Lit> lits;
  for (std::uint32_t i = 0; i < c.size(); ++i) lits.push_back(c[i]);
  return lits;
}

TEST(ArenaChunkTest, GrowthNeverRelocatesLiveClauses) {
  ClauseArena arena;
  std::vector<std::pair<ClauseRef, std::vector<Lit>>> alive;
  // Enough 60-literal clauses to force several chunk openings.
  const std::size_t per_clause = Clause::kHeaderWords + 60;
  const std::size_t count = (3 * ClauseArena::kChunkWords) / per_clause + 8;
  for (std::size_t i = 0; i < count; ++i) {
    const std::vector<Lit> lits = make_lits(60, i);
    const ClauseRef cref = arena.alloc(lits, static_cast<ClauseId>(i + 1),
                                       /*learnt=*/i % 2 == 0);
    // Every clause allocated so far must still read back identically —
    // allocation touched only the (possibly new) active chunk.
    alive.emplace_back(cref, lits);
    for (const auto& [ref, expect] : alive)
      ASSERT_EQ(clause_lits(arena.get(ref)), expect);
  }
  // Refs from distinct chunks exist (the high bits differ).
  EXPECT_GT(alive.back().first >> ClauseArena::kChunkBits, 2u);
  EXPECT_EQ(arena.used_words(), count * per_clause);
}

TEST(ArenaChunkTest, CollectCompactsAcrossChunksAndReportsEveryMove) {
  ClauseArena arena;
  Rng rng(0xA7E4A);
  std::map<ClauseRef, std::vector<Lit>> live;
  std::vector<ClauseRef> order;
  for (std::size_t i = 0; i < 9000; ++i) {
    const std::vector<Lit> lits =
        make_lits(static_cast<std::size_t>(rng.next_int(1, 24)), i);
    const ClauseRef cref =
        arena.alloc(lits, static_cast<ClauseId>(i + 1), true);
    live.emplace(cref, lits);
    order.push_back(cref);
  }
  // Kill a random ~60% so the survivors compact across chunk boundaries.
  for (const ClauseRef cref : order) {
    if (rng.next_int(0, 9) < 6) {
      arena.free_clause(cref);
      live.erase(cref);
    }
  }
  EXPECT_TRUE(arena.should_collect());

  std::vector<std::pair<ClauseRef, ClauseRef>> map;
  arena.garbage_collect(map);

  // Sorted by old ref, exactly one entry per live clause, and the clause
  // at the new ref is the one that was at the old ref.
  EXPECT_TRUE(std::is_sorted(map.begin(), map.end()));
  ASSERT_EQ(map.size(), live.size());
  std::size_t live_words = 0;
  for (const auto& [old_ref, new_ref] : map) {
    const auto it = live.find(old_ref);
    ASSERT_NE(it, live.end());
    EXPECT_EQ(clause_lits(arena.get(new_ref)), it->second);
    live_words += Clause::kHeaderWords + it->second.size();
  }
  EXPECT_EQ(arena.used_words(), live_words);
  EXPECT_EQ(arena.wasted_words(), 0u);

  // The arena keeps working after compaction (the active chunk is valid).
  const ClauseRef fresh = arena.alloc(make_lits(5, 1), 99999, false);
  EXPECT_EQ(clause_lits(arena.get(fresh)), make_lits(5, 1));
}

TEST(ArenaChunkTest, OversizeClausesGetDedicatedChunksAndNeverMove) {
  ClauseArena arena;
  const ClauseRef before = arena.alloc(make_lits(10, 3), 1, false);
  const std::size_t huge = ClauseArena::kChunkWords;  // footprint > one chunk
  const std::vector<Lit> huge_lits = make_lits(huge, 0);
  const ClauseRef big = arena.alloc(huge_lits, 2, false);
  const ClauseRef after = arena.alloc(make_lits(10, 7), 3, false);
  EXPECT_EQ(big & ClauseArena::kOffsetMask, 0u);  // alone in its chunk
  ASSERT_EQ(arena.get(big).size(), huge);

  // Make collection worthwhile, then verify the oversize clause stayed put.
  arena.free_clause(before);
  std::vector<std::pair<ClauseRef, ClauseRef>> map;
  arena.garbage_collect(map);
  bool saw_big = false;
  for (const auto& [old_ref, new_ref] : map) {
    if (old_ref == big) {
      saw_big = true;
      EXPECT_EQ(new_ref, big);
    }
  }
  EXPECT_TRUE(saw_big);
  EXPECT_EQ(clause_lits(arena.get(big)), huge_lits);
  (void)after;

  // Freeing it releases the whole dedicated chunk at the next collect.
  const std::size_t bytes_with_big = arena.allocated_bytes();
  arena.free_clause(big);
  arena.garbage_collect(map);
  EXPECT_LT(arena.allocated_bytes(),
            bytes_with_big - huge * sizeof(std::uint32_t) / 2);
}

TEST(ArenaChunkTest, ShrunkClausesCompactToTheirLiveSize) {
  ClauseArena arena;
  const ClauseRef a = arena.alloc(make_lits(20, 0), 1, true);
  const ClauseRef b = arena.alloc(make_lits(8, 30), 2, true);
  arena.shrink_clause(a, 12);
  EXPECT_EQ(arena.wasted_words(), 8u);
  std::vector<std::pair<ClauseRef, ClauseRef>> map;
  arena.garbage_collect(map);
  ASSERT_EQ(map.size(), 2u);
  const Clause ca = arena.get(map[0].second);
  EXPECT_EQ(ca.size(), 12u);
  EXPECT_EQ(ca.capacity(), 12u);  // the dropped tail is gone
  const std::vector<Lit> full_a = make_lits(20, 0);
  const std::vector<Lit> expect_a(full_a.begin(), full_a.begin() + 12);
  EXPECT_EQ(clause_lits(ca), expect_a);
  EXPECT_EQ(clause_lits(arena.get(map[1].second)), make_lits(8, 30));
  EXPECT_EQ(arena.used_words(),
            2 * Clause::kHeaderWords + 12u + 8u);
  (void)b;
}

TEST(ArenaChunkTest, ChunksAreChargedToTheMemTracker) {
  MemTracker mem;
  ClauseArena arena;
  arena.set_mem_tracker(&mem);
  EXPECT_EQ(mem.current(), 0u);
  std::vector<ClauseRef> refs;
  const std::size_t count = ClauseArena::kChunkWords / 54 + 4;
  for (std::size_t i = 0; i < count; ++i)
    refs.push_back(arena.alloc(make_lits(50, i), static_cast<ClauseId>(i + 1),
                               false));
  // Two chunks open: the tracker sees exactly the arena's own accounting.
  EXPECT_EQ(mem.current(), arena.allocated_bytes());
  EXPECT_GE(mem.current(), 2u * ClauseArena::kChunkWords * sizeof(std::uint32_t));
  const std::uint64_t peak = mem.peak();
  EXPECT_GE(peak, mem.current());

  for (const ClauseRef cref : refs) arena.free_clause(cref);
  std::vector<std::pair<ClauseRef, ClauseRef>> map;
  arena.garbage_collect(map);
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(mem.current(), arena.allocated_bytes());
  EXPECT_LT(mem.current(), peak);  // emptied chunks were credited back
}

}  // namespace
}  // namespace refbmc::sat
