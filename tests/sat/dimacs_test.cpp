#include "sat/dimacs.hpp"

#include <gtest/gtest.h>

namespace refbmc::sat {
namespace {

TEST(DimacsTest, ParseSimple) {
  const Cnf cnf = parse_dimacs_string(
      "c a comment\n"
      "p cnf 3 2\n"
      "1 -2 0\n"
      "2 3 0\n");
  EXPECT_EQ(cnf.num_vars, 3);
  ASSERT_EQ(cnf.num_clauses(), 2u);
  EXPECT_EQ(cnf.clauses[0],
            (std::vector<Lit>{Lit::from_dimacs(1), Lit::from_dimacs(-2)}));
  EXPECT_EQ(cnf.clauses[1],
            (std::vector<Lit>{Lit::from_dimacs(2), Lit::from_dimacs(3)}));
}

TEST(DimacsTest, MultipleClausesPerLine) {
  const Cnf cnf = parse_dimacs_string("p cnf 2 2\n1 0 -2 0\n");
  EXPECT_EQ(cnf.num_clauses(), 2u);
}

TEST(DimacsTest, ClauseSpanningLines) {
  const Cnf cnf = parse_dimacs_string("p cnf 3 1\n1 2\n3 0\n");
  ASSERT_EQ(cnf.num_clauses(), 1u);
  EXPECT_EQ(cnf.clauses[0].size(), 3u);
}

TEST(DimacsTest, EmptyClauseAllowed) {
  const Cnf cnf = parse_dimacs_string("p cnf 1 1\n0\n");
  ASSERT_EQ(cnf.num_clauses(), 1u);
  EXPECT_TRUE(cnf.clauses[0].empty());
}

TEST(DimacsTest, ToleratesWrongClauseCount) {
  const Cnf cnf = parse_dimacs_string("p cnf 2 5\n1 0\n");
  EXPECT_EQ(cnf.num_clauses(), 1u);
}

TEST(DimacsTest, RejectsMissingHeader) {
  EXPECT_THROW(parse_dimacs_string("1 2 0\n"), std::invalid_argument);
}

TEST(DimacsTest, RejectsDuplicateHeader) {
  EXPECT_THROW(parse_dimacs_string("p cnf 1 1\np cnf 1 1\n1 0\n"),
               std::invalid_argument);
}

TEST(DimacsTest, RejectsLiteralOutOfRange) {
  EXPECT_THROW(parse_dimacs_string("p cnf 2 1\n3 0\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_dimacs_string("p cnf 2 1\n-3 0\n"),
               std::invalid_argument);
}

TEST(DimacsTest, RejectsUnterminatedClause) {
  EXPECT_THROW(parse_dimacs_string("p cnf 2 1\n1 2\n"),
               std::invalid_argument);
}

TEST(DimacsTest, RejectsGarbageTokens) {
  EXPECT_THROW(parse_dimacs_string("p cnf 2 1\n1 x 0\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_dimacs_string("p dnf 2 1\n1 0\n"),
               std::invalid_argument);
}

TEST(DimacsTest, BlankAndWhitespaceLinesIgnored) {
  const Cnf cnf = parse_dimacs_string(
      "\n"
      "   \t \n"
      "p cnf 2 1\n"
      "\n"
      "1 -2 0\n"
      "  \n");
  EXPECT_EQ(cnf.num_vars, 2);
  EXPECT_EQ(cnf.num_clauses(), 1u);
}

TEST(DimacsTest, CommentsAfterHeaderAndInsideClauses) {
  // Comments may interleave with clause data — including in the middle
  // of a clause spanning lines.
  const Cnf cnf = parse_dimacs_string(
      "c leading comment\n"
      "p cnf 3 2\n"
      "c after the header\n"
      "1 2\n"
      "c between the literals of one clause\n"
      "3 0\n"
      "-1 0\n");
  ASSERT_EQ(cnf.num_clauses(), 2u);
  EXPECT_EQ(cnf.clauses[0].size(), 3u);
  EXPECT_EQ(cnf.clauses[1].size(), 1u);
}

TEST(DimacsTest, IndentedCommentsAndClauses) {
  const Cnf cnf = parse_dimacs_string(
      "  c indented comment\n"
      "\tp cnf 2 1\n"
      "  1 2 0\n");
  EXPECT_EQ(cnf.num_clauses(), 1u);
}

TEST(DimacsTest, RejectsEmptyClauseTerminatorBeforeHeader) {
  // A bare "0" is clause data; without a header it must be rejected, not
  // silently recorded as an empty clause.
  EXPECT_THROW(parse_dimacs_string("0\np cnf 1 1\n1 0\n"),
               std::invalid_argument);
}

TEST(DimacsTest, RejectsTrailingJunkOnProblemLine) {
  EXPECT_THROW(parse_dimacs_string("p cnf 2 1 extra\n1 0\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_dimacs_string("p cnf 2 1 3\n1 0\n"),
               std::invalid_argument);
  // Trailing whitespace stays legal.
  EXPECT_NO_THROW(parse_dimacs_string("p cnf 2 1   \n1 0\n"));
}

TEST(DimacsTest, RejectsNegativeAndOversizedHeaderCounts) {
  EXPECT_THROW(parse_dimacs_string("p cnf -2 1\n1 0\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_dimacs_string("p cnf 9999999999 1\n1 0\n"),
               std::invalid_argument);
}

TEST(DimacsTest, OutOfRangeErrorNamesTheLiteral) {
  try {
    parse_dimacs_string("p cnf 2 1\n7 0\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("7"), std::string::npos);
    EXPECT_NE(msg.find("2"), std::string::npos);
  }
}

TEST(DimacsTest, MissingFileThrows) {
  EXPECT_THROW(parse_dimacs_file("/nonexistent/path.cnf"),
               std::invalid_argument);
}

TEST(DimacsTest, WriteReadRoundTrip) {
  Cnf cnf;
  cnf.num_vars = 4;
  cnf.add_clause({Lit::from_dimacs(1), Lit::from_dimacs(-4)});
  cnf.add_clause({Lit::from_dimacs(-2)});
  cnf.add_clause({});
  const Cnf back = parse_dimacs_string(to_dimacs_string(cnf));
  EXPECT_EQ(back.num_vars, cnf.num_vars);
  ASSERT_EQ(back.clauses.size(), cnf.clauses.size());
  for (std::size_t i = 0; i < cnf.clauses.size(); ++i)
    EXPECT_EQ(back.clauses[i], cnf.clauses[i]);
}

}  // namespace
}  // namespace refbmc::sat
