// The DecisionQueue layer: mode parsing, the Chaff adapter's parity with
// DecisionHeuristic semantics, the EVSIDS scorer, and both queues under
// the rank feed — plus the EVSIDS-configured solver end to end.
#include "sat/decision.hpp"

#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "sat/reference_solver.hpp"
#include "sat/solver.hpp"

namespace refbmc::sat {
namespace {

using test::load;
using test::model_satisfies;
using test::pigeonhole;

std::unique_ptr<DecisionQueue> make(DecisionMode mode, RankMode rank,
                                    int nvars) {
  auto q = make_decision_queue(mode, rank, /*vsids_update_period=*/256,
                               /*evsids_decay=*/0.95);
  for (int i = 0; i < nvars; ++i) q->add_var();
  return q;
}

TEST(DecisionModeTest, ParseRoundTrip) {
  for (const DecisionMode m : {DecisionMode::Chaff, DecisionMode::Evsids}) {
    const auto parsed = parse_decision_mode(to_string(m));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, m);
  }
  EXPECT_FALSE(parse_decision_mode("vsids").has_value());
  EXPECT_FALSE(parse_decision_mode("").has_value());
}

TEST(DecisionQueueTest, ChaffOrdersByLiteralCounts) {
  auto q = make(DecisionMode::Chaff, RankMode::None, 3);
  q->on_original_literal(Lit::make(1));
  q->on_original_literal(Lit::make(1));
  q->on_original_literal(Lit::make(2));
  // Literal seeding does not sift the heap (matching the monolithic
  // solver); a rebuild realizes the order.
  q->rebuild();
  EXPECT_EQ(q->pop(), 1);
  EXPECT_EQ(q->pop(), 2);
  EXPECT_EQ(q->pop(), 0);
  EXPECT_TRUE(q->empty());
}

TEST(DecisionQueueTest, EvsidsOrdersByAnalysisBumps) {
  auto q = make(DecisionMode::Evsids, RankMode::None, 3);
  // Original-literal counts do not move EVSIDS activity — only analysis
  // bumps do, and later bumps weigh more after decay inflation.
  for (int i = 0; i < 50; ++i) q->on_original_literal(Lit::make(0));
  q->on_analyzed_var(1);
  q->on_conflict();  // inflates the increment
  q->on_analyzed_var(2);
  EXPECT_EQ(q->pop(), 2);
  EXPECT_EQ(q->pop(), 1);
  EXPECT_EQ(q->pop(), 0);
}

TEST(DecisionQueueTest, EvsidsPhaseFollowsPolarityCounts) {
  auto q = make(DecisionMode::Evsids, RankMode::None, 1);
  EXPECT_EQ(q->pick_phase(0), Lit::make(0));  // ties go positive
  q->on_original_literal(Lit::make(0, true));
  q->on_original_literal(Lit::make(0, true));
  q->on_original_literal(Lit::make(0));
  EXPECT_EQ(q->pick_phase(0), Lit::make(0, true));
}

TEST(DecisionQueueTest, RankDominatesBothImplementations) {
  for (const DecisionMode m : {DecisionMode::Chaff, DecisionMode::Evsids}) {
    SCOPED_TRACE(to_string(m));
    auto q = make(m, RankMode::Static, 2);
    // var0 gets all the activity, var1 the rank: rank wins while active.
    for (int i = 0; i < 10; ++i) q->on_original_literal(Lit::make(0));
    q->on_analyzed_var(0);
    q->set_rank(1, 5.0);
    q->rebuild();
    EXPECT_TRUE(q->rank_active());
    EXPECT_EQ(q->pop(), 1);
    EXPECT_EQ(q->pop(), 0);
  }
}

TEST(DecisionQueueTest, DynamicSwitchMatchesAcrossImplementations) {
  for (const DecisionMode m : {DecisionMode::Chaff, DecisionMode::Evsids}) {
    SCOPED_TRACE(to_string(m));
    auto q = make(m, RankMode::Dynamic, 2);
    q->set_rank(1, 100.0);
    q->rebuild();
    EXPECT_TRUE(q->rank_active());
    // 1000 original literals, divisor 64 → threshold 15 decisions.
    EXPECT_FALSE(q->on_decision(15, 1000, 64));
    EXPECT_TRUE(q->rank_active());
    EXPECT_TRUE(q->on_decision(16, 1000, 64));
    EXPECT_FALSE(q->rank_active());
    EXPECT_TRUE(q->switched());
    EXPECT_FALSE(q->on_decision(17, 1000, 64));  // fires once
    q->reset_switch();
    EXPECT_TRUE(q->rank_active());
  }
}

TEST(DecisionQueueTest, PickBranchSkipsAssignedAndUsesSavedPhase) {
  auto q = make(DecisionMode::Evsids, RankMode::None, 3);
  q->on_analyzed_var(2);  // highest priority
  Trail trail(/*phase_saving=*/true);
  for (int i = 0; i < 3; ++i) trail.new_var();
  trail.new_decision_level();
  trail.assign(Lit::make(2), kClauseRefUndef);
  trail.cancel_until(0, [](Var) {});  // phase of var2 saved as true
  trail.new_decision_level();
  trail.assign(Lit::make(2, true), kClauseRefUndef);  // now assigned false
  // var2 is assigned: pick_branch must skip it and return var0 or var1.
  const Lit picked = q->pick_branch(trail);
  ASSERT_FALSE(picked.is_undef());
  EXPECT_NE(picked.var(), 2);

  // Re-insert everything; with var2 free again, the saved phase rules.
  q->insert(2);
  trail.cancel_until(0, [](Var) {});  // saves false for var2
  EXPECT_EQ(q->pick_branch(trail), Lit::make(2, true));
}

// ---- the EVSIDS solver end to end ----------------------------------------

SolverConfig evsids_config() {
  SolverConfig cfg;
  cfg.decision = DecisionMode::Evsids;
  return cfg;
}

TEST(EvsidsSolverTest, AgreesOnSatAndUnsat) {
  {
    Solver s(evsids_config());
    load(s, pigeonhole(4, 4));
    ASSERT_EQ(s.solve(), Result::Sat);
    EXPECT_TRUE(model_satisfies(s, pigeonhole(4, 4)));
  }
  {
    Solver s(evsids_config());
    load(s, pigeonhole(7, 6));
    EXPECT_EQ(s.solve(), Result::Unsat);
  }
}

TEST(EvsidsSolverTest, RandomFormulasAgreeWithReference) {
  Rng rng(0xE51D5);
  for (int iter = 0; iter < 40; ++iter) {
    const int nv = rng.next_int(8, 14);
    const Cnf cnf = test::random_ksat(rng, nv, nv * 4, 3);
    Solver s(evsids_config());
    load(s, cnf);
    ASSERT_EQ(s.solve(), reference_solve(cnf)) << iter;
  }
}

TEST(EvsidsSolverTest, CoreExtractionStillWorks) {
  Solver s(evsids_config());
  load(s, pigeonhole(6, 5));
  ASSERT_EQ(s.solve(), Result::Unsat);
  EXPECT_FALSE(s.unsat_core().empty());
}

TEST(EvsidsSolverTest, StaticRankRidesOnEvsids) {
  // The rank feed composes with the EVSIDS scorer exactly as with Chaff.
  SolverConfig cfg = evsids_config();
  cfg.rank_mode = RankMode::Static;
  Solver s(cfg);
  load(s, pigeonhole(5, 4));
  std::vector<double> rank(static_cast<std::size_t>(s.num_vars()), 1.0);
  s.set_variable_rank(rank);
  EXPECT_EQ(s.solve(), Result::Unsat);
  EXPECT_FALSE(s.stats().rank_switched);
}

}  // namespace
}  // namespace refbmc::sat
