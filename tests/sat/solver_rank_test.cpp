// External variable ranking inside the solver (paper §3.3): static and
// dynamic combination with VSIDS.
#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "sat/solver.hpp"

namespace refbmc::sat {
namespace {

using test::load;
using test::pigeonhole;

TEST(SolverRankTest, StaticRankSteersFirstDecision) {
  // Two independent satisfiable halves; the ranked variable is decided
  // first, which shows up as it being assigned by decision, not by BCP.
  SolverConfig cfg;
  cfg.rank_mode = RankMode::Static;
  Solver s(cfg);
  for (int i = 0; i < 4; ++i) s.new_var();
  s.add_clause({Lit::make(0), Lit::make(1)});
  s.add_clause({Lit::make(2), Lit::make(3)});
  const std::vector<double> rank{0.0, 0.0, 9.0, 0.0};
  s.set_variable_rank(rank);
  ASSERT_EQ(s.solve(), Result::Sat);
  EXPECT_GE(s.stats().decisions, 1u);
}

TEST(SolverRankTest, RanksAreAppliedPartially) {
  SolverConfig cfg;
  cfg.rank_mode = RankMode::Static;
  Solver s(cfg);
  for (int i = 0; i < 5; ++i) s.new_var();
  // Shorter vector than num_vars is allowed; the rest default to 0.
  const std::vector<double> rank{1.0, 2.0};
  EXPECT_NO_THROW(s.set_variable_rank(rank));
  // Longer than num_vars is rejected.
  const std::vector<double> too_long(7, 1.0);
  EXPECT_THROW(s.set_variable_rank(too_long), std::invalid_argument);
}

TEST(SolverRankTest, AllModesSolveIdentically) {
  // Correctness must be ordering-independent.
  for (const RankMode mode :
       {RankMode::None, RankMode::Static, RankMode::Dynamic}) {
    SolverConfig cfg;
    cfg.rank_mode = mode;
    {
      Solver s(cfg);
      load(s, pigeonhole(4, 4));
      std::vector<double> rank(static_cast<std::size_t>(s.num_vars()));
      for (std::size_t i = 0; i < rank.size(); ++i)
        rank[i] = static_cast<double>(i % 5);
      s.set_variable_rank(rank);
      EXPECT_EQ(s.solve(), Result::Sat) << to_string(mode);
    }
    {
      Solver s(cfg);
      load(s, pigeonhole(5, 4));
      std::vector<double> rank(static_cast<std::size_t>(s.num_vars()));
      for (std::size_t i = 0; i < rank.size(); ++i)
        rank[i] = static_cast<double>((i * 7) % 3);
      s.set_variable_rank(rank);
      EXPECT_EQ(s.solve(), Result::Unsat) << to_string(mode);
    }
  }
}

TEST(SolverRankTest, DynamicSwitchFiresOnHardProblem) {
  SolverConfig cfg;
  cfg.rank_mode = RankMode::Dynamic;
  cfg.dynamic_switch_divisor = 64;
  Solver s(cfg);
  load(s, pigeonhole(8, 7));
  // A deliberately misleading rank: spread thin over all variables.
  std::vector<double> rank(static_cast<std::size_t>(s.num_vars()), 0.0);
  rank[0] = 1.0;
  s.set_variable_rank(rank);
  ASSERT_EQ(s.solve(), Result::Unsat);
  // PHP(8,7) needs far more decisions than #literals/64, so the dynamic
  // policy must have fallen back to VSIDS.
  EXPECT_TRUE(s.stats().rank_switched);
}

TEST(SolverRankTest, DynamicSwitchRespectsDivisor) {
  // With a huge divisor the threshold is 0 decisions: switches instantly.
  SolverConfig cfg;
  cfg.rank_mode = RankMode::Dynamic;
  cfg.dynamic_switch_divisor = 1'000'000;
  Solver s(cfg);
  load(s, pigeonhole(4, 3));
  s.set_variable_rank(std::vector<double>(
      static_cast<std::size_t>(s.num_vars()), 1.0));
  ASSERT_EQ(s.solve(), Result::Unsat);
  EXPECT_TRUE(s.stats().rank_switched);
}

TEST(SolverRankTest, StaticNeverSwitches) {
  SolverConfig cfg;
  cfg.rank_mode = RankMode::Static;
  Solver s(cfg);
  load(s, pigeonhole(7, 6));
  s.set_variable_rank(std::vector<double>(
      static_cast<std::size_t>(s.num_vars()), 1.0));
  ASSERT_EQ(s.solve(), Result::Unsat);
  EXPECT_FALSE(s.stats().rank_switched);
}

TEST(SolverRankTest, PerfectRankReducesDecisionsOnSplitFormula) {
  // Formula = hard UNSAT kernel over a few variables ⊕ large easy
  // satisfiable part.  Ranking the kernel variables first should not do
  // worse than baseline on decisions (usually strictly better).
  const Cnf kernel = pigeonhole(4, 3);  // 12 vars, unsat
  const auto build = [&](SolverConfig cfg, Solver& s) {
    load(s, kernel);
    const int base = s.num_vars();
    for (int i = 0; i < 40; ++i) s.new_var();
    for (int i = 0; i < 39; ++i)
      s.add_clause({Lit::make(base + i), Lit::make(base + i + 1)});
    (void)cfg;
  };
  SolverConfig base_cfg;
  Solver baseline(base_cfg);
  build(base_cfg, baseline);
  ASSERT_EQ(baseline.solve(), Result::Unsat);

  SolverConfig rank_cfg;
  rank_cfg.rank_mode = RankMode::Static;
  Solver ranked(rank_cfg);
  build(rank_cfg, ranked);
  std::vector<double> rank(static_cast<std::size_t>(ranked.num_vars()), 0.0);
  for (int v = 0; v < kernel.num_vars; ++v)
    rank[static_cast<std::size_t>(v)] = 10.0;
  ranked.set_variable_rank(rank);
  ASSERT_EQ(ranked.solve(), Result::Unsat);

  EXPECT_LE(ranked.stats().decisions, baseline.stats().decisions);
}

}  // namespace
}  // namespace refbmc::sat
