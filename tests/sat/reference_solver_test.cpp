#include "sat/reference_solver.hpp"

#include <gtest/gtest.h>

#include "../helpers.hpp"

namespace refbmc::sat {
namespace {

using test::pigeonhole;

TEST(ReferenceSolverTest, TrivialCases) {
  Cnf empty;
  empty.num_vars = 0;
  EXPECT_EQ(reference_solve(empty), Result::Sat);

  Cnf unit;
  unit.num_vars = 1;
  unit.add_clause({Lit::make(0)});
  EXPECT_EQ(reference_solve(unit), Result::Sat);

  Cnf contradiction;
  contradiction.num_vars = 1;
  contradiction.add_clause({Lit::make(0)});
  contradiction.add_clause({Lit::make(0, true)});
  EXPECT_EQ(reference_solve(contradiction), Result::Unsat);

  Cnf empty_clause;
  empty_clause.num_vars = 1;
  empty_clause.add_clause({});
  EXPECT_EQ(reference_solve(empty_clause), Result::Unsat);
}

TEST(ReferenceSolverTest, RequiresBacktracking) {
  // (a∨b) ∧ (a∨¬b) ∧ (¬a∨c) ∧ (¬a∨¬c) — forces a, then contradiction.
  Cnf cnf;
  cnf.num_vars = 3;
  cnf.add_clause({Lit::make(0), Lit::make(1)});
  cnf.add_clause({Lit::make(0), Lit::make(1, true)});
  cnf.add_clause({Lit::make(0, true), Lit::make(2)});
  cnf.add_clause({Lit::make(0, true), Lit::make(2, true)});
  EXPECT_EQ(reference_solve(cnf), Result::Unsat);
}

TEST(ReferenceSolverTest, PigeonholeBothDirections) {
  EXPECT_EQ(reference_solve(pigeonhole(3, 3)), Result::Sat);
  EXPECT_EQ(reference_solve(pigeonhole(4, 3)), Result::Unsat);
  EXPECT_EQ(reference_solve(pigeonhole(5, 4)), Result::Unsat);
}

TEST(ReferenceSolverTest, PureVariableFormulasSat) {
  Cnf cnf;
  cnf.num_vars = 4;
  cnf.add_clause({Lit::make(0), Lit::make(1)});
  cnf.add_clause({Lit::make(2), Lit::make(3)});
  EXPECT_EQ(reference_solve(cnf), Result::Sat);
}

}  // namespace
}  // namespace refbmc::sat
