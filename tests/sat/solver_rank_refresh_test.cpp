// Mid-solve rank refresh (the portfolio's shared-ordering seam):
//
//   * the solver polls RankRefresh at level-0 boundaries (solve start
//     and restarts) and re-feeds the decision queue when an update is
//     pending — a refresh applied at solve start is indistinguishable
//     from having set the ranks up front;
//   * with no update pending the hook is invisible: trajectories are
//     bit-identical to a solver without it;
//   * a refresh never resurrects rank-primary ordering after the
//     dynamic fallback switched — §3.3's "this instance is hard"
//     verdict outlives it (DecisionQueue::refresh_ranks contract).
#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "../helpers.hpp"
#include "sat/solver.hpp"

namespace refbmc::sat {
namespace {

using test::load;
using test::pigeonhole;

/// Scripted refresh source: hands out `ranks` for `updates` polls, then
/// goes quiet.  Counts how many times the solver actually drew on it.
class StubRefresh final : public RankRefresh {
 public:
  StubRefresh(std::vector<double> ranks, int updates)
      : ranks_(std::move(ranks)), updates_(updates) {}

  bool has_update() const override { return updates_ > 0; }
  std::span<const double> refresh() override {
    --updates_;
    ++refreshes_;
    return ranks_;
  }
  int refreshes() const { return refreshes_; }

 private:
  std::vector<double> ranks_;
  int updates_;
  int refreshes_ = 0;
};

TEST(SolverRankRefreshTest, SolveStartRefreshEqualsUpfrontRank) {
  // Solver A gets rank r0 then a pending refresh to r1; solver B gets r1
  // directly.  The refresh lands before the first decision, so both must
  // walk the identical trajectory.
  const Cnf cnf = pigeonhole(5, 4);
  SolverConfig cfg;
  cfg.rank_mode = RankMode::Static;

  Solver refreshed(cfg);
  load(refreshed, cnf);
  std::vector<double> r0(static_cast<std::size_t>(refreshed.num_vars()), 0.0);
  std::vector<double> r1 = r0;
  for (std::size_t i = 0; i < r1.size(); ++i)
    r1[i] = static_cast<double>((i * 3) % 7);
  refreshed.set_variable_rank(r0);
  StubRefresh stub(r1, /*updates=*/1);
  refreshed.set_rank_refresh(&stub);
  ASSERT_EQ(refreshed.solve(), Result::Unsat);
  EXPECT_EQ(stub.refreshes(), 1);
  EXPECT_EQ(refreshed.stats().rank_refreshes, 1u);

  Solver upfront(cfg);
  load(upfront, cnf);
  upfront.set_variable_rank(r1);
  ASSERT_EQ(upfront.solve(), Result::Unsat);
  EXPECT_EQ(upfront.stats().rank_refreshes, 0u);

  EXPECT_EQ(refreshed.stats().decisions, upfront.stats().decisions);
  EXPECT_EQ(refreshed.stats().propagations, upfront.stats().propagations);
  EXPECT_EQ(refreshed.stats().conflicts, upfront.stats().conflicts);
}

TEST(SolverRankRefreshTest, QuietHookLeavesTrajectoryBitIdentical) {
  const Cnf cnf = pigeonhole(6, 5);
  SolverConfig cfg;
  cfg.rank_mode = RankMode::Static;

  const auto run = [&](bool with_hook) {
    Solver s(cfg);
    load(s, cnf);
    s.set_variable_rank(std::vector<double>(
        static_cast<std::size_t>(s.num_vars()), 1.0));
    StubRefresh stub({}, /*updates=*/0);  // never has an update
    if (with_hook) s.set_rank_refresh(&stub);
    EXPECT_EQ(s.solve(), Result::Unsat);
    EXPECT_EQ(s.stats().rank_refreshes, 0u);
    return s.stats().decisions;
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(SolverRankRefreshTest, RestartBoundariesDrainPendingUpdates) {
  // PHP(7,6) conflicts enough to restart many times with a small base;
  // a stub with several pending updates is drained one per boundary.
  SolverConfig cfg;
  cfg.rank_mode = RankMode::Static;
  cfg.restart_base = 4;
  Solver s(cfg);
  load(s, pigeonhole(7, 6));
  std::vector<double> ranks(static_cast<std::size_t>(s.num_vars()), 0.0);
  for (std::size_t i = 0; i < ranks.size(); ++i)
    ranks[i] = static_cast<double>(i % 4);
  s.set_variable_rank(ranks);
  StubRefresh stub(ranks, /*updates=*/3);
  s.set_rank_refresh(&stub);
  ASSERT_EQ(s.solve(), Result::Unsat);
  EXPECT_EQ(stub.refreshes(), 3);
  EXPECT_EQ(s.stats().rank_refreshes, 3u);
}

TEST(SolverRankRefreshTest, RefreshDoesNotResurrectSwitchedFallback) {
  // Queue-level contract: after the dynamic fallback fired, refresh_ranks
  // installs values but neither rebuilds rank-primary order nor clears
  // the switch.
  for (const DecisionMode mode : {DecisionMode::Chaff, DecisionMode::Evsids}) {
    SCOPED_TRACE(to_string(mode));
    const auto queue = make_decision_queue(mode, RankMode::Dynamic,
                                           /*vsids_update_period=*/256,
                                           /*evsids_decay=*/0.95);
    for (int v = 0; v < 8; ++v) queue->add_var();
    const std::vector<double> ranks{7, 6, 5, 4, 3, 2, 1, 0};
    EXPECT_TRUE(queue->refresh_ranks(ranks));  // rank active: heap re-keyed

    // Force the switch: decisions far beyond #literals / divisor.
    EXPECT_TRUE(queue->on_decision(/*num_decisions=*/1000,
                                   /*num_original_literals=*/64,
                                   /*switch_divisor=*/64));
    ASSERT_TRUE(queue->switched());
    ASSERT_FALSE(queue->rank_active());

    EXPECT_FALSE(queue->refresh_ranks(ranks));  // values only, no rebuild
    EXPECT_TRUE(queue->switched());
    EXPECT_FALSE(queue->rank_active());

    // The next solve re-arms the fallback as before.
    queue->reset_switch();
    EXPECT_FALSE(queue->switched());
    EXPECT_TRUE(queue->rank_active());
  }
}

TEST(SolverRankRefreshTest, VerdictsSurviveArbitraryRefreshes) {
  // Correctness is ordering-independent: hammering the solver with a
  // fresh (different) rank at every boundary changes no verdict.
  class Rotating final : public RankRefresh {
   public:
    explicit Rotating(std::size_t n) : ranks_(n, 0.0) {}
    bool has_update() const override { return true; }
    std::span<const double> refresh() override {
      for (std::size_t i = 0; i < ranks_.size(); ++i)
        ranks_[i] = static_cast<double>((i + step_) % 5);
      ++step_;
      return ranks_;
    }

   private:
    std::vector<double> ranks_;
    std::size_t step_ = 0;
  };

  for (const RankMode mode : {RankMode::Static, RankMode::Dynamic}) {
    SolverConfig cfg;
    cfg.rank_mode = mode;
    cfg.restart_base = 8;
    {
      Solver s(cfg);
      load(s, pigeonhole(6, 5));
      Rotating rot(static_cast<std::size_t>(s.num_vars()));
      s.set_rank_refresh(&rot);
      EXPECT_EQ(s.solve(), Result::Unsat) << to_string(mode);
      EXPECT_GT(s.stats().rank_refreshes, 0u);
    }
    {
      Solver s(cfg);
      load(s, pigeonhole(4, 4));
      Rotating rot(static_cast<std::size_t>(s.num_vars()));
      s.set_rank_refresh(&rot);
      EXPECT_EQ(s.solve(), Result::Sat) << to_string(mode);
    }
  }
}

}  // namespace
}  // namespace refbmc::sat
