// The Propagator layer: inlined binary watch lists, blocking-literal
// skips, watch migration after in-place shrinking — asserted through the
// new hot-path counters, at component level and through the full solver.
#include "sat/propagator.hpp"

#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "sat/solver.hpp"
#include "sat/trail.hpp"

namespace refbmc::sat {
namespace {

Lit pos(Var v) { return Lit::make(v); }
Lit neg(Var v) { return Lit::make(v, true); }

struct Core {
  Trail trail;
  Propagator prop;
  ClauseArena arena;
  SolverStats stats;

  void vars(int n) {
    for (int i = 0; i < n; ++i) {
      trail.new_var();
      prop.new_var();
    }
  }
  ClauseRef clause(std::initializer_list<Lit> lits, ClauseId id = 1) {
    const ClauseRef cref = arena.alloc(std::vector<Lit>(lits), id, false);
    prop.attach(arena, cref);
    return cref;
  }
  ClauseRef propagate() { return prop.propagate(trail, arena, stats); }
};

TEST(PropagatorTest, BinaryClausePropagatesWithoutArena) {
  Core c;
  c.vars(2);
  c.clause({pos(0), pos(1)});
  EXPECT_EQ(c.prop.num_binary_watches(neg(0)), 1u);
  EXPECT_EQ(c.prop.num_long_watches(neg(0)), 0u);

  c.trail.assign(neg(0), kClauseRefUndef);
  EXPECT_EQ(c.propagate(), kClauseRefUndef);
  EXPECT_EQ(c.trail.value(pos(1)), l_True);
  EXPECT_EQ(c.stats.binary_propagations, 1u);
}

TEST(PropagatorTest, BinaryConflictReturnsClause) {
  Core c;
  c.vars(2);
  const ClauseRef cref = c.clause({pos(0), pos(1)});
  c.trail.new_decision_level();
  c.trail.assign(neg(1), kClauseRefUndef);
  c.trail.assign(neg(0), kClauseRefUndef);
  EXPECT_EQ(c.propagate(), cref);
  EXPECT_TRUE(c.trail.fully_propagated());  // queue flushed on conflict
}

TEST(PropagatorTest, BlockerSkipAvoidsClauseFetch) {
  Core c;
  c.vars(3);
  c.clause({pos(0), pos(1), pos(2)});  // watches on lits 0 and 1
  // Satisfy the cached blocker (lit 1) first, then falsify watch lit 0:
  // the watcher visit must resolve on the blocker alone.
  c.trail.assign(pos(1), kClauseRefUndef);
  ASSERT_EQ(c.propagate(), kClauseRefUndef);
  EXPECT_EQ(c.stats.blocker_skips, 0u);
  c.trail.assign(neg(0), kClauseRefUndef);
  ASSERT_EQ(c.propagate(), kClauseRefUndef);
  EXPECT_EQ(c.stats.blocker_skips, 1u);
  EXPECT_EQ(c.trail.value(pos(2)), l_Undef);  // clause never inspected
}

TEST(PropagatorTest, LongClausePropagatesWhenReducedToUnit) {
  Core c;
  c.vars(3);
  const ClauseRef cref = c.clause({pos(0), pos(1), pos(2)});
  c.trail.new_decision_level();
  c.trail.assign(neg(2), kClauseRefUndef);
  ASSERT_EQ(c.propagate(), kClauseRefUndef);
  c.trail.assign(neg(0), kClauseRefUndef);
  ASSERT_EQ(c.propagate(), kClauseRefUndef);
  EXPECT_EQ(c.trail.value(pos(1)), l_True);
  EXPECT_EQ(c.trail.reason(1), cref);
  EXPECT_EQ(c.stats.binary_propagations, 0u);  // long path, not inline
}

TEST(PropagatorTest, ShrunkToBinaryMigratesIntoInlineLists) {
  Core c;
  c.vars(4);
  const ClauseRef cref = c.clause({pos(0), pos(1), pos(2), pos(3)});
  EXPECT_EQ(c.prop.num_long_watches(neg(0)), 1u);

  // Tail literals drop (as strengthen_learned does); size 3 stays long.
  c.arena.shrink_clause(cref, 3);
  c.prop.on_clause_shrunk(c.arena, cref);
  EXPECT_EQ(c.prop.num_long_watches(neg(0)), 1u);
  EXPECT_EQ(c.prop.num_binary_watches(neg(0)), 0u);

  // Shrinking to two literals moves the watchers to the inline lists.
  c.arena.shrink_clause(cref, 2);
  c.prop.on_clause_shrunk(c.arena, cref);
  EXPECT_EQ(c.prop.num_long_watches(neg(0)), 0u);
  EXPECT_EQ(c.prop.num_long_watches(neg(1)), 0u);
  EXPECT_EQ(c.prop.num_binary_watches(neg(0)), 1u);
  EXPECT_EQ(c.prop.num_binary_watches(neg(1)), 1u);

  // ...and propagation now takes the arena-free binary path.
  c.trail.assign(neg(0), kClauseRefUndef);
  EXPECT_EQ(c.propagate(), kClauseRefUndef);
  EXPECT_EQ(c.trail.value(pos(1)), l_True);
  EXPECT_EQ(c.stats.binary_propagations, 1u);
}

TEST(PropagatorTest, DetachCoversBothSizeClasses) {
  Core c;
  c.vars(3);
  const ClauseRef bin = c.clause({pos(0), pos(1)}, 1);
  const ClauseRef lng = c.clause({pos(0), pos(1), pos(2)}, 2);
  c.prop.detach(c.arena, bin);
  EXPECT_EQ(c.prop.num_binary_watches(neg(0)), 0u);
  c.prop.detach(c.arena, lng);
  EXPECT_EQ(c.prop.num_long_watches(neg(0)), 0u);
  c.trail.assign(neg(0), kClauseRefUndef);
  EXPECT_EQ(c.propagate(), kClauseRefUndef);
  EXPECT_EQ(c.trail.value(1), l_Undef);  // nothing watched anymore
}

// ---- through the full solver ---------------------------------------------

TEST(PropagatorSolverTest, BinaryOnlyInstanceUsesOnlyTheInlinePath) {
  // An implication chain x0 -> x1 -> ... -> x_n: solving is pure binary
  // BCP, so every propagation but the seed unit is an inline assignment.
  const int n = 50;
  Solver s;
  for (int i = 0; i < n; ++i) s.new_var();
  for (int i = 0; i + 1 < n; ++i)
    s.add_clause({Lit::make(i, true), Lit::make(i + 1)});
  s.add_clause({Lit::make(0)});
  ASSERT_EQ(s.solve(), Result::Sat);
  EXPECT_EQ(s.stats().binary_propagations, static_cast<std::uint64_t>(n - 1));
  EXPECT_EQ(s.stats().blocker_skips, 0u);  // no long clauses exist
  for (int i = 0; i < n; ++i)
    EXPECT_TRUE(s.model_literal_true(Lit::make(i)));
}

TEST(PropagatorSolverTest, BlockerSkipsShowUpOnLongClauses) {
  Solver s;
  test::load(s, test::pigeonhole(6, 5));
  ASSERT_EQ(s.solve(), Result::Unsat);
  // PHP hole axioms are binary and pigeon axioms long: both hot paths
  // must have fired.
  EXPECT_GT(s.stats().binary_propagations, 0u);
  EXPECT_GT(s.stats().blocker_skips, 0u);
}

TEST(PropagatorSolverTest, CountersSurviveGcChurn) {
  SolverConfig cfg;
  cfg.reduce_base = 4;
  cfg.reduce_grow = 1.05;
  cfg.restart_base = 2;
  Solver s(cfg);
  test::load(s, test::pigeonhole(7, 6));
  ASSERT_EQ(s.solve(), Result::Unsat);
  EXPECT_GT(s.stats().arena_gcs, 0u);  // the churn actually happened
  EXPECT_GT(s.stats().binary_propagations, 0u);
  EXPECT_GT(s.stats().blocker_skips, 0u);
}

}  // namespace
}  // namespace refbmc::sat
