// The Trail layer in isolation: assignment stack, levels, reasons, the
// propagation queue, and backtracking with the unassign callback.
#include "sat/trail.hpp"

#include <gtest/gtest.h>

namespace refbmc::sat {
namespace {

Lit pos(Var v) { return Lit::make(v); }
Lit neg(Var v) { return Lit::make(v, true); }

TEST(TrailTest, NewVarsStartUnassigned) {
  Trail t;
  for (int i = 0; i < 3; ++i) EXPECT_EQ(t.new_var(), i);
  EXPECT_EQ(t.num_vars(), 3);
  for (Var v = 0; v < 3; ++v) {
    EXPECT_EQ(t.value(v), l_Undef);
    EXPECT_EQ(t.reason(v), kClauseRefUndef);
  }
  EXPECT_EQ(t.decision_level(), 0);
  EXPECT_TRUE(t.fully_propagated());
}

TEST(TrailTest, AssignRecordsValueLevelReason) {
  Trail t;
  for (int i = 0; i < 3; ++i) t.new_var();
  t.assign(pos(0), kClauseRefUndef);  // root fact
  t.new_decision_level();
  t.assign(neg(1), kClauseRefUndef);  // decision
  t.assign(pos(2), /*reason=*/40);    // implied
  EXPECT_EQ(t.value(pos(0)), l_True);
  EXPECT_EQ(t.value(neg(1)), l_True);
  EXPECT_EQ(t.value(pos(1)), l_False);
  EXPECT_EQ(t.level(0), 0);
  EXPECT_EQ(t.level(1), 1);
  EXPECT_EQ(t.level(2), 1);
  EXPECT_EQ(t.reason(2), 40u);
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0], pos(0));
  EXPECT_EQ(t[2], pos(2));
}

TEST(TrailTest, QueueDrainsInAssignmentOrder) {
  Trail t;
  for (int i = 0; i < 3; ++i) t.new_var();
  t.assign(pos(0), kClauseRefUndef);
  t.assign(pos(1), kClauseRefUndef);
  EXPECT_FALSE(t.fully_propagated());
  EXPECT_EQ(t.dequeue(), pos(0));
  t.assign(pos(2), kClauseRefUndef);  // enqueued mid-drain
  EXPECT_EQ(t.dequeue(), pos(1));
  EXPECT_EQ(t.dequeue(), pos(2));
  EXPECT_TRUE(t.fully_propagated());
}

TEST(TrailTest, FlushQueueDiscardsPending) {
  Trail t;
  for (int i = 0; i < 2; ++i) t.new_var();
  t.assign(pos(0), kClauseRefUndef);
  t.flush_queue();
  EXPECT_TRUE(t.fully_propagated());
}

TEST(TrailTest, CancelUntilUnassignsAboveLevelMostRecentFirst) {
  Trail t;
  for (int i = 0; i < 4; ++i) t.new_var();
  t.assign(pos(0), kClauseRefUndef);
  t.new_decision_level();
  t.assign(pos(1), kClauseRefUndef);
  t.new_decision_level();
  t.assign(pos(2), kClauseRefUndef);
  t.assign(pos(3), 8);

  std::vector<Var> unassigned;
  t.cancel_until(1, [&](Var v) { unassigned.push_back(v); });
  EXPECT_EQ(unassigned, (std::vector<Var>{3, 2}));
  EXPECT_EQ(t.decision_level(), 1);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.value(2), l_Undef);
  EXPECT_EQ(t.reason(3), kClauseRefUndef);
  EXPECT_EQ(t.value(1), l_True);  // level 1 survives

  // Cancelling at or above the current level is a no-op.
  t.cancel_until(1, [&](Var) { FAIL() << "nothing to unassign"; });
  t.cancel_until(5, [&](Var) { FAIL() << "nothing to unassign"; });
}

TEST(TrailTest, CancelRewindsQueueHead) {
  Trail t;
  for (int i = 0; i < 2; ++i) t.new_var();
  t.new_decision_level();
  t.assign(pos(0), kClauseRefUndef);
  t.assign(pos(1), kClauseRefUndef);
  while (!t.fully_propagated()) t.dequeue();
  t.cancel_until(0, [](Var) {});
  EXPECT_TRUE(t.fully_propagated());  // nothing pending on an empty trail
  t.new_decision_level();
  t.assign(pos(1), kClauseRefUndef);
  EXPECT_EQ(t.dequeue(), pos(1));  // re-assignments re-enter the queue
}

TEST(TrailTest, SavedPhaseOnlyWithSavingEnabled) {
  Trail off(false);
  off.new_var();
  off.new_decision_level();
  off.assign(neg(0), kClauseRefUndef);
  off.cancel_until(0, [](Var) {});
  EXPECT_EQ(off.saved_phase(0), l_Undef);

  Trail on(true);
  on.new_var();
  EXPECT_EQ(on.saved_phase(0), l_Undef);  // never assigned yet
  on.new_decision_level();
  on.assign(neg(0), kClauseRefUndef);
  on.cancel_until(0, [](Var) {});
  EXPECT_EQ(on.saved_phase(0), l_False);
}

TEST(TrailTest, AbstractLevelHashesLevelBits) {
  Trail t;
  for (int i = 0; i < 2; ++i) t.new_var();
  t.new_decision_level();
  t.assign(pos(0), kClauseRefUndef);
  EXPECT_EQ(t.abstract_level(0), 1u << 1);
}

}  // namespace
}  // namespace refbmc::sat
