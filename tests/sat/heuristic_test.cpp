#include "sat/heuristic.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace refbmc::sat {
namespace {

// DecisionHeuristic is pinned in place (its heap comparator captures
// `this`), so tests allocate it behind a unique_ptr.
std::unique_ptr<DecisionHeuristic> make_heuristic(int nvars,
                                                  int period = 256) {
  auto h = std::make_unique<DecisionHeuristic>(period);
  for (int i = 0; i < nvars; ++i) h->add_var();
  return h;
}

TEST(HeuristicTest, InitialScoresAreLiteralCounts) {
  auto hp = make_heuristic(3); auto& h = *hp;
  // var0 appears twice positive, var1 once negative.
  h.on_original_literal(Lit::make(0));
  h.on_original_literal(Lit::make(0));
  h.on_original_literal(Lit::make(1, true));
  EXPECT_DOUBLE_EQ(h.cha_score(Lit::make(0)), 2.0);
  EXPECT_DOUBLE_EQ(h.cha_score(Lit::make(0, true)), 0.0);
  EXPECT_DOUBLE_EQ(h.cha_score(Lit::make(1, true)), 1.0);
}

TEST(HeuristicTest, PopsHighestChaScore) {
  auto hp = make_heuristic(3); auto& h = *hp;
  h.on_original_literal(Lit::make(1));
  h.on_original_literal(Lit::make(1));
  h.on_original_literal(Lit::make(2));
  for (int v = 0; v < 3; ++v) h.insert(v);
  EXPECT_EQ(h.pop(), 1);
  EXPECT_EQ(h.pop(), 2);
  EXPECT_EQ(h.pop(), 0);
}

TEST(HeuristicTest, PeriodicUpdateHalvesAndAdds) {
  auto hp = make_heuristic(1, /*period=*/2); auto& h = *hp;
  h.on_original_literal(Lit::make(0));
  h.on_original_literal(Lit::make(0));
  h.on_original_literal(Lit::make(0));
  h.on_original_literal(Lit::make(0));  // cha(0+) = 4
  h.on_learned_literal(Lit::make(0));   // new count 1
  h.on_conflict();                      // 1 of 2: no update yet
  EXPECT_DOUBLE_EQ(h.cha_score(Lit::make(0)), 4.0);
  h.on_conflict();  // period reached: 4/2 + 1 = 3
  EXPECT_DOUBLE_EQ(h.cha_score(Lit::make(0)), 3.0);
  EXPECT_EQ(h.num_updates(), 1u);
  // New-literal counters reset after the update.
  h.on_conflict();
  h.on_conflict();  // 3/2 + 0 = 1.5
  EXPECT_DOUBLE_EQ(h.cha_score(Lit::make(0)), 1.5);
}

TEST(HeuristicTest, PickPhasePrefersHigherScoreLiteral) {
  auto hp = make_heuristic(1); auto& h = *hp;
  h.on_original_literal(Lit::make(0, true));
  h.on_original_literal(Lit::make(0, true));
  h.on_original_literal(Lit::make(0));
  EXPECT_EQ(h.pick_phase(0), Lit::make(0, true));
  // Ties go to the positive phase.
  auto hp2 = make_heuristic(1); auto& h2 = *hp2;
  EXPECT_EQ(h2.pick_phase(0), Lit::make(0));
}

TEST(HeuristicTest, StaticModeRankDominates) {
  auto hp = make_heuristic(2); auto& h = *hp;
  h.set_rank_mode(RankMode::Static);
  // var0 has huge VSIDS score, var1 has the rank.
  for (int i = 0; i < 10; ++i) h.on_original_literal(Lit::make(0));
  h.set_rank(1, 5.0);
  h.insert(0);
  h.insert(1);
  EXPECT_TRUE(h.rank_active());
  EXPECT_EQ(h.pop(), 1);  // rank wins over cha_score
  EXPECT_EQ(h.pop(), 0);
}

TEST(HeuristicTest, ChaScoreBreaksRankTies) {
  auto hp = make_heuristic(2); auto& h = *hp;
  h.set_rank_mode(RankMode::Static);
  h.set_rank(0, 5.0);
  h.set_rank(1, 5.0);
  h.on_original_literal(Lit::make(1));
  h.insert(0);
  h.insert(1);
  EXPECT_EQ(h.pop(), 1);  // equal rank → higher cha_score first
}

TEST(HeuristicTest, NoneModeIgnoresRank) {
  auto hp = make_heuristic(2); auto& h = *hp;
  h.set_rank_mode(RankMode::None);
  h.set_rank(1, 100.0);
  h.on_original_literal(Lit::make(0));
  h.insert(0);
  h.insert(1);
  EXPECT_FALSE(h.rank_active());
  EXPECT_EQ(h.pop(), 0);
}

TEST(HeuristicTest, DynamicSwitchesAtThreshold) {
  auto hp = make_heuristic(2); auto& h = *hp;
  h.set_rank_mode(RankMode::Dynamic);
  h.set_rank(1, 100.0);
  h.insert(0);
  h.insert(1);
  EXPECT_TRUE(h.rank_active());
  // 1000 original literals, divisor 64 → threshold 15 decisions.
  EXPECT_FALSE(h.on_decision(15, 1000, 64));
  EXPECT_TRUE(h.rank_active());
  EXPECT_TRUE(h.on_decision(16, 1000, 64));
  EXPECT_FALSE(h.rank_active());
  EXPECT_TRUE(h.switched());
  // Further decisions do not re-trigger.
  EXPECT_FALSE(h.on_decision(17, 1000, 64));
}

TEST(HeuristicTest, StaticNeverSwitches) {
  auto hp = make_heuristic(1); auto& h = *hp;
  h.set_rank_mode(RankMode::Static);
  EXPECT_FALSE(h.on_decision(1'000'000, 10, 64));
  EXPECT_TRUE(h.rank_active());
}

TEST(HeuristicTest, SwitchRebuildsOrdering) {
  auto hp = make_heuristic(2); auto& h = *hp;
  h.set_rank_mode(RankMode::Dynamic);
  h.set_rank(1, 100.0);       // rank favors var1
  h.on_original_literal(Lit::make(0));  // VSIDS favors var0
  h.insert(0);
  h.insert(1);
  h.on_decision(1000, 10, 64);  // force the switch
  EXPECT_EQ(h.pop(), 0);        // now pure VSIDS order
}

TEST(HeuristicTest, ReplaceModeIgnoresChaScores) {
  auto hp = make_heuristic(2); auto& h = *hp;
  h.set_rank_mode(RankMode::Replace);
  // Equal ranks; var1 has a much higher cha_score.  In Replace mode the
  // tie goes to the lower index, not to VSIDS.
  h.set_rank(0, 5.0);
  h.set_rank(1, 5.0);
  for (int i = 0; i < 10; ++i) h.on_original_literal(Lit::make(1));
  h.insert(0);
  h.insert(1);
  EXPECT_TRUE(h.rank_active());
  EXPECT_EQ(h.pop(), 0);
  EXPECT_EQ(h.pop(), 1);
}

TEST(HeuristicTest, ReplaceModeNeverSwitches) {
  auto hp = make_heuristic(1); auto& h = *hp;
  h.set_rank_mode(RankMode::Replace);
  EXPECT_FALSE(h.on_decision(1'000'000, 10, 64));
  EXPECT_TRUE(h.rank_active());
}

TEST(HeuristicTest, InsertIsIdempotent) {
  auto hp = make_heuristic(1); auto& h = *hp;
  h.insert(0);
  h.insert(0);
  EXPECT_EQ(h.pop(), 0);
  EXPECT_TRUE(h.heap_empty());
}

TEST(HeuristicTest, RejectsNonPositivePeriod) {
  EXPECT_THROW(DecisionHeuristic(0), std::invalid_argument);
}

}  // namespace
}  // namespace refbmc::sat
