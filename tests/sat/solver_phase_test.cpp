// Phase-saving option: correctness is unaffected; saved polarities are
// actually used after backtracking.
#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "sat/reference_solver.hpp"
#include "sat/solver.hpp"

namespace refbmc::sat {
namespace {

using test::load;
using test::model_satisfies;
using test::pigeonhole;
using test::random_ksat;

TEST(PhaseSavingTest, VerdictsUnchangedOnRandomFormulas) {
  Rng rng(0x9999);
  for (int iter = 0; iter < 100; ++iter) {
    const int nv = rng.next_int(4, 12);
    const Cnf cnf = random_ksat(rng, nv, rng.next_int(nv, nv * 6), 3);
    const Result expected = reference_solve(cnf);
    SolverConfig cfg;
    cfg.phase_saving = true;
    Solver s(cfg);
    load(s, cnf);
    ASSERT_EQ(s.solve(), expected) << iter;
    if (expected == Result::Sat) {
      EXPECT_TRUE(model_satisfies(s, cnf));
    }
  }
}

TEST(PhaseSavingTest, WorksWithRankModes) {
  for (const RankMode mode :
       {RankMode::None, RankMode::Static, RankMode::Dynamic}) {
    SolverConfig cfg;
    cfg.phase_saving = true;
    cfg.rank_mode = mode;
    Solver s(cfg);
    load(s, pigeonhole(6, 5));
    std::vector<double> rank(static_cast<std::size_t>(s.num_vars()), 1.0);
    s.set_variable_rank(rank);
    EXPECT_EQ(s.solve(), Result::Unsat) << to_string(mode);
  }
}

TEST(PhaseSavingTest, SolvesSatWithBothSettings) {
  for (const bool saving : {false, true}) {
    SolverConfig cfg;
    cfg.phase_saving = saving;
    Solver s(cfg);
    const Cnf cnf = pigeonhole(5, 5);
    load(s, cnf);
    ASSERT_EQ(s.solve(), Result::Sat) << saving;
    EXPECT_TRUE(model_satisfies(s, cnf)) << saving;
  }
}

TEST(PhaseSavingTest, CoreExtractionUnaffected) {
  SolverConfig cfg;
  cfg.phase_saving = true;
  cfg.restart_base = 8;
  Solver s(cfg);
  load(s, pigeonhole(7, 6));
  ASSERT_EQ(s.solve(), Result::Unsat);
  EXPECT_FALSE(s.unsat_core().empty());
}

}  // namespace
}  // namespace refbmc::sat
