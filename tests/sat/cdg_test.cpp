#include "sat/cdg.hpp"

#include <gtest/gtest.h>

namespace refbmc::sat {
namespace {

TEST(CdgTest, CoreRequiresFinalConflict) {
  ConflictDependencyGraph cdg;
  for (ClauseId id = 1; id <= 3; ++id) cdg.register_original(id);
  EXPECT_FALSE(cdg.has_final_conflict());
  EXPECT_THROW(cdg.original_core(), std::invalid_argument);
}

TEST(CdgTest, DirectOriginalConflict) {
  // The empty clause resolves directly from originals 1 and 3.
  ConflictDependencyGraph cdg;
  for (ClauseId id = 1; id <= 3; ++id) cdg.register_original(id);
  cdg.set_final_conflict({1, 3});
  EXPECT_EQ(cdg.original_core(), (std::vector<ClauseId>{1, 3}));
}

TEST(CdgTest, TraversesLearnedChain) {
  // originals 1..4; learned 5 ← {1,2}; learned 6 ← {5,3}; final ← {6}.
  ConflictDependencyGraph cdg;
  for (ClauseId id = 1; id <= 4; ++id) cdg.register_original(id);
  cdg.add_learned(5, {1, 2});
  cdg.add_learned(6, {5, 3});
  cdg.set_final_conflict({6});
  EXPECT_EQ(cdg.original_core(), (std::vector<ClauseId>{1, 2, 3}));
}

TEST(CdgTest, UnreachableOriginalsExcluded) {
  ConflictDependencyGraph cdg;
  for (ClauseId id = 1; id <= 10; ++id) cdg.register_original(id);
  cdg.add_learned(11, {1, 2});
  cdg.add_learned(12, {9});
  cdg.set_final_conflict({11});  // clause 12 and original 9 are irrelevant
  EXPECT_EQ(cdg.original_core(), (std::vector<ClauseId>{1, 2}));
}

TEST(CdgTest, InterleavedOriginalAndLearnedIds) {
  // Incremental pattern: originals 1,2 → learned 3 → new originals 4,5 →
  // learned 6 referencing both generations.
  ConflictDependencyGraph cdg;
  cdg.register_original(1);
  cdg.register_original(2);
  cdg.add_learned(3, {1, 2});
  cdg.register_original(4);
  cdg.register_original(5);
  cdg.add_learned(6, {3, 4});
  cdg.set_final_conflict({6, 5});
  EXPECT_EQ(cdg.original_core(), (std::vector<ClauseId>{1, 2, 4, 5}));
  EXPECT_TRUE(cdg.is_original(4));
  EXPECT_FALSE(cdg.is_original(3));
}

TEST(CdgTest, SharedAntecedentsVisitedOnce) {
  ConflictDependencyGraph cdg;
  cdg.register_original(1);
  cdg.register_original(2);
  cdg.add_learned(3, {1, 2});
  cdg.add_learned(4, {3, 1});
  cdg.add_learned(5, {3, 4, 2});
  cdg.set_final_conflict({5, 5, 3});
  EXPECT_EQ(cdg.original_core(), (std::vector<ClauseId>{1, 2}));
}

TEST(CdgTest, DuplicateEdgesTolerated) {
  ConflictDependencyGraph cdg;
  cdg.register_original(1);
  cdg.register_original(2);
  cdg.add_learned(3, {1, 1, 2, 2});
  cdg.set_final_conflict({3});
  EXPECT_EQ(cdg.original_core(), (std::vector<ClauseId>{1, 2}));
}

TEST(CdgTest, FinalConflictCanBeOverwritten) {
  // A persistent solver may refute several assumption sets in turn.
  ConflictDependencyGraph cdg;
  cdg.register_original(1);
  cdg.register_original(2);
  cdg.set_final_conflict({1});
  EXPECT_EQ(cdg.original_core(), (std::vector<ClauseId>{1}));
  cdg.set_final_conflict({2});
  EXPECT_EQ(cdg.original_core(), (std::vector<ClauseId>{2}));
}

TEST(CdgTest, EmptyFinalConflictGivesEmptyCore) {
  // Assumptions refuting each other need no clauses at all.
  ConflictDependencyGraph cdg;
  cdg.register_original(1);
  cdg.set_final_conflict({});
  EXPECT_TRUE(cdg.original_core().empty());
}

TEST(CdgTest, NonDenseIdsRejected) {
  ConflictDependencyGraph cdg;
  cdg.register_original(1);
  EXPECT_THROW(cdg.register_original(3), std::logic_error);
  EXPECT_THROW(cdg.add_learned(4, {1}), std::logic_error);
}

TEST(CdgTest, ForwardAntecedentRejected) {
  ConflictDependencyGraph cdg;
  cdg.register_original(1);
  cdg.register_original(2);
  EXPECT_THROW(cdg.add_learned(3, {3}), std::logic_error);
  EXPECT_THROW(cdg.add_learned(3, {4}), std::logic_error);
}

TEST(CdgTest, StatsAndClear) {
  ConflictDependencyGraph cdg;
  cdg.register_original(1);
  cdg.register_original(2);
  cdg.add_learned(3, {1, 2});
  cdg.add_learned(4, {3});
  EXPECT_EQ(cdg.num_clauses(), 4u);
  EXPECT_EQ(cdg.num_learned_nodes(), 2u);
  EXPECT_EQ(cdg.num_edges(), 3u);
  EXPECT_GT(cdg.memory_bytes(), 0u);
  cdg.clear();
  EXPECT_EQ(cdg.num_clauses(), 0u);
  EXPECT_EQ(cdg.num_learned_nodes(), 0u);
  EXPECT_EQ(cdg.num_edges(), 0u);
  EXPECT_FALSE(cdg.has_final_conflict());
}

}  // namespace
}  // namespace refbmc::sat
