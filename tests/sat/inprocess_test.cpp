// Clause vivification at restart boundaries (PR 7): the in-solver
// half of the simplification layer.  Vivification rewrites learned
// clauses, so the contract under test is behavioural — verdicts,
// models, and unsat cores must be exactly what the plain solver
// produces — plus the counters that prove the pass actually ran, and
// the default-off guarantee that keeps `--preprocess off` bit-identical
// to the previous pipeline.
#include "sat/inprocess.hpp"

#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "sat/core_verify.hpp"
#include "sat/solver.hpp"
#include "util/rng.hpp"

namespace refbmc::sat {
namespace {

using test::load;
using test::model_satisfies;
using test::pigeonhole;
using test::random_ksat;

/// A config that restarts early and vivifies at every restart, so even
/// modest instances exercise the pass (the production default of 256
/// conflicts per Luby unit needs bigger formulas than a unit test
/// should carry).
SolverConfig vivify_config() {
  SolverConfig cfg;
  cfg.restart_base = 16;
  cfg.inprocess.vivify_interval = 1;
  cfg.inprocess.vivify_max_clauses = 1024;
  cfg.inprocess.vivify_prop_budget = 200000;
  return cfg;
}

TEST(InprocessTest, DefaultConfigNeverVivifies) {
  // vivify_interval defaults to 0: the restart seam must stay inert
  // even on an instance that restarts many times.
  SolverConfig cfg;
  cfg.restart_base = 16;
  Solver s(cfg);
  load(s, pigeonhole(7, 6));
  EXPECT_EQ(s.solve(), Result::Unsat);
  EXPECT_GT(s.stats().restarts, 0u);
  EXPECT_EQ(s.stats().vivify_rounds, 0u);
  EXPECT_EQ(s.stats().vivified_clauses, 0u);
  EXPECT_EQ(s.stats().vivified_literals, 0u);
  EXPECT_EQ(s.stats().inprocess_us, 0u);
}

TEST(InprocessTest, VivifiesOnRestartingUnsatInstance) {
  // PHP(7,6) restarts plenty; with interval 1 every restart runs a
  // round, and the verdict must stay Unsat.
  Solver s(vivify_config());
  load(s, pigeonhole(7, 6));
  EXPECT_EQ(s.solve(), Result::Unsat);
  EXPECT_GT(s.stats().restarts, 0u);
  EXPECT_GT(s.stats().vivify_rounds, 0u);
}

TEST(InprocessTest, SatVerdictAndModelSurviveVivification) {
  // Satisfiable random 3-SAT near the phase transition: enough
  // conflicts to restart, and the final model must still satisfy the
  // ORIGINAL formula (vivification touches only learned clauses, but
  // this is the end-to-end check that it never corrupted the search).
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const Cnf cnf = random_ksat(rng, 60, 240, 3);
    Solver plain;
    load(plain, cnf);
    const Result expected = plain.solve();

    Solver vivified(vivify_config());
    load(vivified, cnf);
    EXPECT_EQ(vivified.solve(), expected) << "trial " << trial;
    if (expected == Result::Sat) {
      EXPECT_TRUE(model_satisfies(vivified, cnf)) << "trial " << trial;
    }
  }
}

TEST(InprocessTest, UnsatCoreStaysValidAfterVivification) {
  // The CDG tracks antecedents through clause rewrites; the extracted
  // core must still refute on an independent check.
  Solver s(vivify_config());
  load(s, pigeonhole(6, 5));
  ASSERT_EQ(s.solve(), Result::Unsat);
  ASSERT_GT(s.stats().vivify_rounds, 0u);
  const CoreCheck check = verify_core(s);
  EXPECT_TRUE(check.core_unsat);
  EXPECT_EQ(check.total_clauses, s.num_original_clauses());
}

TEST(InprocessTest, ShortenedClausesAreCounted) {
  // Across a batch of seeds at least one instance must yield an actual
  // literal removal — and whenever clauses are counted, literals are
  // too (a "vivified" clause with zero removed literals would be churn,
  // which the pass filters out).
  Rng rng(13);
  std::uint64_t clauses = 0, literals = 0;
  for (int trial = 0; trial < 8; ++trial) {
    const Cnf cnf = random_ksat(rng, 50, 220, 3);
    Solver s(vivify_config());
    load(s, cnf);
    s.solve();
    clauses += s.stats().vivified_clauses;
    literals += s.stats().vivified_literals;
    EXPECT_EQ(s.stats().vivified_clauses == 0,
              s.stats().vivified_literals == 0)
        << "trial " << trial;
  }
  EXPECT_GT(clauses, 0u);
  EXPECT_GE(literals, clauses);  // every vivified clause lost >= 1 literal
}

TEST(InprocessTest, BudgetsBoundTheWork) {
  // vivify_max_clauses 1 examines at most one candidate per round, so
  // the clause counter can never outrun the round counter.
  SolverConfig cfg = vivify_config();
  cfg.inprocess.vivify_max_clauses = 1;
  Solver s(cfg);
  load(s, pigeonhole(7, 6));
  EXPECT_EQ(s.solve(), Result::Unsat);
  EXPECT_LE(s.stats().vivified_clauses, s.stats().vivify_rounds);
}

TEST(InprocessTest, IntervalThrottlesRounds) {
  // Interval N runs a round every N restarts: the round count at
  // interval 4 can be at most a quarter (rounded up) of the restarts,
  // while interval 1 tracks them one-for-one.
  SolverConfig sparse = vivify_config();
  sparse.inprocess.vivify_interval = 4;
  Solver s(sparse);
  load(s, pigeonhole(7, 6));
  EXPECT_EQ(s.solve(), Result::Unsat);
  const auto& st = s.stats();
  ASSERT_GT(st.restarts, 0u);
  EXPECT_LE(st.vivify_rounds, st.restarts / 4 + 1);
}

TEST(InprocessTest, ConfigEqualityDrivesGroupKeys) {
  // Shard groups compare InprocessConfig to decide whether two entrants
  // may share a formula; equality must be field-wise.
  InprocessConfig a, b;
  EXPECT_TRUE(a == b);
  b.vivify_interval = 8;
  EXPECT_FALSE(a == b);
  b = a;
  b.vivify_prop_budget = 1;
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace refbmc::sat
