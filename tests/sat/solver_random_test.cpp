// Property-based cross-validation of the CDCL solver against the
// reference DPLL oracle on randomized formulas, over a grid of solver
// configurations (parameterized to stress restarts / reduceDB / GC paths).
#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "sat/reference_solver.hpp"
#include "sat/solver.hpp"

namespace refbmc::sat {
namespace {

using test::load;
using test::model_satisfies;
using test::random_ksat;

struct ConfigCase {
  const char* name;
  SolverConfig config;
};

ConfigCase config_cases[] = {
    {"default", {}},
    {"no_restarts",
     [] {
       SolverConfig c;
       c.enable_restarts = false;
       return c;
     }()},
    {"aggressive_restarts",
     [] {
       SolverConfig c;
       c.restart_base = 2;
       return c;
     }()},
    {"tiny_reduce_db",
     [] {
       SolverConfig c;
       c.reduce_base = 8;
       c.restart_base = 4;
       return c;
     }()},
    {"no_cdg",
     [] {
       SolverConfig c;
       c.track_cdg = false;
       return c;
     }()},
    {"fast_vsids",
     [] {
       SolverConfig c;
       c.vsids_update_period = 2;
       return c;
     }()},
};

class SolverRandomTest : public ::testing::TestWithParam<ConfigCase> {};

TEST_P(SolverRandomTest, AgreesWithReferenceOn3Sat) {
  Rng rng(0xC0FFEE);
  int sat_seen = 0, unsat_seen = 0;
  for (int iter = 0; iter < 150; ++iter) {
    const int nv = rng.next_int(4, 12);
    const int nc = rng.next_int(nv, nv * 6);
    const Cnf cnf = random_ksat(rng, nv, nc, 3);
    const Result expected = reference_solve(cnf);
    Solver s(GetParam().config);
    load(s, cnf);
    const Result got = s.solve();
    ASSERT_EQ(got, expected) << "iter " << iter << " config "
                             << GetParam().name;
    if (got == Result::Sat) {
      ++sat_seen;
      EXPECT_TRUE(model_satisfies(s, cnf)) << "iter " << iter;
    } else {
      ++unsat_seen;
    }
  }
  // The draw ranges straddle the phase transition; both outcomes occur.
  EXPECT_GT(sat_seen, 10);
  EXPECT_GT(unsat_seen, 10);
}

TEST_P(SolverRandomTest, AgreesWithReferenceOnMixedWidth) {
  Rng rng(0xBEEF);
  for (int iter = 0; iter < 80; ++iter) {
    const int nv = rng.next_int(3, 10);
    Cnf cnf;
    cnf.num_vars = nv;
    const int nc = rng.next_int(2, nv * 5);
    for (int c = 0; c < nc; ++c) {
      const int width = rng.next_int(1, 4);
      std::vector<Lit> clause;
      for (int j = 0; j < width; ++j)
        clause.push_back(
            Lit::make(rng.next_int(0, nv - 1), rng.next_bool()));
      cnf.add_clause(clause);
    }
    const Result expected = reference_solve(cnf);
    Solver s(GetParam().config);
    load(s, cnf);
    ASSERT_EQ(s.solve(), expected)
        << "iter " << iter << " config " << GetParam().name;
  }
}

TEST_P(SolverRandomTest, UnsatCoresResolveUnsat) {
  if (!GetParam().config.track_cdg) GTEST_SKIP() << "cores disabled";
  Rng rng(0xDADA);
  int cores_checked = 0;
  for (int iter = 0; iter < 120 && cores_checked < 30; ++iter) {
    const int nv = rng.next_int(4, 10);
    const Cnf cnf = random_ksat(rng, nv, nv * 6, 3);  // mostly unsat
    Solver s(GetParam().config);
    load(s, cnf);
    if (s.solve() != Result::Unsat) continue;
    ++cores_checked;
    const auto core = s.unsat_core();
    // Re-solve exactly the core clauses with the reference solver.
    Cnf sub;
    sub.num_vars = cnf.num_vars;
    for (const ClauseId id : core)
      sub.add_clause(cnf.clauses[id - 1]);
    ASSERT_EQ(reference_solve(sub), Result::Unsat)
        << "iter " << iter << " config " << GetParam().name;
  }
  EXPECT_GE(cores_checked, 20);
}

INSTANTIATE_TEST_SUITE_P(Configs, SolverRandomTest,
                         ::testing::ValuesIn(config_cases),
                         [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace refbmc::sat
