// Solve-under-assumptions and incremental use of a persistent solver —
// the substrate of the engine's incremental BMC mode.
#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "sat/core_verify.hpp"
#include "sat/reference_solver.hpp"
#include "sat/solver.hpp"

namespace refbmc::sat {
namespace {

using test::lits;
using test::load;
using test::pigeonhole;
using test::random_ksat;

TEST(AssumptionsTest, SatUnderConsistentAssumptions) {
  Solver s;
  for (int i = 0; i < 3; ++i) s.new_var();
  s.add_clause(lits({1, 2, 3}));
  EXPECT_EQ(s.solve({Lit::from_dimacs(1), Lit::from_dimacs(-2)}),
            Result::Sat);
  EXPECT_EQ(s.model_value(0), l_True);
  EXPECT_EQ(s.model_value(1), l_False);
}

TEST(AssumptionsTest, UnsatUnderContradictingAssumptions) {
  Solver s;
  s.new_var();
  s.new_var();
  s.add_clause(lits({1, 2}));
  EXPECT_EQ(s.solve({Lit::from_dimacs(-1), Lit::from_dimacs(-2)}),
            Result::Unsat);
  // Still satisfiable without (or with other) assumptions.
  EXPECT_EQ(s.solve(), Result::Sat);
  EXPECT_EQ(s.solve({Lit::from_dimacs(1)}), Result::Sat);
}

TEST(AssumptionsTest, DirectlyConflictingAssumptionPair) {
  Solver s;
  s.new_var();
  s.add_clause(lits({1, -1}));  // tautology, keeps var known
  EXPECT_EQ(s.solve({Lit::from_dimacs(1), Lit::from_dimacs(-1)}),
            Result::Unsat);
  // No clauses are needed to refute p ∧ ¬p: the core is empty.
  EXPECT_TRUE(s.unsat_core().empty());
}

TEST(AssumptionsTest, CoreOfAssumptionRefutation) {
  // Chain x1→x2→x3; assuming x1 ∧ ¬x3 is refuted using exactly the chain.
  Solver s;
  for (int i = 0; i < 4; ++i) s.new_var();
  s.add_clause(lits({-1, 2}));  // id 1
  s.add_clause(lits({-2, 3}));  // id 2
  s.add_clause(lits({4, 3}));   // id 3: irrelevant
  EXPECT_EQ(s.solve({Lit::from_dimacs(1), Lit::from_dimacs(-3)}),
            Result::Unsat);
  EXPECT_EQ(s.unsat_core(), (std::vector<ClauseId>{1, 2}));
  EXPECT_EQ(s.unsat_core_vars(), (std::vector<Var>{0, 1, 2}));
}

TEST(AssumptionsTest, AssumptionOrderIrrelevantForVerdict) {
  Solver s;
  for (int i = 0; i < 3; ++i) s.new_var();
  s.add_clause(lits({-1, -2}));
  const std::vector<Lit> fwd{Lit::from_dimacs(1), Lit::from_dimacs(2)};
  const std::vector<Lit> rev{Lit::from_dimacs(2), Lit::from_dimacs(1)};
  EXPECT_EQ(s.solve(fwd), Result::Unsat);
  EXPECT_EQ(s.solve(rev), Result::Unsat);
  EXPECT_EQ(s.solve({Lit::from_dimacs(1)}), Result::Sat);
}

TEST(AssumptionsTest, UnknownAssumptionVariableRejected) {
  Solver s;
  s.new_var();
  EXPECT_THROW(s.solve({Lit::from_dimacs(5)}), std::invalid_argument);
}

TEST(AssumptionsTest, IncrementalClauseAdditionBetweenSolves) {
  Solver s;
  for (int i = 0; i < 3; ++i) s.new_var();
  s.add_clause(lits({1, 2}));
  EXPECT_EQ(s.solve({Lit::from_dimacs(-1)}), Result::Sat);
  EXPECT_EQ(s.model_value(1), l_True);
  // Tighten the formula and re-solve.
  s.add_clause(lits({-2}));
  EXPECT_EQ(s.solve({Lit::from_dimacs(-1)}), Result::Unsat);
  const auto core = s.unsat_core();
  EXPECT_EQ(core, (std::vector<ClauseId>{1, 2}));
  EXPECT_EQ(s.solve(), Result::Sat);  // x1 can still rescue the formula
}

TEST(AssumptionsTest, LearnedClausesPersistAcrossSolves) {
  Solver s;
  load(s, pigeonhole(6, 5));
  EXPECT_EQ(s.solve(), Result::Unsat);
  const auto learned_first = s.stats().learned_clauses;
  EXPECT_GT(learned_first, 0u);
  // ok() is now false; the solver short-circuits on repeat solves.
  EXPECT_EQ(s.solve(), Result::Unsat);
  EXPECT_EQ(s.stats().learned_clauses, learned_first);
}

TEST(AssumptionsTest, ActivationLiteralIdiom) {
  // The incremental-BMC pattern: guard clause (¬a ∨ body), enable by
  // assumption, retire by adding unit ¬a.
  Solver s;
  const Var x = s.new_var();
  const Var a1 = s.new_var();
  const Var a2 = s.new_var();
  s.add_clause({Lit::make(a1, true), Lit::make(x)});       // a1 → x
  s.add_clause({Lit::make(a2, true), Lit::make(x, true)});  // a2 → ¬x
  EXPECT_EQ(s.solve({Lit::make(a1)}), Result::Sat);
  EXPECT_TRUE(s.model_literal_true(Lit::make(x)));
  EXPECT_EQ(s.solve({Lit::make(a2)}), Result::Sat);
  EXPECT_TRUE(s.model_literal_true(Lit::make(x, true)));
  EXPECT_EQ(s.solve({Lit::make(a1), Lit::make(a2)}), Result::Unsat);
  // Retire a1; a2 alone must stay satisfiable.
  s.add_clause({Lit::make(a1, true)});
  EXPECT_EQ(s.solve({Lit::make(a2)}), Result::Sat);
}

TEST(AssumptionsTest, SatisfiedAssumptionSkipsLevel) {
  // An assumption already true at the root gets a placeholder level.
  Solver s;
  s.new_var();
  s.new_var();
  s.add_clause(lits({1}));
  EXPECT_EQ(s.solve({Lit::from_dimacs(1), Lit::from_dimacs(2)}),
            Result::Sat);
  EXPECT_EQ(s.model_value(1), l_True);
}

TEST(AssumptionsTest, RandomizedAgainstReferenceWithUnits) {
  // solve(assumptions) must agree with reference_solve(formula + units).
  Rng rng(0xFACE);
  int unsat_cores_checked = 0;
  for (int iter = 0; iter < 120; ++iter) {
    const int nv = rng.next_int(4, 10);
    const Cnf cnf = random_ksat(rng, nv, rng.next_int(nv, nv * 5), 3);
    std::vector<Lit> assumptions;
    const int num_assumps = rng.next_int(1, 3);
    for (int a = 0; a < num_assumps; ++a)
      assumptions.push_back(
          Lit::make(rng.next_int(0, nv - 1), rng.next_bool()));

    Cnf augmented = cnf;
    for (const Lit a : assumptions) augmented.add_clause({a});
    const Result expected = reference_solve(augmented);

    Solver s;
    load(s, cnf);
    const Result got = s.solve(assumptions);
    ASSERT_EQ(got, expected) << "iter " << iter;

    if (got == Result::Unsat) {
      // The core clauses plus the assumptions must be UNSAT.
      Cnf sub;
      sub.num_vars = nv;
      for (const ClauseId id : s.unsat_core())
        sub.add_clause(cnf.clauses[id - 1]);
      for (const Lit a : assumptions) sub.add_clause({a});
      ASSERT_EQ(reference_solve(sub), Result::Unsat) << "iter " << iter;
      ++unsat_cores_checked;
    }
  }
  EXPECT_GT(unsat_cores_checked, 10);
}

TEST(AssumptionsTest, ManySolveCallsReuseState) {
  // A persistent solver over a sliding window of assumptions.
  Solver s;
  const int n = 20;
  for (int i = 0; i < n; ++i) s.new_var();
  for (int i = 0; i + 1 < n; ++i)
    s.add_clause({Lit::make(i, true), Lit::make(i + 1)});  // chain i → i+1
  for (int i = 1; i < n; ++i) {
    EXPECT_EQ(s.solve({Lit::make(0), Lit::make(i)}), Result::Sat) << i;
    EXPECT_EQ(s.solve({Lit::make(0), Lit::make(i, true)}), Result::Unsat)
        << i;
    // The refutation uses exactly the first i chain clauses.
    EXPECT_EQ(s.unsat_core().size(), static_cast<std::size_t>(i)) << i;
  }
}

}  // namespace
}  // namespace refbmc::sat
