// Root-level learned-clause strengthening (reduceDB, track_cdg off):
// dropping permanently-false tail literals in place must never change
// verdicts or models, must credit the arena's waste accounting (the
// ClauseArena::shrink_clause regression), and must survive garbage
// collection cycles that relocate shrunk clauses.
#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "sat/reference_solver.hpp"
#include "sat/solver.hpp"
#include "util/rng.hpp"

namespace refbmc::sat {
namespace {

using test::load;
using test::model_satisfies;
using test::random_ksat;

SolverConfig strengthen_config() {
  SolverConfig cfg;
  cfg.track_cdg = false;  // strengthening is gated on the CDG being off
  cfg.reduce_base = 1;    // reduce as early as possible
  return cfg;
}

Lit L(Var v, bool neg = false) { return Lit::make(v, neg); }

/// Builds the retired-guard scenario, the incremental-BMC pollution
/// pattern distilled:
///  1. assuming {a, b, ¬x} conflicts on p and learns (x ∨ ¬b ∨ ¬a) —
///     asserting literal first, then by decision level, so ¬a sits in
///     the unwatched tail;
///  2. the guard is retired: unit {a} makes ¬a permanently false;
///  3. a second solve assumes b — the learned clause propagates x and is
///     locked (kept) — and runs into the trigger gadget's conflict,
///     which lifts the learned count to the reduceDB limit; reduceDB
///     then strengthens the kept clause in place.
void run_retired_guard_scenario(Solver& s, Var* out_b, Var* out_x) {
  const Var a = s.new_var(), b = s.new_var(), x = s.new_var(),
            p = s.new_var();
  const Var u = s.new_var(), w = s.new_var(), z = s.new_var(),
            m = s.new_var();
  s.add_clause({L(a, true), L(b, true), L(x), L(p)});
  s.add_clause({L(a, true), L(b, true), L(x), L(p, true)});
  s.add_clause({L(u, true), L(w, true), L(z), L(m)});
  s.add_clause({L(u, true), L(w, true), L(z), L(m, true)});

  ASSERT_EQ(s.solve({L(a), L(b), L(x, true)}), Result::Unsat);
  ASSERT_EQ(s.stats().learned_clauses, 1u);
  ASSERT_EQ(s.stats().strengthened_literals, 0u);

  ASSERT_TRUE(s.add_clause({L(a)}));  // retire the guard
  ASSERT_EQ(s.solve({L(b), L(u), L(w), L(z, true)}), Result::Unsat);
  if (out_b != nullptr) *out_b = b;
  if (out_x != nullptr) *out_x = x;
}

TEST(SolverStrengthenTest, DropsRetiredGuardLiteralFromKeptClause) {
  Solver s(strengthen_config());
  run_retired_guard_scenario(s, nullptr, nullptr);
  EXPECT_EQ(s.stats().strengthened_literals, 1u);  // ¬a dropped in place
  EXPECT_GT(s.stats().reduce_db_runs, 0u);
}

TEST(SolverStrengthenTest, StrengthenedClauseSurvivesLaterSolves) {
  // After the in-place shrink, keep solving under assumptions: the
  // shrunk clause must still watch and propagate correctly.
  Solver s(strengthen_config());
  Var b = kVarUndef, x = kVarUndef;
  run_retired_guard_scenario(s, &b, &x);
  ASSERT_EQ(s.stats().strengthened_literals, 1u);
  // The strengthened clause (x ∨ ¬b) still propagates: assuming b forces
  // x (with a fixed true, the original 4-literal clauses say the same).
  ASSERT_EQ(s.solve({L(b)}), Result::Sat);
  EXPECT_TRUE(s.model_value(x).is_true());
  // And the opposite assumption set is refuted through it.
  EXPECT_EQ(s.solve({L(b), L(x, true)}), Result::Unsat);
}

TEST(SolverStrengthenTest, DisabledWhenCdgTracked) {
  // With core tracking on, in-place strengthening would invalidate the
  // frozen antecedent lists, so it must not fire — same scenario.
  SolverConfig cfg = strengthen_config();
  cfg.track_cdg = true;
  Solver s(cfg);
  run_retired_guard_scenario(s, nullptr, nullptr);
  EXPECT_EQ(s.stats().strengthened_literals, 0u);
}

TEST(SolverStrengthenTest, RandomFormulasAgreeWithReference) {
  // Aggressive reduce/restart settings keep the strengthening path hot;
  // verdicts and models must match the reference solver throughout.
  Rng rng(0xBEEF);
  for (int round = 0; round < 40; ++round) {
    const Cnf cnf = random_ksat(rng, 30, 126, 3);
    SolverConfig cfg = strengthen_config();
    cfg.reduce_grow = 1.05;
    cfg.restart_base = 2;
    Solver s(cfg);
    load(s, cnf);
    const Result got = s.solve();
    const Result expected = reference_solve(cnf);
    ASSERT_EQ(got, expected) << "round " << round;
    if (got == Result::Sat) {
      EXPECT_TRUE(model_satisfies(s, cnf)) << "round " << round;
    }
  }
}

}  // namespace
}  // namespace refbmc::sat
