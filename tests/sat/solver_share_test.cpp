// The solver's lemma-exchange seam, exercised with an in-process fake:
// the export hook fires exactly for learnts passing the LBD/size filter,
// imports land at decision-level-0 boundaries as learned-tier clauses
// (root-simplified, units asserted, conflicts detected), and a solver
// without an exchange is bit-identical to one that never heard of the
// feature.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "sat/solver.hpp"

namespace refbmc::sat {
namespace {

Lit pos(Var v) { return Lit::make(v); }
Lit neg(Var v) { return Lit::make(v, true); }

/// Scriptable exchange: records exports, serves a fixed import queue
/// once.
class FakeExchange final : public ClauseExchange {
 public:
  void queue_import(std::vector<Lit> lits, std::uint32_t lbd) {
    pending_.push_back({std::move(lits), lbd});
  }

  bool export_clause(std::span<const Lit> lits, std::uint32_t lbd) override {
    exported_.emplace_back(lits.begin(), lits.end());
    exported_lbds_.push_back(lbd);
    return true;
  }
  bool has_pending() const override { return !pending_.empty(); }
  void import_clauses(ImportSink& sink) override {
    for (const auto& [lits, lbd] : pending_) sink.add(lits, lbd);
    pending_.clear();
  }

  const std::vector<std::vector<Lit>>& exported() const { return exported_; }
  const std::vector<std::uint32_t>& exported_lbds() const {
    return exported_lbds_;
  }

 private:
  struct Pending {
    std::vector<Lit> lits;
    std::uint32_t lbd;
  };
  std::vector<Pending> pending_;
  std::vector<std::vector<Lit>> exported_;
  std::vector<std::uint32_t> exported_lbds_;
};

/// Pigeonhole principle PHP(n+1, n): n+1 pigeons, n holes — small, UNSAT,
/// and rich in conflicts, so the export hook gets real traffic.
void add_php(Solver& s, int pigeons, int holes) {
  std::vector<std::vector<Var>> x(static_cast<std::size_t>(pigeons));
  for (auto& row : x)
    for (int h = 0; h < holes; ++h) row.push_back(s.new_var());
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> at_least;
    for (int h = 0; h < holes; ++h)
      at_least.push_back(pos(x[static_cast<std::size_t>(p)]
                              [static_cast<std::size_t>(h)]));
    s.add_clause(at_least);
  }
  for (int h = 0; h < holes; ++h)
    for (int p1 = 0; p1 < pigeons; ++p1)
      for (int p2 = p1 + 1; p2 < pigeons; ++p2)
        s.add_clause({neg(x[static_cast<std::size_t>(p1)]
                           [static_cast<std::size_t>(h)]),
                      neg(x[static_cast<std::size_t>(p2)]
                           [static_cast<std::size_t>(h)])});
}

TEST(SolverShareTest, ExportsOnlyClausesPassingTheFilter) {
  SolverConfig cfg;
  cfg.share_lbd = 3;
  cfg.share_size = 2;
  Solver s(cfg);
  FakeExchange exchange;
  s.set_clause_exchange(&exchange);
  add_php(s, 5, 4);
  EXPECT_EQ(s.solve(), Result::Unsat);

  ASSERT_FALSE(exchange.exported().empty());
  EXPECT_EQ(s.stats().clauses_exported, exchange.exported().size());
  for (std::size_t i = 0; i < exchange.exported().size(); ++i) {
    EXPECT_TRUE(exchange.exported_lbds()[i] <= 3 ||
                exchange.exported()[i].size() <= 2)
        << "clause " << i << " passed neither filter";
  }
}

TEST(SolverShareTest, EveryExportIsFilteredWhenThresholdsAreZero) {
  // share_lbd = 0 and share_size = 0 pass nothing (lbd of a real learnt
  // is >= 1): the hook must stay silent even on a conflict-heavy run.
  SolverConfig cfg;
  cfg.share_lbd = 0;
  cfg.share_size = 0;
  Solver s(cfg);
  FakeExchange exchange;
  s.set_clause_exchange(&exchange);
  add_php(s, 5, 4);
  EXPECT_EQ(s.solve(), Result::Unsat);
  EXPECT_TRUE(exchange.exported().empty());
  EXPECT_EQ(s.stats().clauses_exported, 0u);
}

TEST(SolverShareTest, ImportsUnitAndPropagates) {
  // (a | b) & (~a | b) is SAT; importing unit ~b forces UNSAT.
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  s.add_clause({pos(a), pos(b)});
  s.add_clause({neg(a), pos(b)});

  FakeExchange exchange;
  s.set_clause_exchange(&exchange);
  exchange.queue_import({neg(b)}, 1);
  EXPECT_EQ(s.solve(), Result::Unsat);
  EXPECT_EQ(s.stats().clauses_imported, 1u);
  EXPECT_GT(s.stats().import_propagations, 0u);
}

TEST(SolverShareTest, ImportedClauseIsRootSimplified) {
  // With unit a on the trail, importing (a | b | c) is a no-op
  // (satisfied) and importing (~a | b) attaches as just the unit b.
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  const Var c = s.new_var();
  s.add_clause({pos(a)});
  s.add_clause({pos(c), pos(b)});  // keep c referenced

  FakeExchange exchange;
  s.set_clause_exchange(&exchange);
  exchange.queue_import({pos(a), pos(b), pos(c)}, 2);  // satisfied: dropped
  exchange.queue_import({neg(a), pos(b)}, 2);          // shrinks to unit b
  EXPECT_EQ(s.solve(), Result::Sat);
  EXPECT_EQ(s.stats().clauses_imported, 1u);
  EXPECT_TRUE(s.model_literal_true(pos(b)));
}

TEST(SolverShareTest, ConflictingImportsMakeTheFormulaUnsat) {
  Solver s;
  const Var a = s.new_var();
  s.add_clause({pos(a), pos(s.new_var())});  // something satisfiable

  FakeExchange exchange;
  s.set_clause_exchange(&exchange);
  exchange.queue_import({pos(a)}, 1);
  exchange.queue_import({neg(a)}, 1);
  EXPECT_EQ(s.solve(), Result::Unsat);
  EXPECT_FALSE(s.okay());
}

TEST(SolverShareTest, ImportedLemmaCutsTheSearch) {
  // PHP with a solver that receives, up front, the strongest lemmas a
  // twin solver learned: the receiver must still answer UNSAT (imports
  // are sound) and typically with fewer conflicts.
  SolverConfig cfg;
  cfg.share_lbd = 4;
  cfg.share_size = 3;

  Solver donor(cfg);
  FakeExchange donor_out;
  donor.set_clause_exchange(&donor_out);
  add_php(donor, 6, 5);
  ASSERT_EQ(donor.solve(), Result::Unsat);
  ASSERT_FALSE(donor_out.exported().empty());

  Solver receiver(cfg);
  FakeExchange receiver_in;
  add_php(receiver, 6, 5);
  for (std::size_t i = 0; i < donor_out.exported().size(); ++i)
    receiver_in.queue_import(donor_out.exported()[i],
                             donor_out.exported_lbds()[i]);
  receiver.set_clause_exchange(&receiver_in);
  EXPECT_EQ(receiver.solve(), Result::Unsat);
  EXPECT_EQ(receiver.stats().clauses_imported,
            donor_out.exported().size());
}

TEST(SolverShareTest, NoExchangeMeansIdenticalTrajectories) {
  // The whole sharing seam is dead code without an exchange: two solvers,
  // one with the (never-pending) hook detached, must match stat for stat.
  const auto run = [](bool with_null_set) {
    Solver s;
    if (with_null_set) s.set_clause_exchange(nullptr);
    add_php(s, 5, 4);
    EXPECT_EQ(s.solve(), Result::Unsat);
    return s.stats();
  };
  const SolverStats plain = run(false);
  const SolverStats with_null = run(true);
  EXPECT_EQ(plain.decisions, with_null.decisions);
  EXPECT_EQ(plain.propagations, with_null.propagations);
  EXPECT_EQ(plain.conflicts, with_null.conflicts);
  EXPECT_EQ(plain.learned_clauses, with_null.learned_clauses);
  EXPECT_EQ(plain.restarts, with_null.restarts);
  EXPECT_EQ(plain.clauses_exported, 0u);
  EXPECT_EQ(plain.clauses_imported, 0u);
}

}  // namespace
}  // namespace refbmc::sat
