#include "sat/clause.hpp"

#include <gtest/gtest.h>

namespace refbmc::sat {
namespace {

std::vector<Lit> lits(std::initializer_list<int> dimacs) {
  std::vector<Lit> out;
  for (const int d : dimacs) out.push_back(Lit::from_dimacs(d));
  return out;
}

TEST(ClauseArenaTest, AllocAndRead) {
  ClauseArena arena;
  const ClauseRef cref = arena.alloc(lits({1, -2, 3}), /*id=*/7, false);
  const Clause c = arena.get(cref);
  EXPECT_EQ(c.id(), 7u);
  EXPECT_EQ(c.size(), 3u);
  EXPECT_FALSE(c.learnt());
  EXPECT_FALSE(c.dead());
  EXPECT_EQ(c[0], Lit::from_dimacs(1));
  EXPECT_EQ(c[1], Lit::from_dimacs(-2));
  EXPECT_EQ(c[2], Lit::from_dimacs(3));
}

TEST(ClauseArenaTest, LearntFlag) {
  ClauseArena arena;
  const ClauseRef cref = arena.alloc(lits({1}), 1, true);
  EXPECT_TRUE(arena.get(cref).learnt());
}

TEST(ClauseArenaTest, ActivityRoundTrip) {
  ClauseArena arena;
  const ClauseRef cref = arena.alloc(lits({1, 2}), 1, true);
  Clause c = arena.get(cref);
  EXPECT_FLOAT_EQ(c.activity(), 0.0f);
  c.set_activity(3.5f);
  EXPECT_FLOAT_EQ(arena.get(cref).activity(), 3.5f);
}

TEST(ClauseArenaTest, SwapAndSetLits) {
  ClauseArena arena;
  const ClauseRef cref = arena.alloc(lits({1, -2, 3}), 1, false);
  Clause c = arena.get(cref);
  c.swap_lits(0, 2);
  EXPECT_EQ(c[0], Lit::from_dimacs(3));
  EXPECT_EQ(c[2], Lit::from_dimacs(1));
  c.set_lit(1, Lit::from_dimacs(-7));
  EXPECT_EQ(c[1], Lit::from_dimacs(-7));
}

TEST(ClauseArenaTest, ShrinkKeepsPrefix) {
  ClauseArena arena;
  const ClauseRef cref = arena.alloc(lits({1, 2, 3, 4}), 1, false);
  arena.shrink_clause(cref, 2);
  const Clause c = arena.get(cref);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.capacity(), 4u);
  EXPECT_EQ(c[0], Lit::from_dimacs(1));
  EXPECT_EQ(c[1], Lit::from_dimacs(2));
}

TEST(ClauseArenaTest, ShrinkAccountsWaste) {
  // Regression: tail literals dropped by in-place shrinking must be
  // credited to the waste accounting, or should_collect() under-triggers
  // after heavy clause minimization.
  ClauseArena arena;
  const ClauseRef cref = arena.alloc(lits({1, 2, 3, 4, 5}), 1, false);
  EXPECT_EQ(arena.wasted_words(), 0u);
  arena.shrink_clause(cref, 2);
  EXPECT_EQ(arena.wasted_words(), 3u);
  // Shrinking further credits only the delta.
  arena.shrink_clause(cref, 1);
  EXPECT_EQ(arena.wasted_words(), 4u);
}

TEST(ClauseArenaTest, ShrinkAloneTriggersCollection) {
  ClauseArena arena;
  std::vector<ClauseRef> refs;
  for (int i = 0; i < 4; ++i)
    refs.push_back(arena.alloc(lits({1, 2, 3, 4, 5, 6, 7, 8, 9, 10}),
                               static_cast<ClauseId>(i + 1), false));
  EXPECT_FALSE(arena.should_collect());
  // Minimize every clause down to a binary: 8 of 14 words each go dead.
  for (const ClauseRef cref : refs) arena.shrink_clause(cref, 2);
  EXPECT_TRUE(arena.should_collect());
}

TEST(ClauseArenaTest, FreeAfterShrinkDoesNotDoubleCount) {
  ClauseArena arena;
  const ClauseRef cref = arena.alloc(lits({1, 2, 3, 4, 5}), 1, false);
  const std::size_t footprint = arena.used_words();
  arena.shrink_clause(cref, 2);
  arena.free_clause(cref);
  // Waste equals the clause's full footprint exactly once.
  EXPECT_EQ(arena.wasted_words(), footprint);
}

TEST(ClauseArenaTest, GarbageCollectReclaimsShrunkTails) {
  ClauseArena arena;
  const ClauseRef a = arena.alloc(lits({1, 2, 3, 4, 5}), 1, false);
  const ClauseRef b = arena.alloc(lits({-1, -2}), 2, false);
  arena.shrink_clause(a, 2);
  const std::size_t before = arena.used_words();
  std::vector<std::pair<ClauseRef, ClauseRef>> map;
  arena.garbage_collect(map);
  ASSERT_EQ(map.size(), 2u);
  // Both clauses survive; the shrunk one keeps its live prefix and the
  // following clause moved down over the reclaimed tail.
  const Clause ca = arena.get(map[0].second);
  EXPECT_EQ(ca.id(), 1u);
  EXPECT_EQ(ca.size(), 2u);
  EXPECT_EQ(ca.capacity(), 2u);  // tail reclaimed
  EXPECT_EQ(ca[0], Lit::from_dimacs(1));
  EXPECT_EQ(ca[1], Lit::from_dimacs(2));
  EXPECT_EQ(map[1].first, b);
  EXPECT_LT(map[1].second, b);
  const Clause cb = arena.get(map[1].second);
  EXPECT_EQ(cb.id(), 2u);
  EXPECT_EQ(cb[0], Lit::from_dimacs(-1));
  EXPECT_EQ(arena.used_words(), before - 3);
  EXPECT_EQ(arena.wasted_words(), 0u);
}

TEST(ClauseArenaTest, FreeAccountsWaste) {
  ClauseArena arena;
  const ClauseRef a = arena.alloc(lits({1, 2, 3}), 1, false);
  arena.alloc(lits({4, 5}), 2, false);
  EXPECT_EQ(arena.wasted_words(), 0u);
  arena.free_clause(a);
  EXPECT_EQ(arena.wasted_words(), Clause::kHeaderWords + 3);
  EXPECT_TRUE(arena.get(a).dead());
}

TEST(ClauseArenaTest, ShouldCollectThreshold) {
  ClauseArena arena;
  std::vector<ClauseRef> refs;
  for (int i = 0; i < 10; ++i)
    refs.push_back(arena.alloc(lits({1, 2, 3}), static_cast<ClauseId>(i + 1),
                               false));
  EXPECT_FALSE(arena.should_collect());
  for (int i = 0; i < 4; ++i) arena.free_clause(refs[static_cast<std::size_t>(i)]);
  EXPECT_TRUE(arena.should_collect());  // 40% dead > 20%
}

TEST(ClauseArenaTest, GarbageCollectCompactsAndRelocates) {
  ClauseArena arena;
  const ClauseRef a = arena.alloc(lits({1, 2}), 1, false);
  const ClauseRef b = arena.alloc(lits({3, 4, 5}), 2, false);
  const ClauseRef c = arena.alloc(lits({-1, -2}), 3, false);
  arena.free_clause(b);
  std::vector<std::pair<ClauseRef, ClauseRef>> map;
  arena.garbage_collect(map);
  ASSERT_EQ(map.size(), 2u);
  EXPECT_EQ(map[0].first, a);
  EXPECT_EQ(map[0].second, a);  // first clause does not move
  EXPECT_EQ(map[1].first, c);
  EXPECT_LT(map[1].second, c);  // moved down over the dead clause
  const Clause moved = arena.get(map[1].second);
  EXPECT_EQ(moved.id(), 3u);
  EXPECT_EQ(moved[0], Lit::from_dimacs(-1));
  EXPECT_EQ(arena.wasted_words(), 0u);
}

TEST(ClauseArenaTest, GarbageCollectAllDead) {
  ClauseArena arena;
  const ClauseRef a = arena.alloc(lits({1, 2}), 1, false);
  arena.free_clause(a);
  std::vector<std::pair<ClauseRef, ClauseRef>> map;
  arena.garbage_collect(map);
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(arena.used_words(), 0u);
}

TEST(ClauseArenaTest, EmptyLitsRejected) {
  ClauseArena arena;
  EXPECT_THROW(arena.alloc({}, 1, false), std::invalid_argument);
}

}  // namespace
}  // namespace refbmc::sat
