#include "sat/types.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace refbmc::sat {
namespace {

TEST(LitTest, MakeAndAccessors) {
  const Lit p = Lit::make(3);
  EXPECT_EQ(p.var(), 3);
  EXPECT_FALSE(p.negated());
  EXPECT_EQ(p.index(), 6);

  const Lit n = Lit::make(3, true);
  EXPECT_EQ(n.var(), 3);
  EXPECT_TRUE(n.negated());
  EXPECT_EQ(n.index(), 7);
}

TEST(LitTest, NegationIsInvolution) {
  const Lit p = Lit::make(5);
  EXPECT_EQ(~p, Lit::make(5, true));
  EXPECT_EQ(~~p, p);
  EXPECT_NE(~p, p);
}

TEST(LitTest, DimacsRoundTrip) {
  for (const int d : {1, -1, 7, -42, 100}) {
    EXPECT_EQ(Lit::from_dimacs(d).to_dimacs(), d);
  }
  EXPECT_EQ(Lit::from_dimacs(1).var(), 0);
  EXPECT_EQ(Lit::from_dimacs(-3).var(), 2);
  EXPECT_TRUE(Lit::from_dimacs(-3).negated());
  EXPECT_THROW(Lit::from_dimacs(0), std::invalid_argument);
}

TEST(LitTest, UndefIsDistinct) {
  EXPECT_TRUE(kLitUndef.is_undef());
  EXPECT_FALSE(Lit::make(0).is_undef());
  EXPECT_NE(kLitUndef, Lit::make(0));
}

TEST(LitTest, OrderingFollowsIndex) {
  EXPECT_LT(Lit::make(0), Lit::make(0, true));
  EXPECT_LT(Lit::make(0, true), Lit::make(1));
}

TEST(LitTest, Streaming) {
  std::ostringstream os;
  os << Lit::make(2, true) << ' ' << Lit::make(0) << ' ' << kLitUndef;
  EXPECT_EQ(os.str(), "-3 1 <undef>");
}

TEST(LboolTest, ThreeValues) {
  EXPECT_TRUE(l_True.is_true());
  EXPECT_TRUE(l_False.is_false());
  EXPECT_TRUE(l_Undef.is_undef());
  EXPECT_EQ(lbool(true), l_True);
  EXPECT_EQ(lbool(false), l_False);
  EXPECT_EQ(lbool(), l_Undef);
}

TEST(LboolTest, NegationKeepsUndef) {
  EXPECT_EQ(~l_True, l_False);
  EXPECT_EQ(~l_False, l_True);
  EXPECT_EQ(~l_Undef, l_Undef);
}

TEST(LboolTest, XorWithSign) {
  EXPECT_EQ(l_True ^ false, l_True);
  EXPECT_EQ(l_True ^ true, l_False);
  EXPECT_EQ(l_False ^ true, l_True);
  EXPECT_EQ(l_Undef ^ true, l_Undef);
}

TEST(ResultTest, ToString) {
  EXPECT_STREQ(to_string(Result::Sat), "SAT");
  EXPECT_STREQ(to_string(Result::Unsat), "UNSAT");
  EXPECT_STREQ(to_string(Result::Unknown), "UNKNOWN");
}

}  // namespace
}  // namespace refbmc::sat
