// The ClauseDB layer: id space, LBD computation, tiered reduceDB with
// glue protection, strengthening with binary-watch migration, and arena
// compaction with reference patching.
#include "sat/clausedb.hpp"

#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "sat/solver.hpp"

namespace refbmc::sat {
namespace {

Lit pos(Var v) { return Lit::make(v); }
Lit neg(Var v) { return Lit::make(v, true); }

struct Core {
  Trail trail;
  Propagator prop;
  ClauseDB db{/*clause_decay=*/0.999, /*glue_lbd=*/2, /*tier_lbd=*/6};
  SolverStats stats;

  void vars(int n) {
    for (int i = 0; i < n; ++i) {
      trail.new_var();
      prop.new_var();
    }
  }
  ClauseRef learned(std::initializer_list<Lit> lits, std::uint32_t lbd) {
    const ClauseId id = db.register_learned();
    const ClauseRef cref =
        db.alloc_learned(std::vector<Lit>(lits), id, lbd, /*managed=*/true);
    prop.attach(db.arena(), cref);
    return cref;
  }
  /// Grows the arena with an unwatched filler clause so that the waste a
  /// test creates stays below the compaction threshold — the ClauseRefs
  /// under test must stay valid for their assertions.
  void pad_arena(std::uint32_t words) {
    db.alloc_original(std::vector<Lit>(words, pos(0)), /*id=*/9999);
  }
};

TEST(ClauseDbTest, IdSpaceTracksOriginalsAndLearned) {
  ClauseDB db(0.999, 2, 6);
  const std::vector<Lit> c1{pos(0), pos(1)};
  const ClauseId id1 = db.register_original(c1, /*counted=*/true);
  const ClauseId id2 = db.register_learned();
  const ClauseId id3 = db.register_original({pos(2)}, /*counted=*/true);
  EXPECT_EQ(id1, 1u);
  EXPECT_EQ(id2, 2u);
  EXPECT_EQ(id3, 3u);
  EXPECT_TRUE(db.is_original_clause(id1));
  EXPECT_FALSE(db.is_original_clause(id2));
  EXPECT_TRUE(db.is_original_clause(id3));
  EXPECT_EQ(db.original_clause(id1), c1);
  EXPECT_EQ(db.num_original_clauses(), 2u);
  EXPECT_EQ(db.num_original_literals(), 3u);
  EXPECT_EQ(db.original_ids(), (std::vector<ClauseId>{1, 3}));
}

TEST(ClauseDbTest, TautologiesKeepTheirIdButNotTheirLiterals) {
  ClauseDB db(0.999, 2, 6);
  db.register_original({pos(0), neg(0)}, /*counted=*/false);
  EXPECT_EQ(db.num_original_literals(), 0u);
  EXPECT_EQ(db.num_original_clauses(), 1u);
}

TEST(ClauseDbTest, ComputeLbdCountsDistinctNonRootLevels) {
  Core c;
  c.vars(5);
  c.trail.assign(pos(0), kClauseRefUndef);  // level 0: not counted
  c.trail.new_decision_level();
  c.trail.assign(pos(1), kClauseRefUndef);
  c.trail.assign(pos(2), kClauseRefUndef);  // same level as 1
  c.trail.new_decision_level();
  c.trail.assign(pos(3), kClauseRefUndef);
  const std::vector<Lit> lits{neg(0), neg(1), neg(2), neg(3)};
  EXPECT_EQ(c.db.compute_lbd(lits, c.trail), 2u);
}

TEST(ClauseDbTest, AllocLearnedStoresLbdAndTracksManaged) {
  Core c;
  c.vars(4);
  const ClauseRef cref = c.learned({pos(0), pos(1), pos(2)}, 4);
  EXPECT_EQ(c.db.get(cref).lbd(), 4u);
  EXPECT_TRUE(c.db.get(cref).learnt());
  EXPECT_EQ(c.db.num_learned(), 1u);
  // Unit learned clauses stay unmanaged (never deleted).
  const ClauseId id = c.db.register_learned();
  c.db.alloc_learned({pos(3)}, id, 1, /*managed=*/false);
  EXPECT_EQ(c.db.num_learned(), 1u);
}

TEST(ClauseDbTest, UseInAnalysisOnlyLowersLbd) {
  Core c;
  c.vars(3);
  const ClauseRef cref = c.learned({pos(0), pos(1), pos(2)}, 5);
  Clause cl = c.db.get(cref);
  c.db.on_used_in_analysis(cl, 3);
  EXPECT_EQ(c.db.get(cref).lbd(), 3u);
  c.db.on_used_in_analysis(cl, 4);  // higher: keep the better tier
  EXPECT_EQ(c.db.get(cref).lbd(), 3u);
  EXPECT_GT(c.db.get(cref).activity(), 0.0f);  // bumped twice
}

TEST(ClauseDbTest, ReduceDeletesLocalTierFirst) {
  Core c;
  c.vars(12);
  c.pad_arena(200);
  // Four deletion candidates: two local-tier (lbd 9, 8), two mid-tier
  // (lbd 5, 4).  Half are deleted, worst-first: exactly the local tier.
  const ClauseRef l9 = c.learned({pos(0), pos(1), pos(2)}, 9);
  const ClauseRef l8 = c.learned({pos(3), pos(4), pos(5)}, 8);
  const ClauseRef m5 = c.learned({pos(6), pos(7), pos(8)}, 5);
  const ClauseRef m4 = c.learned({pos(9), pos(10), pos(11)}, 4);
  c.db.reduce(c.trail, c.prop, /*strengthen=*/false, c.stats);
  EXPECT_EQ(c.stats.deleted_clauses, 2u);
  EXPECT_EQ(c.db.num_learned(), 2u);
  EXPECT_TRUE(c.db.get(l9).dead());
  EXPECT_TRUE(c.db.get(l8).dead());
  EXPECT_FALSE(c.db.get(m5).dead());
  EXPECT_FALSE(c.db.get(m4).dead());
}

TEST(ClauseDbTest, GlueClausesAreNeverDeleted) {
  Core c;
  c.vars(12);
  c.pad_arena(200);
  // Two glue clauses (lbd <= 2) among two local-tier candidates: the
  // deletion target is half the learned list (two here), but the glue
  // tier is not even a candidate — the whole quota falls on the local
  // clauses and the glue counter records the protection.
  const ClauseRef g1 = c.learned({pos(0), pos(1), pos(2)}, 2);
  const ClauseRef g2 = c.learned({pos(3), pos(4), pos(5)}, 1);
  const ClauseRef l1 = c.learned({pos(6), pos(7), pos(8)}, 9);
  const ClauseRef l2 = c.learned({pos(9), pos(10), pos(11)}, 8);
  c.db.reduce(c.trail, c.prop, /*strengthen=*/false, c.stats);
  EXPECT_EQ(c.stats.glue_protected, 2u);
  EXPECT_EQ(c.stats.deleted_clauses, 2u);
  EXPECT_FALSE(c.db.get(g1).dead());
  EXPECT_FALSE(c.db.get(g2).dead());
  EXPECT_TRUE(c.db.get(l1).dead());
  EXPECT_TRUE(c.db.get(l2).dead());
}

TEST(ClauseDbTest, LowerActivityGoesFirstWithinATier) {
  Core c;
  c.vars(6);
  c.pad_arena(200);
  const ClauseRef a = c.learned({pos(0), pos(1), pos(2)}, 8);
  const ClauseRef b = c.learned({pos(3), pos(4), pos(5)}, 8);
  c.db.on_used_in_analysis(c.db.get(b), 8);  // bump b only
  c.db.reduce(c.trail, c.prop, /*strengthen=*/false, c.stats);
  EXPECT_TRUE(c.db.get(a).dead());
  EXPECT_FALSE(c.db.get(b).dead());
}

TEST(ClauseDbTest, LockedClausesSurviveReduce) {
  Core c;
  c.vars(9);
  c.pad_arena(200);
  // r is the worst clause by every tier key, but it is the reason of its
  // first literal: locked, so the deletion falls on the next-worst.
  const ClauseRef r = c.learned({pos(0), pos(1), pos(2)}, 9);
  const ClauseRef w = c.learned({pos(3), pos(4), pos(5)}, 8);
  c.learned({pos(6), pos(7), pos(8)}, 7);
  c.trail.new_decision_level();
  c.trail.assign(pos(0), r);
  c.db.reduce(c.trail, c.prop, /*strengthen=*/false, c.stats);
  EXPECT_EQ(c.stats.deleted_clauses, 1u);
  EXPECT_FALSE(c.db.get(r).dead());
  EXPECT_TRUE(c.db.get(w).dead());
}

TEST(ClauseDbTest, StrengthenDropsRootFalseTailsAndMigrates) {
  Core c;
  c.vars(4);
  c.pad_arena(200);
  // Root-level facts falsify the two tail literals of a kept clause.
  c.trail.assign(neg(2), kClauseRefUndef);
  c.trail.assign(neg(3), kClauseRefUndef);
  const ClauseRef cref = c.learned({pos(0), pos(1), pos(2), pos(3)}, 4);
  c.db.reduce(c.trail, c.prop, /*strengthen=*/true, c.stats);
  EXPECT_EQ(c.db.get(cref).size(), 2u);
  EXPECT_EQ(c.stats.strengthened_literals, 2u);
  // Shrunk to binary: watchers moved to the inline lists.
  EXPECT_EQ(c.prop.num_long_watches(neg(0)), 0u);
  EXPECT_EQ(c.prop.num_binary_watches(neg(0)), 1u);
  // The binary path now propagates it.
  c.trail.new_decision_level();
  c.trail.assign(neg(0), kClauseRefUndef);
  while (!c.trail.fully_propagated()) {
    ASSERT_EQ(c.prop.propagate(c.trail, c.db.arena(), c.stats),
              kClauseRefUndef);
  }
  EXPECT_EQ(c.trail.value(pos(1)), l_True);
  EXPECT_GT(c.stats.binary_propagations, 0u);
}

TEST(ClauseDbTest, GcPatchesWatchesReasonsAndLearnedList) {
  Core c;
  c.vars(9);
  // Enough dead space to trigger compaction: delete the local tier.
  std::vector<ClauseRef> fillers;
  for (int i = 0; i < 2; ++i)
    fillers.push_back(c.learned({pos(0), pos(1), pos(2)}, 9));
  const ClauseRef keep = c.learned({pos(3), pos(4), pos(5)}, 3);
  c.trail.new_decision_level();
  c.trail.assign(pos(3), keep);
  c.db.reduce(c.trail, c.prop, /*strengthen=*/false, c.stats);
  EXPECT_EQ(c.stats.deleted_clauses, 1u);  // half of the two fillers
  ASSERT_GT(c.stats.arena_gcs, 0u);
  // The surviving locked clause's reason reference was patched and still
  // resolves to the same literals.
  const ClauseRef moved = c.trail.reason(3);
  ASSERT_NE(moved, kClauseRefUndef);
  EXPECT_EQ(c.db.get(moved)[0], pos(3));
  EXPECT_EQ(c.db.num_learned(), 2u);  // keep + the surviving filler
}

}  // namespace
}  // namespace refbmc::sat
