// Search machinery: learning, restarts, clause deletion, garbage
// collection, resource limits.
#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "sat/solver.hpp"

namespace refbmc::sat {
namespace {

using test::load;
using test::model_satisfies;
using test::pigeonhole;
using test::solve_cnf;

TEST(SolverSearchTest, PigeonholeSatWhenFits) {
  const Cnf cnf = pigeonhole(3, 3);
  Solver s;
  load(s, cnf);
  ASSERT_EQ(s.solve(), Result::Sat);
  EXPECT_TRUE(model_satisfies(s, cnf));
}

TEST(SolverSearchTest, PigeonholeUnsatWhenOverfull) {
  for (int n = 2; n <= 6; ++n)
    EXPECT_EQ(solve_cnf(pigeonhole(n + 1, n)), Result::Unsat) << n;
}

TEST(SolverSearchTest, LearnsClauses) {
  Solver s;
  load(s, pigeonhole(6, 5));
  EXPECT_EQ(s.solve(), Result::Unsat);
  EXPECT_GT(s.stats().learned_clauses, 0u);
  EXPECT_GT(s.stats().conflicts, 0u);
}

TEST(SolverSearchTest, RestartsFire) {
  SolverConfig cfg;
  cfg.restart_base = 4;  // aggressive
  Solver s(cfg);
  load(s, pigeonhole(7, 6));
  EXPECT_EQ(s.solve(), Result::Unsat);
  EXPECT_GT(s.stats().restarts, 0u);
}

TEST(SolverSearchTest, RestartsCanBeDisabled) {
  SolverConfig cfg;
  cfg.enable_restarts = false;
  Solver s(cfg);
  load(s, pigeonhole(7, 6));
  EXPECT_EQ(s.solve(), Result::Unsat);
  EXPECT_EQ(s.stats().restarts, 0u);
}

TEST(SolverSearchTest, ReduceDbDeletesClauses) {
  SolverConfig cfg;
  cfg.reduce_base = 50;  // force early deletion
  cfg.restart_base = 16;
  Solver s(cfg);
  load(s, pigeonhole(8, 7));
  EXPECT_EQ(s.solve(), Result::Unsat);
  EXPECT_GT(s.stats().reduce_db_runs, 0u);
  EXPECT_GT(s.stats().deleted_clauses, 0u);
}

TEST(SolverSearchTest, CoreSurvivesClauseDeletionAndGc) {
  // The paper's §3.1 requirement: unsat-core extraction stays possible
  // with reduceDB and arena GC active.
  SolverConfig cfg;
  cfg.reduce_base = 40;
  cfg.restart_base = 8;
  Solver s(cfg);
  const Cnf cnf = pigeonhole(8, 7);
  load(s, cnf);
  ASSERT_EQ(s.solve(), Result::Unsat);
  ASSERT_GT(s.stats().deleted_clauses, 0u);
  const auto core = s.unsat_core();
  EXPECT_FALSE(core.empty());
  EXPECT_LE(core.size(), cnf.num_clauses());
  // Core ids are valid, sorted, unique.
  for (std::size_t i = 0; i + 1 < core.size(); ++i)
    EXPECT_LT(core[i], core[i + 1]);
  EXPECT_GE(core.front(), 1u);
  EXPECT_LE(core.back(), s.num_original_clauses());
}

TEST(SolverSearchTest, DeletionDisabledStillSolves) {
  SolverConfig cfg;
  cfg.enable_reduce_db = false;
  Solver s(cfg);
  load(s, pigeonhole(7, 6));
  EXPECT_EQ(s.solve(), Result::Unsat);
  EXPECT_EQ(s.stats().deleted_clauses, 0u);
}

TEST(SolverSearchTest, ConflictLimitReturnsUnknown) {
  SolverConfig cfg;
  cfg.conflict_limit = 3;
  Solver s(cfg);
  load(s, pigeonhole(9, 8));
  EXPECT_EQ(s.solve(), Result::Unknown);
  EXPECT_LE(s.stats().conflicts, 4u);
}

TEST(SolverSearchTest, TimeLimitReturnsUnknown) {
  SolverConfig cfg;
  cfg.time_limit_sec = 1e-7;  // expires immediately
  Solver s(cfg);
  load(s, pigeonhole(10, 9));
  EXPECT_EQ(s.solve(), Result::Unknown);
}

TEST(SolverSearchTest, MinimizationRemovesLiterals) {
  SolverConfig cfg;
  Solver s(cfg);
  load(s, pigeonhole(8, 7));
  EXPECT_EQ(s.solve(), Result::Unsat);
  EXPECT_GT(s.stats().minimized_literals, 0u);
}

TEST(SolverSearchTest, XorChainContradictionUnsat) {
  // y1 = x1^x2, y2 = y1^x3, force y2 and ¬y2 via two chains sharing vars.
  Cnf cnf;
  cnf.num_vars = 6;
  test::add_xor(cnf, 0, 1, 3);
  test::add_xor(cnf, 3, 2, 4);
  test::add_xor(cnf, 0, 1, 5);
  cnf.add_clause({Lit::make(4)});
  // y1' (var5) equals var3 by construction; force the chain inconsistent:
  test::add_xor(cnf, 5, 2, 4);  // same output var with same inputs: fine
  cnf.add_clause({Lit::make(4, true)});
  EXPECT_EQ(solve_cnf(cnf), Result::Unsat);
}

TEST(SolverSearchTest, WideClausesExerciseWatches) {
  // A formula whose clauses are wide: forces watch replacement scans.
  Cnf cnf;
  cnf.num_vars = 20;
  for (int c = 0; c < 19; ++c) {
    std::vector<Lit> clause;
    for (int v = 0; v < 20; ++v)
      clause.push_back(Lit::make(v, (v + c) % 3 == 0));
    cnf.add_clause(clause);
  }
  Solver s;
  load(s, cnf);
  ASSERT_EQ(s.solve(), Result::Sat);
  EXPECT_TRUE(model_satisfies(s, cnf));
}

TEST(SolverSearchTest, RepeatedSolveIsConsistent) {
  Solver s;
  load(s, pigeonhole(3, 3));
  EXPECT_EQ(s.solve(), Result::Sat);
  EXPECT_EQ(s.solve(), Result::Sat);
  Solver u;
  load(u, pigeonhole(4, 3));
  EXPECT_EQ(u.solve(), Result::Unsat);
  EXPECT_EQ(u.solve(), Result::Unsat);
}

}  // namespace
}  // namespace refbmc::sat
