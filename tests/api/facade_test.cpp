// The api façade must be a faithful skin over the CLI path: the builder
// and from_options agree knob for knob, and config_fingerprint changes
// exactly when a behaviour-affecting option changes.
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/refbmc.hpp"
#include "bmc/engine.hpp"
#include "model/benchgen.hpp"
#include "portfolio/scheduler.hpp"

namespace refbmc::api {
namespace {

Options make_options(std::vector<std::string> args) {
  args.insert(args.begin(), "test");
  std::vector<char*> argv;
  for (std::string& a : args) argv.push_back(a.data());
  return Options::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(FacadeTest, CheckFindsTheInjectedBug) {
  const model::Benchmark bm = model::fifo_buggy(4);
  CheckRequest request;
  request.net = bm.net;
  request.name = bm.name;
  request.options.policy("dynamic").max_depth(24);
  const CheckResult r = check(request);
  ASSERT_EQ(r.status, CheckResult::Status::CounterexampleFound);
  EXPECT_EQ(r.counterexample_depth, bm.expect_depth);
  ASSERT_TRUE(r.counterexample.has_value());
  EXPECT_EQ(r.winner_policy, "dynamic");
  EXPECT_FALSE(r.from_cache);
  EXPECT_GT(r.total_decisions(), 0u);
  EXPECT_FALSE(r.per_depth.empty());
}

TEST(FacadeTest, FacadeAgreesWithDirectEngine) {
  // A single-entrant façade check and a direct BmcEngine run of the same
  // configuration must reach the same verdict at the same depth.
  for (const auto& bm :
       {model::arbiter_buggy(6), model::fifo_safe(4)}) {
    RaceOptions options;
    options.policy("dynamic").max_depth(bm.suggested_bound);
    CheckRequest request;
    request.net = bm.net;
    request.options = options;
    const CheckResult from_facade = check(request);

    const portfolio::ResolvedPortfolio cfg = options.resolve();
    bmc::EngineConfig engine = cfg.engine;
    engine.policy = cfg.policies.front();
    bmc::BmcEngine direct(bm.net, engine);
    const bmc::BmcResult reference = direct.run();

    EXPECT_EQ(from_facade.status, reference.status) << bm.name;
    EXPECT_EQ(from_facade.counterexample_depth,
              reference.counterexample_depth)
        << bm.name;
  }
}

TEST(FacadeTest, FromOptionsMatchesBuilder) {
  // The shared CLI path and the chainable setters must land on the same
  // fingerprint — i.e. the exact same race.
  // --share-rank is pinned because its CLI default is hardware-adaptive
  // (off on a single-hardware-thread host) while the builder default is
  // a plain `true` — the one knob where the two paths intentionally
  // start from different places.
  const Options opts = make_options(
      {"--policies", "static,dynamic", "--depth", "17", "--budget", "3.5",
       "--threads", "2", "--seed", "99", "--incremental", "--share", "0",
       "--share-rank", "0", "--core-weighting", "exp-decay"});
  const RaceOptions from_cli = RaceOptions::from_options(opts);

  RaceOptions built;
  built.policies({"static", "dynamic"})
      .max_depth(17)
      .budget_sec(3.5)
      .threads(2)
      .seed(99)
      .incremental(true)
      .share(false)
      .share_rank(false)
      .core_weighting("exp-decay");
  EXPECT_EQ(config_fingerprint(from_cli), config_fingerprint(built));
}

TEST(FacadeTest, FromOptionsSpellings) {
  // --bound aliases --depth; --policy P is a single-entrant lineup;
  // --any-frame flips the bad mode.
  const RaceOptions o = RaceOptions::from_options(
      make_options({"--bound", "7", "--policy", "static", "--any-frame"}));
  EXPECT_EQ(o.max_depth(), 7);
  EXPECT_EQ(o.bad_mode(), bmc::BadMode::Any);
  const portfolio::ResolvedPortfolio cfg = o.resolve();
  ASSERT_EQ(cfg.policies.size(), 1u);
  EXPECT_EQ(cfg.policies.front(), bmc::OrderingPolicy::Static);
}

TEST(FacadeTest, InvalidValuesSurfaceAtResolveTime) {
  RaceOptions o;
  o.policy("definitely-not-a-policy");
  EXPECT_THROW(o.resolve(), std::invalid_argument);
}

TEST(FacadeTest, FingerprintIsDeterministic) {
  RaceOptions a, b;
  EXPECT_EQ(config_fingerprint(a), config_fingerprint(b));
  a.max_depth(31).seed(5).share_lbd(3);
  b.max_depth(31).seed(5).share_lbd(3);
  EXPECT_EQ(config_fingerprint(a), config_fingerprint(b));
}

TEST(FacadeTest, FingerprintCoversEveryKnob) {
  // Flipping any single behaviour-affecting option must move the
  // fingerprint — a stale-cache-hit bug per missed field.
  const std::uint64_t base = config_fingerprint(RaceOptions{});
  const std::vector<std::pair<const char*,
                              std::function<void(RaceOptions&)>>> knobs = {
      {"policies", [](RaceOptions& o) { o.policy("static"); }},
      {"max_depth", [](RaceOptions& o) { o.max_depth(21); }},
      {"budget_sec", [](RaceOptions& o) { o.budget_sec(9.0); }},
      {"threads", [](RaceOptions& o) { o.threads(3); }},
      {"seed", [](RaceOptions& o) { o.seed(12345); }},
      {"incremental", [](RaceOptions& o) { o.incremental(true); }},
      {"simplify", [](RaceOptions& o) { o.simplify(false); }},
      {"bad_mode", [](RaceOptions& o) { o.bad_mode(bmc::BadMode::Any); }},
      {"decision", [](RaceOptions& o) { o.decision("evsids"); }},
      {"glue_lbd", [](RaceOptions& o) { o.glue_lbd(3); }},
      {"tier_lbd", [](RaceOptions& o) { o.tier_lbd(7); }},
      {"share", [](RaceOptions& o) { o.share(false); }},
      {"share_lbd", [](RaceOptions& o) { o.share_lbd(5); }},
      {"share_size", [](RaceOptions& o) { o.share_size(3); }},
      {"share_cap", [](RaceOptions& o) { o.share_cap(512); }},
      {"share_rank", [](RaceOptions& o) { o.share_rank(false); }},
      {"core_weighting",
       [](RaceOptions& o) { o.core_weighting("uniform"); }},
      {"preprocess", [](RaceOptions& o) { o.preprocess(false); }},
      {"bve_budget", [](RaceOptions& o) { o.bve_budget(4); }},
      {"vivify_interval", [](RaceOptions& o) { o.vivify_interval(3); }},
      {"assumption_savepoint",
       [](RaceOptions& o) { o.assumption_savepoint(false); }},
  };
  for (const auto& [name, mutate] : knobs) {
    RaceOptions o;
    mutate(o);
    EXPECT_NE(config_fingerprint(o), base)
        << "fingerprint blind to option: " << name;
  }
}

TEST(FacadeTest, FingerprintEmbedsFormulaFingerprint) {
  // Formula-shaping knobs move both fingerprints; search-only knobs move
  // config_fingerprint while the formula identity (what the shard
  // GroupKey sees) stays put.  This is the shard/cache agreement the
  // cache key relies on.
  const auto formula_of = [](const RaceOptions& o) {
    return bmc::formula_fingerprint(o.resolve().engine);
  };
  const RaceOptions base;
  RaceOptions formula_knob;
  formula_knob.simplify(false);
  EXPECT_NE(formula_of(formula_knob), formula_of(base));
  EXPECT_NE(config_fingerprint(formula_knob), config_fingerprint(base));

  RaceOptions search_knob;
  search_knob.threads(7).seed(321).share_lbd(6);
  EXPECT_EQ(formula_of(search_knob), formula_of(base));
  EXPECT_NE(config_fingerprint(search_knob), config_fingerprint(base));
}

TEST(FacadeTest, ObservabilityExcludedFromFingerprint) {
  // Trace/metrics files never change a verdict, so two requests that
  // differ only there must share a cache slot.
  const RaceOptions plain = RaceOptions::from_options(make_options({}));
  const RaceOptions traced = RaceOptions::from_options(
      make_options({"--trace", "/tmp/t.json", "--metrics", "/tmp/m.json"}));
  EXPECT_EQ(config_fingerprint(plain), config_fingerprint(traced));
}

TEST(FacadeTest, StructuralHashIgnoresLabelsNotStructure) {
  const model::Benchmark a = model::fifo_buggy(4);
  const model::Benchmark b = model::fifo_buggy(4);
  EXPECT_EQ(model::structural_hash(a.net), model::structural_hash(b.net));
  EXPECT_NE(model::structural_hash(a.net),
            model::structural_hash(model::fifo_buggy(3).net));
  EXPECT_NE(model::structural_hash(a.net),
            model::structural_hash(model::arbiter_buggy(6).net));
}

}  // namespace
}  // namespace refbmc::api
