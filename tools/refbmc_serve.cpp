// refbmc-serve — the BMC daemon: a service::JobServer behind a Unix
// domain socket.
//
//   $ ./refbmc-serve --socket /tmp/refbmc.sock [--workers N]
//                    [--queue-cap N] [--cache-cap N] [--warm-ranks 0|1]
//                    [--default-deadline SEC] [--metrics FILE]
//
// Runs until a client sends the "shutdown" op (refbmc-client shutdown)
// or the process receives SIGINT/SIGTERM; either way the daemon stops
// accepting, cancels in-flight races cooperatively and exits cleanly.
// --metrics FILE writes the server-side counters (queue depth, admission
// rejects, cache hit rate, deadline evictions, plus every solver-level
// metric) on exit.
#include <csignal>
#include <cstdio>
#include <exception>
#include <thread>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "service/transport.hpp"
#include "util/options.hpp"

namespace {

std::sig_atomic_t volatile g_signalled = 0;
void on_signal(int) { g_signalled = 1; }

int run(int argc, char** argv) {
  using namespace refbmc;

  const Options opts = Options::parse(argc, argv);
  const std::string socket_path = opts.get("socket", "/tmp/refbmc.sock");
  const std::string metrics_file = opts.get("metrics");

  service::ServerConfig cfg;
  cfg.workers = opts.get_int("workers", 2);
  cfg.queue_capacity =
      static_cast<std::size_t>(opts.get_int("queue-cap", 64));
  cfg.cache_capacity =
      static_cast<std::size_t>(opts.get_int("cache-cap", 128));
  cfg.warm_start_ranks = opts.get_bool("warm-ranks", true);
  cfg.default_deadline_sec = opts.get_double("default-deadline", -1.0);
  if (cfg.workers < 1) {
    std::fprintf(stderr, "refbmc-serve: --workers must be >= 1\n");
    return 2;
  }

  if (!metrics_file.empty()) obs::metrics_enable(true);

  service::JobServer server(cfg);
  service::SocketServer transport(server, socket_path);
  std::string error;
  if (!transport.start(&error)) {
    std::fprintf(stderr, "refbmc-serve: cannot listen on %s: %s\n",
                 socket_path.c_str(), error.c_str());
    return 1;
  }
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::printf("refbmc-serve: listening on %s (%d workers, queue %zu, "
              "cache %zu)\n",
              socket_path.c_str(), cfg.workers, cfg.queue_capacity,
              cfg.cache_capacity);
  std::fflush(stdout);

  while (!transport.shutdown_requested() && g_signalled == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

  std::printf("refbmc-serve: shutting down\n");
  transport.stop();
  server.shutdown(/*cancel_running=*/true);

  const service::JobServer::Stats s = server.stats();
  std::printf("refbmc-serve: %llu submitted, %llu completed, %llu cache "
              "hits, %llu rejected, %llu deadline evictions\n",
              static_cast<unsigned long long>(s.submitted),
              static_cast<unsigned long long>(s.completed),
              static_cast<unsigned long long>(s.cache_hits),
              static_cast<unsigned long long>(s.rejected),
              static_cast<unsigned long long>(s.deadline_evictions));
  if (!metrics_file.empty()) {
    obs::write_metrics_file(metrics_file, obs::metrics());
    std::printf("metrics -> %s\n", metrics_file.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "refbmc-serve: %s\n", e.what());
    return 2;
  }
}
