// refbmc-client — the CLI half of the serving wire protocol.
//
//   $ ./refbmc-client --socket /tmp/refbmc.sock <command> [args]
//
//   submit FILE.aag [--bad N] [--name X] [--priority high|normal|batch]
//                   [--deadline SEC] [--no-cache] [--wait]
//                   [race options: --depth, --policies, --budget, ...]
//   suite  [--quick] [--rounds N] [--depth K] [race options]
//          submits the benchgen suite (server-side wait), checks every
//          verdict against the suite's expectation; with --rounds >= 2
//          also asserts the later rounds were served from the result
//          cache — the CI smoke in one command.
//   poll ID | events ID [--after N] | cancel ID
//   wait ID [--timeout SEC] | stats | shutdown
//
// All responses are printed as their raw JSON payload (scriptable);
// suite prints a verdict table and sets the exit code.
#include <cstdio>
#include <exception>
#include <string>

#include "api/refbmc.hpp"
#include "model/aiger.hpp"
#include "model/benchgen.hpp"
#include "service/transport.hpp"
#include "util/options.hpp"

namespace {

using namespace refbmc;

int fail(const std::string& message) {
  std::fprintf(stderr, "refbmc-client: %s\n", message.c_str());
  return 2;
}

service::Client::SubmitArgs submit_args_from(const Options& opts) {
  service::Client::SubmitArgs args;
  args.bad_index = static_cast<std::size_t>(opts.get_int("bad", 0));
  args.name = opts.get("name");
  if (opts.has("priority")) {
    const auto p = service::parse_priority(opts.get("priority"));
    if (!p)
      throw std::invalid_argument("unknown priority '" +
                                  opts.get("priority") + "'");
    args.priority = *p;
  }
  args.deadline_sec = opts.get_double("deadline", -1.0);
  args.use_cache = !opts.get_bool("no-cache", false);
  args.wait = opts.get_bool("wait", false);
  args.options = api::RaceOptions::from_options(opts);
  return args;
}

int cmd_submit(service::Client& client, const Options& opts,
               const std::string& path) {
  service::Client::SubmitArgs args = submit_args_from(opts);
  args.aiger = model::to_aiger_string(model::read_aiger_file(path));
  if (args.name.empty()) args.name = path;
  std::string error;
  const auto response = client.submit(args, &error);
  if (!response) return fail(error);
  if (!response->get_bool("ok", false))
    return fail("server error: " + response->get_string("error", "?"));
  if (!response->get_bool("accepted", false)) {
    std::printf("rejected: %s\n",
                response->get_string("reason", "?").c_str());
    return 1;
  }
  std::printf("id %llu\n", static_cast<unsigned long long>(
                               response->get_uint64("id")));
  if (const service::JsonValue* status = response->find("status"))
    if (const service::JsonValue* result = status->find("result"))
      std::printf("%s: %s (depth %lld, %s)\n",
                  status->get_string("state", "?").c_str(),
                  result->get_string("verdict", "?").c_str(),
                  static_cast<long long>(
                      result->get_int("counterexample_depth", -1)),
                  result->get_bool("from_cache") ? "cached" : "solved");
  return 0;
}

int cmd_suite(service::Client& client, const Options& opts) {
  const auto suite = opts.get_bool("quick", false) ? model::quick_suite()
                                                   : model::standard_suite();
  const int rounds = opts.get_int("rounds", 1);
  if (rounds < 1) return fail("--rounds must be >= 1");

  int mismatches = 0;
  std::uint64_t cached_results = 0;
  for (int round = 0; round < rounds; ++round) {
    std::printf("round %d/%d\n", round + 1, rounds);
    std::printf("  %-26s %-8s %-10s %8s %s\n", "model", "verdict",
                "expected", "depths", "served");
    for (const auto& bm : suite) {
      service::Client::SubmitArgs args = submit_args_from(opts);
      args.aiger = model::to_aiger_string(bm.net);
      args.name = bm.name;
      args.wait = true;
      if (!opts.has("depth") && !opts.has("bound"))
        args.options.max_depth(bm.suggested_bound);
      std::string error;
      const auto response = client.submit(args, &error);
      if (!response) return fail(error);
      if (!response->get_bool("ok", false))
        return fail("server error: " + response->get_string("error", "?"));
      if (!response->get_bool("accepted", false))
        return fail("submission rejected: " +
                    response->get_string("reason", "?"));
      const service::JsonValue* status = response->find("status");
      const service::JsonValue* result =
          status != nullptr ? status->find("result") : nullptr;
      if (result == nullptr) return fail("wait returned no result");

      const std::string verdict = result->get_string("verdict", "?");
      const bool from_cache = result->get_bool("from_cache", false);
      const bool ok = verdict == (bm.expect_fail ? "cex" : "bound");
      if (!ok) ++mismatches;
      if (from_cache) ++cached_results;
      std::printf("  %-26s %-8s %-10s %8lld %s%s\n", bm.name.c_str(),
                  verdict.c_str(), bm.expect_fail ? "cex" : "bound",
                  static_cast<long long>(
                      result->get_int("last_completed_depth", -1)),
                  from_cache ? "cache" : "solve",
                  ok ? "" : "  <-- MISMATCH");
    }
  }

  std::printf("\n%d mismatches, %llu cached results\n", mismatches,
              static_cast<unsigned long long>(cached_results));
  if (mismatches != 0) return 1;
  if (rounds >= 2 && cached_results < suite.size()) {
    // Every second-round submission is identical to a first-round one,
    // so each must be a cache hit — anything less means the cache key
    // broke.
    std::fprintf(stderr,
                 "refbmc-client: expected >= %zu cached results, got %llu\n",
                 suite.size(),
                 static_cast<unsigned long long>(cached_results));
    return 1;
  }
  return 0;
}

int run(int argc, char** argv) {
  const Options opts = Options::parse(argc, argv);
  const auto& pos = opts.positionals();
  if (pos.empty())
    return fail(
        "usage: refbmc-client --socket PATH "
        "submit|suite|poll|events|cancel|wait|stats|shutdown ...");
  const std::string command = pos[0];

  service::Client client;
  std::string error;
  if (!client.connect(opts.get("socket", "/tmp/refbmc.sock"), &error))
    return fail("cannot connect: " + error);

  const auto id_arg = [&]() -> service::JobId {
    if (pos.size() < 2)
      throw std::invalid_argument(command + " needs a job id");
    return static_cast<service::JobId>(std::stoull(pos[1]));
  };

  if (command == "submit") {
    if (pos.size() < 2) return fail("submit needs an AIGER file");
    return cmd_submit(client, opts, pos[1]);
  }
  if (command == "suite") return cmd_suite(client, opts);

  std::optional<service::JsonValue> response;
  if (command == "poll") {
    response = client.poll(id_arg(), &error);
  } else if (command == "events") {
    response = client.events(
        id_arg(), opts.get_int("after", 0) < 0
                      ? 0
                      : static_cast<std::uint64_t>(opts.get_int("after", 0)),
        &error);
  } else if (command == "cancel") {
    response = client.cancel(id_arg(), &error);
  } else if (command == "wait") {
    response = client.wait(id_arg(), opts.get_double("timeout", -1.0),
                           &error);
  } else if (command == "stats") {
    response = client.stats(&error);
  } else if (command == "shutdown") {
    response = client.shutdown(&error);
  } else {
    return fail("unknown command '" + command + "'");
  }

  if (!response) return fail(error);
  // Print the exact payload the server sent (scriptable output).
  std::printf("%s\n", client.last_raw().c_str());
  return response->get_bool("ok", false) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "refbmc-client: %s\n", e.what());
    return 2;
  }
}
