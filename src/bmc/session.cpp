#include "bmc/session.hpp"

#include "util/assert.hpp"

namespace refbmc::bmc {

namespace {

class ScratchSession final : public FormulaSession {
 public:
  ScratchSession(SharedTape& tape, const sat::SolverConfig& scfg)
      : tape_(tape), scfg_(scfg) {}

  Prepared prepare(int k) override {
    solver_ = std::make_unique<sat::Solver>(scfg_);
    origin_.clear();
    ClauseTape::Cursor cursor;
    SolverSink sink(*solver_, origin_);
    tape_.replay_to(k, cursor, sink);

    const sat::Lit prop = cursor.translate(tape_.property(k));
    solver_->add_clause({prop});

    Prepared p;
    p.solver = solver_.get();
    p.property_lit = prop;
    p.cnf_vars = origin_.size();
    p.cnf_clauses = solver_->num_original_clauses();
    return p;
  }

  void retire(int) override {}  // the next depth starts from scratch

  const std::vector<VarOrigin>& origin() const override { return origin_; }

 private:
  SharedTape& tape_;
  sat::SolverConfig scfg_;
  std::unique_ptr<sat::Solver> solver_;
  std::vector<VarOrigin> origin_;
};

class IncrementalSession final : public FormulaSession {
 public:
  IncrementalSession(SharedTape& tape, const sat::SolverConfig& scfg)
      : tape_(tape), solver_(std::make_unique<sat::Solver>(scfg)) {}

  Prepared prepare(int k) override {
    REFBMC_EXPECTS_MSG(k >= prepared_depth_,
                       "incremental session depths must be non-decreasing");
    SolverSink sink(*solver_, origin_);
    tape_.replay_to(k, cursor_, sink);
    prepared_depth_ = k;

    while (static_cast<int>(activation_.size()) <= k)
      activation_.push_back(sat::kLitUndef);
    sat::Lit guard = activation_[static_cast<std::size_t>(k)];
    if (guard.is_undef()) {
      origin_.push_back(VarOrigin{model::kConstNode, -2});
      guard = sat::Lit::make(solver_->new_var());
      // Guarded property: assuming `guard` asserts the violation at k.
      solver_->add_clause({~guard, cursor_.translate(tape_.property(k))});
      activation_[static_cast<std::size_t>(k)] = guard;
    }

    Prepared p;
    p.solver = solver_.get();
    p.assumptions = {guard};
    p.property_lit = cursor_.translate(tape_.property(k));
    p.cnf_vars = origin_.size();
    p.cnf_clauses = solver_->num_original_clauses();
    return p;
  }

  void retire(int k) override {
    REFBMC_EXPECTS(k >= 0 &&
                   static_cast<std::size_t>(k) < activation_.size() &&
                   !activation_[static_cast<std::size_t>(k)].is_undef());
    while (static_cast<std::size_t>(k) >= retired_.size())
      retired_.push_back(0);
    if (retired_[static_cast<std::size_t>(k)]) return;
    retired_[static_cast<std::size_t>(k)] = 1;
    // Permanently disable the guard so BCP never revisits the dead
    // property clause at deeper depths.
    solver_->add_clause({~activation_[static_cast<std::size_t>(k)]});
  }

  const std::vector<VarOrigin>& origin() const override { return origin_; }

 private:
  SharedTape& tape_;
  std::unique_ptr<sat::Solver> solver_;
  ClauseTape::Cursor cursor_;
  std::vector<VarOrigin> origin_;
  std::vector<sat::Lit> activation_;  // per depth; undef = not created
  std::vector<char> retired_;         // per depth
  int prepared_depth_ = -1;
};

}  // namespace

std::unique_ptr<FormulaSession> make_scratch_session(
    SharedTape& tape, const sat::SolverConfig& solver_config) {
  return std::make_unique<ScratchSession>(tape, solver_config);
}

std::unique_ptr<FormulaSession> make_incremental_session(
    SharedTape& tape, const sat::SolverConfig& solver_config) {
  return std::make_unique<IncrementalSession>(tape, solver_config);
}

}  // namespace refbmc::bmc
