#include "bmc/session.hpp"

#include "portfolio/clause_pool.hpp"
#include "util/assert.hpp"

namespace refbmc::bmc {

namespace {

class ScratchSession final : public FormulaSession {
 public:
  ScratchSession(SharedTape& tape, const sat::SolverConfig& scfg,
                 portfolio::SharedClausePool* pool, int producer)
      : tape_(tape), scfg_(scfg) {
    if (pool != nullptr)
      endpoint_ =
          std::make_unique<portfolio::PoolEndpoint>(*pool, producer);
  }

  Prepared prepare(int k) override {
    solver_ = std::make_unique<sat::Solver>(scfg_);
    origin_.clear();
    ClauseTape::Cursor cursor;
    SolverSink sink(*solver_, origin_);
    const bool preprocessed = tape_.preprocess_options().enabled;
    if (preprocessed) {
      tape_.replay_simplified_to(k, cursor, sink);
      // Round-trip guard: a fresh replay of the cached simplified
      // stream must land the exact clause count the cache reports —
      // remapper drift between sessions would break the shard group's
      // "one formula, many solvers" premise silently.
      REFBMC_ASSERT(solver_->num_original_clauses() ==
                    tape_.simplified_clauses_at(k));
    } else {
      tape_.replay_to(k, cursor, sink);
    }

    const sat::Lit prop = cursor.translate(tape_.property(k));
    Prepared p;
    p.solver = solver_.get();
    p.property_lit = prop;
    if (endpoint_ != nullptr) {
      // Sharing: the fresh solver adopts the endpoint (rewound so the
      // ring's live lemmas flow in at solve start), and the property is
      // an assumption, not a clause — assumptions steer the search
      // without entering the clause database, so every learnt stays
      // implied by the tape and is sound to export.  (Side effect: the
      // property no longer counts as an original clause, so cnf_clauses
      // reads one lower per depth than in non-sharing mode.)
      endpoint_->rebind();
      endpoint_->sync_vars(cursor.var_map);
      solver_->set_clause_exchange(endpoint_.get());
      p.assumptions = {prop};
    } else {
      solver_->add_clause({prop});
    }
    p.cnf_vars = origin_.size();
    p.cnf_clauses = solver_->num_original_clauses();
    return p;
  }

  void retire(int) override {}  // the next depth starts from scratch

  const std::vector<VarOrigin>& origin() const override { return origin_; }

 private:
  SharedTape& tape_;
  sat::SolverConfig scfg_;
  std::unique_ptr<sat::Solver> solver_;
  std::unique_ptr<portfolio::PoolEndpoint> endpoint_;
  std::vector<VarOrigin> origin_;
};

class IncrementalSession final : public FormulaSession {
 public:
  IncrementalSession(SharedTape& tape, const sat::SolverConfig& scfg,
                     portfolio::SharedClausePool* pool, int producer)
      : tape_(tape),
        preprocess_(tape.preprocess_options().enabled),
        savepoint_(scfg.assumption_savepoint),
        solver_(std::make_unique<sat::Solver>(scfg)) {
    if (pool != nullptr) {
      endpoint_ =
          std::make_unique<portfolio::PoolEndpoint>(*pool, producer);
      solver_->set_clause_exchange(endpoint_.get());
    }
  }

  Prepared prepare(int k) override {
    REFBMC_EXPECTS_MSG(k >= prepared_depth_,
                       "incremental session depths must be non-decreasing");
    // Deferred retirements flush in batches: each flush costs a trip to
    // the root (the savepoint prefix is rebuilt on the next solve), so
    // amortize it over several proven depths.  Before the flush the dead
    // guards are disabled by assumption instead.
    if (pending_retire_.size() >= kRetireBatch) flush_retirements();

    SolverSink sink(*solver_, origin_);
    if (preprocess_) {
      // Activation-aware preprocessing: each depth's tape delta arrives
      // simplified against everything already replayed (cumulative root
      // facts, shared witness stack, transitive resurrection of
      // variables a later frame re-references) — see
      // SharedTape::replay_simplified_delta.
      for (int f = prepared_depth_ + 1; f <= k; ++f)
        tape_.replay_simplified_delta(f, cursor_, sink);
    } else {
      tape_.replay_to(k, cursor_, sink);
    }
    prepared_depth_ = k;
    // Activation guards are solver-local (absent from the map), so the
    // endpoint's export filter refuses any learnt that mentions one —
    // exactly the learnts that are not implied by the tape alone.
    if (endpoint_ != nullptr) endpoint_->sync_vars(cursor_.var_map);

    while (static_cast<int>(activation_.size()) <= k)
      activation_.push_back(sat::kLitUndef);
    sat::Lit guard = activation_[static_cast<std::size_t>(k)];
    if (guard.is_undef()) {
      origin_.push_back(VarOrigin{model::kConstNode, -2});
      guard = sat::Lit::make(solver_->new_var());
      // Live guards shield their clauses from vivification and, once
      // retired, key the frame-retirement sweep.  Registration only in
      // savepoint mode: without it the solver must stay bit-identical
      // to a plain incremental session.
      if (savepoint_) solver_->register_frame_guard(guard.var());
      // Guarded property: assuming `guard` asserts the violation at k.
      solver_->add_clause({~guard, cursor_.translate(tape_.property(k))});
      activation_[static_cast<std::size_t>(k)] = guard;
    }

    Prepared p;
    p.solver = solver_.get();
    if (savepoint_) {
      // Stable, growing assumption prefix: every retired depth's guard
      // negated (in depth order — flushed ones are root facts and cost a
      // placeholder level), the live depth's guard last.  Successive
      // depths share all but the final entry, which is exactly what the
      // solver's assumption savepoint keeps assigned between calls.
      for (std::size_t j = 0; j < retired_.size(); ++j)
        if (retired_[j]) p.assumptions.push_back(~activation_[j]);
      p.assumptions.push_back(guard);
    } else {
      p.assumptions = {guard};
    }
    p.property_lit = cursor_.translate(tape_.property(k));
    p.cnf_vars = origin_.size();
    p.cnf_clauses = solver_->num_original_clauses();
    return p;
  }

  void retire(int k) override {
    REFBMC_EXPECTS(k >= 0 &&
                   static_cast<std::size_t>(k) < activation_.size() &&
                   !activation_[static_cast<std::size_t>(k)].is_undef());
    while (static_cast<std::size_t>(k) >= retired_.size())
      retired_.push_back(0);
    if (retired_[static_cast<std::size_t>(k)]) return;
    retired_[static_cast<std::size_t>(k)] = 1;
    if (savepoint_) {
      // Defer the permanent unit: until the next flush the dead guard is
      // disabled by assumption (~g leads the next depth's prefix), which
      // keeps the savepoint trail intact.
      pending_retire_.push_back(activation_[static_cast<std::size_t>(k)]);
      return;
    }
    // Permanently disable the guard so BCP never revisits the dead
    // property clause at deeper depths.
    solver_->add_clause({~activation_[static_cast<std::size_t>(k)]});
  }

  const std::vector<VarOrigin>& origin() const override { return origin_; }

 private:
  // Depths retired between flushes of the permanent units + arena sweep.
  static constexpr std::size_t kRetireBatch = 4;

  void flush_retirements() {
    solver_->retire_frame_guards(pending_retire_);
    pending_retire_.clear();
  }

  SharedTape& tape_;
  bool preprocess_;
  bool savepoint_;
  std::unique_ptr<sat::Solver> solver_;
  std::unique_ptr<portfolio::PoolEndpoint> endpoint_;
  ClauseTape::Cursor cursor_;
  std::vector<VarOrigin> origin_;
  std::vector<sat::Lit> activation_;  // per depth; undef = not created
  std::vector<char> retired_;         // per depth
  std::vector<sat::Lit> pending_retire_;  // savepoint mode: await flush
  int prepared_depth_ = -1;
};

}  // namespace

std::unique_ptr<FormulaSession> make_scratch_session(
    SharedTape& tape, const sat::SolverConfig& solver_config,
    portfolio::SharedClausePool* share_pool, int share_producer) {
  return std::make_unique<ScratchSession>(tape, solver_config, share_pool,
                                          share_producer);
}

std::unique_ptr<FormulaSession> make_incremental_session(
    SharedTape& tape, const sat::SolverConfig& solver_config,
    portfolio::SharedClausePool* share_pool, int share_producer) {
  return std::make_unique<IncrementalSession>(tape, solver_config,
                                              share_pool, share_producer);
}

}  // namespace refbmc::bmc
