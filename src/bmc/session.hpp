// FormulaSession: the strategy that turns the shared formula stream into
// per-depth SAT queries.  The engine's single loop (engine.cpp) is
// parameterized by it:
//
//   * scratch     — a fresh solver per depth, fed by replaying the shared
//                   tape from the start and asserting the depth-k
//                   property as a unit (the paper's Fig. 5 discipline);
//   * incremental — one persistent solver fed tape deltas, the depth-k
//                   property guarded by an activation literal enabled via
//                   solve-under-assumptions (Eén–Sörensson; the
//                   combination with incremental SAT the paper's
//                   conclusion proposes).  Learned clauses — and, for the
//                   refined ordering, VSIDS scores — carry over between
//                   depths; retire(k) permanently disables a proven
//                   depth's guard so BCP never revisits it.  With tape
//                   preprocessing enabled the deltas arrive simplified
//                   (SharedTape::replay_simplified_delta); with the
//                   solver's assumption savepoint enabled the session
//                   presents a growing assumption prefix (retired guards
//                   negated, live guard last) so successive solves reuse
//                   the trail, and retirements are batched through
//                   Solver::retire_frame_guards so dead-frame clauses
//                   actually leave the arena.
//
// Either way the formula itself is encoded exactly once, by whichever
// SharedTape the session was given — private to one engine, or shared
// across a portfolio race.
#pragma once

#include <memory>
#include <vector>

#include "bmc/tape.hpp"
#include "sat/solver.hpp"

namespace refbmc::portfolio {
class SharedClausePool;
}

namespace refbmc::bmc {

class FormulaSession {
 public:
  /// One prepared depth: the solver to query, the assumptions to pass,
  /// and the solver-space property literal (the ¬P(V^k) handle — seed of
  /// the Shtrichman ordering, unit-asserted by scratch, guarded by
  /// incremental).
  struct Prepared {
    sat::Solver* solver = nullptr;
    std::vector<sat::Lit> assumptions;
    sat::Lit property_lit;
    std::size_t cnf_vars = 0;
    std::size_t cnf_clauses = 0;
  };

  virtual ~FormulaSession() = default;

  /// Makes depth k ready to solve.  Depths must be non-decreasing.  The
  /// returned solver stays valid until the next prepare() call (long
  /// enough for model/core extraction).
  virtual Prepared prepare(int k) = 0;

  /// Called after depth k came back UNSAT, before moving on.
  virtual void retire(int k) = 0;

  /// CNF-variable origins of the current solver (index = solver var).
  virtual const std::vector<VarOrigin>& origin() const = 0;
};

// `share_pool`, when non-null, connects the session's solver(s) to a
// portfolio lemma pool through a PoolEndpoint (clause_pool.hpp):
// qualifying learnts are exported in tape space, foreign lemmas imported
// at decision-level-0 boundaries.  `share_producer` is this entrant's id
// in the pool.  While sharing, the scratch session asserts the per-depth
// property as an *assumption* instead of a unit clause, which keeps every
// clause in its database implied by the tape alone (the export-soundness
// invariant); with a null pool the query shape — and every search
// trajectory — is bit-identical to a session without the hooks.
std::unique_ptr<FormulaSession> make_scratch_session(
    SharedTape& tape, const sat::SolverConfig& solver_config,
    portfolio::SharedClausePool* share_pool = nullptr,
    int share_producer = 0);
std::unique_ptr<FormulaSession> make_incremental_session(
    SharedTape& tape, const sat::SolverConfig& solver_config,
    portfolio::SharedClausePool* share_pool = nullptr,
    int share_producer = 0);

}  // namespace refbmc::bmc
