#include "bmc/shtrichman.hpp"

#include <deque>

#include "util/assert.hpp"

namespace refbmc::bmc {

std::vector<double> shtrichman_rank(
    std::size_t num_vars, const std::vector<std::span<const sat::Lit>>& clauses,
    sat::Var seed) {
  const std::size_t n = num_vars;
  // Build variable adjacency through shared clauses.  For BFS we walk
  // clause → variables; visiting each clause once keeps this linear.
  std::vector<std::vector<std::size_t>> clauses_of_var(n);
  for (std::size_t ci = 0; ci < clauses.size(); ++ci)
    for (const sat::Lit l : clauses[ci])
      clauses_of_var[static_cast<std::size_t>(l.var())].push_back(ci);

  std::vector<int> dist(n, -1);
  std::vector<char> clause_done(clauses.size(), 0);
  std::deque<sat::Var> queue;

  REFBMC_ASSERT(static_cast<std::size_t>(seed) < n);
  dist[static_cast<std::size_t>(seed)] = 0;
  queue.push_back(seed);

  int max_dist = 0;
  while (!queue.empty()) {
    const sat::Var v = queue.front();
    queue.pop_front();
    const int d = dist[static_cast<std::size_t>(v)];
    if (d > max_dist) max_dist = d;
    for (const std::size_t ci : clauses_of_var[static_cast<std::size_t>(v)]) {
      if (clause_done[ci]) continue;
      clause_done[ci] = 1;
      for (const sat::Lit l : clauses[ci]) {
        const auto u = static_cast<std::size_t>(l.var());
        if (dist[u] < 0) {
          dist[u] = d + 1;
          queue.push_back(l.var());
        }
      }
    }
  }

  std::vector<double> rank(n, 0.0);
  for (std::size_t v = 0; v < n; ++v)
    if (dist[v] >= 0)
      rank[v] = static_cast<double>(max_dist + 1 - dist[v]);
  return rank;
}

std::vector<double> shtrichman_rank(const BmcInstance& inst) {
  std::vector<std::span<const sat::Lit>> views(inst.cnf.clauses.begin(),
                                               inst.cnf.clauses.end());
  return shtrichman_rank(inst.num_vars(), views, inst.bad_lit.var());
}

std::vector<double> shtrichman_rank(const sat::Solver& solver, sat::Lit seed) {
  std::vector<std::span<const sat::Lit>> views;
  views.reserve(solver.num_original_clauses());
  for (const sat::ClauseId id : solver.original_ids())
    views.emplace_back(solver.original_clause(id));
  return shtrichman_rank(static_cast<std::size_t>(solver.num_vars()), views,
                         seed.var());
}

}  // namespace refbmc::bmc
