#include "bmc/tape.hpp"

#include "obs/trace.hpp"
#include "util/assert.hpp"

namespace refbmc::bmc {

void ClauseTape::replay(Cursor& cursor, const Mark& upto,
                        ClauseSink& out) const {
  REFBMC_EXPECTS(upto.ops <= ops_.size());
  std::vector<sat::Lit> clause;
  while (cursor.op < upto.ops) {
    const std::int32_t op = ops_[cursor.op++];
    if (op == kVarOp) {
      cursor.var_map.push_back(out.add_var(origin_[cursor.var_map.size()]));
      continue;
    }
    clause.clear();
    for (std::int32_t i = 0; i < op; ++i)
      clause.push_back(cursor.translate(lits_[cursor.lit++]));
    out.add_clause(clause);
  }
}

void ClauseTape::export_clauses(const Mark& upto,
                                std::vector<std::vector<sat::Lit>>& out) const {
  REFBMC_EXPECTS(upto.ops <= ops_.size());
  out.clear();
  out.reserve(upto.clauses);
  std::size_t lit = 0;
  for (std::size_t i = 0; i < upto.ops; ++i) {
    const std::int32_t op = ops_[i];
    if (op == kVarOp) continue;
    out.emplace_back(lits_.begin() + static_cast<std::ptrdiff_t>(lit),
                     lits_.begin() + static_cast<std::ptrdiff_t>(lit) + op);
    lit += static_cast<std::size_t>(op);
  }
}

void ClauseTape::export_clauses_range(
    const Mark& from, const Mark& upto,
    std::vector<std::vector<sat::Lit>>& out) const {
  REFBMC_EXPECTS(from.ops <= upto.ops && upto.ops <= ops_.size());
  out.clear();
  out.reserve(upto.clauses - from.clauses);
  std::size_t lit = from.lits;
  for (std::size_t i = from.ops; i < upto.ops; ++i) {
    const std::int32_t op = ops_[i];
    if (op == kVarOp) continue;
    out.emplace_back(lits_.begin() + static_cast<std::ptrdiff_t>(lit),
                     lits_.begin() + static_cast<std::ptrdiff_t>(lit) + op);
    lit += static_cast<std::size_t>(op);
  }
}

SharedTape::SharedTape(const model::Netlist& net, std::size_t bad_index,
                       EncoderOptions opts, PreprocessOptions preprocess)
    : net_(net),
      bad_index_(bad_index),
      opts_(opts),
      preprocess_(preprocess),
      encoder_(net, tape_, bad_index, opts) {}

void SharedTape::ensure_locked(int k) {
  REFBMC_EXPECTS(k >= 0);
  while (encoder_.encoded_depth() < k) {
    const int frame = encoder_.encoded_depth() + 1;
    // The frame is encoded exactly once race-wide (this is the
    // encode-once guarantee), so the span lands on whichever entrant's
    // track got here first — one tape_encode span per frame, total.
    obs::TraceSpan span(obs::EventKind::TapeEncode, frame);
    encoder_.encode_to(frame);
    span.set_value(static_cast<std::int64_t>(encoder_.stats().clauses_emitted));
    depth_marks_.push_back(tape_.mark());
    depth_stats_.push_back(encoder_.stats());
  }
}

void SharedTape::ensure_depth(int k) {
  const std::lock_guard<std::mutex> lock(mu_);
  ensure_locked(k);
}

void SharedTape::replay_to(int k, ClauseTape::Cursor& cursor,
                           ClauseSink& out) {
  const std::lock_guard<std::mutex> lock(mu_);
  ensure_locked(k);
  tape_.replay(cursor, depth_marks_[static_cast<std::size_t>(k)], out);
}

// Frozen set: everything whose tape variable must survive to the
// solver.  Inputs and latches at every frame (trace extraction and
// cross-depth identity), the auxiliary constant (frame -1), and the
// per-frame property/bad literals (the scratch session asserts or
// assumes them; the prefix-disjunction chain under BadMode::Any rides
// on the bad literals it references).  Incremental activation guards
// never appear here: they are solver-local variables created OUTSIDE
// the tape, so the pass cannot touch them by construction — the guard
// clause's tape-side anchor is the property literal, which is frozen.
void SharedTape::build_frozen_locked(int k, std::size_t num_vars,
                                     std::vector<char>& frozen) const {
  const auto& origin = tape_.origin();
  for (std::size_t v = 0; v < num_vars; ++v) {
    const VarOrigin& o = origin[v];
    if (o.frame < 0) {
      frozen[v] = 1;
      continue;
    }
    const model::NodeKind kind = net_.kind(o.node);
    if (kind == model::NodeKind::Input || kind == model::NodeKind::Latch)
      frozen[v] = 1;
  }
  for (int j = 0; j <= k; ++j) {
    frozen[static_cast<std::size_t>(encoder_.property(j).var())] = 1;
    frozen[static_cast<std::size_t>(encoder_.bad(j).var())] = 1;
  }
}

void SharedTape::ensure_simplified_locked(int k) {
  ensure_locked(k);
  const auto idx = static_cast<std::size_t>(k);
  if (simplified_.size() <= idx) simplified_.resize(idx + 1);
  if (simplified_[idx].ready) return;

  const ClauseTape::Mark& mark = depth_marks_[idx];
  obs::TraceSpan span(obs::EventKind::SpanPreprocess, k);

  std::vector<std::vector<sat::Lit>> clauses;
  tape_.export_clauses(mark, clauses);

  std::vector<char> frozen(mark.vars, 0);
  build_frozen_locked(k, mark.vars, frozen);

  const TapePreprocessor pp(preprocess_);
  simplified_[idx].result =
      pp.run(static_cast<int>(mark.vars), clauses, frozen);
  simplified_[idx].ready = true;
  span.set_value(
      static_cast<std::int64_t>(simplified_[idx].result.clauses.size()));
}

void SharedTape::ensure_inc_delta_locked(int f) {
  ensure_locked(f);
  const auto idx = static_cast<std::size_t>(f);
  if (inc_deltas_.size() <= idx) inc_deltas_.resize(idx + 1);
  if (inc_deltas_[idx].ready) return;
  // The cumulative state (remapper, root facts) only makes sense built
  // strictly in depth order; consumers replay deltas in order anyway.
  if (f > 0) ensure_inc_delta_locked(f - 1);

  const ClauseTape::Mark prev =
      f > 0 ? depth_marks_[idx - 1] : ClauseTape::Mark{};
  const ClauseTape::Mark& mark = depth_marks_[idx];
  obs::TraceSpan span(obs::EventKind::SpanPreprocess, f);

  IncDelta& d = inc_deltas_[idx];
  inc_remap_.grow(static_cast<int>(mark.vars));
  inc_assigned_.resize(mark.vars, sat::l_Undef);

  std::vector<std::vector<sat::Lit>> input;
  tape_.export_clauses_range(prev, mark, input);

  // Transitive resurrection: the delta may reference variables BVE
  // eliminated at an earlier depth (global strashing aliases later
  // frames onto earlier gate variables).  Re-admit each one and re-add
  // its removed-clause kit ahead of the delta; kit clauses may
  // themselves reference other eliminated variables, so chase to
  // fixpoint.  Kit clauses join the simplifier input — seeded root
  // facts and the delta get to simplify them like anything else.
  std::vector<std::vector<sat::Lit>> kit;
  const auto scan_clause = [&](const std::vector<sat::Lit>& c) {
    for (const sat::Lit l : c) {
      const sat::Var v = l.var();
      if (inc_remap_.is_kept(v)) continue;
      VarRemapper::Witness w = inc_remap_.resurrect(v);
      d.resurrected.push_back(v);
      for (auto& kc : w.clauses) kit.push_back(std::move(kc));
      for (auto& kc : w.removed) kit.push_back(std::move(kc));
    }
  };
  for (const auto& c : input) scan_clause(c);
  for (std::size_t i = 0; i < kit.size(); ++i) {
    const std::vector<sat::Lit> c = kit[i];  // copy: kit may grow
    scan_clause(c);
  }
  if (!kit.empty())
    input.insert(input.begin(), kit.begin(), kit.end());

  // Frozen: the scratch recipe for the new variables, plus EVERY
  // variable of earlier depths — cross-depth identity is what makes
  // the persistent solver's clauses stay meaningful, so only this
  // delta's fresh gate variables are elimination candidates.
  std::vector<char> frozen(mark.vars, 0);
  build_frozen_locked(f, mark.vars, frozen);
  for (std::size_t v = 0; v < prev.vars; ++v) frozen[v] = 1;

  const TapePreprocessor pp(preprocess_);
  SimplifyResult result =
      pp.run(static_cast<int>(mark.vars), input, frozen, &inc_assigned_);

  // Fold the delta's outcome into the cumulative state.  On fallback
  // (contradiction — degenerate input) the raw delta is cached and no
  // new eliminations or facts are recorded; the resurrections above
  // stand either way (the raw delta references those variables too).
  if (!result.fell_back) {
    for (const auto& w : result.remap.witnesses())
      inc_remap_.eliminate(w.lit, w.clauses, w.removed);
  }
  inc_assigned_ = std::move(result.assigned);
  d.kept_new.assign(mark.vars - prev.vars, 1);
  for (std::size_t v = prev.vars; v < mark.vars; ++v) {
    if (!inc_remap_.is_kept(static_cast<sat::Var>(v)))
      d.kept_new[v - prev.vars] = 0;
  }
  d.clauses = std::move(result.clauses);
  d.stats = result.stats;
  d.remap_after = inc_remap_;
  d.ready = true;
  span.set_value(static_cast<std::int64_t>(d.clauses.size()));
}

void SharedTape::replay_simplified_delta(int f, ClauseTape::Cursor& cursor,
                                         ClauseSink& out) {
  const std::lock_guard<std::mutex> lock(mu_);
  ensure_inc_delta_locked(f);
  const auto idx = static_cast<std::size_t>(f);
  const ClauseTape::Mark prev =
      f > 0 ? depth_marks_[idx - 1] : ClauseTape::Mark{};
  const ClauseTape::Mark& mark = depth_marks_[idx];
  REFBMC_EXPECTS_MSG(cursor.var_map.size() == prev.vars,
                     "delta replay requires a cursor parked at the "
                     "previous depth's mark");
  const IncDelta& d = inc_deltas_[idx];
  const auto& origin = tape_.origin();

  // Resurrected variables first (the cached delta stream references
  // them), then this delta's surviving variables in tape order —
  // identical creation order for every incremental consumer.
  for (const sat::Var v : d.resurrected) {
    auto& slot = cursor.var_map[static_cast<std::size_t>(v)];
    REFBMC_ASSERT(slot == sat::kVarUndef);
    slot = out.add_var(origin[static_cast<std::size_t>(v)]);
  }
  for (std::size_t v = prev.vars; v < mark.vars; ++v) {
    cursor.var_map.push_back(d.kept_new[v - prev.vars] != 0
                                 ? out.add_var(origin[v])
                                 : sat::kVarUndef);
  }
  std::vector<sat::Lit> clause;
  for (const auto& c : d.clauses) {
    clause.clear();
    for (const sat::Lit l : c) clause.push_back(cursor.translate(l));
    out.add_clause(clause);
  }
  // Park at the depth mark, exactly like the scratch simplified replay.
  cursor.op = mark.ops;
  cursor.lit = mark.lits;
}

void SharedTape::replay_simplified_to(int k, ClauseTape::Cursor& cursor,
                                      ClauseSink& out) {
  const std::lock_guard<std::mutex> lock(mu_);
  REFBMC_EXPECTS_MSG(cursor.op == 0 && cursor.var_map.empty(),
                     "simplified replay requires a fresh consumer");
  ensure_simplified_locked(k);
  const ClauseTape::Mark& mark = depth_marks_[static_cast<std::size_t>(k)];
  const SimplifyResult& res = simplified_[static_cast<std::size_t>(k)].result;

  const auto& origin = tape_.origin();
  for (std::size_t v = 0; v < mark.vars; ++v) {
    cursor.var_map.push_back(res.remap.is_kept(static_cast<sat::Var>(v))
                                 ? out.add_var(origin[v])
                                 : sat::kVarUndef);
  }
  std::vector<sat::Lit> clause;
  for (const auto& c : res.clauses) {
    clause.clear();
    for (const sat::Lit l : c) clause.push_back(cursor.translate(l));
    out.add_clause(clause);
  }
  // Park the cursor at the depth mark: translate() keeps working for
  // property/bad/latch literals over kept (frozen) variables.
  cursor.op = mark.ops;
  cursor.lit = mark.lits;
}

PreprocessStats SharedTape::preprocess_stats_at(int k) {
  const std::lock_guard<std::mutex> lock(mu_);
  ensure_simplified_locked(k);
  return simplified_[static_cast<std::size_t>(k)].result.stats;
}

std::size_t SharedTape::simplified_clauses_at(int k) {
  const std::lock_guard<std::mutex> lock(mu_);
  ensure_simplified_locked(k);
  return simplified_[static_cast<std::size_t>(k)].result.clauses.size();
}

VarRemapper SharedTape::remapper_at(int k) {
  const std::lock_guard<std::mutex> lock(mu_);
  ensure_simplified_locked(k);
  return simplified_[static_cast<std::size_t>(k)].result.remap;
}

PreprocessStats SharedTape::incremental_preprocess_stats_at(int k) {
  const std::lock_guard<std::mutex> lock(mu_);
  ensure_inc_delta_locked(k);
  return inc_deltas_[static_cast<std::size_t>(k)].stats;
}

VarRemapper SharedTape::incremental_remapper_at(int k) {
  const std::lock_guard<std::mutex> lock(mu_);
  ensure_inc_delta_locked(k);
  return inc_deltas_[static_cast<std::size_t>(k)].remap_after;
}

sat::Lit SharedTape::property(int k) {
  const std::lock_guard<std::mutex> lock(mu_);
  ensure_locked(k);
  return encoder_.property(k);
}

sat::Lit SharedTape::bad(int frame) {
  const std::lock_guard<std::mutex> lock(mu_);
  ensure_locked(frame);
  return encoder_.bad(frame);
}

std::vector<sat::Lit> SharedTape::latch_lits(int frame) {
  const std::lock_guard<std::mutex> lock(mu_);
  ensure_locked(frame);
  return encoder_.latch_lits(frame);
}

ClauseTape::Mark SharedTape::mark_at(int k) {
  const std::lock_guard<std::mutex> lock(mu_);
  ensure_locked(k);
  return depth_marks_[static_cast<std::size_t>(k)];
}

std::uint64_t SharedTape::frames_encoded() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return encoder_.stats().frames_encoded;
}

EncodeStats SharedTape::stats_at(int k) {
  const std::lock_guard<std::mutex> lock(mu_);
  ensure_locked(k);
  return depth_stats_[static_cast<std::size_t>(k)];
}

EncodeStats SharedTape::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return encoder_.stats();
}

}  // namespace refbmc::bmc
