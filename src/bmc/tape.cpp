#include "bmc/tape.hpp"

#include <algorithm>

#include "bmc/tape_codec.hpp"
#include "model/stats.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"

namespace refbmc::bmc {

void ClauseTape::scan(
    std::size_t op_begin, std::size_t op_end,
    const std::function<void(std::size_t)>& on_vars,
    const std::function<void(std::span<const sat::Lit>)>& on_clause) const {
  REFBMC_EXPECTS(op_begin <= op_end && op_end <= base_ops_ + ops_.size());
  std::size_t at = op_begin;

  // Frozen prefix: decode every segment the range touches.  The codec's
  // delta chain spans a whole segment, so a partially-wanted segment is
  // decoded in full and clipped — the price of cold storage, paid only
  // by late joiners (steady-state consumers read the raw tail).
  std::size_t seg_start = 0;
  for (const FrozenSegment& seg : frozen_) {
    const std::size_t seg_end = seg_start + seg.ops;
    if (at >= op_end) return;
    if (at < seg_end) {
      std::size_t op = seg_start;
      TapeCodec::for_each(
          seg.bytes,
          [&](std::size_t n) {
            const std::size_t lo = std::max(op, at);
            const std::size_t hi = std::min(op + n, op_end);
            if (on_vars && hi > lo) on_vars(hi - lo);
            op += n;
          },
          [&](std::span<const sat::Lit> lits) {
            if (on_clause && op >= at && op < op_end) on_clause(lits);
            ++op;
          });
      at = std::min(seg_end, op_end);
    }
    seg_start = seg_end;
  }
  if (at >= op_end) return;

  // Raw tail.  Literal offsets are not stored per op, so recover the
  // start offset by summing clause sizes up to `at` — a linear walk over
  // plain ints, negligible next to the clause copying that follows.
  REFBMC_ASSERT(at >= base_ops_);
  std::size_t local = at - base_ops_;
  const std::size_t local_end = op_end - base_ops_;
  std::size_t lit = 0;
  for (std::size_t i = 0; i < local; ++i)
    if (ops_[i] != kVarOp) lit += static_cast<std::size_t>(ops_[i]);
  std::size_t var_run = 0;
  while (local < local_end) {
    const std::int32_t op = ops_[local++];
    if (op == kVarOp) {
      ++var_run;
      continue;
    }
    if (var_run != 0) {
      if (on_vars) on_vars(var_run);
      var_run = 0;
    }
    if (on_clause)
      on_clause(std::span<const sat::Lit>(lits_.data() + lit,
                                          static_cast<std::size_t>(op)));
    lit += static_cast<std::size_t>(op);
  }
  if (var_run != 0 && on_vars) on_vars(var_run);
}

void ClauseTape::freeze_prefix(const Mark& upto) {
  REFBMC_EXPECTS_MSG(upto.ops >= base_ops_ &&
                         upto.ops <= base_ops_ + ops_.size(),
                     "freeze_prefix is monotone over the raw region");
  if (upto.ops == base_ops_) return;
  FrozenSegment seg;
  seg.ops = upto.ops - base_ops_;
  seg.lits = upto.lits - base_lits_;
  {
    TapeCodec::Writer w(seg.bytes);
    std::size_t lit = 0;
    for (std::size_t i = 0; i < seg.ops; ++i) {
      const std::int32_t op = ops_[i];
      if (op == kVarOp) {
        w.add_var();
        continue;
      }
      w.add_clause(std::span<const sat::Lit>(lits_.data() + lit,
                                             static_cast<std::size_t>(op)));
      lit += static_cast<std::size_t>(op);
    }
    REFBMC_ASSERT(lit == seg.lits);
    w.finish();
  }
  ops_.erase(ops_.begin(), ops_.begin() + static_cast<std::ptrdiff_t>(seg.ops));
  lits_.erase(lits_.begin(),
              lits_.begin() + static_cast<std::ptrdiff_t>(seg.lits));
  ops_.shrink_to_fit();
  lits_.shrink_to_fit();
  base_ops_ += seg.ops;
  base_lits_ += seg.lits;
  seg.bytes.shrink_to_fit();
  frozen_.push_back(std::move(seg));
}

void ClauseTape::replay(Cursor& cursor, const Mark& upto,
                        ClauseSink& out) const {
  std::vector<sat::Lit> clause;
  scan(cursor.op, upto.ops,
       [&](std::size_t n) {
         for (std::size_t i = 0; i < n; ++i)
           cursor.var_map.push_back(
               out.add_var(origin_[cursor.var_map.size()]));
       },
       [&](std::span<const sat::Lit> lits) {
         clause.clear();
         for (const sat::Lit l : lits) clause.push_back(cursor.translate(l));
         out.add_clause(clause);
       });
  cursor.op = upto.ops;
  cursor.lit = upto.lits;
}

void ClauseTape::export_clauses(const Mark& upto,
                                std::vector<std::vector<sat::Lit>>& out) const {
  export_clauses_range(Mark{}, upto, out);
}

void ClauseTape::export_clauses_range(
    const Mark& from, const Mark& upto,
    std::vector<std::vector<sat::Lit>>& out) const {
  out.clear();
  out.reserve(upto.clauses - from.clauses);
  scan(from.ops, upto.ops, {}, [&](std::span<const sat::Lit> lits) {
    out.emplace_back(lits.begin(), lits.end());
  });
}

SharedTape::SharedTape(const model::Netlist& net, std::size_t bad_index,
                       EncoderOptions opts, PreprocessOptions preprocess)
    : net_(net),
      bad_index_(bad_index),
      opts_(opts),
      preprocess_(preprocess),
      encoder_(net, tape_, bad_index, opts) {
  // Netlist-derived reserve heuristic: a frame creates roughly one tape
  // variable per input/latch/gate and one Tseitin clause triple per AND
  // plus the latch-transition binaries; strashing only shrinks these, so
  // the estimate is a safe upper bound for the common case and merely a
  // hint otherwise.
  const model::NetlistStats ns = model::analyze(net);
  const std::size_t vars_frame = ns.num_inputs + ns.num_latches + ns.num_ands + 2;
  const std::size_t clauses_frame = 3 * ns.num_ands + 2 * ns.num_latches + 4;
  est_ops_frame_ = vars_frame + clauses_frame;
  est_lits_frame_ = 3 * clauses_frame;
}

void SharedTape::recharge_locked() {
  const auto clause_list_bytes =
      [](const std::vector<std::vector<sat::Lit>>& cs) {
        std::size_t n = cs.capacity() * sizeof(std::vector<sat::Lit>);
        for (const auto& c : cs) n += c.capacity() * sizeof(sat::Lit);
        return n;
      };
  std::size_t caches = 0;
  for (const SimplifiedDepth& s : simplified_)
    caches += clause_list_bytes(s.result.clauses) + s.cold.capacity();
  for (const IncDelta& d : inc_deltas_) {
    caches += clause_list_bytes(d.clauses) + d.cold.capacity();
    caches += d.resurrected.capacity() * sizeof(sat::Var) +
              d.kept_new.capacity();
  }
  cache_bytes_ = caches;
  const std::size_t now = tape_.memory_bytes() + cache_bytes_;
  if (mem_ != nullptr) {
    if (now >= last_charged_)
      mem_->add(now - last_charged_);
    else
      mem_->sub(last_charged_ - now);
  }
  last_charged_ = now;
}

void SharedTape::ensure_locked(int k) {
  REFBMC_EXPECTS(k >= 0);
  const std::uint64_t before = encoder_.stats().frames_encoded;
  while (encoder_.encoded_depth() < k) {
    const int frame = encoder_.encoded_depth() + 1;
    tape_.reserve_additional(est_ops_frame_, est_lits_frame_);
    // The frame is encoded exactly once race-wide (this is the
    // encode-once guarantee), so the span lands on whichever entrant's
    // track got here first — one tape_encode span per frame, total.
    obs::TraceSpan span(obs::EventKind::TapeEncode, frame);
    encoder_.encode_to(frame);
    span.set_value(static_cast<std::int64_t>(encoder_.stats().clauses_emitted));
    depth_marks_.push_back(tape_.mark());
    depth_stats_.push_back(encoder_.stats());
    // Cold storage: the depth just superseded is fully replayable from
    // its mark, so its raw words can be frozen; the newest depth stays
    // raw (it is what steady-state consumers are about to read).
    if (cold_ && depth_marks_.size() >= 2)
      tape_.freeze_prefix(depth_marks_[depth_marks_.size() - 2]);
  }
  if (encoder_.stats().frames_encoded != before) recharge_locked();
}

void SharedTape::ensure_depth(int k) {
  const std::lock_guard<std::mutex> lock(mu_);
  ensure_locked(k);
}

void SharedTape::replay_to(int k, ClauseTape::Cursor& cursor,
                           ClauseSink& out) {
  const std::lock_guard<std::mutex> lock(mu_);
  ensure_locked(k);
  tape_.replay(cursor, depth_marks_[static_cast<std::size_t>(k)], out);
}

// Frozen set: everything whose tape variable must survive to the
// solver.  Inputs and latches at every frame (trace extraction and
// cross-depth identity), the auxiliary constant (frame -1), and the
// per-frame property/bad literals (the scratch session asserts or
// assumes them; the prefix-disjunction chain under BadMode::Any rides
// on the bad literals it references).  Incremental activation guards
// never appear here: they are solver-local variables created OUTSIDE
// the tape, so the pass cannot touch them by construction — the guard
// clause's tape-side anchor is the property literal, which is frozen.
void SharedTape::build_frozen_locked(int k, std::size_t num_vars,
                                     std::vector<char>& frozen) const {
  const auto& origin = tape_.origin();
  for (std::size_t v = 0; v < num_vars; ++v) {
    const VarOrigin& o = origin[v];
    if (o.frame < 0) {
      frozen[v] = 1;
      continue;
    }
    const model::NodeKind kind = net_.kind(o.node);
    if (kind == model::NodeKind::Input || kind == model::NodeKind::Latch)
      frozen[v] = 1;
  }
  for (int j = 0; j <= k; ++j) {
    frozen[static_cast<std::size_t>(encoder_.property(j).var())] = 1;
    frozen[static_cast<std::size_t>(encoder_.bad(j).var())] = 1;
  }
}

void SharedTape::ensure_simplified_locked(int k) {
  ensure_locked(k);
  const auto idx = static_cast<std::size_t>(k);
  if (simplified_.size() <= idx) simplified_.resize(idx + 1);
  if (simplified_[idx].ready) return;

  const ClauseTape::Mark& mark = depth_marks_[idx];
  obs::TraceSpan span(obs::EventKind::SpanPreprocess, k);

  std::vector<std::vector<sat::Lit>> clauses;
  tape_.export_clauses(mark, clauses);

  std::vector<char> frozen(mark.vars, 0);
  build_frozen_locked(k, mark.vars, frozen);

  const TapePreprocessor pp(preprocess_);
  SimplifiedDepth& s = simplified_[idx];
  s.result = pp.run(static_cast<int>(mark.vars), clauses, frozen);
  s.clause_count = s.result.clauses.size();
  if (cold_) {
    // The clause list is consumed through replay only; keep it encoded
    // and decode on demand (the remapper stays hot — model completion
    // needs it structurally).
    s.cold = TapeCodec::encode_clauses(s.result.clauses);
    s.cold.shrink_to_fit();
    std::vector<std::vector<sat::Lit>>().swap(s.result.clauses);
    s.is_cold = true;
  }
  s.ready = true;
  span.set_value(static_cast<std::int64_t>(s.clause_count));
  recharge_locked();
}

void SharedTape::ensure_inc_delta_locked(int f) {
  ensure_locked(f);
  const auto idx = static_cast<std::size_t>(f);
  if (inc_deltas_.size() <= idx) inc_deltas_.resize(idx + 1);
  if (inc_deltas_[idx].ready) return;
  // The cumulative state (remapper, root facts) only makes sense built
  // strictly in depth order; consumers replay deltas in order anyway.
  if (f > 0) ensure_inc_delta_locked(f - 1);

  const ClauseTape::Mark prev =
      f > 0 ? depth_marks_[idx - 1] : ClauseTape::Mark{};
  const ClauseTape::Mark& mark = depth_marks_[idx];
  obs::TraceSpan span(obs::EventKind::SpanPreprocess, f);

  IncDelta& d = inc_deltas_[idx];
  inc_remap_.grow(static_cast<int>(mark.vars));
  inc_assigned_.resize(mark.vars, sat::l_Undef);

  std::vector<std::vector<sat::Lit>> input;
  tape_.export_clauses_range(prev, mark, input);

  // Transitive resurrection: the delta may reference variables BVE
  // eliminated at an earlier depth (global strashing aliases later
  // frames onto earlier gate variables).  Re-admit each one and re-add
  // its removed-clause kit ahead of the delta; kit clauses may
  // themselves reference other eliminated variables, so chase to
  // fixpoint.  Kit clauses join the simplifier input — seeded root
  // facts and the delta get to simplify them like anything else.
  std::vector<std::vector<sat::Lit>> kit;
  const auto scan_clause = [&](const std::vector<sat::Lit>& c) {
    for (const sat::Lit l : c) {
      const sat::Var v = l.var();
      if (inc_remap_.is_kept(v)) continue;
      VarRemapper::Witness w = inc_remap_.resurrect(v);
      d.resurrected.push_back(v);
      for (auto& kc : w.clauses) kit.push_back(std::move(kc));
      for (auto& kc : w.removed) kit.push_back(std::move(kc));
    }
  };
  for (const auto& c : input) scan_clause(c);
  for (std::size_t i = 0; i < kit.size(); ++i) {
    const std::vector<sat::Lit> c = kit[i];  // copy: kit may grow
    scan_clause(c);
  }
  if (!kit.empty())
    input.insert(input.begin(), kit.begin(), kit.end());

  // Frozen: the scratch recipe for the new variables, plus EVERY
  // variable of earlier depths — cross-depth identity is what makes
  // the persistent solver's clauses stay meaningful, so only this
  // delta's fresh gate variables are elimination candidates.
  std::vector<char> frozen(mark.vars, 0);
  build_frozen_locked(f, mark.vars, frozen);
  for (std::size_t v = 0; v < prev.vars; ++v) frozen[v] = 1;

  const TapePreprocessor pp(preprocess_);
  SimplifyResult result =
      pp.run(static_cast<int>(mark.vars), input, frozen, &inc_assigned_);

  // Fold the delta's outcome into the cumulative state.  On fallback
  // (contradiction — degenerate input) the raw delta is cached and no
  // new eliminations or facts are recorded; the resurrections above
  // stand either way (the raw delta references those variables too).
  if (!result.fell_back) {
    for (const auto& w : result.remap.witnesses())
      inc_remap_.eliminate(w.lit, w.clauses, w.removed);
  }
  inc_assigned_ = std::move(result.assigned);
  d.kept_new.assign(mark.vars - prev.vars, 1);
  for (std::size_t v = prev.vars; v < mark.vars; ++v) {
    if (!inc_remap_.is_kept(static_cast<sat::Var>(v)))
      d.kept_new[v - prev.vars] = 0;
  }
  d.clauses = std::move(result.clauses);
  d.stats = result.stats;
  d.remap_after = inc_remap_;
  const std::size_t clause_count = d.clauses.size();
  if (cold_) {
    d.cold = TapeCodec::encode_clauses(d.clauses);
    d.cold.shrink_to_fit();
    std::vector<std::vector<sat::Lit>>().swap(d.clauses);
    d.is_cold = true;
  }
  d.ready = true;
  span.set_value(static_cast<std::int64_t>(clause_count));
  recharge_locked();
}

void SharedTape::replay_simplified_delta(int f, ClauseTape::Cursor& cursor,
                                         ClauseSink& out) {
  const std::lock_guard<std::mutex> lock(mu_);
  ensure_inc_delta_locked(f);
  const auto idx = static_cast<std::size_t>(f);
  const ClauseTape::Mark prev =
      f > 0 ? depth_marks_[idx - 1] : ClauseTape::Mark{};
  const ClauseTape::Mark& mark = depth_marks_[idx];
  REFBMC_EXPECTS_MSG(cursor.var_map.size() == prev.vars,
                     "delta replay requires a cursor parked at the "
                     "previous depth's mark");
  const IncDelta& d = inc_deltas_[idx];
  const auto& origin = tape_.origin();

  // Resurrected variables first (the cached delta stream references
  // them), then this delta's surviving variables in tape order —
  // identical creation order for every incremental consumer.
  for (const sat::Var v : d.resurrected) {
    auto& slot = cursor.var_map[static_cast<std::size_t>(v)];
    REFBMC_ASSERT(slot == sat::kVarUndef);
    slot = out.add_var(origin[static_cast<std::size_t>(v)]);
  }
  for (std::size_t v = prev.vars; v < mark.vars; ++v) {
    cursor.var_map.push_back(d.kept_new[v - prev.vars] != 0
                                 ? out.add_var(origin[v])
                                 : sat::kVarUndef);
  }
  std::vector<sat::Lit> clause;
  const auto emit = [&](std::span<const sat::Lit> c) {
    clause.clear();
    for (const sat::Lit l : c) clause.push_back(cursor.translate(l));
    out.add_clause(clause);
  };
  if (d.is_cold) {
    TapeCodec::decode_clauses(d.cold, emit);
  } else {
    for (const auto& c : d.clauses) emit(c);
  }
  // Park at the depth mark, exactly like the scratch simplified replay.
  cursor.op = mark.ops;
  cursor.lit = mark.lits;
}

void SharedTape::replay_simplified_to(int k, ClauseTape::Cursor& cursor,
                                      ClauseSink& out) {
  const std::lock_guard<std::mutex> lock(mu_);
  REFBMC_EXPECTS_MSG(cursor.op == 0 && cursor.var_map.empty(),
                     "simplified replay requires a fresh consumer");
  ensure_simplified_locked(k);
  const ClauseTape::Mark& mark = depth_marks_[static_cast<std::size_t>(k)];
  const SimplifiedDepth& s = simplified_[static_cast<std::size_t>(k)];
  const SimplifyResult& res = s.result;

  const auto& origin = tape_.origin();
  for (std::size_t v = 0; v < mark.vars; ++v) {
    cursor.var_map.push_back(res.remap.is_kept(static_cast<sat::Var>(v))
                                 ? out.add_var(origin[v])
                                 : sat::kVarUndef);
  }
  std::vector<sat::Lit> clause;
  const auto emit = [&](std::span<const sat::Lit> c) {
    clause.clear();
    for (const sat::Lit l : c) clause.push_back(cursor.translate(l));
    out.add_clause(clause);
  };
  if (s.is_cold) {
    TapeCodec::decode_clauses(s.cold, emit);
  } else {
    for (const auto& c : res.clauses) emit(c);
  }
  // Park the cursor at the depth mark: translate() keeps working for
  // property/bad/latch literals over kept (frozen) variables.
  cursor.op = mark.ops;
  cursor.lit = mark.lits;
}

PreprocessStats SharedTape::preprocess_stats_at(int k) {
  const std::lock_guard<std::mutex> lock(mu_);
  ensure_simplified_locked(k);
  return simplified_[static_cast<std::size_t>(k)].result.stats;
}

std::size_t SharedTape::simplified_clauses_at(int k) {
  const std::lock_guard<std::mutex> lock(mu_);
  ensure_simplified_locked(k);
  return simplified_[static_cast<std::size_t>(k)].clause_count;
}

VarRemapper SharedTape::remapper_at(int k) {
  const std::lock_guard<std::mutex> lock(mu_);
  ensure_simplified_locked(k);
  return simplified_[static_cast<std::size_t>(k)].result.remap;
}

PreprocessStats SharedTape::incremental_preprocess_stats_at(int k) {
  const std::lock_guard<std::mutex> lock(mu_);
  ensure_inc_delta_locked(k);
  return inc_deltas_[static_cast<std::size_t>(k)].stats;
}

VarRemapper SharedTape::incremental_remapper_at(int k) {
  const std::lock_guard<std::mutex> lock(mu_);
  ensure_inc_delta_locked(k);
  return inc_deltas_[static_cast<std::size_t>(k)].remap_after;
}

sat::Lit SharedTape::property(int k) {
  const std::lock_guard<std::mutex> lock(mu_);
  ensure_locked(k);
  return encoder_.property(k);
}

sat::Lit SharedTape::bad(int frame) {
  const std::lock_guard<std::mutex> lock(mu_);
  ensure_locked(frame);
  return encoder_.bad(frame);
}

std::vector<sat::Lit> SharedTape::latch_lits(int frame) {
  const std::lock_guard<std::mutex> lock(mu_);
  ensure_locked(frame);
  return encoder_.latch_lits(frame);
}

ClauseTape::Mark SharedTape::mark_at(int k) {
  const std::lock_guard<std::mutex> lock(mu_);
  ensure_locked(k);
  return depth_marks_[static_cast<std::size_t>(k)];
}

std::uint64_t SharedTape::frames_encoded() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return encoder_.stats().frames_encoded;
}

EncodeStats SharedTape::stats_at(int k) {
  const std::lock_guard<std::mutex> lock(mu_);
  ensure_locked(k);
  return depth_stats_[static_cast<std::size_t>(k)];
}

EncodeStats SharedTape::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return encoder_.stats();
}

void SharedTape::set_cold_storage(bool on) {
  const std::lock_guard<std::mutex> lock(mu_);
  cold_ = on;
}

bool SharedTape::cold_storage() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return cold_;
}

void SharedTape::set_mem_tracker(MemTracker* tracker) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (mem_ != nullptr) mem_->sub(last_charged_);
  mem_ = tracker;
  if (mem_ != nullptr) mem_->add(last_charged_);
}

std::size_t SharedTape::memory_bytes() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return tape_.memory_bytes() + cache_bytes_;
}

std::size_t SharedTape::tape_raw_bytes() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return tape_.raw_bytes();
}

std::size_t SharedTape::tape_encoded_bytes() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return tape_.encoded_bytes();
}

}  // namespace refbmc::bmc
