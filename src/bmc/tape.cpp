#include "bmc/tape.hpp"

#include "obs/trace.hpp"
#include "util/assert.hpp"

namespace refbmc::bmc {

void ClauseTape::replay(Cursor& cursor, const Mark& upto,
                        ClauseSink& out) const {
  REFBMC_EXPECTS(upto.ops <= ops_.size());
  std::vector<sat::Lit> clause;
  while (cursor.op < upto.ops) {
    const std::int32_t op = ops_[cursor.op++];
    if (op == kVarOp) {
      cursor.var_map.push_back(out.add_var(origin_[cursor.var_map.size()]));
      continue;
    }
    clause.clear();
    for (std::int32_t i = 0; i < op; ++i)
      clause.push_back(cursor.translate(lits_[cursor.lit++]));
    out.add_clause(clause);
  }
}

SharedTape::SharedTape(const model::Netlist& net, std::size_t bad_index,
                       EncoderOptions opts)
    : net_(net),
      bad_index_(bad_index),
      opts_(opts),
      encoder_(net, tape_, bad_index, opts) {}

void SharedTape::ensure_locked(int k) {
  REFBMC_EXPECTS(k >= 0);
  while (encoder_.encoded_depth() < k) {
    const int frame = encoder_.encoded_depth() + 1;
    // The frame is encoded exactly once race-wide (this is the
    // encode-once guarantee), so the span lands on whichever entrant's
    // track got here first — one tape_encode span per frame, total.
    obs::TraceSpan span(obs::EventKind::TapeEncode, frame);
    encoder_.encode_to(frame);
    span.set_value(static_cast<std::int64_t>(encoder_.stats().clauses_emitted));
    depth_marks_.push_back(tape_.mark());
    depth_stats_.push_back(encoder_.stats());
  }
}

void SharedTape::ensure_depth(int k) {
  const std::lock_guard<std::mutex> lock(mu_);
  ensure_locked(k);
}

void SharedTape::replay_to(int k, ClauseTape::Cursor& cursor,
                           ClauseSink& out) {
  const std::lock_guard<std::mutex> lock(mu_);
  ensure_locked(k);
  tape_.replay(cursor, depth_marks_[static_cast<std::size_t>(k)], out);
}

sat::Lit SharedTape::property(int k) {
  const std::lock_guard<std::mutex> lock(mu_);
  ensure_locked(k);
  return encoder_.property(k);
}

sat::Lit SharedTape::bad(int frame) {
  const std::lock_guard<std::mutex> lock(mu_);
  ensure_locked(frame);
  return encoder_.bad(frame);
}

std::vector<sat::Lit> SharedTape::latch_lits(int frame) {
  const std::lock_guard<std::mutex> lock(mu_);
  ensure_locked(frame);
  return encoder_.latch_lits(frame);
}

ClauseTape::Mark SharedTape::mark_at(int k) {
  const std::lock_guard<std::mutex> lock(mu_);
  ensure_locked(k);
  return depth_marks_[static_cast<std::size_t>(k)];
}

std::uint64_t SharedTape::frames_encoded() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return encoder_.stats().frames_encoded;
}

EncodeStats SharedTape::stats_at(int k) {
  const std::lock_guard<std::mutex> lock(mu_);
  ensure_locked(k);
  return depth_stats_[static_cast<std::size_t>(k)];
}

EncodeStats SharedTape::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return encoder_.stats();
}

}  // namespace refbmc::bmc
