#include "bmc/tape_codec.hpp"

#include "util/assert.hpp"

namespace refbmc::bmc {

void TapeCodec::put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t TapeCodec::get_varint(const std::uint8_t*& p,
                                    const std::uint8_t* end) {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    REFBMC_EXPECTS_MSG(p < end && shift < 64, "truncated varint");
    const std::uint8_t byte = *p++;
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
  }
}

void TapeCodec::Writer::finish() {
  if (pending_vars_ == 0) return;
  put_varint(out_, 0);  // var-run marker
  put_varint(out_, pending_vars_);
  pending_vars_ = 0;
}

void TapeCodec::Writer::add_clause(std::span<const sat::Lit> lits) {
  REFBMC_EXPECTS_MSG(!lits.empty(), "codec cannot frame an empty clause");
  finish();
  put_varint(out_, lits.size());
  const auto first = static_cast<std::uint32_t>(lits[0].index());
  put_varint(out_, zigzag(static_cast<std::int64_t>(first) -
                          static_cast<std::int64_t>(prev_first_)));
  for (std::size_t i = 1; i < lits.size(); ++i)
    put_varint(out_,
               zigzag(static_cast<std::int64_t>(
                          static_cast<std::uint32_t>(lits[i].index())) -
                      static_cast<std::int64_t>(first)));
  prev_first_ = first;
}

void TapeCodec::for_each(
    std::span<const std::uint8_t> bytes,
    const std::function<void(std::size_t)>& on_vars,
    const std::function<void(std::span<const sat::Lit>)>& on_clause) {
  const std::uint8_t* p = bytes.data();
  const std::uint8_t* const end = p + bytes.size();
  std::uint32_t prev_first = 0;
  std::vector<sat::Lit> clause;
  while (p < end) {
    const std::uint64_t u = get_varint(p, end);
    if (u == 0) {
      const std::uint64_t run = get_varint(p, end);
      if (on_vars) on_vars(static_cast<std::size_t>(run));
      continue;
    }
    clause.clear();
    clause.reserve(static_cast<std::size_t>(u));
    const auto first = static_cast<std::uint32_t>(
        static_cast<std::int64_t>(prev_first) +
        unzigzag(get_varint(p, end)));
    clause.push_back(
        sat::Lit::make(static_cast<sat::Var>(first >> 1), (first & 1u) != 0));
    for (std::uint64_t i = 1; i < u; ++i) {
      const auto raw = static_cast<std::uint32_t>(
          static_cast<std::int64_t>(first) + unzigzag(get_varint(p, end)));
      clause.push_back(
          sat::Lit::make(static_cast<sat::Var>(raw >> 1), (raw & 1u) != 0));
    }
    prev_first = first;
    if (on_clause) on_clause(clause);
  }
}

TapeCodec::EncodedRange TapeCodec::encode(const ClauseTape& tape,
                                          const ClauseTape::Mark& from,
                                          const ClauseTape::Mark& upto) {
  EncodedRange enc{from, upto, {}};
  Writer w(enc.bytes);
  tape.scan(from.ops, upto.ops,
            [&](std::size_t n) { w.add_vars(n); },
            [&](std::span<const sat::Lit> lits) { w.add_clause(lits); });
  w.finish();
  return enc;
}

void TapeCodec::decode(const EncodedRange& enc,
                       std::span<const VarOrigin> origin,
                       ClauseTape::Cursor& cursor, ClauseSink& out) {
  REFBMC_EXPECTS_MSG(cursor.var_map.size() == enc.from.vars,
                     "decode requires a cursor parked at the range start");
  std::vector<sat::Lit> clause;
  for_each(
      enc.bytes,
      [&](std::size_t n) {
        for (std::size_t i = 0; i < n; ++i)
          cursor.var_map.push_back(out.add_var(origin[cursor.var_map.size()]));
      },
      [&](std::span<const sat::Lit> lits) {
        clause.clear();
        for (const sat::Lit l : lits) clause.push_back(cursor.translate(l));
        out.add_clause(clause);
      });
  cursor.op = enc.upto.ops;
  cursor.lit = enc.upto.lits;
}

std::vector<std::uint8_t> TapeCodec::encode_clauses(
    const std::vector<std::vector<sat::Lit>>& clauses) {
  std::vector<std::uint8_t> bytes;
  Writer w(bytes);
  for (const auto& c : clauses) w.add_clause(c);
  w.finish();
  return bytes;
}

void TapeCodec::decode_clauses(
    std::span<const std::uint8_t> bytes,
    const std::function<void(std::span<const sat::Lit>)>& on_clause) {
  for_each(bytes, {}, on_clause);
}

}  // namespace refbmc::bmc
