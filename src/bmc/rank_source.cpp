#include "bmc/rank_source.hpp"

#include <cmath>
#include <unordered_set>

namespace refbmc::bmc {

void SharedRankSource::publish(const std::vector<VarOrigin>& origin,
                               const std::vector<sat::Var>& core_vars,
                               int k) {
  // Project outside the lock, through the same discipline the
  // engine-private accumulation uses (ranking.cpp).
  const std::unordered_set<model::NodeId> touched =
      core_nodes(origin, core_vars);

  const std::lock_guard<std::mutex> lock(mu_);
  publishes_.fetch_add(1, std::memory_order_release);
  bool changed = false;
  switch (weighting_) {
    case CoreWeighting::Linear:
      for (const model::NodeId n : touched)
        scores_[n] += static_cast<double>(k);
      changed = !touched.empty() && k != 0;
      break;
    case CoreWeighting::Uniform:
      for (const model::NodeId n : touched) scores_[n] += 1.0;
      changed = !touched.empty();
      break;
    case CoreWeighting::LastOnly:
      // Depth-keyed, not arrival-keyed: keep the union of cores
      // published for the deepest depth seen so far.
      if (k > deepest_) {
        changed = !scores_.empty() || !touched.empty();
        scores_.clear();
        deepest_ = k;
        for (const model::NodeId n : touched) scores_[n] = 1.0;
      } else if (k == deepest_) {
        for (const model::NodeId n : touched)
          changed |= scores_.emplace(n, 1.0).second;
      }
      break;
    case CoreWeighting::ExpDecay:
      // Depth-keyed exponential recency: w(k) = 2^k (exact in double).
      for (const model::NodeId n : touched)
        scores_[n] += std::ldexp(1.0, k);
      changed = !touched.empty();
      break;
  }
  if (changed) epoch_.fetch_add(1, std::memory_order_release);
  REFBMC_TRACE_EVENT(
      obs::EventKind::RankPublish, k,
      static_cast<std::int64_t>(epoch_.load(std::memory_order_relaxed)));
}

void SharedRankSource::seed(const CoreRanking& ranking) {
  REFBMC_EXPECTS_MSG(ranking.weighting() == weighting_,
                     "rank seed weighting does not match the source's");
  const std::lock_guard<std::mutex> lock(mu_);
  REFBMC_EXPECTS_MSG(scores_.empty() && deepest_ == -1,
                     "rank seed must precede every publish");
  scores_ = ranking.scores();
  if (!scores_.empty()) epoch_.fetch_add(1, std::memory_order_release);
}

std::vector<double> SharedRankSource::project(
    const std::vector<VarOrigin>& origin, std::uint64_t* epoch_out) const {
  // Copy the node-axis scores (small) under the lock — with the epoch,
  // read under the same lock publishes take, so it is exactly the one
  // this score state corresponds to — and project onto the CNF axis
  // (origin.size() lookups, easily orders of magnitude larger) outside
  // it, so a refreshing entrant never stalls its rivals' publishes.
  std::unordered_map<model::NodeId, double> scores;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (epoch_out != nullptr)
      *epoch_out = epoch_.load(std::memory_order_relaxed);
    scores = scores_;
  }
  return CoreRanking(weighting_, std::move(scores), 0).project(origin);
}

CoreRanking SharedRankSource::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return CoreRanking(weighting_, scores_,
                     publishes_.load(std::memory_order_relaxed));
}

}  // namespace refbmc::bmc
