#include "bmc/encoder.hpp"

#include <algorithm>
#include <array>
#include <chrono>

#include "util/assert.hpp"

namespace refbmc::bmc {

using model::NodeId;
using model::NodeKind;
using model::Signal;
using sat::Lit;

FrameEncoder::FrameEncoder(const model::Netlist& net, ClauseSink& sink,
                           std::size_t bad_index, EncoderOptions opts)
    : net_(net), sink_(sink), opts_(opts) {
  REFBMC_EXPECTS_MSG(bad_index < net.bad_properties().size(),
                     "model has no such bad property");
  bad_ = net.bad_properties()[bad_index].signal;
  cone_ = net.cone_of_influence({bad_});
  in_cone_.assign(net.num_nodes(), 0);
  for (const NodeId id : cone_) in_cone_[id] = 1;

  // Auxiliary constant-false variable, constrained by a unit clause.
  const sat::Var cv = sink_.add_var(VarOrigin{model::kConstNode, -1});
  ++stats_.vars_emitted;
  false_lit_ = Lit::make(cv);
  emit(std::array<Lit, 1>{~false_lit_});
}

sat::Lit FrameEncoder::fresh(NodeId node, int frame) {
  ++stats_.vars_emitted;
  return Lit::make(sink_.add_var(VarOrigin{node, frame}));
}

void FrameEncoder::emit(std::span<const Lit> lits) {
  ++stats_.clauses_emitted;
  sink_.add_clause(lits);
}

sat::Lit FrameEncoder::lit_of(Signal s, int frame) const {
  if (s.is_const()) return s.negated() ? ~false_lit_ : false_lit_;
  REFBMC_EXPECTS(frame >= 0 && frame <= encoded_depth_);
  const Lit l = val(s.node(), frame);
  REFBMC_ASSERT_MSG(!l.is_undef(), "signal outside the cone of influence");
  return s.negated() ? ~l : l;
}

sat::Lit FrameEncoder::and_lit(Lit a, Lit b, const VarOrigin& origin) {
  if (opts_.simplify) {
    // Timed per gate: folding + the strash probe are the separable
    // simplification work (EncodeStats::simplify_ns).  The clock pair
    // costs tens of ns against a strash probe of the same order, so the
    // reading is coarse — but encoding is a sliver of total runtime and
    // the per-depth *split* (simplify vs emission) is what DepthStats
    // needs.  Emission below is excluded.
    const auto t0 = std::chrono::steady_clock::now();
    const auto charge = [&] {
      stats_.simplify_ns += static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count());
    };
    const Lit f = false_lit_, t = ~false_lit_;
    Lit folded = sat::kLitUndef;
    if (a == f || b == f || a == ~b) {
      folded = f;
    } else if (a == t) {
      folded = b;
    } else if (b == t || a == b) {
      folded = a;
    }
    if (!folded.is_undef()) {
      ++stats_.vars_removed;
      stats_.clauses_removed += 3;
      charge();
      return folded;
    }
    const std::uint32_t lo =
        static_cast<std::uint32_t>(std::min(a.index(), b.index()));
    const std::uint32_t hi =
        static_cast<std::uint32_t>(std::max(a.index(), b.index()));
    const std::uint64_t key = (static_cast<std::uint64_t>(lo) << 32) | hi;
    const auto it = strash_.find(key);
    if (it != strash_.end()) {
      ++stats_.vars_removed;
      stats_.clauses_removed += 3;
      charge();
      return it->second;
    }
    charge();
    const Lit out = fresh(origin.node, origin.frame);
    emit(std::array<Lit, 2>{~out, a});
    emit(std::array<Lit, 2>{~out, b});
    emit(std::array<Lit, 3>{out, ~a, ~b});
    strash_.emplace(key, out);
    return out;
  }
  const Lit out = fresh(origin.node, origin.frame);
  emit(std::array<Lit, 2>{~out, a});
  emit(std::array<Lit, 2>{~out, b});
  emit(std::array<Lit, 3>{out, ~a, ~b});
  return out;
}

void FrameEncoder::encode_frame(int f) {
  val_.resize(static_cast<std::size_t>(f + 1) * net_.num_nodes(),
              sat::kLitUndef);
  // cone_ is sorted by NodeId and fanins precede AND nodes, so ascending
  // order is a topological sweep of the frame; latch next-state functions
  // only reference frame f-1, which is complete.
  for (const NodeId id : cone_) {
    switch (net_.kind(id)) {
      case NodeKind::Const:
        val(id, f) = false_lit_;
        break;
      case NodeKind::Input:
        val(id, f) = fresh(id, f);
        break;
      case NodeKind::Latch: {
        if (f == 0) {
          const sat::lbool init = net_.latch_init(id);
          if (opts_.constrain_init && !init.is_undef()) {
            if (opts_.simplify) {
              // Constant propagation: the initial value IS the literal.
              val(id, 0) = init.is_true() ? ~false_lit_ : false_lit_;
              ++stats_.vars_removed;
              ++stats_.clauses_removed;
            } else {
              const Lit l = fresh(id, 0);
              val(id, 0) = l;
              emit(std::array<Lit, 1>{init.is_true() ? l : ~l});
            }
          } else {
            val(id, 0) = fresh(id, 0);  // unconstrained initial value
          }
        } else {
          const Lit prev_next = lit_of(net_.latch_next(id), f - 1);
          if (opts_.simplify) {
            // Latch aliasing: no coupling clauses, no variable.
            val(id, f) = prev_next;
            ++stats_.vars_removed;
            stats_.clauses_removed += 2;
          } else {
            const Lit cur = fresh(id, f);
            val(id, f) = cur;
            emit(std::array<Lit, 2>{~cur, prev_next});
            emit(std::array<Lit, 2>{cur, ~prev_next});
          }
        }
        break;
      }
      case NodeKind::And: {
        const model::Node& n = net_.node(id);
        const Lit a = lit_of(n.fanin0, f);
        const Lit b = lit_of(n.fanin1, f);
        val(id, f) = and_lit(a, b, VarOrigin{id, f});
        break;
      }
    }
  }

  if (opts_.mode == BadMode::Any) {
    // Prefix disjunction d_f ↔ d_{f-1} ∨ bad_f, via the AND machinery:
    // d = ¬(¬d_{f-1} ∧ ¬bad_f).  Monotone in f, so it lives in the same
    // append-only stream as the frames.
    const Lit b = lit_of(bad_, f);
    any_.push_back(
        f == 0 ? b
               : ~and_lit(~any_.back(), ~b,
                          VarOrigin{model::kConstNode, -2}));
  }
}

void FrameEncoder::encode_to(int k) {
  REFBMC_EXPECTS(k >= 0);
  while (encoded_depth_ < k) {
    const auto t0 = std::chrono::steady_clock::now();
    encode_frame(++encoded_depth_);
    stats_.encode_ns += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    ++stats_.frames_encoded;
  }
}

sat::Lit FrameEncoder::property(int k) const {
  REFBMC_EXPECTS(k >= 0 && k <= encoded_depth_);
  if (opts_.mode == BadMode::Any)
    return any_[static_cast<std::size_t>(k)];
  return lit_of(bad_, k);
}

std::vector<sat::Lit> FrameEncoder::latch_lits(int frame) const {
  std::vector<Lit> out;
  for (const NodeId id : net_.latches())
    if (in_cone_[id]) out.push_back(lit_of(model::Signal::make(id), frame));
  return out;
}

namespace {

BmcInstance encode_frames(const model::Netlist& net, std::size_t bad_index,
                          int k, EncoderOptions opts, bool assert_property) {
  REFBMC_EXPECTS(k >= 0);
  BmcInstance inst;
  inst.depth = k;
  InstanceSink sink(inst);
  FrameEncoder enc(net, sink, bad_index, opts);
  enc.encode_to(k);

  const int frames = k + 1;
  inst.bad_frames.reserve(static_cast<std::size_t>(frames));
  inst.latch_frames.reserve(static_cast<std::size_t>(frames));
  for (int f = 0; f < frames; ++f) {
    inst.bad_frames.push_back(enc.bad(f));
    inst.latch_frames.push_back(enc.latch_lits(f));
  }
  if (assert_property) {
    inst.bad_lit = enc.property(k);
    inst.cnf.add_clause({inst.bad_lit});
  }
  inst.encode = enc.stats();
  return inst;
}

}  // namespace

BmcInstance encode_full(const model::Netlist& net, std::size_t bad_index,
                        int k, EncoderOptions opts) {
  return encode_frames(net, bad_index, k, opts, /*assert_property=*/true);
}

BmcInstance encode_path(const model::Netlist& net, std::size_t bad_index,
                        int k, EncoderOptions opts) {
  return encode_frames(net, bad_index, k, opts, /*assert_property=*/false);
}

}  // namespace refbmc::bmc
