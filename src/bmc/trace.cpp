#include "bmc/trace.hpp"

#include <sstream>
#include <unordered_map>

#include "sim/simulator.hpp"
#include "util/assert.hpp"

namespace refbmc::bmc {

using model::NodeId;

std::string Trace::to_string(const model::Netlist& net) const {
  std::ostringstream os;
  os << "counter-example of length " << depth << " (bad at frame "
     << bad_frame << ")\n";
  const auto& latches = net.latches();
  os << "  init:";
  for (std::size_t i = 0; i < latches.size(); ++i) {
    const std::string& nm = net.name(latches[i]);
    os << ' ' << (nm.empty() ? "l" + std::to_string(i) : nm) << '='
       << (initial_latches[i] ? '1' : '0');
  }
  os << '\n';
  const auto& ins = net.inputs();
  for (std::size_t f = 0; f < inputs.size(); ++f) {
    os << "  frame " << f << ':';
    for (std::size_t i = 0; i < ins.size(); ++i) {
      const std::string& nm = net.name(ins[i]);
      os << ' ' << (nm.empty() ? "i" + std::to_string(i) : nm) << '='
         << (inputs[f][i] ? '1' : '0');
    }
    os << '\n';
  }
  return os.str();
}

Trace extract_trace(const model::Netlist& net, int depth,
                    const std::vector<VarOrigin>& origin,
                    const sat::Solver& solver) {
  Trace trace;
  trace.depth = depth;
  trace.bad_frame = depth;  // where BadMode::Last asserts the violation

  // Index model (node, frame) → CNF var from the origin map.
  std::unordered_map<std::uint64_t, sat::Var> var_at;
  var_at.reserve(origin.size());
  for (std::size_t v = 0; v < origin.size(); ++v) {
    const VarOrigin& o = origin[v];
    if (o.frame < 0) continue;
    var_at[(static_cast<std::uint64_t>(o.node) << 20) |
           static_cast<std::uint64_t>(o.frame)] = static_cast<sat::Var>(v);
  }
  const auto model_bit = [&](NodeId node, int frame, bool def) {
    const auto it = var_at.find((static_cast<std::uint64_t>(node) << 20) |
                                static_cast<std::uint64_t>(frame));
    if (it == var_at.end()) return def;  // outside the cone: free choice
    const sat::lbool val = solver.model_value(it->second);
    return val.is_undef() ? def : val.is_true();
  };

  const auto& ins = net.inputs();
  trace.inputs.resize(static_cast<std::size_t>(depth) + 1);
  for (int f = 0; f <= depth; ++f) {
    auto& frame = trace.inputs[static_cast<std::size_t>(f)];
    frame.resize(ins.size());
    for (std::size_t i = 0; i < ins.size(); ++i)
      frame[i] = model_bit(ins[i], f, false);
  }

  const auto& latches = net.latches();
  trace.initial_latches.resize(latches.size());
  for (std::size_t i = 0; i < latches.size(); ++i) {
    const sat::lbool init = net.latch_init(latches[i]);
    trace.initial_latches[i] =
        init.is_undef() ? model_bit(latches[i], 0, false) : init.is_true();
  }
  return trace;
}

Trace minimize_trace(const model::Netlist& net, Trace trace,
                     std::size_t bad_index) {
  REFBMC_EXPECTS_MSG(validate_trace(net, trace, bad_index),
                     "cannot minimize a trace that does not replay");
  // Free initial latch values first (only those not fixed by the model).
  const auto& latches = net.latches();
  for (std::size_t i = 0; i < trace.initial_latches.size(); ++i) {
    if (!net.latch_init(latches[i]).is_undef()) continue;
    if (!trace.initial_latches[i]) continue;
    trace.initial_latches[i] = false;
    if (!validate_trace(net, trace, bad_index))
      trace.initial_latches[i] = true;
  }
  // Then every input bit, frame by frame.
  for (auto& frame : trace.inputs) {
    for (std::size_t i = 0; i < frame.size(); ++i) {
      if (!frame[i]) continue;
      frame[i] = false;
      if (!validate_trace(net, trace, bad_index)) frame[i] = true;
    }
  }
  return trace;
}

bool validate_trace(const model::Netlist& net, const Trace& trace,
                    std::size_t bad_index) {
  REFBMC_EXPECTS(bad_index < net.bad_properties().size());
  REFBMC_EXPECTS(trace.inputs.size() ==
                 static_cast<std::size_t>(trace.depth) + 1);
  const model::Signal bad = net.bad_properties()[bad_index].signal;

  sim::Simulator simulator(net);
  simulator.reset(trace.initial_latches);
  for (int f = 0; f <= trace.depth; ++f) {
    simulator.evaluate(trace.inputs[static_cast<std::size_t>(f)]);
    if (simulator.value(bad)) return true;
    if (f < trace.depth)
      simulator.step(trace.inputs[static_cast<std::size_t>(f)]);
  }
  return false;
}

}  // namespace refbmc::bmc
