#include "bmc/preprocess.hpp"

#include <algorithm>
#include <cstddef>

#include "obs/trace.hpp"
#include "util/assert.hpp"

namespace refbmc::bmc {

using sat::l_False;
using sat::l_True;
using sat::l_Undef;
using sat::lbool;
using sat::Lit;
using sat::Var;

void VarRemapper::grow(int num_vars) {
  REFBMC_EXPECTS(num_vars >= this->num_vars());
  kept_.resize(static_cast<std::size_t>(num_vars), 1);
}

VarRemapper::Witness VarRemapper::resurrect(Var v) {
  REFBMC_EXPECTS(kept_[static_cast<std::size_t>(v)] == 0);
  kept_[static_cast<std::size_t>(v)] = 1;
  // Newest-first scan: resurrections chase references out of fresh
  // deltas, which overwhelmingly hit recent eliminations.
  for (auto it = witnesses_.rbegin(); it != witnesses_.rend(); ++it) {
    if (it->lit.var() != v) continue;
    Witness w = std::move(*it);
    witnesses_.erase(std::next(it).base());
    return w;
  }
  REFBMC_ASSERT_MSG(false, "eliminated variable has no witness");
  return Witness{};
}

void VarRemapper::eliminate(Lit lit,
                            std::vector<std::vector<Lit>> clauses,
                            std::vector<std::vector<Lit>> removed) {
  const auto v = static_cast<std::size_t>(lit.var());
  REFBMC_ASSERT(kept_[v] != 0);
  kept_[v] = 0;
  witnesses_.push_back(Witness{lit, std::move(clauses), std::move(removed)});
}

void VarRemapper::complete_model(std::vector<lbool>& values) const {
  REFBMC_EXPECTS(values.size() >= kept_.size());
  for (auto it = witnesses_.rbegin(); it != witnesses_.rend(); ++it) {
    const auto v = static_cast<std::size_t>(it->lit.var());
    // Default: falsify the eliminated literal — this satisfies every
    // removed clause of the opposite polarity (BVE's N side; a pure
    // literal has none).
    values[v] = it->lit.negated() ? l_True : l_False;
    for (const auto& clause : it->clauses) {
      bool satisfied = false;
      for (const Lit l : clause) {
        if (l.var() == it->lit.var()) continue;
        const lbool val = values[static_cast<std::size_t>(l.var())];
        REFBMC_ASSERT(val != l_Undef);
        if ((val ^ l.negated()) == l_True) {
          satisfied = true;
          break;
        }
      }
      if (!satisfied) {
        // Flip: every witness clause contains the literal, so the flip
        // satisfies all of them at once.  The removed opposite-polarity
        // clauses stay satisfied by the resolvent argument (their
        // resolvents against this clause are in the simplified formula
        // and hold under `values`).
        values[v] = it->lit.negated() ? l_False : l_True;
        break;
      }
    }
  }
}

namespace {

std::uint64_t signature(const std::vector<Lit>& lits) {
  std::uint64_t s = 0;
  for (const Lit l : lits)
    s |= std::uint64_t{1} << (static_cast<std::uint32_t>(l.var()) & 63u);
  return s;
}

struct PClause {
  std::vector<Lit> lits;  // sorted by Lit::operator<, var-unique
  std::uint64_t sig = 0;
  bool alive = true;

  bool contains(Lit l) const {
    return std::binary_search(lits.begin(), lits.end(), l);
  }
};

/// Clauses larger than this are skipped as subsumption *pivots* (they
/// still get subsumed by smaller ones).  Tape clauses are Tseitin-sized;
/// this only guards pathological resolvents.
constexpr std::size_t kMaxSubsumePivot = 32;

struct Simplifier {
  const PreprocessOptions& opts;
  int num_vars;
  const std::vector<char>& frozen;

  std::vector<PClause> cls;
  std::vector<std::vector<std::uint32_t>> occ;  // by Lit::index(); lazy
  std::vector<std::int32_t> occ_count;          // by Lit::index(); exact
  std::vector<lbool> assigned;                  // by var
  std::vector<char> seeded;                     // by var: fact predates us
  std::vector<Lit> unit_queue;
  VarRemapper remap;
  PreprocessStats stats;
  bool contradiction = false;
  bool changed = false;

  Simplifier(const PreprocessOptions& o, int nv,
             const std::vector<char>& fr, const std::vector<lbool>* seed)
      : opts(o),
        num_vars(nv),
        frozen(fr),
        occ(static_cast<std::size_t>(nv) * 2),
        occ_count(static_cast<std::size_t>(nv) * 2, 0),
        assigned(static_cast<std::size_t>(nv), l_Undef),
        seeded(static_cast<std::size_t>(nv), 0),
        remap(nv) {
    if (seed == nullptr) return;
    REFBMC_EXPECTS(seed->size() == static_cast<std::size_t>(nv));
    // Seeded facts simplify the input like any root assignment but are
    // not new discoveries: they bypass assign() (no units_propagated,
    // no changed flag) and output() never re-emits them.
    for (Var v = 0; v < nv; ++v) {
      const lbool val = (*seed)[static_cast<std::size_t>(v)];
      if (val == l_Undef) continue;
      assigned[static_cast<std::size_t>(v)] = val;
      seeded[static_cast<std::size_t>(v)] = 1;
      unit_queue.push_back(Lit::make(v, val == l_False));
    }
  }

  lbool value(Lit l) const {
    return assigned[static_cast<std::size_t>(l.var())] ^ l.negated();
  }

  void assign(Lit l) {
    const lbool cur = value(l);
    if (cur == l_True) return;
    if (cur == l_False) {
      contradiction = true;
      return;
    }
    assigned[static_cast<std::size_t>(l.var())] =
        l.negated() ? l_False : l_True;
    unit_queue.push_back(l);
    ++stats.units_propagated;
    changed = true;
  }

  void kill(std::uint32_t idx) {
    PClause& c = cls[idx];
    if (!c.alive) return;
    c.alive = false;
    for (const Lit l : c.lits)
      --occ_count[static_cast<std::size_t>(l.index())];
  }

  /// Removes `drop` from clause `idx` (must be present and alive).
  void strengthen(std::uint32_t idx, Lit drop) {
    PClause& c = cls[idx];
    REFBMC_ASSERT(c.alive);
    c.lits.erase(std::find(c.lits.begin(), c.lits.end(), drop));
    --occ_count[static_cast<std::size_t>(drop.index())];
    c.sig = signature(c.lits);
    ++stats.lits_strengthened;
    changed = true;
    if (c.lits.empty()) {
      contradiction = true;
    } else if (c.lits.size() == 1) {
      assign(c.lits[0]);
      kill(idx);
    }
  }

  /// Adds a (sorted, var-unique, non-tautological) clause; units are
  /// folded into the assignment instead of being stored.
  void add_clause(std::vector<Lit> lits) {
    if (lits.empty()) {
      contradiction = true;
      return;
    }
    if (lits.size() == 1) {
      assign(lits[0]);
      return;
    }
    const auto idx = static_cast<std::uint32_t>(cls.size());
    PClause c;
    c.sig = signature(lits);
    c.lits = std::move(lits);
    for (const Lit l : c.lits) {
      occ[static_cast<std::size_t>(l.index())].push_back(idx);
      ++occ_count[static_cast<std::size_t>(l.index())];
    }
    cls.push_back(std::move(c));
  }

  /// Unit propagation to fixpoint.  Maintains the invariant that no
  /// alive clause mentions an assigned variable: clauses containing a
  /// true literal die, false literals are stripped.
  void propagate_units() {
    while (!unit_queue.empty() && !contradiction) {
      const Lit l = unit_queue.back();
      unit_queue.pop_back();
      for (const std::uint32_t idx :
           occ[static_cast<std::size_t>(l.index())]) {
        if (cls[idx].alive && cls[idx].contains(l)) kill(idx);
      }
      occ[static_cast<std::size_t>(l.index())].clear();
      // Copy: strengthen() may enqueue and we clear the list below.
      const std::vector<std::uint32_t> neg_occ =
          occ[static_cast<std::size_t>((~l).index())];
      occ[static_cast<std::size_t>((~l).index())].clear();
      for (const std::uint32_t idx : neg_occ) {
        if (!cls[idx].alive || !cls[idx].contains(~l)) continue;
        strengthen(idx, ~l);
        if (contradiction) return;
      }
    }
  }

  /// Walks occ[l], compacting dead/stale entries in place, and calls
  /// fn(idx) for each alive clause that really contains l.
  template <typename Fn>
  void for_occ(Lit l, Fn&& fn) {
    auto& list = occ[static_cast<std::size_t>(l.index())];
    std::size_t out = 0;
    for (std::size_t i = 0; i < list.size(); ++i) {
      const std::uint32_t idx = list[i];
      if (!cls[idx].alive || !cls[idx].contains(l)) continue;
      list[out++] = idx;
      fn(idx);
    }
    list.resize(out);
  }

  // ---- subsumption / self-subsuming resolution ------------------------
  enum class SubCheck { Subsumes, Strengthens, Fail };

  /// Merge-walk: does C subsume D (C ⊆ D), or does C with exactly one
  /// literal flipped subsume D (self-subsuming resolution: D loses the
  /// flipped literal's negation)?  Both are sorted and var-unique, and
  /// Lit ordering is var-major, so one pass decides.
  SubCheck subsume_check(const PClause& c, const PClause& d,
                         Lit& flipped) const {
    std::size_t j = 0;
    int flips = 0;
    for (const Lit lc : c.lits) {
      while (j < d.lits.size() && d.lits[j].var() < lc.var()) ++j;
      if (j == d.lits.size() || d.lits[j].var() != lc.var())
        return SubCheck::Fail;
      if (d.lits[j] != lc) {
        if (++flips > 1) return SubCheck::Fail;
        flipped = lc;
      }
      ++j;
    }
    return flips == 0 ? SubCheck::Subsumes : SubCheck::Strengthens;
  }

  void subsume_round() {
    const auto pivots = static_cast<std::uint32_t>(cls.size());
    for (std::uint32_t i = 0; i < pivots && !contradiction; ++i) {
      if (!cls[i].alive || cls[i].lits.size() > kMaxSubsumePivot) continue;
      // Cheapest literal to walk: fewest occurrences across both
      // polarities (every superset of C shows up in one of the two).
      Lit lmin = cls[i].lits[0];
      std::int32_t best = INT32_MAX;
      for (const Lit l : cls[i].lits) {
        const std::int32_t n =
            occ_count[static_cast<std::size_t>(l.index())] +
            occ_count[static_cast<std::size_t>((~l).index())];
        if (n < best) {
          best = n;
          lmin = l;
        }
      }
      for (const Lit probe : {lmin, ~lmin}) {
        // Snapshot: strengthen() can mutate occ lists via unit folding.
        std::vector<std::uint32_t> candidates;
        for_occ(probe, [&](std::uint32_t idx) {
          if (idx != i) candidates.push_back(idx);
        });
        for (const std::uint32_t j : candidates) {
          if (!cls[i].alive) break;  // i itself got strengthened to unit
          if (!cls[j].alive || cls[j].lits.size() < cls[i].lits.size())
            continue;
          if ((cls[i].sig & ~cls[j].sig) != 0) continue;
          Lit flipped = sat::kLitUndef;
          switch (subsume_check(cls[i], cls[j], flipped)) {
            case SubCheck::Subsumes:
              kill(j);
              ++stats.clauses_subsumed;
              changed = true;
              break;
            case SubCheck::Strengthens:
              strengthen(j, ~flipped);
              break;
            case SubCheck::Fail:
              break;
          }
          if (contradiction) return;
        }
      }
    }
  }

  // ---- pure / unused literal elimination ------------------------------
  bool eliminable(Var v) const {
    return frozen[static_cast<std::size_t>(v)] == 0 &&
           assigned[static_cast<std::size_t>(v)] == l_Undef &&
           remap.is_kept(v);
  }

  void pure_round() {
    for (Var v = 0; v < num_vars && !contradiction; ++v) {
      if (!eliminable(v)) continue;
      const Lit pos = Lit::make(v);
      const std::int32_t np = occ_count[static_cast<std::size_t>(pos.index())];
      const std::int32_t nn =
          occ_count[static_cast<std::size_t>((~pos).index())];
      if (np == 0 && nn == 0) {
        remap.eliminate(pos, {});
        ++stats.vars_eliminated;
        changed = true;
        continue;
      }
      if (np != 0 && nn != 0) continue;
      const Lit pure = np != 0 ? pos : ~pos;
      std::vector<std::vector<Lit>> witness;
      std::vector<std::uint32_t> holders;
      for_occ(pure, [&](std::uint32_t idx) { holders.push_back(idx); });
      for (const std::uint32_t idx : holders) {
        witness.push_back(cls[idx].lits);
        kill(idx);
      }
      remap.eliminate(pure, std::move(witness));
      ++stats.vars_eliminated;
      ++stats.pure_literals;
      changed = true;
    }
  }

  // ---- bounded variable elimination (NiVER) ---------------------------
  /// Resolvent of p (contains pos) and n (contains ~pos): merged minus
  /// the pivot pair, deduplicated.  Returns false for tautologies.
  bool resolve(const std::vector<Lit>& p, const std::vector<Lit>& n,
               Lit pos, std::vector<Lit>& out) const {
    out.clear();
    std::size_t i = 0, j = 0;
    while (i < p.size() || j < n.size()) {
      Lit next;
      if (j == n.size() || (i < p.size() && p[i] < n[j])) {
        next = p[i++];
      } else if (i == p.size() || n[j] < p[i]) {
        next = n[j++];
      } else {
        next = p[i++];
        ++j;  // identical literal in both parents
      }
      if (next.var() == pos.var()) continue;  // pivot pair drops out
      if (!out.empty() && out.back().var() == next.var()) {
        if (out.back() != next) return false;  // tautology
        continue;
      }
      out.push_back(next);
    }
    return true;
  }

  void bve_round() {
    std::vector<Lit> resolvent;
    for (Var v = 0; v < num_vars && !contradiction; ++v) {
      if (!eliminable(v)) continue;
      const Lit pos = Lit::make(v);
      const std::int32_t np = occ_count[static_cast<std::size_t>(pos.index())];
      const std::int32_t nn =
          occ_count[static_cast<std::size_t>((~pos).index())];
      if (np == 0 || nn == 0) continue;  // pure_round's job
      if (np + nn > opts.bve_budget) continue;

      std::vector<std::uint32_t> p_idx, n_idx;
      for_occ(pos, [&](std::uint32_t idx) { p_idx.push_back(idx); });
      for_occ(~pos, [&](std::uint32_t idx) { n_idx.push_back(idx); });

      // NiVER acceptance: non-tautological resolvents must not
      // outnumber the clauses they replace, and must stay short.
      std::vector<std::vector<Lit>> resolvents;
      const std::size_t limit = p_idx.size() + n_idx.size();
      bool ok = true;
      for (const std::uint32_t pi : p_idx) {
        for (const std::uint32_t ni : n_idx) {
          if (!resolve(cls[pi].lits, cls[ni].lits, pos, resolvent)) continue;
          if (resolvent.size() >
                  static_cast<std::size_t>(opts.bve_max_resolvent) ||
              resolvents.size() == limit) {
            ok = false;
            break;
          }
          resolvents.push_back(resolvent);
        }
        if (!ok) break;
      }
      if (!ok) continue;

      // Witness: the positive occurrence list.  The default completion
      // (v = false) satisfies the negative side; the flip case is
      // covered by the resolvents now entering the formula.  The
      // negative side rides along as the resurrection kit's other half.
      std::vector<std::vector<Lit>> witness, removed;
      witness.reserve(p_idx.size());
      removed.reserve(n_idx.size());
      for (const std::uint32_t pi : p_idx) witness.push_back(cls[pi].lits);
      for (const std::uint32_t ni : n_idx) removed.push_back(cls[ni].lits);
      for (const std::uint32_t pi : p_idx) kill(pi);
      for (const std::uint32_t ni : n_idx) kill(ni);
      remap.eliminate(pos, std::move(witness), std::move(removed));
      ++stats.vars_eliminated;
      changed = true;
      for (auto& r : resolvents) add_clause(std::move(r));
      propagate_units();
    }
  }

  void load(const std::vector<std::vector<Lit>>& input) {
    stats.clauses_in = input.size();
    for (const auto& raw : input) {
      stats.lits_in += raw.size();
      std::vector<Lit> c(raw);
      std::sort(c.begin(), c.end());
      c.erase(std::unique(c.begin(), c.end()), c.end());
      bool taut = false;
      for (std::size_t i = 0; i + 1 < c.size(); ++i) {
        if (c[i].var() == c[i + 1].var()) {
          taut = true;
          break;
        }
      }
      if (taut) continue;  // vacuous on any assignment
      add_clause(std::move(c));
      if (contradiction) return;
    }
  }

  void run() {
    propagate_units();
    for (int round = 0; round < opts.rounds && !contradiction; ++round) {
      changed = false;
      subsume_round();
      propagate_units();
      if (contradiction) break;
      pure_round();
      bve_round();
      if (!changed) break;
    }
  }

  std::vector<std::vector<Lit>> output() {
    std::vector<std::vector<Lit>> out;
    // Root facts first (the solver derives the same level-0 state the
    // unsimplified replay would have reached), then survivors in tape
    // order — fully deterministic.
    for (Var v = 0; v < num_vars; ++v) {
      if (seeded[static_cast<std::size_t>(v)] != 0) continue;
      const lbool val = assigned[static_cast<std::size_t>(v)];
      if (val != l_Undef) out.push_back({Lit::make(v, val == l_False)});
    }
    for (const PClause& c : cls) {
      if (c.alive) out.push_back(c.lits);
    }
    for (const auto& c : out) stats.lits_out += c.size();
    stats.clauses_out = out.size();
    return out;
  }
};

}  // namespace

SimplifyResult TapePreprocessor::run(
    int num_vars, const std::vector<std::vector<Lit>>& clauses,
    const std::vector<char>& frozen,
    const std::vector<lbool>* seed) const {
  REFBMC_EXPECTS(frozen.size() == static_cast<std::size_t>(num_vars));
  const std::uint64_t t0 = obs::monotonic_now_us();

  Simplifier s(opts_, num_vars, frozen, seed);
  s.load(clauses);
  if (!s.contradiction) s.run();

  SimplifyResult result;
  if (s.contradiction) {
    // A definitional tape should never be refutable by preprocessing
    // alone; if it happens (degenerate input), hand the solver the
    // original formula so verdicts and cores stay authoritative.
    result.clauses = clauses;
    result.remap = VarRemapper(num_vars);
    if (seed != nullptr) result.assigned = *seed;
    result.assigned.resize(static_cast<std::size_t>(num_vars), l_Undef);
    result.fell_back = true;
    result.stats.clauses_in = clauses.size();
    result.stats.clauses_out = clauses.size();
    for (const auto& c : clauses) {
      result.stats.lits_in += c.size();
      result.stats.lits_out += c.size();
    }
  } else {
    result.clauses = s.output();
    result.remap = std::move(s.remap);
    result.stats = s.stats;
    result.assigned = std::move(s.assigned);
  }
  result.stats.preprocess_us = obs::monotonic_now_us() - t0;
  return result;
}

}  // namespace refbmc::bmc
