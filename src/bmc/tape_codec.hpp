// Compact byte encoding of ClauseTape event ranges — the space half of
// the distributed-racing roadmap item (the socket protocol will ship
// these bytes; today they back the in-memory "cold storage" mode).
//
// The tape's raw form costs 4 bytes per op plus 4 bytes per literal.
// The codec replaces that with a varint record stream:
//
//   record        encoding
//   ------------  -----------------------------------------------------
//   var run       varint 0, then varint n    (n consecutive add_var ops)
//   clause (u>0)  varint u, then u literal deltas:
//                   lit[0]: zigzag(raw[0] - prev_clause_raw[0])
//                   lit[i]: zigzag(raw[i] - raw[0])       for i >= 1
//
// where raw = Lit::index() = 2*var + sign.  Tseitin output is extremely
// local — consecutive clauses reference adjacent fresh variables and a
// clause's literals cluster around its first — so the deltas are small
// and most literals cost one byte instead of four.  Decoding is
// streaming and exact: replaying a decoded range into a sink is
// bit-identical to replaying the raw tape (test-asserted).
//
// Layering: ClauseTape uses the low-level Writer/for_each to freeze
// already-replayed prefixes (tape.hpp, cold storage); SharedTape uses
// encode_clauses/decode_clauses for its consumed SimplifiedDepth /
// IncDelta caches; TapeCodec::encode/decode is the public range API and
// the future on-wire format.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "bmc/tape.hpp"

namespace refbmc::bmc {

class TapeCodec {
 public:
  /// One encoded tape range [from, upto) with its framing.
  struct EncodedRange {
    ClauseTape::Mark from;
    ClauseTape::Mark upto;
    std::vector<std::uint8_t> bytes;

    /// What the same range costs in the tape's raw vectors.
    std::size_t raw_bytes() const {
      return (upto.ops - from.ops) * sizeof(std::int32_t) +
             (upto.lits - from.lits) * sizeof(sat::Lit);
    }
  };

  /// Encodes the tape events in [from, upto).  Both marks must lie in
  /// the tape's still-raw region (freeze_prefix only moves forward, so
  /// encoding always happens before freezing).
  static EncodedRange encode(const ClauseTape& tape,
                             const ClauseTape::Mark& from,
                             const ClauseTape::Mark& upto);
  static EncodedRange encode(const ClauseTape& tape,
                             const ClauseTape::Mark& upto) {
    return encode(tape, ClauseTape::Mark{}, upto);
  }

  /// Streaming decode into any ClauseSink, translating variables through
  /// `cursor` exactly like ClauseTape::replay.  The cursor must be
  /// parked at enc.from (var_map holds enc.from.vars entries); it ends
  /// parked at enc.upto.  `origin` is the tape's full origin vector.
  static void decode(const EncodedRange& enc,
                     std::span<const VarOrigin> origin,
                     ClauseTape::Cursor& cursor, ClauseSink& out);

  // ---- low-level record stream ---------------------------------------
  /// Appends records to a byte buffer; adjacent add_var ops coalesce
  /// into one run.  Call finish() (or destroy) to flush a pending run.
  class Writer {
   public:
    explicit Writer(std::vector<std::uint8_t>& out) : out_(out) {}
    ~Writer() { finish(); }

    void add_var() { ++pending_vars_; }
    void add_vars(std::size_t run) { pending_vars_ += run; }
    void add_clause(std::span<const sat::Lit> lits);
    void finish();

   private:
    std::vector<std::uint8_t>& out_;
    std::uint32_t prev_first_ = 0;  // previous clause's first raw index
    std::size_t pending_vars_ = 0;
  };

  /// Walks an encoded stream: on_vars(n) per var run, on_clause(lits)
  /// per clause (the span is valid until the next callback).  Either
  /// callback may be empty when the stream is known to lack that record
  /// kind.
  static void for_each(
      std::span<const std::uint8_t> bytes,
      const std::function<void(std::size_t)>& on_vars,
      const std::function<void(std::span<const sat::Lit>)>& on_clause);

  /// Clause-list form (no var records) for the SharedTape caches.
  static std::vector<std::uint8_t> encode_clauses(
      const std::vector<std::vector<sat::Lit>>& clauses);
  static void decode_clauses(
      std::span<const std::uint8_t> bytes,
      const std::function<void(std::span<const sat::Lit>)>& on_clause);

  // ---- primitives (exposed for tests) --------------------------------
  static void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v);
  static std::uint64_t get_varint(const std::uint8_t*& p,
                                  const std::uint8_t* end);
  static std::uint64_t zigzag(std::int64_t v) {
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
  }
  static std::int64_t unzigzag(std::uint64_t v) {
    return static_cast<std::int64_t>(v >> 1) ^
           -static_cast<std::int64_t>(v & 1);
  }
};

}  // namespace refbmc::bmc
