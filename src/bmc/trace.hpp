// Counter-example traces: extraction from a satisfying assignment and
// validation by replay on the circuit simulator.
#pragma once

#include <string>
#include <vector>

#include "bmc/cnf.hpp"
#include "model/netlist.hpp"
#include "sat/solver.hpp"

namespace refbmc::bmc {

struct Trace {
  /// Transitions before the violating frame (the k of Eq. 1).
  int depth = 0;
  /// inputs[f][i] = value of the i-th primary input (Netlist::inputs()
  /// order) at frame f; frames 0..depth inclusive.
  std::vector<std::vector<bool>> inputs;
  /// Values for uninitialised latches at frame 0 (Netlist::latches()
  /// order; entries for latches with fixed init hold that fixed value).
  std::vector<bool> initial_latches;
  /// Frame at which the bad signal fires (== depth for BadMode::Last).
  int bad_frame = 0;

  std::string to_string(const model::Netlist& net) const;
};

/// Reads a counter-example of length `depth` out of `solver`'s model,
/// locating circuit values through the `origin` map (solver var →
/// (node, frame)).  Inputs/latches outside the cone of influence — or
/// simplified away by the encoder — default to 0.
Trace extract_trace(const model::Netlist& net, int depth,
                    const std::vector<VarOrigin>& origin,
                    const sat::Solver& solver);

/// Convenience for instance buffers.
inline Trace extract_trace(const model::Netlist& net, const BmcInstance& inst,
                           const sat::Solver& solver) {
  return extract_trace(net, inst.depth, inst.origin, solver);
}

/// Replays the trace on the simulator; returns true iff the bad signal of
/// `bad_index` is 1 at some frame ≤ trace.depth (and records it — the
/// check BMC results are held to in tests and the engine's self-check).
bool validate_trace(const model::Netlist& net, const Trace& trace,
                    std::size_t bad_index = 0);

/// Greedily simplifies a counter-example for human consumption: tries to
/// force every input bit (and every free initial latch value) to 0,
/// keeping each change only if the trace still replays to a violation.
/// The result validates by construction.  Quadratic in trace size — meant
/// for debugging workflows, not hot paths.
Trace minimize_trace(const model::Netlist& net, Trace trace,
                     std::size_t bad_index = 0);

}  // namespace refbmc::bmc
