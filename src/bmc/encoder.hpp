// The unified time-frame encoder: one implementation of the paper's Eq. 1,
//
//     I(V^0) ∧ ⋀_{1<=i<=k} T(V^{i-1}, W^i, V^i) ∧ ¬P(V^k),
//
// emitting each frame exactly once into a pluggable ClauseSink.  Every
// consumer — the engine's scratch and incremental sessions, k-induction,
// the portfolio's encode-once racing, tests and benches — feeds off this
// single encoder; the old scratch/incremental encoder pair is gone.
//
// Encoding choices:
//  * one CNF variable per (node, frame) for nodes in the sequential COI
//    of the checked bad signal, plus one auxiliary constant-false var;
//  * AND gates: 3 Tseitin clauses per frame;
//  * latches: 2 equivalence clauses connecting latch(i) to its next-state
//    function at frame i-1; initial values as unit clauses at frame 0
//    (uninitialised latches are left unconstrained);
//  * property: BadMode::Last exposes bad at frame k exactly (Eq. 1);
//    BadMode::Any maintains a per-frame prefix disjunction
//    d_k ↔ d_{k-1} ∨ bad_k, so "bad at some frame ≤ k" stays monotone
//    and works in both scratch and incremental sessions.
//
// Frame-wise simplification (EncoderOptions::simplify, on by default)
// shrinks the instance before it ever reaches a solver, on top of the
// COI cut:
//  * constant propagation from the frame-0 initial values: an initialised
//    latch starts as a constant, and everything it forces downstream —
//    through gates and later frames — folds away;
//  * structural hashing of the unrolled AIG: two gates whose fanin
//    literal pairs coincide after folding share one CNF variable, across
//    frames as well as within one (the netlist's own strashing cannot see
//    these merges because they only appear after unrolling);
//  * latch aliasing: latch(i) is the same literal as its next-state
//    function at frame i-1, eliminating the coupling clauses entirely.
// All three preserve satisfiability frame-exactly; EncodeStats counts
// what they removed.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "bmc/cnf.hpp"
#include "model/netlist.hpp"
#include "sat/solver.hpp"

namespace refbmc::bmc {

enum class BadMode {
  Last,  // counter-example of length exactly k (paper's Eq. 1)
  Any,   // counter-example of length at most k
};

/// Where encoded variables and clauses go.  Implementations: sat::Solver
/// adaptor (SolverSink), BmcInstance buffer (InstanceSink), and the
/// replayable ClauseTape (tape.hpp).
class ClauseSink {
 public:
  virtual ~ClauseSink() = default;
  /// Allocates the next variable (dense, starting at 0 per sink) and
  /// records its origin.
  virtual sat::Var add_var(const VarOrigin& origin) = 0;
  virtual void add_clause(std::span<const sat::Lit> lits) = 0;
};

/// Feeds a solver; origins are appended to a caller-owned vector so the
/// caller ends up with the var → (node, frame) map trace extraction and
/// core projection need.
class SolverSink final : public ClauseSink {
 public:
  SolverSink(sat::Solver& solver, std::vector<VarOrigin>& origin)
      : solver_(solver), origin_(origin) {}

  sat::Var add_var(const VarOrigin& origin) override {
    origin_.push_back(origin);
    return solver_.new_var();
  }
  void add_clause(std::span<const sat::Lit> lits) override {
    scratch_.assign(lits.begin(), lits.end());
    solver_.add_clause(scratch_);
  }

 private:
  sat::Solver& solver_;
  std::vector<VarOrigin>& origin_;
  std::vector<sat::Lit> scratch_;
};

/// Buffers the encoding into a BmcInstance (cnf + origin map).
class InstanceSink final : public ClauseSink {
 public:
  explicit InstanceSink(BmcInstance& inst) : inst_(inst) {}

  sat::Var add_var(const VarOrigin& origin) override {
    const auto v = static_cast<sat::Var>(inst_.origin.size());
    inst_.origin.push_back(origin);
    inst_.cnf.num_vars = static_cast<int>(inst_.origin.size());
    return v;
  }
  void add_clause(std::span<const sat::Lit> lits) override {
    inst_.cnf.add_clause(std::vector<sat::Lit>(lits.begin(), lits.end()));
  }

 private:
  BmcInstance& inst_;
};

struct EncoderOptions {
  BadMode mode = BadMode::Last;
  /// Emit the initial-state predicate I(V^0) (off for k-induction steps).
  bool constrain_init = true;
  /// Frame-wise simplification (constant propagation, structural hashing,
  /// latch aliasing).  Off reproduces the textbook one-var-per-(node,
  /// frame) encoding.
  bool simplify = true;
};

// EncodeStats (cnf.hpp) carries the encoder counters.  frames_encoded is
// the encode-once proof obligation: however many sessions consume the
// formula, it only ever advances by one per depth.  vars/clauses_removed
// count what simplification saved relative to the unsimplified encoding
// of the same frames.

class FrameEncoder {
 public:
  /// `bad_index` selects the checked property of the model.  The sink
  /// must be empty (no variables yet) and outlive the encoder.
  FrameEncoder(const model::Netlist& net, ClauseSink& sink,
               std::size_t bad_index = 0, EncoderOptions opts = {});

  /// Extends the encoding to depth k.  Monotone: each frame is encoded
  /// exactly once, ever.
  void encode_to(int k);
  int encoded_depth() const { return encoded_depth_; }

  /// Sink-space literal of `s` at `frame` (≤ encoded_depth).
  sat::Lit lit_of(model::Signal s, int frame) const;
  /// The bad signal at `frame`.
  sat::Lit bad(int frame) const { return lit_of(bad_, frame); }
  /// Literal whose truth is "the property is violated at depth k":
  /// bad(k) under BadMode::Last, the prefix disjunction ⋁_{f≤k} bad(f)
  /// under BadMode::Any.
  sat::Lit property(int k) const;
  /// Cone latches (Netlist::latches() order, non-cone latches skipped)
  /// at `frame` — the raw material for simple-path constraints.
  std::vector<sat::Lit> latch_lits(int frame) const;

  /// Nodes in the sequential cone of influence of the property.
  const std::vector<model::NodeId>& cone() const { return cone_; }
  const EncoderOptions& options() const { return opts_; }
  const EncodeStats& stats() const { return stats_; }
  /// The auxiliary constant: this literal is false in every model.
  sat::Lit false_lit() const { return false_lit_; }

 private:
  sat::Lit fresh(model::NodeId node, int frame);
  void emit(std::span<const sat::Lit> lits);
  /// Tseitin AND of two sink literals with folding + structural hashing
  /// (when simplify is on); `origin` labels a fresh variable if one is
  /// needed.
  sat::Lit and_lit(sat::Lit a, sat::Lit b, const VarOrigin& origin);
  void encode_frame(int f);

  sat::Lit& val(model::NodeId node, int frame) {
    return val_[static_cast<std::size_t>(frame) * net_.num_nodes() + node];
  }
  sat::Lit val(model::NodeId node, int frame) const {
    return val_[static_cast<std::size_t>(frame) * net_.num_nodes() + node];
  }

  const model::Netlist& net_;
  ClauseSink& sink_;
  model::Signal bad_;
  EncoderOptions opts_;
  std::vector<model::NodeId> cone_;  // sorted (= topological for ANDs)
  std::vector<char> in_cone_;        // per node
  std::vector<sat::Lit> val_;        // node × frame → sink literal
  std::vector<sat::Lit> any_;        // per frame, BadMode::Any chain
  std::unordered_map<std::uint64_t, sat::Lit> strash_;  // (lit,lit) → AND
  sat::Lit false_lit_;
  int encoded_depth_ = -1;
  EncodeStats stats_;
};

/// One-shot convenience: the full Eq. 1 instance for depth k — path,
/// initial states, and the asserted property clause (bad_lit).  Used by
/// tests, benches and the DIMACS export path.
BmcInstance encode_full(const model::Netlist& net, std::size_t bad_index,
                        int k, EncoderOptions opts = {});

/// Path-only instance: gate relations and latch couplings for frames
/// 0..k, the initial-state predicate iff opts.constrain_init, and NO
/// property clause — per-frame bad literals are exposed in `bad_frames`
/// for the caller to constrain (used by k-induction).
BmcInstance encode_path(const model::Netlist& net, std::size_t bad_index,
                        int k, EncoderOptions opts = {});

}  // namespace refbmc::bmc
