// Accumulation and projection of the refined decision ordering (§3.2).
//
// After BMC instance j is proven unsatisfiable, the variables of its unsat
// core are projected onto the model ("register") axis via the instance's
// origin map, and each touched node's score is bumped:
//
//     bmc_score(x) = Σ_j in_unsat(x, j) · w(j)
//
// with the paper's weighting w(j) = j: recent cores (higher correlation
// with the next instance) weigh more, but no single core is trusted
// exclusively.  Alternative weightings are provided for the ablation
// bench.  For a new instance, per-CNF-variable ranks are produced by
// looking every variable's origin node up in the accumulated map.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bmc/cnf.hpp"
#include "sat/types.hpp"

namespace refbmc::bmc {

enum class CoreWeighting {
  Linear,    // w(j) = j — the paper's choice
  Uniform,   // w(j) = 1 — every core counts the same
  LastOnly,  // only the most recent core is kept
  ExpDecay,  // score := score/2 before each update, w(j) = 1
};

inline const char* to_string(CoreWeighting w) {
  switch (w) {
    case CoreWeighting::Linear: return "linear";
    case CoreWeighting::Uniform: return "uniform";
    case CoreWeighting::LastOnly: return "last-only";
    case CoreWeighting::ExpDecay: return "exp-decay";
  }
  return "?";
}

/// All weightings, in enum order — the canonical iteration set for the
/// ablation bench and CLI enumeration.
inline constexpr std::array<CoreWeighting, 4> all_core_weightings() {
  return {CoreWeighting::Linear, CoreWeighting::Uniform,
          CoreWeighting::LastOnly, CoreWeighting::ExpDecay};
}

/// Inverse of to_string: parses a weighting name (exactly as printed).
/// Returns nullopt for unknown names.
std::optional<CoreWeighting> parse_core_weighting(std::string_view name);

/// Projects a core's CNF variables onto the model axis through `origin`:
/// one entry per touched node (in_unsat(x, j) is 0/1 per instance), the
/// constant node skipped.  The single projection discipline every
/// accumulation — engine-private CoreRanking and the race-shared
/// SharedRankSource alike — builds on, so the two can never diverge.
std::unordered_set<model::NodeId> core_nodes(
    const std::vector<VarOrigin>& origin,
    const std::vector<sat::Var>& core_vars);

class CoreRanking {
 public:
  explicit CoreRanking(CoreWeighting weighting = CoreWeighting::Linear)
      : weighting_(weighting) {}

  /// Rebuilds a ranking from externally accumulated state — snapshot
  /// support for the shared rank source (rank_source.hpp), whose merged
  /// node-axis scores live behind a mutex rather than in a CoreRanking.
  CoreRanking(CoreWeighting weighting,
              std::unordered_map<model::NodeId, double> scores,
              std::size_t num_updates)
      : weighting_(weighting),
        scores_(std::move(scores)),
        num_updates_(num_updates) {}

  /// Records the unsat core of instance `k` (depth of the BMC problem):
  /// `core_vars` are CNF variables whose model nodes are read off
  /// `origin`; they are deduplicated on the model axis before scoring
  /// (in_unsat(x, j) is 0/1 per instance).
  void update(const std::vector<VarOrigin>& origin,
              const std::vector<sat::Var>& core_vars, int k);
  void update(const BmcInstance& inst, const std::vector<sat::Var>& core_vars,
              int k) {
    update(inst.origin, core_vars, k);
  }

  /// Per-CNF-variable ranks for a (new or extended) variable set.
  std::vector<double> project(const std::vector<VarOrigin>& origin) const;
  std::vector<double> project(const BmcInstance& inst) const {
    return project(inst.origin);
  }

  double node_score(model::NodeId node) const;
  const std::unordered_map<model::NodeId, double>& scores() const {
    return scores_;
  }
  std::size_t num_updates() const { return num_updates_; }
  CoreWeighting weighting() const { return weighting_; }

 private:
  CoreWeighting weighting_;
  std::unordered_map<model::NodeId, double> scores_;
  std::size_t num_updates_ = 0;
};

}  // namespace refbmc::bmc
