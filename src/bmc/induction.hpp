// Temporal induction (k-induction, Sheeran–Singh–Stålmarck; incremental
// formulation after Eén–Sörensson [5] of the paper's related work).
//
// BMC alone refutes properties; k-induction also *proves* them:
//   base(k):  I(V⁰) ∧ ⋀T ∧ bad(Vᵏ)                  — SAT ⇒ counter-example
//   step(k):  ⋀_{0..k} T ∧ ¬bad(V⁰..Vᵏ⁻¹) ∧ bad(Vᵏ)  — UNSAT ⇒ P proved
// (no initial-state constraint in the step; with pairwise state-
// distinctness ["simple path"] constraints the method is complete).
//
// The refined decision ordering applies here exactly as in BMC: the step
// instances for growing k form another highly correlated UNSAT sequence,
// so their cores feed a second CoreRanking — the generalisation the
// paper's conclusion anticipates ("other SAT-based problems ... with a
// similar incremental nature").
#pragma once

#include <memory>
#include <optional>

#include "bmc/engine.hpp"
#include "bmc/ranking.hpp"
#include "bmc/tape.hpp"
#include "bmc/trace.hpp"
#include "model/netlist.hpp"

namespace refbmc::bmc {

struct InductionConfig {
  /// Ordering policy for both the base and step solvers (Shtrichman is
  /// not supported here).
  OrderingPolicy policy = OrderingPolicy::Dynamic;
  CoreWeighting weighting = CoreWeighting::Linear;
  int max_k = 20;
  /// Pairwise state-distinctness constraints on the step path; required
  /// for completeness, can be disabled to measure their cost.
  bool simple_path = true;
  /// Frame-wise formula simplification (see EngineConfig::simplify).
  bool simplify = true;
  int dynamic_switch_divisor = 64;
  bool validate_counterexamples = true;
  double total_time_limit_sec = -1.0;
  std::int64_t per_instance_conflict_limit = -1;
  sat::SolverConfig solver;
};

struct InductionResult {
  enum class Status {
    Proved,               // step(k) UNSAT: the invariant holds (all depths)
    CounterexampleFound,  // base(k) SAT
    BoundReached,         // neither within max_k
    ResourceLimit,
  };
  Status status = Status::BoundReached;
  /// The k at which the proof closed / the counter-example length.
  int k = -1;
  std::optional<Trace> counterexample;
  std::uint64_t base_decisions = 0;
  std::uint64_t step_decisions = 0;
  std::uint64_t base_conflicts = 0;
  std::uint64_t step_conflicts = 0;
  double total_time_sec = 0.0;
};

class InductionProver {
 public:
  InductionProver(const model::Netlist& net, InductionConfig config,
                  std::size_t bad_index = 0);

  InductionResult run();

  const CoreRanking& base_ranking() const { return base_ranking_; }
  const CoreRanking& step_ranking() const { return step_ranking_; }

 private:
  /// A per-k query: a fresh solver fed by replaying one of the two tapes
  /// (base: with I(V⁰); step: without), plus the property-shape clauses.
  struct SolveOutcome {
    sat::Result result;
    std::unique_ptr<sat::Solver> solver;  // alive for model extraction
    std::vector<VarOrigin> origin;
  };
  SolveOutcome solve_instance(SharedTape& tape, int depth, bool is_step,
                              CoreRanking& ranking, int k,
                              std::uint64_t& decisions,
                              std::uint64_t& conflicts, double deadline_sec);

  const model::Netlist& net_;
  InductionConfig config_;
  std::size_t bad_index_;
  SharedTape base_tape_;  // frames with the initial-state predicate
  SharedTape step_tape_;  // frames with frame 0 unconstrained
  CoreRanking base_ranking_;
  CoreRanking step_ranking_;
};

/// Convenience wrapper.
InductionResult prove_invariant(const model::Netlist& net, int max_k,
                                OrderingPolicy policy = OrderingPolicy::Dynamic,
                                std::size_t bad_index = 0);

}  // namespace refbmc::bmc
