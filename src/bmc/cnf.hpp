// BMC instance container: the CNF of Eq. 1 plus the variable-origin map
// that ties every CNF variable back to a (netlist node, time frame) pair.
//
// The origin map is what makes the paper's ordering transferable between
// instances: unsat-core variables of instance k are projected onto the
// model ("register") axis through it, and the accumulated model-level
// scores are pushed back down to the CNF variables of instance k+1.
#pragma once

#include <cstdint>
#include <vector>

#include "model/netlist.hpp"
#include "sat/dimacs.hpp"
#include "sat/types.hpp"

namespace refbmc::bmc {

/// Where a CNF variable came from.
struct VarOrigin {
  model::NodeId node = model::kConstNode;
  int frame = -1;  // -1 for the auxiliary constant-false variable
};

/// Encoder counters (filled by the FrameEncoder; see encoder.hpp).
struct EncodeStats {
  std::uint64_t frames_encoded = 0;
  std::uint64_t vars_emitted = 0;
  std::uint64_t clauses_emitted = 0;
  std::uint64_t vars_removed = 0;    // saved by simplification
  std::uint64_t clauses_removed = 0;
  /// Phase wall-times, cumulative over all encoded frames: encode_ns is
  /// the whole per-frame sweep (simplification included — it is fused
  /// into gate emission); simplify_ns is the gate-level fold/strash
  /// machinery's share of it, the separable part of that fusion.  The
  /// engine turns deltas of these into DepthStats::simplify_us.
  std::uint64_t encode_ns = 0;
  std::uint64_t simplify_ns = 0;
};

struct BmcInstance {
  int depth = 0;                  // the k of Eq. 1
  sat::Cnf cnf;                   // clauses of Eq. 1
  std::vector<VarOrigin> origin;  // per CNF variable
  sat::Lit bad_lit;               // literal asserted by the ¬P(V^k) unit
  /// Literal of the bad signal at each frame 0..depth (filled by the
  /// encoder; used by induction and custom property shapes).
  std::vector<sat::Lit> bad_frames;
  /// Literal of each latch at each frame: latch_frames[f][i] is the
  /// i-th cone latch (order of latches()) at frame f.  With frame-wise
  /// simplification a latch may alias another literal (its next-state
  /// function, a hashed gate, or a constant) rather than owning a
  /// variable.
  std::vector<std::vector<sat::Lit>> latch_frames;
  /// Encoder counters for this instance (simplification savings etc.).
  EncodeStats encode;

  std::size_t num_vars() const { return origin.size(); }
  std::size_t num_clauses() const { return cnf.clauses.size(); }
  std::uint64_t num_literals() const {
    std::uint64_t n = 0;
    for (const auto& c : cnf.clauses) n += c.size();
    return n;
  }
};

}  // namespace refbmc::bmc
