// The BMC engine: standard BMC and the paper's refine_order_bmc (Fig. 5),
// grown around the encode-once formula pipeline and the portfolio's
// ordering exchange.  Per depth k the one loop does:
//
//   prepare  — the FormulaSession materialises instance k from the
//              SharedTape: a fresh solver fed by replaying the tape
//              (scratch) or one persistent solver with activation
//              literals (incremental); the formula itself is encoded
//              exactly once either way (session.hpp / tape.hpp);
//   project  — the rank feed of sat_check(F, varRank): the RankSource's
//              accumulated model-axis bmc_scores are pushed down to this
//              instance's CNF variables through the session's origin map
//              (rank_source.hpp);
//   solve    — SAT means counter-example (validated on the simulator);
//   publish  — UNSAT means the core's variables are projected back to
//              the model axis and published into the RankSource (the
//              paper's bmc_score accumulation, §3.2), sharpening the
//              ordering of depth k+1 — and, when the source is shared
//              across a portfolio race, of every rival mid-solve: their
//              solvers poll the source's epoch at restart boundaries.
//
// The ordering policy selects how the rank feed is used by the solver:
//   Baseline   — ignored (pure Chaff VSIDS; the paper's "standard BMC");
//   Static     — primary sort key for the whole search (§3.3);
//   Dynamic    — primary key until #decisions > #literals/64, then VSIDS;
//   Shtrichman — time-axis BFS ranks (related-work comparison), static.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "bmc/cnf.hpp"
#include "bmc/encoder.hpp"
#include "bmc/rank_source.hpp"
#include "bmc/ranking.hpp"
#include "bmc/tape.hpp"
#include "bmc/trace.hpp"
#include "model/netlist.hpp"
#include "sat/solver.hpp"
#include "util/assert.hpp"
#include "util/mem_tracker.hpp"

namespace refbmc::portfolio {
class SharedClausePool;
}

namespace refbmc::bmc {

enum class OrderingPolicy {
  Baseline,    // pure VSIDS (the paper's "standard BMC")
  Static,      // §3.3 static: bmc_score primary, cha_score tiebreak
  Dynamic,     // §3.3 dynamic: static until difficulty, then VSIDS
  Replace,     // §3.3's passed-over alternative: bmc_score only
  Shtrichman,  // related work: time-axis BFS ordering
  Evsids,      // exponential VSIDS (MiniSat lineage), no rank feed
};

inline const char* to_string(OrderingPolicy p) {
  switch (p) {
    case OrderingPolicy::Baseline: return "baseline";
    case OrderingPolicy::Static: return "static";
    case OrderingPolicy::Dynamic: return "dynamic";
    case OrderingPolicy::Replace: return "replace";
    case OrderingPolicy::Shtrichman: return "shtrichman";
    case OrderingPolicy::Evsids: return "evsids";
  }
  REFBMC_ASSERT_MSG(false, "invalid OrderingPolicy value");
}

/// All policies, in enum order — the canonical iteration set for
/// portfolio racing and CLI enumeration.
inline constexpr std::array<OrderingPolicy, 6> all_policies() {
  return {OrderingPolicy::Baseline,   OrderingPolicy::Static,
          OrderingPolicy::Dynamic,    OrderingPolicy::Replace,
          OrderingPolicy::Shtrichman, OrderingPolicy::Evsids};
}

/// Inverse of to_string: parses a policy name (exactly as printed).
/// Returns nullopt for unknown names.
std::optional<OrderingPolicy> parse_policy(std::string_view name);

struct DepthStats;

struct EngineConfig {
  OrderingPolicy policy = OrderingPolicy::Baseline;
  BadMode bad_mode = BadMode::Last;
  CoreWeighting weighting = CoreWeighting::Linear;  // §3.2 (ablatable)
  int start_depth = 0;
  int max_depth = 20;  // completeness threshold / bound
  int dynamic_switch_divisor = 64;  // §3.3 (ablatable)
  /// Incremental mode (the combination with incremental SAT proposed in
  /// the paper's conclusion): one persistent solver, frames added once,
  /// per-depth properties enabled by assumption.  Learned clauses — and
  /// VSIDS activity — carry over between depths.  Supports both bad
  /// modes; the Shtrichman ordering (which ranks a fixed instance) is
  /// scratch-only.
  bool incremental = false;
  /// Frame-wise formula simplification (constant propagation from the
  /// initial states, structural hashing of the unrolled AIG, latch
  /// aliasing) on top of the COI cut.  DepthStats reports the savings.
  bool simplify = true;
  /// Tape-level CNF preprocessing (bounded variable elimination,
  /// pure-literal, subsumption / self-subsuming resolution — see
  /// bmc/preprocess.hpp), run once per depth over the shared tape.
  /// Scratch sessions replay the whole simplified formula per depth;
  /// incremental sessions replay simplified per-depth DELTAS under a
  /// cumulative witness stack — a future frame that re-references an
  /// eliminated variable transparently resurrects it (see
  /// SharedTape::replay_simplified_delta).  Off by default (and then
  /// bit-identical to an engine without the pass).
  PreprocessOptions preprocess;
  /// When non-null, this engine replays the given shared formula instead
  /// of encoding its own — the portfolio's encode-once racing.  Must
  /// match (netlist, bad_index, bad_mode, simplify) and outlive run().
  /// Not owned.
  SharedTape* shared_tape = nullptr;
  /// Portfolio lemma sharing: when non-null, the engine's session
  /// attaches a PoolEndpoint so its solver exchanges learned clauses (in
  /// tape space) with every other engine on the same formula — see
  /// portfolio/clause_pool.hpp.  The pool's variable space must be the
  /// tape of this (netlist, bad_index, bad_mode, simplify) combination.
  /// Not owned; must outlive run().
  portfolio::SharedClausePool* share_pool = nullptr;
  /// This engine's producer id within the pool (unique per entrant, so
  /// its own lemmas are never handed back to it).
  int share_producer = 0;
  /// Portfolio ordering exchange: when non-null the engine publishes its
  /// unsat cores into — and projects its per-depth rank feed from — this
  /// race-wide source instead of a private CoreRanking, and installs a
  /// mid-solve refresh hook so its solver picks up rivals' cores at
  /// restart boundaries (rank_source.hpp).  The source's weighting must
  /// equal `weighting`.  Not owned; must outlive run().
  RankSource* rank_source = nullptr;
  /// Collect unsat cores even for the baseline (costs the §3.1 overhead;
  /// the baseline of the paper's Table 1 runs with this off).
  bool always_track_cdg = false;
  /// Self-check: validate every counter-example on the simulator and every
  /// unsat core by re-solving (the latter is expensive; default off).
  bool validate_counterexamples = true;
  bool verify_cores = false;
  // Resource limits (negative = unlimited).
  double total_time_limit_sec = -1.0;
  double per_instance_time_limit_sec = -1.0;
  std::int64_t per_instance_conflict_limit = -1;
  /// Formula-state memory ceiling in bytes (0 = unlimited).  The tracked
  /// footprint — clause arena chunks, watcher-list heap, and the shared
  /// tape with its per-depth caches — is checked at conflict / decision /
  /// depth boundaries; a breach ends the run with Status::ResourceLimit
  /// and mem_limit_hit set.  Accounting itself is always on, so a zero
  /// ceiling is bit-identical to a build without one.
  std::uint64_t mem_ceiling_bytes = 0;
  /// Race-wide memory accounting: when non-null the engine charges its
  /// formula state to this tracker (shared by every entrant of a race)
  /// instead of an engine-private one; the ceiling then bounds the SUM
  /// across entrants.  Not owned; must outlive run().
  MemTracker* mem_tracker = nullptr;
  /// Cold storage: the shared tape keeps replayed depth prefixes and
  /// consumed preprocessing caches codec-encoded (bmc/tape_codec.hpp),
  /// trading replay-time decode for a ~3x smaller resident formula.
  /// Representation-only — excluded from formula/config fingerprints.
  bool tape_cold = false;
  /// Cooperative cancellation: when non-null and set to true (possibly
  /// from another thread, e.g. by the portfolio scheduler when a rival
  /// policy wins), run() stops at the next depth / solver checkpoint and
  /// reports Status::ResourceLimit.  Not owned; must outlive run().
  const std::atomic<bool>* stop = nullptr;
  /// Per-depth progress hook: invoked with every completed depth's
  /// DepthStats, right after it is appended to the result (SAT, UNSAT
  /// and resource-limit depths alike).  This is the serving layer's
  /// stream seam — a JobServer forwards these to polling clients while
  /// the engine is still running.  Called on the solving thread; in a
  /// portfolio race every entrant carries a copy of this callback and
  /// they fire concurrently, so the target must be thread-safe.  Keep it
  /// cheap: it sits between depths, not inside the search, but a slow
  /// callback still delays the next depth.
  std::function<void(const DepthStats&)> on_depth;
  /// Base solver knobs (restarts, reduceDB, VSIDS period, …).  rank_mode,
  /// track_cdg and limits are overridden per instance by the engine.
  sat::SolverConfig solver;
};

/// Per-depth statistics — the series behind the paper's Fig. 7.
struct DepthStats {
  int depth = 0;
  sat::Result result = sat::Result::Unknown;
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;  // "implications"
  /// Solver-core hot-path counters (see sat/propagator.hpp): assignments
  /// from the inlined binary watch lists, and long-clause watcher visits
  /// resolved by the blocking literal without touching the clause arena.
  std::uint64_t binary_propagations = 0;
  std::uint64_t blocker_skips = 0;
  std::uint64_t conflicts = 0;
  /// Lemma sharing at this depth (zero without a share_pool): learnts
  /// the pool accepted for export, foreign lemmas attached, and
  /// propagations spent integrating them at level 0.
  std::uint64_t clauses_exported = 0;
  std::uint64_t clauses_imported = 0;
  std::uint64_t import_propagations = 0;
  /// Ordering feed at this depth: cores this engine published into its
  /// RankSource (0/1 — one core per UNSAT depth of a core-ranking
  /// policy, engine-private or shared alike), mid-solve rank refreshes
  /// its solver applied (only a shared source can advance mid-solve, so
  /// zero without one), and the accumulation epoch the depth's initial
  /// projection was taken at.
  std::uint64_t ranks_published = 0;
  std::uint64_t rank_refreshes = 0;
  std::uint64_t rank_epoch = 0;
  double time_sec = 0.0;
  /// Per-depth phase wall-times (µs), the split behind the obs spans:
  ///   encode_us   — this engine's prepare(k): shared-tape extension (for
  ///                 whichever entrant got there first) plus replay into
  ///                 its solver;
  ///   simplify_us — the encoder's gate fold/strash work for the frames
  ///                 newly encoded at this depth (a shared-formula cost,
  ///                 paid once per race and reported identically to every
  ///                 entrant; simplification is fused into encoding, so
  ///                 this is its separable share — see EncodeStats);
  ///   solve_us    — the solver.solve() call, wall clock (time_sec is the
  ///                 solver's own accounting of the same interval).
  std::uint64_t encode_us = 0;
  std::uint64_t simplify_us = 0;
  std::uint64_t solve_us = 0;
  std::size_t cnf_vars = 0;
  std::size_t cnf_clauses = 0;
  /// Simplification savings, cumulative over frames 0..depth (what the
  /// encoder removed relative to the unsimplified encoding).
  std::uint64_t simplified_vars_removed = 0;
  std::uint64_t simplified_clauses_removed = 0;
  /// Tape preprocessing at this depth (zero with preprocess off;
  /// incremental sessions report the per-depth DELTA pass instead of
  /// the full-formula one; either pass runs once per depth race-wide
  /// but its counters are reported identically to every entrant, like
  /// simplify_us).  lits_strengthened counts self-subsuming resolution
  /// plus unit-propagation strips.
  std::uint64_t vars_eliminated = 0;
  std::uint64_t clauses_subsumed = 0;
  std::uint64_t lits_strengthened = 0;
  std::uint64_t preprocess_us = 0;
  /// Restart-boundary inprocessing by THIS engine's solver at this depth
  /// (zero with vivify_interval 0): vivification passes, literals they
  /// removed from learned clauses, and time spent.
  std::uint64_t vivify_rounds = 0;
  std::uint64_t vivified_literals = 0;
  std::uint64_t inprocess_us = 0;
  /// Incremental fast path at this depth (zero for scratch sessions or
  /// with --assumption-savepoint off): solve() calls that resumed from a
  /// kept assumption prefix vs. fell back to the root, decision levels
  /// the resumes reused, and clauses the frame-retirement sweep freed
  /// (flushes run inside prepare, batched — most depths read zero and
  /// the flushing depth reads the whole batch).
  std::uint64_t savepoint_hits = 0;
  std::uint64_t savepoint_misses = 0;
  std::uint64_t savepoint_levels_reused = 0;
  std::uint64_t retired_frame_clauses = 0;
  /// Formula-state footprint at the end of this depth: the tracker's
  /// high-water mark (race-wide under a shared tracker), this entrant's
  /// clause-arena bytes, and the shared tape's resident bytes (raw +
  /// frozen segments + preprocessing caches; a race-wide figure).
  std::uint64_t peak_bytes = 0;
  std::uint64_t arena_bytes = 0;
  std::uint64_t tape_bytes = 0;
  std::size_t core_clauses = 0;  // when UNSAT and cores tracked
  std::size_t core_vars = 0;
  bool rank_switched = false;  // dynamic policy fell back to VSIDS
};

struct BmcResult {
  enum class Status {
    CounterexampleFound,
    BoundReached,     // all instances up to max_depth UNSAT
    ResourceLimit,    // time/conflict budget exhausted
  };
  Status status = Status::BoundReached;
  std::optional<Trace> counterexample;  // set when a cex was found
  int counterexample_depth = -1;
  int last_completed_depth = -1;
  std::vector<DepthStats> per_depth;
  double total_time_sec = 0.0;
  /// Set when the run ended on a memory-ceiling breach (the status is
  /// ResourceLimit, indistinguishable from a timeout without this flag).
  bool mem_limit_hit = false;
  /// High-water mark of the tracked formula-state footprint over the
  /// whole run (race-wide when the tracker is shared).
  std::uint64_t peak_mem_bytes = 0;

  std::uint64_t total_decisions() const;
  std::uint64_t total_propagations() const;
  std::uint64_t total_conflicts() const;
};

class BmcEngine {
 public:
  BmcEngine(const model::Netlist& net, EngineConfig config,
            std::size_t bad_index = 0);

  /// Runs the loop of Fig. 5 (or plain BMC for the Baseline policy).
  BmcResult run();

  /// Snapshot of the accumulated register-axis scores (inspectable
  /// between runs; a shared source reports the race-wide merge).
  CoreRanking ranking() const { return rank_->snapshot(); }
  /// The ordering accumulation this engine feeds and projects from
  /// (engine-owned LocalRankSource, or the race-wide shared one).
  const RankSource& rank_source() const { return *rank_; }
  /// The formula this engine solves from (shared or engine-owned).
  const SharedTape& tape() const { return *tape_; }

 private:
  bool cancelled() const {
    return config_.stop != nullptr &&
           config_.stop->load(std::memory_order_relaxed);
  }
  bool uses_core_ranking() const {
    return config_.policy == OrderingPolicy::Static ||
           config_.policy == OrderingPolicy::Dynamic ||
           config_.policy == OrderingPolicy::Replace;
  }
  sat::SolverConfig solver_config_for_policy() const;

  const model::Netlist& net_;
  EngineConfig config_;
  std::size_t bad_index_;
  std::unique_ptr<SharedTape> owned_tape_;  // when no shared tape given
  SharedTape* tape_;
  std::unique_ptr<LocalRankSource> owned_rank_;  // when no shared source
  RankSource* rank_;
  RankProjector rank_refresher_;  // bound per depth under a shared source
  std::unique_ptr<MemTracker> owned_mem_;  // when no shared tracker given
  MemTracker* mem_;
};

/// Fingerprint of everything that determines the FORMULA an engine
/// solves — bad mode, frame-wise simplification, and the full tape
/// preprocessing recipe — but nothing about how it is searched (policy,
/// solver knobs, sharing).  Two configs with equal formula fingerprints
/// on the same (netlist, bad index) produce identical tape variable
/// spaces and identical eliminated-variable sets, so they may share a
/// clause pool; the portfolio's shard grouping and the service's result
/// cache both build on this one function, which is what keeps the two
/// keys from drifting apart (asserted by the api fingerprint tests).
std::uint64_t formula_fingerprint(const EngineConfig& config);

/// One-call convenience used by examples: checks property `bad_index` of
/// `net` up to `max_depth` with the given policy.
///
/// Deprecated for new call sites: prefer the stable façade in
/// api/refbmc.hpp (api::check over a CheckRequest), which adds racing,
/// budgets and result caching behind the same one-call shape.
BmcResult check_invariant(const model::Netlist& net, int max_depth,
                          OrderingPolicy policy = OrderingPolicy::Dynamic,
                          std::size_t bad_index = 0);

/// BMC with an automatically computed completeness threshold (§2 of the
/// paper: "k exceeds a predetermined completeness threshold" ⇒ the
/// property is proven).  The threshold is the reachable-state-space
/// diameter from explicit enumeration, so this is limited to small
/// models (≤ 24 latches / 16 inputs); `proven` is true when the bound
/// was exhausted without a counter-example.
struct CompleteCheckResult {
  BmcResult bmc;
  int threshold = 0;
  bool proven = false;
};
CompleteCheckResult check_invariant_complete(
    const model::Netlist& net, OrderingPolicy policy = OrderingPolicy::Dynamic,
    std::size_t bad_index = 0);

}  // namespace refbmc::bmc
