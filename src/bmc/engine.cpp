#include "bmc/engine.hpp"

#include <algorithm>

#include "bmc/shtrichman.hpp"
#include "mc/reach.hpp"
#include "sat/core_verify.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace refbmc::bmc {

std::optional<OrderingPolicy> parse_policy(std::string_view name) {
  for (const OrderingPolicy p : all_policies())
    if (name == to_string(p)) return p;
  return std::nullopt;
}

std::uint64_t BmcResult::total_decisions() const {
  std::uint64_t n = 0;
  for (const auto& d : per_depth) n += d.decisions;
  return n;
}
std::uint64_t BmcResult::total_propagations() const {
  std::uint64_t n = 0;
  for (const auto& d : per_depth) n += d.propagations;
  return n;
}
std::uint64_t BmcResult::total_conflicts() const {
  std::uint64_t n = 0;
  for (const auto& d : per_depth) n += d.conflicts;
  return n;
}

BmcEngine::BmcEngine(const model::Netlist& net, EngineConfig config,
                     std::size_t bad_index)
    : net_(net),
      config_(config),
      bad_index_(bad_index),
      unroller_(net, bad_index, config.bad_mode),
      ranking_(config.weighting) {
  REFBMC_EXPECTS(config_.start_depth >= 0);
  REFBMC_EXPECTS(config_.max_depth >= config_.start_depth);
}

sat::SolverConfig BmcEngine::solver_config_for_policy() const {
  sat::SolverConfig scfg = config_.solver;
  switch (config_.policy) {
    case OrderingPolicy::Baseline:
      scfg.rank_mode = sat::RankMode::None;
      break;
    case OrderingPolicy::Static:
    case OrderingPolicy::Shtrichman:
      scfg.rank_mode = sat::RankMode::Static;
      break;
    case OrderingPolicy::Dynamic:
      scfg.rank_mode = sat::RankMode::Dynamic;
      break;
    case OrderingPolicy::Replace:
      scfg.rank_mode = sat::RankMode::Replace;
      break;
  }
  scfg.dynamic_switch_divisor = config_.dynamic_switch_divisor;
  // Core tracking is what feeds the ranking refinement; the baseline
  // and the Shtrichman ordering do not need it (paper's standard BMC).
  scfg.track_cdg = uses_core_ranking() || config_.always_track_cdg;
  scfg.conflict_limit = config_.per_instance_conflict_limit;
  return scfg;
}

BmcResult BmcEngine::run() {
  if (config_.incremental) {
    REFBMC_EXPECTS_MSG(config_.bad_mode == BadMode::Last,
                       "incremental mode supports BadMode::Last only");
    REFBMC_EXPECTS_MSG(config_.policy != OrderingPolicy::Shtrichman,
                       "incremental mode does not support the Shtrichman "
                       "ordering");
    return run_incremental();
  }
  return run_scratch();
}

BmcResult BmcEngine::run_scratch() {
  BmcResult result;
  Timer total_timer;
  const Deadline total_deadline(config_.total_time_limit_sec);

  for (int k = config_.start_depth; k <= config_.max_depth; ++k) {
    if (total_deadline.expired() || cancelled()) {
      result.status = BmcResult::Status::ResourceLimit;
      break;
    }

    // gen_cnf_formula(M, P, k)
    const BmcInstance inst = unroller_.unroll(k);

    // sat_check(F, varRank): fresh solver per instance, as in Fig. 5.
    sat::SolverConfig scfg = solver_config_for_policy();
    const double remaining = total_deadline.remaining_sec();
    if (config_.per_instance_time_limit_sec > 0.0 ||
        config_.total_time_limit_sec > 0.0) {
      scfg.time_limit_sec =
          config_.per_instance_time_limit_sec > 0.0
              ? std::min(config_.per_instance_time_limit_sec, remaining)
              : remaining;
    }

    sat::Solver solver(scfg);
    solver.set_stop_flag(config_.stop);
    for (std::size_t v = 0; v < inst.num_vars(); ++v) solver.new_var();
    for (const auto& clause : inst.cnf.clauses) solver.add_clause(clause);

    if (config_.policy == OrderingPolicy::Shtrichman) {
      solver.set_variable_rank(shtrichman_rank(inst));
    } else if (uses_core_ranking()) {
      solver.set_variable_rank(ranking_.project(inst));
    }

    const sat::Result res = solver.solve();

    DepthStats stats;
    stats.depth = k;
    stats.result = res;
    stats.decisions = solver.stats().decisions;
    stats.propagations = solver.stats().propagations;
    stats.conflicts = solver.stats().conflicts;
    stats.time_sec = solver.stats().solve_time_sec;
    stats.cnf_vars = inst.num_vars();
    stats.cnf_clauses = inst.num_clauses();
    stats.rank_switched = solver.stats().rank_switched;

    if (res == sat::Result::Sat) {
      Trace trace = extract_trace(net_, inst, solver);
      if (config_.validate_counterexamples) {
        REFBMC_ASSERT_MSG(validate_trace(net_, trace, bad_index_),
                          "BMC produced a counter-example that does not "
                          "replay on the simulator");
      }
      result.per_depth.push_back(stats);
      result.status = BmcResult::Status::CounterexampleFound;
      result.counterexample = std::move(trace);
      result.counterexample_depth = k;
      result.last_completed_depth = k;
      break;
    }
    if (res == sat::Result::Unknown) {
      result.per_depth.push_back(stats);
      result.status = BmcResult::Status::ResourceLimit;
      break;
    }

    // UNSAT: update_ranking(unsatVars, varRank).
    if (scfg.track_cdg) {
      const std::vector<sat::Var> core_vars = solver.unsat_core_vars();
      stats.core_vars = core_vars.size();
      stats.core_clauses = solver.unsat_core().size();
      if (config_.verify_cores) {
        const sat::CoreCheck check = sat::verify_core(solver);
        REFBMC_ASSERT_MSG(check.core_unsat,
                          "extracted unsat core is not unsatisfiable");
      }
      if (uses_core_ranking()) ranking_.update(inst, core_vars, k);
    }
    result.per_depth.push_back(stats);
    result.last_completed_depth = k;
    REFBMC_DEBUG() << "depth " << k << " UNSAT, decisions=" << stats.decisions
                   << ", core_vars=" << stats.core_vars;
  }

  result.total_time_sec = total_timer.elapsed_sec();
  return result;
}

BmcResult BmcEngine::run_incremental() {
  BmcResult result;
  Timer total_timer;
  const Deadline total_deadline(config_.total_time_limit_sec);

  sat::Solver solver(solver_config_for_policy());
  solver.set_stop_flag(config_.stop);
  IncrementalUnroller unroller(net_, solver, bad_index_);
  const bool track_cores =
      uses_core_ranking() || config_.always_track_cdg;

  sat::SolverStats prev = solver.stats();
  for (int k = config_.start_depth; k <= config_.max_depth; ++k) {
    if (total_deadline.expired() || cancelled()) {
      result.status = BmcResult::Status::ResourceLimit;
      break;
    }
    const sat::Lit assumption = unroller.activation(k);
    if (uses_core_ranking())
      solver.set_variable_rank(ranking_.project(unroller.origin()));

    const double remaining = total_deadline.remaining_sec();
    double limit = -1.0;
    if (config_.per_instance_time_limit_sec > 0.0 ||
        config_.total_time_limit_sec > 0.0) {
      limit = config_.per_instance_time_limit_sec > 0.0
                  ? std::min(config_.per_instance_time_limit_sec, remaining)
                  : remaining;
    }
    solver.set_resource_limits(config_.per_instance_conflict_limit, limit);

    const sat::Result res = solver.solve({assumption});

    DepthStats stats;
    stats.depth = k;
    stats.result = res;
    stats.decisions = solver.stats().decisions - prev.decisions;
    stats.propagations = solver.stats().propagations - prev.propagations;
    stats.conflicts = solver.stats().conflicts - prev.conflicts;
    stats.time_sec = solver.stats().solve_time_sec - prev.solve_time_sec;
    stats.cnf_vars = unroller.origin().size();
    stats.cnf_clauses = solver.num_original_clauses();
    stats.rank_switched = solver.stats().rank_switched;
    prev = solver.stats();

    if (res == sat::Result::Sat) {
      BmcInstance view;  // origin/depth adaptor for trace extraction
      view.depth = k;
      view.origin = unroller.origin();
      Trace trace = extract_trace(net_, view, solver);
      if (config_.validate_counterexamples) {
        REFBMC_ASSERT_MSG(validate_trace(net_, trace, bad_index_),
                          "BMC produced a counter-example that does not "
                          "replay on the simulator");
      }
      result.per_depth.push_back(stats);
      result.status = BmcResult::Status::CounterexampleFound;
      result.counterexample = std::move(trace);
      result.counterexample_depth = k;
      result.last_completed_depth = k;
      break;
    }
    if (res == sat::Result::Unknown) {
      result.per_depth.push_back(stats);
      result.status = BmcResult::Status::ResourceLimit;
      break;
    }

    // UNSAT at depth k: harvest the core, refine, deactivate the guard.
    if (track_cores) {
      const std::vector<sat::Var> core_vars = solver.unsat_core_vars();
      stats.core_vars = core_vars.size();
      stats.core_clauses = solver.unsat_core().size();
      if (config_.verify_cores) {
        const sat::CoreCheck check = sat::verify_core(solver);
        REFBMC_ASSERT_MSG(check.core_unsat,
                          "extracted unsat core is not unsatisfiable");
      }
      if (uses_core_ranking())
        ranking_.update(unroller.origin(), core_vars, k);
    }
    unroller.deactivate(k);
    result.per_depth.push_back(stats);
    result.last_completed_depth = k;
  }

  result.total_time_sec = total_timer.elapsed_sec();
  return result;
}

BmcResult check_invariant(const model::Netlist& net, int max_depth,
                          OrderingPolicy policy, std::size_t bad_index) {
  EngineConfig cfg;
  cfg.policy = policy;
  cfg.max_depth = max_depth;
  BmcEngine engine(net, cfg, bad_index);
  return engine.run();
}

CompleteCheckResult check_invariant_complete(const model::Netlist& net,
                                             OrderingPolicy policy,
                                             std::size_t bad_index) {
  CompleteCheckResult result;
  result.threshold = mc::compute_diameter(net);
  result.bmc = check_invariant(net, result.threshold, policy, bad_index);
  result.proven = result.bmc.status == BmcResult::Status::BoundReached;
  return result;
}

}  // namespace refbmc::bmc
