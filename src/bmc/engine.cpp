#include "bmc/engine.hpp"

#include <algorithm>

#include "bmc/session.hpp"
#include "bmc/shtrichman.hpp"
#include "mc/reach.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sat/core_verify.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace refbmc::bmc {

std::optional<OrderingPolicy> parse_policy(std::string_view name) {
  for (const OrderingPolicy p : all_policies())
    if (name == to_string(p)) return p;
  return std::nullopt;
}

std::uint64_t formula_fingerprint(const EngineConfig& config) {
  // FNV-1a over the formula-shaping fields, each preceded by a field tag
  // so adjacent fields can never alias under reordering.  Extend this
  // list whenever EngineConfig grows an option that changes the encoded
  // clauses — the api fingerprint round-trip test flips every field and
  // will catch a forgotten one only if it is listed here or in
  // api::config_fingerprint.
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t tag, std::uint64_t v) {
    for (const std::uint64_t word : {tag, v})
      for (int byte = 0; byte < 8; ++byte) {
        h ^= (word >> (byte * 8)) & 0xff;
        h *= 1099511628211ull;
      }
  };
  mix(1, static_cast<std::uint64_t>(config.bad_mode));
  mix(2, config.simplify ? 1 : 0);
  mix(3, config.preprocess.enabled ? 1 : 0);
  mix(4, static_cast<std::uint64_t>(config.preprocess.bve_budget));
  mix(5, static_cast<std::uint64_t>(config.preprocess.bve_max_resolvent));
  mix(6, static_cast<std::uint64_t>(config.preprocess.rounds));
  return h;
}

std::uint64_t BmcResult::total_decisions() const {
  std::uint64_t n = 0;
  for (const auto& d : per_depth) n += d.decisions;
  return n;
}
std::uint64_t BmcResult::total_propagations() const {
  std::uint64_t n = 0;
  for (const auto& d : per_depth) n += d.propagations;
  return n;
}
std::uint64_t BmcResult::total_conflicts() const {
  std::uint64_t n = 0;
  for (const auto& d : per_depth) n += d.conflicts;
  return n;
}

BmcEngine::BmcEngine(const model::Netlist& net, EngineConfig config,
                     std::size_t bad_index)
    : net_(net), config_(config), bad_index_(bad_index) {
  REFBMC_EXPECTS(config_.start_depth >= 0);
  REFBMC_EXPECTS(config_.max_depth >= config_.start_depth);
  if (config_.rank_source != nullptr) {
    REFBMC_EXPECTS_MSG(
        config_.rank_source->weighting() == config_.weighting,
        "shared rank source weighting does not match the engine's");
    rank_ = config_.rank_source;
  } else {
    owned_rank_ = std::make_unique<LocalRankSource>(config_.weighting);
    rank_ = owned_rank_.get();
  }
  if (config_.shared_tape != nullptr) {
    SharedTape& shared = *config_.shared_tape;
    REFBMC_EXPECTS_MSG(&shared.net() == &net_ &&
                           shared.bad_index() == bad_index_ &&
                           shared.options().mode == config_.bad_mode &&
                           shared.options().simplify == config_.simplify &&
                           shared.options().constrain_init &&
                           shared.preprocess_options() == config_.preprocess,
                       "shared tape does not match the engine's formula "
                       "(netlist / property / bad mode / simplify / "
                       "preprocess)");
    tape_ = &shared;
  } else {
    EncoderOptions opts;
    opts.mode = config_.bad_mode;
    opts.constrain_init = true;
    opts.simplify = config_.simplify;
    owned_tape_ = std::make_unique<SharedTape>(net_, bad_index_, opts,
                                               config_.preprocess);
    tape_ = owned_tape_.get();
  }
  if (config_.mem_tracker != nullptr) {
    mem_ = config_.mem_tracker;
  } else {
    owned_mem_ = std::make_unique<MemTracker>();
    mem_ = owned_mem_.get();
  }
  if (config_.mem_ceiling_bytes > 0) mem_->set_ceiling(config_.mem_ceiling_bytes);
  // Idempotent under a shared tape: every racing entrant carries the same
  // tracker / cold flag, and SharedTape's setters transfer charges rather
  // than double-count (tape.cpp).
  tape_->set_mem_tracker(mem_);
  tape_->set_cold_storage(config_.tape_cold);
}

sat::SolverConfig BmcEngine::solver_config_for_policy() const {
  sat::SolverConfig scfg = config_.solver;
  switch (config_.policy) {
    case OrderingPolicy::Baseline:
      scfg.rank_mode = sat::RankMode::None;
      break;
    case OrderingPolicy::Static:
    case OrderingPolicy::Shtrichman:
      scfg.rank_mode = sat::RankMode::Static;
      break;
    case OrderingPolicy::Dynamic:
      scfg.rank_mode = sat::RankMode::Dynamic;
      break;
    case OrderingPolicy::Replace:
      scfg.rank_mode = sat::RankMode::Replace;
      break;
    case OrderingPolicy::Evsids:
      scfg.rank_mode = sat::RankMode::None;
      scfg.decision = sat::DecisionMode::Evsids;
      break;
  }
  scfg.dynamic_switch_divisor = config_.dynamic_switch_divisor;
  // Core tracking is what feeds the ranking refinement; the baseline
  // and the Shtrichman ordering do not need it (paper's standard BMC).
  scfg.track_cdg = uses_core_ranking() || config_.always_track_cdg;
  // The engine-level limit wins when set; otherwise a per-solve budget
  // the caller put into the base SolverConfig stays in force.
  if (config_.per_instance_conflict_limit >= 0)
    scfg.conflict_limit = config_.per_instance_conflict_limit;
  // The assumption savepoint only pays off for a persistent solver with
  // a growing assumption prefix; a scratch session's fresh solver has no
  // previous trail to resume, so keep its restart/solve loop on the
  // classic (root-boundary) path.
  if (!config_.incremental) scfg.assumption_savepoint = false;
  // Formula-state accounting: the solver charges its arena and watcher
  // heap here and bails (Result::Unknown) at the next conflict / decision
  // checkpoint once the ceiling is breached.
  scfg.mem_tracker = mem_;
  return scfg;
}

BmcResult BmcEngine::run() {
  REFBMC_EXPECTS_MSG(
      !(config_.incremental && config_.policy == OrderingPolicy::Shtrichman),
      "incremental mode does not support the Shtrichman ordering");

  BmcResult result;
  Timer total_timer;
  const Deadline total_deadline(config_.total_time_limit_sec);
  std::uint64_t retired_seen = 0;

  const sat::SolverConfig scfg = solver_config_for_policy();
  const std::unique_ptr<FormulaSession> session =
      config_.incremental
          ? make_incremental_session(*tape_, scfg, config_.share_pool,
                                     config_.share_producer)
          : make_scratch_session(*tape_, scfg, config_.share_pool,
                                 config_.share_producer);

  for (int k = config_.start_depth; k <= config_.max_depth; ++k) {
    if (total_deadline.expired() || cancelled()) {
      result.status = BmcResult::Status::ResourceLimit;
      break;
    }
    if (mem_->breached()) {
      // Depth boundary: the cheapest clean stop.  Mid-depth breaches are
      // caught by the solver's conflict/decision checkpoints instead.
      result.status = BmcResult::Status::ResourceLimit;
      result.mem_limit_hit = true;
      break;
    }

    // gen_cnf_formula(M, P, k): encode-once via the tape, query shape
    // from the session.  The phase clocks feed DepthStats (encode /
    // simplify / solve split) and, when a session is on, the trace.
    const std::uint64_t t_prep0 = obs::monotonic_now_us();
    const FormulaSession::Prepared prep = session->prepare(k);
    const std::uint64_t t_prep1 = obs::monotonic_now_us();
    sat::Solver& solver = *prep.solver;
    solver.set_stop_flag(config_.stop);

    // sat_check(F, varRank): project the accumulated model-axis scores
    // down to this instance's CNF variables through the origin map.
    std::uint64_t rank_epoch = 0;
    if (config_.policy == OrderingPolicy::Shtrichman) {
      solver.set_variable_rank(shtrichman_rank(solver, prep.property_lit));
    } else if (uses_core_ranking()) {
      solver.set_variable_rank(rank_->project(session->origin(), &rank_epoch));
      if (config_.rank_source != nullptr) {
        // Shared ordering: rivals may publish cores while this depth
        // solves; the solver re-projects at restart boundaries.
        rank_refresher_.bind(*rank_, session->origin(), rank_epoch);
        solver.set_rank_refresh(&rank_refresher_);
      }
    }

    // Engine-level limits take precedence; otherwise any per-solve budget
    // the caller put into the base SolverConfig stays in force.
    double limit = config_.solver.time_limit_sec;
    if (config_.per_instance_time_limit_sec > 0.0 ||
        config_.total_time_limit_sec > 0.0) {
      const double remaining = total_deadline.remaining_sec();
      limit = config_.per_instance_time_limit_sec > 0.0
                  ? std::min(config_.per_instance_time_limit_sec, remaining)
                  : remaining;
    }
    const std::int64_t conflict_limit =
        config_.per_instance_conflict_limit >= 0
            ? config_.per_instance_conflict_limit
            : config_.solver.conflict_limit;
    solver.set_resource_limits(conflict_limit, limit);

    const sat::SolverStats before = solver.stats();
    const std::uint64_t t_solve0 = obs::monotonic_now_us();
    const sat::Result res = solver.solve(prep.assumptions);
    const std::uint64_t t_solve1 = obs::monotonic_now_us();

    DepthStats stats;
    stats.depth = k;
    stats.result = res;
    stats.decisions = solver.stats().decisions - before.decisions;
    stats.propagations = solver.stats().propagations - before.propagations;
    stats.binary_propagations =
        solver.stats().binary_propagations - before.binary_propagations;
    stats.blocker_skips =
        solver.stats().blocker_skips - before.blocker_skips;
    stats.conflicts = solver.stats().conflicts - before.conflicts;
    stats.clauses_exported =
        solver.stats().clauses_exported - before.clauses_exported;
    stats.clauses_imported =
        solver.stats().clauses_imported - before.clauses_imported;
    stats.import_propagations =
        solver.stats().import_propagations - before.import_propagations;
    stats.rank_refreshes =
        solver.stats().rank_refreshes - before.rank_refreshes;
    stats.rank_epoch = rank_epoch;
    stats.peak_bytes = mem_->peak();
    stats.arena_bytes = solver.clause_db().arena().allocated_bytes();
    stats.tape_bytes = tape_->memory_bytes();
    stats.time_sec = solver.stats().solve_time_sec - before.solve_time_sec;
    stats.cnf_vars = prep.cnf_vars;
    stats.cnf_clauses = prep.cnf_clauses;
    const EncodeStats encode = tape_->stats_at(k);
    stats.simplified_vars_removed = encode.vars_removed;
    stats.simplified_clauses_removed = encode.clauses_removed;
    stats.rank_switched = solver.stats().rank_switched;
    stats.vivify_rounds =
        solver.stats().vivify_rounds - before.vivify_rounds;
    stats.vivified_literals =
        solver.stats().vivified_literals - before.vivified_literals;
    stats.inprocess_us = solver.stats().inprocess_us - before.inprocess_us;
    stats.savepoint_hits =
        solver.stats().savepoint_hits - before.savepoint_hits;
    stats.savepoint_misses =
        solver.stats().savepoint_misses - before.savepoint_misses;
    stats.savepoint_levels_reused =
        solver.stats().savepoint_levels_reused -
        before.savepoint_levels_reused;
    // Retirement flushes happen inside prepare() — before the `before`
    // snapshot — so this delta is taken against the previous depth's
    // cumulative count instead (scratch solvers always read zero).
    stats.retired_frame_clauses =
        solver.stats().retired_frame_clauses - retired_seen;
    retired_seen = solver.stats().retired_frame_clauses;
    if (config_.preprocess.enabled) {
      // The pass ran (cached) inside prepare(); pull its counters.  In a
      // race every entrant reports the same numbers — the simplification
      // is per-depth, race-wide, like the encode itself.  Incremental
      // sessions report their depth's DELTA pass (cumulative state, same
      // race-wide caching).
      const PreprocessStats ps =
          config_.incremental ? tape_->incremental_preprocess_stats_at(k)
                              : tape_->preprocess_stats_at(k);
      stats.vars_eliminated = ps.vars_eliminated;
      stats.clauses_subsumed = ps.clauses_subsumed;
      stats.lits_strengthened = ps.lits_strengthened;
      stats.preprocess_us = ps.preprocess_us;
    }
    // Phase split: prepare = this entrant's materialization cost; the
    // simplify share is the tape's fold/strash time for the frames that
    // became encoded at this depth (delta of the cumulative snapshots —
    // deterministic per k no matter which entrant triggered the encode).
    stats.encode_us = t_prep1 - t_prep0;
    const std::uint64_t prev_simplify_ns =
        k > 0 ? tape_->stats_at(k - 1).simplify_ns : 0;
    stats.simplify_us = (encode.simplify_ns - prev_simplify_ns) / 1000;
    stats.solve_us = t_solve1 - t_solve0;
    if (obs::trace_active()) {
      obs::trace_record_span(obs::EventKind::SpanEncode, t_prep0,
                             t_prep1 - t_prep0, k,
                             static_cast<std::int64_t>(prep.cnf_clauses));
      if (stats.simplify_us > 0)
        obs::trace_record_span(obs::EventKind::SpanSimplify, t_prep0,
                               stats.simplify_us, k,
                               static_cast<std::int64_t>(
                                   encode.vars_removed));
      obs::trace_record_span(obs::EventKind::SpanSolve, t_solve0,
                             t_solve1 - t_solve0, k,
                             static_cast<std::int64_t>(stats.conflicts));
      obs::trace_record_span(obs::EventKind::SpanDepth, t_prep0,
                             t_solve1 - t_prep0, k,
                             static_cast<std::int64_t>(res));
    }
    if (obs::metrics_active()) {
      obs::MetricsRegistry& m = obs::metrics();
      m.histogram("bmc.encode_us").observe(stats.encode_us);
      m.histogram("bmc.simplify_us").observe(stats.simplify_us);
      m.histogram("bmc.solve_us").observe(stats.solve_us);
      m.counter("bmc.depths").add(1);
    }

    if (res == sat::Result::Sat) {
      Trace trace = extract_trace(net_, k, session->origin(), solver);
      if (config_.validate_counterexamples) {
        REFBMC_ASSERT_MSG(validate_trace(net_, trace, bad_index_),
                          "BMC produced a counter-example that does not "
                          "replay on the simulator");
      }
      result.per_depth.push_back(stats);
      if (config_.on_depth) config_.on_depth(stats);
      result.status = BmcResult::Status::CounterexampleFound;
      result.counterexample = std::move(trace);
      result.counterexample_depth = k;
      result.last_completed_depth = k;
      break;
    }
    if (res == sat::Result::Unknown) {
      result.per_depth.push_back(stats);
      if (config_.on_depth) config_.on_depth(stats);
      result.status = BmcResult::Status::ResourceLimit;
      if (mem_->breached()) result.mem_limit_hit = true;
      break;
    }

    // UNSAT: the paper's update_ranking step — the core's variables are
    // projected to the model axis and published into the RankSource
    // (which a shared source fans out to every racing rival).
    if (scfg.track_cdg) {
      const std::vector<sat::Var> core_vars = solver.unsat_core_vars();
      stats.core_vars = core_vars.size();
      stats.core_clauses = solver.unsat_core().size();
      if (config_.verify_cores) {
        const sat::CoreCheck check = sat::verify_core(solver);
        REFBMC_ASSERT_MSG(check.core_unsat,
                          "extracted unsat core is not unsatisfiable");
      }
      if (uses_core_ranking()) {
        rank_->publish(session->origin(), core_vars, k);
        stats.ranks_published = 1;
      }
    }
    session->retire(k);
    result.per_depth.push_back(stats);
    if (config_.on_depth) config_.on_depth(stats);
    result.last_completed_depth = k;
    REFBMC_DEBUG() << "depth " << k << " UNSAT, decisions=" << stats.decisions
                   << ", core_vars=" << stats.core_vars;
  }

  result.total_time_sec = total_timer.elapsed_sec();
  result.peak_mem_bytes = mem_->peak();
  return result;
}

BmcResult check_invariant(const model::Netlist& net, int max_depth,
                          OrderingPolicy policy, std::size_t bad_index) {
  EngineConfig cfg;
  cfg.policy = policy;
  cfg.max_depth = max_depth;
  BmcEngine engine(net, cfg, bad_index);
  return engine.run();
}

CompleteCheckResult check_invariant_complete(const model::Netlist& net,
                                             OrderingPolicy policy,
                                             std::size_t bad_index) {
  CompleteCheckResult result;
  result.threshold = mc::compute_diameter(net);
  result.bmc = check_invariant(net, result.threshold, policy, bad_index);
  result.proven = result.bmc.status == BmcResult::Status::BoundReached;
  return result;
}

}  // namespace refbmc::bmc
