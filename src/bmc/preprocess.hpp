// Tape-level CNF preprocessing (paper-adjacent perf layer; ROADMAP
// "Inprocessing + formula preprocessing layer").
//
// The tape pipeline simplifies at the AIG level (constprop, strashing,
// latch aliasing), but the CNF that reaches the racing solvers is the
// raw Tseitin encoding.  This pass simplifies the *clause* level once
// per encoded depth, before replay into a scratch solver:
//
//   * unit propagation to fixpoint (root units stay in the output, so
//     the solver sees the same level-0 facts it would have derived);
//   * subsumption and self-subsuming resolution, occurrence lists +
//     64-bit signature filtering (SatELite's backward-subsumption idiom);
//   * pure-literal elimination;
//   * bounded variable elimination (NiVER: eliminate v only when the
//     non-tautological resolvents do not outnumber the clauses they
//     replace, under an occurrence budget and a resolvent-size cap).
//
// Soundness contract with the rest of the race:
//
//   * Variable numbering is PRESERVED.  Eliminated tape variables simply
//     never reach the solver (their var_map slot is sat::kVarUndef), so
//     VarOrigin projection — extract_trace, CDG core vars, RankProjector,
//     PoolEndpoint — keeps working unchanged on the kept variables.
//   * Every simplified clause is implied by the original tape range, so
//     lemmas derived from the simplified formula are tape-implied and
//     safe to export to the shared pool; imported lemmas over eliminated
//     variables are dropped at the endpoint (they can never bind here).
//   * FROZEN variables are never eliminated: inputs and latches (trace
//     extraction and cross-depth identity), per-frame property/bad
//     literals (assumption guards), and the encoder's auxiliary
//     constant variables.  Frozen variables may still be *assigned* by
//     unit propagation — the unit stays in the output, so the solver
//     derives the same root fact.
//   * Eliminated variables carry a witness (the clauses removed with
//     them): VarRemapper::complete_model extends any model of the
//     simplified formula to a model of the original, which is what makes
//     the elimination sound and lets tests check full-model round trips.
#pragma once

#include <cstdint>
#include <vector>

#include "sat/types.hpp"

namespace refbmc::bmc {

/// Knobs for the tape pass.  Equality-comparable: shard groups and
/// shared tapes must agree on the exact configuration or their solvers
/// would race on different formulas (scheduler group key / engine
/// shared-tape assert).
struct PreprocessOptions {
  bool enabled = false;
  /// NiVER occurrence budget: variable v is a candidate only while
  /// occ(v) + occ(~v) <= bve_budget.
  int bve_budget = 16;
  /// Resolvent-size cap: an elimination producing any resolvent longer
  /// than this is rejected (keeps clauses short even when counts allow).
  int bve_max_resolvent = 24;
  /// Maximum simplification rounds (each = subsume/SSR + pure + BVE +
  /// unit propagation); stops early at fixpoint.
  int rounds = 3;

  friend bool operator==(const PreprocessOptions&,
                         const PreprocessOptions&) = default;
};

struct PreprocessStats {
  std::uint64_t vars_eliminated = 0;  // BVE + pure + zero-occurrence
  std::uint64_t pure_literals = 0;    // subset of vars_eliminated
  std::uint64_t clauses_subsumed = 0;
  std::uint64_t lits_strengthened = 0;  // self-subsumption + UP strips
  std::uint64_t units_propagated = 0;
  std::uint64_t clauses_in = 0;
  std::uint64_t clauses_out = 0;
  std::uint64_t lits_in = 0;
  std::uint64_t lits_out = 0;
  std::uint64_t preprocess_us = 0;
};

/// Tape-var → solver-space bookkeeping for eliminated variables.
///
/// Kept variables keep their tape numbering (the session's var_map does
/// the tape→solver translation as before); eliminated variables carry a
/// witness stack entry so models extend back.  Witnesses are completed
/// in REVERSE elimination order: each entry's clauses may mention
/// variables eliminated later (already completed) or kept variables,
/// never variables eliminated earlier (their clauses were gone by then).
class VarRemapper {
 public:
  struct Witness {
    /// The eliminated literal; every stored clause contains it.
    sat::Lit lit;
    /// The clauses removed with the variable (BVE: the positive
    /// occurrence list; pure: all occurrences; zero-occ: empty).
    std::vector<std::vector<sat::Lit>> clauses;
    /// The remaining clauses removed with the variable (BVE: the
    /// negative occurrence list; empty otherwise).  `clauses` +
    /// `removed` together are the variable's full resurrection kit:
    /// re-adding both restores every constraint the elimination
    /// deleted, which is what lets an *incremental* delta reference a
    /// variable eliminated at an earlier depth (global strashing makes
    /// later frames point at earlier gate variables).
    std::vector<std::vector<sat::Lit>> removed;
  };

  VarRemapper() = default;
  explicit VarRemapper(int num_vars)
      : kept_(static_cast<std::size_t>(num_vars), 1) {}

  int num_vars() const { return static_cast<int>(kept_.size()); }
  bool is_kept(sat::Var v) const {
    return kept_[static_cast<std::size_t>(v)] != 0;
  }
  std::size_t num_eliminated() const { return witnesses_.size(); }
  const std::vector<Witness>& witnesses() const { return witnesses_; }

  /// Appends newly encoded tape variables (kept by default).  Used by
  /// the incremental delta pass, whose variable universe grows with
  /// each depth while the witness stack persists.
  void grow(int num_vars);

  /// Re-admits an eliminated variable: marks it kept again and returns
  /// (removes) its witness entry.  The caller must re-add the entry's
  /// `clauses` + `removed` kit to the formula — afterwards the variable
  /// behaves as if it had never been eliminated, and `complete_model`
  /// reads its value from the solver model like any kept variable.
  Witness resurrect(sat::Var v);

  /// Marks lit.var() eliminated, recording its witness clauses (each
  /// must contain `lit`) plus the opposite-polarity clauses removed
  /// with it (resurrection kit; not consulted by complete_model).
  void eliminate(sat::Lit lit, std::vector<std::vector<sat::Lit>> clauses,
                 std::vector<std::vector<sat::Lit>> removed = {});

  /// Extends a model of the simplified formula (tape-var indexed; kept
  /// variables assigned, eliminated ones l_Undef) to a model of the
  /// original formula.  Default: falsify the witness literal (which
  /// satisfies the removed opposite-polarity clauses); flip only when
  /// some witness clause is otherwise unsatisfied (the flip satisfies
  /// all of them — they all contain the literal).
  void complete_model(std::vector<sat::lbool>& values) const;

 private:
  std::vector<char> kept_;  // per tape var: 1 = survives to the solver
  std::vector<Witness> witnesses_;  // elimination order
};

struct SimplifyResult {
  /// Simplified clauses in tape variable space: unit clauses for every
  /// root-level fact first, then the surviving clauses in tape order.
  /// Deterministic for a given (clauses, frozen, options) input.
  std::vector<std::vector<sat::Lit>> clauses;
  VarRemapper remap;
  PreprocessStats stats;
  /// Post-run root assignment per tape variable (includes any seeded
  /// facts).  The incremental pass carries this across depths so later
  /// deltas are simplified against everything already known.
  std::vector<sat::lbool> assigned;
  /// True when the pass derived the empty clause (should not happen on
  /// a definitional tape) and returned the input unsimplified.
  bool fell_back = false;
};

class TapePreprocessor {
 public:
  explicit TapePreprocessor(PreprocessOptions opts) : opts_(opts) {}

  /// Simplifies `clauses` (over variables 0..num_vars-1) with the
  /// variables marked in `frozen` (size num_vars) protected from
  /// elimination.  Pure function of its inputs; thread-safe.
  ///
  /// `seed` (optional, size num_vars) pre-assigns root facts from
  /// earlier incremental deltas: seeded literals simplify the input
  /// (satisfied clauses die, false literals strip) but are neither
  /// counted as new units nor re-emitted in the output — the consuming
  /// solver already owns them.
  SimplifyResult run(int num_vars,
                     const std::vector<std::vector<sat::Lit>>& clauses,
                     const std::vector<char>& frozen,
                     const std::vector<sat::lbool>* seed = nullptr) const;

 private:
  PreprocessOptions opts_;
};

}  // namespace refbmc::bmc
