#include "bmc/unroller.hpp"

#include "util/assert.hpp"

namespace refbmc::bmc {

using model::NodeId;
using model::NodeKind;
using model::Signal;
using sat::Lit;

Unroller::Unroller(const model::Netlist& net, std::size_t bad_index,
                   BadMode mode)
    : net_(net), mode_(mode) {
  REFBMC_EXPECTS_MSG(bad_index < net.bad_properties().size(),
                     "model has no such bad property");
  bad_ = net.bad_properties()[bad_index].signal;
  cone_ = net.cone_of_influence({bad_});
  in_cone_.assign(net.num_nodes(), 0);
  for (const NodeId id : cone_) in_cone_[id] = 1;
}

BmcInstance Unroller::unroll_path(int k, bool constrain_init) const {
  REFBMC_EXPECTS(k >= 0);
  BmcInstance inst;
  inst.depth = k;

  // var_of[node][frame]; allocated on demand, but we simply allocate for
  // every cone node at every frame — the cone is exactly what Eq. 1 needs.
  const int frames = k + 1;
  std::vector<int> var_of(net_.num_nodes() * static_cast<std::size_t>(frames),
                          -1);
  const auto slot = [&](NodeId id, int frame) -> int& {
    return var_of[static_cast<std::size_t>(frame) * net_.num_nodes() + id];
  };

  const auto new_var = [&](NodeId id, int frame) {
    const int v = static_cast<int>(inst.origin.size());
    inst.origin.push_back(VarOrigin{id, frame});
    return v;
  };

  // Auxiliary constant-false variable, constrained by a unit clause.
  const int const_var = new_var(model::kConstNode, -1);
  inst.cnf.add_clause({Lit::make(const_var, true)});

  for (int f = 0; f < frames; ++f)
    for (const NodeId id : cone_)
      if (id != model::kConstNode) slot(id, f) = new_var(id, f);

  const auto lit_of = [&](Signal s, int frame) -> Lit {
    // const_var is constrained to 0, so the constant-false signal maps to
    // its positive literal and constant-true to its negation.
    if (s.is_const()) return Lit::make(const_var, s.negated());
    const int v = slot(s.node(), frame);
    REFBMC_ASSERT_MSG(v >= 0, "signal outside the cone of influence");
    return Lit::make(v, s.negated());
  };

  // Frame 0: initial-state predicate I(V^0) as unit clauses.
  if (constrain_init) {
    for (const NodeId id : net_.latches()) {
      if (!in_cone_[id]) continue;
      const sat::lbool init = net_.latch_init(id);
      if (init.is_undef()) continue;  // unconstrained initial value
      inst.cnf.add_clause(
          {Lit::make(slot(id, 0), /*negated=*/init.is_false())});
    }
  }

  // Each frame: Tseitin clauses for AND gates (the gate relations of T).
  for (int f = 0; f < frames; ++f) {
    for (const NodeId id : cone_) {
      if (net_.kind(id) != NodeKind::And) continue;
      const model::Node& n = net_.node(id);
      const Lit out = Lit::make(slot(id, f));
      const Lit a = lit_of(n.fanin0, f);
      const Lit b = lit_of(n.fanin1, f);
      inst.cnf.add_clause({~out, a});
      inst.cnf.add_clause({~out, b});
      inst.cnf.add_clause({out, ~a, ~b});
    }
  }

  // Transition coupling: latch value at frame f equals its next-state
  // function evaluated at frame f-1.
  for (int f = 1; f < frames; ++f) {
    for (const NodeId id : net_.latches()) {
      if (!in_cone_[id]) continue;
      const Lit cur = Lit::make(slot(id, f));
      const Lit prev_next = lit_of(net_.latch_next(id), f - 1);
      inst.cnf.add_clause({~cur, prev_next});
      inst.cnf.add_clause({cur, ~prev_next});
    }
  }

  // Expose per-frame bad literals and latch variables for the caller.
  inst.bad_frames.reserve(static_cast<std::size_t>(frames));
  inst.latch_frames.resize(static_cast<std::size_t>(frames));
  for (int f = 0; f < frames; ++f) {
    inst.bad_frames.push_back(lit_of(bad_, f));
    for (const NodeId id : net_.latches())
      if (in_cone_[id])
        inst.latch_frames[static_cast<std::size_t>(f)].push_back(
            static_cast<sat::Var>(slot(id, f)));
  }

  inst.cnf.num_vars = static_cast<int>(inst.origin.size());
  return inst;
}

BmcInstance Unroller::unroll(int k) const {
  BmcInstance inst = unroll_path(k, /*constrain_init=*/true);

  const auto new_var = [&](NodeId id, int frame) {
    const int v = static_cast<int>(inst.origin.size());
    inst.origin.push_back(VarOrigin{id, frame});
    return v;
  };

  // Property: ¬P, i.e. the bad signal.
  if (mode_ == BadMode::Last) {
    inst.bad_lit = inst.bad_frames[static_cast<std::size_t>(k)];
    inst.cnf.add_clause({inst.bad_lit});
  } else {
    // bad at some frame: fresh variable any ↔ ⋁_f bad_f, asserted true.
    // (One direction plus the assertion suffices for satisfiability, but
    // the full equivalence keeps models meaningful for trace extraction.)
    const int any = new_var(model::kConstNode, -2);
    const Lit any_lit = Lit::make(any);
    std::vector<Lit> big{~any_lit};
    for (const Lit bf : inst.bad_frames) {
      big.push_back(bf);
      inst.cnf.add_clause({any_lit, ~bf});
    }
    inst.cnf.add_clause(big);
    inst.cnf.add_clause({any_lit});
    inst.bad_lit = any_lit;
  }

  inst.cnf.num_vars = static_cast<int>(inst.origin.size());
  return inst;
}

// ---------------------------------------------------------------------------

IncrementalUnroller::IncrementalUnroller(const model::Netlist& net,
                                         sat::Solver& solver,
                                         std::size_t bad_index)
    : net_(net), solver_(solver) {
  REFBMC_EXPECTS_MSG(bad_index < net.bad_properties().size(),
                     "model has no such bad property");
  REFBMC_EXPECTS_MSG(solver.num_vars() == 0,
                     "incremental unroller needs a fresh solver");
  bad_ = net.bad_properties()[bad_index].signal;
  cone_ = net.cone_of_influence({bad_});
  in_cone_.assign(net.num_nodes(), 0);
  for (const NodeId id : cone_) in_cone_[id] = 1;

  const_var_ = fresh_var(model::kConstNode, -1);
  solver_.add_clause({Lit::make(const_var_, true)});
}

sat::Var IncrementalUnroller::fresh_var(model::NodeId node, int frame) {
  const sat::Var v = solver_.new_var();
  REFBMC_ASSERT(static_cast<std::size_t>(v) == origin_.size());
  origin_.push_back(VarOrigin{node, frame});
  return v;
}

sat::Lit IncrementalUnroller::lit_of(model::Signal s, int frame) const {
  if (s.is_const()) return Lit::make(const_var_, s.negated());
  const int v = var_of_[static_cast<std::size_t>(frame) * net_.num_nodes() +
                        s.node()];
  REFBMC_ASSERT_MSG(v >= 0, "signal outside the cone of influence");
  return Lit::make(v, s.negated());
}

void IncrementalUnroller::encode_frame(int f) {
  // Allocate this frame's variables.
  var_of_.resize(static_cast<std::size_t>(f + 1) * net_.num_nodes(), -1);
  for (const NodeId id : cone_) {
    if (id == model::kConstNode) continue;
    var_of_[static_cast<std::size_t>(f) * net_.num_nodes() + id] =
        fresh_var(id, f);
  }

  if (f == 0) {
    // Initial-state predicate I(V⁰).
    for (const NodeId id : net_.latches()) {
      if (!in_cone_[id]) continue;
      const sat::lbool init = net_.latch_init(id);
      if (init.is_undef()) continue;
      solver_.add_clause({Lit::make(
          var_of_[id], /*negated=*/init.is_false())});
    }
  } else {
    // Latch coupling to the previous frame.
    for (const NodeId id : net_.latches()) {
      if (!in_cone_[id]) continue;
      const Lit cur = lit_of(model::Signal::make(id), f);
      const Lit prev_next = lit_of(net_.latch_next(id), f - 1);
      solver_.add_clause({~cur, prev_next});
      solver_.add_clause({cur, ~prev_next});
    }
  }

  // Gate relations of this frame.
  for (const NodeId id : cone_) {
    if (net_.kind(id) != NodeKind::And) continue;
    const model::Node& n = net_.node(id);
    const Lit out = lit_of(model::Signal::make(id), f);
    const Lit a = lit_of(n.fanin0, f);
    const Lit b = lit_of(n.fanin1, f);
    solver_.add_clause({~out, a});
    solver_.add_clause({~out, b});
    solver_.add_clause({out, ~a, ~b});
  }
}

sat::Lit IncrementalUnroller::activation(int k) {
  REFBMC_EXPECTS(k >= 0);
  while (encoded_depth_ < k) encode_frame(++encoded_depth_);
  while (static_cast<int>(activation_.size()) <= k) {
    const int depth = static_cast<int>(activation_.size());
    const sat::Var a = fresh_var(model::kConstNode, -2);
    const Lit a_lit = Lit::make(a);
    // Guarded property: assuming a_lit asserts bad at frame `depth`.
    solver_.add_clause({~a_lit, lit_of(bad_, depth)});
    activation_.push_back(a_lit);
    deactivated_.push_back(0);
  }
  return activation_[static_cast<std::size_t>(k)];
}

void IncrementalUnroller::deactivate(int k) {
  REFBMC_EXPECTS(k >= 0 &&
                 static_cast<std::size_t>(k) < activation_.size());
  if (deactivated_[static_cast<std::size_t>(k)]) return;
  deactivated_[static_cast<std::size_t>(k)] = 1;
  solver_.add_clause({~activation_[static_cast<std::size_t>(k)]});
}

}  // namespace refbmc::bmc
