// Time-frame expansion: builds the CNF of the paper's Eq. 1,
//
//     I(V^0) ∧ ⋀_{1<=i<=k} T(V^{i-1}, W^i, V^i) ∧ ¬P(V^k),
//
// for a Netlist model via Tseitin encoding of the (cone-of-influence
// restricted) AIG at every frame.
//
// Encoding choices:
//  * one CNF variable per (node, frame) for nodes in the sequential COI
//    of the checked bad signal, plus one auxiliary constant-false var;
//  * AND gates: 3 Tseitin clauses per frame;
//  * latches: 2 equivalence clauses connecting latch(i) to its next-state
//    function at frame i-1; initial values as unit clauses at frame 0
//    (uninitialised latches are left unconstrained);
//  * property: BadMode::Last asserts bad at frame k exactly (Eq. 1);
//    BadMode::Any asserts bad at some frame ≤ k (the common alternative),
//    encoded with a fresh disjunction variable.
#pragma once

#include "bmc/cnf.hpp"
#include "model/netlist.hpp"
#include "sat/solver.hpp"

namespace refbmc::bmc {

enum class BadMode {
  Last,  // counter-example of length exactly k (paper's Eq. 1)
  Any,   // counter-example of length at most k
};

class Unroller {
 public:
  /// `bad_index` selects the checked property of the model.
  Unroller(const model::Netlist& net, std::size_t bad_index = 0,
           BadMode mode = BadMode::Last);

  /// Builds the full instance for depth k (independent of previous calls;
  /// the paper's loop creates each instance from scratch).
  BmcInstance unroll(int k) const;

  /// Builds only the path portion: gate relations and latch couplings for
  /// frames 0..k, the initial-state predicate iff `constrain_init`, and
  /// NO property clause — per-frame bad literals are exposed in
  /// `bad_frames` for the caller to constrain (used by k-induction).
  BmcInstance unroll_path(int k, bool constrain_init) const;

  /// Nodes in the sequential cone of influence of the property.
  const std::vector<model::NodeId>& cone() const { return cone_; }
  BadMode mode() const { return mode_; }

 private:
  const model::Netlist& net_;
  model::Signal bad_;
  BadMode mode_;
  std::vector<model::NodeId> cone_;        // sorted
  std::vector<char> in_cone_;              // per node
};

/// Incremental time-frame expansion (Eén–Sörensson style): one persistent
/// solver accumulates the frames; the depth-k property ¬P(Vᵏ) is guarded
/// by an activation literal and enabled via solve-under-assumptions.
/// Learned clauses — and, for the refined ordering, VSIDS scores — carry
/// over between depths.  This realises the combination with incremental
/// SAT that the paper's conclusion proposes.
class IncrementalUnroller {
 public:
  /// Clauses are pushed into `solver` (which must be fresh and outlive
  /// this object).  Only BadMode::Last is supported.
  IncrementalUnroller(const model::Netlist& net, sat::Solver& solver,
                      std::size_t bad_index = 0);

  /// Extends the encoding to depth k (monotonically) and returns the
  /// assumption literal that asserts "bad at frame k".
  sat::Lit activation(int k);

  /// Permanently deactivates the depth-k property (call after UNSAT at k,
  /// before moving on; keeps BCP from revisiting the dead guard clause).
  void deactivate(int k);

  /// CNF-variable origins, growing as frames are added (activation and
  /// auxiliary variables map to the constant node).
  const std::vector<VarOrigin>& origin() const { return origin_; }
  int encoded_depth() const { return encoded_depth_; }
  const std::vector<model::NodeId>& cone() const { return cone_; }

 private:
  sat::Var fresh_var(model::NodeId node, int frame);
  sat::Lit lit_of(model::Signal s, int frame) const;
  void encode_frame(int f);

  const model::Netlist& net_;
  sat::Solver& solver_;
  model::Signal bad_;
  std::vector<model::NodeId> cone_;
  std::vector<char> in_cone_;
  std::vector<VarOrigin> origin_;
  std::vector<int> var_of_;  // node × frame → cnf var (-1 = absent)
  std::vector<sat::Lit> activation_;  // per depth
  std::vector<char> deactivated_;     // per depth
  int const_var_ = -1;
  int encoded_depth_ = -1;
};

}  // namespace refbmc::bmc
