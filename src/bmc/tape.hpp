// Replayable clause streams and the thread-safe shared formula.
//
// A ClauseTape records the encoder's output — variable creations and
// clauses, in order — so the formula can be replayed into any number of
// sinks without re-encoding: a fresh solver per depth (scratch session),
// a persistent solver fed deltas (incremental session), or the P racing
// solvers of the portfolio (encode-once racing).  A Cursor tracks how far
// one consumer has replayed and carries the tape-var → sink-var
// translation (sinks may interleave their own variables, e.g. activation
// literals, so the spaces differ in general).
//
// SharedTape wraps tape + FrameEncoder behind a mutex: ensure_depth(k)
// encodes frames at most once regardless of how many threads ask, and
// replay_to() streams a consumer forward.  Replay happens under the lock
// too — clause copying is orders of magnitude cheaper than solving, so
// contention is negligible next to the O(P × k²) re-encoding it replaces.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "bmc/encoder.hpp"
#include "bmc/preprocess.hpp"

namespace refbmc::bmc {

class ClauseTape final : public ClauseSink {
 public:
  /// A position in the stream; taken with mark(), consumed by replay().
  struct Mark {
    std::size_t ops = 0;
    std::size_t lits = 0;
    std::size_t vars = 0;
    std::size_t clauses = 0;
  };

  /// One consumer's replay state.  var_map[i] is the sink variable that
  /// tape variable i became.
  struct Cursor {
    std::size_t op = 0;
    std::size_t lit = 0;
    std::vector<sat::Var> var_map;

    /// Translates a tape-space literal into the sink's variable space.
    /// Only valid for variables the cursor has already replayed.
    sat::Lit translate(sat::Lit tape_lit) const {
      REFBMC_EXPECTS(static_cast<std::size_t>(tape_lit.var()) <
                     var_map.size());
      return sat::Lit::make(var_map[static_cast<std::size_t>(tape_lit.var())],
                            tape_lit.negated());
    }
  };

  // ---- recording (ClauseSink) -----------------------------------------
  sat::Var add_var(const VarOrigin& origin) override {
    const auto v = static_cast<sat::Var>(origin_.size());
    origin_.push_back(origin);
    ops_.push_back(kVarOp);
    return v;
  }
  void add_clause(std::span<const sat::Lit> lits) override {
    ops_.push_back(static_cast<std::int32_t>(lits.size()));
    lits_.insert(lits_.end(), lits.begin(), lits.end());
    ++num_clauses_;
  }

  // ---- reading ---------------------------------------------------------
  Mark mark() const {
    return Mark{ops_.size(), lits_.size(), origin_.size(), num_clauses_};
  }
  std::size_t num_vars() const { return origin_.size(); }
  std::size_t num_clauses() const { return num_clauses_; }
  const std::vector<VarOrigin>& origin() const { return origin_; }

  /// Replays events in [cursor, upto) into `out`, advancing the cursor.
  void replay(Cursor& cursor, const Mark& upto, ClauseSink& out) const;

  /// Copies the clauses recorded up to `upto`, in tape variable space
  /// (the preprocessing pass consumes them without a sink).
  void export_clauses(const Mark& upto,
                      std::vector<std::vector<sat::Lit>>& out) const;

  /// Copies the clauses recorded in (from, upto], in tape variable
  /// space — one depth's delta for the incremental preprocessing pass.
  void export_clauses_range(const Mark& from, const Mark& upto,
                            std::vector<std::vector<sat::Lit>>& out) const;

 private:
  static constexpr std::int32_t kVarOp = -1;

  std::vector<std::int32_t> ops_;  // kVarOp or a literal count
  std::vector<sat::Lit> lits_;     // flattened clause literals
  std::vector<VarOrigin> origin_;  // per tape variable
  std::size_t num_clauses_ = 0;
};

/// The one formula of a (netlist, property) pair, encoded exactly once
/// and consumed by any number of sessions, possibly concurrently.
class SharedTape {
 public:
  SharedTape(const model::Netlist& net, std::size_t bad_index = 0,
             EncoderOptions opts = {}, PreprocessOptions preprocess = {});

  const model::Netlist& net() const { return net_; }
  std::size_t bad_index() const { return bad_index_; }
  const EncoderOptions& options() const { return opts_; }
  /// Immutable after construction; racing consumers must agree on it
  /// (the engine asserts a shared tape's options match its own config).
  const PreprocessOptions& preprocess_options() const { return preprocess_; }

  /// Encodes frames up to depth k if not yet present.  Thread-safe; the
  /// frames_encoded() counter advances at most once per depth, ever.
  void ensure_depth(int k);

  /// Replays everything up to depth k's mark (ensuring it first) into
  /// `out`, advancing `cursor`.  Thread-safe.
  void replay_to(int k, ClauseTape::Cursor& cursor, ClauseSink& out);

  /// Replays the PREPROCESSED formula of depth k into a fresh consumer
  /// (the cursor must not have replayed anything yet: the simplified
  /// stream is per-depth, not incremental).  Kept tape variables are
  /// created in tape order so their sink numbering matches a plain
  /// replay's relative order; eliminated variables occupy a
  /// sat::kVarUndef slot in the var_map and never reach the sink.  The
  /// simplification runs (and is cached) once per depth, race-wide.
  /// Thread-safe.
  void replay_simplified_to(int k, ClauseTape::Cursor& cursor,
                            ClauseSink& out);

  /// Replays the PREPROCESSED DELTA of depth f — the clauses frame f
  /// added on top of frame f-1, simplified against everything already
  /// replayed — into an incremental consumer whose cursor is parked at
  /// depth f-1's mark (or fresh, for f = 0).  Unlike
  /// replay_simplified_to, the simplification state is cumulative: root
  /// facts from earlier deltas seed the pass, the VarRemapper witness
  /// stack is shared across depths, and a delta that references a
  /// variable eliminated at an earlier depth transparently RESURRECTS
  /// it (the variable is re-created in the sink and its removed-clause
  /// kit is re-emitted before the delta, restoring every deleted
  /// constraint).  Deltas are computed (and cached) once per depth,
  /// race-wide, so every incremental consumer sees the identical
  /// stream.  Thread-safe.
  void replay_simplified_delta(int f, ClauseTape::Cursor& cursor,
                               ClauseSink& out);

  /// Preprocessing counters for depth k (runs the cached pass first).
  PreprocessStats preprocess_stats_at(int k);
  /// Preprocessing counters for depth k's incremental DELTA (runs the
  /// cached delta passes up to k first).
  PreprocessStats incremental_preprocess_stats_at(int k);
  /// The cumulative incremental remapper as of depth k's delta (witness
  /// stack for model completion across depths): exactly the elimination
  /// state a consumer that replayed deltas 0..k is solving under, even
  /// when a faster consumer has already advanced the cumulative state
  /// past k.  Returned by value (snapshot).
  VarRemapper incremental_remapper_at(int k);
  /// Clause count of the simplified formula at depth k — what a
  /// preprocessed scratch consumer's solver must end up holding (the
  /// session asserts the round trip).
  std::size_t simplified_clauses_at(int k);
  /// The remapper of depth k (witness stack for model completion).
  /// Returned by value: the per-depth cache may reallocate as deeper
  /// frames are simplified.
  VarRemapper remapper_at(int k);

  // Tape-space literals (ensure_depth is implied); translate through a
  // replay cursor before handing them to a sink's solver.
  sat::Lit property(int k);
  sat::Lit bad(int frame);
  std::vector<sat::Lit> latch_lits(int frame);

  /// Formula size at depth k's mark (what a scratch consumer sees).
  ClauseTape::Mark mark_at(int k);

  std::uint64_t frames_encoded() const;
  /// Cumulative encoder counters after frame k (simplification savings
  /// for DepthStats).
  EncodeStats stats_at(int k);
  EncodeStats stats() const;

 private:
  void ensure_locked(int k);
  void ensure_simplified_locked(int k);
  void ensure_inc_delta_locked(int f);
  void build_frozen_locked(int k, std::size_t num_vars,
                           std::vector<char>& frozen) const;

  /// One depth's cached simplification (clauses + remapper + stats).
  struct SimplifiedDepth {
    bool ready = false;
    SimplifyResult result;
  };

  /// One depth's cached incremental delta: the variables resurrected
  /// for it, which of its new variables survived, and the simplified
  /// delta clauses (kit clauses included), all in tape space.
  /// Consumers replay deltas strictly in depth order, so caching makes
  /// the stream identical race-wide — and each delta snapshots the
  /// remapper as of its own depth, so a consumer completing a model at
  /// depth k is immune to faster consumers advancing the cumulative
  /// state past k.
  struct IncDelta {
    bool ready = false;
    std::vector<sat::Var> resurrected;       // sink creation order
    std::vector<char> kept_new;              // per var in (prev, mark]
    std::vector<std::vector<sat::Lit>> clauses;  // kits + simplified delta
    PreprocessStats stats;
    VarRemapper remap_after;                 // cumulative, as of this depth
  };

  mutable std::mutex mu_;
  const model::Netlist& net_;
  std::size_t bad_index_;
  EncoderOptions opts_;
  PreprocessOptions preprocess_;
  ClauseTape tape_;
  FrameEncoder encoder_;
  std::vector<ClauseTape::Mark> depth_marks_;  // per encoded depth
  std::vector<EncodeStats> depth_stats_;       // cumulative per depth
  std::vector<SimplifiedDepth> simplified_;    // per depth, lazy
  // Cumulative incremental preprocessing state (delta mode): witness
  // stack shared across depths + root facts carried forward.
  std::vector<IncDelta> inc_deltas_;           // per depth, lazy
  VarRemapper inc_remap_{0};
  std::vector<sat::lbool> inc_assigned_;       // per tape var
};

}  // namespace refbmc::bmc
