// Replayable clause streams and the thread-safe shared formula.
//
// A ClauseTape records the encoder's output — variable creations and
// clauses, in order — so the formula can be replayed into any number of
// sinks without re-encoding: a fresh solver per depth (scratch session),
// a persistent solver fed deltas (incremental session), or the P racing
// solvers of the portfolio (encode-once racing).  A Cursor tracks how far
// one consumer has replayed and carries the tape-var → sink-var
// translation (sinks may interleave their own variables, e.g. activation
// literals, so the spaces differ in general).
//
// SharedTape wraps tape + FrameEncoder behind a mutex: ensure_depth(k)
// encodes frames at most once regardless of how many threads ask, and
// replay_to() streams a consumer forward.  Replay happens under the lock
// too — clause copying is orders of magnitude cheaper than solving, so
// contention is negligible next to the O(P × k²) re-encoding it replaces.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "bmc/encoder.hpp"

namespace refbmc::bmc {

class ClauseTape final : public ClauseSink {
 public:
  /// A position in the stream; taken with mark(), consumed by replay().
  struct Mark {
    std::size_t ops = 0;
    std::size_t lits = 0;
    std::size_t vars = 0;
    std::size_t clauses = 0;
  };

  /// One consumer's replay state.  var_map[i] is the sink variable that
  /// tape variable i became.
  struct Cursor {
    std::size_t op = 0;
    std::size_t lit = 0;
    std::vector<sat::Var> var_map;

    /// Translates a tape-space literal into the sink's variable space.
    /// Only valid for variables the cursor has already replayed.
    sat::Lit translate(sat::Lit tape_lit) const {
      REFBMC_EXPECTS(static_cast<std::size_t>(tape_lit.var()) <
                     var_map.size());
      return sat::Lit::make(var_map[static_cast<std::size_t>(tape_lit.var())],
                            tape_lit.negated());
    }
  };

  // ---- recording (ClauseSink) -----------------------------------------
  sat::Var add_var(const VarOrigin& origin) override {
    const auto v = static_cast<sat::Var>(origin_.size());
    origin_.push_back(origin);
    ops_.push_back(kVarOp);
    return v;
  }
  void add_clause(std::span<const sat::Lit> lits) override {
    ops_.push_back(static_cast<std::int32_t>(lits.size()));
    lits_.insert(lits_.end(), lits.begin(), lits.end());
    ++num_clauses_;
  }

  // ---- reading ---------------------------------------------------------
  Mark mark() const {
    return Mark{ops_.size(), lits_.size(), origin_.size(), num_clauses_};
  }
  std::size_t num_vars() const { return origin_.size(); }
  std::size_t num_clauses() const { return num_clauses_; }
  const std::vector<VarOrigin>& origin() const { return origin_; }

  /// Replays events in [cursor, upto) into `out`, advancing the cursor.
  void replay(Cursor& cursor, const Mark& upto, ClauseSink& out) const;

 private:
  static constexpr std::int32_t kVarOp = -1;

  std::vector<std::int32_t> ops_;  // kVarOp or a literal count
  std::vector<sat::Lit> lits_;     // flattened clause literals
  std::vector<VarOrigin> origin_;  // per tape variable
  std::size_t num_clauses_ = 0;
};

/// The one formula of a (netlist, property) pair, encoded exactly once
/// and consumed by any number of sessions, possibly concurrently.
class SharedTape {
 public:
  SharedTape(const model::Netlist& net, std::size_t bad_index = 0,
             EncoderOptions opts = {});

  const model::Netlist& net() const { return net_; }
  std::size_t bad_index() const { return bad_index_; }
  const EncoderOptions& options() const { return opts_; }

  /// Encodes frames up to depth k if not yet present.  Thread-safe; the
  /// frames_encoded() counter advances at most once per depth, ever.
  void ensure_depth(int k);

  /// Replays everything up to depth k's mark (ensuring it first) into
  /// `out`, advancing `cursor`.  Thread-safe.
  void replay_to(int k, ClauseTape::Cursor& cursor, ClauseSink& out);

  // Tape-space literals (ensure_depth is implied); translate through a
  // replay cursor before handing them to a sink's solver.
  sat::Lit property(int k);
  sat::Lit bad(int frame);
  std::vector<sat::Lit> latch_lits(int frame);

  /// Formula size at depth k's mark (what a scratch consumer sees).
  ClauseTape::Mark mark_at(int k);

  std::uint64_t frames_encoded() const;
  /// Cumulative encoder counters after frame k (simplification savings
  /// for DepthStats).
  EncodeStats stats_at(int k);
  EncodeStats stats() const;

 private:
  void ensure_locked(int k);

  mutable std::mutex mu_;
  const model::Netlist& net_;
  std::size_t bad_index_;
  EncoderOptions opts_;
  ClauseTape tape_;
  FrameEncoder encoder_;
  std::vector<ClauseTape::Mark> depth_marks_;  // per encoded depth
  std::vector<EncodeStats> depth_stats_;       // cumulative per depth
};

}  // namespace refbmc::bmc
