// Replayable clause streams and the thread-safe shared formula.
//
// A ClauseTape records the encoder's output — variable creations and
// clauses, in order — so the formula can be replayed into any number of
// sinks without re-encoding: a fresh solver per depth (scratch session),
// a persistent solver fed deltas (incremental session), or the P racing
// solvers of the portfolio (encode-once racing).  A Cursor tracks how far
// one consumer has replayed and carries the tape-var → sink-var
// translation (sinks may interleave their own variables, e.g. activation
// literals, so the spaces differ in general).
//
// SharedTape wraps tape + FrameEncoder behind a mutex: ensure_depth(k)
// encodes frames at most once regardless of how many threads ask, and
// replay_to() streams a consumer forward.  Replay happens under the lock
// too — clause copying is orders of magnitude cheaper than solving, so
// contention is negligible next to the O(P × k²) re-encoding it replaces.
// Cold storage (PR 10): freeze_prefix() re-encodes an already-replayed
// event prefix into the compact codec form (tape_codec.hpp) and drops
// the raw vectors — indices stay absolute, every reader goes through
// scan(), and late joiners decode transparently.  SharedTape's
// set_cold_storage(true) freezes each depth's prefix as the next one is
// encoded and keeps the consumed SimplifiedDepth/IncDelta caches
// encoded too.  Representation-only: verdicts, counters and replay
// streams are bit-identical with the mode off or on.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "bmc/encoder.hpp"
#include "bmc/preprocess.hpp"
#include "util/mem_tracker.hpp"

namespace refbmc::bmc {

class ClauseTape final : public ClauseSink {
 public:
  /// A position in the stream; taken with mark(), consumed by replay().
  struct Mark {
    std::size_t ops = 0;
    std::size_t lits = 0;
    std::size_t vars = 0;
    std::size_t clauses = 0;
  };

  /// One consumer's replay state.  var_map[i] is the sink variable that
  /// tape variable i became.
  struct Cursor {
    std::size_t op = 0;
    std::size_t lit = 0;
    std::vector<sat::Var> var_map;

    /// Translates a tape-space literal into the sink's variable space.
    /// Only valid for variables the cursor has already replayed.
    sat::Lit translate(sat::Lit tape_lit) const {
      REFBMC_EXPECTS(static_cast<std::size_t>(tape_lit.var()) <
                     var_map.size());
      return sat::Lit::make(var_map[static_cast<std::size_t>(tape_lit.var())],
                            tape_lit.negated());
    }
  };

  // ---- recording (ClauseSink) -----------------------------------------
  sat::Var add_var(const VarOrigin& origin) override {
    const auto v = static_cast<sat::Var>(origin_.size());
    origin_.push_back(origin);
    ops_.push_back(kVarOp);
    return v;
  }
  void add_clause(std::span<const sat::Lit> lits) override {
    ops_.push_back(static_cast<std::int32_t>(lits.size()));
    lits_.insert(lits_.end(), lits.begin(), lits.end());
    ++num_clauses_;
  }

  // ---- reading ---------------------------------------------------------
  Mark mark() const {
    return Mark{base_ops_ + ops_.size(), base_lits_ + lits_.size(),
                origin_.size(), num_clauses_};
  }
  std::size_t num_vars() const { return origin_.size(); }
  std::size_t num_clauses() const { return num_clauses_; }
  const std::vector<VarOrigin>& origin() const { return origin_; }

  /// Replays events in [cursor, upto) into `out`, advancing the cursor.
  void replay(Cursor& cursor, const Mark& upto, ClauseSink& out) const;

  /// Copies the clauses recorded up to `upto`, in tape variable space
  /// (the preprocessing pass consumes them without a sink).
  void export_clauses(const Mark& upto,
                      std::vector<std::vector<sat::Lit>>& out) const;

  /// Copies the clauses recorded in (from, upto], in tape variable
  /// space — one depth's delta for the incremental preprocessing pass.
  void export_clauses_range(const Mark& from, const Mark& upto,
                            std::vector<std::vector<sat::Lit>>& out) const;

  /// Walks ops [op_begin, op_end): on_vars(n) per run of add_var ops,
  /// on_clause(lits) per clause in tape literal space (span valid until
  /// the next callback).  Transparent over frozen segments — they are
  /// decoded on the fly.  Either callback may be empty.
  void scan(std::size_t op_begin, std::size_t op_end,
            const std::function<void(std::size_t)>& on_vars,
            const std::function<void(std::span<const sat::Lit>)>& on_clause)
      const;

  // ---- cold storage ----------------------------------------------------
  /// Re-encodes every raw event below `upto` into a compact codec
  /// segment and drops the raw words.  Indices stay absolute (mark(),
  /// Cursor positions and replay() keep working unchanged); reading a
  /// frozen range decodes it through scan().  Monotone: upto must not
  /// precede an earlier freeze.
  void freeze_prefix(const Mark& upto);

  /// Capacity hints for the recording vectors, ADDED to what is already
  /// stored (netlist-derived, see SharedTape's per-frame estimate).
  void reserve_additional(std::size_t ops, std::size_t lits) {
    ops_.reserve(ops_.size() + ops);
    lits_.reserve(lits_.size() + lits);
  }

  std::size_t frozen_segments() const { return frozen_.size(); }
  /// What the whole event stream costs in raw vector form (4 bytes per
  /// op + 4 per literal), frozen or not — the codec's baseline.
  std::size_t raw_bytes() const {
    return (base_ops_ + ops_.size()) * sizeof(std::int32_t) +
           (base_lits_ + lits_.size()) * sizeof(sat::Lit);
  }
  /// Encoded bytes held by frozen segments.
  std::size_t encoded_bytes() const {
    std::size_t n = 0;
    for (const FrozenSegment& s : frozen_) n += s.bytes.size();
    return n;
  }
  /// The tape's actual heap footprint: raw-tail capacity + frozen
  /// segment bytes + the origin vector.
  std::size_t memory_bytes() const {
    std::size_t n = ops_.capacity() * sizeof(std::int32_t) +
                    lits_.capacity() * sizeof(sat::Lit) +
                    origin_.capacity() * sizeof(VarOrigin);
    for (const FrozenSegment& s : frozen_) n += s.bytes.capacity();
    return n;
  }

 private:
  static constexpr std::int32_t kVarOp = -1;

  /// One frozen (codec-encoded) prefix range; segments are contiguous
  /// from op 0 and cover base_ops_ ops / base_lits_ lits in total.
  struct FrozenSegment {
    std::size_t ops = 0;
    std::size_t lits = 0;
    std::vector<std::uint8_t> bytes;
  };

  std::vector<FrozenSegment> frozen_;  // encoded prefix, in order
  std::size_t base_ops_ = 0;   // absolute index of ops_[0]
  std::size_t base_lits_ = 0;  // absolute index of lits_[0]
  std::vector<std::int32_t> ops_;  // raw tail: kVarOp or a literal count
  std::vector<sat::Lit> lits_;     // raw tail: flattened clause literals
  std::vector<VarOrigin> origin_;  // per tape variable (never frozen)
  std::size_t num_clauses_ = 0;
};

/// The one formula of a (netlist, property) pair, encoded exactly once
/// and consumed by any number of sessions, possibly concurrently.
class SharedTape {
 public:
  SharedTape(const model::Netlist& net, std::size_t bad_index = 0,
             EncoderOptions opts = {}, PreprocessOptions preprocess = {});

  const model::Netlist& net() const { return net_; }
  std::size_t bad_index() const { return bad_index_; }
  const EncoderOptions& options() const { return opts_; }
  /// Immutable after construction; racing consumers must agree on it
  /// (the engine asserts a shared tape's options match its own config).
  const PreprocessOptions& preprocess_options() const { return preprocess_; }

  /// Encodes frames up to depth k if not yet present.  Thread-safe; the
  /// frames_encoded() counter advances at most once per depth, ever.
  void ensure_depth(int k);

  /// Replays everything up to depth k's mark (ensuring it first) into
  /// `out`, advancing `cursor`.  Thread-safe.
  void replay_to(int k, ClauseTape::Cursor& cursor, ClauseSink& out);

  /// Replays the PREPROCESSED formula of depth k into a fresh consumer
  /// (the cursor must not have replayed anything yet: the simplified
  /// stream is per-depth, not incremental).  Kept tape variables are
  /// created in tape order so their sink numbering matches a plain
  /// replay's relative order; eliminated variables occupy a
  /// sat::kVarUndef slot in the var_map and never reach the sink.  The
  /// simplification runs (and is cached) once per depth, race-wide.
  /// Thread-safe.
  void replay_simplified_to(int k, ClauseTape::Cursor& cursor,
                            ClauseSink& out);

  /// Replays the PREPROCESSED DELTA of depth f — the clauses frame f
  /// added on top of frame f-1, simplified against everything already
  /// replayed — into an incremental consumer whose cursor is parked at
  /// depth f-1's mark (or fresh, for f = 0).  Unlike
  /// replay_simplified_to, the simplification state is cumulative: root
  /// facts from earlier deltas seed the pass, the VarRemapper witness
  /// stack is shared across depths, and a delta that references a
  /// variable eliminated at an earlier depth transparently RESURRECTS
  /// it (the variable is re-created in the sink and its removed-clause
  /// kit is re-emitted before the delta, restoring every deleted
  /// constraint).  Deltas are computed (and cached) once per depth,
  /// race-wide, so every incremental consumer sees the identical
  /// stream.  Thread-safe.
  void replay_simplified_delta(int f, ClauseTape::Cursor& cursor,
                               ClauseSink& out);

  /// Preprocessing counters for depth k (runs the cached pass first).
  PreprocessStats preprocess_stats_at(int k);
  /// Preprocessing counters for depth k's incremental DELTA (runs the
  /// cached delta passes up to k first).
  PreprocessStats incremental_preprocess_stats_at(int k);
  /// The cumulative incremental remapper as of depth k's delta (witness
  /// stack for model completion across depths): exactly the elimination
  /// state a consumer that replayed deltas 0..k is solving under, even
  /// when a faster consumer has already advanced the cumulative state
  /// past k.  Returned by value (snapshot).
  VarRemapper incremental_remapper_at(int k);
  /// Clause count of the simplified formula at depth k — what a
  /// preprocessed scratch consumer's solver must end up holding (the
  /// session asserts the round trip).
  std::size_t simplified_clauses_at(int k);
  /// The remapper of depth k (witness stack for model completion).
  /// Returned by value: the per-depth cache may reallocate as deeper
  /// frames are simplified.
  VarRemapper remapper_at(int k);

  // Tape-space literals (ensure_depth is implied); translate through a
  // replay cursor before handing them to a sink's solver.
  sat::Lit property(int k);
  sat::Lit bad(int frame);
  std::vector<sat::Lit> latch_lits(int frame);

  /// Formula size at depth k's mark (what a scratch consumer sees).
  ClauseTape::Mark mark_at(int k);

  std::uint64_t frames_encoded() const;
  /// Cumulative encoder counters after frame k (simplification savings
  /// for DepthStats).
  EncodeStats stats_at(int k);
  EncodeStats stats() const;

  // ---- space accounting -----------------------------------------------
  /// Cold storage: when on, each depth's event prefix is frozen (codec-
  /// encoded, raw words dropped) as the next depth is encoded, and the
  /// consumed SimplifiedDepth/IncDelta caches are kept encoded too,
  /// decoding on replay.  Representation-only — replay streams are
  /// bit-identical either way — so it is excluded from
  /// api::config_fingerprint.  Applies to depths encoded after the call.
  void set_cold_storage(bool on);
  bool cold_storage() const;

  /// Tape + cache footprint deltas are charged here (may be null).
  void set_mem_tracker(MemTracker* tracker);

  /// Heap footprint of the tape and its per-depth caches (the value
  /// charged to the MemTracker).
  std::size_t memory_bytes() const;
  /// Raw-form cost of the event stream (the codec baseline) and the
  /// bytes frozen segments actually hold — the bench_memory ratio.
  std::size_t tape_raw_bytes() const;
  std::size_t tape_encoded_bytes() const;

 private:
  void ensure_locked(int k);
  void ensure_simplified_locked(int k);
  void ensure_inc_delta_locked(int f);
  void build_frozen_locked(int k, std::size_t num_vars,
                           std::vector<char>& frozen) const;
  void recharge_locked();

  /// One depth's cached simplification (clauses + remapper + stats).
  /// Under cold storage the clause list is kept codec-encoded.
  struct SimplifiedDepth {
    bool ready = false;
    SimplifyResult result;
    std::size_t clause_count = 0;
    std::vector<std::uint8_t> cold;  // encoded result.clauses
    bool is_cold = false;
  };

  /// One depth's cached incremental delta: the variables resurrected
  /// for it, which of its new variables survived, and the simplified
  /// delta clauses (kit clauses included), all in tape space.
  /// Consumers replay deltas strictly in depth order, so caching makes
  /// the stream identical race-wide — and each delta snapshots the
  /// remapper as of its own depth, so a consumer completing a model at
  /// depth k is immune to faster consumers advancing the cumulative
  /// state past k.
  struct IncDelta {
    bool ready = false;
    std::vector<sat::Var> resurrected;       // sink creation order
    std::vector<char> kept_new;              // per var in (prev, mark]
    std::vector<std::vector<sat::Lit>> clauses;  // kits + simplified delta
    std::vector<std::uint8_t> cold;          // encoded `clauses` (cold mode)
    bool is_cold = false;
    PreprocessStats stats;
    VarRemapper remap_after;                 // cumulative, as of this depth
  };

  mutable std::mutex mu_;
  const model::Netlist& net_;
  std::size_t bad_index_;
  EncoderOptions opts_;
  PreprocessOptions preprocess_;
  ClauseTape tape_;
  FrameEncoder encoder_;
  std::vector<ClauseTape::Mark> depth_marks_;  // per encoded depth
  std::vector<EncodeStats> depth_stats_;       // cumulative per depth
  std::vector<SimplifiedDepth> simplified_;    // per depth, lazy
  // Cumulative incremental preprocessing state (delta mode): witness
  // stack shared across depths + root facts carried forward.
  std::vector<IncDelta> inc_deltas_;           // per depth, lazy
  VarRemapper inc_remap_{0};
  std::vector<sat::lbool> inc_assigned_;       // per tape var

  // Space accounting (PR 10): cold-storage switch, netlist-derived
  // per-frame reserve estimate, and the footprint charged to `mem_`.
  bool cold_ = false;
  std::size_t est_ops_frame_ = 0;
  std::size_t est_lits_frame_ = 0;
  std::size_t cache_bytes_ = 0;   // SimplifiedDepth/IncDelta payloads
  std::size_t last_charged_ = 0;  // last value pushed to mem_
  MemTracker* mem_ = nullptr;
};

}  // namespace refbmc::bmc
