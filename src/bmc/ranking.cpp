#include "bmc/ranking.hpp"

#include <unordered_set>

#include "util/assert.hpp"

namespace refbmc::bmc {

std::optional<CoreWeighting> parse_core_weighting(std::string_view name) {
  for (const CoreWeighting w : all_core_weightings())
    if (name == to_string(w)) return w;
  return std::nullopt;
}

std::unordered_set<model::NodeId> core_nodes(
    const std::vector<VarOrigin>& origin,
    const std::vector<sat::Var>& core_vars) {
  std::unordered_set<model::NodeId> touched;
  for (const sat::Var v : core_vars) {
    REFBMC_EXPECTS(v >= 0 && static_cast<std::size_t>(v) < origin.size());
    const model::NodeId node = origin[static_cast<std::size_t>(v)].node;
    if (node == model::kConstNode) continue;
    touched.insert(node);
  }
  return touched;
}

void CoreRanking::update(const std::vector<VarOrigin>& origin,
                         const std::vector<sat::Var>& core_vars, int k) {
  const std::unordered_set<model::NodeId> touched =
      core_nodes(origin, core_vars);

  switch (weighting_) {
    case CoreWeighting::Linear:
      for (const model::NodeId n : touched)
        scores_[n] += static_cast<double>(k);
      break;
    case CoreWeighting::Uniform:
      for (const model::NodeId n : touched) scores_[n] += 1.0;
      break;
    case CoreWeighting::LastOnly:
      scores_.clear();
      for (const model::NodeId n : touched) scores_[n] = 1.0;
      break;
    case CoreWeighting::ExpDecay:
      for (auto& [node, score] : scores_) {
        (void)node;
        score /= 2.0;
      }
      for (const model::NodeId n : touched) scores_[n] += 1.0;
      break;
  }
  ++num_updates_;
}

std::vector<double> CoreRanking::project(
    const std::vector<VarOrigin>& origin) const {
  std::vector<double> rank(origin.size(), 0.0);
  for (std::size_t v = 0; v < origin.size(); ++v) {
    const auto it = scores_.find(origin[v].node);
    if (it != scores_.end()) rank[v] = it->second;
  }
  return rank;
}

double CoreRanking::node_score(model::NodeId node) const {
  const auto it = scores_.find(node);
  return it == scores_.end() ? 0.0 : it->second;
}

}  // namespace refbmc::bmc
