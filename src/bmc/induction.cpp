#include "bmc/induction.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace refbmc::bmc {

using sat::Lit;

namespace {

EncoderOptions tape_options(bool constrain_init, bool simplify) {
  EncoderOptions opts;
  opts.mode = BadMode::Last;
  opts.constrain_init = constrain_init;
  opts.simplify = simplify;
  return opts;
}

/// Appends pairwise state-distinctness ("simple path") constraints over
/// the cone latches of frames 0..depth: for every frame pair i < j, at
/// least one latch differs.  Difference indicator d ↔ (a xor b) is
/// Tseitin-encoded in the direction the OR clause needs (d → a≠b).
void add_simple_path_constraints(SharedTape& tape, int depth,
                                 sat::Solver& solver,
                                 std::vector<VarOrigin>& origin,
                                 const ClauseTape::Cursor& cursor) {
  std::vector<std::vector<Lit>> latches;
  for (int f = 0; f <= depth; ++f) {
    std::vector<Lit> frame = tape.latch_lits(f);
    for (Lit& l : frame) l = cursor.translate(l);
    latches.push_back(std::move(frame));
  }
  const auto new_aux = [&]() {
    origin.push_back(VarOrigin{model::kConstNode, -3});
    return solver.new_var();
  };
  for (int i = 0; i <= depth; ++i) {
    for (int j = i + 1; j <= depth; ++j) {
      const auto& li = latches[static_cast<std::size_t>(i)];
      const auto& lj = latches[static_cast<std::size_t>(j)];
      REFBMC_ASSERT(li.size() == lj.size());
      if (li.empty()) continue;  // no latches: every frame pair "equal"
      std::vector<Lit> any_diff;
      for (std::size_t l = 0; l < li.size(); ++l) {
        const Lit a = li[l];
        const Lit b = lj[l];
        const Lit d = Lit::make(new_aux());
        // d → (a ≠ b)
        solver.add_clause({~d, a, b});
        solver.add_clause({~d, ~a, ~b});
        any_diff.push_back(d);
      }
      solver.add_clause(any_diff);  // states at i and j differ
    }
  }
}

}  // namespace

InductionProver::InductionProver(const model::Netlist& net,
                                 InductionConfig config,
                                 std::size_t bad_index)
    : net_(net),
      config_(config),
      bad_index_(bad_index),
      base_tape_(net, bad_index, tape_options(true, config.simplify)),
      step_tape_(net, bad_index, tape_options(false, config.simplify)),
      base_ranking_(config.weighting),
      step_ranking_(config.weighting) {
  REFBMC_EXPECTS_MSG(config_.policy != OrderingPolicy::Shtrichman,
                     "induction does not support the Shtrichman ordering");
  REFBMC_EXPECTS(config_.max_k >= 0);
}

InductionProver::SolveOutcome InductionProver::solve_instance(
    SharedTape& tape, int depth, bool is_step, CoreRanking& ranking, int k,
    std::uint64_t& decisions, std::uint64_t& conflicts, double deadline_sec) {
  sat::SolverConfig scfg = config_.solver;
  switch (config_.policy) {
    case OrderingPolicy::Baseline:
      scfg.rank_mode = sat::RankMode::None;
      break;
    case OrderingPolicy::Static:
      scfg.rank_mode = sat::RankMode::Static;
      break;
    case OrderingPolicy::Dynamic:
      scfg.rank_mode = sat::RankMode::Dynamic;
      break;
    case OrderingPolicy::Replace:
      scfg.rank_mode = sat::RankMode::Replace;
      break;
    case OrderingPolicy::Shtrichman:
      REFBMC_ASSERT(false);
      break;
    case OrderingPolicy::Evsids:
      scfg.rank_mode = sat::RankMode::None;
      scfg.decision = sat::DecisionMode::Evsids;
      break;
  }
  scfg.dynamic_switch_divisor = config_.dynamic_switch_divisor;
  scfg.track_cdg = config_.policy != OrderingPolicy::Baseline &&
                   config_.policy != OrderingPolicy::Evsids;
  scfg.conflict_limit = config_.per_instance_conflict_limit;
  scfg.time_limit_sec = deadline_sec;

  SolveOutcome out{sat::Result::Unknown, std::make_unique<sat::Solver>(scfg),
                   {}};
  sat::Solver& solver = *out.solver;
  ClauseTape::Cursor cursor;
  SolverSink sink(solver, out.origin);
  tape.replay_to(depth, cursor, sink);

  if (is_step) {
    // step(k): ¬bad at frames 0..depth-1, bad at frame `depth` (= k+1).
    for (int f = 0; f < depth; ++f)
      solver.add_clause({~cursor.translate(tape.bad(f))});
    solver.add_clause({cursor.translate(tape.bad(depth))});
    if (config_.simple_path)
      add_simple_path_constraints(tape, depth, solver, out.origin, cursor);
  } else {
    // base(k): counter-example of length exactly `depth` (= k).
    solver.add_clause({cursor.translate(tape.bad(depth))});
  }

  if (scfg.rank_mode != sat::RankMode::None)
    solver.set_variable_rank(ranking.project(out.origin));

  out.result = solver.solve();
  decisions += solver.stats().decisions;
  conflicts += solver.stats().conflicts;
  if (out.result == sat::Result::Unsat && scfg.track_cdg)
    ranking.update(out.origin, solver.unsat_core_vars(), k);
  return out;
}

InductionResult InductionProver::run() {
  InductionResult result;
  Timer timer;
  const Deadline deadline(config_.total_time_limit_sec);

  for (int k = 0; k <= config_.max_k; ++k) {
    if (deadline.expired()) {
      result.status = InductionResult::Status::ResourceLimit;
      break;
    }
    const double remaining =
        config_.total_time_limit_sec > 0 ? deadline.remaining_sec() : -1.0;

    // ---- base(k): counter-example of length exactly k? ----------------
    {
      const SolveOutcome out =
          solve_instance(base_tape_, k, /*is_step=*/false, base_ranking_, k,
                         result.base_decisions, result.base_conflicts,
                         remaining);
      if (out.result == sat::Result::Sat) {
        Trace trace = extract_trace(net_, k, out.origin, *out.solver);
        if (config_.validate_counterexamples) {
          REFBMC_ASSERT_MSG(validate_trace(net_, trace, bad_index_),
                            "induction base case produced an invalid "
                            "counter-example");
        }
        result.status = InductionResult::Status::CounterexampleFound;
        result.k = k;
        result.counterexample = std::move(trace);
        result.total_time_sec = timer.elapsed_sec();
        return result;
      }
      if (out.result == sat::Result::Unknown) {
        result.status = InductionResult::Status::ResourceLimit;
        result.total_time_sec = timer.elapsed_sec();
        return result;
      }
    }

    // ---- step(k): unreachable-of-bad is k-inductive? --------------------
    {
      const SolveOutcome out =
          solve_instance(step_tape_, k + 1, /*is_step=*/true, step_ranking_,
                         k, result.step_decisions, result.step_conflicts,
                         remaining);
      if (out.result == sat::Result::Unsat) {
        result.status = InductionResult::Status::Proved;
        result.k = k;
        result.total_time_sec = timer.elapsed_sec();
        return result;
      }
      if (out.result == sat::Result::Unknown) {
        result.status = InductionResult::Status::ResourceLimit;
        result.total_time_sec = timer.elapsed_sec();
        return result;
      }
    }
  }

  if (result.status != InductionResult::Status::ResourceLimit)
    result.status = InductionResult::Status::BoundReached;
  result.total_time_sec = timer.elapsed_sec();
  return result;
}

InductionResult prove_invariant(const model::Netlist& net, int max_k,
                                OrderingPolicy policy,
                                std::size_t bad_index) {
  InductionConfig cfg;
  cfg.policy = policy;
  cfg.max_k = max_k;
  InductionProver prover(net, cfg, bad_index);
  return prover.run();
}

}  // namespace refbmc::bmc
