// Shtrichman-style static ordering (related work, CAV'00 [13]).
//
// Shtrichman viewed the BMC instance as a combinational circuit on a
// plane whose x-axis is time frames and sorted variables by breadth-first
// search over the Variable Dependency Graph starting from the property
// constraint — i.e. by their position on the *time axis*.  The paper under
// reproduction contrasts its register-axis ordering with this; we
// implement it as a comparison baseline.
#pragma once

#include <vector>

#include "bmc/cnf.hpp"

namespace refbmc::bmc {

/// Per-CNF-variable ranks: the seed variables (those of the ¬P constraint,
/// i.e. the bad literal's clause) get the highest rank, then descending by
/// BFS distance through clause incidence.  Variables unreachable from the
/// property get rank 0.
std::vector<double> shtrichman_rank(const BmcInstance& inst);

}  // namespace refbmc::bmc
