// Shtrichman-style static ordering (related work, CAV'00 [13]).
//
// Shtrichman viewed the BMC instance as a combinational circuit on a
// plane whose x-axis is time frames and sorted variables by breadth-first
// search over the Variable Dependency Graph starting from the property
// constraint — i.e. by their position on the *time axis*.  The paper under
// reproduction contrasts its register-axis ordering with this; we
// implement it as a comparison baseline.
#pragma once

#include <span>
#include <vector>

#include "bmc/cnf.hpp"
#include "sat/solver.hpp"

namespace refbmc::bmc {

/// Per-CNF-variable ranks: the seed variable (that of the ¬P constraint,
/// i.e. the property literal) gets the highest rank, then descending by
/// BFS distance through clause incidence.  Variables unreachable from the
/// property get rank 0.  `clauses` is a vector of literal views — no
/// clause data is copied.
std::vector<double> shtrichman_rank(
    std::size_t num_vars, const std::vector<std::span<const sat::Lit>>& clauses,
    sat::Var seed);

/// Over an instance buffer (seed = the asserted bad literal).
std::vector<double> shtrichman_rank(const BmcInstance& inst);

/// Over the original clauses already loaded into a solver — the engine's
/// scratch session path, where the formula lives in the solver rather
/// than in an instance buffer.
std::vector<double> shtrichman_rank(const sat::Solver& solver, sat::Lit seed);

}  // namespace refbmc::bmc
