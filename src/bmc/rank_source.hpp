// RankSource: the ordering-exchange seam between the BMC engine and the
// portfolio — the ordering analogue of the clause pool's lemma exchange.
//
// The paper's refinement loop is sequential: the unsat core of depth k
// sharpens the decision ordering of depth k+1 inside ONE engine.  A
// portfolio race runs P engines over the same formula at once, and each
// of them used to re-learn that ordering privately.  RankSource lifts
// the CoreRanking accumulation behind an interface so it can live either
//
//   * inside the engine (LocalRankSource — the paper's loop, bit for
//     bit the pre-seam behaviour), or
//   * at the race level (SharedRankSource — a mutex-guarded score map
//     in MODEL-NODE space with a monotone epoch counter; every entrant
//     publishes its cores and projects the merged accumulation through
//     its own origin map, the same endpoint-style translation
//     discipline the clause pool uses for tape-space literals).
//
// Model-node space is what makes cross-entrant merging sound: CNF
// variable numberings differ per entrant (scratch sessions renumber per
// depth, incremental sessions interleave activation guards), but the
// origin map ties every CNF variable back to a (netlist node, frame)
// pair, and bmc_score lives on the node axis (§3.2) — publishing and
// projecting through each entrant's own origin map means no entrant
// ever interprets another's variable numbering.  Scores are pure
// heuristic weight, so unlike clause exchange no derivability invariant
// is needed: a bad merge could only slow a rival down, never flip a
// verdict.
//
// Order independence.  Racing entrants publish concurrently, so the
// shared merge must not depend on arrival order (same cores, any
// interleaving => same projection).  Linear and Uniform are additive
// and commutative as-is; the two history-shaped weightings are re-keyed
// from update order to DEPTH so they commute:
//
//   * LastOnly keeps the union of cores published for the deepest
//     depth seen so far (a deeper publish replaces, an equal-depth one
//     merges);
//   * ExpDecay becomes w(k) = 2^k — exponentially favouring recent
//     depths, which is what halve-per-update approximates in the
//     sequential loop.
//
// All weights are integers or exact powers of two, so double
// accumulation is exact and the merged scores are bit-reproducible
// under any publish order.
//
// Mid-solve refresh.  SharedRankSource bumps its epoch whenever the
// accumulation actually changes; RankProjector adapts a (source, origin
// map) pair to the sat::RankRefresh seam the solver polls at solve
// start and restarts (decision level 0 — the same boundaries as clause
// import), so a long-running entrant picks up rivals' cores without
// leaving its search.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "bmc/ranking.hpp"
#include "obs/trace.hpp"
#include "sat/solver.hpp"

namespace refbmc::bmc {

class RankSource {
 public:
  virtual ~RankSource() = default;

  /// Records the unsat core of a depth-k instance: `core_vars` are CNF
  /// variables of the publishing engine, projected onto the model axis
  /// through that engine's own `origin` map.
  virtual void publish(const std::vector<VarOrigin>& origin,
                       const std::vector<sat::Var>& core_vars, int k) = 0;

  /// Per-CNF-variable ranks for `origin` from the current accumulation.
  /// `epoch_out`, when non-null, receives the epoch this projection
  /// corresponds to (seed RankProjector::bind with it so the first
  /// has_update() poll stays quiet).
  virtual std::vector<double> project(
      const std::vector<VarOrigin>& origin,
      std::uint64_t* epoch_out = nullptr) const = 0;

  /// Monotone change counter: advances exactly when a publish changed
  /// some score.  One cheap atomic load — pollable from inside a solve.
  virtual std::uint64_t epoch() const = 0;

  /// Publish calls processed (mirrors CoreRanking::num_updates; no-op
  /// merges count too).
  virtual std::size_t num_updates() const = 0;

  virtual CoreWeighting weighting() const = 0;

  /// Copy of the accumulated node-axis scores (inspection / tests).
  virtual CoreRanking snapshot() const = 0;
};

/// The paper's engine-private accumulation: a plain CoreRanking behind
/// the seam.  Single-threaded; publish and project trajectories are bit
/// for bit those of the pre-seam engine.
class LocalRankSource final : public RankSource {
 public:
  explicit LocalRankSource(CoreWeighting weighting = CoreWeighting::Linear)
      : ranking_(weighting) {}

  void publish(const std::vector<VarOrigin>& origin,
               const std::vector<sat::Var>& core_vars, int k) override {
    ranking_.update(origin, core_vars, k);
  }
  std::vector<double> project(const std::vector<VarOrigin>& origin,
                              std::uint64_t* epoch_out) const override {
    if (epoch_out != nullptr) *epoch_out = ranking_.num_updates();
    return ranking_.project(origin);
  }
  std::uint64_t epoch() const override { return ranking_.num_updates(); }
  std::size_t num_updates() const override { return ranking_.num_updates(); }
  CoreWeighting weighting() const override { return ranking_.weighting(); }
  CoreRanking snapshot() const override { return ranking_; }

 private:
  CoreRanking ranking_;
};

/// Race-wide accumulation: one instance per race (or shard group of
/// identical jobs), shared by every entrant.  Publishing merges under a
/// mutex with the order-independent weighting semantics documented
/// above; epoch() is a lock-free peek for the solver's refresh poll.
class SharedRankSource final : public RankSource {
 public:
  explicit SharedRankSource(CoreWeighting weighting = CoreWeighting::Linear)
      : weighting_(weighting) {}

  SharedRankSource(const SharedRankSource&) = delete;
  SharedRankSource& operator=(const SharedRankSource&) = delete;

  void publish(const std::vector<VarOrigin>& origin,
               const std::vector<sat::Var>& core_vars, int k) override;
  std::vector<double> project(const std::vector<VarOrigin>& origin,
                              std::uint64_t* epoch_out) const override;
  /// Warm start: installs a previously accumulated node-axis ranking
  /// (e.g. the snapshot a JobServer persisted for this netlist hash)
  /// before the race begins, so depth 0 already projects a refined
  /// ordering instead of re-learning it from scratch.  Scores are pure
  /// heuristic weight, so a stale seed can only cost time, never a
  /// verdict.  `ranking.weighting()` must match; call before any entrant
  /// publishes or projects — seeding is a construction-time operation,
  /// not a mid-race merge (it REPLACES the accumulation).  Advances the
  /// epoch when it installs anything, like any other change.
  void seed(const CoreRanking& ranking);
  std::uint64_t epoch() const override {
    return epoch_.load(std::memory_order_acquire);
  }
  std::size_t num_updates() const override {
    return publishes_.load(std::memory_order_acquire);
  }
  CoreWeighting weighting() const override { return weighting_; }
  CoreRanking snapshot() const override;

 private:
  const CoreWeighting weighting_;
  mutable std::mutex mu_;
  std::unordered_map<model::NodeId, double> scores_;
  int deepest_ = -1;  // LastOnly: the depth the kept cores belong to
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint64_t> publishes_{0};
};

/// Adapts a (RankSource, origin map) pair to the solver's RankRefresh
/// seam: has_update() compares the source's epoch against the last
/// projection this solver saw, refresh() re-projects.  Owned by the
/// engine, rebound per depth (the origin map grows between depths);
/// refresh() runs on the solving thread, concurrent publishes are the
/// source's business.
class RankProjector final : public sat::RankRefresh {
 public:
  void bind(const RankSource& source, const std::vector<VarOrigin>& origin,
            std::uint64_t seen_epoch) {
    source_ = &source;
    origin_ = &origin;
    seen_epoch_ = seen_epoch;
    last_refresh_us_ = 0;
  }

  /// Minimum wall-clock gap between two mid-solve re-projections.  A
  /// full projection walks the whole origin map; on restart-heavy
  /// instances with chatty rivals that cost used to land at every
  /// restart.  The throttle caps the refresh *rate* without losing any
  /// update — a deferred epoch is still pending at the next boundary
  /// past the window.  0 disables the throttle (tests that count
  /// refreshes deterministically rely on that).
  void set_min_refresh_interval_us(std::uint64_t us) {
    min_interval_us_ = us;
  }

  bool has_update() const override {
    // Epoch check first: it is the cheap common case (one relaxed-ish
    // atomic load, almost always equal), and the clock is only read
    // when there is actually something to fetch.
    if (source_ == nullptr || source_->epoch() == seen_epoch_) return false;
    if (min_interval_us_ == 0 || last_refresh_us_ == 0) return true;
    return obs::monotonic_now_us() - last_refresh_us_ >= min_interval_us_;
  }
  std::span<const double> refresh() override {
    // Span = the projection cost of one mid-solve refresh, on the
    // solving thread; value = the accumulation epoch it caught up to.
    obs::TraceSpan span(obs::EventKind::RankRefresh);
    buf_ = source_->project(*origin_, &seen_epoch_);
    last_refresh_us_ = obs::monotonic_now_us();
    span.set_value(static_cast<std::int64_t>(seen_epoch_));
    return buf_;
  }

 private:
  const RankSource* source_ = nullptr;
  const std::vector<VarOrigin>* origin_ = nullptr;
  std::uint64_t seen_epoch_ = 0;
  std::uint64_t min_interval_us_ = 2000;  // 2ms between re-projections
  std::uint64_t last_refresh_us_ = 0;     // 0 = never refreshed this bind
  std::vector<double> buf_;
};

}  // namespace refbmc::bmc
