#include "bmc/cnf.hpp"

// Header-only data carrier; this translation unit exists so the module has
// a home for future out-of-line helpers and to keep the build graph
// uniform (one .cpp per public header).
namespace refbmc::bmc {}
