// AIGER reader/writer — both the ASCII (.aag) and the binary (.aig)
// encodings, including the AIGER 1.9 `B` (bad state property) section.
// This is the format of the public BMC benchmark collections (HWMCC).
#pragma once

#include <iosfwd>
#include <string>

#include "model/netlist.hpp"

namespace refbmc::model {

/// Parses an AIGER file, dispatching on the magic ("aag" = ASCII,
/// "aig" = binary).  Latch init values follow AIGER 1.9: absent or 0 →
/// initialised to 0, 1 → initialised to 1, the latch's own literal →
/// uninitialised (l_Undef).  Throws std::invalid_argument on malformed
/// input (bad header, cyclic/undefined AND references, literal out of
/// range, odd LHS, truncated delta codes, …).
Netlist read_aiger(std::istream& in);
Netlist read_aiger_string(const std::string& text);
Netlist read_aiger_file(const std::string& path);

/// Writes ASCII AIGER with a symbol table for named inputs/latches and a
/// `B` section for bad properties.
void write_aiger(std::ostream& out, const Netlist& net);
std::string to_aiger_string(const Netlist& net);
void write_aiger_file(const std::string& path, const Netlist& net);

/// Writes binary AIGER (delta-coded AND section; inputs/latches/ANDs are
/// renumbered into the canonical dense order the format requires).
void write_aiger_binary(std::ostream& out, const Netlist& net);
std::string to_aiger_binary_string(const Netlist& net);

}  // namespace refbmc::model
