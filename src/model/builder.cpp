#include "model/builder.hpp"

namespace refbmc::model {

Signal Builder::and_all(const std::vector<Signal>& xs) {
  Signal acc = Signal::constant(true);
  for (const Signal x : xs) acc = and_(acc, x);
  return acc;
}

Signal Builder::or_all(const std::vector<Signal>& xs) {
  Signal acc = Signal::constant(false);
  for (const Signal x : xs) acc = or_(acc, x);
  return acc;
}

Signal Builder::at_most_one(const std::vector<Signal>& xs) {
  Signal ok = Signal::constant(true);
  for (std::size_t i = 0; i < xs.size(); ++i)
    for (std::size_t j = i + 1; j < xs.size(); ++j)
      ok = and_(ok, !and_(xs[i], xs[j]));
  return ok;
}

Word Builder::constant_word(std::uint64_t value, std::size_t width) {
  REFBMC_EXPECTS(width <= 64);
  Word w(width);
  for (std::size_t i = 0; i < width; ++i)
    w[i] = Signal::constant(((value >> i) & 1ull) != 0);
  return w;
}

Word Builder::input_word(const std::string& name, std::size_t width) {
  Word w(width);
  for (std::size_t i = 0; i < width; ++i)
    w[i] = net_.add_input(name + "[" + std::to_string(i) + "]");
  return w;
}

Word Builder::latch_word(const std::string& name, std::size_t width,
                         std::uint64_t init) {
  Word w(width);
  for (std::size_t i = 0; i < width; ++i) {
    const bool bit = ((init >> i) & 1ull) != 0;
    w[i] = net_.add_latch(sat::lbool(bit),
                          name + "[" + std::to_string(i) + "]");
  }
  return w;
}

void Builder::set_next_word(const Word& latches, const Word& next) {
  REFBMC_EXPECTS(latches.size() == next.size());
  for (std::size_t i = 0; i < latches.size(); ++i)
    net_.set_next(latches[i], next[i]);
}

Word Builder::not_word(const Word& a) {
  Word r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = !a[i];
  return r;
}

Word Builder::and_word(const Word& a, const Word& b) {
  REFBMC_EXPECTS(a.size() == b.size());
  Word r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = and_(a[i], b[i]);
  return r;
}

Word Builder::or_word(const Word& a, const Word& b) {
  REFBMC_EXPECTS(a.size() == b.size());
  Word r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = or_(a[i], b[i]);
  return r;
}

Word Builder::xor_word(const Word& a, const Word& b) {
  REFBMC_EXPECTS(a.size() == b.size());
  Word r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = xor_(a[i], b[i]);
  return r;
}

Word Builder::mux_word(Signal s, const Word& t, const Word& e) {
  REFBMC_EXPECTS(t.size() == e.size());
  Word r(t.size());
  for (std::size_t i = 0; i < t.size(); ++i) r[i] = mux(s, t[i], e[i]);
  return r;
}

Word Builder::add_word(const Word& a, const Word& b, Signal carry_in) {
  REFBMC_EXPECTS(a.size() == b.size());
  Word sum(a.size());
  Signal carry = carry_in;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Signal axb = xor_(a[i], b[i]);
    sum[i] = xor_(axb, carry);
    carry = or_(and_(a[i], b[i]), and_(axb, carry));
  }
  return sum;
}

Signal Builder::eq_word(const Word& a, const Word& b) {
  REFBMC_EXPECTS(a.size() == b.size());
  Signal acc = Signal::constant(true);
  for (std::size_t i = 0; i < a.size(); ++i) acc = and_(acc, xnor_(a[i], b[i]));
  return acc;
}

Signal Builder::eq_const(const Word& a, std::uint64_t value) {
  return eq_word(a, constant_word(value, a.size()));
}

Signal Builder::less_than(const Word& a, const Word& b) {
  REFBMC_EXPECTS(a.size() == b.size());
  // Ripple comparison from LSB: lt_i = (~a & b) | (a==b ? lt_{i-1} : 0)
  Signal lt = Signal::constant(false);
  for (std::size_t i = 0; i < a.size(); ++i)
    lt = or_(and_(!a[i], b[i]), and_(xnor_(a[i], b[i]), lt));
  return lt;
}

Word Builder::shift_left(const Word& a, Signal in) {
  Word r(a.size());
  if (a.empty()) return r;
  r[0] = in;
  for (std::size_t i = 1; i < a.size(); ++i) r[i] = a[i - 1];
  return r;
}

}  // namespace refbmc::model
