// Parameterized benchmark circuit families.
//
// The paper evaluates on the (proprietary) IBM Formal Verification
// Benchmarks: 37 industrial circuits with passing and failing invariant
// properties.  As a substitute we generate synthetic sequential circuits
// with the structural property the paper's technique exploits — the unsat
// cores of successive BMC instances concentrate on a stable subset of the
// registers/gates (the "abstract model"), while the full cone of influence
// is considerably larger.
//
// Each family is exercised directly in unit tests (cross-checked against
// explicit-state reachability), and `standard_suite()` assembles a 37-row
// mix of passing/failing, easy/hard instances for the Table 1 / Fig. 6 /
// Fig. 7 benches.  `with_distractor` wraps a base circuit with
// input-driven logic that enlarges the cone of influence without being
// needed for any unsatisfiability proof — modelling the industrial
// situation of Fig. 3/4 where the abstract model is a small slice of the
// design.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/netlist.hpp"

namespace refbmc::model {

struct Benchmark {
  std::string name;
  Netlist net;  // exactly one bad property (index 0)
  /// True when a counter-example exists within `suggested_bound`
  /// transitions (most passing entries also hold globally, but e.g. the
  /// passing `needle` variants fail only after a counter wrap far beyond
  /// the bound).
  bool expect_fail = false;
  /// Earliest failing unrolling depth (transitions before the bad frame);
  /// -1 when unknown / not applicable.
  int expect_depth = -1;
  /// Depth budget the benches/tests should unroll to.
  int suggested_bound = 20;
};

// ---- deterministic counters -----------------------------------------------
/// n-bit counter from 0; bad = (count == target).  With `with_enable`
/// the increment is gated by a primary input (the earliest failure depth
/// is unchanged but the instance requires real search).
Benchmark counter_reach(int bits, std::uint64_t target, bool with_enable);
/// Counter modulo `modulus`; bad = (count == forbidden) with
/// forbidden >= modulus — never reachable (passing).
Benchmark counter_safe(int bits, std::uint64_t modulus,
                       std::uint64_t forbidden);

// ---- shift structures ------------------------------------------------------
/// n-bit shift register, input shifts in; bad = all bits 1 (fails at n).
Benchmark shift_all_ones(int n);
/// Fibonacci LFSR; bad = (state == orbit state after `steps`) — fails at
/// exactly `steps` (orbit uniqueness is validated at generation time).
Benchmark lfsr_hit(int bits, int steps);
/// LFSR; bad = (state == a value off the orbit) — passing.
Benchmark lfsr_safe(int bits);

// ---- coding invariants ------------------------------------------------------
/// Gray-coded counter with shadow register; bad = two output bits change
/// in one step (passing).
Benchmark gray_safe(int bits);
/// Johnson (twisted-ring) counter; bad = an impossible state pattern
/// 1,0,1 in the leading bits (passing for n >= 3).
Benchmark johnson_safe(int bits);

// ---- control logic -----------------------------------------------------------
/// Rotating one-hot arbiter over n requesters; bad = two simultaneous
/// grants (passing).
Benchmark arbiter_safe(int n);
/// Same with a priority-bypass bug: requester 0 is granted out of turn;
/// fails at depth 1.
Benchmark arbiter_buggy(int n);

/// FIFO occupancy counter with full/empty guards; bad = overflow
/// (count exceeds capacity).  The safe version passes; the buggy version
/// has an off-by-one full check and fails at depth capacity+1.
Benchmark fifo_safe(int count_bits);
Benchmark fifo_buggy(int count_bits);

/// Peterson's 2-process mutual exclusion; bad = both processes critical.
/// The faithful version passes; the buggy one omits the turn check.
Benchmark peterson_safe();
Benchmark peterson_buggy();

/// Two-intersection traffic-light controller with a timer; bad = both
/// directions green (passing); buggy variant has a timer race (failing).
Benchmark traffic_safe(int timer_bits);
Benchmark traffic_buggy(int timer_bits);

// ---- data-path search -----------------------------------------------------
/// Accumulator acc += input (in_bits wide); bad = (acc == target).
/// Fails at ceil(target / (2^in_bits - 1)); forces genuine SAT search.
Benchmark accumulator_reach(int acc_bits, int in_bits, std::uint64_t target);
/// Accumulator that adds only even amounts (input << 1); bad = acc equal
/// to an odd target — parity invariant, passing.
Benchmark accumulator_safe(int acc_bits, int in_bits, std::uint64_t target);
/// Free-running counter ∧ input-gated counter must simultaneously hit
/// (A, B); fails at max(A, B) when both reachable.
Benchmark needle(int a_bits, int b_bits, std::uint64_t A, std::uint64_t B);

// ---- modifiers --------------------------------------------------------------
/// Adds `regs` input-driven distractor registers and a satisfiable guard:
/// bad' = bad ∧ (fresh_input ∨ f(distractors)).  Keeps the verdict and the
/// earliest failure depth, but inflates the cone of influence and literal
/// counts with logic no unsat proof needs — the abstraction gap of Fig. 3.
Benchmark with_distractor(Benchmark base, int regs, std::uint64_t seed);

/// The 37-row evaluation suite used by the Table 1 / Fig. 6 benches.
std::vector<Benchmark> standard_suite();

/// A small subset (few seconds total) used by tests and quick benches.
std::vector<Benchmark> quick_suite();

}  // namespace refbmc::model
