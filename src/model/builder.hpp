// Convenience layer for constructing circuits on a Netlist: gate-level
// derived operators (or/xor/mux/…) and word-level helpers over vectors of
// signals (little-endian: word[0] is the LSB).
//
// All functions reduce to AND/NOT on the underlying AIG, so structural
// hashing and constant folding apply throughout.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/netlist.hpp"

namespace refbmc::model {

using Word = std::vector<Signal>;

class Builder {
 public:
  explicit Builder(Netlist& net) : net_(net) {}

  Netlist& netlist() { return net_; }

  // ---- bit-level ---------------------------------------------------------
  Signal and_(Signal a, Signal b) { return net_.add_and(a, b); }
  Signal or_(Signal a, Signal b) { return !net_.add_and(!a, !b); }
  Signal xor_(Signal a, Signal b) {
    return or_(and_(a, !b), and_(!a, b));
  }
  Signal xnor_(Signal a, Signal b) { return !xor_(a, b); }
  Signal implies(Signal a, Signal b) { return or_(!a, b); }
  /// if s then t else e.
  Signal mux(Signal s, Signal t, Signal e) {
    return or_(and_(s, t), and_(!s, e));
  }

  Signal and_all(const std::vector<Signal>& xs);
  Signal or_all(const std::vector<Signal>& xs);

  /// At most one of xs is 1 (pairwise encoding on the AIG).
  Signal at_most_one(const std::vector<Signal>& xs);
  Signal exactly_one(const std::vector<Signal>& xs) {
    return and_(or_all(xs), at_most_one(xs));
  }

  // ---- word-level ----------------------------------------------------------
  /// n-bit constant word with the given value (LSB first).
  Word constant_word(std::uint64_t value, std::size_t width);
  /// n fresh inputs named `name[i]`.
  Word input_word(const std::string& name, std::size_t width);
  /// n latches named `name[i]` with the i-th bit of `init` as initial value.
  Word latch_word(const std::string& name, std::size_t width,
                  std::uint64_t init = 0);
  void set_next_word(const Word& latches, const Word& next);

  Word not_word(const Word& a);
  Word and_word(const Word& a, const Word& b);
  Word or_word(const Word& a, const Word& b);
  Word xor_word(const Word& a, const Word& b);
  Word mux_word(Signal s, const Word& t, const Word& e);

  /// a + b (+ carry_in), result truncated to a.size() bits.
  Word add_word(const Word& a, const Word& b,
                Signal carry_in = Signal::constant(false));
  /// a + 1.
  Word increment(const Word& a) {
    return add_word(a, constant_word(0, a.size()), Signal::constant(true));
  }

  Signal eq_word(const Word& a, const Word& b);
  Signal eq_const(const Word& a, std::uint64_t value);
  /// Unsigned a < b.
  Signal less_than(const Word& a, const Word& b);

  /// Left shift by one, shifting `in` into the LSB.
  Word shift_left(const Word& a, Signal in);

 private:
  Netlist& net_;
};

}  // namespace refbmc::model
