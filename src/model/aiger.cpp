#include "model/aiger.hpp"

#include <fstream>
#include <functional>
#include <iterator>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace refbmc::model {
namespace {

struct AigerAnd {
  unsigned lhs, rhs0, rhs1;
};

[[noreturn]] void fail(const std::string& msg) {
  throw std::invalid_argument("aiger: " + msg);
}

}  // namespace

// Defined below; reads the ASCII body (the public read_aiger dispatches).
Netlist read_aiger_ascii(std::istream& in);

namespace {

/// Binary-format helpers: AIGER's LEB128-style delta code (7 bits per
/// byte, high bit = continuation).
unsigned decode_delta(const std::string& buf, std::size_t& pos) {
  unsigned value = 0;
  int shift = 0;
  while (true) {
    if (pos >= buf.size()) fail("truncated binary delta code");
    const unsigned byte = static_cast<unsigned char>(buf[pos++]);
    value |= (byte & 0x7fu) << shift;
    if ((byte & 0x80u) == 0) return value;
    shift += 7;
    if (shift > 28) fail("binary delta code overflow");
  }
}

void encode_delta(std::ostream& out, unsigned delta) {
  while (delta >= 0x80u) {
    out.put(static_cast<char>((delta & 0x7fu) | 0x80u));
    delta >>= 7;
  }
  out.put(static_cast<char>(delta));
}

/// Reads one text line from `buf` starting at `pos` (consuming the '\n').
std::string take_line(const std::string& buf, std::size_t& pos,
                      const char* what) {
  const std::size_t nl = buf.find('\n', pos);
  if (nl == std::string::npos) fail(std::string("missing ") + what);
  std::string line = buf.substr(pos, nl - pos);
  pos = nl + 1;
  return line;
}

Netlist read_aiger_binary_buffer(const std::string& buf);

}  // namespace

Netlist read_aiger(std::istream& in) {
  // Slurp: the binary format interleaves text and raw bytes, so line-based
  // reading cannot be used throughout.
  std::string buffer((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
  if (buffer.rfind("aig ", 0) == 0) return read_aiger_binary_buffer(buffer);
  std::istringstream ascii(buffer);
  return read_aiger_ascii(ascii);
}

Netlist read_aiger_ascii(std::istream& in) {
  std::string header;
  if (!std::getline(in, header)) fail("empty input");
  std::istringstream hs(header);
  std::string magic;
  unsigned m = 0, i = 0, l = 0, o = 0, a = 0, b = 0;
  hs >> magic >> m >> i >> l >> o >> a;
  if (magic != "aag" || hs.fail())
    fail("expected 'aag M I L O A [B]' header, got: " + header);
  if (!(hs >> b)) b = 0;
  unsigned extra = 0;
  if (hs >> extra && extra != 0)
    fail("C/J/F sections are not supported");
  if (m < i + l + a) fail("M smaller than I+L+A");

  std::vector<unsigned> input_lits(i);
  struct LatchLine {
    unsigned lit, next;
    long long init;  // -1 = uninitialised (own literal)
  };
  std::vector<LatchLine> latch_lines(l);
  std::vector<unsigned> output_lits(o);
  std::vector<unsigned> bad_lits(b);
  std::vector<AigerAnd> ands(a);

  const auto read_line = [&](const char* what) {
    std::string line;
    if (!std::getline(in, line)) fail(std::string("missing ") + what + " line");
    return line;
  };
  const auto check_lit = [&](unsigned lit) {
    if (lit / 2 > m) fail("literal out of range: " + std::to_string(lit));
  };

  for (unsigned k = 0; k < i; ++k) {
    std::istringstream ls(read_line("input"));
    if (!(ls >> input_lits[k]) || input_lits[k] % 2 != 0 ||
        input_lits[k] == 0)
      fail("malformed input line");
    check_lit(input_lits[k]);
  }
  for (unsigned k = 0; k < l; ++k) {
    std::istringstream ls(read_line("latch"));
    LatchLine& ll = latch_lines[k];
    if (!(ls >> ll.lit >> ll.next) || ll.lit % 2 != 0 || ll.lit == 0)
      fail("malformed latch line");
    check_lit(ll.lit);
    check_lit(ll.next);
    unsigned init = 0;
    if (ls >> init) {
      if (init == 0 || init == 1)
        ll.init = init;
      else if (init == ll.lit)
        ll.init = -1;  // uninitialised
      else
        fail("latch init must be 0, 1, or the latch literal");
    } else {
      ll.init = 0;
    }
  }
  for (unsigned k = 0; k < o; ++k) {
    std::istringstream ls(read_line("output"));
    if (!(ls >> output_lits[k])) fail("malformed output line");
    check_lit(output_lits[k]);
  }
  for (unsigned k = 0; k < b; ++k) {
    std::istringstream ls(read_line("bad"));
    if (!(ls >> bad_lits[k])) fail("malformed bad line");
    check_lit(bad_lits[k]);
  }
  std::map<unsigned, AigerAnd> and_by_var;
  for (unsigned k = 0; k < a; ++k) {
    std::istringstream ls(read_line("and"));
    AigerAnd& g = ands[k];
    if (!(ls >> g.lhs >> g.rhs0 >> g.rhs1) || g.lhs % 2 != 0 || g.lhs == 0)
      fail("malformed and line");
    check_lit(g.lhs);
    check_lit(g.rhs0);
    check_lit(g.rhs1);
    if (!and_by_var.emplace(g.lhs / 2, g).second)
      fail("duplicate AND definition");
  }

  // Symbol table and comments.
  std::map<unsigned, std::string> input_names, latch_names, bad_names;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == 'c') break;  // comment section: ignore the rest
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag.size() < 2) fail("malformed symbol line: " + line);
    unsigned idx = 0;
    try {
      idx = static_cast<unsigned>(std::stoul(tag.substr(1)));
    } catch (const std::exception&) {
      fail("malformed symbol index: " + line);
    }
    std::string name;
    std::getline(ls, name);
    if (!name.empty() && name[0] == ' ') name.erase(0, 1);
    switch (tag[0]) {
      case 'i': input_names[idx] = name; break;
      case 'l': latch_names[idx] = name; break;
      case 'b': bad_names[idx] = name; break;
      case 'o': break;  // output names are not retained on the netlist
      default: fail("unknown symbol tag: " + line);
    }
  }

  // Build the netlist: aiger var → Signal of the created node.
  Netlist net;
  std::vector<Signal> sig_of_var(m + 1, Signal::constant(false));
  std::vector<char> defined(m + 1, 0);
  defined[0] = 1;

  for (unsigned k = 0; k < i; ++k) {
    const unsigned var = input_lits[k] / 2;
    if (defined[var]) fail("input redefines a variable");
    auto it = input_names.find(k);
    sig_of_var[var] =
        net.add_input(it == input_names.end() ? "" : it->second);
    defined[var] = 1;
  }
  for (unsigned k = 0; k < l; ++k) {
    const unsigned var = latch_lines[k].lit / 2;
    if (defined[var]) fail("latch redefines a variable");
    const sat::lbool init = latch_lines[k].init < 0
                                ? sat::l_Undef
                                : sat::lbool(latch_lines[k].init == 1);
    auto it = latch_names.find(k);
    sig_of_var[var] =
        net.add_latch(init, it == latch_names.end() ? "" : it->second);
    defined[var] = 1;
  }

  // Create AND nodes on demand (AAG permits any order); detect cycles.
  std::vector<char> visiting(m + 1, 0);
  const std::function<Signal(unsigned)> lit_signal =
      [&](unsigned lit) -> Signal {
    const unsigned var = lit / 2;
    const bool neg = (lit & 1u) != 0;
    if (!defined[var]) {
      const auto it = and_by_var.find(var);
      if (it == and_by_var.end())
        fail("undefined variable " + std::to_string(var));
      if (visiting[var]) fail("cyclic AND definition");
      visiting[var] = 1;
      const Signal s0 = lit_signal(it->second.rhs0);
      const Signal s1 = lit_signal(it->second.rhs1);
      visiting[var] = 0;
      sig_of_var[var] = net.add_and(s0, s1);
      defined[var] = 1;
    }
    const Signal s = sig_of_var[var];
    return neg ? !s : s;
  };

  for (const auto& [var, g] : and_by_var) {
    (void)g;
    (void)lit_signal(2 * var);
  }
  for (unsigned k = 0; k < l; ++k) {
    net.set_next(sig_of_var[latch_lines[k].lit / 2],
                 lit_signal(latch_lines[k].next));
  }
  for (unsigned k = 0; k < o; ++k)
    net.add_output(lit_signal(output_lits[k]));
  for (unsigned k = 0; k < b; ++k) {
    auto it = bad_names.find(k);
    net.add_bad(lit_signal(bad_lits[k]),
                it == bad_names.end() ? "" : it->second);
  }
  net.check();
  return net;
}

Netlist read_aiger_string(const std::string& text) {
  std::istringstream in(text);
  return read_aiger(in);
}

Netlist read_aiger_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail("cannot open file: " + path);
  return read_aiger(in);
}

void write_aiger(std::ostream& out, const Netlist& net) {
  // Assign aiger variables: inputs, then latches, then ANDs in node order
  // (fanins precede ANDs, so this is topological).
  std::vector<unsigned> var_of_node(net.num_nodes(), 0);
  unsigned next_var = 1;
  for (const NodeId id : net.inputs()) var_of_node[id] = next_var++;
  for (const NodeId id : net.latches()) var_of_node[id] = next_var++;
  std::vector<NodeId> and_nodes;
  for (NodeId id = 0; id < net.num_nodes(); ++id) {
    if (net.kind(id) == NodeKind::And) {
      var_of_node[id] = next_var++;
      and_nodes.push_back(id);
    }
  }
  const auto lit_of = [&](Signal s) -> unsigned {
    return 2 * var_of_node[s.node()] + (s.negated() ? 1u : 0u);
  };

  out << "aag " << (next_var - 1) << ' ' << net.num_inputs() << ' '
      << net.num_latches() << ' ' << net.outputs().size() << ' '
      << and_nodes.size();
  if (!net.bad_properties().empty())
    out << ' ' << net.bad_properties().size();
  out << '\n';

  for (const NodeId id : net.inputs())
    out << 2 * var_of_node[id] << '\n';
  for (const NodeId id : net.latches()) {
    out << 2 * var_of_node[id] << ' ' << lit_of(net.latch_next(id));
    const sat::lbool init = net.latch_init(id);
    if (init.is_undef())
      out << ' ' << 2 * var_of_node[id];
    else if (init.is_true())
      out << " 1";
    out << '\n';
  }
  for (const Signal s : net.outputs()) out << lit_of(s) << '\n';
  for (const BadProperty& b : net.bad_properties())
    out << lit_of(b.signal) << '\n';
  for (const NodeId id : and_nodes) {
    const Node& n = net.node(id);
    out << 2 * var_of_node[id] << ' ' << lit_of(n.fanin0) << ' '
        << lit_of(n.fanin1) << '\n';
  }

  for (std::size_t k = 0; k < net.inputs().size(); ++k)
    if (!net.name(net.inputs()[k]).empty())
      out << 'i' << k << ' ' << net.name(net.inputs()[k]) << '\n';
  for (std::size_t k = 0; k < net.latches().size(); ++k)
    if (!net.name(net.latches()[k]).empty())
      out << 'l' << k << ' ' << net.name(net.latches()[k]) << '\n';
  for (std::size_t k = 0; k < net.bad_properties().size(); ++k)
    if (!net.bad_properties()[k].name.empty())
      out << 'b' << k << ' ' << net.bad_properties()[k].name << '\n';
}

std::string to_aiger_string(const Netlist& net) {
  std::ostringstream os;
  write_aiger(os, net);
  return os.str();
}

void write_aiger_file(const std::string& path, const Netlist& net) {
  std::ofstream out(path);
  if (!out) fail("cannot open file for writing: " + path);
  write_aiger(out, net);
}

// ---- binary format ---------------------------------------------------------

namespace {

Netlist read_aiger_binary_buffer(const std::string& buf) {
  std::size_t pos = 0;
  std::istringstream hs(take_line(buf, pos, "header"));
  std::string magic;
  unsigned m = 0, i = 0, l = 0, o = 0, a = 0, b = 0;
  hs >> magic >> m >> i >> l >> o >> a;
  if (magic != "aig" || hs.fail()) fail("malformed binary header");
  if (!(hs >> b)) b = 0;
  unsigned extra = 0;
  if (hs >> extra && extra != 0) fail("C/J/F sections are not supported");
  if (m != i + l + a)
    fail("binary format requires M == I + L + A exactly");

  // Build directly: the binary format fixes the numbering — inputs are
  // variables 1..I, latches I+1..I+L, ANDs I+L+1..M, in order.
  Netlist net;
  std::vector<Signal> sig_of_var(m + 1, Signal::constant(false));
  for (unsigned k = 1; k <= i; ++k) sig_of_var[k] = net.add_input();

  struct LatchLine {
    unsigned next;
    long long init;
  };
  std::vector<LatchLine> latch_lines(l);
  for (unsigned k = 0; k < l; ++k) {
    std::istringstream ls(take_line(buf, pos, "latch line"));
    LatchLine& ll = latch_lines[k];
    if (!(ls >> ll.next)) fail("malformed binary latch line");
    if (ll.next / 2 > m) fail("latch next literal out of range");
    unsigned init = 0;
    const unsigned latch_lit = 2 * (i + k + 1);
    if (ls >> init) {
      if (init == 0 || init == 1)
        ll.init = init;
      else if (init == latch_lit)
        ll.init = -1;
      else
        fail("latch init must be 0, 1, or the latch literal");
    } else {
      ll.init = 0;
    }
    sig_of_var[i + k + 1] = net.add_latch(
        ll.init < 0 ? sat::l_Undef : sat::lbool(ll.init == 1));
  }

  std::vector<unsigned> output_lits(o);
  for (unsigned k = 0; k < o; ++k) {
    std::istringstream ls(take_line(buf, pos, "output line"));
    if (!(ls >> output_lits[k]) || output_lits[k] / 2 > m)
      fail("malformed binary output line");
  }
  std::vector<unsigned> bad_lits(b);
  for (unsigned k = 0; k < b; ++k) {
    std::istringstream ls(take_line(buf, pos, "bad line"));
    if (!(ls >> bad_lits[k]) || bad_lits[k] / 2 > m)
      fail("malformed binary bad line");
  }

  const auto lit_signal = [&](unsigned lit) {
    const Signal s = sig_of_var[lit / 2];
    return (lit & 1u) ? !s : s;
  };

  // Delta-coded AND section: for the k-th AND, lhs = 2(I+L+k+1) and the
  // file stores lhs-rhs0 followed by rhs0-rhs1 (so lhs > rhs0 >= rhs1).
  for (unsigned k = 0; k < a; ++k) {
    const unsigned lhs = 2 * (i + l + k + 1);
    const unsigned delta0 = decode_delta(buf, pos);
    if (delta0 == 0 || delta0 > lhs) fail("invalid AND delta0");
    const unsigned rhs0 = lhs - delta0;
    const unsigned delta1 = decode_delta(buf, pos);
    if (delta1 > rhs0) fail("invalid AND delta1");
    const unsigned rhs1 = rhs0 - delta1;
    sig_of_var[lhs / 2] = net.add_and(lit_signal(rhs0), lit_signal(rhs1));
  }

  for (unsigned k = 0; k < l; ++k)
    net.set_next(sig_of_var[i + k + 1], lit_signal(latch_lines[k].next));
  for (unsigned k = 0; k < o; ++k) net.add_output(lit_signal(output_lits[k]));
  for (unsigned k = 0; k < b; ++k) net.add_bad(lit_signal(bad_lits[k]));

  // Symbol table / comments (text again).
  while (pos < buf.size()) {
    const std::string line = take_line(buf, pos, "symbol line");
    if (line.empty()) continue;
    if (line[0] == 'c') break;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag.size() < 2) fail("malformed symbol line: " + line);
    unsigned idx = 0;
    try {
      idx = static_cast<unsigned>(std::stoul(tag.substr(1)));
    } catch (const std::exception&) {
      fail("malformed symbol index: " + line);
    }
    std::string name;
    std::getline(ls, name);
    if (!name.empty() && name[0] == ' ') name.erase(0, 1);
    switch (tag[0]) {
      case 'i':
        if (idx >= i) fail("symbol index out of range");
        net.set_name(net.inputs()[idx], name);
        break;
      case 'l':
        if (idx >= l) fail("symbol index out of range");
        net.set_name(net.latches()[idx], name);
        break;
      case 'b':
        if (idx >= b) fail("symbol index out of range");
        net.replace_bad(idx, net.bad_properties()[idx].signal, name);
        break;
      case 'o':
        break;
      default:
        fail("unknown symbol tag: " + line);
    }
  }
  net.check();
  return net;
}

}  // namespace

void write_aiger_binary(std::ostream& out, const Netlist& net) {
  // Canonical dense numbering, as in the ASCII writer.
  std::vector<unsigned> var_of_node(net.num_nodes(), 0);
  unsigned next_var = 1;
  for (const NodeId id : net.inputs()) var_of_node[id] = next_var++;
  for (const NodeId id : net.latches()) var_of_node[id] = next_var++;
  std::vector<NodeId> and_nodes;
  for (NodeId id = 0; id < net.num_nodes(); ++id) {
    if (net.kind(id) == NodeKind::And) {
      var_of_node[id] = next_var++;
      and_nodes.push_back(id);
    }
  }
  const auto lit_of = [&](Signal s) -> unsigned {
    return 2 * var_of_node[s.node()] + (s.negated() ? 1u : 0u);
  };

  out << "aig " << (next_var - 1) << ' ' << net.num_inputs() << ' '
      << net.num_latches() << ' ' << net.outputs().size() << ' '
      << and_nodes.size();
  if (!net.bad_properties().empty())
    out << ' ' << net.bad_properties().size();
  out << '\n';

  for (const NodeId id : net.latches()) {
    out << lit_of(net.latch_next(id));
    const sat::lbool init = net.latch_init(id);
    if (init.is_undef())
      out << ' ' << 2 * var_of_node[id];
    else if (init.is_true())
      out << " 1";
    out << '\n';
  }
  for (const Signal s : net.outputs()) out << lit_of(s) << '\n';
  for (const BadProperty& b : net.bad_properties())
    out << lit_of(b.signal) << '\n';

  for (const NodeId id : and_nodes) {
    const Node& n = net.node(id);
    const unsigned lhs = 2 * var_of_node[id];
    unsigned rhs0 = lit_of(n.fanin0);
    unsigned rhs1 = lit_of(n.fanin1);
    if (rhs0 < rhs1) std::swap(rhs0, rhs1);  // format wants rhs0 >= rhs1
    encode_delta(out, lhs - rhs0);
    encode_delta(out, rhs0 - rhs1);
  }

  for (std::size_t k = 0; k < net.inputs().size(); ++k)
    if (!net.name(net.inputs()[k]).empty())
      out << 'i' << k << ' ' << net.name(net.inputs()[k]) << '\n';
  for (std::size_t k = 0; k < net.latches().size(); ++k)
    if (!net.name(net.latches()[k]).empty())
      out << 'l' << k << ' ' << net.name(net.latches()[k]) << '\n';
  for (std::size_t k = 0; k < net.bad_properties().size(); ++k)
    if (!net.bad_properties()[k].name.empty())
      out << 'b' << k << ' ' << net.bad_properties()[k].name << '\n';
}

std::string to_aiger_binary_string(const Netlist& net) {
  std::ostringstream os;
  write_aiger_binary(os, net);
  return os.str();
}

}  // namespace refbmc::model
