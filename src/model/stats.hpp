// Netlist inspection utilities: summary statistics (counts, logic depth,
// cone sizes per property) and Graphviz DOT export for small circuits.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "model/netlist.hpp"

namespace refbmc::model {

struct NetlistStats {
  std::size_t num_inputs = 0;
  std::size_t num_latches = 0;
  std::size_t num_ands = 0;
  std::size_t num_outputs = 0;
  std::size_t num_bads = 0;
  /// Longest combinational AND-path (0 when there are no AND gates).
  int logic_depth = 0;
  /// Per bad property: nodes in its sequential cone of influence.
  std::vector<std::size_t> coi_sizes;
  /// Latches with l_Undef initial value.
  std::size_t uninitialised_latches = 0;

  std::string to_string() const;
};

NetlistStats analyze(const Netlist& net);

/// Writes the circuit as a Graphviz digraph: inputs as diamonds, latches
/// as boxes (with init value), AND gates as circles, dashed edges for
/// complemented fanins, latch next-state edges dotted.  Intended for
/// small teaching-sized circuits.
void write_dot(std::ostream& out, const Netlist& net);
std::string to_dot_string(const Netlist& net);

}  // namespace refbmc::model
