#include "model/stats.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace refbmc::model {

NetlistStats analyze(const Netlist& net) {
  NetlistStats stats;
  stats.num_inputs = net.num_inputs();
  stats.num_latches = net.num_latches();
  stats.num_ands = net.num_ands();
  stats.num_outputs = net.outputs().size();
  stats.num_bads = net.bad_properties().size();

  for (const NodeId latch : net.latches())
    if (net.latch_init(latch).is_undef()) ++stats.uninitialised_latches;

  // Logic depth: AND fanins precede the node, so one pass suffices.
  std::vector<int> depth(net.num_nodes(), 0);
  for (NodeId id = 0; id < net.num_nodes(); ++id) {
    const Node& n = net.node(id);
    if (n.kind != NodeKind::And) continue;
    depth[id] = 1 + std::max(depth[n.fanin0.node()], depth[n.fanin1.node()]);
    stats.logic_depth = std::max(stats.logic_depth, depth[id]);
  }

  for (const BadProperty& bad : net.bad_properties())
    stats.coi_sizes.push_back(net.cone_of_influence({bad.signal}).size());
  return stats;
}

std::string NetlistStats::to_string() const {
  std::ostringstream os;
  os << num_inputs << " inputs, " << num_latches << " latches";
  if (uninitialised_latches > 0)
    os << " (" << uninitialised_latches << " uninitialised)";
  os << ", " << num_ands << " ANDs (depth " << logic_depth << "), "
     << num_outputs << " outputs, " << num_bads << " properties";
  for (std::size_t i = 0; i < coi_sizes.size(); ++i)
    os << (i == 0 ? "; COI " : ", ") << coi_sizes[i];
  return os.str();
}

namespace {

std::string node_name(const Netlist& net, NodeId id) {
  if (!net.name(id).empty()) return net.name(id);
  return "n" + std::to_string(id);
}

void write_edge(std::ostream& out, const Netlist& net, Signal from,
                NodeId to, const char* style) {
  if (from.is_const()) {
    out << "  const" << (from.negated() ? "1" : "0") << " -> \""
        << node_name(net, to) << "\"";
  } else {
    out << "  \"" << node_name(net, from.node()) << "\" -> \""
        << node_name(net, to) << "\"";
  }
  out << " [";
  if (from.negated() && !from.is_const()) out << "style=dashed,";
  out << "class=\"" << style << "\"];\n";
}

}  // namespace

void write_dot(std::ostream& out, const Netlist& net) {
  out << "digraph netlist {\n  rankdir=LR;\n";
  bool const_used[2] = {false, false};
  for (NodeId id = 1; id < net.num_nodes(); ++id) {
    const Node& n = net.node(id);
    for (const Signal s :
         {n.fanin0, n.kind == NodeKind::And ? n.fanin1 : n.fanin0}) {
      if (s.is_const()) const_used[s.negated() ? 1 : 0] = true;
    }
  }
  if (const_used[0]) out << "  const0 [shape=plaintext,label=\"0\"];\n";
  if (const_used[1]) out << "  const1 [shape=plaintext,label=\"1\"];\n";

  for (const NodeId id : net.inputs())
    out << "  \"" << node_name(net, id) << "\" [shape=diamond];\n";
  for (const NodeId id : net.latches()) {
    const sat::lbool init = net.latch_init(id);
    out << "  \"" << node_name(net, id) << "\" [shape=box,label=\""
        << node_name(net, id) << "\\ninit="
        << (init.is_undef() ? "x" : init.is_true() ? "1" : "0") << "\"];\n";
  }
  for (NodeId id = 1; id < net.num_nodes(); ++id) {
    const Node& n = net.node(id);
    if (n.kind != NodeKind::And) continue;
    out << "  \"" << node_name(net, id) << "\" [shape=circle,label=\"&\"];\n";
    write_edge(out, net, n.fanin0, id, "and");
    write_edge(out, net, n.fanin1, id, "and");
  }
  for (const NodeId id : net.latches()) {
    const Signal next = net.latch_next(id);
    if (next.is_const()) {
      const_used[next.negated() ? 1 : 0] = true;
      out << "  const" << (next.negated() ? "1" : "0") << " -> \""
          << node_name(net, id) << "\" [style=dotted];\n";
    } else {
      out << "  \"" << node_name(net, next.node()) << "\" -> \""
          << node_name(net, id) << "\" [style=dotted"
          << (next.negated() ? ",arrowhead=odot" : "") << "];\n";
    }
  }
  for (std::size_t i = 0; i < net.bad_properties().size(); ++i) {
    const BadProperty& bad = net.bad_properties()[i];
    const std::string label =
        bad.name.empty() ? "bad" + std::to_string(i) : bad.name;
    out << "  \"" << label << "\" [shape=octagon,color=red];\n";
    if (bad.signal.is_const()) {
      out << "  const" << (bad.signal.negated() ? "1" : "0") << " -> \""
          << label << "\";\n";
    } else {
      out << "  \"" << node_name(net, bad.signal.node()) << "\" -> \""
          << label << "\""
          << (bad.signal.negated() ? " [style=dashed]" : "") << ";\n";
    }
  }
  out << "}\n";
}

std::string to_dot_string(const Netlist& net) {
  std::ostringstream os;
  write_dot(os, net);
  return os.str();
}

}  // namespace refbmc::model
