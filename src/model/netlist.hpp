// Sequential circuit model: an And-Inverter Graph with registers.
//
// This is the 4-tuple ⟨V, W, I, T⟩ of the paper's §2: V = latches
// (present-state variables), W = primary inputs, I = latch initial values,
// T = next-state functions expressed as AIG nodes.  Properties are "bad"
// signals (AIGER 1.9 convention): the invariant GP holds iff no bad signal
// is ever 1 in a reachable state, i.e. P = ¬bad.
//
// Signals are AIGER-style literals: a node index with a complement bit.
// AND nodes are structurally hashed and constant-folded at creation.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sat/types.hpp"  // for lbool (three-valued latch init)
#include "util/assert.hpp"

namespace refbmc::model {

using NodeId = std::uint32_t;
constexpr NodeId kConstNode = 0;  // node 0 is the constant FALSE

/// A signal: reference to a node, possibly complemented.
class Signal {
 public:
  constexpr Signal() : raw_(0) {}  // constant false

  static constexpr Signal make(NodeId node, bool negated = false) {
    Signal s;
    s.raw_ = (node << 1) | static_cast<std::uint32_t>(negated);
    return s;
  }
  static constexpr Signal constant(bool value) {
    return make(kConstNode, value);  // node 0 is FALSE; complement = TRUE
  }

  constexpr NodeId node() const { return raw_ >> 1; }
  constexpr bool negated() const { return (raw_ & 1u) != 0; }
  constexpr std::uint32_t raw() const { return raw_; }
  static constexpr Signal from_raw(std::uint32_t raw) {
    Signal s;
    s.raw_ = raw;
    return s;
  }

  constexpr bool is_const() const { return node() == kConstNode; }
  constexpr bool is_const_false() const { return raw_ == 0; }
  constexpr bool is_const_true() const { return raw_ == 1; }

  constexpr Signal operator!() const {
    Signal s;
    s.raw_ = raw_ ^ 1u;
    return s;
  }

  friend constexpr bool operator==(Signal a, Signal b) {
    return a.raw_ == b.raw_;
  }
  friend constexpr bool operator!=(Signal a, Signal b) {
    return a.raw_ != b.raw_;
  }
  friend constexpr bool operator<(Signal a, Signal b) {
    return a.raw_ < b.raw_;
  }

 private:
  std::uint32_t raw_;
};

enum class NodeKind : std::uint8_t { Const, Input, Latch, And };

struct Node {
  NodeKind kind;
  Signal fanin0;  // And: left operand; Latch: next-state (set via set_next)
  Signal fanin1;  // And: right operand
};

/// Named property: GP with P = ¬signal ("signal is never 1").
struct BadProperty {
  Signal signal;
  std::string name;
};

class Netlist {
 public:
  Netlist();

  // ---- construction ----------------------------------------------------
  Signal add_input(std::string name = "");
  /// Adds a latch with the given initial value (l_Undef = uninitialised,
  /// i.e. both initial values allowed).  The next-state function starts as
  /// the latch itself (self-loop) until set_next is called.
  Signal add_latch(sat::lbool init, std::string name = "");
  void set_next(Signal latch_sig, Signal next);

  /// AND with structural hashing and constant folding; never creates a
  /// node when the result simplifies.
  Signal add_and(Signal a, Signal b);

  void add_output(Signal s, std::string name = "");
  void add_bad(Signal s, std::string name = "");
  /// Replaces an existing bad property (used by circuit transformers).
  void replace_bad(std::size_t index, Signal s, std::string name);

  // ---- queries -----------------------------------------------------------
  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t num_inputs() const { return inputs_.size(); }
  std::size_t num_latches() const { return latches_.size(); }
  std::size_t num_ands() const { return num_ands_; }

  const Node& node(NodeId id) const {
    REFBMC_EXPECTS(id < nodes_.size());
    return nodes_[id];
  }
  NodeKind kind(NodeId id) const { return node(id).kind; }

  /// Inputs / latches in creation order (their NodeIds).
  const std::vector<NodeId>& inputs() const { return inputs_; }
  const std::vector<NodeId>& latches() const { return latches_; }

  sat::lbool latch_init(NodeId latch) const;
  Signal latch_next(NodeId latch) const;

  const std::vector<Signal>& outputs() const { return outputs_; }
  const std::vector<BadProperty>& bad_properties() const { return bads_; }

  const std::string& name(NodeId id) const;
  void set_name(NodeId id, std::string name);
  /// Reverse lookup; returns nullopt if no node carries `name`.
  std::optional<NodeId> find_by_name(const std::string& name) const;

  /// Nodes reachable backward from `roots` through AND fanins and latch
  /// next-state functions (the sequential cone of influence), as a sorted
  /// vector of NodeIds (always includes the constant node).
  std::vector<NodeId> cone_of_influence(const std::vector<Signal>& roots) const;

  /// Sanity check: every latch has a next-state function whose cone exists,
  /// fanins precede AND nodes, etc.  Throws std::logic_error on violation.
  void check() const;

 private:
  struct PairHash {
    std::size_t operator()(const std::pair<std::uint32_t, std::uint32_t>& p)
        const {
      return std::hash<std::uint64_t>()(
          (static_cast<std::uint64_t>(p.first) << 32) | p.second);
    }
  };

  std::vector<Node> nodes_;
  std::vector<NodeId> inputs_;
  std::vector<NodeId> latches_;
  std::vector<sat::lbool> latch_init_;  // parallel to latches_
  std::vector<Signal> outputs_;
  std::vector<std::string> output_names_;
  std::vector<BadProperty> bads_;
  std::size_t num_ands_ = 0;

  std::vector<std::string> names_;  // parallel to nodes_
  std::unordered_map<std::string, NodeId> name_index_;
  std::unordered_map<std::pair<std::uint32_t, std::uint32_t>, NodeId,
                     PairHash>
      strash_;

  std::unordered_map<NodeId, std::size_t> latch_pos_;  // latch id → index
};

/// Order-stable 64-bit structural hash of the circuit: node kinds and
/// fanins in id order, latch initial values, input/latch creation order,
/// outputs and bad-property signals.  Names are excluded — two netlists
/// that differ only in labels describe the same transition system and
/// hash equal.  This is the identity the serving layer keys on: the
/// result cache's (netlist, bad, depth, config) lookup and the
/// rank-warm-start store both use it, and node ids of equal-hash
/// netlists line up (construction is deterministic), so persisted
/// node-axis rank scores project onto a re-submitted model unchanged.
std::uint64_t structural_hash(const Netlist& net);

}  // namespace refbmc::model
