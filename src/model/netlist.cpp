#include "model/netlist.hpp"

#include <algorithm>
#include <stdexcept>

namespace refbmc::model {

namespace {
const std::string kEmptyName;
}

Netlist::Netlist() {
  nodes_.push_back(Node{NodeKind::Const, Signal::constant(false),
                        Signal::constant(false)});
  names_.emplace_back();
}

Signal Netlist::add_input(std::string name) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(
      Node{NodeKind::Input, Signal::constant(false), Signal::constant(false)});
  names_.emplace_back();
  inputs_.push_back(id);
  if (!name.empty()) set_name(id, std::move(name));
  return Signal::make(id);
}

Signal Netlist::add_latch(sat::lbool init, std::string name) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  // Until set_next, the latch holds its value (self-loop).
  nodes_.push_back(
      Node{NodeKind::Latch, Signal::make(id), Signal::constant(false)});
  names_.emplace_back();
  latch_pos_[id] = latches_.size();
  latches_.push_back(id);
  latch_init_.push_back(init);
  if (!name.empty()) set_name(id, std::move(name));
  return Signal::make(id);
}

void Netlist::set_next(Signal latch_sig, Signal next) {
  REFBMC_EXPECTS_MSG(!latch_sig.negated(),
                     "set_next expects the positive latch signal");
  REFBMC_EXPECTS(latch_sig.node() < nodes_.size());
  REFBMC_EXPECTS(next.node() < nodes_.size());
  Node& n = nodes_[latch_sig.node()];
  REFBMC_EXPECTS_MSG(n.kind == NodeKind::Latch, "set_next on a non-latch");
  n.fanin0 = next;
}

Signal Netlist::add_and(Signal a, Signal b) {
  REFBMC_EXPECTS(a.node() < nodes_.size() && b.node() < nodes_.size());
  // Constant folding and trivial cases.
  if (a.is_const_false() || b.is_const_false()) return Signal::constant(false);
  if (a.is_const_true()) return b;
  if (b.is_const_true()) return a;
  if (a == b) return a;
  if (a == !b) return Signal::constant(false);
  // Canonical operand order for structural hashing.
  if (b < a) std::swap(a, b);
  const auto key = std::make_pair(a.raw(), b.raw());
  if (const auto it = strash_.find(key); it != strash_.end())
    return Signal::make(it->second);
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(Node{NodeKind::And, a, b});
  names_.emplace_back();
  strash_.emplace(key, id);
  ++num_ands_;
  return Signal::make(id);
}

void Netlist::add_output(Signal s, std::string name) {
  REFBMC_EXPECTS(s.node() < nodes_.size());
  outputs_.push_back(s);
  output_names_.push_back(std::move(name));
}

void Netlist::add_bad(Signal s, std::string name) {
  REFBMC_EXPECTS(s.node() < nodes_.size());
  bads_.push_back(BadProperty{s, std::move(name)});
}

void Netlist::replace_bad(std::size_t index, Signal s, std::string name) {
  REFBMC_EXPECTS(index < bads_.size());
  REFBMC_EXPECTS(s.node() < nodes_.size());
  bads_[index] = BadProperty{s, std::move(name)};
}

sat::lbool Netlist::latch_init(NodeId latch) const {
  const auto it = latch_pos_.find(latch);
  REFBMC_EXPECTS_MSG(it != latch_pos_.end(), "not a latch");
  return latch_init_[it->second];
}

Signal Netlist::latch_next(NodeId latch) const {
  REFBMC_EXPECTS_MSG(kind(latch) == NodeKind::Latch, "not a latch");
  return nodes_[latch].fanin0;
}

const std::string& Netlist::name(NodeId id) const {
  REFBMC_EXPECTS(id < nodes_.size());
  return names_[id];
}

void Netlist::set_name(NodeId id, std::string name) {
  REFBMC_EXPECTS(id < nodes_.size());
  if (!names_[id].empty()) name_index_.erase(names_[id]);
  names_[id] = std::move(name);
  if (!names_[id].empty()) name_index_[names_[id]] = id;
}

std::optional<NodeId> Netlist::find_by_name(const std::string& name) const {
  const auto it = name_index_.find(name);
  if (it == name_index_.end()) return std::nullopt;
  return it->second;
}

std::vector<NodeId> Netlist::cone_of_influence(
    const std::vector<Signal>& roots) const {
  std::vector<bool> seen(nodes_.size(), false);
  seen[kConstNode] = true;
  std::vector<NodeId> work;
  const auto push = [&](Signal s) {
    if (!seen[s.node()]) {
      seen[s.node()] = true;
      work.push_back(s.node());
    }
  };
  for (const Signal s : roots) push(s);
  while (!work.empty()) {
    const NodeId id = work.back();
    work.pop_back();
    const Node& n = nodes_[id];
    switch (n.kind) {
      case NodeKind::And:
        push(n.fanin0);
        push(n.fanin1);
        break;
      case NodeKind::Latch:
        push(n.fanin0);  // next-state function
        break;
      case NodeKind::Input:
      case NodeKind::Const:
        break;
    }
  }
  std::vector<NodeId> cone;
  for (NodeId id = 0; id < nodes_.size(); ++id)
    if (seen[id]) cone.push_back(id);
  return cone;
}

void Netlist::check() const {
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    switch (n.kind) {
      case NodeKind::Const:
        if (id != kConstNode)
          throw std::logic_error("netlist: stray constant node");
        break;
      case NodeKind::And:
        if (n.fanin0.node() >= id || n.fanin1.node() >= id)
          throw std::logic_error(
              "netlist: AND fanin does not precede the node");
        break;
      case NodeKind::Latch:
        if (n.fanin0.node() >= nodes_.size())
          throw std::logic_error("netlist: latch next out of range");
        break;
      case NodeKind::Input:
        break;
    }
  }
  for (const Signal s : outputs_)
    if (s.node() >= nodes_.size())
      throw std::logic_error("netlist: output out of range");
  for (const BadProperty& b : bads_)
    if (b.signal.node() >= nodes_.size())
      throw std::logic_error("netlist: bad signal out of range");
}

std::uint64_t structural_hash(const Netlist& net) {
  // FNV-1a, with a distinct tag byte folded in ahead of every section so
  // e.g. "two inputs" can never collide with "one input + one output".
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (byte * 8)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  mix(0xA1);
  mix(net.num_nodes());
  for (NodeId id = 0; id < net.num_nodes(); ++id) {
    const Node& n = net.node(id);
    mix(static_cast<std::uint64_t>(n.kind));
    mix(n.fanin0.raw());
    if (n.kind == NodeKind::And) mix(n.fanin1.raw());
  }
  mix(0xA2);
  for (const NodeId id : net.inputs()) mix(id);
  mix(0xA3);
  for (const NodeId id : net.latches()) {
    mix(id);
    const sat::lbool init = net.latch_init(id);
    mix(init.is_true() ? 1u : init.is_false() ? 0u : 2u);
  }
  mix(0xA4);
  for (const Signal s : net.outputs()) mix(s.raw());
  mix(0xA5);
  for (const BadProperty& b : net.bad_properties()) mix(b.signal.raw());
  return h;
}

}  // namespace refbmc::model
