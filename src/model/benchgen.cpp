#include "model/benchgen.hpp"

#include <unordered_set>

#include "model/builder.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace refbmc::model {
namespace {

/// Tap masks (bit i set = register bit i feeds the XOR) giving long orbits
/// for Fibonacci LFSRs; from the standard maximal-length tables.  For
/// widths not listed we fall back to the two top bits and rely on the
/// generation-time orbit uniqueness check.
std::uint64_t lfsr_taps(int bits) {
  switch (bits) {
    case 4: return (1ull << 3) | (1ull << 2);
    case 5: return (1ull << 4) | (1ull << 2);
    case 6: return (1ull << 5) | (1ull << 4);
    case 7: return (1ull << 6) | (1ull << 5);
    case 8: return (1ull << 7) | (1ull << 5) | (1ull << 4) | (1ull << 3);
    case 10: return (1ull << 9) | (1ull << 6);
    case 12: return (1ull << 11) | (1ull << 5) | (1ull << 3) | (1ull << 0);
    case 16:
      return (1ull << 15) | (1ull << 14) | (1ull << 12) | (1ull << 3);
    case 20: return (1ull << 19) | (1ull << 16);
    case 24:
      return (1ull << 23) | (1ull << 22) | (1ull << 21) | (1ull << 16);
    default:
      return (1ull << (bits - 1)) | (1ull << (bits - 2));
  }
}

bool parity64(std::uint64_t x) { return (__builtin_popcountll(x) & 1) != 0; }

/// Builds the LFSR registers and returns the latch word; the update is
/// s' = (s << 1) | xor(taps), matching the bit-math used to find targets.
Word build_lfsr(Builder& b, int bits, std::uint64_t taps,
                std::uint64_t seed) {
  Word s = b.latch_word("lfsr", static_cast<std::size_t>(bits), seed);
  std::vector<Signal> tap_bits;
  for (int i = 0; i < bits; ++i)
    if ((taps >> i) & 1ull) tap_bits.push_back(s[static_cast<std::size_t>(i)]);
  Signal fb = Signal::constant(false);
  for (const Signal t : tap_bits) fb = b.xor_(fb, t);
  b.set_next_word(s, b.shift_left(s, fb));
  return s;
}

std::uint64_t lfsr_step(std::uint64_t s, std::uint64_t taps, int bits) {
  const std::uint64_t mask = (bits == 64) ? ~0ull : ((1ull << bits) - 1);
  const std::uint64_t fb = parity64(s & taps) ? 1ull : 0ull;
  return ((s << 1) | fb) & mask;
}

}  // namespace

Benchmark counter_reach(int bits, std::uint64_t target, bool with_enable) {
  REFBMC_EXPECTS(bits >= 1 && bits <= 62);
  REFBMC_EXPECTS(target < (1ull << bits));
  Benchmark bm;
  Builder b(bm.net);
  Word cnt = b.latch_word("cnt", static_cast<std::size_t>(bits), 0);
  const Signal en =
      with_enable ? bm.net.add_input("en") : Signal::constant(true);
  b.set_next_word(cnt, b.mux_word(en, b.increment(cnt), cnt));
  bm.net.add_bad(b.eq_const(cnt, target), "count_hits_target");
  bm.name = "cnt" + std::to_string(bits) + (with_enable ? "e" : "") + "_t" +
            std::to_string(target);
  bm.expect_fail = true;
  bm.expect_depth = static_cast<int>(target);
  bm.suggested_bound = static_cast<int>(target) + 2;
  return bm;
}

Benchmark counter_safe(int bits, std::uint64_t modulus,
                       std::uint64_t forbidden) {
  REFBMC_EXPECTS(bits >= 1 && bits <= 62);
  REFBMC_EXPECTS(modulus >= 2 && modulus <= (1ull << bits));
  REFBMC_EXPECTS(forbidden >= modulus && forbidden < (1ull << bits));
  Benchmark bm;
  Builder b(bm.net);
  Word cnt = b.latch_word("cnt", static_cast<std::size_t>(bits), 0);
  const Signal wrap = b.eq_const(cnt, modulus - 1);
  b.set_next_word(
      cnt, b.mux_word(wrap, b.constant_word(0, cnt.size()), b.increment(cnt)));
  bm.net.add_bad(b.eq_const(cnt, forbidden), "count_beyond_modulus");
  bm.name = "cntm" + std::to_string(bits) + "_m" + std::to_string(modulus);
  bm.expect_fail = false;
  bm.suggested_bound = 20;
  return bm;
}

Benchmark shift_all_ones(int n) {
  REFBMC_EXPECTS(n >= 1);
  Benchmark bm;
  Builder b(bm.net);
  const Signal in = bm.net.add_input("in");
  Word s = b.latch_word("sr", static_cast<std::size_t>(n), 0);
  b.set_next_word(s, b.shift_left(s, in));
  bm.net.add_bad(b.and_all(s), "all_ones");
  bm.name = "shift" + std::to_string(n);
  bm.expect_fail = true;
  bm.expect_depth = n;
  bm.suggested_bound = n + 2;
  return bm;
}

Benchmark lfsr_hit(int bits, int steps) {
  REFBMC_EXPECTS(bits >= 3 && bits <= 62);
  REFBMC_EXPECTS(steps >= 1);
  const std::uint64_t taps = lfsr_taps(bits);
  const std::uint64_t seed = 1;
  std::uint64_t s = seed;
  std::unordered_set<std::uint64_t> seen{s};
  for (int i = 0; i < steps; ++i) {
    s = lfsr_step(s, taps, bits);
    REFBMC_EXPECTS_MSG(seen.insert(s).second,
                       "lfsr orbit repeats before the requested step count");
  }
  Benchmark bm;
  Builder b(bm.net);
  Word reg = build_lfsr(b, bits, taps, seed);
  bm.net.add_bad(b.eq_const(reg, s), "orbit_state_hit");
  bm.name = "lfsr" + std::to_string(bits) + "_s" + std::to_string(steps);
  bm.expect_fail = true;
  bm.expect_depth = steps;
  bm.suggested_bound = steps + 2;
  return bm;
}

Benchmark lfsr_safe(int bits) {
  REFBMC_EXPECTS(bits >= 3 && bits <= 62);
  const std::uint64_t taps = lfsr_taps(bits);
  // The all-zero state is unreachable from a non-zero seed whenever the top
  // bit is tapped (the feedback of 10…0 is 1); all our taps include it.
  Benchmark bm;
  Builder b(bm.net);
  Word reg = build_lfsr(b, bits, taps, 1);
  bm.net.add_bad(b.eq_const(reg, 0), "zero_state");
  bm.name = "lfsr" + std::to_string(bits) + "_safe";
  bm.expect_fail = false;
  bm.suggested_bound = 24;
  return bm;
}

Benchmark gray_safe(int bits) {
  REFBMC_EXPECTS(bits >= 2 && bits <= 62);
  Benchmark bm;
  Builder b(bm.net);
  Word cnt = b.latch_word("bin", static_cast<std::size_t>(bits), 0);
  b.set_next_word(cnt, b.increment(cnt));
  // Gray output g = b xor (b >> 1).
  Word gray(cnt.size());
  for (std::size_t i = 0; i < cnt.size(); ++i)
    gray[i] =
        (i + 1 < cnt.size()) ? b.xor_(cnt[i], cnt[i + 1]) : cnt[i];
  // Shadow register holds the previous gray value.
  Word prev = b.latch_word("prev", cnt.size(), 0);
  b.set_next_word(prev, gray);
  // Bad: the gray code changed in two or more bit positions in one step.
  Word diff = b.xor_word(gray, prev);
  std::vector<Signal> pairs;
  for (std::size_t i = 0; i < diff.size(); ++i)
    for (std::size_t j = i + 1; j < diff.size(); ++j)
      pairs.push_back(b.and_(diff[i], diff[j]));
  bm.net.add_bad(b.or_all(pairs), "multi_bit_change");
  bm.name = "gray" + std::to_string(bits);
  bm.expect_fail = false;
  bm.suggested_bound = 20;
  return bm;
}

Benchmark johnson_safe(int bits) {
  REFBMC_EXPECTS(bits >= 3 && bits <= 62);
  Benchmark bm;
  Builder b(bm.net);
  Word j = b.latch_word("jr", static_cast<std::size_t>(bits), 0);
  b.set_next_word(j, b.shift_left(j, !j[j.size() - 1]));
  // States of a Johnson counter are runs (1^a 0^b or 0^a 1^b shifted in);
  // the local pattern 1,0,1 can never occur.
  bm.net.add_bad(b.and_(j[0], b.and_(!j[1], j[2])), "broken_run");
  bm.name = "johnson" + std::to_string(bits);
  bm.expect_fail = false;
  bm.suggested_bound = static_cast<int>(2 * bits) + 4;
  return bm;
}

namespace {
Benchmark make_arbiter(int n, bool buggy) {
  REFBMC_EXPECTS(n >= 2 && n <= 62);
  Benchmark bm;
  Builder b(bm.net);
  // One-hot token that advances only on an external tick (or any grant) —
  // the token position is input-dependent, so one-hotness at depth k is a
  // genuine proof obligation rather than a BCP-derivable constant.
  Word tok(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    tok[static_cast<std::size_t>(i)] =
        bm.net.add_latch(sat::lbool(i == 0), "tok[" + std::to_string(i) + "]");
  Word req = b.input_word("req", static_cast<std::size_t>(n));
  const Signal tick = bm.net.add_input("tick");
  const Signal advance = b.or_(tick, b.or_all(b.and_word(tok, req)));
  for (int i = 0; i < n; ++i) {
    const Signal rotated = tok[static_cast<std::size_t>((i + n - 1) % n)];
    bm.net.set_next(tok[static_cast<std::size_t>(i)],
                    b.mux(advance, rotated, tok[static_cast<std::size_t>(i)]));
  }
  Word grant(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    Signal g = b.and_(tok[static_cast<std::size_t>(i)],
                      req[static_cast<std::size_t>(i)]);
    if (buggy && i == 0) g = req[0];  // priority bypass: granted out of turn
    grant[static_cast<std::size_t>(i)] = g;
  }
  std::vector<Signal> pairs;
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j)
      pairs.push_back(b.and_(grant[static_cast<std::size_t>(i)],
                             grant[static_cast<std::size_t>(j)]));
  bm.net.add_bad(b.or_all(pairs), "double_grant");
  bm.name = std::string(buggy ? "arbbug" : "arb") + std::to_string(n);
  bm.expect_fail = buggy;
  bm.expect_depth = buggy ? 1 : -1;
  bm.suggested_bound = buggy ? 4 : n + 4;
  return bm;
}
}  // namespace

Benchmark arbiter_safe(int n) { return make_arbiter(n, false); }
Benchmark arbiter_buggy(int n) { return make_arbiter(n, true); }

namespace {
Benchmark make_fifo(int count_bits, bool buggy) {
  REFBMC_EXPECTS(count_bits >= 2 && count_bits <= 16);
  const std::uint64_t cap = (1ull << count_bits) - 2;
  Benchmark bm;
  Builder b(bm.net);
  Word cnt = b.latch_word("cnt", static_cast<std::size_t>(count_bits), 0);
  const Signal push = bm.net.add_input("push");
  const Signal pop = bm.net.add_input("pop");
  const Signal full = b.eq_const(cnt, buggy ? cap + 1 : cap);
  const Signal empty = b.eq_const(cnt, 0);
  const Signal do_push = b.and_(push, b.and_(!pop, !full));
  const Signal do_pop = b.and_(pop, b.and_(!push, !empty));
  const Word ones = b.constant_word(~0ull, cnt.size());
  Word next = b.mux_word(do_push, b.increment(cnt),
                         b.mux_word(do_pop, b.add_word(cnt, ones), cnt));
  b.set_next_word(cnt, next);
  bm.net.add_bad(b.eq_const(cnt, cap + 1), "overflow");
  bm.name = std::string(buggy ? "fifobug" : "fifo") + std::to_string(count_bits);
  bm.expect_fail = buggy;
  bm.expect_depth = buggy ? static_cast<int>(cap + 1) : -1;
  bm.suggested_bound = static_cast<int>(cap) + 4;
  return bm;
}
}  // namespace

Benchmark fifo_safe(int count_bits) { return make_fifo(count_bits, false); }
Benchmark fifo_buggy(int count_bits) { return make_fifo(count_bits, true); }

namespace {
Benchmark make_peterson(bool buggy) {
  Benchmark bm;
  Builder b(bm.net);
  // Program counters: 0 idle, 1 set-turn, 2 wait, 3 critical.
  Word pc0 = b.latch_word("pc0", 2, 0);
  Word pc1 = b.latch_word("pc1", 2, 0);
  const Signal flag0 = bm.net.add_latch(sat::l_False, "flag0");
  const Signal flag1 = bm.net.add_latch(sat::l_False, "flag1");
  const Signal turn = bm.net.add_latch(sat::l_False, "turn");  // 0 / 1
  const Signal sel = bm.net.add_input("sched");  // which process steps

  struct Proc {
    Word pc;
    Signal flag, other_flag;
    bool id;
  };
  const Proc procs[2] = {{pc0, flag0, flag1, false},
                         {pc1, flag1, flag0, true}};

  Word next_pc[2];
  Signal next_flag[2];
  Signal next_turn = turn;
  for (int i = 0; i < 2; ++i) {
    const Proc& p = procs[i];
    const Signal active = (i == 0) ? !sel : sel;
    const Signal at0 = b.eq_const(p.pc, 0);
    const Signal at1 = b.eq_const(p.pc, 1);
    const Signal at2 = b.eq_const(p.pc, 2);
    const Signal at3 = b.eq_const(p.pc, 3);
    // Correct Peterson: wait until flag[other]==0 or turn==i.
    // Bug: turn is set to self in state 1 (instead of to the other),
    // which lets both processes pass the wait test together.
    const Signal turn_is_me = p.id ? turn : !turn;
    const Signal can_enter = b.or_(!p.other_flag, turn_is_me);

    // pc transition when active.
    Word pc_next = p.pc;
    pc_next = b.mux_word(at0, b.constant_word(1, 2), pc_next);
    pc_next = b.mux_word(at1, b.constant_word(2, 2), pc_next);
    pc_next = b.mux_word(b.and_(at2, can_enter), b.constant_word(3, 2),
                         pc_next);
    pc_next = b.mux_word(at3, b.constant_word(0, 2), pc_next);
    next_pc[i] = b.mux_word(active, pc_next, p.pc);

    // flag: set on leaving idle, cleared on leaving critical.
    Signal f = p.flag;
    f = b.mux(b.and_(active, at0), Signal::constant(true), f);
    f = b.mux(b.and_(active, at3), Signal::constant(false), f);
    next_flag[i] = f;

    // turn: in state 1 set to the other process (correct) or self (bug).
    const bool turn_value = buggy ? p.id : !p.id;
    next_turn = b.mux(b.and_(active, at1),
                      Signal::constant(turn_value), next_turn);
  }
  b.set_next_word(pc0, next_pc[0]);
  b.set_next_word(pc1, next_pc[1]);
  bm.net.set_next(flag0, next_flag[0]);
  bm.net.set_next(flag1, next_flag[1]);
  bm.net.set_next(turn, next_turn);

  bm.net.add_bad(b.and_(b.eq_const(pc0, 3), b.eq_const(pc1, 3)),
                 "mutual_exclusion_violated");
  bm.name = buggy ? "petersonbug" : "peterson";
  bm.expect_fail = buggy;
  bm.expect_depth = buggy ? 6 : -1;
  bm.suggested_bound = buggy ? 10 : 16;
  return bm;
}
}  // namespace

Benchmark peterson_safe() { return make_peterson(false); }
Benchmark peterson_buggy() { return make_peterson(true); }

namespace {
Benchmark make_traffic(int timer_bits, bool buggy) {
  REFBMC_EXPECTS(timer_bits >= 3 && timer_bits <= 16);
  // North-south is green for t ∈ [0, green_end); east-west from
  // green_end+1 (a one-tick all-red gap at t == green_end).  green_end is
  // deliberately not a power of two so that neither activation collapses
  // to a single timer bit — the disjointness proof has to reason about
  // the full comparator chains.
  const std::uint64_t green_end = (1ull << (timer_bits - 1)) - 2;
  Benchmark bm;
  Builder b(bm.net);
  Word t = b.latch_word("timer", static_cast<std::size_t>(timer_bits), 0);
  const Signal walk = bm.net.add_input("walk");
  const Word end_w = b.constant_word(green_end, t.size());
  const Signal ns_active = b.less_than(t, end_w);
  // A pedestrian "walk" request pauses the timer during the green phase.
  const Signal hold = b.and_(walk, ns_active);
  b.set_next_word(t, b.mux_word(hold, t, b.increment(t)));
  // Correct east-west activation: t > green_end.  Bug: t > green_end - 2,
  // overlapping north-south at t == green_end - 1.
  const Word bug_w = b.constant_word(green_end - 2, t.size());
  const Signal ew_active =
      buggy ? b.less_than(bug_w, t) : b.less_than(end_w, t);
  bm.net.add_bad(b.and_(ns_active, ew_active), "both_directions_active");
  bm.name = std::string(buggy ? "trafficbug" : "traffic") +
            std::to_string(timer_bits);
  bm.expect_fail = buggy;
  bm.expect_depth = buggy ? static_cast<int>(green_end - 1) : -1;
  bm.suggested_bound = static_cast<int>(green_end) + 4;
  return bm;
}
}  // namespace

Benchmark traffic_safe(int timer_bits) { return make_traffic(timer_bits, false); }
Benchmark traffic_buggy(int timer_bits) { return make_traffic(timer_bits, true); }

Benchmark accumulator_reach(int acc_bits, int in_bits, std::uint64_t target) {
  REFBMC_EXPECTS(acc_bits >= 2 && acc_bits <= 62);
  REFBMC_EXPECTS(in_bits >= 1 && in_bits < acc_bits);
  REFBMC_EXPECTS(target < (1ull << acc_bits));
  Benchmark bm;
  Builder b(bm.net);
  Word acc = b.latch_word("acc", static_cast<std::size_t>(acc_bits), 0);
  Word in = b.input_word("in", static_cast<std::size_t>(in_bits));
  Word ext = in;
  ext.resize(acc.size(), Signal::constant(false));  // zero extension
  b.set_next_word(acc, b.add_word(acc, ext));
  bm.net.add_bad(b.eq_const(acc, target), "sum_hits_target");
  const std::uint64_t max_step = (1ull << in_bits) - 1;
  bm.name = "acc" + std::to_string(acc_bits) + "x" + std::to_string(in_bits) +
            "_t" + std::to_string(target);
  bm.expect_fail = true;
  bm.expect_depth = static_cast<int>((target + max_step - 1) / max_step);
  bm.suggested_bound = bm.expect_depth + 2;
  return bm;
}

Benchmark accumulator_safe(int acc_bits, int in_bits, std::uint64_t target) {
  REFBMC_EXPECTS(acc_bits >= 2 && acc_bits <= 62);
  REFBMC_EXPECTS(in_bits >= 1 && in_bits + 1 < acc_bits);
  REFBMC_EXPECTS_MSG((target & 1ull) == 1, "target must be odd");
  Benchmark bm;
  Builder b(bm.net);
  Word acc = b.latch_word("acc", static_cast<std::size_t>(acc_bits), 0);
  Word in = b.input_word("in", static_cast<std::size_t>(in_bits));
  // Add input << 1: only even amounts, so acc stays even and an odd
  // target is unreachable.  The unsat core concentrates on the low bit.
  Word ext(acc.size(), Signal::constant(false));
  for (std::size_t i = 0; i < in.size(); ++i) ext[i + 1] = in[i];
  b.set_next_word(acc, b.add_word(acc, ext));
  bm.net.add_bad(b.eq_const(acc, target), "odd_target_hit");
  bm.name = "accsafe" + std::to_string(acc_bits) + "x" +
            std::to_string(in_bits);
  bm.expect_fail = false;
  bm.suggested_bound = 14;
  return bm;
}

Benchmark needle(int a_bits, int b_bits, std::uint64_t A, std::uint64_t B) {
  REFBMC_EXPECTS(a_bits >= 2 && a_bits <= 62);
  REFBMC_EXPECTS(b_bits >= 2 && b_bits <= 62);
  REFBMC_EXPECTS(A < (1ull << a_bits) && B < (1ull << b_bits));
  Benchmark bm;
  Builder b(bm.net);
  Word a = b.latch_word("a", static_cast<std::size_t>(a_bits), 0);
  Word bb = b.latch_word("b", static_cast<std::size_t>(b_bits), 0);
  const Signal en = bm.net.add_input("en");
  b.set_next_word(a, b.increment(a));
  b.set_next_word(bb, b.mux_word(en, b.increment(bb), bb));
  bm.net.add_bad(b.and_(b.eq_const(a, A), b.eq_const(bb, B)),
                 "joint_target");
  bm.name = "needle" + std::to_string(a_bits) + "_" + std::to_string(b_bits) +
            "_A" + std::to_string(A) + "_B" + std::to_string(B);
  // `a` hits A only at depth A (before wrapping); `b` can reach B there
  // iff B <= A.
  bm.expect_fail = (B <= A);
  bm.expect_depth = bm.expect_fail ? static_cast<int>(A) : -1;
  bm.suggested_bound = static_cast<int>(A) + 3;
  return bm;
}

Benchmark with_distractor(Benchmark base, int regs, std::uint64_t seed) {
  REFBMC_EXPECTS(regs >= 2);
  REFBMC_EXPECTS_MSG(base.net.bad_properties().size() == 1,
                     "distractor expects exactly one bad property");
  Rng rng(seed);
  Builder b(base.net);
  Netlist& net = base.net;

  // Input-driven mixing network: a twisted shift chain with random XOR /
  // AND couplings.  It is connected to the bad signal only through a
  // disjunction with a fresh free input, so no unsatisfiability proof
  // ever needs it — it is pure cone-of-influence and literal-count
  // inflation, like the non-core gates of the paper's Fig. 3.
  const Signal mix_in0 = net.add_input("dmix0");
  const Signal mix_in1 = net.add_input("dmix1");
  Word d(static_cast<std::size_t>(regs));
  for (int i = 0; i < regs; ++i)
    d[static_cast<std::size_t>(i)] = net.add_latch(
        sat::lbool(false), "dreg[" + std::to_string(i) + "]");
  for (int i = 0; i < regs; ++i) {
    const Signal prev = d[static_cast<std::size_t>((i + regs - 1) % regs)];
    const Signal other =
        d[static_cast<std::size_t>(rng.next_int(0, regs - 1))];
    Signal nxt;
    switch (rng.next_int(0, 2)) {
      case 0: nxt = b.xor_(prev, b.and_(other, mix_in0)); break;
      case 1: nxt = b.mux(mix_in1, b.xor_(prev, other), prev); break;
      default: nxt = b.xor_(prev, b.or_(other, mix_in0)); break;
    }
    net.set_next(d[static_cast<std::size_t>(i)], nxt);
  }
  std::vector<Signal> gobble;
  for (int i = 0; i + 1 < regs; i += 2)
    gobble.push_back(b.and_(d[static_cast<std::size_t>(i)],
                            d[static_cast<std::size_t>(i + 1)]));
  const Signal free_pass = net.add_input("dfree");
  const Signal guard = b.or_(free_pass, b.or_all(gobble));

  const BadProperty old = net.bad_properties()[0];
  // Rebuild the (single) bad property as old ∧ guard.  `guard` is
  // satisfiable at any frame via `dfree`, so verdict and earliest depth
  // are unchanged.
  net.replace_bad(0, b.and_(old.signal, guard), old.name + "_distracted");

  base.name += "+d" + std::to_string(regs);
  return base;
}

std::vector<Benchmark> standard_suite() {
  std::vector<Benchmark> suite;
  suite.reserve(37);
  // Mirrors the character of the paper's Table 1: a mix of failing (F)
  // and passing rows, a few easy ones, and a majority of search-heavy
  // instances — distractor-wrapped variants standing in for the wide
  // industrial cones of influence of the IBM circuits.
  suite.push_back(counter_reach(8, 24, true));
  suite.push_back(counter_reach(10, 18, true));
  suite.push_back(with_distractor(counter_reach(8, 24, true), 24, 101));
  suite.push_back(with_distractor(counter_reach(10, 18, true), 40, 110));
  suite.push_back(counter_safe(8, 200, 250));
  suite.push_back(with_distractor(counter_safe(8, 200, 250), 32, 102));
  suite.push_back(with_distractor(counter_safe(12, 3000, 4000), 48, 111));
  suite.push_back(shift_all_ones(12));
  suite.push_back(lfsr_hit(16, 22));
  suite.push_back(lfsr_safe(10));
  suite.push_back(gray_safe(8));
  suite.push_back(with_distractor(gray_safe(8), 24, 112));
  suite.push_back(johnson_safe(12));
  suite.push_back(arbiter_safe(8));
  suite.push_back(arbiter_safe(16));
  suite.push_back(with_distractor(arbiter_safe(8), 24, 103));
  suite.push_back(with_distractor(arbiter_safe(12), 32, 113));
  suite.push_back(arbiter_buggy(8));
  suite.push_back(fifo_safe(4));
  suite.push_back(fifo_safe(5));
  suite.push_back(with_distractor(fifo_safe(4), 32, 104));
  suite.push_back(with_distractor(fifo_safe(5), 24, 114));
  suite.push_back(fifo_buggy(4));
  suite.push_back(with_distractor(fifo_buggy(4), 24, 105));
  suite.push_back(peterson_safe());
  suite.push_back(with_distractor(peterson_safe(), 32, 106));
  suite.push_back(with_distractor(peterson_buggy(), 24, 115));
  suite.push_back(traffic_safe(4));
  suite.push_back(traffic_buggy(4));
  suite.push_back(accumulator_reach(12, 3, 70));
  suite.push_back(accumulator_reach(16, 4, 255));
  suite.push_back(with_distractor(accumulator_reach(12, 3, 70), 24, 108));
  suite.push_back(with_distractor(accumulator_reach(16, 4, 255), 24, 116));
  suite.push_back(accumulator_safe(12, 3, 63));
  suite.push_back(needle(8, 8, 20, 10));
  suite.push_back(needle(10, 8, 24, 30));
  suite.push_back(with_distractor(needle(10, 8, 24, 30), 32, 109));
  REFBMC_ASSERT(suite.size() == 37);
  return suite;
}

std::vector<Benchmark> quick_suite() {
  std::vector<Benchmark> suite;
  suite.push_back(counter_reach(6, 10, true));
  suite.push_back(counter_safe(6, 40, 50));
  suite.push_back(shift_all_ones(8));
  suite.push_back(arbiter_safe(6));
  suite.push_back(fifo_buggy(3));
  suite.push_back(peterson_safe());
  suite.push_back(accumulator_safe(10, 3, 63));
  suite.push_back(with_distractor(accumulator_safe(10, 3, 63), 12, 7));
  return suite;
}

}  // namespace refbmc::model
