// Explicit-state reachability for small models.
//
// BFS over the latch state space, enumerating all input valuations at each
// state.  Exponential in #latches and #inputs — this is deliberately a
// brute-force oracle used to cross-check BMC verdicts, counter-example
// depths, and completeness thresholds in the test suite and benches.
#pragma once

#include <cstdint>
#include <optional>

#include "model/netlist.hpp"

namespace refbmc::mc {

struct ReachResult {
  /// Does the invariant GP (bad never 1 on any reachable state, under any
  /// input) hold?
  bool property_holds = true;
  /// Shortest path length (number of transitions) from an initial state to
  /// a bad valuation; 0 means an initial state is already bad.  Unset when
  /// the property holds.
  std::optional<int> shortest_counterexample;
  /// Forward radius of the reachable state space: the largest BFS level at
  /// which a new state was discovered.  This upper-bounds the completeness
  /// threshold for invariant properties.
  int diameter = 0;
  std::uint64_t num_reachable_states = 0;
};

/// Explores the model with BFS.  `bad_index` selects which bad property to
/// check.  Requires num_latches ≤ 24 and num_inputs ≤ 16 (state and input
/// spaces are enumerated exhaustively).
ReachResult explicit_reach(const model::Netlist& net, std::size_t bad_index = 0);

/// Forward radius of the reachable state space, independent of any
/// property: the largest BFS level at which a new state is discovered.
/// This is a valid completeness threshold for invariant BMC — if no
/// counter-example exists at depths ≤ diameter, the property holds.
/// Same size limits as explicit_reach.
int compute_diameter(const model::Netlist& net);

}  // namespace refbmc::mc
