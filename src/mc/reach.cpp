#include "mc/reach.hpp"

#include <deque>
#include <unordered_set>
#include <vector>

#include "util/assert.hpp"

namespace refbmc::mc {

using model::NodeId;
using model::NodeKind;
using model::Signal;

namespace {

/// Flat combinational evaluator over packed latch/input bit vectors
/// (avoids Simulator's per-step allocation in the innermost loop).
class Evaluator {
 public:
  explicit Evaluator(const model::Netlist& net) : net_(net) {
    vals_.resize(net.num_nodes(), 0);
  }

  /// Evaluates all nodes for `state` (latch bits) and `inputs` (input bits).
  void eval(std::uint64_t state, std::uint64_t inputs) {
    const auto& latches = net_.latches();
    for (std::size_t i = 0; i < latches.size(); ++i)
      vals_[latches[i]] = static_cast<char>((state >> i) & 1ull);
    const auto& ins = net_.inputs();
    for (std::size_t i = 0; i < ins.size(); ++i)
      vals_[ins[i]] = static_cast<char>((inputs >> i) & 1ull);
    for (NodeId id = 1; id < net_.num_nodes(); ++id) {
      const model::Node& n = net_.node(id);
      if (n.kind != NodeKind::And) continue;
      vals_[id] = static_cast<char>(value(n.fanin0) && value(n.fanin1));
    }
  }

  bool value(Signal s) const { return (vals_[s.node()] != 0) != s.negated(); }

  std::uint64_t next_state() const {
    const auto& latches = net_.latches();
    std::uint64_t ns = 0;
    for (std::size_t i = 0; i < latches.size(); ++i)
      if (value(net_.latch_next(latches[i]))) ns |= (1ull << i);
    return ns;
  }

 private:
  const model::Netlist& net_;
  std::vector<char> vals_;
};

}  // namespace

int compute_diameter(const model::Netlist& net) {
  REFBMC_EXPECTS_MSG(net.num_latches() <= 24,
                     "compute_diameter: too many latches (limit 24)");
  REFBMC_EXPECTS_MSG(net.num_inputs() <= 16,
                     "compute_diameter: too many inputs (limit 16)");
  const std::uint64_t num_inputs_combos = 1ull << net.num_inputs();
  Evaluator eval(net);

  std::vector<std::size_t> free_bits;
  std::uint64_t base = 0;
  const auto& latches = net.latches();
  for (std::size_t i = 0; i < latches.size(); ++i) {
    const sat::lbool init = net.latch_init(latches[i]);
    if (init.is_undef())
      free_bits.push_back(i);
    else if (init.is_true())
      base |= (1ull << i);
  }
  REFBMC_EXPECTS_MSG(free_bits.size() <= 20,
                     "compute_diameter: too many uninitialised latches");

  std::unordered_set<std::uint64_t> visited;
  std::deque<std::pair<std::uint64_t, int>> queue;
  for (std::uint64_t combo = 0; combo < (1ull << free_bits.size()); ++combo) {
    std::uint64_t s = base;
    for (std::size_t j = 0; j < free_bits.size(); ++j)
      if ((combo >> j) & 1ull) s |= (1ull << free_bits[j]);
    if (visited.insert(s).second) queue.emplace_back(s, 0);
  }

  int diameter = 0;
  while (!queue.empty()) {
    const auto [state, depth] = queue.front();
    queue.pop_front();
    if (depth > diameter) diameter = depth;
    for (std::uint64_t in = 0; in < num_inputs_combos; ++in) {
      eval.eval(state, in);
      const std::uint64_t ns = eval.next_state();
      if (visited.insert(ns).second) queue.emplace_back(ns, depth + 1);
    }
  }
  return diameter;
}

ReachResult explicit_reach(const model::Netlist& net, std::size_t bad_index) {
  REFBMC_EXPECTS_MSG(net.num_latches() <= 24,
                     "explicit_reach: too many latches (limit 24)");
  REFBMC_EXPECTS_MSG(net.num_inputs() <= 16,
                     "explicit_reach: too many inputs (limit 16)");
  REFBMC_EXPECTS(bad_index < net.bad_properties().size());
  const Signal bad = net.bad_properties()[bad_index].signal;

  const std::uint64_t num_inputs_combos = 1ull << net.num_inputs();
  Evaluator eval(net);

  // Initial states: fixed bits from latch init; l_Undef bits enumerate.
  std::vector<std::size_t> free_bits;
  std::uint64_t base = 0;
  const auto& latches = net.latches();
  for (std::size_t i = 0; i < latches.size(); ++i) {
    const sat::lbool init = net.latch_init(latches[i]);
    if (init.is_undef())
      free_bits.push_back(i);
    else if (init.is_true())
      base |= (1ull << i);
  }
  REFBMC_EXPECTS_MSG(free_bits.size() <= 20,
                     "explicit_reach: too many uninitialised latches");

  ReachResult result;
  std::unordered_set<std::uint64_t> visited;
  std::deque<std::pair<std::uint64_t, int>> queue;  // (state, depth)

  for (std::uint64_t combo = 0; combo < (1ull << free_bits.size()); ++combo) {
    std::uint64_t s = base;
    for (std::size_t j = 0; j < free_bits.size(); ++j)
      if ((combo >> j) & 1ull) s |= (1ull << free_bits[j]);
    if (visited.insert(s).second) queue.emplace_back(s, 0);
  }

  while (!queue.empty()) {
    const auto [state, depth] = queue.front();
    queue.pop_front();
    ++result.num_reachable_states;
    if (depth > result.diameter) result.diameter = depth;

    for (std::uint64_t in = 0; in < num_inputs_combos; ++in) {
      eval.eval(state, in);
      if (eval.value(bad)) {
        // Bad is a function of (state, input): a counter-example of length
        // `depth` transitions ends in this state.
        if (!result.shortest_counterexample ||
            depth < *result.shortest_counterexample) {
          result.property_holds = false;
          result.shortest_counterexample = depth;
        }
      }
      const std::uint64_t ns = eval.next_state();
      if (visited.insert(ns).second) queue.emplace_back(ns, depth + 1);
    }
    // BFS order guarantees the first bad hit is at minimal depth; stop
    // expanding deeper once found (still finish current depth’s checks).
    if (result.shortest_counterexample &&
        depth >= *result.shortest_counterexample)
      break;
  }
  return result;
}

}  // namespace refbmc::mc
