#include "api/refbmc.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "portfolio/scheduler.hpp"
#include "util/timer.hpp"

namespace refbmc::api {

RaceOptions RaceOptions::from_options(const Options& opts) {
  RaceOptions o;
  o.cli_ = PortfolioConfig::from_options(opts);
  // The one-shot examples' historical spellings, folded into the same
  // path so no caller parses flags privately any more.
  if (opts.has("bound")) o.cli_.max_depth = opts.get_int("bound", o.cli_.max_depth);
  if (opts.has("policy")) o.cli_.policies = {opts.get("policy")};
  if (opts.get_bool("any-frame", false)) o.bad_mode_ = bmc::BadMode::Any;
  return o;
}

RaceOptions& RaceOptions::policies(std::vector<std::string> names) {
  cli_.policies = std::move(names);
  return *this;
}
RaceOptions& RaceOptions::policy(const std::string& name) {
  cli_.policies = {name};
  return *this;
}
RaceOptions& RaceOptions::max_depth(int depth) {
  cli_.max_depth = depth;
  return *this;
}
RaceOptions& RaceOptions::budget_sec(double sec) {
  cli_.budget_sec = sec;
  return *this;
}
RaceOptions& RaceOptions::threads(int n) {
  cli_.num_threads = n;
  return *this;
}
RaceOptions& RaceOptions::seed(std::uint64_t s) {
  cli_.seed = s;
  return *this;
}
RaceOptions& RaceOptions::incremental(bool on) {
  cli_.incremental = on;
  return *this;
}
RaceOptions& RaceOptions::simplify(bool on) {
  cli_.simplify = on;
  return *this;
}
RaceOptions& RaceOptions::bad_mode(bmc::BadMode mode) {
  bad_mode_ = mode;
  return *this;
}
RaceOptions& RaceOptions::decision(const std::string& mode) {
  cli_.decision = mode;
  return *this;
}
RaceOptions& RaceOptions::glue_lbd(int lbd) {
  cli_.glue_lbd = lbd;
  return *this;
}
RaceOptions& RaceOptions::tier_lbd(int lbd) {
  cli_.tier_lbd = lbd;
  return *this;
}
RaceOptions& RaceOptions::share(bool on) {
  cli_.share = on;
  return *this;
}
RaceOptions& RaceOptions::share_lbd(int lbd) {
  cli_.share_lbd = lbd;
  return *this;
}
RaceOptions& RaceOptions::share_size(int size) {
  cli_.share_size = size;
  return *this;
}
RaceOptions& RaceOptions::share_cap(int clauses) {
  cli_.share_cap = clauses;
  return *this;
}
RaceOptions& RaceOptions::share_rank(bool on) {
  cli_.share_rank = on;
  return *this;
}
RaceOptions& RaceOptions::core_weighting(const std::string& name) {
  cli_.core_weighting = name;
  return *this;
}
RaceOptions& RaceOptions::preprocess(bool on) {
  cli_.preprocess = on;
  return *this;
}
RaceOptions& RaceOptions::bve_budget(int occurrences) {
  cli_.bve_budget = occurrences;
  return *this;
}
RaceOptions& RaceOptions::vivify_interval(int restarts) {
  cli_.vivify_interval = restarts;
  cli_.vivify_interval_set = true;
  return *this;
}
RaceOptions& RaceOptions::assumption_savepoint(bool on) {
  cli_.assumption_savepoint = on;
  return *this;
}
RaceOptions& RaceOptions::mem_ceiling_mb(int mb) {
  cli_.mem_ceiling_mb = mb;
  return *this;
}
RaceOptions& RaceOptions::tape_cold(bool on) {
  cli_.tape_cold = on;
  return *this;
}

portfolio::ResolvedPortfolio RaceOptions::resolve() const {
  portfolio::ResolvedPortfolio r = portfolio::resolve(cli_);
  r.engine.bad_mode = bad_mode_;
  return r;
}

std::uint64_t CheckResult::total_decisions() const {
  std::uint64_t n = 0;
  for (const auto& d : per_depth) n += d.decisions;
  return n;
}
std::uint64_t CheckResult::total_propagations() const {
  std::uint64_t n = 0;
  for (const auto& d : per_depth) n += d.propagations;
  return n;
}
std::uint64_t CheckResult::total_conflicts() const {
  std::uint64_t n = 0;
  for (const auto& d : per_depth) n += d.conflicts;
  return n;
}

CheckResult check(const CheckRequest& request, const CheckHooks& hooks) {
  portfolio::ResolvedPortfolio r = request.options.resolve();
  r.engine.stop = hooks.stop;
  r.engine.rank_source = hooks.rank_source;
  r.engine.on_depth = hooks.on_depth;
  if (hooks.deadline_sec > 0.0)
    r.engine.total_time_limit_sec =
        r.engine.total_time_limit_sec > 0.0
            ? std::min(r.engine.total_time_limit_sec, hooks.deadline_sec)
            : hooks.deadline_sec;

  const portfolio::PortfolioScheduler scheduler(r.num_threads, r.seed,
                                                r.sharing);
  const portfolio::RaceResult race =
      scheduler.race(request.net, request.bad_index, r.engine, r.policies);

  CheckResult out;
  out.status = race.status();
  out.wall_time_sec = race.wall_time_sec;
  out.frames_encoded = race.frames_encoded;
  out.clauses_exported = race.clauses_exported;
  out.clauses_imported = race.clauses_imported;
  out.ranks_published = race.ranks_published;
  out.rank_refreshes = race.rank_refreshes;
  out.cancel_latency_us = race.cancel_latency_us;
  out.peak_mem_bytes = race.peak_mem_bytes;
  out.mem_limit_hit = race.mem_limit_hit;
  if (race.has_winner()) {
    const portfolio::JobResult& w = race.winning();
    out.winner_policy = w.name;
    out.counterexample = w.result.counterexample;
    out.counterexample_depth = w.result.counterexample_depth;
    out.last_completed_depth = w.result.last_completed_depth;
    out.per_depth = w.result.per_depth;
  } else {
    // No verdict: report the furthest any entrant got, so a budget-cut
    // check still tells the caller how deep it reached.
    for (const auto& e : race.entrants)
      out.last_completed_depth =
          std::max(out.last_completed_depth, e.result.last_completed_depth);
  }
  return out;
}

ObservabilityScope::ObservabilityScope(const RaceOptions& options)
    : trace_file_(options.cli().trace_file),
      metrics_file_(options.cli().metrics_file) {
  if (!trace_file_.empty()) {
    obs::TraceConfig tc;
    tc.buffer_events = std::max<std::size_t>(
        1, static_cast<std::size_t>(options.cli().trace_buffer_kb) * 1024 /
               sizeof(obs::TraceEvent));
    obs::trace_begin(tc);
    obs::trace_set_thread_track("driver");
  }
  if (!metrics_file_.empty()) obs::metrics_enable(true);
}

ObservabilityScope::~ObservabilityScope() {
  if (!trace_file_.empty()) {
    const obs::TraceDump dump = obs::trace_end();
    obs::write_chrome_trace_file(trace_file_, dump);
    std::printf("trace: %llu events on %zu tracks (%llu dropped) -> %s\n",
                static_cast<unsigned long long>(dump.total_events()),
                dump.tracks.size(),
                static_cast<unsigned long long>(dump.total_dropped()),
                trace_file_.c_str());
  }
  if (!metrics_file_.empty()) {
    obs::write_metrics_file(metrics_file_, obs::metrics());
    std::printf("metrics -> %s\n", metrics_file_.c_str());
  }
}

std::uint64_t config_fingerprint(const RaceOptions& options) {
  // FNV-1a over (tag, value) pairs, the same mixing discipline as
  // bmc::formula_fingerprint / model::structural_hash.  Resolve first so
  // the hash covers the *effective* configuration — e.g. a vivify
  // interval that --preprocess off forces to 0 hashes as 0 — and so two
  // option spellings of the same behaviour collide on purpose.
  const portfolio::ResolvedPortfolio r = options.resolve();

  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t tag, std::uint64_t v) {
    for (const std::uint64_t word : {tag, v})
      for (int byte = 0; byte < 8; ++byte) {
        h ^= (word >> (byte * 8)) & 0xff;
        h *= 1099511628211ull;
      }
  };
  const auto mix_double = [&mix](std::uint64_t tag, double d) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(d));
    __builtin_memcpy(&bits, &d, sizeof(bits));
    mix(tag, bits);
  };

  // The formula component — shared verbatim with the shard GroupKey.
  mix(0x10, bmc::formula_fingerprint(r.engine));
  // The search component: everything else that can change a verdict, a
  // trace or a per-depth counter.
  mix(0x11, static_cast<std::uint64_t>(r.policies.size()));
  for (const bmc::OrderingPolicy p : r.policies)
    mix(0x12, static_cast<std::uint64_t>(p));
  mix(0x13, static_cast<std::uint64_t>(r.engine.max_depth));
  mix_double(0x14, r.engine.total_time_limit_sec);
  mix(0x15, r.engine.incremental ? 1 : 0);
  mix(0x16, static_cast<std::uint64_t>(r.engine.weighting));
  mix(0x17, static_cast<std::uint64_t>(r.engine.solver.decision));
  mix(0x18, static_cast<std::uint64_t>(r.engine.solver.glue_lbd));
  mix(0x19, static_cast<std::uint64_t>(r.engine.solver.tier_lbd));
  mix(0x1a, static_cast<std::uint64_t>(
                r.engine.solver.inprocess.vivify_interval));
  mix(0x1b, r.engine.solver.assumption_savepoint ? 1 : 0);
  mix(0x1c, static_cast<std::uint64_t>(r.num_threads));
  mix(0x1d, r.seed);
  mix(0x1e, r.sharing.enabled ? 1 : 0);
  mix(0x1f, static_cast<std::uint64_t>(r.sharing.lbd_max));
  mix(0x20, static_cast<std::uint64_t>(r.sharing.size_max));
  mix(0x21, static_cast<std::uint64_t>(r.sharing.capacity));
  mix(0x22, r.sharing.rank ? 1 : 0);
  mix(0x23, static_cast<std::uint64_t>(
                r.engine.preprocess.bve_max_resolvent));
  // The memory ceiling changes when a run is cut off, hence verdicts —
  // it must key the cache.  tape_cold is deliberately ABSENT: cold
  // storage re-encodes the same clauses (round-trip-exact codec), so the
  // formula, the search and every verdict are bit-identical either way.
  mix(0x24, r.engine.mem_ceiling_bytes);
  return h;
}

}  // namespace refbmc::api
