// The stable public façade of refbmc: one value-typed request, one
// value-typed result, one call.
//
//   api::CheckRequest req;
//   req.net = model::read_aiger_file("design.aag");
//   req.options.max_depth(30).policies({"dynamic", "evsids"});
//   const api::CheckResult res = api::check(req);
//
// Everything underneath — the portfolio race over decision-ordering
// policies, encode-once formula tapes, lemma/rank exchange, preprocessing
// and the incremental fast path — is reached exclusively through
// RaceOptions, a builder over the same knob set the CLI exposes.  The
// examples, the benches, the one-shot CLIs and the job server
// (service/job_server.hpp) all construct races only through this header,
// so the scattered PortfolioConfig / EngineConfig / SolverConfig plumbing
// can evolve without breaking any caller.
//
// Identity functions for the serving layer live here too:
// config_fingerprint hashes every behaviour-affecting option (and embeds
// bmc::formula_fingerprint, the same function the shard grouping keys
// on), so "same request" means the same thing to the result cache as
// "same formula" means to the clause-sharing groups.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "bmc/engine.hpp"
#include "model/netlist.hpp"
#include "util/options.hpp"

namespace refbmc::portfolio {
struct ResolvedPortfolio;
}

namespace refbmc::api {

/// Builder-style configuration of one check: wraps the CLI-level
/// PortfolioConfig (threads, policies, budget, sharing, preprocessing,
/// ...) plus the engine-level bad mode, behind chainable setters.
/// Invalid *values* (unknown policy name, tier below glue) surface at
/// resolve time — i.e. inside api::check — as std::invalid_argument,
/// exactly like the CLI path, because they go through the same resolver.
class RaceOptions {
 public:
  RaceOptions() = default;

  /// The one shared CLI path (satisfying every example/bench/daemon):
  /// all PortfolioConfig flags (--threads, --policies, --depth, --budget,
  /// --share*, --preprocess, ... see util/options.hpp) plus the
  /// engine-level spellings the one-shot examples grew over time:
  /// `--policy P` (single-policy lineup), `--bound N` (alias of
  /// --depth), `--any-frame` (BadMode::Any).
  static RaceOptions from_options(const Options& opts);

  // ---- chainable setters ---------------------------------------------------
  RaceOptions& policies(std::vector<std::string> names);
  RaceOptions& policy(const std::string& name);  // single-entrant lineup
  RaceOptions& max_depth(int depth);
  RaceOptions& budget_sec(double sec);
  RaceOptions& threads(int n);
  RaceOptions& seed(std::uint64_t s);
  RaceOptions& incremental(bool on);
  RaceOptions& simplify(bool on);
  RaceOptions& bad_mode(bmc::BadMode mode);
  RaceOptions& decision(const std::string& mode);  // chaff | evsids
  RaceOptions& glue_lbd(int lbd);
  RaceOptions& tier_lbd(int lbd);
  RaceOptions& share(bool on);
  RaceOptions& share_lbd(int lbd);
  RaceOptions& share_size(int size);
  RaceOptions& share_cap(int clauses);
  RaceOptions& share_rank(bool on);
  RaceOptions& core_weighting(const std::string& name);
  RaceOptions& preprocess(bool on);
  RaceOptions& bve_budget(int occurrences);
  RaceOptions& vivify_interval(int restarts);
  RaceOptions& assumption_savepoint(bool on);
  /// Formula-state memory ceiling in MiB (0 = unlimited); a breach ends
  /// the race with Status::ResourceLimit and mem_limit_hit set.
  RaceOptions& mem_ceiling_mb(int mb);
  /// Keep replayed tape prefixes codec-encoded (~3x smaller resident
  /// formula).  Representation-only: excluded from config_fingerprint.
  RaceOptions& tape_cold(bool on);

  // ---- inspection ----------------------------------------------------------
  const PortfolioConfig& cli() const { return cli_; }
  bmc::BadMode bad_mode() const { return bad_mode_; }
  int max_depth() const { return cli_.max_depth; }
  double budget_sec() const { return cli_.budget_sec; }

  /// Resolves to the scheduler/engine types (parses policy and mode
  /// names; throws std::invalid_argument on unknown ones) and applies
  /// the façade-level extras (bad mode).
  portfolio::ResolvedPortfolio resolve() const;

 private:
  friend std::uint64_t config_fingerprint(const RaceOptions&);
  PortfolioConfig cli_;
  bmc::BadMode bad_mode_ = bmc::BadMode::Last;
};

/// One self-contained check: the model (owned by value, so a request can
/// be queued, shipped or cached without lifetime strings attached), the
/// property, and how to race it.
struct CheckRequest {
  model::Netlist net;
  std::size_t bad_index = 0;
  std::string name;  // label for reports / server logs
  RaceOptions options;
};

/// The race outcome, flattened to values: verdict, counter-example,
/// winner identity, the winner's per-depth series, and the race-level
/// exchange counters (see portfolio::RaceResult for their semantics).
struct CheckResult {
  using Status = bmc::BmcResult::Status;

  Status status = Status::ResourceLimit;
  std::optional<bmc::Trace> counterexample;
  int counterexample_depth = -1;
  int last_completed_depth = -1;
  /// Winning entrant's policy name ("" when no entrant finished).
  std::string winner_policy;
  /// The winner's per-depth statistics (empty when no winner).
  std::vector<bmc::DepthStats> per_depth;
  double wall_time_sec = 0.0;

  // Race-level counters (zeros for cached results — nothing was solved).
  std::uint64_t frames_encoded = 0;
  std::uint64_t clauses_exported = 0;
  std::uint64_t clauses_imported = 0;
  std::uint64_t ranks_published = 0;
  std::uint64_t rank_refreshes = 0;
  std::uint64_t cancel_latency_us = 0;
  /// Race-wide formula-state footprint high-water mark, and whether a
  /// --mem-ceiling breach (not a timeout) produced the ResourceLimit.
  std::uint64_t peak_mem_bytes = 0;
  bool mem_limit_hit = false;

  /// Set by the serving layer when this result was returned from the
  /// ResultCache without running a race.
  bool from_cache = false;

  std::uint64_t total_decisions() const;
  std::uint64_t total_propagations() const;
  std::uint64_t total_conflicts() const;
  bool found_counterexample() const {
    return status == Status::CounterexampleFound;
  }
};

inline const char* to_string(CheckResult::Status s) {
  switch (s) {
    case CheckResult::Status::CounterexampleFound: return "cex";
    case CheckResult::Status::BoundReached: return "bound";
    case CheckResult::Status::ResourceLimit: return "limit";
  }
  return "?";
}

/// Run-time hooks a serving layer threads into a check; plain callers
/// leave all of them unset.
struct CheckHooks {
  /// Cooperative cancel: observed at depth / solver checkpoint
  /// boundaries.  Not owned; must outlive the call.
  const std::atomic<bool>* stop = nullptr;
  /// Ordering warm start: when non-null the race exchanges ranks through
  /// this source (seed it beforehand, snapshot it afterwards) instead of
  /// a race-private one.  Not owned.
  bmc::RankSource* rank_source = nullptr;
  /// Per-depth progress stream (every entrant reports; must be
  /// thread-safe — see bmc::EngineConfig::on_depth).
  std::function<void(const bmc::DepthStats&)> on_depth;
  /// Additional wall-clock cap layered on top of the request's own
  /// budget (<= 0: none) — the serving layer's deadline enforcement,
  /// observed at depth boundaries like any engine budget.
  double deadline_sec = -1.0;
};

/// Checks `request.bad_index` of `request.net` by racing the configured
/// policy lineup; first definitive verdict wins.  Blocking; thread-safe
/// (no shared state between concurrent calls).
CheckResult check(const CheckRequest& request, const CheckHooks& hooks = {});

/// Trace/metrics sessions per the request's CLI-level observability
/// flags (--trace FILE / --metrics FILE), RAII-style: construction
/// starts the sessions (no-op when the flags are unset — zero recording
/// overhead, like the flags promise), destruction collects and writes
/// the files and prints a one-line summary per file to stdout.  Shared
/// by every example and tool, replacing their copy-pasted
/// begin/end_observability helpers.  Destroy only after every race
/// returned (the collection contract of obs::trace_end).
class ObservabilityScope {
 public:
  explicit ObservabilityScope(const RaceOptions& options);
  ~ObservabilityScope();

  ObservabilityScope(const ObservabilityScope&) = delete;
  ObservabilityScope& operator=(const ObservabilityScope&) = delete;

 private:
  std::string trace_file_;
  std::string metrics_file_;
};

/// Fingerprint of every behaviour-affecting option in `options` — the
/// config component of the service's cache key.  Embeds
/// bmc::formula_fingerprint (the shard GroupKey component), so the two
/// layers can never disagree about formula identity; on top of it hashes
/// the search-affecting knobs: policy lineup, threads, seed, budget,
/// incremental mode, decision scorer, reduceDB tiers, the whole sharing
/// family, vivification cadence, the assumption savepoint and the
/// memory ceiling.  Observability settings (trace/metrics files) and
/// tape cold storage are deliberately excluded — they never change a
/// verdict or a counter (cold storage is representation-only; the codec
/// round-trip is exact).
std::uint64_t config_fingerprint(const RaceOptions& options);

}  // namespace refbmc::api
