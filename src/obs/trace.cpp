#include "obs/trace.hpp"

#include <chrono>
#include <memory>
#include <mutex>

#include "util/assert.hpp"

namespace refbmc::obs {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::SpanDepth: return "depth";
    case EventKind::SpanEncode: return "encode";
    case EventKind::SpanSimplify: return "simplify";
    case EventKind::SpanSolve: return "solve";
    case EventKind::TapeEncode: return "tape_encode";
    case EventKind::Restart: return "restart";
    case EventKind::ReduceDb: return "reduce_db";
    case EventKind::ImportBatch: return "import_batch";
    case EventKind::ExportBatch: return "export_batch";
    case EventKind::RankRefresh: return "rank_refresh";
    case EventKind::DynamicFallback: return "dynamic_fallback";
    case EventKind::JobSubmit: return "job_submit";
    case EventKind::JobStart: return "job_start";
    case EventKind::JobVerdict: return "job_verdict";
    case EventKind::CancelRequest: return "cancel_request";
    case EventKind::JobStop: return "job_stop";
    case EventKind::PoolPublish: return "pool_publish";
    case EventKind::PoolClose: return "pool_close";
    case EventKind::RankPublish: return "rank_publish";
    case EventKind::SpanPreprocess: return "preprocess";
    case EventKind::SpanVivify: return "vivify";
  }
  return "?";
}

const char* category(EventKind kind) {
  switch (kind) {
    case EventKind::SpanDepth:
    case EventKind::SpanEncode:
    case EventKind::SpanSimplify:
    case EventKind::SpanSolve:
    case EventKind::TapeEncode:
    case EventKind::SpanPreprocess:
      return "bmc";
    case EventKind::Restart:
    case EventKind::ReduceDb:
    case EventKind::ImportBatch:
    case EventKind::ExportBatch:
    case EventKind::RankRefresh:
    case EventKind::DynamicFallback:
    case EventKind::SpanVivify:
      return "sat";
    case EventKind::JobSubmit:
    case EventKind::JobStart:
    case EventKind::JobVerdict:
    case EventKind::CancelRequest:
    case EventKind::JobStop:
    case EventKind::PoolPublish:
    case EventKind::PoolClose:
    case EventKind::RankPublish:
      return "race";
  }
  return "?";
}

bool is_span(EventKind kind) {
  switch (kind) {
    case EventKind::SpanDepth:
    case EventKind::SpanEncode:
    case EventKind::SpanSimplify:
    case EventKind::SpanSolve:
    case EventKind::TapeEncode:
    case EventKind::ImportBatch:
    case EventKind::RankRefresh:
    case EventKind::SpanPreprocess:
    case EventKind::SpanVivify:
      return true;
    default:
      return false;
  }
}

TraceBuffer::TraceBuffer(std::size_t capacity)
    : capacity_(capacity), slots_(capacity) {
  REFBMC_EXPECTS_MSG(capacity >= 1, "trace buffer needs at least one slot");
}

std::vector<TraceEvent> TraceBuffer::snapshot() const {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t n = head < capacity_ ? head : capacity_;
  std::vector<TraceEvent> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = head - n; i < head; ++i)
    out.push_back(slots_[static_cast<std::size_t>(i % capacity_)]);
  return out;
}

std::uint64_t TraceDump::total_events() const {
  std::uint64_t n = 0;
  for (const auto& t : tracks) n += t.events.size();
  return n;
}

std::uint64_t TraceDump::total_dropped() const {
  std::uint64_t n = 0;
  for (const auto& t : tracks) n += t.dropped;
  return n;
}

std::uint64_t monotonic_now_us() {
  static const std::chrono::steady_clock::time_point anchor =
      std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - anchor)
          .count());
}

namespace detail {
#if REFBMC_TRACE
std::atomic<bool> g_trace_on{false};
#endif
}  // namespace detail

namespace {

struct ThreadTrack {
  std::string name;
  std::unique_ptr<TraceBuffer> buf;
};

/// The session registry.  `generation` invalidates the thread-local
/// track caches when a new session starts, so a thread that outlives one
/// session re-registers into the next instead of writing into a ring the
/// collector already handed out.
struct Session {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadTrack>> tracks;
  std::uint64_t generation = 0;
  std::size_t buffer_events = TraceConfig{}.buffer_events;
  std::uint64_t unnamed = 0;
};

Session& session() {
  static Session s;
  return s;
}

struct TrackCache {
  std::uint64_t generation = 0;  // 0 = never registered
  ThreadTrack* track = nullptr;
};
thread_local TrackCache t_cache;

/// The calling thread's track, registering a fresh ring on first use in
/// the current session.
ThreadTrack& my_track() {
  Session& s = session();
  {
    // The generation is published under the mutex and cached per thread;
    // a stale cache only survives until the next record call.
    const std::lock_guard<std::mutex> lock(s.mu);
    if (t_cache.track != nullptr && t_cache.generation == s.generation)
      return *t_cache.track;
    auto track = std::make_unique<ThreadTrack>();
    track->name = "thread-" + std::to_string(s.unnamed++);
    track->buf = std::make_unique<TraceBuffer>(s.buffer_events);
    s.tracks.push_back(std::move(track));
    t_cache.generation = s.generation;
    t_cache.track = s.tracks.back().get();
    return *t_cache.track;
  }
}

/// Lock-free fast path: the per-thread cache is valid iff its generation
/// matches.  Reading s.generation unlocked is fine — it only changes in
/// trace_begin/trace_end, which the contract puts at quiescent points.
ThreadTrack* my_track_fast() {
  if (t_cache.track != nullptr &&
      t_cache.generation == session().generation)
    return t_cache.track;
  return &my_track();
}

TraceDump collect_locked(Session& s) {
  TraceDump dump;
  for (const auto& t : s.tracks) {
    TrackDump td;
    td.name = t->name;
    td.dropped = t->buf->dropped();
    td.events = t->buf->snapshot();
    dump.tracks.push_back(std::move(td));
  }
  return dump;
}

}  // namespace

bool trace_begin(const TraceConfig& cfg) {
#if REFBMC_TRACE
  Session& s = session();
  const std::lock_guard<std::mutex> lock(s.mu);
  if (detail::g_trace_on.load(std::memory_order_relaxed)) return false;
  s.tracks.clear();
  ++s.generation;
  s.buffer_events = cfg.buffer_events < 1 ? 1 : cfg.buffer_events;
  s.unnamed = 0;
  detail::g_trace_on.store(true, std::memory_order_release);
  return true;
#else
  (void)cfg;
  return false;
#endif
}

TraceDump trace_end() {
#if REFBMC_TRACE
  Session& s = session();
  detail::g_trace_on.store(false, std::memory_order_release);
  const std::lock_guard<std::mutex> lock(s.mu);
  TraceDump dump = collect_locked(s);
  s.tracks.clear();
  ++s.generation;  // invalidate caches of threads that outlive the session
  return dump;
#else
  return {};
#endif
}

TraceDump trace_dump() {
  Session& s = session();
  const std::lock_guard<std::mutex> lock(s.mu);
  return collect_locked(s);
}

void trace_set_thread_track(const std::string& name) {
  if (!trace_active()) return;
  my_track_fast()->name = name;
}

void trace_record(EventKind kind, int depth, std::int64_t value) {
  if (!trace_active()) return;
  TraceEvent e;
  e.ts_us = monotonic_now_us();
  e.kind = kind;
  e.depth = static_cast<std::int16_t>(depth);
  e.value = value;
  my_track_fast()->buf->record(e);
}

void trace_record_span(EventKind kind, std::uint64_t ts_us,
                       std::uint64_t dur_us, int depth, std::int64_t value) {
  if (!trace_active()) return;
  TraceEvent e;
  e.ts_us = ts_us;
  e.dur_us = dur_us > 0xffffffffull
                 ? 0xffffffffu
                 : static_cast<std::uint32_t>(dur_us);
  e.kind = kind;
  e.depth = static_cast<std::int16_t>(depth);
  e.value = value;
  my_track_fast()->buf->record(e);
}

}  // namespace refbmc::obs
