#include "obs/metrics.hpp"

#include "util/json.hpp"

namespace refbmc::obs {

namespace {

int bucket_of(std::uint64_t v) {
  int b = 0;
  while (v > 0 && b < Histogram::kBuckets - 1) {
    v >>= 1;
    ++b;
  }
  return b;
}

/// Upper bound of bucket b: 0 for bucket 0, else 2^b - 1 (the largest
/// value the bucket can hold).
std::uint64_t bucket_upper(int b) {
  if (b == 0) return 0;
  return (1ull << b) - 1;
}

std::atomic<bool> g_metrics_on{false};

}  // namespace

void Histogram::observe(std::uint64_t v) {
  buckets_[static_cast<std::size_t>(bucket_of(v))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  std::uint64_t prev = max_.load(std::memory_order_relaxed);
  while (v > prev &&
         !max_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::percentile(double p) const {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  // Rank of the quantile observation (1-based, ceil).
  const std::uint64_t rank =
      static_cast<std::uint64_t>(p * static_cast<double>(n - 1)) + 1;
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += bucket(b);
    if (seen >= rank)
      return b == kBuckets - 1 ? max() : bucket_upper(b);
  }
  return max();
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

void MetricsRegistry::write_json(JsonWriter& w) const {
  const std::lock_guard<std::mutex> lock(mu_);
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const auto& [name, c] : counters_) w.kv(name, c->value());
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name);
    w.begin_object();
    w.kv("count", h->count());
    w.kv("sum", h->sum());
    w.kv("mean", h->mean());
    w.kv("max", h->max());
    w.kv("p50", h->percentile(0.50));
    w.kv("p90", h->percentile(0.90));
    w.kv("p99", h->percentile(0.99));
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

std::vector<std::pair<std::string, std::uint64_t>>
MetricsRegistry::counters() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c->value());
  return out;
}

MetricsRegistry& metrics() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never dtor'd
  return *registry;
}

bool metrics_active() {
  return g_metrics_on.load(std::memory_order_relaxed);
}

void metrics_enable(bool on) {
  g_metrics_on.store(on, std::memory_order_relaxed);
}

}  // namespace refbmc::obs
