#include "obs/export.hpp"

#include <algorithm>
#include <vector>

#include "util/json.hpp"

namespace refbmc::obs {

namespace {

void write_event(JsonWriter& w, const TraceEvent& e, int tid) {
  w.begin_object();
  w.kv("name", to_string(e.kind));
  w.kv("cat", category(e.kind));
  if (is_span(e.kind)) {
    w.kv("ph", "X");
    w.kv("ts", e.ts_us);
    w.kv("dur", static_cast<std::uint64_t>(e.dur_us));
  } else {
    w.kv("ph", "i");
    w.kv("ts", e.ts_us);
    w.kv("s", "t");  // thread-scoped instant
  }
  w.kv("pid", 1);
  w.kv("tid", tid);
  w.key("args");
  w.begin_object();
  if (e.depth >= 0) w.kv("depth", static_cast<int>(e.depth));
  w.kv("value", static_cast<double>(e.value));
  w.end_object();
  w.end_object();
}

}  // namespace

void write_chrome_trace(JsonWriter& w, const TraceDump& dump) {
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();
  for (std::size_t t = 0; t < dump.tracks.size(); ++t) {
    const TrackDump& track = dump.tracks[t];
    const int tid = static_cast<int>(t);
    // Label the track: Perfetto shows args.name as the thread name.
    w.begin_object();
    w.kv("name", "thread_name");
    w.kv("ph", "M");
    w.kv("pid", 1);
    w.kv("tid", tid);
    w.key("args");
    w.begin_object();
    w.kv("name", track.name);
    w.end_object();
    w.end_object();
    // Rings are append-ordered by record moment, but spans carry their
    // START time and may be recorded retroactively (the engine stamps a
    // depth's encode span only after its solve finishes), so ring order
    // is not ts order.  Emit each track sorted by ts — longer spans
    // first on ties so nested spans arrive parent-before-child — which
    // is the order trace viewers expect and trace_check.py asserts.
    std::vector<const TraceEvent*> ordered;
    ordered.reserve(track.events.size());
    for (const TraceEvent& e : track.events) ordered.push_back(&e);
    std::stable_sort(ordered.begin(), ordered.end(),
                     [](const TraceEvent* a, const TraceEvent* b) {
                       if (a->ts_us != b->ts_us) return a->ts_us < b->ts_us;
                       return a->dur_us > b->dur_us;
                     });
    for (const TraceEvent* e : ordered) write_event(w, *e, tid);
  }
  w.end_array();
  w.kv("displayTimeUnit", "ms");
  w.key("otherData");
  w.begin_object();
  w.kv("tracks", static_cast<std::uint64_t>(dump.tracks.size()));
  w.kv("events", dump.total_events());
  w.kv("dropped_events", dump.total_dropped());
  w.end_object();
  w.end_object();
}

bool write_chrome_trace_file(const std::string& path, const TraceDump& dump) {
  JsonWriter w;
  write_chrome_trace(w, dump);
  return w.write_file(path);
}

bool write_metrics_file(const std::string& path, const MetricsRegistry& m) {
  JsonWriter w;
  m.write_json(w);
  return w.write_file(path);
}

}  // namespace refbmc::obs
