// Exporters: Chrome trace-event JSON (Perfetto / chrome://tracing) and
// flat metrics JSON, both through util/json.hpp's JsonWriter (escaping,
// deterministic member order, finite numbers).
//
// Chrome mapping: one pid for the whole process, one tid per TrackDump
// (i.e. per recording thread), a thread_name metadata event labelling
// each track, complete events (ph "X", ts+dur) for span kinds and
// thread-scoped instants (ph "i") for the rest.  `depth` and `value`
// travel in args, so Perfetto's query engine can slice by depth.
//
// Within one track, events appear in ring order — the order the thread
// finished recording them — so per track the *record points* (ts for
// instants, ts+dur for spans) are non-decreasing.  trace_check.py and
// the export test assert exactly that invariant, plus ts/dur >= 0.
#pragma once

#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace refbmc {
class JsonWriter;
}

namespace refbmc::obs {

/// Writes {"traceEvents": [...], "displayTimeUnit": "ms", "otherData":
/// {...}} into `w` (a fresh writer; this emits the whole document).
void write_chrome_trace(JsonWriter& w, const TraceDump& dump);

/// write_chrome_trace + JsonWriter::write_file.  Returns false when the
/// file cannot be written.
bool write_chrome_trace_file(const std::string& path, const TraceDump& dump);

/// Writes the registry document (MetricsRegistry::write_json) to `path`.
bool write_metrics_file(const std::string& path, const MetricsRegistry& m);

}  // namespace refbmc::obs
