// Named counters and bounded histograms, aggregated across threads.
//
// The trace (obs/trace.hpp) answers "when did it happen"; this registry
// answers "how much, in total" — wall time per engine phase, import
// drain latency, cancellation latency — without anybody having to
// post-process a timeline.  Counters and histogram buckets are plain
// atomics, so every thread records into the same instance and the
// registry IS the cross-thread aggregation; collection points (bench
// epilogues, --metrics export) just read it.
//
// Histograms are bounded by construction: power-of-two buckets (one per
// log2 of the observed value, values in microseconds by convention)
// plus exact count/sum/max, so memory is ~30 words per histogram no
// matter how many observations land.  Percentiles are bucket upper
// bounds — coarse, but monotone and allocation-free.
//
// Entries are never deleted: counter()/histogram() return references
// that stay valid for the registry's lifetime, and reset() zeroes
// values without invalidating them — instrumentation sites may cache
// the reference across sessions.
//
// Like tracing, recording is gated (metrics_active(), one relaxed
// load); all instrumentation sites sit at cold boundaries (per depth,
// per restart, per race), so the enabled cost is a map lookup + an
// atomic add, far off every hot path.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace refbmc {
class JsonWriter;
}

namespace refbmc::obs {

class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    n_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return n_.load(std::memory_order_relaxed); }
  void reset() { n_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> n_{0};
};

class Histogram {
 public:
  /// Bucket b holds values in [2^(b-1), 2^b) (bucket 0 holds {0}); the
  /// last bucket is open-ended.  26 buckets cover up to ~33s in µs.
  static constexpr int kBuckets = 26;

  void observe(std::uint64_t v);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  double mean() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
  }
  /// Upper bound of the bucket containing the p-quantile (p in [0,1]);
  /// the top bucket reports the exact observed max.
  std::uint64_t percentile(double p) const;
  std::uint64_t bucket(int b) const {
    return buckets_[static_cast<std::size_t>(b)].load(
        std::memory_order_relaxed);
  }

  void reset();

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

class MetricsRegistry {
 public:
  /// Both lookups create on first use and return a stable reference.
  /// Thread-safe; O(log n) map under a mutex — fine for cold sites.
  Counter& counter(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Zeroes every entry (references stay valid).
  void reset();

  /// {"counters": {name: n, ...}, "histograms": {name: {count, sum,
  /// mean, max, p50, p90, p99}, ...}} — names in sorted order, so the
  /// document is deterministic given the same set of entries.
  void write_json(JsonWriter& w) const;

  /// Snapshot of all counters, sorted by name.
  std::vector<std::pair<std::string, std::uint64_t>> counters() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// The process-wide registry every instrumentation site records into.
MetricsRegistry& metrics();

/// Recording gate (one relaxed load), switched by the session owner
/// (--metrics, bench epilogues).  Off by default.
bool metrics_active();
void metrics_enable(bool on);

}  // namespace refbmc::obs
