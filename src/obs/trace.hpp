// Race-wide tracing: per-thread ring buffers of timestamped events.
//
// Why a bespoke layer: the portfolio runs N solvers concurrently, and the
// questions we need answered — where does depth k's time go under each
// ordering policy, how late do losers actually stop after the verdict,
// when do rank refreshes land relative to restarts — are *timeline*
// questions.  End-of-run counters (DepthStats, RaceResult) cannot answer
// them; a trace can, and Perfetto / chrome://tracing already draw
// timelines, so we only need to record and export (obs/export.hpp).
//
// Design constraints, in order:
//
//   1. Near-zero cost when off.  Recording is gated on one relaxed
//      atomic-bool load (trace_active()); every instrumentation site is
//      `if (trace_active()) …`, so a disabled build pays one predictable
//      branch.  Compiling with -DREFBMC_TRACE=0 turns trace_active() into
//      `false` and the sites fold away entirely.
//   2. No cross-thread contention when on.  Each thread records into its
//      own fixed-size ring (TraceBuffer) — no locks, no shared cache
//      lines on the record path.  The session mutex is only taken once
//      per thread (buffer registration) and at collection.
//   3. Bounded memory.  Rings overwrite their oldest entry when full and
//      count what was lost (drop-and-count); a trace is never the thing
//      that OOMs a race.
//
// Collection contract: trace_end() (and trace_dump()) read every ring,
// including rings owned by other threads.  Writers must be quiescent —
// in practice collection happens after the scheduler joined its
// threads, which is also the only ordering that makes the timeline
// complete.  The calling thread's own ring is always safe.
//
// Timestamps are microseconds on std::chrono::steady_clock, anchored at
// the first clock query of the process, so every thread's events share
// one monotonic axis (what Chrome's `ts` field requires).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

// Compile-out switch: -DREFBMC_TRACE=0 removes every instrumentation
// site (trace_active() becomes constant false and dead-code elimination
// does the rest).  The library itself still links, so a mixed build
// cannot ODR-clash.
#ifndef REFBMC_TRACE
#define REFBMC_TRACE 1
#endif

namespace refbmc::obs {

/// What happened.  One enum across all layers so a TraceEvent stays a
/// fixed-size POD; the exporter maps kinds to Chrome names/categories.
enum class EventKind : std::uint16_t {
  // bmc: per-depth phase spans (BmcEngine::run).
  SpanDepth = 0,   // prepare..solve of one depth          value = sat::Result
  SpanEncode,      // session->prepare(k)                  value = cnf clauses
  SpanSimplify,    // encoder fold/strash share of new frames (attribution)
  SpanSolve,       // sat::Solver::solve(k)                value = conflicts
  TapeEncode,      // SharedTape frame encoding            depth = frame
  // sat: solver milestones (all at decision-level-0 boundaries).
  Restart,         // value = restart count
  ReduceDb,        // value = learned clauses before reduction
  ImportBatch,     // span: one level-0 import drain       value = clauses attached
  ExportBatch,     // value = clauses exported since the previous boundary
  RankRefresh,     // span: mid-solve rank projection      value = source epoch
  DynamicFallback, // dynamic policy switched to VSIDS     value = decisions
  // portfolio: job lifecycle and exchange.
  JobSubmit,       // value = entrant/job index
  JobStart,        // value = entrant/job index
  JobVerdict,      // value = winning entrant index
  CancelRequest,   // winner raised the stop flag          value = winner index
  JobStop,         // entrant thread wound down            value = entrant index
  PoolPublish,     // lemma accepted by the shared pool    value = sequence no.
  PoolClose,       // pool epoch closed (race decided)
  RankPublish,     // core merged into SharedRankSource    depth = from depth,
                   //                                      value = new epoch
  // preprocessing / inprocessing (PR 7).
  SpanPreprocess,  // tape CNF simplification for one depth value = clauses out
  SpanVivify,      // one restart-boundary vivify pass     value = clauses shortened
};

/// Chrome-facing name of a kind ("encode", "restart", ...).
const char* to_string(EventKind kind);
/// Chrome category: "bmc", "sat" or "race".
const char* category(EventKind kind);
/// Kinds recorded as complete spans (ph "X"); the rest are instants.
bool is_span(EventKind kind);

/// One record.  Fixed-size POD — rings are arrays of these, recording is
/// a handful of stores.  `depth` is the BMC depth / frame (-1 when not
/// applicable); `value` is kind-specific (see EventKind).
struct TraceEvent {
  std::uint64_t ts_us = 0;   // steady-clock µs (span: start time)
  std::uint32_t dur_us = 0;  // spans only; 0 for instants
  EventKind kind = EventKind::SpanDepth;
  std::int16_t depth = -1;
  std::int64_t value = 0;
};

/// Single-writer ring of TraceEvents.  The owning thread records;
/// anybody may snapshot once the writer is quiescent.  When full the
/// oldest entry is overwritten and counted as dropped — the newest
/// window survives, which is the useful end of a truncated timeline.
class TraceBuffer {
 public:
  explicit TraceBuffer(std::size_t capacity);

  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  /// Owner thread only.
  void record(const TraceEvent& e) {
    slots_[static_cast<std::size_t>(
        head_.load(std::memory_order_relaxed) % capacity_)] = e;
    head_.fetch_add(1, std::memory_order_release);
  }

  std::size_t capacity() const { return capacity_; }
  /// Events recorded over the buffer's lifetime (including dropped ones).
  std::uint64_t recorded() const {
    return head_.load(std::memory_order_acquire);
  }
  /// Oldest entries overwritten before anybody read them.
  std::uint64_t dropped() const {
    const std::uint64_t n = recorded();
    return n > capacity_ ? n - capacity_ : 0;
  }

  /// The retained window, oldest first.  Requires a quiescent writer.
  std::vector<TraceEvent> snapshot() const;

 private:
  const std::uint64_t capacity_;
  std::vector<TraceEvent> slots_;
  std::atomic<std::uint64_t> head_{0};
};

/// One thread's collected timeline.
struct TrackDump {
  std::string name;      // thread track label ("static", "worker-0", ...)
  std::uint64_t dropped = 0;
  std::vector<TraceEvent> events;  // oldest first
};

/// Everything a session recorded, one track per participating thread.
struct TraceDump {
  std::vector<TrackDump> tracks;
  /// Retained events across all tracks (dropped ones counted separately).
  std::uint64_t total_events() const;
  std::uint64_t total_dropped() const;
};

struct TraceConfig {
  /// Per-thread ring capacity in events (--trace-buffer-kb converts with
  /// sizeof(TraceEvent)).
  std::size_t buffer_events = 16384;
};

namespace detail {
#if REFBMC_TRACE
extern std::atomic<bool> g_trace_on;
#endif
}  // namespace detail

/// Microseconds on the process-wide steady-clock axis.  Always available
/// (the scheduler measures cancel latency with it even when tracing is
/// off or compiled out).
std::uint64_t monotonic_now_us();

/// Is a trace session recording?  THE hot-path gate: one relaxed load.
#if REFBMC_TRACE
inline bool trace_active() {
  return detail::g_trace_on.load(std::memory_order_relaxed);
}
#else
constexpr bool trace_active() { return false; }
#endif

/// Starts a session: subsequent trace_record*() calls land in per-thread
/// rings of cfg.buffer_events entries.  A second begin while active is a
/// no-op (first session wins — nested benches don't clobber a CLI trace).
/// Returns whether a new session actually started.
bool trace_begin(const TraceConfig& cfg = {});

/// Stops recording and collects every thread's ring.  See the collection
/// contract above: worker threads must have been joined.
TraceDump trace_end();

/// Collects without stopping (mid-run flush for long sessions); same
/// quiescence contract.
TraceDump trace_dump();

/// Labels the calling thread's track ("static", "worker-3", ...).
/// Threads that record without naming themselves get "thread-N".
void trace_set_thread_track(const std::string& name);

/// Records an instant event on the calling thread's ring.
void trace_record(EventKind kind, int depth = -1, std::int64_t value = 0);

/// Records a complete span (start + duration known by the caller).
void trace_record_span(EventKind kind, std::uint64_t ts_us,
                       std::uint64_t dur_us, int depth = -1,
                       std::int64_t value = 0);

/// RAII span: times construction..finish() (or destruction) and records
/// one complete-span event.  Arms only when a session is active, so a
/// disabled run pays the trace_active() branch and nothing else.
class TraceSpan {
 public:
  explicit TraceSpan(EventKind kind, int depth = -1, std::int64_t value = 0) {
    if (trace_active()) {
      kind_ = kind;
      depth_ = depth;
      value_ = value;
      start_ = monotonic_now_us();
      armed_ = true;
    }
  }
  ~TraceSpan() { finish(); }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Updates the payload before the span is recorded (e.g. a result
  /// computed inside the span).
  void set_value(std::int64_t v) { value_ = v; }

  /// Ends the span now (idempotent; the destructor calls it).
  void finish() {
    if (!armed_) return;
    armed_ = false;
    trace_record_span(kind_, start_, monotonic_now_us() - start_, depth_,
                      value_);
  }

 private:
  bool armed_ = false;
  EventKind kind_ = EventKind::SpanDepth;
  std::int16_t depth_ = -1;
  std::int64_t value_ = 0;
  std::uint64_t start_ = 0;
};

}  // namespace refbmc::obs

// Macro layer: instrumentation sites use these so -DREFBMC_TRACE=0
// removes them wholesale (no argument evaluation, no branch).
#if REFBMC_TRACE
#define REFBMC_TRACE_EVENT(kind, depth, value)                      \
  do {                                                              \
    if (::refbmc::obs::trace_active())                              \
      ::refbmc::obs::trace_record((kind), (depth), (value));        \
  } while (0)
#define REFBMC_TRACE_SPAN(var, kind, depth) \
  ::refbmc::obs::TraceSpan var((kind), (depth))
#else
#define REFBMC_TRACE_EVENT(kind, depth, value) \
  do {                                         \
  } while (0)
#define REFBMC_TRACE_SPAN(var, kind, depth) \
  ::refbmc::obs::TraceSpan var((kind), (depth))
#endif
