#include "service/wire.hpp"

#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace refbmc::service {

// ---- JsonValue -------------------------------------------------------------

JsonValue JsonValue::boolean(bool b) {
  JsonValue v;
  v.kind_ = Kind::Bool;
  v.bool_ = b;
  return v;
}
JsonValue JsonValue::number(double d) {
  JsonValue v;
  v.kind_ = Kind::Number;
  v.number_ = d;
  return v;
}
JsonValue JsonValue::string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::String;
  v.string_ = std::move(s);
  return v;
}
JsonValue JsonValue::array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::Array;
  v.items_ = std::move(items);
  return v;
}
JsonValue JsonValue::object(std::vector<Member> members) {
  JsonValue v;
  v.kind_ = Kind::Object;
  v.members_ = std::move(members);
  return v;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind_ != Kind::Object) return nullptr;
  // Last duplicate wins, matching the parser's documented behaviour.
  const JsonValue* found = nullptr;
  for (const Member& m : members_)
    if (m.first == key) found = &m.second;
  return found;
}

std::string JsonValue::get_string(const std::string& key,
                                  const std::string& def) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_string() ? v->as_string() : def;
}
double JsonValue::get_number(const std::string& key, double def) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_number() ? v->as_number() : def;
}
bool JsonValue::get_bool(const std::string& key, bool def) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_bool() ? v->as_bool() : def;
}
std::int64_t JsonValue::get_int(const std::string& key,
                                std::int64_t def) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_number()
             ? static_cast<std::int64_t>(v->as_number())
             : def;
}
std::uint64_t JsonValue::get_uint64(const std::string& key,
                                    std::uint64_t def) const {
  // 64-bit-exact values travel as strings (doubles lose bits past 2^53).
  const JsonValue* v = find(key);
  if (v == nullptr) return def;
  if (v->is_number()) return static_cast<std::uint64_t>(v->as_number());
  if (v->is_string()) {
    errno = 0;
    char* end = nullptr;
    const unsigned long long parsed =
        std::strtoull(v->as_string().c_str(), &end, 10);
    if (errno == 0 && end != nullptr && *end == '\0')
      return static_cast<std::uint64_t>(parsed);
  }
  return def;
}

// ---- parser ----------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  std::optional<JsonValue> run(std::string* error) {
    std::optional<JsonValue> v = parse_value();
    if (v) {
      skip_ws();
      if (pos_ != text_.size()) {
        v.reset();
        fail("trailing characters after document");
      }
    }
    if (!v && error != nullptr)
      *error = error_ + " at byte " + std::to_string(pos_);
    return v;
  }

 private:
  void fail(const char* why) {
    if (error_.empty()) error_ = why;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(const char* word) {
    const std::size_t n = std::strlen(word);
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  std::optional<JsonValue> parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    const char c = text_[pos_];
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        std::optional<std::string> s = parse_string();
        if (!s) return std::nullopt;
        return JsonValue::string(std::move(*s));
      }
      case 't':
        if (literal("true")) return JsonValue::boolean(true);
        break;
      case 'f':
        if (literal("false")) return JsonValue::boolean(false);
        break;
      case 'n':
        if (literal("null")) return JsonValue::null();
        break;
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
        break;
    }
    fail("unexpected character");
    return std::nullopt;
  }

  std::optional<JsonValue> parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    errno = 0;
    char* end = nullptr;
    const std::string token = text_.substr(start, pos_ - start);
    const double d = std::strtod(token.c_str(), &end);
    if (errno != 0 || end == nullptr || *end != '\0' || token.empty()) {
      fail("malformed number");
      return std::nullopt;
    }
    return JsonValue::number(d);
  }

  std::optional<std::string> parse_string() {
    if (!consume('"')) {
      fail("expected string");
      return std::nullopt;
    }
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
        return std::nullopt;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
            return std::nullopt;
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else {
              fail("bad hex digit in \\u escape");
              return std::nullopt;
            }
          }
          // UTF-8 encode (BMP only; the writer never emits surrogates —
          // it only escapes control characters).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("unknown escape");
          return std::nullopt;
      }
    }
    fail("unterminated string");
    return std::nullopt;
  }

  std::optional<JsonValue> parse_array() {
    consume('[');
    std::vector<JsonValue> items;
    skip_ws();
    if (consume(']')) return JsonValue::array(std::move(items));
    for (;;) {
      std::optional<JsonValue> v = parse_value();
      if (!v) return std::nullopt;
      items.push_back(std::move(*v));
      if (consume(',')) continue;
      if (consume(']')) return JsonValue::array(std::move(items));
      fail("expected ',' or ']' in array");
      return std::nullopt;
    }
  }

  std::optional<JsonValue> parse_object() {
    consume('{');
    std::vector<JsonValue::Member> members;
    skip_ws();
    if (consume('}')) return JsonValue::object(std::move(members));
    for (;;) {
      skip_ws();
      std::optional<std::string> key = parse_string();
      if (!key) return std::nullopt;
      if (!consume(':')) {
        fail("expected ':' after object key");
        return std::nullopt;
      }
      std::optional<JsonValue> v = parse_value();
      if (!v) return std::nullopt;
      members.emplace_back(std::move(*key), std::move(*v));
      if (consume(',')) continue;
      if (consume('}')) return JsonValue::object(std::move(members));
      fail("expected ',' or '}' in object");
      return std::nullopt;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::optional<JsonValue> json_parse(const std::string& text,
                                    std::string* error) {
  return Parser(text).run(error);
}

// ---- framing ---------------------------------------------------------------

namespace {

bool write_all(int fd, const void* data, std::size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

bool read_all(int fd, void* data, std::size_t n) {
  char* p = static_cast<char*>(data);
  while (n > 0) {
    const ssize_t r = ::read(fd, p, n);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;  // EOF mid-frame (or before one: clean close)
    p += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace

bool write_frame(int fd, const std::string& payload) {
  if (payload.size() > kMaxFrameBytes) return false;
  unsigned char header[4];
  const std::uint32_t n = static_cast<std::uint32_t>(payload.size());
  header[0] = static_cast<unsigned char>(n & 0xff);
  header[1] = static_cast<unsigned char>((n >> 8) & 0xff);
  header[2] = static_cast<unsigned char>((n >> 16) & 0xff);
  header[3] = static_cast<unsigned char>((n >> 24) & 0xff);
  return write_all(fd, header, 4) &&
         write_all(fd, payload.data(), payload.size());
}

bool read_frame(int fd, std::string& payload, std::size_t max_bytes) {
  unsigned char header[4];
  if (!read_all(fd, header, 4)) return false;
  const std::uint32_t n = static_cast<std::uint32_t>(header[0]) |
                          (static_cast<std::uint32_t>(header[1]) << 8) |
                          (static_cast<std::uint32_t>(header[2]) << 16) |
                          (static_cast<std::uint32_t>(header[3]) << 24);
  if (n > max_bytes) return false;
  payload.resize(n);
  return n == 0 || read_all(fd, payload.data(), n);
}

// ---- payload helpers -------------------------------------------------------

void write_race_options(JsonWriter& w, const api::RaceOptions& options) {
  const PortfolioConfig& c = options.cli();
  w.begin_object();
  w.kv("threads", c.num_threads);
  w.key("policies");
  w.begin_array();
  for (const std::string& p : c.policies) w.value(p);
  w.end_array();
  w.kv("depth", c.max_depth);
  w.kv("budget_sec", c.budget_sec);
  w.kv("seed", std::to_string(c.seed));  // 64-bit exact: as string
  w.kv("incremental", c.incremental);
  w.kv("simplify", c.simplify);
  w.kv("any_frame", options.bad_mode() == bmc::BadMode::Any);
  w.kv("decision", c.decision);
  w.kv("glue_lbd", c.glue_lbd);
  w.kv("tier_lbd", c.tier_lbd);
  w.kv("share", c.share);
  w.kv("share_lbd", c.share_lbd);
  w.kv("share_size", c.share_size);
  w.kv("share_cap", c.share_cap);
  w.kv("share_rank", c.share_rank);
  w.kv("core_weighting", c.core_weighting);
  w.kv("preprocess", c.preprocess);
  w.kv("bve_budget", c.bve_budget);
  if (c.vivify_interval_set) w.kv("vivify_interval", c.vivify_interval);
  w.kv("assumption_savepoint", c.assumption_savepoint);
  w.end_object();
}

api::RaceOptions parse_race_options(const JsonValue& obj) {
  api::RaceOptions o;
  if (!obj.is_object()) return o;
  const PortfolioConfig defaults;
  o.threads(static_cast<int>(obj.get_int("threads", defaults.num_threads)));
  if (const JsonValue* ps = obj.find("policies");
      ps != nullptr && ps->is_array() && !ps->items().empty()) {
    std::vector<std::string> names;
    for (const JsonValue& p : ps->items())
      if (p.is_string()) names.push_back(p.as_string());
    if (!names.empty()) o.policies(std::move(names));
  }
  o.max_depth(static_cast<int>(obj.get_int("depth", defaults.max_depth)));
  o.budget_sec(obj.get_number("budget_sec", defaults.budget_sec));
  o.seed(obj.get_uint64("seed", defaults.seed));
  o.incremental(obj.get_bool("incremental", defaults.incremental));
  o.simplify(obj.get_bool("simplify", defaults.simplify));
  if (obj.get_bool("any_frame", false)) o.bad_mode(bmc::BadMode::Any);
  o.decision(obj.get_string("decision", defaults.decision));
  o.glue_lbd(static_cast<int>(obj.get_int("glue_lbd", defaults.glue_lbd)));
  o.tier_lbd(static_cast<int>(obj.get_int("tier_lbd", defaults.tier_lbd)));
  o.share(obj.get_bool("share", defaults.share));
  o.share_lbd(static_cast<int>(obj.get_int("share_lbd", defaults.share_lbd)));
  o.share_size(
      static_cast<int>(obj.get_int("share_size", defaults.share_size)));
  o.share_cap(static_cast<int>(obj.get_int("share_cap", defaults.share_cap)));
  o.share_rank(obj.get_bool("share_rank", defaults.share_rank));
  o.core_weighting(obj.get_string("core_weighting", defaults.core_weighting));
  o.preprocess(obj.get_bool("preprocess", defaults.preprocess));
  o.bve_budget(
      static_cast<int>(obj.get_int("bve_budget", defaults.bve_budget)));
  if (obj.find("vivify_interval") != nullptr)
    o.vivify_interval(static_cast<int>(
        obj.get_int("vivify_interval", defaults.vivify_interval)));
  o.assumption_savepoint(
      obj.get_bool("assumption_savepoint", defaults.assumption_savepoint));
  return o;
}

namespace {

std::string bits_to_string(const std::vector<bool>& bits) {
  std::string s;
  s.reserve(bits.size());
  for (const bool b : bits) s += b ? '1' : '0';
  return s;
}

void write_trace(JsonWriter& w, const bmc::Trace& trace) {
  w.begin_object();
  w.kv("depth", trace.depth);
  w.kv("bad_frame", trace.bad_frame);
  w.kv("initial_latches", bits_to_string(trace.initial_latches));
  w.key("inputs");
  w.begin_array();
  for (const std::vector<bool>& frame : trace.inputs)
    w.value(bits_to_string(frame));
  w.end_array();
  w.end_object();
}

}  // namespace

void write_status(JsonWriter& w, const JobStatus& status) {
  w.begin_object();
  w.kv("id", status.id);
  w.kv("state", to_string(status.state));
  if (status.reject != RejectReason::None)
    w.kv("reject", to_string(status.reject));
  w.kv("priority", to_string(status.priority));
  if (!status.name.empty()) w.kv("name", status.name);
  w.kv("depths_completed", status.depths_completed);
  w.kv("events_available", status.events_available);
  w.kv("queue_sec", status.queue_sec);
  w.kv("run_sec", status.run_sec);
  if (is_terminal(status.state) && status.state != JobState::Rejected) {
    const api::CheckResult& r = status.result;
    w.key("result");
    w.begin_object();
    w.kv("verdict", api::to_string(r.status));
    w.kv("from_cache", r.from_cache);
    w.kv("counterexample_depth", r.counterexample_depth);
    w.kv("last_completed_depth", r.last_completed_depth);
    if (!r.winner_policy.empty()) w.kv("winner", r.winner_policy);
    w.kv("wall_sec", r.wall_time_sec);
    w.kv("decisions", r.total_decisions());
    w.kv("propagations", r.total_propagations());
    w.kv("conflicts", r.total_conflicts());
    w.kv("frames_encoded", r.frames_encoded);
    w.kv("clauses_exported", r.clauses_exported);
    w.kv("clauses_imported", r.clauses_imported);
    w.kv("ranks_published", r.ranks_published);
    w.kv("peak_mem_bytes", r.peak_mem_bytes);
    if (r.mem_limit_hit) w.kv("mem_limit_hit", true);
    if (r.counterexample) {
      w.key("trace");
      write_trace(w, *r.counterexample);
    }
    w.end_object();
  }
  w.end_object();
}

}  // namespace refbmc::service
