// Local transport for the job server: a Unix-domain-socket daemon
// (refbmc-serve) speaking the length-prefixed JSON frames of wire.hpp,
// and a blocking client (refbmc-client and tests).
//
// One request frame in, one response frame out, per round trip; a
// connection carries any number of round trips.  Ops:
//
//   | op       | request fields                          | response        |
//   |----------|-----------------------------------------|-----------------|
//   | submit   | aiger, bad, name, priority,             | accepted, id,   |
//   |          | deadline_sec, use_cache, wait, options  | reason / status |
//   | poll     | id                                      | status          |
//   | events   | id, after                               | events[]        |
//   | cancel   | id                                      | cancelled       |
//   | wait     | id, timeout_sec                         | status          |
//   | stats    | —                                       | counters        |
//   | shutdown | —                                       | ok              |
//
// Responses wrap everything in {"ok": true/false, "error": "..."}; a
// submission the admission layer rejected is ok:true, accepted:false
// with a typed reason — transport errors and rejections are different
// things.
//
// The dispatcher (handle_request) is a pure string -> string function on
// top of JobServer, so protocol tests need no sockets at all.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "service/wire.hpp"

namespace refbmc::service {

/// Decodes one request frame, applies it to `server`, encodes the
/// response frame.  `shutdown_requested`, when non-null, is set by the
/// "shutdown" op (the daemon's exit signal).
std::string handle_request(JobServer& server, const std::string& payload,
                           std::atomic<bool>* shutdown_requested = nullptr);

/// Accept loop over a Unix domain socket, one handler thread per
/// connection.  Owns neither the JobServer nor the socket path file
/// beyond unlinking what it bound.
class SocketServer {
 public:
  SocketServer(JobServer& server, std::string socket_path);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds, listens and starts the accept thread; false + error text on
  /// failure (stale path is unlinked first).
  bool start(std::string* error = nullptr);

  /// Closes the listener and joins every handler.
  void stop();

  /// Set once a client sent the "shutdown" op (after its response was
  /// written) — the daemon's cue to stop() and exit.
  bool shutdown_requested() const {
    return shutdown_requested_.load(std::memory_order_acquire);
  }

  const std::string& socket_path() const { return socket_path_; }

 private:
  void accept_main();

  JobServer& server_;
  const std::string socket_path_;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> shutdown_requested_{false};
  std::thread accept_thread_;
  std::mutex handlers_mu_;
  std::vector<std::thread> handlers_;
};

/// Blocking client: one connected socket, call() does one frame round
/// trip.  Convenience wrappers build the request JSON.
class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  bool connect(const std::string& socket_path, std::string* error = nullptr);
  bool connected() const { return fd_ >= 0; }
  void close();

  /// One round trip; nullopt + error text on transport failure or an
  /// unparseable response.
  std::optional<JsonValue> call(const std::string& payload,
                                std::string* error = nullptr);

  /// The raw JSON text of the last successful round trip (scriptable
  /// output without re-encoding the parsed tree).
  const std::string& last_raw() const { return last_raw_; }

  struct SubmitArgs {
    std::string aiger;  // the model, as ASCII AIGER text
    std::size_t bad_index = 0;
    std::string name;
    Priority priority = Priority::Normal;
    double deadline_sec = -1.0;
    bool use_cache = true;
    /// Block server-side until terminal and return the final status in
    /// the submit response (saves the poll loop for one-shot clients).
    bool wait = false;
    api::RaceOptions options;
  };
  std::optional<JsonValue> submit(const SubmitArgs& args,
                                  std::string* error = nullptr);
  std::optional<JsonValue> poll(JobId id, std::string* error = nullptr);
  std::optional<JsonValue> events(JobId id, std::uint64_t after_seq = 0,
                                  std::string* error = nullptr);
  std::optional<JsonValue> cancel(JobId id, std::string* error = nullptr);
  std::optional<JsonValue> wait(JobId id, double timeout_sec = -1.0,
                                std::string* error = nullptr);
  std::optional<JsonValue> stats(std::string* error = nullptr);
  std::optional<JsonValue> shutdown(std::string* error = nullptr);

 private:
  int fd_ = -1;
  std::string last_raw_;
};

}  // namespace refbmc::service
