#include "service/result_cache.hpp"

namespace refbmc::service {

CacheKey cache_key(const api::CheckRequest& request) {
  CacheKey key;
  key.netlist_hash = model::structural_hash(request.net);
  key.bad_index = static_cast<std::uint64_t>(request.bad_index);
  key.max_depth = request.options.max_depth();
  key.config = api::config_fingerprint(request.options);
  return key;
}

std::optional<api::CheckResult> ResultCache::lookup(const CacheKey& key) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  api::CheckResult result = it->second->second;
  result.from_cache = true;
  return result;
}

void ResultCache::insert(const CacheKey& key, const api::CheckResult& result) {
  if (capacity_ == 0) return;
  if (result.status == api::CheckResult::Status::ResourceLimit) return;
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = result;
    it->second->second.from_cache = false;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, result);
  lru_.front().second.from_cache = false;
  index_[key] = lru_.begin();
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
  }
}

std::size_t ResultCache::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}
std::uint64_t ResultCache::hits() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}
std::uint64_t ResultCache::misses() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}
std::uint64_t ResultCache::evictions() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

}  // namespace refbmc::service
