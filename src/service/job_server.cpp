#include "service/job_server.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "portfolio/scheduler.hpp"
#include "util/log.hpp"

namespace refbmc::service {

namespace {

void bump(const char* name, std::uint64_t n = 1) {
  if (obs::metrics_active()) obs::metrics().counter(name).add(n);
}
void observe(const char* name, std::uint64_t v) {
  if (obs::metrics_active()) obs::metrics().histogram(name).observe(v);
}

}  // namespace

std::optional<Priority> parse_priority(const std::string& name) {
  if (name == "high") return Priority::High;
  if (name == "normal") return Priority::Normal;
  if (name == "batch") return Priority::Batch;
  return std::nullopt;
}

JobServer::JobServer(ServerConfig config)
    : config_(config), cache_(config.cache_capacity) {
  REFBMC_EXPECTS_MSG(config_.workers >= 1,
                     "job server needs at least one executor");
  executors_.reserve(static_cast<std::size_t>(config_.workers));
  for (int w = 0; w < config_.workers; ++w)
    executors_.emplace_back([this] { executor_main(); });
}

JobServer::~JobServer() { shutdown(/*cancel_running=*/true); }

SubmitOutcome JobServer::submit(api::CheckRequest request, JobOptions opts) {
  SubmitOutcome out;

  // Validate OUTSIDE the lock: resolve() parses policy / mode names, the
  // same validation the CLI applies — a malformed request is the
  // client's problem and must not poison an executor later.
  RejectReason invalid = RejectReason::None;
  if (request.bad_index >= request.net.bad_properties().size()) {
    invalid = RejectReason::InvalidRequest;
  } else {
    try {
      (void)request.options.resolve();
    } catch (const std::invalid_argument&) {
      invalid = RejectReason::InvalidRequest;
    }
  }

  const std::lock_guard<std::mutex> lock(mu_);
  const JobId id = next_id_++;
  auto rec = std::make_unique<JobRecord>();
  rec->id = id;
  rec->request = std::move(request);
  rec->opts = opts;
  if (rec->opts.deadline_sec <= 0.0)
    rec->opts.deadline_sec = config_.default_deadline_sec;
  rec->submit_us = obs::monotonic_now_us();
  if (rec->opts.deadline_sec > 0.0)
    rec->deadline_us = rec->submit_us + static_cast<std::uint64_t>(
                                            rec->opts.deadline_sec * 1e6);

  out.id = id;
  if (invalid != RejectReason::None) {
    out.reason = invalid;
  } else if (shutting_down_) {
    out.reason = RejectReason::ShuttingDown;
  } else if (queued_ >= config_.queue_capacity) {
    out.reason = RejectReason::QueueFull;
  } else {
    out.accepted = true;
  }

  if (!out.accepted) {
    rec->state = JobState::Rejected;
    rec->reject = out.reason;
    rec->end_us = rec->submit_us;
    ++stats_.rejected;
    bump("server.rejected");
  } else {
    ++stats_.submitted;
    ++queued_;
    queues_[static_cast<std::size_t>(opts.priority)].push_back(id);
    bump("server.submitted");
    observe("server.queue_depth", queued_);
  }
  jobs_[id] = std::move(rec);
  if (out.accepted) work_cv_.notify_one();
  return out;
}

void JobServer::executor_main() {
  set_log_thread_tag("serve");
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] {
      if (shutting_down_) return true;
      for (const auto& q : queues_)
        if (!q.empty()) return true;
      return false;
    });
    JobId id = 0;
    for (auto& q : queues_) {
      if (q.empty()) continue;
      id = q.front();
      q.pop_front();
      break;
    }
    if (id == 0) {
      if (shutting_down_) return;
      continue;
    }
    --queued_;
    JobRecord& rec = *jobs_.at(id);
    if (rec.state != JobState::Queued) continue;  // raced with cancel
    const std::uint64_t now = obs::monotonic_now_us();
    if (shutting_down_) {
      rec.state = JobState::Cancelled;
      rec.end_us = now;
      ++stats_.cancelled;
      done_cv_.notify_all();
      continue;
    }
    if (rec.deadline_us != 0 && now >= rec.deadline_us) {
      // Expired while still queued: evicted without ever running.
      rec.state = JobState::DeadlineExceeded;
      rec.end_us = now;
      ++stats_.deadline_evictions;
      bump("server.deadline_evictions");
      done_cv_.notify_all();
      continue;
    }
    rec.state = JobState::Running;
    rec.start_us = now;
    ++running_;
    lock.unlock();
    run_job(rec);
    lock.lock();
  }
}

double JobServer::remaining_deadline_sec(const JobRecord& rec) const {
  if (rec.deadline_us == 0) return -1.0;
  const std::uint64_t now = obs::monotonic_now_us();
  if (now >= rec.deadline_us) return 0.0;
  return static_cast<double>(rec.deadline_us - now) * 1e-6;
}

void JobServer::run_job(JobRecord& rec) {
  const CacheKey key = cache_key(rec.request);

  if (rec.opts.use_cache) {
    if (auto hit = cache_.lookup(key)) {
      rec.result = std::move(*hit);
      rec.depths_completed = rec.result.last_completed_depth + 1;
      {
        const std::lock_guard<std::mutex> lock(mu_);
        ++stats_.cache_hits;
      }
      bump("server.cache_hits");
      finish(rec, JobState::Done);
      return;
    }
    {
      const std::lock_guard<std::mutex> lock(mu_);
      ++stats_.cache_misses;
    }
    bump("server.cache_misses");
  }

  const double deadline_left = remaining_deadline_sec(rec);
  if (rec.deadline_us != 0 && deadline_left <= 0.0) {
    finish(rec, JobState::DeadlineExceeded);
    return;
  }

  // Ordering warm start: race through a server-owned shared source,
  // seeded from the last accumulation snapshotted for this (netlist,
  // weighting) — then snapshot the merged result back for the next
  // submission of the same model.
  std::unique_ptr<bmc::SharedRankSource> rank_source;
  RankKey rank_key{key.netlist_hash, 0};
  if (config_.warm_start_ranks) {
    const portfolio::ResolvedPortfolio r = rec.request.options.resolve();
    rank_key.weighting = static_cast<int>(r.engine.weighting);
    rank_source = std::make_unique<bmc::SharedRankSource>(r.engine.weighting);
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = rank_store_.find(rank_key);
    if (it != rank_store_.end()) {
      rank_source->seed(it->second);
      ++stats_.rank_warm_starts;
      bump("server.rank_warm_starts");
    }
  }

  api::CheckHooks hooks;
  hooks.stop = &rec.stop;
  hooks.rank_source = rank_source.get();
  hooks.deadline_sec = deadline_left;
  hooks.on_depth = [this, &rec](const bmc::DepthStats& d) {
    const std::lock_guard<std::mutex> lock(mu_);
    ProgressEvent e;
    e.seq = rec.events.size() + 1;
    e.depth = d.depth;
    e.result = d.result;
    e.decisions = d.decisions;
    e.conflicts = d.conflicts;
    e.time_sec = d.time_sec;
    rec.events.push_back(e);
    rec.depths_completed = std::max(rec.depths_completed, d.depth + 1);
  };

  try {
    rec.result = api::check(rec.request, hooks);
  } catch (const std::exception& e) {
    // Admission validated the request, so this is unexpected — report
    // the job as resource-limited rather than killing the executor.
    REFBMC_WARN() << "job " << rec.id << " failed: " << e.what();
    rec.result = api::CheckResult{};
  }

  if (rank_source != nullptr) {
    const bmc::CoreRanking snap = rank_source->snapshot();
    if (!snap.scores().empty()) {
      const std::lock_guard<std::mutex> lock(mu_);
      rank_store_.insert_or_assign(rank_key, snap);
    }
  }

  // Classify how the race ended.  A definitive verdict is Done no
  // matter what raced it; otherwise an explicit cancel wins over a
  // memory-ceiling breach (the engines flag it on the result), which
  // wins over a deadline, which wins over the job's own budget.
  JobState state = JobState::Done;
  if (rec.result.status == api::CheckResult::Status::ResourceLimit) {
    if (rec.stop.load(std::memory_order_acquire)) {
      state = JobState::Cancelled;
    } else if (rec.result.mem_limit_hit) {
      state = JobState::MemLimitExceeded;
    } else if (rec.deadline_us != 0 &&
               obs::monotonic_now_us() >= rec.deadline_us) {
      state = JobState::DeadlineExceeded;
    }
  }

  if (state == JobState::Done && rec.opts.use_cache)
    cache_.insert(key, rec.result);

  finish(rec, state);
}

void JobServer::finish(JobRecord& rec, JobState state) {
  const std::lock_guard<std::mutex> lock(mu_);
  rec.state = state;
  rec.end_us = obs::monotonic_now_us();
  if (rec.start_us != 0) --running_;
  switch (state) {
    case JobState::Done:
      ++stats_.completed;
      bump("server.completed");
      break;
    case JobState::Cancelled:
      ++stats_.cancelled;
      bump("server.cancelled");
      break;
    case JobState::DeadlineExceeded:
      ++stats_.deadline_evictions;
      bump("server.deadline_evictions");
      break;
    case JobState::MemLimitExceeded:
      ++stats_.mem_limit_stops;
      bump("server.mem_limit_stops");
      break;
    default:
      break;
  }
  if (rec.start_us != 0) {
    observe("server.queue_us", rec.start_us - rec.submit_us);
    observe("server.run_us", rec.end_us - rec.start_us);
  }
  done_cv_.notify_all();
}

namespace {

JobStatus status_of(const JobId id,
                    const Priority priority, const std::string& name,
                    const JobState state, const RejectReason reject,
                    const int depths, const std::size_t events,
                    const std::uint64_t submit_us,
                    const std::uint64_t start_us, const std::uint64_t end_us,
                    const api::CheckResult& result) {
  JobStatus s;
  s.id = id;
  s.state = state;
  s.reject = reject;
  s.priority = priority;
  s.name = name;
  s.depths_completed = depths;
  s.events_available = events;
  const std::uint64_t now = obs::monotonic_now_us();
  const std::uint64_t queue_end =
      start_us != 0 ? start_us : (end_us != 0 ? end_us : now);
  s.queue_sec = static_cast<double>(queue_end - submit_us) * 1e-6;
  if (start_us != 0) {
    const std::uint64_t run_end = end_us != 0 ? end_us : now;
    s.run_sec = static_cast<double>(run_end - start_us) * 1e-6;
  }
  if (is_terminal(state)) s.result = result;
  return s;
}

}  // namespace

std::optional<JobStatus> JobServer::poll(JobId id) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  const JobRecord& r = *it->second;
  return status_of(r.id, r.opts.priority, r.request.name, r.state,
                   r.reject, r.depths_completed, r.events.size(), r.submit_us,
                   r.start_us, r.end_us, r.result);
}

std::vector<ProgressEvent> JobServer::events(JobId id,
                                             std::uint64_t after_seq) const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<ProgressEvent> out;
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return out;
  for (const ProgressEvent& e : it->second->events)
    if (e.seq > after_seq) out.push_back(e);
  return out;
}

bool JobServer::cancel(JobId id) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  JobRecord& rec = *it->second;
  if (is_terminal(rec.state)) return false;
  if (rec.state == JobState::Queued) {
    auto& q = queues_[static_cast<std::size_t>(rec.opts.priority)];
    const auto pos = std::find(q.begin(), q.end(), id);
    if (pos != q.end()) {
      q.erase(pos);
      --queued_;
    }
    rec.state = JobState::Cancelled;
    rec.end_us = obs::monotonic_now_us();
    ++stats_.cancelled;
    bump("server.cancelled");
    done_cv_.notify_all();
    return true;
  }
  // Running: ride the race's cooperative stop; the executor classifies
  // and finishes the job when the engines wind down.
  rec.stop.store(true, std::memory_order_release);
  return true;
}

std::optional<JobStatus> JobServer::wait(JobId id, double timeout_sec) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  JobRecord& rec = *it->second;
  const auto terminal = [&rec] { return is_terminal(rec.state); };
  if (timeout_sec > 0.0) {
    if (!done_cv_.wait_for(lock,
                           std::chrono::duration<double>(timeout_sec),
                           terminal))
      return std::nullopt;
  } else {
    done_cv_.wait(lock, terminal);
  }
  return status_of(rec.id, rec.opts.priority, rec.request.name,
                   rec.state, rec.reject, rec.depths_completed,
                   rec.events.size(), rec.submit_us, rec.start_us, rec.end_us,
                   rec.result);
}

JobServer::Stats JobServer::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.queue_depth = queued_;
  s.running = running_;
  return s;
}

void JobServer::shutdown(bool cancel_running) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_ && executors_.empty()) return;
    shutting_down_ = true;
    // Queued jobs will never run: cancel them here so waiting clients
    // unblock immediately.
    for (auto& q : queues_) {
      for (const JobId id : q) {
        JobRecord& rec = *jobs_.at(id);
        if (rec.state != JobState::Queued) continue;
        rec.state = JobState::Cancelled;
        rec.end_us = obs::monotonic_now_us();
        ++stats_.cancelled;
      }
      q.clear();
    }
    queued_ = 0;
    if (cancel_running)
      for (auto& [id, rec] : jobs_)
        if (rec->state == JobState::Running)
          rec->stop.store(true, std::memory_order_release);
    work_cv_.notify_all();
    done_cv_.notify_all();
  }
  for (auto& t : executors_) t.join();
  executors_.clear();
}

}  // namespace refbmc::service
