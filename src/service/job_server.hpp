// JobServer: the persistent async front end over the portfolio — BMC as
// a service instead of one process per check.
//
//   JobServer server(cfg);
//   auto [accepted, id, why] = server.submit(std::move(request), opts);
//   ... poll(id) -> Queued / Running (with per-depth progress) / Done
//   ... cancel(id), or let the per-job deadline evict it
//
// One object owns the whole serving state:
//
//   * admission   — a bounded queue with three priority classes (High >
//                   Normal > Batch within FIFO); a full queue or a
//                   shutting-down server rejects with a typed reason
//                   instead of blocking the client;
//   * execution   — `workers` executor threads, each draining the
//                   highest-priority job into api::check; per-job
//                   deadlines are enforced at depth boundaries by the
//                   engine's own budget machinery (a job that expires
//                   while still queued is evicted without running);
//   * cancel      — rides the engines' cooperative stop flag: cancel()
//                   returns immediately, the race winds down within one
//                   solver checkpoint;
//   * results     — a ResultCache memo keyed by (netlist hash, bad,
//                   depth, config fingerprint): resubmitting an
//                   identical job returns the verdict + trace verbatim,
//                   no solving (poll shows from_cache);
//   * warm start  — the race's merged rank accumulation is snapshotted
//                   per (netlist hash, weighting) after every solve and
//                   seeded into the next race on the same model, so a
//                   resubmitted-but-not-identical job (deeper bound, new
//                   budget) starts from a refined ordering instead of
//                   re-learning it (bmc::SharedRankSource::seed);
//   * metrics     — queue depth, admission rejects, cache hit rate and
//                   deadline evictions through obs::MetricsRegistry
//                   (server.* namespace), when metrics are enabled.
//
// Thread-safe throughout; poll/events/stats take copies under the mutex.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "api/refbmc.hpp"
#include "bmc/ranking.hpp"
#include "service/result_cache.hpp"

namespace refbmc::service {

using JobId = std::uint64_t;

/// Admission classes, drained strictly high-to-low (FIFO within one).
enum class Priority { High = 0, Normal = 1, Batch = 2 };
inline const char* to_string(Priority p) {
  switch (p) {
    case Priority::High: return "high";
    case Priority::Normal: return "normal";
    case Priority::Batch: return "batch";
  }
  return "?";
}
std::optional<Priority> parse_priority(const std::string& name);

enum class JobState {
  Queued,
  Running,
  Done,              // api::check returned (verdict or its own budget)
  Cancelled,         // cancel() — queued or running
  DeadlineExceeded,  // per-job deadline evicted it (queued or at a depth
                     // boundary while running)
  MemLimitExceeded,  // the race breached its --mem-ceiling (typed, so
                     // clients can resubmit with a higher ceiling rather
                     // than a longer deadline)
  Rejected,          // never admitted; see RejectReason
};
inline const char* to_string(JobState s) {
  switch (s) {
    case JobState::Queued: return "queued";
    case JobState::Running: return "running";
    case JobState::Done: return "done";
    case JobState::Cancelled: return "cancelled";
    case JobState::DeadlineExceeded: return "deadline_exceeded";
    case JobState::MemLimitExceeded: return "mem_limit_exceeded";
    case JobState::Rejected: return "rejected";
  }
  return "?";
}
inline bool is_terminal(JobState s) {
  return s != JobState::Queued && s != JobState::Running;
}

/// Why admission said no (typed, so clients can back off vs. give up).
enum class RejectReason { None, QueueFull, ShuttingDown, InvalidRequest };
inline const char* to_string(RejectReason r) {
  switch (r) {
    case RejectReason::None: return "none";
    case RejectReason::QueueFull: return "queue_full";
    case RejectReason::ShuttingDown: return "shutting_down";
    case RejectReason::InvalidRequest: return "invalid_request";
  }
  return "?";
}

/// Per-submission knobs (the request itself carries the race options).
struct JobOptions {
  Priority priority = Priority::Normal;
  /// Wall-clock budget from ADMISSION (not from start): covers queue
  /// wait plus run, enforced at depth boundaries.  <= 0: none (the
  /// server default may still apply).
  double deadline_sec = -1.0;
  bool use_cache = true;
};

/// One per-depth progress tick, the streamable form of bmc::DepthStats
/// (any entrant completing a depth emits one; seq is per-job monotone).
struct ProgressEvent {
  std::uint64_t seq = 0;
  int depth = 0;
  sat::Result result = sat::Result::Unknown;
  std::uint64_t decisions = 0;
  std::uint64_t conflicts = 0;
  double time_sec = 0.0;
};

/// Snapshot of one job, as poll() returns it.
struct JobStatus {
  JobId id = 0;
  JobState state = JobState::Queued;
  RejectReason reject = RejectReason::None;
  Priority priority = Priority::Normal;
  std::string name;
  /// Deepest depth any entrant has completed so far, +1 (i.e. a count;
  /// live while Running, final afterwards).
  int depths_completed = 0;
  std::uint64_t events_available = 0;
  double queue_sec = 0.0;  // admission -> start (or eviction)
  double run_sec = 0.0;    // start -> terminal
  /// Valid when state is Done (and from_cache tells how it was served).
  api::CheckResult result;
};

struct ServerConfig {
  int workers = 1;
  std::size_t queue_capacity = 64;  // queued (not running) jobs
  std::size_t cache_capacity = 128;
  /// Seed each race's SharedRankSource from the last snapshot persisted
  /// for (netlist hash, core weighting).
  bool warm_start_ranks = true;
  /// Applied when a submission has no deadline of its own (<= 0: none).
  double default_deadline_sec = -1.0;
};

struct SubmitOutcome {
  bool accepted = false;
  JobId id = 0;  // valid also for rejected jobs (poll shows Rejected)
  RejectReason reason = RejectReason::None;
};

class JobServer {
 public:
  explicit JobServer(ServerConfig config = {});
  ~JobServer();  // shutdown(/*cancel_running=*/true)

  JobServer(const JobServer&) = delete;
  JobServer& operator=(const JobServer&) = delete;

  /// Admission: bounded, never blocks.  The request is moved in — the
  /// server owns the model for the job's whole life.
  SubmitOutcome submit(api::CheckRequest request, JobOptions opts = {});

  /// Snapshot of a job (nullopt: unknown id).
  std::optional<JobStatus> poll(JobId id) const;

  /// Progress events with seq > after_seq, in order — the polling form
  /// of a progress stream (clients pass the last seq they saw).
  std::vector<ProgressEvent> events(JobId id, std::uint64_t after_seq = 0)
      const;

  /// Cooperative cancel; returns false for unknown / already-terminal
  /// jobs.  Queued jobs become Cancelled immediately; running jobs stop
  /// at the next solver checkpoint.
  bool cancel(JobId id);

  /// Blocks until the job is terminal (timeout_sec <= 0: forever).
  /// Returns the final status, or nullopt on timeout / unknown id.
  std::optional<JobStatus> wait(JobId id, double timeout_sec = -1.0);

  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t completed = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t deadline_evictions = 0;
    std::uint64_t mem_limit_stops = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    std::uint64_t rank_warm_starts = 0;
    std::size_t queue_depth = 0;
    std::size_t running = 0;
  };
  Stats stats() const;
  const ResultCache& cache() const { return cache_; }
  const ServerConfig& config() const { return config_; }

  /// Stops admission, drains or cancels, joins the executors.  Queued
  /// jobs are Cancelled; running ones are cancelled too when
  /// `cancel_running` (otherwise they finish).  Idempotent.
  void shutdown(bool cancel_running = true);

 private:
  struct JobRecord {
    JobId id = 0;
    api::CheckRequest request;
    JobOptions opts;
    JobState state = JobState::Queued;
    RejectReason reject = RejectReason::None;
    std::atomic<bool> stop{false};
    std::vector<ProgressEvent> events;
    int depths_completed = 0;
    api::CheckResult result;
    std::uint64_t submit_us = 0;
    std::uint64_t start_us = 0;
    std::uint64_t end_us = 0;
    std::uint64_t deadline_us = 0;  // absolute, monotonic axis; 0 = none
  };

  void executor_main();
  /// Runs one admitted job outside the server mutex.
  void run_job(JobRecord& rec);
  void finish(JobRecord& rec, JobState state);  // takes mu_
  double remaining_deadline_sec(const JobRecord& rec) const;

  const ServerConfig config_;
  ResultCache cache_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // queue non-empty or shutting down
  mutable std::condition_variable done_cv_;  // some job went terminal
  std::array<std::deque<JobId>, 3> queues_;  // by Priority
  std::unordered_map<JobId, std::unique_ptr<JobRecord>> jobs_;
  JobId next_id_ = 1;
  std::size_t queued_ = 0;
  std::size_t running_ = 0;
  bool shutting_down_ = false;
  Stats stats_;

  /// Rank snapshots per (netlist hash, weighting) — the warm-start store.
  struct RankKey {
    std::uint64_t netlist_hash;
    int weighting;
    bool operator==(const RankKey&) const = default;
  };
  struct RankKeyHash {
    std::size_t operator()(const RankKey& k) const {
      return static_cast<std::size_t>(
          k.netlist_hash ^ (0x9e3779b97f4a7c15ull *
                            static_cast<std::uint64_t>(k.weighting + 1)));
    }
  };
  std::unordered_map<RankKey, bmc::CoreRanking, RankKeyHash> rank_store_;

  std::vector<std::thread> executors_;
};

}  // namespace refbmc::service
